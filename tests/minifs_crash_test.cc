// Whole-system crash consistency: MiniFs over Tinca, with power failures
// injected at every commit-path step of a file-system workload; after
// recovery the file system must pass fsck and contain exactly the fsynced
// state (data consistency, §2.3).
#include <gtest/gtest.h>

#include <map>

#include "backend/classic_backend.h"
#include "backend/tinca_backend.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "fs/minifs.h"

namespace tinca::fs {
namespace {

constexpr std::size_t kNvmBytes = 8 << 20;
constexpr std::uint64_t kDiskBlocks = 1 << 14;
constexpr std::uint64_t kRing = 64 * 1024;

std::vector<std::byte> bytes_of(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> b(n);
  fill_pattern(b, seed);
  return b;
}

/// A deterministic FS workload: each phase is fsynced, so after any crash
/// the recovered FS must contain all completed phases and nothing from the
/// in-flight one (or the in-flight one completely, if its commit landed).
struct Phase {
  std::string path;
  std::size_t size;
  std::uint64_t seed;
};

std::vector<Phase> phases() {
  return {
      {"/a", 6000, 1},  {"/b", 12000, 2}, {"/c", 60000, 3},
      {"/a2", 3000, 4}, {"/d", 9000, 5},  {"/e", 20000, 6},
  };
}

/// Runs the workload, crashing at injector step `crash_step` (0 = never).
/// Returns how many phases were fully fsynced before the crash.
int run_fs_workload(nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
                    std::uint64_t crash_step, std::uint64_t* steps_out) {
  auto be = backend::TincaBackend::format(dev, disk,
                                          core::TincaConfig{.ring_bytes = kRing});
  MiniFsConfig cfg;
  cfg.group_commit_ops = 4;
  auto fsys = MiniFs::mkfs(*be, cfg);
  dev.injector.disarm();
  if (crash_step) dev.injector.arm(crash_step);

  int completed = 0;
  try {
    for (const Phase& p : phases()) {
      fsys->create(p.path);
      fsys->write(p.path, 0, bytes_of(p.size, p.seed));
      fsys->fsync();
      ++completed;
    }
  } catch (const nvm::CrashException&) {
    completed = -completed - 1;  // negative marks "crashed after N phases"
  }
  if (steps_out) *steps_out = dev.injector.steps_seen();
  dev.injector.disarm();
  return completed;
}

TEST(MiniFsCrash, SweepEveryCommitStep) {
  // Learn the step count from a clean run.
  std::uint64_t total_steps = 0;
  {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    ASSERT_EQ(run_fs_workload(dev, disk, 0, &total_steps),
              static_cast<int>(phases().size()));
  }
  ASSERT_GT(total_steps, 50u);

  Rng rng(2024);
  // Sweep every step (stride 1 would be exhaustive but slow under the full
  // FS; stride 3 still covers every protocol window across phases).
  for (std::uint64_t step = 1; step <= total_steps; step += 3) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    const int marker = run_fs_workload(dev, disk, step, nullptr);
    ASSERT_LT(marker, 0) << "armed run did not crash at step " << step;
    const int completed = -marker - 1;

    dev.crash(rng, 0.5);
    auto be = backend::TincaBackend::recover(
        dev, disk, core::TincaConfig{.ring_bytes = kRing});
    auto fsys = MiniFs::mount(*be);

    // fsck must pass on the recovered committed state.
    const FsckReport report = fsys->fsck();
    ASSERT_TRUE(report.ok) << "fsck failed after crash at step " << step << ": "
                           << (report.problems.empty() ? "?" : report.problems[0]);

    // All fully-fsynced phases must be present and intact.
    const auto all = phases();
    for (int i = 0; i < completed; ++i) {
      ASSERT_TRUE(fsys->exists(all[i].path))
          << all[i].path << " lost after crash at step " << step;
      std::vector<std::byte> got(all[i].size);
      ASSERT_EQ(fsys->read(all[i].path, 0, got), all[i].size);
      ASSERT_EQ(fingerprint(got), fingerprint(bytes_of(all[i].size, all[i].seed)))
          << all[i].path << " corrupted after crash at step " << step;
    }
    // Phases after the in-flight one must not exist at all.
    for (std::size_t i = completed + 1; i < all.size(); ++i)
      ASSERT_FALSE(fsys->exists(all[i].path));
  }
}

TEST(MiniFsCrash, CrashBetweenFsyncsLosesOnlyStagedOps) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto be = backend::TincaBackend::format(dev, disk,
                                          core::TincaConfig{.ring_bytes = kRing});
  {
    MiniFsConfig cfg;
    cfg.group_commit_ops = 1000;  // nothing auto-commits
    auto fsys = MiniFs::mkfs(*be, cfg);
    fsys->create("/committed");
    fsys->write("/committed", 0, bytes_of(5000, 1));
    fsys->fsync();
    fsys->create("/lost");
    fsys->write("/lost", 0, bytes_of(5000, 2));
    // no fsync; process dies here
  }
  dev.crash_discard_all();
  auto be2 = backend::TincaBackend::recover(
      dev, disk, core::TincaConfig{.ring_bytes = kRing});
  auto fsys = MiniFs::mount(*be2);
  EXPECT_TRUE(fsys->exists("/committed"));
  EXPECT_FALSE(fsys->exists("/lost"));
  EXPECT_TRUE(fsys->fsck().ok);
}

TEST(MiniFsCrash, ClassicBackendSweepMatchesTincaGuarantees) {
  // The paper's premise is identical data consistency on both stacks; sweep
  // the same FS workload over the Classic (journal) backend.
  auto run_classic = [](nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
                        std::uint64_t crash_step, std::uint64_t* steps_out) {
    classic::ClassicConfig ccfg;
    ccfg.journal_blocks = 512;
    auto be = backend::ClassicBackend::format(dev, disk, ccfg);
    MiniFsConfig cfg;
    cfg.group_commit_ops = 4;
    auto fsys = MiniFs::mkfs(*be, cfg);
    dev.injector.disarm();
    if (crash_step) dev.injector.arm(crash_step);
    int completed = 0;
    try {
      for (const Phase& p : phases()) {
        fsys->create(p.path);
        fsys->write(p.path, 0, bytes_of(p.size, p.seed));
        fsys->fsync();
        ++completed;
      }
    } catch (const nvm::CrashException&) {
      completed = -completed - 1;
    }
    if (steps_out) *steps_out = dev.injector.steps_seen();
    dev.injector.disarm();
    return completed;
  };

  std::uint64_t total_steps = 0;
  {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    ASSERT_EQ(run_classic(dev, disk, 0, &total_steps),
              static_cast<int>(phases().size()));
  }
  Rng rng(99);
  // The Classic path has far more crash points (every flashcache write);
  // sample with a stride that still covers each protocol phase.
  for (std::uint64_t step = 1; step <= total_steps; step += 17) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    const int marker = run_classic(dev, disk, step, nullptr);
    ASSERT_LT(marker, 0);
    const int completed = -marker - 1;
    dev.crash(rng, 0.5);

    classic::ClassicConfig ccfg;
    ccfg.journal_blocks = 512;
    auto be = backend::ClassicBackend::recover(dev, disk, ccfg);
    auto fsys = MiniFs::mount(*be);
    ASSERT_TRUE(fsys->fsck().ok) << "Classic fsck failed at step " << step;
    const auto all = phases();
    for (int i = 0; i < completed; ++i) {
      ASSERT_TRUE(fsys->exists(all[i].path)) << "step " << step;
      std::vector<std::byte> got(all[i].size);
      ASSERT_EQ(fsys->read(all[i].path, 0, got), all[i].size);
      ASSERT_EQ(fingerprint(got),
                fingerprint(bytes_of(all[i].size, all[i].seed)))
          << all[i].path << " corrupted (Classic) at step " << step;
    }
  }
}

TEST(MiniFsCrash, RepeatedCrashRecoverCyclesConverge) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  Rng rng(5);

  auto be = backend::TincaBackend::format(dev, disk,
                                          core::TincaConfig{.ring_bytes = kRing});
  {
    auto fsys = MiniFs::mkfs(*be);
    fsys->create("/base");
    fsys->write("/base", 0, bytes_of(30000, 7));
    fsys->fsync();
  }
  be.reset();

  // Ten crash/recover/extend cycles; state must stay consistent throughout.
  for (int cycle = 0; cycle < 10; ++cycle) {
    dev.crash(rng, 0.5);
    auto be2 = backend::TincaBackend::recover(
        dev, disk, core::TincaConfig{.ring_bytes = kRing});
    auto fsys = MiniFs::mount(*be2);
    ASSERT_TRUE(fsys->fsck().ok) << "cycle " << cycle;
    std::vector<std::byte> got(30000);
    ASSERT_EQ(fsys->read("/base", 0, got), 30000u);
    ASSERT_EQ(fingerprint(got), fingerprint(bytes_of(30000, 7)));
    fsys->create("/cycle" + std::to_string(cycle));
    fsys->fsync();
  }
}

// ---------------------------------------------------------------------------
// Directed crash-point sweeps for the two weakest structural ops: rename
// (two directories mutated in one compound commit) and truncate (blocks
// freed back out of the single-indirect area).  Every injector step inside
// the op's commit is swept; recovery must always land on exactly the old or
// exactly the new state, with a clean fsck.
// ---------------------------------------------------------------------------

TEST(MiniFsCrash, RenameIsNeverTornAcrossTheCommitBoundary) {
  constexpr std::size_t kSize = 20000;
  constexpr std::uint64_t kSeed = 77;

  // One run: committed setup, then rename /d0/a → /d1/b committed by an
  // fsync with the injector armed at `crash_step` (0 = never, learn steps).
  const auto run = [&](nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
                       std::uint64_t crash_step, std::uint64_t* steps_out) {
    auto be = backend::TincaBackend::format(
        dev, disk, core::TincaConfig{.ring_bytes = kRing});
    MiniFsConfig cfg;
    cfg.group_commit_ops = 1000;  // only explicit fsync commits
    auto fsys = MiniFs::mkfs(*be, cfg);
    fsys->mkdir("/d0");
    fsys->mkdir("/d1");
    fsys->create("/d0/a");
    fsys->write("/d0/a", 0, bytes_of(kSize, kSeed));
    fsys->fsync();
    dev.injector.disarm();
    if (crash_step) dev.injector.arm(crash_step);
    bool crashed = false;
    try {
      fsys->rename("/d0/a", "/d1/b");
      fsys->fsync();
    } catch (const nvm::CrashException&) {
      crashed = true;
    }
    if (steps_out) *steps_out = dev.injector.steps_seen();
    dev.injector.disarm();
    return crashed;
  };

  std::uint64_t total_steps = 0;
  {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    ASSERT_FALSE(run(dev, disk, 0, &total_steps));
  }
  ASSERT_GT(total_steps, 0u);

  Rng rng(42);
  for (std::uint64_t step = 1; step <= total_steps; ++step) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    ASSERT_TRUE(run(dev, disk, step, nullptr))
        << "armed run did not crash at step " << step;
    dev.crash(rng, 0.5);

    auto be = backend::TincaBackend::recover(
        dev, disk, core::TincaConfig{.ring_bytes = kRing});
    auto fsys = MiniFs::mount(*be);
    const FsckReport report = fsys->fsck();
    ASSERT_TRUE(report.ok) << "fsck dirty after crash at step " << step
                           << ": " << report.summary();

    // Exactly one of the two names survives — never both, never neither.
    const bool old_there = fsys->exists("/d0/a");
    const bool new_there = fsys->exists("/d1/b");
    ASSERT_NE(old_there, new_there)
        << "rename torn at step " << step << " (old=" << old_there
        << " new=" << new_there << ")";
    const std::string path = old_there ? "/d0/a" : "/d1/b";
    std::vector<std::byte> got(kSize);
    ASSERT_EQ(fsys->read(path, 0, got), kSize);
    ASSERT_EQ(fingerprint(got), fingerprint(bytes_of(kSize, kSeed)))
        << path << " corrupted by crash at step " << step;
  }
}

TEST(MiniFsCrash, TruncateOutOfIndirectBlockNeverLeaks) {
  constexpr std::size_t kBigSize = 100 * 1024;  // 25 blocks → single-indirect
  constexpr std::size_t kSmallSize = 8 * 1024;  // back to 2 direct blocks
  constexpr std::uint64_t kSeed = 88;

  const auto run = [&](nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
                       std::uint64_t crash_step, std::uint64_t* steps_out) {
    auto be = backend::TincaBackend::format(
        dev, disk, core::TincaConfig{.ring_bytes = kRing});
    MiniFsConfig cfg;
    cfg.group_commit_ops = 1000;
    auto fsys = MiniFs::mkfs(*be, cfg);
    fsys->create("/big");
    fsys->write("/big", 0, bytes_of(kBigSize, kSeed));
    fsys->fsync();
    dev.injector.disarm();
    if (crash_step) dev.injector.arm(crash_step);
    bool crashed = false;
    try {
      fsys->truncate("/big", kSmallSize);
      fsys->fsync();
    } catch (const nvm::CrashException&) {
      crashed = true;
    }
    if (steps_out) *steps_out = dev.injector.steps_seen();
    dev.injector.disarm();
    return crashed;
  };

  std::uint64_t total_steps = 0;
  {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    ASSERT_FALSE(run(dev, disk, 0, &total_steps));
  }
  ASSERT_GT(total_steps, 0u);

  Rng rng(43);
  for (std::uint64_t step = 1; step <= total_steps; ++step) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    ASSERT_TRUE(run(dev, disk, step, nullptr))
        << "armed run did not crash at step " << step;
    dev.crash(rng, 0.5);

    auto be = backend::TincaBackend::recover(
        dev, disk, core::TincaConfig{.ring_bytes = kRing});
    auto fsys = MiniFs::mount(*be);

    // fsck's bitmap cross-check and block-past-EOF rule prove the indirect
    // block and its leaves were freed atomically with the size change.
    const FsckReport report = fsys->fsck();
    ASSERT_TRUE(report.ok) << "fsck dirty after crash at step " << step
                           << ": " << report.summary();

    const std::uint64_t size = fsys->file_size("/big");
    ASSERT_TRUE(size == kBigSize || size == kSmallSize)
        << "truncate half-applied at step " << step << ": size " << size;
    std::vector<std::byte> got(size);
    ASSERT_EQ(fsys->read("/big", 0, got), size);
    const auto want = bytes_of(kBigSize, kSeed);
    ASSERT_EQ(fingerprint(got),
              fingerprint(std::span<const std::byte>(want.data(), size)))
        << "content corrupted by crash at step " << step;
  }
}

}  // namespace
}  // namespace tinca::fs
