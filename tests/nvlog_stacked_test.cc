// Deep-stacked NvLog tier tests (DESIGN.md §16): the write-ahead log
// draining into the REAL transactional stacks — a full TincaCache or the
// sharded front-end — through their commit_group path, with shard-affine
// parallel drains and the rotating watermark record ring.
//
// The centerpiece is a per-step crash sweep over a multi-shard history with
// periodic flushes: the injector steps through every NVM store point —
// absorb fences, shard-batch boundaries inside a partitioned drain, the
// watermark-record cut, and the inner cache's own commit protocol — then
// re-crashes mid-drain after the first recovery to prove the replay is
// idempotent against an inner that already applied some chunks.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "backend/nvlog_stacked_backend.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "nvlog/log_meta.h"
#include "obs/metrics.h"
#include "tinca/verify.h"

namespace tinca {
namespace {

constexpr std::size_t kBlock = blockdev::kBlockSize;
constexpr std::uint64_t kSegBytes = 64 * 1024;
constexpr std::size_t kLogBytes = 1 << 19;
// Log carve-out + two 512 KB shard slices (the Tinca inner just gets both).
constexpr std::size_t kNvmBytes = (2u << 19) + kLogBytes;

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlock);
  fill_pattern(b, seed);
  return b;
}

backend::NvLogStackedConfig stacked_cfg(backend::NvLogInner inner) {
  backend::NvLogStackedConfig cfg;
  cfg.log_bytes = kLogBytes;
  cfg.log.segment_bytes = kSegBytes;
  cfg.inner = inner;
  cfg.shards = 2;
  cfg.tinca.ring_bytes = 64 * 1024;
  return cfg;
}

using Expected = std::map<std::uint64_t, std::uint64_t>;

/// Eight txns of four blocks each; odd positions rewrite low blocks so the
/// history both spreads across shards and exercises coalescing.
std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
sweep_history() {
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> h;
  std::uint64_t seed = 1;
  for (int t = 0; t < 8; ++t) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> txn;
    for (int b = 0; b < 4; ++b) {
      const std::uint64_t blkno =
          (b % 2 == 0) ? static_cast<std::uint64_t>(t * 4 + b)
                       : static_cast<std::uint64_t>(b);
      txn.emplace_back(blkno, seed++);
    }
    h.push_back(std::move(txn));
  }
  return h;
}

struct SweepRun {
  Expected committed;
  std::size_t committed_txns = 0;
  std::uint64_t steps = 0;
  bool crashed = false;
};

SweepRun run_sweep(nvm::NvmDevice& nvm, blockdev::MemBlockDevice& disk,
                   const backend::NvLogStackedConfig& cfg,
                   std::uint64_t crash_step) {
  auto be = backend::NvLogStackedBackend::format(nvm, disk, cfg);
  nvm.injector.disarm();
  if (crash_step > 0) nvm.injector.arm(crash_step);
  SweepRun r;
  const auto history = sweep_history();
  try {
    for (std::size_t t = 0; t < history.size(); ++t) {
      be->begin();
      for (const auto& [blkno, seed] : history[t]) {
        const auto data = block_of(seed);
        be->stage(blkno, data);
      }
      be->commit();
      for (const auto& [blkno, seed] : history[t]) r.committed[blkno] = seed;
      ++r.committed_txns;
      // Periodic flushes drain through the inner's commit_group path, so
      // the sweep cuts inside partitioned drains and watermark advances.
      if (t % 3 == 2) be->flush();
    }
    be->flush();
  } catch (const nvm::CrashException&) {
    r.crashed = true;
  }
  r.steps = nvm.injector.steps_seen();
  nvm.injector.disarm();
  return r;
}

bool state_matches(backend::NvLogStackedBackend& be,
                   const std::vector<Expected>& acceptable,
                   const Expected& universe) {
  std::vector<std::byte> buf(kBlock);
  const auto zero = fingerprint(std::vector<std::byte>(kBlock, std::byte{0}));
  for (const Expected& exp : acceptable) {
    bool match = true;
    for (const auto& [blkno, _] : universe) {
      be.read_block(blkno, buf);
      auto it = exp.find(blkno);
      const std::uint64_t want =
          it != exp.end() ? fingerprint(block_of(it->second)) : zero;
      if (fingerprint(buf) != want) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::vector<Expected> acceptable_states(const SweepRun& run) {
  std::vector<Expected> acceptable{run.committed};
  const auto history = sweep_history();
  if (run.committed_txns < history.size()) {
    Expected with_next = run.committed;
    for (const auto& [blkno, seed] : history[run.committed_txns])
      with_next[blkno] = seed;
    acceptable.push_back(with_next);
  }
  return acceptable;
}

class NvLogStackedCrash
    : public ::testing::TestWithParam<backend::NvLogInner> {};

TEST_P(NvLogStackedCrash, EveryStepRecoversAndReCrashMidDrainIsIdempotent) {
  const backend::NvLogStackedConfig cfg = stacked_cfg(GetParam());

  // Learn the step count with a disarmed probe run.
  sim::SimClock probe_clock;
  nvm::NvmDevice probe_nvm(kNvmBytes, nvdimm_profile(), probe_clock);
  blockdev::MemBlockDevice probe_disk(1 << 12);
  const SweepRun full = run_sweep(probe_nvm, probe_disk, cfg, 0);
  ASSERT_FALSE(full.crashed);
  ASSERT_GT(full.steps, 50u);

  Expected universe;
  for (const auto& txn : sweep_history())
    for (const auto& [blkno, seed] : txn) universe[blkno] = seed;

  Rng rng(7);
  for (std::uint64_t step = 1; step <= full.steps; ++step) {
    sim::SimClock clock;
    nvm::NvmDevice nvm(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 12);
    const SweepRun run = run_sweep(nvm, disk, cfg, step);
    ASSERT_TRUE(run.crashed) << "step " << step << " did not crash";
    nvm.crash(rng, 0.5);

    // The raw log metadata must already be mountable: the watermark ring
    // always holds at least one valid record, torn or not.
    {
      nvm::NvmDevice logv(nvm, 0, kLogBytes, clock);
      const core::MediaReport mr = core::verify_nvlog_media(logv);
      ASSERT_TRUE(mr.ok) << "step " << step << ": "
                         << (mr.problems.empty() ? "?" : mr.problems[0]);
      ASSERT_GE(mr.wm_winning_epoch, 1u);
    }

    const auto acceptable = acceptable_states(run);
    {
      auto rec = backend::NvLogStackedBackend::recover(nvm, disk, cfg);
      ASSERT_TRUE(state_matches(*rec, acceptable, universe))
          << "inconsistent recovery after crash at step " << step;

      // Re-crash mid-drain: a rotating second cut lands on every drain
      // window over the sweep — coalesce, shard-batch boundaries, inner
      // commit_group steps, watermark-record cut.
      nvm.injector.arm(step % 7 + 1);
      try {
        rec->flush();
      } catch (const nvm::CrashException&) {
      }
      nvm.injector.disarm();
    }
    nvm.crash(rng, 0.5);

    // Second recovery must land in the same acceptable set: the inner may
    // have applied some chunks twice, but last-writer-wins block applies
    // make the replay invisible to reads.
    auto rec2 = backend::NvLogStackedBackend::recover(nvm, disk, cfg);
    ASSERT_TRUE(state_matches(*rec2, acceptable, universe))
        << "re-crash mid-drain broke recovery at step " << step;
    rec2->flush();
    EXPECT_EQ(rec2->tier().live_records(), 0u);
    ASSERT_TRUE(state_matches(*rec2, acceptable, universe))
        << "post-drain state diverged at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(BothInners, NvLogStackedCrash,
                         ::testing::Values(backend::NvLogInner::kTinca,
                                           backend::NvLogInner::kSharded),
                         [](const auto& pinfo) {
                           return pinfo.param == backend::NvLogInner::kTinca
                                      ? "Tinca"
                                      : "Sharded";
                         });

TEST(NvLogStacked, RoundtripThroughBothInners) {
  for (const backend::NvLogInner inner :
       {backend::NvLogInner::kTinca, backend::NvLogInner::kSharded}) {
    sim::SimClock clock;
    nvm::NvmDevice nvm(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 12);
    auto be =
        backend::NvLogStackedBackend::format(nvm, disk, stacked_cfg(inner));
    EXPECT_EQ(be->name(), inner == backend::NvLogInner::kTinca
                              ? "NvLog-Tinca"
                              : "NvLog-Sharded");

    for (std::uint64_t t = 0; t < 12; ++t) {
      be->begin();
      for (std::uint64_t b = 0; b < 4; ++b) {
        const auto data = block_of(t * 4 + b + 1);
        be->stage(t * 16 + b, data);
      }
      be->commit();
    }

    std::vector<std::byte> buf(kBlock);
    be->read_block(17, buf);  // still log-resident
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(6)));

    be->flush();  // everything drains into the inner cache
    EXPECT_EQ(be->tier().live_records(), 0u);
    be->read_block(17, buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(6)));
    be->read_block(11 * 16 + 3, buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(48)));
  }
}

TEST(NvLogStacked, ShardedDrainsArePartitionedAndParallelismShortensThem) {
  // Same workload twice over the sharded inner: modeled-parallel drains
  // must record shorter apply times than sequential ones (max over shards
  // vs. their sum), without changing a single byte of the outcome.
  std::uint64_t parallel_ns = 0, sequential_ns = 0;
  std::uint64_t parallel_fp = 0, sequential_fp = 0;
  for (const bool parallel : {true, false}) {
    sim::SimClock clock;
    nvm::NvmDevice nvm(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 12);
    backend::NvLogStackedConfig cfg = stacked_cfg(backend::NvLogInner::kSharded);
    cfg.parallel_drain = parallel;
    auto be = backend::NvLogStackedBackend::format(nvm, disk, cfg);

    for (std::uint64_t t = 0; t < 24; ++t) {
      be->begin();
      for (std::uint64_t b = 0; b < 8; ++b) {
        const auto data = block_of(t * 8 + b + 1);
        be->stage(t * 8 + b, data);  // contiguous => spans both shards
      }
      be->commit();
    }
    be->flush();

    const nvlog::NvLogStats& st = be->tier().stats();
    EXPECT_GT(st.partitioned_drains, 0u);
    EXPECT_GT(st.shard_batches, st.partitioned_drains);
    const std::uint64_t total = st.drain_apply.sum();
    std::vector<std::byte> buf(kBlock);
    std::uint64_t fp = 0;
    for (std::uint64_t b = 0; b < 24 * 8; ++b) {
      be->read_block(b, buf);
      fp ^= fingerprint(buf) * (b + 1);
    }
    if (parallel) {
      parallel_ns = total;
      parallel_fp = fp;
    } else {
      sequential_ns = total;
      sequential_fp = fp;
    }
  }
  EXPECT_EQ(parallel_fp, sequential_fp);
  EXPECT_GT(sequential_ns, 0u);
  EXPECT_LT(parallel_ns, sequential_ns);
}

TEST(NvLogStacked, TornWinningWatermarkFallsBackToAnOlderRecord) {
  // Corrupt the record recovery would mount: adjudication falls back to an
  // older epoch, whose stale watermark merely re-drains segments already
  // applied — committed data must come back bit-exact.
  sim::SimClock clock;
  nvm::NvmDevice nvm(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 12);
  const backend::NvLogStackedConfig cfg =
      stacked_cfg(backend::NvLogInner::kSharded);

  Expected committed;
  {
    auto be = backend::NvLogStackedBackend::format(nvm, disk, cfg);
    std::uint64_t seed = 1;
    for (std::uint64_t t = 0; t < 10; ++t) {
      be->begin();
      for (std::uint64_t b = 0; b < 4; ++b) {
        const std::uint64_t blkno = t * 4 + b;
        const auto data = block_of(seed);
        be->stage(blkno, data);
        committed[blkno] = seed;
        ++seed;
      }
      be->commit();
      if (t % 2 == 1) be->flush();  // several watermark advances
    }
    ASSERT_GT(be->tier().watermark_epoch(), 2u);

    // Tear the winning slot (the log view starts at device offset 0).
    const std::uint64_t slot = nvlog::watermark_slot_of(
        be->tier().watermark_epoch(), cfg.log.watermark_slots);
    std::array<std::byte, nvlog::kWatermarkSlotBytes> raw{};
    nvm.load(nvlog::watermark_slot_off(slot), raw);
    raw[nvlog::kWmCrcAt] ^= std::byte{0xFF};
    nvm.store(nvlog::watermark_slot_off(slot), raw);
    nvm.persist(nvlog::watermark_slot_off(slot), raw.size());
  }

  auto rec = backend::NvLogStackedBackend::recover(nvm, disk, cfg);
  std::vector<std::byte> buf(kBlock);
  for (const auto& [blkno, seed] : committed) {
    rec->read_block(blkno, buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(seed)))
        << "block " << blkno;
  }
}

TEST(NvLogStacked, MetricsIncludeTierAndInner) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 12);
  auto be = backend::NvLogStackedBackend::format(
      nvm, disk, stacked_cfg(backend::NvLogInner::kSharded));
  obs::MetricsRegistry reg;
  be->register_metrics(reg, "");
  EXPECT_TRUE(reg.has("nvlog.absorbed_txns"));
  EXPECT_TRUE(reg.has("nvlog.meta_line_wear"));
  EXPECT_TRUE(reg.has("nvlog.watermark_records"));
  EXPECT_NE(reg.histogram("nvlog.drain_apply"), nullptr);
}

}  // namespace
}  // namespace tinca
