// Functional tests for TincaCache: transactions, COW, role switch,
// replacement, read caching, write-back, restart recovery of clean state.
#include <gtest/gtest.h>

#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/tinca_cache.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 2 << 20;  // small cache: forces eviction

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice disk{1 << 16};
  TincaConfig cfg;
  std::unique_ptr<TincaCache> cache;

  explicit Fixture(std::uint64_t ring_bytes = 4096) {
    cfg.ring_bytes = ring_bytes;
    cache = TincaCache::format(dev, disk, cfg);
  }

  std::vector<std::byte> block(std::uint64_t seed) const {
    std::vector<std::byte> b(kBlockSize);
    fill_pattern(b, seed);
    return b;
  }

  std::vector<std::byte> read(std::uint64_t blkno) {
    std::vector<std::byte> b(kBlockSize);
    cache->read_block(blkno, b);
    return b;
  }
};

TEST(TincaCache, CommitThenReadBack) {
  Fixture f;
  auto txn = f.cache->tinca_init_txn();
  txn.add(10, f.block(1));
  txn.add(20, f.block(2));
  f.cache->tinca_commit(txn);
  EXPECT_EQ(f.read(10), f.block(1));
  EXPECT_EQ(f.read(20), f.block(2));
  EXPECT_FALSE(txn.open());
}

TEST(TincaCache, CommittedBlocksAreBufferRoleAndDirty) {
  Fixture f;
  f.cache->write_block(5, f.block(9));
  const CacheEntry e = f.cache->entry_for(5);
  EXPECT_TRUE(e.valid);
  EXPECT_EQ(e.role, Role::kBuffer);
  EXPECT_TRUE(e.modified);
  EXPECT_EQ(e.prev_nvm, CacheEntry::kFresh);
}

TEST(TincaCache, WriteHitUsesCowAndKeepsPrev) {
  Fixture f;
  f.cache->write_block(5, f.block(1));
  const std::uint32_t first_nvm = f.cache->entry_for(5).curr_nvm;
  f.cache->write_block(5, f.block(2));
  const CacheEntry e = f.cache->entry_for(5);
  EXPECT_NE(e.curr_nvm, first_nvm);
  EXPECT_EQ(e.prev_nvm, first_nvm);  // stale after commit, but recorded
  EXPECT_EQ(f.read(5), f.block(2));
  EXPECT_EQ(f.cache->stats().cow_writes, 1u);
}

TEST(TincaCache, StagingSameBlockTwiceKeepsLatest) {
  Fixture f;
  auto txn = f.cache->tinca_init_txn();
  txn.add(3, f.block(1));
  txn.add(3, f.block(2));
  EXPECT_EQ(txn.block_count(), 1u);
  f.cache->tinca_commit(txn);
  EXPECT_EQ(f.read(3), f.block(2));
}

TEST(TincaCache, EmptyCommitSucceeds) {
  Fixture f;
  auto txn = f.cache->tinca_init_txn();
  f.cache->tinca_commit(txn);
  EXPECT_EQ(f.cache->stats().txns_committed, 1u);
}

TEST(TincaCache, AbortDiscardsRunningTxn) {
  Fixture f;
  auto txn = f.cache->tinca_init_txn();
  txn.add(7, f.block(1));
  f.cache->tinca_abort(txn);
  EXPECT_FALSE(f.cache->cached(7));
  EXPECT_EQ(f.cache->stats().txns_aborted, 1u);
  EXPECT_THROW(f.cache->tinca_commit(txn), ContractViolation);
}

TEST(TincaCache, DoubleCommitRejected) {
  Fixture f;
  auto txn = f.cache->tinca_init_txn();
  txn.add(1, f.block(1));
  f.cache->tinca_commit(txn);
  EXPECT_THROW(f.cache->tinca_commit(txn), ContractViolation);
}

TEST(TincaCache, OversizedTransactionRejected) {
  Fixture f;
  auto txn = f.cache->tinca_init_txn();
  for (std::uint64_t i = 0; i <= f.cache->max_txn_blocks(); ++i)
    txn.add(i, f.block(i));
  EXPECT_THROW(f.cache->tinca_commit(txn), ContractViolation);
}

TEST(TincaCache, ReadMissFillsCacheClean) {
  Fixture f;
  auto data = f.block(77);
  f.disk.write(123, data);
  EXPECT_EQ(f.read(123), data);
  EXPECT_TRUE(f.cache->cached(123));
  EXPECT_FALSE(f.cache->dirty(123));
  EXPECT_EQ(f.cache->stats().read_misses, 1u);
  EXPECT_EQ(f.read(123), data);
  EXPECT_EQ(f.cache->stats().read_hits, 1u);
}

TEST(TincaCache, ReadCachingCanBeDisabled) {
  Fixture f;
  TincaConfig cfg;
  cfg.ring_bytes = 4096;
  cfg.cache_reads = false;
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  auto cache = TincaCache::format(dev, disk, cfg);
  std::vector<std::byte> buf(kBlockSize);
  disk.write(5, f.block(1));
  cache->read_block(5, buf);
  EXPECT_FALSE(cache->cached(5));
}

TEST(TincaCache, EvictionWritesDirtyVictimToDisk) {
  Fixture f;
  const std::uint64_t cap = f.cache->capacity_blocks();
  // Fill the cache beyond capacity with dirty blocks.
  for (std::uint64_t i = 0; i < cap + 10; ++i)
    f.cache->write_block(i, f.block(i));
  EXPECT_GT(f.cache->stats().evictions, 0u);
  EXPECT_GT(f.disk.stats().blocks_written, 0u);
  // Every evicted block must be readable with its committed contents.
  for (std::uint64_t i = 0; i < cap + 10; ++i)
    ASSERT_EQ(f.read(i), f.block(i)) << "block " << i;
}

TEST(TincaCache, LruOrderGovernsEviction) {
  Fixture f;
  const std::uint64_t cap = f.cache->capacity_blocks();
  for (std::uint64_t i = 0; i < cap - 2; ++i)
    f.cache->write_block(i, f.block(i));
  // Touch block 0 so it becomes MRU.
  (void)f.read(0);
  // Push enough new blocks to evict a few victims.
  for (std::uint64_t i = cap; i < cap + 4; ++i)
    f.cache->write_block(i, f.block(i));
  EXPECT_TRUE(f.cache->cached(0)) << "recently-touched block evicted";
}

TEST(TincaCache, FlushDirtyWritesBackEverything) {
  Fixture f;
  for (std::uint64_t i = 0; i < 16; ++i) f.cache->write_block(i, f.block(i));
  f.cache->flush_dirty();
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(f.cache->dirty(i));
    std::vector<std::byte> got(kBlockSize);
    f.disk.read(i, got);
    EXPECT_EQ(got, f.block(i));
  }
}

TEST(TincaCache, CommitLeavesOnlyStagedPublishLines) {
  Fixture f;
  auto txn = f.cache->tinca_init_txn();
  for (std::uint64_t i = 0; i < 8; ++i) txn.add(i, f.block(i));
  f.cache->tinca_commit(txn);
  // Everything the commit claims durable is flushed before the fence; the
  // only dirty lines left are the lazily-published metadata (role-switch
  // entry lines + the commit-hint line), which the next batch sweeps out.
  // 8 entries span at most 3 entry-table lines (4 entries per 64 B line).
  EXPECT_LE(f.dev.dirty_lines(), 4u);
  f.cache->sync_metadata();
  EXPECT_EQ(f.dev.dirty_lines(), 0u);
}

TEST(TincaCache, RestartRecoversDirtyBlocks) {
  Fixture f;
  for (std::uint64_t i = 0; i < 12; ++i) f.cache->write_block(i, f.block(i));
  // Clean restart: mount a second instance on the same media.
  auto remounted = TincaCache::recover(f.dev, f.disk, f.cfg);
  for (std::uint64_t i = 0; i < 12; ++i) {
    std::vector<std::byte> got(kBlockSize);
    remounted->read_block(i, got);
    ASSERT_EQ(got, f.block(i)) << "block " << i;
    EXPECT_TRUE(remounted->dirty(i));
  }
  EXPECT_EQ(remounted->stats().recovered_entries, 12u);
}

TEST(TincaCache, RestartDropsCleanEntries) {
  Fixture f;
  f.disk.write(50, f.block(50));
  (void)f.read(50);  // clean fill
  f.cache->write_block(60, f.block(60));
  auto remounted = TincaCache::recover(f.dev, f.disk, f.cfg);
  EXPECT_FALSE(remounted->cached(50));
  EXPECT_TRUE(remounted->cached(60));
}

TEST(TincaCache, RecoverRejectsForeignMedia) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  EXPECT_THROW(TincaCache::recover(dev, disk, TincaConfig{.ring_bytes = 4096}),
               ContractViolation);
}

TEST(TincaCache, RoleSwitchCountMatchesBlocks) {
  Fixture f;
  auto txn = f.cache->tinca_init_txn();
  for (std::uint64_t i = 0; i < 5; ++i) txn.add(i, f.block(i));
  f.cache->tinca_commit(txn);
  EXPECT_EQ(f.cache->stats().role_switches, 5u);
  EXPECT_EQ(f.cache->stats().blocks_committed, 5u);
}

TEST(TincaCache, BlocksPerTxnHistogramFeedsFig13) {
  Fixture f;
  for (int round = 0; round < 4; ++round) {
    auto txn = f.cache->tinca_init_txn();
    for (std::uint64_t i = 0; i < 3; ++i) txn.add(100 + i, f.block(i));
    f.cache->tinca_commit(txn);
  }
  const auto& h = f.cache->stats().blocks_per_txn;
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(TincaCache, PrevVersionPinnedDuringCommitNotLeaked) {
  Fixture f;
  f.cache->write_block(1, f.block(1));
  const std::uint64_t free_before = f.cache->free_blocks();
  f.cache->write_block(1, f.block(2));  // COW: transiently two versions
  // After commit the previous version's block must be reclaimed.
  EXPECT_EQ(f.cache->free_blocks(), free_before);
}

TEST(TincaCache, ClflushPerWriteFarBelowClassicLevels) {
  // Sanity bound for the Fig 7(b) mechanism: a committed 4 KB block costs
  // about 64 data-line flushes plus a handful of metadata flushes.
  Fixture f;
  const auto before = f.dev.stats().clflush;
  auto txn = f.cache->tinca_init_txn();
  for (std::uint64_t i = 0; i < 10; ++i) txn.add(i, f.block(i));
  f.cache->tinca_commit(txn);
  const double per_block =
      static_cast<double>(f.dev.stats().clflush - before) / 10.0;
  EXPECT_GE(per_block, 64.0);
  EXPECT_LE(per_block, 75.0);
}

}  // namespace
}  // namespace tinca::core
