// Directed group-commit tests (DESIGN.md §14).
//
// The randomized harnesses (fault_fuzz_test, fs_fuzz_test) cover group
// commit statistically; these tests pin each pipeline cut point by name:
//
//   - a batch staged but not sealed rolls back every member;
//   - a cut at ANY persistence point inside commit_group() leaves either
//     none of the batch or all of it (exhaustive crash-point sweep);
//   - an acked batch survives total loss of unflushed lines (the publish
//     hint is lazy, the commit record is not);
//   - the sharded commit_batch is atomic across shards at every cut point
//     (the §15 cross-stream commit record: all shard portions or none);
//   - an aborted transaction never disturbs batched commits around it;
//   - concurrent committers drain through the per-shard batcher without
//     losing a transaction (the TSan stress in ci.sh).
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "backend/nvlog_backend.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "shard/sharded_tinca.h"
#include "tinca/tinca_cache.h"
#include "tinca/verify.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 1 << 20;
constexpr std::uint64_t kRing = 4096;

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

// One fixed three-member batch with cross-member overlaps, committed on top
// of a five-block base transaction.  Last writer wins in member order, so
// the merged image is {10→5, 11→3, 12→4} plus the base blocks.
using Spec = std::vector<std::pair<std::uint64_t, std::uint64_t>>;
const std::vector<Spec> kBase = {{{0, 100}, {1, 101}, {2, 102}, {3, 103},
                                  {4, 104}}};
const std::vector<Spec> kBatch = {{{10, 1}, {11, 2}},
                                  {{11, 3}, {12, 4}},
                                  {{10, 5}}};

std::map<std::uint64_t, std::uint64_t> expected_of(
    const std::vector<Spec>& specs) {
  std::map<std::uint64_t, std::uint64_t> out;
  for (const Spec& s : specs)
    for (const auto& [blkno, seed] : s) out[blkno] = seed;
  return out;
}

void commit_specs_grouped(TincaCache& cache, const std::vector<Spec>& specs) {
  std::vector<Transaction> staged;
  staged.reserve(specs.size());
  for (const Spec& s : specs) {
    staged.emplace_back(cache.tinca_init_txn());
    for (const auto& [blkno, seed] : s) staged.back().add(blkno, block_of(seed));
  }
  std::vector<Transaction*> ptrs;
  for (Transaction& t : staged) ptrs.push_back(&t);
  cache.commit_group(ptrs);
}

bool state_matches(TincaCache& cache,
                   const std::map<std::uint64_t, std::uint64_t>& expect,
                   const std::vector<std::uint64_t>& universe,
                   std::string* why) {
  std::vector<std::byte> buf(kBlockSize);
  const std::vector<std::byte> zero(kBlockSize, std::byte{0});
  for (const std::uint64_t blkno : universe) {
    cache.read_block(blkno, buf);
    const auto it = expect.find(blkno);
    const std::vector<std::byte> want =
        it == expect.end() ? zero : block_of(it->second);
    if (buf != want) {
      *why = "block " + std::to_string(blkno) + " mismatch";
      return false;
    }
  }
  return true;
}

TEST(GroupCommit, MergesLwwWithOneFenceAndCountsStats) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = kRing});
  commit_specs_grouped(*cache, kBase);

  const std::uint64_t fences_before = cache->stats().commit_fences;
  commit_specs_grouped(*cache, kBatch);

  std::string why;
  EXPECT_TRUE(state_matches(*cache, expected_of({kBase[0], kBatch[0],
                                                 kBatch[1], kBatch[2]}),
                            {0, 1, 2, 3, 4, 10, 11, 12}, &why))
      << why;
  const TincaCacheStats& s = cache->stats();
  EXPECT_EQ(s.txns_committed, 1u + 3u);
  EXPECT_EQ(s.commit_batches, 2u);
  EXPECT_EQ(s.commit_batch_size.max(), 3u);
  // Blocks 10 and 11 were each superseded once inside the batch.
  EXPECT_EQ(s.group_merged_writes, 2u);
  // The whole three-member batch sealed with a single fence.
  EXPECT_EQ(s.commit_fences, fences_before + 1);
}

TEST(GroupCommit, SingleMemberBatchEqualsPlainCommit) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = kRing});
  commit_specs_grouped(*cache, {kBase[0]});
  std::string why;
  EXPECT_TRUE(state_matches(*cache, expected_of(kBase), {0, 1, 2, 3, 4}, &why))
      << why;
  EXPECT_EQ(cache->stats().txns_committed, 1u);
  EXPECT_EQ(cache->stats().commit_batches, 1u);
}

TEST(GroupCommit, BatchOfEmptyTransactionsClosesThemAll) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = kRing});
  auto a = cache->tinca_init_txn();
  auto b = cache->tinca_init_txn();
  std::vector<Transaction*> ptrs = {&a, &b};
  cache->commit_group(ptrs);
  EXPECT_EQ(cache->stats().txns_committed, 2u);
  EXPECT_EQ(cache->stats().blocks_committed, 0u);
}

// Runs base + grouped batch with a crash armed at `crash_step` (0 = never).
// Returns whether commit_group returned before any crash, and the total
// persistence-point count when unarmed.
struct GroupRun {
  bool batch_acked = false;
  bool crashed = false;
  std::uint64_t steps = 0;
};

GroupRun run_grouped_history(nvm::NvmDevice& dev,
                             blockdev::MemBlockDevice& disk,
                             std::uint64_t crash_step) {
  auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = kRing});
  GroupRun r;
  try {
    commit_specs_grouped(*cache, kBase);
    dev.injector.disarm();
    if (crash_step > 0) dev.injector.arm(crash_step);
    commit_specs_grouped(*cache, kBatch);
    r.batch_acked = true;
  } catch (const nvm::CrashException&) {
    r.crashed = true;
  }
  r.steps = dev.injector.steps_seen();
  dev.injector.disarm();
  return r;
}

// The tentpole crash property: for EVERY persistence point inside the
// batched commit pipeline (COW installs, batch seal, every flushed range,
// the commit record), a power cut leaves either none of the batch or all of
// it.  No member-prefix, no torn merge — and the media stays structurally
// sound.  This is the enforcing test for the per-cut rows of the DESIGN.md
// §14 crash matrix.
TEST(GroupCommitCrash, EveryCutPointIsAllOrNothingForTheBatch) {
  const std::vector<std::uint64_t> universe = {0, 1, 2, 3, 4, 10, 11, 12};
  const auto base_state = expected_of(kBase);
  const auto full_state =
      expected_of({kBase[0], kBatch[0], kBatch[1], kBatch[2]});

  // Dry run to learn the pipeline's step count.
  std::uint64_t steps = 0;
  {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 14);
    const GroupRun dry = run_grouped_history(dev, disk, 0);
    ASSERT_TRUE(dry.batch_acked);
    steps = dry.steps;
  }
  ASSERT_GT(steps, 4u) << "pipeline exposes too few cut points to sweep";

  std::uint64_t rolled_back = 0;
  std::uint64_t survived = 0;
  Rng rng(20260808);
  for (std::uint64_t k = 1; k <= steps; ++k) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 14);
    const GroupRun r = run_grouped_history(dev, disk, k);
    ASSERT_TRUE(r.crashed) << "step " << k << " did not crash";
    dev.crash(rng, 0.5);  // each unflushed line independently survives
    auto cache = TincaCache::recover(dev, disk, TincaConfig{.ring_bytes = kRing});
    std::string why_base;
    std::string why_full;
    const bool is_base = state_matches(*cache, base_state, universe, &why_base);
    const bool is_full = state_matches(*cache, full_state, universe, &why_full);
    ASSERT_TRUE(is_base || is_full)
        << "cut at step " << k << " split the batch: vs-base " << why_base
        << ", vs-full " << why_full;
    rolled_back += is_base && !is_full ? 1 : 0;
    survived += is_full && !is_base ? 1 : 0;
    const MediaReport mr = verify_media(dev, cache->layout());
    ASSERT_TRUE(mr.ok) << "step " << k << ": "
                       << (mr.problems.empty() ? "not ok" : mr.problems[0]);
  }
  // The sweep must have seen both fates, or it proved nothing.
  EXPECT_GT(rolled_back, 0u) << "no cut ever rolled the batch back";
  EXPECT_GT(survived, 0u) << "no cut ever landed after the commit point";
}

// The earliest cut (first persistence point in the batch) must always roll
// back every member — nothing of the batch was sealed yet.
TEST(GroupCommitCrash, BatchStagedButNotSealedRollsBackAllMembers) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  const GroupRun r = run_grouped_history(dev, disk, 1);
  ASSERT_TRUE(r.crashed);
  Rng rng(7);
  dev.crash(rng, 0.5);
  auto cache = TincaCache::recover(dev, disk, TincaConfig{.ring_bytes = kRing});
  std::string why;
  EXPECT_TRUE(state_matches(*cache, expected_of(kBase),
                            {0, 1, 2, 3, 4, 10, 11, 12}, &why))
      << why;
}

// After commit_group() returns, the batch is durable even though the
// publish hint is still lazily staged: drop EVERY unflushed line (the
// harshest possible cut between durable-ack and the next hint sweep) and
// the whole batch must still recover.  An unacked batch may never surface;
// an acked one may never vanish.
TEST(GroupCommitCrash, AckedBatchSurvivesTotalDirtyLineLoss) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  const GroupRun r = run_grouped_history(dev, disk, 0);
  ASSERT_TRUE(r.batch_acked);
  dev.crash_discard_all();
  auto cache = TincaCache::recover(dev, disk, TincaConfig{.ring_bytes = kRing});
  std::string why;
  EXPECT_TRUE(state_matches(
      *cache, expected_of({kBase[0], kBatch[0], kBatch[1], kBatch[2]}),
      {0, 1, 2, 3, 4, 10, 11, 12}, &why))
      << why;
  EXPECT_GT(cache->stats().recovered_entries, 0u);
}

}  // namespace
}  // namespace tinca::core

namespace tinca::shard {
namespace {

using core::kBlockSize;

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

ShardedConfig grouped_cfg(std::uint32_t linger_us = 0) {
  ShardedConfig cfg;
  cfg.num_shards = 2;
  cfg.group_commit = true;
  cfg.group_linger_us = linger_us;
  cfg.shard.ring_bytes = 4096;
  return cfg;
}

// An aborted transaction rolls back only its own blocks: commits batched
// around it (before, after, same shard or not) are untouched.
TEST(ShardedGroupCommit, AbortRollsBackOnlyItsOwnBlocks) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto st = ShardedTinca::format(dev, disk, grouped_cfg());

  auto pre = st->init_txn();
  pre.add(1, block_of(11));
  pre.add(2, block_of(12));
  st->commit(pre);

  auto doomed = st->init_txn();
  doomed.add(1, block_of(666));
  st->abort(doomed);

  auto after = st->init_txn();
  after.add(2, block_of(22));
  st->commit(after);

  std::vector<std::byte> buf(kBlockSize);
  st->read_block(1, buf);
  EXPECT_EQ(buf, block_of(11)) << "abort leaked into a committed block";
  st->read_block(2, buf);
  EXPECT_EQ(buf, block_of(22));
}

// The deterministic multi-transaction batch: members spanning both shards
// commit per-shard all-or-nothing, and the batch stats land in the
// aggregate.
TEST(ShardedGroupCommit, CommitBatchSpansShardsAndCountsBatches) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto st = ShardedTinca::format(dev, disk, grouped_cfg());

  std::vector<ShardedTxn> members;
  for (std::uint64_t m = 0; m < 3; ++m) {
    members.emplace_back(st->init_txn());
    members.back().add(100 + m, block_of(100 + m));
    members.back().add(200 + m, block_of(200 + m));
  }
  std::vector<ShardedTxn*> ptrs;
  for (ShardedTxn& t : members) ptrs.push_back(&t);
  st->commit_batch(ptrs);

  std::vector<std::byte> buf(kBlockSize);
  for (std::uint64_t m = 0; m < 3; ++m) {
    st->read_block(100 + m, buf);
    EXPECT_EQ(buf, block_of(100 + m));
    st->read_block(200 + m, buf);
    EXPECT_EQ(buf, block_of(200 + m));
  }
  // Each member contributes one sub-transaction per shard its blocks hash
  // to, so the aggregate txn count is the number of (member, shard) pairs.
  std::uint64_t expect_subtxns = 0;
  for (std::uint64_t m = 0; m < 3; ++m)
    expect_subtxns +=
        st->shard_of(100 + m) == st->shard_of(200 + m) ? 1 : 2;
  const core::TincaCacheStats agg = st->aggregated_stats();
  EXPECT_EQ(agg.txns_committed, expect_subtxns);
  EXPECT_GT(agg.commit_batches, 0u);
  EXPECT_GT(agg.commit_batch_size.max(), 1u);
}

// Crash sweep over commit_batch: a cut at any persistence point leaves the
// batch all-or-nothing ACROSS shards — the cross-stream commit record
// (DESIGN.md §15) retired the old ascending-shard prefix contract, so a
// recovered state carrying one shard's portion without the others is a bug.
TEST(ShardedGroupCommitCrash, CommitBatchCutsAreAtomicAcrossShards) {
  // Member writes: shard portions are {100+m} and {200+m} per member; find
  // the shard of each block dynamically since the hash is opaque.
  const auto run = [](nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
                      std::uint64_t crash_step, bool* crashed) {
    auto st = ShardedTinca::format(dev, disk, grouped_cfg());
    auto pre = st->init_txn();
    pre.add(100, block_of(1));
    st->commit(pre);
    dev.injector.disarm();
    if (crash_step > 0) dev.injector.arm(crash_step);
    *crashed = false;
    try {
      std::vector<ShardedTxn> members;
      for (std::uint64_t m = 0; m < 3; ++m) {
        members.emplace_back(st->init_txn());
        members.back().add(100 + m, block_of(10 + m));
        members.back().add(200 + m, block_of(20 + m));
      }
      std::vector<ShardedTxn*> ptrs;
      for (ShardedTxn& t : members) ptrs.push_back(&t);
      st->commit_batch(ptrs);
    } catch (const nvm::CrashException&) {
      *crashed = true;
    }
    const std::uint64_t steps = dev.injector.steps_seen();
    dev.injector.disarm();
    return steps;
  };

  std::uint64_t steps = 0;
  {
    sim::SimClock clock;
    nvm::NvmDevice dev(1 << 20, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 14);
    bool crashed = false;
    steps = run(dev, disk, 0, &crashed);
    ASSERT_FALSE(crashed);
  }

  Rng rng(20260808);
  for (std::uint64_t k = 1; k <= steps; ++k) {
    sim::SimClock clock;
    nvm::NvmDevice dev(1 << 20, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 14);
    bool crashed = false;
    run(dev, disk, k, &crashed);
    ASSERT_TRUE(crashed) << "step " << k;
    dev.crash(rng, 0.5);
    auto st = ShardedTinca::recover(dev, disk, grouped_cfg());

    // Acceptable states: base, or base + the WHOLE batch.  Nothing between.
    std::map<std::uint64_t, std::uint64_t> state = {{100, 1}};
    std::vector<std::map<std::uint64_t, std::uint64_t>> candidates = {state};
    for (std::uint64_t m = 0; m < 3; ++m) {
      state[100 + m] = 10 + m;
      state[200 + m] = 20 + m;
    }
    candidates.push_back(state);

    std::vector<std::byte> buf(kBlockSize);
    const std::vector<std::byte> zero(kBlockSize, std::byte{0});
    bool ok = false;
    for (const auto& cand : candidates) {
      bool all = true;
      for (std::uint64_t blkno : {100ull, 101ull, 102ull, 200ull, 201ull,
                                  202ull}) {
        st->read_block(blkno, buf);
        const auto it = cand.find(blkno);
        if (buf != (it == cand.end() ? zero : block_of(it->second))) {
          all = false;
          break;
        }
      }
      ok |= all;
      if (ok) break;
    }
    ASSERT_TRUE(ok) << "cut at step " << k
                    << " left a non-atomic cross-shard batch state";
  }
}

// Concurrency stress for the per-shard leader/follower batcher: many
// threads commit single-shard transactions through the grouped path while
// lingering leaders coalesce them.  Every transaction must land, nothing
// may be lost or duplicated, and the run must be race-free (ci.sh runs this
// suite under ThreadSanitizer).
TEST(ShardedGroupCommitStress, ConcurrentCommittersAllLandThroughBatcher) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 21, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  ShardedConfig cfg = grouped_cfg(/*linger_us=*/200);
  cfg.shard.ring_bytes = 64 * 1024;
  auto st = ShardedTinca::format(dev, disk, cfg);

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 40;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&st, w] {
      for (int t = 0; t < kTxnsPerThread; ++t) {
        const std::uint64_t blkno =
            1000 + static_cast<std::uint64_t>(w) * kTxnsPerThread + t;
        auto txn = st->init_txn();
        txn.add(blkno, block_of(blkno));
        st->commit(txn);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  std::vector<std::byte> buf(kBlockSize);
  for (std::uint64_t blkno = 1000; blkno < 1000 + kThreads * kTxnsPerThread;
       ++blkno) {
    st->read_block(blkno, buf);
    ASSERT_EQ(buf, block_of(blkno)) << "block " << blkno;
  }
  const core::TincaCacheStats agg = st->aggregated_stats();
  EXPECT_EQ(agg.txns_committed,
            static_cast<std::uint64_t>(kThreads) * kTxnsPerThread);
  EXPECT_GT(agg.commit_batches, 0u);
  EXPECT_LE(agg.commit_batches, agg.txns_committed);
}

}  // namespace
}  // namespace tinca::shard

namespace tinca::backend {
namespace {

using core::kBlockSize;

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

NvLogStackConfig nvlog_cfg() {
  NvLogStackConfig cfg;
  cfg.log_bytes = 1 << 19;
  cfg.log.segment_bytes = 64 * 1024;
  return cfg;
}

GroupTxn member_of(std::vector<std::pair<std::uint64_t, std::uint64_t>> spec) {
  GroupTxn t;
  for (const auto& [blkno, seed] : spec) {
    const std::vector<std::byte> b = block_of(seed);
    t.writes.emplace_back(blkno, b);
  }
  return t;
}

// One group absorb: one log record run, one commit record, LWW-merged
// members, and the group counters ticking.
TEST(NvLogGroupCommit, GroupAbsorbMergesMembersWithOneCommitRecord) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 21, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto be = NvLogBackend::format(dev, disk, nvlog_cfg());

  std::vector<GroupTxn> batch;
  batch.push_back(member_of({{10, 1}, {11, 2}}));
  batch.push_back(member_of({{11, 3}, {12, 4}}));
  batch.push_back(member_of({{10, 5}}));
  be->commit_group(batch);

  std::vector<std::byte> buf(kBlockSize);
  be->read_block(10, buf);
  EXPECT_EQ(buf, block_of(5));
  be->read_block(11, buf);
  EXPECT_EQ(buf, block_of(3));
  be->read_block(12, buf);
  EXPECT_EQ(buf, block_of(4));

  const nvlog::NvLogStats& s = be->tier().stats();
  EXPECT_EQ(s.group_absorbs, 1u);
  EXPECT_EQ(s.group_absorbed_txns, 3u);
  EXPECT_EQ(s.group_merged_records, 2u);
  EXPECT_EQ(s.absorbed_txns, 1u);  // the merged batch is one log txn run
}

// Crash sweep through the group absorb: at every persistence point inside
// commit_group() the recovered log presents either no member or the whole
// merged batch.
TEST(NvLogGroupCommitCrash, GroupAbsorbCutsAreAllOrNothing) {
  const auto run = [](nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
                      std::uint64_t crash_step, bool* crashed) {
    auto be = NvLogBackend::format(dev, disk, nvlog_cfg());
    be->begin();
    const std::vector<std::byte> pre = block_of(99);
    be->stage(10, pre);
    be->commit();
    dev.injector.disarm();
    if (crash_step > 0) dev.injector.arm(crash_step);
    *crashed = false;
    try {
      std::vector<GroupTxn> batch;
      batch.push_back(member_of({{10, 1}, {11, 2}}));
      batch.push_back(member_of({{11, 3}, {12, 4}}));
      batch.push_back(member_of({{10, 5}}));
      be->commit_group(batch);
    } catch (const nvm::CrashException&) {
      *crashed = true;
    }
    const std::uint64_t steps = dev.injector.steps_seen();
    dev.injector.disarm();
    return steps;
  };

  std::uint64_t steps = 0;
  {
    sim::SimClock clock;
    nvm::NvmDevice dev(1 << 21, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 14);
    bool crashed = false;
    steps = run(dev, disk, 0, &crashed);
    ASSERT_FALSE(crashed);
  }
  ASSERT_GT(steps, 1u);

  std::uint64_t rolled_back = 0;
  std::uint64_t survived = 0;
  Rng rng(20260808);
  for (std::uint64_t k = 1; k <= steps; ++k) {
    sim::SimClock clock;
    nvm::NvmDevice dev(1 << 21, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 14);
    bool crashed = false;
    run(dev, disk, k, &crashed);
    ASSERT_TRUE(crashed) << "step " << k;
    dev.crash(rng, 0.5);
    auto be = NvLogBackend::recover(dev, disk, nvlog_cfg());

    std::vector<std::byte> buf(kBlockSize);
    be->read_block(10, buf);
    const bool has_batch = buf == block_of(5);
    if (!has_batch) {
      ASSERT_EQ(buf, block_of(99)) << "step " << k << ": block 10 torn";
      be->read_block(11, buf);
      ASSERT_EQ(buf, std::vector<std::byte>(kBlockSize, std::byte{0}))
          << "step " << k << ": partial batch surfaced";
      ++rolled_back;
    } else {
      be->read_block(11, buf);
      ASSERT_EQ(buf, block_of(3)) << "step " << k;
      be->read_block(12, buf);
      ASSERT_EQ(buf, block_of(4)) << "step " << k;
      ++survived;
    }
  }
  EXPECT_GT(rolled_back, 0u);
  EXPECT_GT(survived, 0u);
}

}  // namespace
}  // namespace tinca::backend
