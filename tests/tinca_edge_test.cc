// Edge-case tests for TincaCache: ring wraparound over many transactions,
// pinning under extreme pressure, the background cleaner extension, and
// recovery statistics.
#include <gtest/gtest.h>

#include <map>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/tinca_cache.h"
#include "tinca/verify.h"

namespace tinca::core {
namespace {

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

TEST(TincaEdge, RingWrapsManyTimesWithoutDrift) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  // Tiny ring: 4096 bytes = 512 slots; commit thousands of blocks.
  const TincaConfig cfg{.ring_bytes = 4096};
  auto cache = TincaCache::format(dev, disk, cfg);
  std::uint64_t seed = 1;
  for (int round = 0; round < 300; ++round) {
    auto txn = cache->tinca_init_txn();
    for (int b = 0; b < 10; ++b) {
      txn.add((seed * 7 + b) % 300, block_of(seed));
      ++seed;
    }
    cache->tinca_commit(txn);
  }
  const MediaReport r = verify_media(dev, cache->layout());
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_EQ(r.in_flight, 0u);
}

TEST(TincaEdge, TxnAtExactlyMaxSizeCommits) {
  sim::SimClock clock;
  nvm::NvmDevice dev(2 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = 65536});
  const std::uint64_t n = cache->max_txn_blocks();
  auto txn = cache->tinca_init_txn();
  for (std::uint64_t i = 0; i < n; ++i) txn.add(i, block_of(i));
  cache->tinca_commit(txn);
  EXPECT_EQ(cache->stats().blocks_committed, n);
  std::vector<std::byte> buf(kBlockSize);
  cache->read_block(n - 1, buf);
  EXPECT_EQ(buf, block_of(n - 1));
}

TEST(TincaEdge, MaxTxnFitsEvenWhenCacheIsFullOfDirtyBlocks) {
  // Every cached block dirty, then commit a max-size transaction of fresh
  // blocks: eviction must clear exactly enough room without touching the
  // in-flight (log-role) blocks.
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = 4096});
  const std::uint64_t cap = cache->capacity_blocks();
  for (std::uint64_t i = 0; i < cap; ++i) cache->write_block(i, block_of(i));
  const std::uint64_t n = cache->max_txn_blocks();
  auto txn = cache->tinca_init_txn();
  for (std::uint64_t i = 0; i < n; ++i)
    txn.add(10000 + i, block_of(10000 + i));
  cache->tinca_commit(txn);
  // All evicted dirty blocks must be on disk with committed contents.
  std::vector<std::byte> buf(kBlockSize);
  for (std::uint64_t i = 0; i < cap; i += 13) {
    cache->read_block(i, buf);
    ASSERT_EQ(buf, block_of(i)) << "block " << i;
  }
}

TEST(TincaEdge, BackgroundCleanerKeepsDirtyFractionBounded) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  TincaConfig cfg{.ring_bytes = 4096};
  cfg.clean_thresh_pct = 25;
  auto cache = TincaCache::format(dev, disk, cfg);
  const std::uint64_t cap = cache->capacity_blocks();
  for (std::uint64_t i = 0; i < cap; ++i) cache->write_block(i, block_of(i));
  EXPECT_GT(cache->stats().background_cleanings, 0u);
  std::uint64_t dirty = 0;
  for (std::uint64_t i = 0; i < cap; ++i)
    if (cache->cached(i) && cache->dirty(i)) ++dirty;
  EXPECT_LE(dirty, cap * 25 / 100 + 1);
  // Cleaned blocks stay cached and readable.
  std::vector<std::byte> buf(kBlockSize);
  cache->read_block(0, buf);
  EXPECT_EQ(buf, block_of(0));
}

TEST(TincaEdge, BackgroundCleanerOffByDefault) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = 4096});
  for (std::uint64_t i = 0; i < 64; ++i) cache->write_block(i, block_of(i));
  EXPECT_EQ(cache->stats().background_cleanings, 0u);
  EXPECT_EQ(disk.stats().blocks_written, 0u);
}

TEST(TincaEdge, RecoveryStatsReportWork) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  const TincaConfig cfg{.ring_bytes = 4096};
  {
    auto cache = TincaCache::format(dev, disk, cfg);
    for (std::uint64_t i = 0; i < 10; ++i) cache->write_block(i, block_of(i));
    // Cut mid-flush, just before the batch's commit record goes durable:
    // the staged installs (2 blocks x data+entry+record ranges) are already
    // flushed, the seal is not, so recovery must revoke both blocks.
    // Crash points: 4 per COW install (x2) + 1 batch seal + 7 mid-flush
    // ranges; the 16th fires before the last (commit-record) flush.
    dev.injector.arm(16);
    try {
      auto txn = cache->tinca_init_txn();
      txn.add(0, block_of(99));
      txn.add(1, block_of(98));
      cache->tinca_commit(txn);
    } catch (const nvm::CrashException&) {
    }
    dev.injector.disarm();
  }
  dev.crash_discard_all();
  auto recovered = TincaCache::recover(dev, disk, cfg);
  EXPECT_EQ(recovered->stats().recovered_entries, 10u);
  EXPECT_GE(recovered->stats().revoked_blocks, 1u);
}

TEST(TincaEdge, SequentialThenRandomMixedPattern) {
  // Regression-style soak: sequential fill, random overwrites, verify all.
  sim::SimClock clock;
  nvm::NvmDevice dev(2 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = 8192});
  std::map<std::uint64_t, std::uint64_t> expect;
  std::uint64_t seed = 1;
  for (std::uint64_t i = 0; i < 600; ++i) {
    cache->write_block(i, block_of(seed));
    expect[i] = seed++;
  }
  Rng rng(6);
  for (int i = 0; i < 800; ++i) {
    const std::uint64_t blkno = rng.below(600);
    cache->write_block(blkno, block_of(seed));
    expect[blkno] = seed++;
  }
  std::vector<std::byte> buf(kBlockSize);
  for (const auto& [blkno, s] : expect) {
    cache->read_block(blkno, buf);
    ASSERT_EQ(fingerprint(buf), fingerprint(block_of(s))) << blkno;
  }
}

}  // namespace
}  // namespace tinca::core
