// Tests for the observability subsystem (src/obs/).
//
// Covers: JSON build/dump/parse round trips and strict-parser rejection,
// metrics registry registration and dump parse-back, trace span nesting and
// histogram capture, disabled-tracer inertness, Chrome trace emission
// (parse-back, per-track monotonic timestamps), a multi-threaded
// ShardedTinca stress traced end-to-end, and the Stack-level metric
// registration plus the debug write-accounting cross-check.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "backend/stack_builder.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/sharded_tinca.h"

namespace tinca::obs {
namespace {

// --- Json ------------------------------------------------------------------

TEST(Json, BuildDumpParseRoundTrip) {
  Json doc = Json::object();
  doc.set("name", Json::str("tinca \"quoted\" \\ \n\t"));
  doc.set("count", Json::number(std::uint64_t{12345}));
  doc.set("ratio", Json::number(2.5));
  doc.set("ok", Json::boolean(true));
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push(Json::number(1.0));
  arr.push(Json::str("two"));
  Json inner = Json::object();
  inner.set("p99", Json::number(17500.0));
  arr.push(std::move(inner));
  doc.set("rows", std::move(arr));

  for (int indent : {0, 2}) {
    const std::string text = doc.dump(indent);
    auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    ASSERT_TRUE(parsed->is_object());
    EXPECT_EQ(parsed->find("name")->str_value(), "tinca \"quoted\" \\ \n\t");
    EXPECT_EQ(parsed->find("count")->num(), 12345.0);
    EXPECT_EQ(parsed->find("ratio")->num(), 2.5);
    EXPECT_TRUE(parsed->find("ok")->bool_value());
    EXPECT_EQ(parsed->find("nothing")->type(), Json::Type::kNull);
    const Json* rows = parsed->find("rows");
    ASSERT_TRUE(rows != nullptr && rows->is_array());
    ASSERT_EQ(rows->items().size(), 3u);
    EXPECT_EQ(rows->items()[1].str_value(), "two");
    EXPECT_EQ(rows->items()[2].find("p99")->num(), 17500.0);
  }
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json doc = Json::object();
  doc.set("zebra", Json::number(1.0));
  doc.set("apple", Json::number(2.0));
  doc.set("mango", Json::number(3.0));
  auto parsed = Json::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->members().size(), 3u);
  EXPECT_EQ(parsed->members()[0].first, "zebra");
  EXPECT_EQ(parsed->members()[1].first, "apple");
  EXPECT_EQ(parsed->members()[2].first, "mango");
}

TEST(Json, StrictParserRejectsMalformed) {
  const char* bad[] = {
      "",           "{",         "}",          "{\"a\":}",  "[1,]",
      "{\"a\" 1}",  "\"open",    "{\"a\":1}x", "nul",       "tru",
      "1.2.3",      "[1 2]",     "{'a':1}",    "+1",        "{\"a\":01}",
  };
  for (const char* text : bad)
    EXPECT_FALSE(Json::parse(text).has_value()) << "accepted: " << text;
}

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistogramsRoundTrip) {
  std::uint64_t hits = 41;
  std::uint64_t depth = 7;
  Histogram lat;
  lat.record(100);
  lat.record(200);
  lat.record(400);

  MetricsRegistry reg;
  reg.add_counter("tinca.write_hits", &hits);
  reg.add_gauge("tinca.queue_depth", [&depth] { return depth; });
  reg.add_histogram("tinca.lat.commit", &lat);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.has("tinca.write_hits"));
  EXPECT_FALSE(reg.has("tinca.write_misses"));

  // Pull model: a later increment is visible without re-registering.
  hits = 42;
  EXPECT_EQ(reg.value("tinca.write_hits"), 42u);
  EXPECT_EQ(reg.value("tinca.queue_depth"), 7u);
  ASSERT_NE(reg.histogram("tinca.lat.commit"), nullptr);
  EXPECT_EQ(reg.histogram("tinca.lat.commit")->count(), 3u);
  EXPECT_EQ(reg.histogram("tinca.write_hits"), nullptr);

  auto parsed = Json::parse(reg.to_json_text());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("tinca.write_hits")->num(), 42.0);
  EXPECT_EQ(parsed->find("tinca.queue_depth")->num(), 7.0);
  const Json* h = parsed->find("tinca.lat.commit");
  ASSERT_TRUE(h != nullptr && h->is_object());
  EXPECT_EQ(h->find("count")->num(), 3.0);
  for (const char* field : {"sum", "mean", "min", "p50", "p95", "p99", "max"})
    EXPECT_NE(h->find(field), nullptr) << field;

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("tinca.write_hits"), std::string::npos);
  EXPECT_NE(text.find("tinca.lat.commit"), std::string::npos);
}

// --- Tracer / TraceSpan ----------------------------------------------------

TEST(Tracer, SpanNestingRecordsBothDurations) {
  sim::SimClock clock;
  Tracer trace(clock, /*tid=*/0, "test.");
  Tracer::Site* outer = trace.site("outer");
  Tracer::Site* inner = trace.site("inner");
  trace.enable();

  {
    TINCA_TRACE_SPAN(trace, outer);
    clock.advance(100);
    {
      TINCA_TRACE_SPAN(trace, inner);
      clock.advance(50);
    }
    clock.advance(25);
  }

  const Histogram* ho = trace.histogram("outer");
  const Histogram* hi = trace.histogram("inner");
  ASSERT_NE(ho, nullptr);
  ASSERT_NE(hi, nullptr);
  EXPECT_EQ(ho->count(), 1u);
  EXPECT_EQ(hi->count(), 1u);
  EXPECT_EQ(ho->sum(), 175u);  // outer covers the inner span
  EXPECT_EQ(hi->sum(), 50u);
  EXPECT_EQ(trace.histogram("never_interned"), nullptr);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  sim::SimClock clock;
  Tracer trace(clock);
  Tracer::Site* site = trace.site("op");
  ASSERT_FALSE(trace.enabled());
  for (int i = 0; i < 100; ++i) {
    TINCA_TRACE_SPAN(trace, site);
    clock.advance(10);
  }
  EXPECT_EQ(trace.histogram("op")->count(), 0u);
}

TEST(Tracer, EnabledWithoutSinkRecordsHistogramOnly) {
  sim::SimClock clock;
  Tracer trace(clock);
  Tracer::Site* site = trace.site("op");
  trace.enable();
  ASSERT_EQ(trace.sink(), nullptr);
  {
    TINCA_TRACE_SPAN(trace, site);
    clock.advance(10);
  }
  EXPECT_EQ(trace.histogram("op")->count(), 1u);
}

TEST(Tracer, RegisterIntoPrefixesSiteNames) {
  sim::SimClock clock;
  Tracer trace(clock);
  Tracer::Site* site = trace.site("commit");
  trace.enable();
  {
    TINCA_TRACE_SPAN(trace, site);
    clock.advance(10);
  }
  MetricsRegistry reg;
  trace.register_into(reg, "tinca.lat.");
  ASSERT_TRUE(reg.has("tinca.lat.commit"));
  EXPECT_EQ(reg.histogram("tinca.lat.commit")->count(), 1u);
}

// Walk a parsed Chrome trace document; fail on structural violations and
// return per-(pid, tid) event counts.
std::map<std::pair<double, double>, int> check_chrome_trace(const Json& doc) {
  const Json* events = doc.find("traceEvents");
  EXPECT_TRUE(events != nullptr && events->is_array());
  std::map<std::pair<double, double>, double> last_ts;
  std::map<std::pair<double, double>, int> per_track;
  for (const Json& ev : events->items()) {
    const std::string& ph = ev.find("ph")->str_value();
    EXPECT_TRUE(ph == "M" || ph == "X") << ph;
    if (ph == "M") continue;
    const std::pair<double, double> track{ev.find("pid")->num(),
                                          ev.find("tid")->num()};
    const double ts = ev.find("ts")->num();
    EXPECT_GE(ev.find("dur")->num(), 0.0);
    EXPECT_FALSE(ev.find("name")->str_value().empty());
    auto [it, fresh] = last_ts.try_emplace(track, ts);
    if (!fresh) {
      EXPECT_GE(ts, it->second) << "track (" << track.first << ","
                                << track.second << ") not monotonic";
      it->second = ts;
    }
    ++per_track[track];
  }
  return per_track;
}

TEST(TraceSink, ChromeJsonParsesBackWithMonotonicTracks) {
  sim::SimClock clock;
  Tracer trace(clock, /*tid=*/3, "tinca.");
  Tracer::Site* site = trace.site("commit");
  TraceSink sink;
  sink.set_track_name(kVirtualPid, 3, "shard 3");
  trace.attach_sink(&sink);
  EXPECT_TRUE(trace.enabled()) << "attach_sink must enable";

  for (int i = 0; i < 5; ++i) {
    TINCA_TRACE_SPAN(trace, site);
    clock.advance(100);
  }
  EXPECT_EQ(sink.event_count(), 5u);

  auto doc = Json::parse(sink.to_chrome_json());
  ASSERT_TRUE(doc.has_value());
  const auto per_track = check_chrome_trace(*doc);
  ASSERT_EQ(per_track.size(), 1u);
  EXPECT_EQ(per_track.begin()->first,
            (std::pair<double, double>{kVirtualPid, 3.0}));
  EXPECT_EQ(per_track.begin()->second, 5);

  // Events carry the prefixed name; the track metadata carries its label.
  const std::string text = sink.to_chrome_json();
  EXPECT_NE(text.find("tinca.commit"), std::string::npos);
  EXPECT_NE(text.find("shard 3"), std::string::npos);
}

// --- ShardedTinca end-to-end trace -----------------------------------------

TEST(ShardedTrace, MultiThreadedStressProducesPerShardTracks) {
  constexpr std::uint32_t kShards = 4;
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 32;

  sim::SimClock clock;
  nvm::NvmDevice dev(8 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  shard::ShardedConfig cfg;
  cfg.num_shards = kShards;
  cfg.shard.ring_bytes = 1 << 16;
  auto st = shard::ShardedTinca::format(dev, disk, cfg);

  TraceSink sink;
  st->attach_trace_sink(&sink);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&st, t] {
      std::vector<std::byte> blk(core::kBlockSize);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn = st->init_txn();
        for (std::uint64_t b = 0; b < 4; ++b) {
          fill_pattern(blk, static_cast<std::uint64_t>(t) * 1000 + i + b);
          txn.add(static_cast<std::uint64_t>(t * kTxnsPerThread + i) * 4 + b,
                  blk);
        }
        st->commit(txn);
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_GT(sink.event_count(), 0u);
  auto doc = Json::parse(sink.to_chrome_json());
  ASSERT_TRUE(doc.has_value());
  const auto per_track = check_chrome_trace(*doc);

  // Every shard's virtual-time track must have commit events, and the
  // wall-clock front-end (lock/publish phases) must appear under kHostPid.
  std::set<double> virtual_tids;
  bool host_events = false;
  for (const auto& [track, count] : per_track) {
    EXPECT_GT(count, 0);
    if (track.first == kVirtualPid) virtual_tids.insert(track.second);
    if (track.first == kHostPid) host_events = true;
  }
  EXPECT_EQ(virtual_tids.size(), kShards);
  EXPECT_TRUE(host_events) << "front-end lock/publish spans missing";

  // The front-end histograms saw every commit.
  const Histogram* commit = st->tracer().histogram("commit");
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(commit->count(),
            static_cast<std::uint64_t>(kThreads) * kTxnsPerThread);
}

// --- Stack integration -----------------------------------------------------

TEST(StackObs, RegisterMetricsAndWriteAccounting) {
  backend::StackConfig cfg;
  cfg.kind = backend::StackKind::kTinca;
  cfg.nvm_bytes = 8 << 20;
  cfg.disk_blocks = 1 << 14;
  backend::Stack stack(cfg);
  stack.enable_tracing();

  auto& be = stack.backend();
  std::vector<std::byte> blk(core::kBlockSize);
  for (std::uint64_t i = 0; i < 64; ++i) {
    be.begin();
    fill_pattern(blk, i);
    be.stage(i, blk);
    be.commit();
  }

  MetricsRegistry reg;
  stack.register_metrics(reg);
  EXPECT_TRUE(reg.has("nvm.clflush"));
  EXPECT_TRUE(reg.has("disk.blocks_written"));
  EXPECT_TRUE(reg.has("sim.now_ns"));
  EXPECT_TRUE(reg.has("tinca.write_hits"));
  ASSERT_TRUE(reg.has("tinca.lat.commit"));
  EXPECT_GT(reg.value("nvm.clflush"), 0u);
  EXPECT_EQ(reg.histogram("tinca.lat.commit")->count(), 64u);

  // The debug cross-check must hold after a clean commit sequence.
  stack.assert_write_accounting();

  auto parsed = Json::parse(reg.to_json_text());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_GT(parsed->find("nvm.clflush")->num(), 0.0);
}

TEST(StackObs, ShardedStackRegistersPerShardMetrics) {
  backend::StackConfig cfg;
  cfg.kind = backend::StackKind::kShardedTinca;
  cfg.nvm_bytes = 8 << 20;
  cfg.disk_blocks = 1 << 14;
  cfg.tinca_shards = 4;
  backend::Stack stack(cfg);

  MetricsRegistry reg;
  stack.register_metrics(reg);
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_TRUE(reg.has("sharded.shard" + std::to_string(s) + ".write_hits"))
        << s;
  stack.assert_write_accounting();
}

}  // namespace
}  // namespace tinca::obs
