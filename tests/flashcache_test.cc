// Unit tests for the Flashcache-style baseline cache.
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "classic/flashcache.h"
#include "common/bytes.h"

namespace tinca::classic {
namespace {

constexpr std::size_t kNvmBytes = 4 << 20;

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice disk{1 << 16};
  FlashCacheConfig cfg;
  std::unique_ptr<FlashCache> cache;

  Fixture() { cache = FlashCache::format(dev, disk, cfg); }

  std::vector<std::byte> block(std::uint64_t seed) const {
    std::vector<std::byte> b(blockdev::kBlockSize);
    fill_pattern(b, seed);
    return b;
  }
};

TEST(FlashCache, WriteThenReadHits) {
  Fixture f;
  f.cache->write_block(10, f.block(1));
  std::vector<std::byte> got(blockdev::kBlockSize);
  f.cache->read_block(10, got);
  EXPECT_EQ(got, f.block(1));
  EXPECT_EQ(f.cache->stats().read_hits, 1u);
  EXPECT_TRUE(f.cache->dirty(10));
}

TEST(FlashCache, EveryWritePersistsAMetadataBlock) {
  Fixture f;
  const auto before = f.cache->stats().metadata_block_writes;
  f.cache->write_block(1, f.block(1));
  f.cache->write_block(2, f.block(2));
  EXPECT_EQ(f.cache->stats().metadata_block_writes - before, 2u);
}

TEST(FlashCache, MetadataUpdatesCanBeWaived) {
  // The Fig 4 ablation: no synchronous metadata → far fewer flushes.
  sim::SimClock c1, c2;
  nvm::NvmDevice d1(kNvmBytes, pcm_profile(), c1);
  nvm::NvmDevice d2(kNvmBytes, pcm_profile(), c2);
  blockdev::MemBlockDevice disk1(1 << 16), disk2(1 << 16);
  FlashCacheConfig with, without;
  without.sync_metadata = false;
  auto a = FlashCache::format(d1, disk1, with);
  auto b = FlashCache::format(d2, disk2, without);
  std::vector<std::byte> buf(blockdev::kBlockSize);
  for (std::uint64_t i = 0; i < 64; ++i) {
    a->write_block(i, buf);
    b->write_block(i, buf);
  }
  EXPECT_GT(d1.stats().clflush, 15 * d2.stats().clflush / 10)
      << "sync metadata should roughly double flush traffic";
}

TEST(FlashCache, WriteCostsRoughlyTwoBlocksOfFlushes) {
  Fixture f;
  const auto before = f.dev.stats().clflush;
  f.cache->write_block(77, f.block(1));
  const auto per_write = f.dev.stats().clflush - before;
  // 64 data lines + 64 metadata lines.
  EXPECT_EQ(per_write, 128u);
}

TEST(FlashCache, EvictionWritesDirtyVictims) {
  Fixture f;
  const std::uint64_t cap = f.cache->capacity_blocks();
  for (std::uint64_t i = 0; i < cap + FlashCacheConfig::kAssoc; ++i)
    f.cache->write_block(i, f.block(i));
  EXPECT_GT(f.cache->stats().evictions, 0u);
  EXPECT_GT(f.disk.stats().blocks_written, 0u);
  // All data must remain readable with correct contents.
  std::vector<std::byte> got(blockdev::kBlockSize);
  for (std::uint64_t i = 0; i < cap; i += 97) {
    f.cache->read_block(i, got);
    ASSERT_EQ(got, f.block(i)) << "block " << i;
  }
}

TEST(FlashCache, RecoveryRestoresDirtyState) {
  Fixture f;
  for (std::uint64_t i = 0; i < 32; ++i) f.cache->write_block(i, f.block(i));
  auto remounted = FlashCache::recover(f.dev, f.disk, f.cfg);
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(remounted->cached(i));
    EXPECT_TRUE(remounted->dirty(i));
    std::vector<std::byte> got(blockdev::kBlockSize);
    remounted->read_block(i, got);
    ASSERT_EQ(got, f.block(i));
  }
}

TEST(FlashCache, CrashAfterAcknowledgedWriteIsDurable) {
  Fixture f;
  f.cache->write_block(5, f.block(9));
  f.dev.crash_discard_all();  // acknowledged == flushed, so it survives
  auto remounted = FlashCache::recover(f.dev, f.disk, f.cfg);
  std::vector<std::byte> got(blockdev::kBlockSize);
  remounted->read_block(5, got);
  EXPECT_EQ(got, f.block(9));
}

TEST(FlashCache, FlushDirtyCleansCache) {
  Fixture f;
  for (std::uint64_t i = 0; i < 8; ++i) f.cache->write_block(i, f.block(i));
  f.cache->flush_dirty();
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(f.cache->dirty(i));
    std::vector<std::byte> got(blockdev::kBlockSize);
    f.disk.read(i, got);
    EXPECT_EQ(got, f.block(i));
  }
}

TEST(FlashCache, ReadMissFillsCache) {
  Fixture f;
  f.disk.write(100, f.block(4));
  std::vector<std::byte> got(blockdev::kBlockSize);
  f.cache->read_block(100, got);
  EXPECT_EQ(got, f.block(4));
  EXPECT_TRUE(f.cache->cached(100));
  EXPECT_FALSE(f.cache->dirty(100));
}

TEST(FlashCache, RecoverRejectsForeignMedia) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  EXPECT_THROW(FlashCache::recover(dev, disk, FlashCacheConfig{}),
               ContractViolation);
}

}  // namespace
}  // namespace tinca::classic
