// Concurrency stress for multi-stream cross-shard commits (DESIGN.md §15),
// run under ThreadSanitizer in ci.sh.
//
// Writers mix single-shard and cross-shard transactions; every cross-shard
// transaction writes the SAME value to one designated block per shard, so a
// snapshot pinned mid-flight can check cross-stream atomicity by equality:
// if MVCC readers ever observe two designated blocks disagreeing, a
// partially published cross-stream transaction leaked through the snapshot
// seqlock.  Single-shard traffic on disjoint blocks keeps the per-stream
// rings, group batcher and cleaner busy around the invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "blockdev/faulty_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "shard/sharded_tinca.h"

namespace tinca::shard {
namespace {

constexpr std::uint32_t kShards = 4;
constexpr std::uint32_t kWriters = 6;
constexpr std::uint32_t kReaders = 2;
constexpr std::uint32_t kTxnsPerWriter = 60;

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(core::kBlockSize);
  fill_pattern(b, seed);
  return b;
}

/// One designated block per shard, lowest block numbers first.
std::vector<std::uint64_t> one_block_per_shard(const ShardedTinca& st) {
  std::vector<std::uint64_t> home(st.shard_count(), UINT64_MAX);
  std::uint32_t found = 0;
  for (std::uint64_t b = 0; found < st.shard_count(); ++b) {
    const std::uint32_t s = st.shard_of(b);
    if (home[s] == UINT64_MAX) {
      home[s] = b;
      ++found;
    }
  }
  return home;
}

TEST(MultiStreamStress, SnapshotsNeverObserveHalfACrossShardTxn) {
  sim::SimClock clock;
  nvm::NvmDevice dev(8 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);

  ShardedConfig cfg;
  cfg.num_shards = kShards;
  cfg.shard.ring_bytes = 16 * 1024;
  cfg.shard.num_streams = 2;
  cfg.group_commit = true;
  cfg.group_linger_us = 0;
  auto st = ShardedTinca::format(dev, disk, cfg);

  const auto home = one_block_per_shard(*st);

  // Seed the designated blocks with epoch value 1 so readers always find a
  // complete image.
  {
    auto seed = st->init_txn();
    for (std::uint32_t s = 0; s < kShards; ++s)
      seed.add(home[s], block_of(1));
    st->commit(seed);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> atomic_violations{0};
  std::atomic<std::uint64_t> snapshots_checked{0};
  std::atomic<std::uint64_t> epoch_source{1};

  std::vector<std::thread> threads;

  // Writers: even ids push cross-shard epochs (same value to every
  // designated block), odd ids churn single-shard private blocks.
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint32_t t = 0; t < kTxnsPerWriter; ++t) {
        if (w % 2 == 0) {
          const std::uint64_t epoch =
              epoch_source.fetch_add(1, std::memory_order_relaxed) + 1;
          auto txn = st->init_txn();
          for (std::uint32_t s = 0; s < kShards; ++s)
            txn.add(home[s], block_of(epoch));
          st->commit(txn);
        } else {
          // Private universe per writer: no cross-writer block conflicts.
          const std::uint64_t blkno = 100 + w * 200 + (t % 50);
          auto txn = st->init_txn();
          txn.add(blkno, block_of(w * 1000 + t));
          st->commit(txn);
        }
      }
    });
  }

  // Readers: pin a snapshot mid-flight and require every designated block
  // to carry the SAME epoch value (atomicity), repeatedly until writers
  // drain.
  for (std::uint32_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      std::vector<std::byte> buf(core::kBlockSize);
      while (!stop.load(std::memory_order_acquire)) {
        ShardedSnapshot snap = st->open_snapshot();
        std::uint64_t first_fp = 0;
        bool all_equal = true;
        for (std::uint32_t s = 0; s < kShards; ++s) {
          st->snapshot_read(snap, home[s], buf);
          const std::uint64_t fp = fingerprint(buf);
          if (s == 0) {
            first_fp = fp;
          } else if (fp != first_fp) {
            all_equal = false;
          }
        }
        st->close_snapshot(snap);
        if (!all_equal)
          atomic_violations.fetch_add(1, std::memory_order_relaxed);
        snapshots_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint32_t w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (std::uint32_t r = 0; r < kReaders; ++r) threads[kWriters + r].join();

  EXPECT_EQ(atomic_violations.load(), 0u)
      << "a snapshot observed a half-published cross-shard transaction";
  EXPECT_GT(snapshots_checked.load(), 0u);

  // Liveness cross-check: every cross-shard epoch landed; the final live
  // image is the last epoch on every designated block.
  std::vector<std::byte> buf(core::kBlockSize);
  st->read_block(home[0], buf);
  const std::uint64_t final_fp = fingerprint(buf);
  for (std::uint32_t s = 1; s < kShards; ++s) {
    st->read_block(home[s], buf);
    EXPECT_EQ(fingerprint(buf), final_fp)
        << "designated blocks disagree after writers drained";
  }
  const core::TincaCacheStats agg = st->aggregated_stats();
  EXPECT_GT(agg.xstream_commits, 0u)
      << "no transaction took the cross-stream commit path";
}

}  // namespace
}  // namespace tinca::shard
