// Tests for the cluster simulation: replication pipeline, client-side
// replication, and the monotonicity properties Fig 10 / Fig 11 rely on.
#include <gtest/gtest.h>

#include "cluster/minidfs.h"

namespace tinca::cluster {
namespace {

DfsConfig small_cluster(backend::StackKind kind, std::uint32_t replicas,
                        bool with_fs) {
  DfsConfig cfg;
  cfg.nodes = 4;
  cfg.replicas = replicas;
  cfg.node.stack.kind = kind;
  cfg.node.stack.nvm_bytes = 16 << 20;
  cfg.node.stack.disk_blocks = 1 << 14;
  cfg.node.stack.classic.journal_blocks = 1024;
  cfg.node.stack.tinca.ring_bytes = 128 * 1024;
  cfg.node.with_fs = with_fs;
  cfg.chunk_bytes = 256 * 1024;
  return cfg;
}

TEST(MiniDfs, RejectsBadGeometry) {
  DfsConfig cfg = small_cluster(backend::StackKind::kTinca, 3, false);
  cfg.replicas = 5;  // more replicas than nodes
  EXPECT_THROW(MiniDfs dfs(cfg), ContractViolation);
}

TEST(MiniDfs, TeraGenCompletesAndWritesAllReplicas) {
  MiniDfs dfs(small_cluster(backend::StackKind::kTinca, 3, false));
  const std::uint64_t bytes = 4 << 20;
  const sim::Ns t = dfs.run_teragen(bytes);
  EXPECT_GT(t, 0u);
  // With 3 replicas, total NVM ingest across nodes ≈ 3x the dataset.
  std::uint64_t stored = 0;
  for (std::uint32_t i = 0; i < dfs.node_count(); ++i)
    stored += dfs.node(i).stack().nvm().stats().bytes_stored;
  EXPECT_GT(stored, 3 * bytes);
}

TEST(MiniDfs, MoreReplicasTakeLonger) {
  const std::uint64_t bytes = 4 << 20;
  sim::Ns prev = 0;
  for (std::uint32_t r : {1u, 2u, 3u}) {
    MiniDfs dfs(small_cluster(backend::StackKind::kTinca, r, false));
    const sim::Ns t = dfs.run_teragen(bytes);
    EXPECT_GT(t, prev) << "replicas=" << r;
    prev = t;
  }
}

TEST(MiniDfs, TincaBeatsClassicOnTeraGen) {
  const std::uint64_t bytes = 4 << 20;
  MiniDfs tinca(small_cluster(backend::StackKind::kTinca, 3, false));
  MiniDfs classic(small_cluster(backend::StackKind::kClassic, 3, false));
  const sim::Ns tt = tinca.run_teragen(bytes);
  const sim::Ns tc = classic.run_teragen(bytes);
  EXPECT_LT(tt, tc);
  EXPECT_LT(tinca.total_clflush(), classic.total_clflush());
}

TEST(MiniDfs, FilebenchRunsOnReplicatedFs) {
  MiniDfs dfs(small_cluster(backend::StackKind::kTinca, 2, true));
  workloads::FilebenchConfig wl;
  wl.kind = workloads::FilebenchKind::kFileserver;
  wl.nfiles = 48;
  wl.mean_file_bytes = 16 * 1024;
  const auto r = dfs.run_filebench(wl, 300, 8);
  EXPECT_EQ(r.ops, 300u);
  EXPECT_GT(r.ops_per_sec(), 0.0);
  EXPECT_GT(r.read_ops, 0u);
  EXPECT_GT(r.write_ops, 0u);
  // Replication must leave every node's FS consistent.
  for (std::uint32_t i = 0; i < dfs.node_count(); ++i) {
    dfs.node(i).fsys().fsync();
    EXPECT_TRUE(dfs.node(i).fsys().fsck().ok) << "node " << i;
  }
}

TEST(MiniDfs, ReplicaSetsAreDisjointPerOffset) {
  MiniDfs dfs(small_cluster(backend::StackKind::kTinca, 2, true));
  workloads::FilebenchConfig wl;
  wl.nfiles = 16;
  wl.mean_file_bytes = 8 * 1024;
  (void)dfs.run_filebench(wl, 50, 4);
  // Each file must exist on exactly `replicas` nodes.
  std::uint32_t holders = 0;
  for (std::uint32_t i = 0; i < dfs.node_count(); ++i) {
    dfs.node(i).fsys().fsync();
    if (dfs.node(i).fsys().exists("/d0/f0")) ++holders;
  }
  EXPECT_EQ(holders, 2u);
}

TEST(MiniDfs, TincaBeatsClassicOnFilebench) {
  workloads::FilebenchConfig wl;
  wl.kind = workloads::FilebenchKind::kFileserver;
  wl.nfiles = 48;
  wl.mean_file_bytes = 16 * 1024;
  MiniDfs tinca(small_cluster(backend::StackKind::kTinca, 2, true));
  MiniDfs classic(small_cluster(backend::StackKind::kClassic, 2, true));
  const auto rt = tinca.run_filebench(wl, 200, 8);
  const auto rc = classic.run_filebench(wl, 200, 8);
  EXPECT_GT(rt.ops_per_sec(), rc.ops_per_sec());
}

TEST(StorageNode, MeasureReturnsChargedServiceTime) {
  NodeConfig cfg;
  cfg.stack.nvm_bytes = 8 << 20;
  cfg.stack.disk_blocks = 1 << 13;
  cfg.stack.tinca.ring_bytes = 64 * 1024;
  StorageNode node(cfg);
  const sim::Ns t = node.measure([&] {
    auto& be = node.stack().backend();
    std::vector<std::byte> blk(4096);
    be.begin();
    be.stage(1, blk);
    be.commit();
  });
  EXPECT_GT(t, 0u);
  EXPECT_THROW((void)node.fsys(), ContractViolation);
}

}  // namespace
}  // namespace tinca::cluster
