// Tests for the DRAM replacement structures: SlotLru against a reference
// model, and the free-block monitor.
#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "common/expect.h"
#include "common/rng.h"
#include "tinca/slot_lru.h"

namespace tinca::core {
namespace {

TEST(SlotLru, EmptyHasNoLru) {
  SlotLru lru(8);
  EXPECT_EQ(lru.lru(), SlotLru::kNil);
  EXPECT_EQ(lru.size(), 0u);
}

TEST(SlotLru, PushAndEvictInOrder) {
  SlotLru lru(8);
  lru.push_mru(1);
  lru.push_mru(2);
  lru.push_mru(3);
  EXPECT_EQ(lru.lru(), 1u);
  lru.remove(1);
  EXPECT_EQ(lru.lru(), 2u);
  lru.remove(2);
  EXPECT_EQ(lru.lru(), 3u);
}

TEST(SlotLru, TouchMovesToMru) {
  SlotLru lru(8);
  lru.push_mru(1);
  lru.push_mru(2);
  lru.touch(1);
  EXPECT_EQ(lru.lru(), 2u);
}

TEST(SlotLru, NewerWalksTowardMru) {
  SlotLru lru(8);
  lru.push_mru(5);
  lru.push_mru(6);
  lru.push_mru(7);
  EXPECT_EQ(lru.lru(), 5u);
  EXPECT_EQ(lru.newer(5), 6u);
  EXPECT_EQ(lru.newer(6), 7u);
  EXPECT_EQ(lru.newer(7), SlotLru::kNil);
}

TEST(SlotLru, DoubleInsertRejected) {
  SlotLru lru(4);
  lru.push_mru(0);
  EXPECT_THROW(lru.push_mru(0), ContractViolation);
}

TEST(SlotLru, RemoveOfAbsentRejected) {
  SlotLru lru(4);
  EXPECT_THROW(lru.remove(2), ContractViolation);
}

TEST(SlotLru, MatchesReferenceModelUnderRandomOps) {
  constexpr std::uint32_t kN = 64;
  SlotLru lru(kN);
  std::list<std::uint32_t> ref;  // front = MRU, back = LRU
  std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> pos;
  Rng rng(321);

  for (int step = 0; step < 20000; ++step) {
    const auto slot = static_cast<std::uint32_t>(rng.below(kN));
    const bool present = pos.contains(slot);
    switch (rng.below(3)) {
      case 0:  // insert
        if (!present) {
          lru.push_mru(slot);
          ref.push_front(slot);
          pos[slot] = ref.begin();
        }
        break;
      case 1:  // touch
        if (present) {
          lru.touch(slot);
          ref.erase(pos[slot]);
          ref.push_front(slot);
          pos[slot] = ref.begin();
        }
        break;
      case 2:  // remove
        if (present) {
          lru.remove(slot);
          ref.erase(pos[slot]);
          pos.erase(slot);
        }
        break;
    }
    ASSERT_EQ(lru.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(lru.lru(), ref.back()) << "step " << step;
    }
  }
}

TEST(FreeMonitor, HandsOutAllIdsOnce) {
  FreeMonitor mon(16);
  std::vector<bool> seen(16, false);
  for (int i = 0; i < 16; ++i) {
    const auto id = mon.take();
    ASSERT_LT(id, 16u);
    ASSERT_FALSE(seen[id]);
    seen[id] = true;
  }
  EXPECT_FALSE(mon.any());
  EXPECT_THROW(mon.take(), ContractViolation);
}

TEST(FreeMonitor, GiveRecyclesIds) {
  FreeMonitor mon(2);
  const auto a = mon.take();
  (void)mon.take();
  EXPECT_FALSE(mon.any());
  mon.give(a);
  EXPECT_EQ(mon.count(), 1u);
  EXPECT_EQ(mon.take(), a);
}

TEST(FreeMonitor, LowIdsFirst) {
  FreeMonitor mon(8);
  EXPECT_EQ(mon.take(), 0u);
  EXPECT_EQ(mon.take(), 1u);
}

TEST(FreeMonitor, ClearEmptiesPool) {
  FreeMonitor mon(4);
  mon.clear();
  EXPECT_FALSE(mon.any());
  mon.give(3);
  EXPECT_EQ(mon.count(), 1u);
}

}  // namespace
}  // namespace tinca::core
