// Tests for the extended MiniFs surface: truncate, rename, holes.
#include <gtest/gtest.h>

#include "backend/stack_builder.h"
#include "common/bytes.h"
#include "fs/minifs.h"

namespace tinca::fs {
namespace {

using backend::Stack;
using backend::StackConfig;
using backend::StackKind;

struct Fixture {
  Fixture() : stack(config()), fsys(MiniFs::mkfs(stack.backend())) {}

  static StackConfig config() {
    StackConfig cfg;
    cfg.kind = StackKind::kTinca;
    cfg.nvm_bytes = 16 << 20;
    cfg.disk_blocks = 1 << 14;
    cfg.tinca.ring_bytes = 128 * 1024;
    return cfg;
  }

  std::vector<std::byte> bytes_of(std::size_t n, std::uint64_t seed) const {
    std::vector<std::byte> b(n);
    fill_pattern(b, seed);
    return b;
  }

  Stack stack;
  std::unique_ptr<MiniFs> fsys;
};

TEST(MiniFsTruncate, ShrinkFreesBlocksAndClipsContent) {
  Fixture f;
  f.fsys->create("/t");
  f.fsys->write("/t", 0, f.bytes_of(100 * 1024, 1));
  f.fsys->truncate("/t", 10 * 1024);
  EXPECT_EQ(f.fsys->file_size("/t"), 10u * 1024);
  std::vector<std::byte> got(100 * 1024);
  EXPECT_EQ(f.fsys->read("/t", 0, got), 10u * 1024);
  EXPECT_TRUE(std::equal(got.begin(), got.begin() + 10 * 1024,
                         f.bytes_of(100 * 1024, 1).begin()));
  f.fsys->fsync();
  const auto report = f.fsys->fsck();
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

TEST(MiniFsTruncate, PartialBlockTailReadsZeroAfterRegrow) {
  Fixture f;
  f.fsys->create("/t");
  f.fsys->write("/t", 0, f.bytes_of(8192, 2));
  f.fsys->truncate("/t", 100);  // mid-block
  f.fsys->truncate("/t", 8192);  // grow back over the clipped range
  std::vector<std::byte> got(8192);
  EXPECT_EQ(f.fsys->read("/t", 0, got), 8192u);
  const auto orig = f.bytes_of(8192, 2);
  EXPECT_TRUE(std::equal(got.begin(), got.begin() + 100, orig.begin()));
  for (std::size_t i = 100; i < 8192; ++i)
    ASSERT_EQ(got[i], std::byte{0}) << "offset " << i;
}

TEST(MiniFsTruncate, GrowCreatesAHole) {
  Fixture f;
  f.fsys->create("/t");
  f.fsys->truncate("/t", 50000);
  EXPECT_EQ(f.fsys->file_size("/t"), 50000u);
  std::vector<std::byte> got(50000, std::byte{0xEE});
  EXPECT_EQ(f.fsys->read("/t", 0, got), 50000u);
  for (std::byte b : got) ASSERT_EQ(b, std::byte{0});
  f.fsys->fsync();
  EXPECT_TRUE(f.fsys->fsck().ok);
}

TEST(MiniFsTruncate, ToZeroThenReuse) {
  Fixture f;
  f.fsys->create("/t");
  f.fsys->write("/t", 0, f.bytes_of(200 * 1024, 3));
  f.fsys->truncate("/t", 0);
  EXPECT_EQ(f.fsys->file_size("/t"), 0u);
  f.fsys->write("/t", 0, f.bytes_of(4096, 4));
  std::vector<std::byte> got(4096);
  f.fsys->read("/t", 0, got);
  EXPECT_EQ(got, f.bytes_of(4096, 4));
  f.fsys->fsync();
  EXPECT_TRUE(f.fsys->fsck().ok);
}

TEST(MiniFsTruncate, ShrinkPastIndirectBoundary) {
  Fixture f;
  f.fsys->create("/t");
  f.fsys->write("/t", 0, f.bytes_of(200 * 1024, 5));  // uses indirect
  f.fsys->truncate("/t", 20 * 1024);                  // direct-only again
  std::vector<std::byte> got(20 * 1024);
  EXPECT_EQ(f.fsys->read("/t", 0, got), 20u * 1024);
  EXPECT_TRUE(std::equal(got.begin(), got.end(),
                         f.bytes_of(200 * 1024, 5).begin()));
  f.fsys->fsync();
  const auto report = f.fsys->fsck();
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

TEST(MiniFsRename, FileWithinDirectory) {
  Fixture f;
  f.fsys->create("/a");
  f.fsys->write("/a", 0, f.bytes_of(5000, 6));
  f.fsys->rename("/a", "/b");
  EXPECT_FALSE(f.fsys->exists("/a"));
  EXPECT_TRUE(f.fsys->exists("/b"));
  std::vector<std::byte> got(5000);
  EXPECT_EQ(f.fsys->read("/b", 0, got), 5000u);
  EXPECT_EQ(got, f.bytes_of(5000, 6));
}

TEST(MiniFsRename, AcrossDirectories) {
  Fixture f;
  f.fsys->mkdir("/d1");
  f.fsys->mkdir("/d2");
  f.fsys->create("/d1/f");
  f.fsys->rename("/d1/f", "/d2/g");
  EXPECT_FALSE(f.fsys->exists("/d1/f"));
  EXPECT_TRUE(f.fsys->exists("/d2/g"));
  f.fsys->fsync();
  EXPECT_TRUE(f.fsys->fsck().ok);
}

TEST(MiniFsRename, DirectoryMoveKeepsChildren) {
  Fixture f;
  f.fsys->mkdir("/old");
  f.fsys->create("/old/child");
  f.fsys->rename("/old", "/new");
  EXPECT_TRUE(f.fsys->exists("/new/child"));
  EXPECT_FALSE(f.fsys->exists("/old"));
}

TEST(MiniFsRename, RejectsBadArguments) {
  Fixture f;
  f.fsys->create("/x");
  f.fsys->create("/y");
  EXPECT_THROW(f.fsys->rename("/ghost", "/z"), ContractViolation);
  EXPECT_THROW(f.fsys->rename("/x", "/y"), ContractViolation);
  EXPECT_THROW(f.fsys->rename("/x", "/nodir/z"), ContractViolation);
}

TEST(MiniFsRename, SurvivesRemountAfterFsync) {
  Fixture f;
  f.fsys->create("/a");
  f.fsys->rename("/a", "/b");
  f.fsys->fsync();
  auto remounted = MiniFs::mount(f.stack.backend());
  EXPECT_TRUE(remounted->exists("/b"));
  EXPECT_FALSE(remounted->exists("/a"));
}

TEST(MiniFsTruncate, RejectsDirectoriesAndGhosts) {
  Fixture f;
  f.fsys->mkdir("/d");
  EXPECT_THROW(f.fsys->truncate("/d", 0), ContractViolation);
  EXPECT_THROW(f.fsys->truncate("/ghost", 0), ContractViolation);
}

}  // namespace
}  // namespace tinca::fs
