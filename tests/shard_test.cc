// Functional and concurrency tests for the sharded Tinca front-end.
//
// Covers: block→shard routing, cross-shard transactional round trips, clean
// remount, and a multi-threaded commit stress whose aftermath is crashed,
// recovered shard by shard, and checked both for data integrity and for
// structural media health (verify_media on every shard).
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "shard/sharded_tinca.h"
#include "tinca/verify.h"

namespace tinca::shard {
namespace {

constexpr std::size_t kNvmBytes = 8 << 20;  // 2 MB per shard at 4 shards
constexpr std::uint64_t kDiskBlocks = 1 << 16;

ShardedConfig small_cfg(std::uint32_t shards = 4) {
  ShardedConfig cfg;
  cfg.num_shards = shards;
  cfg.shard.ring_bytes = 4096;
  return cfg;
}

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(core::kBlockSize);
  fill_pattern(b, seed);
  return b;
}

TEST(ShardRouting, StableInRangeAndSpreading) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto st = ShardedTinca::format(dev, disk, small_cfg());

  ASSERT_EQ(st->shard_count(), 4u);
  std::vector<std::uint64_t> per_shard(4, 0);
  for (std::uint64_t b = 0; b < 1000; ++b) {
    const std::uint32_t s = st->shard_of(b);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, st->shard_of(b)) << "routing must be deterministic";
    ++per_shard[s];
  }
  // A hash spreading 1000 sequential blocks over 4 shards should land well
  // away from empty on every shard (binomial tail makes <150 astronomically
  // unlikely for a decent mix).
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_GT(per_shard[s], 150u) << "shard " << s << " starved";
}

TEST(ShardedTinca, CrossShardTxnRoundTrip) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto st = ShardedTinca::format(dev, disk, small_cfg());

  // Pick blocks until every shard is represented in one transaction.
  std::map<std::uint32_t, std::uint64_t> rep;  // shard -> block
  for (std::uint64_t b = 0; rep.size() < 4; ++b) rep.try_emplace(st->shard_of(b), b);

  auto txn = st->init_txn();
  std::uint64_t seed = 100;
  std::map<std::uint64_t, std::uint64_t> want;  // block -> seed
  for (const auto& [s, b] : rep) {
    txn.add(b, block_of(seed));
    want[b] = seed++;
  }
  ASSERT_EQ(txn.block_count(), 4u);
  st->commit(txn);
  EXPECT_FALSE(txn.open());

  std::vector<std::byte> buf(core::kBlockSize);
  for (const auto& [b, s] : want) {
    EXPECT_TRUE(st->cached(b));
    EXPECT_TRUE(st->dirty(b));
    st->read_block(b, buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(s))) << "block " << b;
  }
  const auto agg = st->aggregated_stats();
  // One front-end transaction becomes one sub-transaction per involved shard.
  EXPECT_EQ(agg.txns_committed, 4u);
  EXPECT_EQ(agg.blocks_committed, 4u);
}

TEST(ShardedTinca, RestagingABlockKeepsTheLatest) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto st = ShardedTinca::format(dev, disk, small_cfg());

  auto txn = st->init_txn();
  txn.add(7, block_of(1));
  txn.add(7, block_of(2));
  ASSERT_EQ(txn.block_count(), 1u);
  st->commit(txn);

  std::vector<std::byte> buf(core::kBlockSize);
  st->read_block(7, buf);
  EXPECT_EQ(fingerprint(buf), fingerprint(block_of(2)));
}

TEST(ShardedTinca, AbortDiscardsEverything) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto st = ShardedTinca::format(dev, disk, small_cfg());

  auto txn = st->init_txn();
  for (std::uint64_t b = 0; b < 8; ++b) txn.add(b, block_of(b + 1));
  st->abort(txn);
  EXPECT_FALSE(txn.open());
  for (std::uint64_t b = 0; b < 8; ++b) EXPECT_FALSE(st->cached(b));
  EXPECT_EQ(st->aggregated_stats().txns_committed, 0u);
}

TEST(ShardedTinca, CleanRemountKeepsCommittedData) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  std::map<std::uint64_t, std::uint64_t> want;
  {
    auto st = ShardedTinca::format(dev, disk, small_cfg());
    for (std::uint64_t t = 0; t < 10; ++t) {
      auto txn = st->init_txn();
      for (std::uint64_t b = 0; b < 5; ++b) {
        const std::uint64_t blk = t * 5 + b;
        txn.add(blk, block_of(blk + 1000));
        want[blk] = blk + 1000;
      }
      st->commit(txn);
    }
  }
  auto st = ShardedTinca::recover(dev, disk, small_cfg());
  std::vector<std::byte> buf(core::kBlockSize);
  for (const auto& [b, s] : want) {
    st->read_block(b, buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(s))) << "block " << b;
  }
}

TEST(ShardedTinca, ConcurrentCommitStressThenCrashRecoversEveryShard) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 60;
  constexpr int kBlocksPerTxn = 4;

  // Each thread owns a disjoint key range; transactions mix fresh writes and
  // rewrites so COW chains and cross-shard commits both occur.  The map each
  // thread fills is the ground truth for its own keys.
  std::vector<std::map<std::uint64_t, std::uint64_t>> truth(kThreads);
  {
    auto st = ShardedTinca::format(dev, disk, small_cfg());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const std::uint64_t lo = static_cast<std::uint64_t>(t) * 4096;
        std::uint64_t seed = static_cast<std::uint64_t>(t) << 32;
        for (int i = 0; i < kTxnsPerThread; ++i) {
          auto txn = st->init_txn();
          std::vector<std::pair<std::uint64_t, std::uint64_t>> staged;
          for (int b = 0; b < kBlocksPerTxn; ++b) {
            // Half fresh keys, half rewrites of the thread's earlier keys.
            const std::uint64_t blk =
                lo + ((b % 2 == 0) ? static_cast<std::uint64_t>(i * kBlocksPerTxn + b)
                                   : static_cast<std::uint64_t>(b));
            staged.emplace_back(blk, ++seed);
            txn.add(blk, block_of(seed));
          }
          st->commit(txn);
          // Commit returned: the staged versions are durable.
          for (const auto& [blk, s] : staged) truth[t][blk] = s;
        }
      });
    }
    for (auto& th : threads) th.join();

    const auto agg = st->aggregated_stats();
    EXPECT_GE(agg.txns_committed,
              static_cast<std::uint64_t>(kThreads) * kTxnsPerThread);
  }

  // Power failure over the whole root device, then a full sharded recovery.
  Rng rng(42);
  dev.crash(rng, 0.5);
  auto st = ShardedTinca::recover(dev, disk, small_cfg());

  // Recovery must leave no unflushed state of its own.
  EXPECT_EQ(dev.dirty_lines(), 0u);

  // Every shard's media must be structurally sound.
  for (std::uint32_t s = 0; s < st->shard_count(); ++s) {
    const auto report =
        core::verify_media(st->shard_nvm(s), st->shard_cache(s).layout());
    EXPECT_TRUE(report.ok) << "shard " << s << ": "
                           << (report.problems.empty() ? "?" : report.problems[0]);
  }

  // All data whose commit returned before the crash must read back intact.
  std::vector<std::byte> buf(core::kBlockSize);
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [blk, seed] : truth[t]) {
      st->read_block(blk, buf);
      EXPECT_EQ(fingerprint(buf), fingerprint(block_of(seed)))
          << "thread " << t << " block " << blk;
    }
  }
}

TEST(ShardedTinca, ConcurrentDisjointReadersAndWriters) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto st = ShardedTinca::format(dev, disk, small_cfg());

  // Seed some blocks, then hammer them with concurrent single-block writers
  // and readers on disjoint keys; every read must observe some committed
  // version of its own key (the pattern check catches torn blocks).
  for (std::uint64_t b = 0; b < 64; ++b) st->write_block(b, block_of(b + 1));

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> buf(core::kBlockSize);
      for (int i = 1; i <= 50; ++i) {
        const std::uint64_t blk = static_cast<std::uint64_t>(t) * 16 +
                                  static_cast<std::uint64_t>(i % 16);
        st->write_block(blk, block_of(blk + 1 + static_cast<std::uint64_t>(i) * 1000));
        st->read_block(blk, buf);
        const std::uint64_t got = fingerprint(buf);
        // The key is private to this thread, so the read must see the value
        // just written.
        EXPECT_EQ(got, fingerprint(block_of(blk + 1 + static_cast<std::uint64_t>(i) * 1000)));
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace tinca::shard
