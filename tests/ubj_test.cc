// Tests for the UBJ baseline (§5.4.4): functional behaviour, the memcpy-COW
// and txn-checkpoint properties the paper criticizes, and crash consistency
// of the commit-in-place protocol.
#include <gtest/gtest.h>

#include "backend/ubj_backend.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"

namespace tinca::ubj {
namespace {

constexpr std::size_t kNvmBytes = 2 << 20;

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, nvdimm_profile(), clock};
  blockdev::MemBlockDevice disk{1 << 14};
  UbjConfig cfg;
  std::unique_ptr<UbjStore> store;

  Fixture() { store = UbjStore::format(dev, disk, cfg); }

  std::vector<std::byte> block(std::uint64_t seed) const {
    std::vector<std::byte> b(blockdev::kBlockSize);
    fill_pattern(b, seed);
    return b;
  }

  void commit_one(std::uint64_t blkno, std::uint64_t seed) {
    store->commit_txn({{blkno, block(seed)}});
  }

  std::vector<std::byte> read(std::uint64_t blkno) {
    std::vector<std::byte> b(blockdev::kBlockSize);
    store->read_block(blkno, b);
    return b;
  }
};

TEST(UbjStore, CommitThenRead) {
  Fixture f;
  f.store->commit_txn({{10, f.block(1)}, {11, f.block(2)}});
  EXPECT_EQ(f.read(10), f.block(1));
  EXPECT_EQ(f.read(11), f.block(2));
  EXPECT_EQ(f.store->frozen_blocks(), 2u);
}

TEST(UbjStore, RewriteOfFrozenBlockTriggersMemcpyCow) {
  Fixture f;
  f.commit_one(5, 1);
  EXPECT_EQ(f.store->stats().frozen_cow_copies, 0u);
  f.commit_one(5, 2);  // block 5 is frozen: COW on the critical path
  EXPECT_EQ(f.store->stats().frozen_cow_copies, 1u);
  EXPECT_EQ(f.read(5), f.block(2));
  // Both copies occupy NVM until their transactions checkpoint.
  EXPECT_EQ(f.store->frozen_blocks(), 2u);
}

TEST(UbjStore, InPlaceUpdateOfCleanBlockIsCheap) {
  Fixture f;
  f.commit_one(5, 1);
  f.store->checkpoint_all();  // unfreezes: block 5 is now clean in cache
  EXPECT_EQ(f.store->frozen_blocks(), 0u);
  f.commit_one(5, 2);  // in-place: no COW
  EXPECT_EQ(f.store->stats().frozen_cow_copies, 0u);
  EXPECT_EQ(f.read(5), f.block(2));
}

TEST(UbjStore, CheckpointWritesWholeTransactionsToDisk) {
  Fixture f;
  f.store->commit_txn({{1, f.block(1)}, {2, f.block(2)}, {3, f.block(3)}});
  f.store->checkpoint_all();
  EXPECT_EQ(f.store->stats().checkpoint_writes, 3u);
  EXPECT_EQ(f.store->stats().checkpointed_txns, 1u);
  std::vector<std::byte> got(blockdev::kBlockSize);
  for (std::uint64_t b = 1; b <= 3; ++b) {
    f.disk.read(b, got);
    EXPECT_EQ(got, f.block(b));
  }
}

TEST(UbjStore, StaleFrozenCopiesAreStillCheckpointed) {
  // The inefficiency the paper contrasts with Tinca: a superseded frozen
  // copy still costs a disk write when its transaction checkpoints.
  Fixture f;
  f.commit_one(5, 1);
  f.commit_one(5, 2);
  f.store->checkpoint_all();
  EXPECT_EQ(f.store->stats().checkpoint_writes, 2u);
  EXPECT_EQ(f.store->stats().stale_checkpoint_writes, 1u);
  std::vector<std::byte> got(blockdev::kBlockSize);
  f.disk.read(5, got);
  EXPECT_EQ(got, f.block(2)) << "newest copy must win on disk";
}

TEST(UbjStore, SpacePressureTriggersCheckpointing) {
  Fixture f;
  const std::uint64_t cap = f.store->capacity_blocks();
  for (std::uint64_t i = 0; i < cap * 2; ++i) f.commit_one(i, i);
  EXPECT_GT(f.store->stats().checkpointed_txns, 0u);
  // Everything remains readable with the committed contents.
  for (std::uint64_t i = cap; i < cap * 2; i += 31)
    ASSERT_EQ(f.read(i), f.block(i)) << "block " << i;
}

TEST(UbjStore, ReadMissFillsCache) {
  Fixture f;
  f.disk.write(100, f.block(9));
  EXPECT_EQ(f.read(100), f.block(9));
  EXPECT_TRUE(f.store->cached(100));
  EXPECT_EQ(f.store->stats().read_misses, 1u);
  EXPECT_EQ(f.read(100), f.block(9));
  EXPECT_EQ(f.store->stats().read_hits, 1u);
}

TEST(UbjStore, RecoveryKeepsCommittedDropsWorking) {
  Fixture f;
  f.commit_one(1, 10);
  f.disk.write(50, f.block(50));
  (void)f.read(50);  // clean fill (unfrozen)
  f.dev.crash_discard_all();
  auto recovered = UbjStore::recover(f.dev, f.disk, f.cfg);
  std::vector<std::byte> got(blockdev::kBlockSize);
  recovered->read_block(1, got);
  EXPECT_EQ(got, f.block(10));
  EXPECT_FALSE(recovered->cached(50)) << "clean fills do not survive crashes";
  EXPECT_EQ(recovered->stats().recovered_entries, 1u);
}

TEST(UbjStore, CrashSweepCommitInPlaceIsAtomic) {
  // Sweep a crash through every step of a two-transaction history.
  std::uint64_t steps = 0;
  {
    Fixture f;
    f.dev.injector.disarm();
    f.store->commit_txn({{1, f.block(1)}, {2, f.block(2)}});
    f.store->commit_txn({{1, f.block(3)}, {4, f.block(4)}});
    steps = f.dev.injector.steps_seen();
  }
  ASSERT_GT(steps, 8u);
  Rng rng(7);
  for (std::uint64_t step = 1; step <= steps; ++step) {
    Fixture f;
    f.dev.injector.arm(step);
    int committed = 0;
    try {
      f.store->commit_txn({{1, f.block(1)}, {2, f.block(2)}});
      ++committed;
      f.store->commit_txn({{1, f.block(3)}, {4, f.block(4)}});
      ++committed;
    } catch (const nvm::CrashException&) {
    }
    f.dev.injector.disarm();
    f.dev.crash(rng, 0.5);
    auto rec = UbjStore::recover(f.dev, f.disk, f.cfg);

    std::vector<std::byte> b1(blockdev::kBlockSize), b2(blockdev::kBlockSize),
        b4(blockdev::kBlockSize);
    rec->read_block(1, b1);
    rec->read_block(2, b2);
    rec->read_block(4, b4);
    const auto zeros =
        fingerprint(std::vector<std::byte>(blockdev::kBlockSize, std::byte{0}));
    const bool txn1 = fingerprint(b2) == fingerprint(f.block(2));
    const bool txn2 = fingerprint(b4) == fingerprint(f.block(4));
    if (txn2) {
      ASSERT_TRUE(txn1) << "txn2 without txn1 at step " << step;
      ASSERT_EQ(fingerprint(b1), fingerprint(f.block(3)));
    } else if (txn1) {
      ASSERT_EQ(fingerprint(b1), fingerprint(f.block(1))) << "step " << step;
      ASSERT_EQ(fingerprint(b4), zeros);
    } else {
      ASSERT_EQ(fingerprint(b1), zeros) << "step " << step;
      ASSERT_EQ(fingerprint(b2), zeros);
    }
    (void)committed;
  }
}

TEST(UbjBackend, SatisfiesTheBackendContractBasics) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto be = backend::UbjBackend::format(dev, disk);
  std::vector<std::byte> blk(blockdev::kBlockSize);
  fill_pattern(blk, 1);
  be->begin();
  be->stage(3, blk);
  be->commit();
  std::vector<std::byte> got(blockdev::kBlockSize);
  be->read_block(3, got);
  EXPECT_EQ(got, blk);
  be->begin();
  be->stage(4, blk);
  be->abort();
  be->read_block(4, got);
  EXPECT_EQ(got, std::vector<std::byte>(blockdev::kBlockSize, std::byte{0}));
  EXPECT_EQ(be->name(), "UBJ");
  be->flush();
  EXPECT_GT(disk.stats().blocks_written, 0u);
}

}  // namespace
}  // namespace tinca::ubj
