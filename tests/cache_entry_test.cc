// Codec tests for the 16 B persistent cache entry (paper Fig 5).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tinca/cache_entry.h"

namespace tinca::core {
namespace {

TEST(CacheEntry, DefaultIsInvalid) {
  const CacheEntry e;
  EXPECT_FALSE(e.valid);
  const auto raw = e.encode();
  EXPECT_EQ(raw[0], std::byte{0});
}

TEST(CacheEntry, EncodeDecodeRoundTrip) {
  CacheEntry e;
  e.valid = true;
  e.role = Role::kLog;
  e.modified = true;
  e.disk_blkno = 0x00DEADBEEFCAFEULL;
  e.prev_nvm = 1234;
  e.curr_nvm = 5678;
  const auto raw = e.encode();
  EXPECT_EQ(CacheEntry::decode(raw), e);
}

TEST(CacheEntry, FlagsAreIndependent) {
  for (int mask = 0; mask < 8; ++mask) {
    CacheEntry e;
    e.valid = mask & 1;
    e.role = (mask & 2) ? Role::kLog : Role::kBuffer;
    e.modified = mask & 4;
    EXPECT_EQ(CacheEntry::decode(e.encode()), e) << "mask " << mask;
  }
}

TEST(CacheEntry, SevenByteDiskBlockLimits) {
  CacheEntry e;
  e.valid = true;
  e.disk_blkno = CacheEntry::kMaxDiskBlock;
  EXPECT_EQ(CacheEntry::decode(e.encode()).disk_blkno, CacheEntry::kMaxDiskBlock);
  e.disk_blkno = CacheEntry::kMaxDiskBlock + 1;
  EXPECT_THROW((void)e.encode(), ContractViolation);
}

TEST(CacheEntry, FreshTagSurvivesRoundTrip) {
  CacheEntry e;
  e.valid = true;
  e.prev_nvm = CacheEntry::kFresh;
  e.curr_nvm = 7;
  EXPECT_EQ(CacheEntry::decode(e.encode()).prev_nvm, CacheEntry::kFresh);
}

TEST(CacheEntry, RevokeMarkerSemantics) {
  CacheEntry e;
  e.valid = true;
  e.prev_nvm = 9;
  e.curr_nvm = 9;
  EXPECT_TRUE(e.revoke_marker());
  e.curr_nvm = 10;
  EXPECT_FALSE(e.revoke_marker());
  e.prev_nvm = CacheEntry::kFresh;
  e.curr_nvm = CacheEntry::kFresh;
  EXPECT_FALSE(e.revoke_marker()) << "FRESH self-pair is not a marker";
  e.valid = false;
  e.prev_nvm = 9;
  e.curr_nvm = 9;
  EXPECT_FALSE(e.revoke_marker()) << "invalid entries carry no marker";
}

TEST(CacheEntry, RandomizedRoundTripSweep) {
  Rng rng(4242);
  for (int i = 0; i < 5000; ++i) {
    CacheEntry e;
    e.valid = rng.chance(0.9);
    e.role = rng.chance(0.5) ? Role::kLog : Role::kBuffer;
    e.modified = rng.chance(0.5);
    e.disk_blkno = rng.below(CacheEntry::kMaxDiskBlock + 1);
    e.prev_nvm = static_cast<std::uint32_t>(rng.next());
    e.curr_nvm = static_cast<std::uint32_t>(rng.next());
    ASSERT_EQ(CacheEntry::decode(e.encode()), e) << "iteration " << i;
  }
}

TEST(CacheEntry, EncodedFormIsExactly16Bytes) {
  EXPECT_EQ(sizeof(CacheEntry{}.encode()), 16u);
}

}  // namespace
}  // namespace tinca::core
