// Randomized model checking of TincaCache against an in-memory reference.
//
// A long stream of random operations — multi-block transactions, reads,
// single-block writes, flushes, clean remounts, and crash+recover cycles —
// is applied both to the real cache and to a trivial reference model (a
// map from block number to committed contents).  After every operation the
// observable state must match the reference; after every crash, the
// reference simply forgets the transaction in flight.
//
// Parameterized over cache geometry so eviction pressure ranges from "never
// evicts" to "evicts constantly".
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/tinca_cache.h"
#include "tinca/verify.h"

namespace tinca::core {
namespace {

struct Geometry {
  std::size_t nvm_bytes;
  std::uint64_t ring_bytes;
  std::uint64_t address_space;  // disk blocks the workload touches
  const char* label;
};

class TincaModelCheck : public ::testing::TestWithParam<Geometry> {};

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

TEST_P(TincaModelCheck, LongRandomHistoryMatchesReference) {
  const Geometry geo = GetParam();
  sim::SimClock clock;
  nvm::NvmDevice dev(geo.nvm_bytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  const TincaConfig cfg{.ring_bytes = geo.ring_bytes};
  auto cache = TincaCache::format(dev, disk, cfg);
  const Layout layout = cache->layout();

  std::map<std::uint64_t, std::uint64_t> reference;  // blkno -> seed
  Rng rng(geo.nvm_bytes ^ geo.address_space);
  std::uint64_t next_seed = 1;
  std::vector<std::byte> buf(kBlockSize);

  auto check_block = [&](std::uint64_t blkno) {
    cache->read_block(blkno, buf);
    auto it = reference.find(blkno);
    const std::uint64_t want =
        it != reference.end()
            ? fingerprint(block_of(it->second))
            : fingerprint(std::vector<std::byte>(kBlockSize, std::byte{0}));
    ASSERT_EQ(fingerprint(buf), want) << "block " << blkno << " diverged";
  };

  for (int step = 0; step < 1500; ++step) {
    const std::uint64_t action = rng.below(100);
    if (action < 45) {
      // Multi-block transaction.
      const std::uint64_t n = 1 + rng.below(8);
      auto txn = cache->tinca_init_txn();
      std::vector<std::pair<std::uint64_t, std::uint64_t>> writes;
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t blkno = rng.below(geo.address_space);
        const std::uint64_t seed = next_seed++;
        txn.add(blkno, block_of(seed));
        writes.emplace_back(blkno, seed);
      }
      cache->tinca_commit(txn);
      for (auto [blkno, seed] : writes) reference[blkno] = seed;
    } else if (action < 55) {
      // Aborted transaction: reference unchanged.
      auto txn = cache->tinca_init_txn();
      txn.add(rng.below(geo.address_space), block_of(next_seed++));
      cache->tinca_abort(txn);
    } else if (action < 85) {
      // Read-and-verify a random block.
      check_block(rng.below(geo.address_space));
    } else if (action < 90) {
      cache->flush_dirty();
    } else if (action < 96) {
      // Crash + recover: committed state must survive verbatim.
      dev.crash(rng, rng.uniform01());
      cache = TincaCache::recover(dev, disk, cfg);
      const MediaReport media = verify_media(dev, layout);
      ASSERT_TRUE(media.ok)
          << "media corrupt after crash at step " << step << ": "
          << (media.problems.empty() ? "?" : media.problems[0]);
    } else {
      // Clean remount (no crash): also must preserve everything.
      cache.reset();
      cache = TincaCache::recover(dev, disk, cfg);
    }
  }

  // Final audit of the complete reference.
  for (const auto& [blkno, seed] : reference) {
    cache->read_block(blkno, buf);
    ASSERT_EQ(fingerprint(buf), fingerprint(block_of(seed)))
        << "final audit: block " << blkno;
  }
}

TEST_P(TincaModelCheck, CrashMidTxnNeverLeaksReferenceState) {
  // Interleave armed crashes *inside* commits with reference tracking: a
  // commit that throws must leave the reference state (verified after
  // recovery), a commit that returns must apply exactly.
  const Geometry geo = GetParam();
  sim::SimClock clock;
  nvm::NvmDevice dev(geo.nvm_bytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  const TincaConfig cfg{.ring_bytes = geo.ring_bytes};
  auto cache = TincaCache::format(dev, disk, cfg);

  std::map<std::uint64_t, std::uint64_t> reference;
  Rng rng(0xBEEF ^ geo.address_space);
  std::uint64_t next_seed = 1;
  std::vector<std::byte> buf(kBlockSize);

  for (int round = 0; round < 120; ++round) {
    const std::uint64_t n = 1 + rng.below(6);
    // Deduplicated: staging a block twice keeps the latest contents, so the
    // expected post-commit seed per block is the last one staged.
    std::map<std::uint64_t, std::uint64_t> writes;
    auto txn = cache->tinca_init_txn();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t blkno = rng.below(geo.address_space);
      const std::uint64_t seed = next_seed++;
      txn.add(blkno, block_of(seed));
      writes[blkno] = seed;
    }
    // Arm a crash somewhere inside this commit, sometimes beyond its end
    // (so some commits complete).
    dev.injector.arm(1 + rng.below(n * 7 + 10));
    bool committed = true;
    try {
      cache->tinca_commit(txn);
    } catch (const nvm::CrashException&) {
      committed = false;
    }
    dev.injector.disarm();
    if (committed) {
      for (auto [blkno, seed] : writes) reference[blkno] = seed;
    } else {
      dev.crash(rng, 0.5);
      cache = TincaCache::recover(dev, disk, cfg);
      // The interrupted txn may still have landed if the crash point fell
      // after Tail publication; detect by probing one written block
      // (atomicity makes any single probe decisive).
      if (!writes.empty()) {
        const auto& [probe_blk, probe_seed] = *writes.begin();
        cache->read_block(probe_blk, buf);
        if (fingerprint(buf) == fingerprint(block_of(probe_seed))) {
          for (auto [blkno, seed] : writes) reference[blkno] = seed;
        }
      }
    }
    // Spot-check a handful of reference blocks every round.
    for (int probe = 0; probe < 4 && !reference.empty(); ++probe) {
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.below(reference.size())));
      cache->read_block(it->first, buf);
      ASSERT_EQ(fingerprint(buf), fingerprint(block_of(it->second)))
          << "round " << round << " block " << it->first;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TincaModelCheck,
    ::testing::Values(
        Geometry{2 << 20, 4096, 64, "roomy"},        // everything fits
        Geometry{1 << 20, 4096, 512, "pressured"},   // regular eviction
        Geometry{256 << 10, 4096, 1024, "thrashing"} // constant eviction
        ),
    [](const auto& param_info) { return param_info.param.label; });

}  // namespace
}  // namespace tinca::core
