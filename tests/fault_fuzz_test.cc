// Randomized fault-fuzz sweeps (DESIGN.md §9): disk faults × power cuts ×
// every backend kind, verified against the §6 recovery invariants.
//
// Reproduce a failure by re-running with the seed the assertion prints:
//   TINCA_FUZZ_SEED=<seed> TINCA_FUZZ_SCHEDULES=<n> ./fault_fuzz_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "backend/fault_fuzz.h"

namespace tinca::backend {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtoull(v, nullptr, 0);
}

std::string describe(const FuzzReport& rep) {
  std::string s = "schedules=" + std::to_string(rep.schedules) +
                  " crashes=" + std::to_string(rep.crashes) +
                  " remounts=" + std::to_string(rep.clean_remounts) +
                  " retries=" + std::to_string(rep.io_retries) +
                  " quarantined=" + std::to_string(rep.io_quarantined) +
                  " wedges=" + std::to_string(rep.wedges) + "\n";
  for (const std::string& m : rep.violation_messages) s += "  " + m + "\n";
  return s;
}

class FaultFuzz : public ::testing::TestWithParam<StackKind> {};

TEST_P(FaultFuzz, RandomizedSchedulesUpholdRecoveryInvariants) {
  FuzzOptions opts;
  opts.kind = GetParam();
  opts.seed = env_u64("TINCA_FUZZ_SEED", 20260806);
  opts.schedules =
      static_cast<std::uint32_t>(env_u64("TINCA_FUZZ_SCHEDULES", 120));

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_EQ(rep.violations, 0u)
      << describe(rep) << "reproduce: TINCA_FUZZ_SEED=" << opts.seed
      << " TINCA_FUZZ_SCHEDULES=" << opts.schedules;

  // The campaign must actually have exercised the machinery it verifies.
  EXPECT_EQ(rep.schedules, opts.schedules);
  EXPECT_GT(rep.crashes, 0u) << describe(rep);
  EXPECT_GT(rep.faults.transient_write_errors, 0u) << describe(rep);
  EXPECT_GT(rep.io_retries, 0u) << describe(rep);
}

TEST_P(FaultFuzz, BadSectorStormQuarantinesAndDegrades) {
  FuzzOptions opts;
  opts.kind = GetParam();
  opts.seed = env_u64("TINCA_FUZZ_SEED", 7);
  opts.schedules = 40;
  opts.bad_sector_rate = 0.05;  // a disk dying in fast-forward
  opts.torn_write_rate = 0.0;
  opts.crash_prob = 0.25;

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_EQ(rep.violations, 0u)
      << describe(rep) << "reproduce: TINCA_FUZZ_SEED=" << opts.seed;
  EXPECT_GT(rep.faults.bad_sectors, 0u) << describe(rep);
  EXPECT_GT(rep.io_quarantined, 0u) << describe(rep);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FaultFuzz,
                         ::testing::Values(StackKind::kTinca,
                                           StackKind::kClassic,
                                           StackKind::kUbj,
                                           StackKind::kShardedTinca,
                                           StackKind::kNvLogClassic,
                                           StackKind::kNvLogTinca,
                                           StackKind::kNvLogSharded),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case StackKind::kTinca: return "Tinca";
                             case StackKind::kClassic: return "Classic";
                             case StackKind::kUbj: return "Ubj";
                             case StackKind::kShardedTinca: return "Sharded";
                             case StackKind::kNvLogClassic: return "NvLog";
                             case StackKind::kNvLogTinca: return "NvLogTinca";
                             case StackKind::kNvLogSharded:
                               return "NvLogSharded";
                             default: return "Other";
                           }
                         });

// The same randomized campaign with the background cleaner armed in
// deterministic stepped mode: every commit is followed by a cleaner
// quantum, so power cuts land mid-drain as often as mid-commit.  The §6
// invariant must hold unchanged — a block leaves the dirty set only after
// its disk write is durable, so a cut mid-drain just re-cleans on recovery.
class FaultFuzzCleaner : public ::testing::TestWithParam<StackKind> {};

TEST_P(FaultFuzzCleaner, CleanerArmedSchedulesUpholdRecoveryInvariants) {
  FuzzOptions opts;
  opts.kind = GetParam();
  opts.cleaner = cleaner::CleanerMode::kStepped;
  opts.seed = env_u64("TINCA_FUZZ_SEED", 20260806);
  opts.schedules =
      static_cast<std::uint32_t>(env_u64("TINCA_FUZZ_SCHEDULES", 120));

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_EQ(rep.violations, 0u)
      << describe(rep) << "reproduce: TINCA_FUZZ_SEED=" << opts.seed
      << " TINCA_FUZZ_SCHEDULES=" << opts.schedules << " (cleaner armed)";
  EXPECT_EQ(rep.schedules, opts.schedules);
  EXPECT_GT(rep.crashes, 0u) << describe(rep);
  EXPECT_GT(rep.faults.transient_write_errors, 0u) << describe(rep);
}

INSTANTIATE_TEST_SUITE_P(CleanerBackends, FaultFuzzCleaner,
                         ::testing::Values(StackKind::kTinca,
                                           StackKind::kUbj,
                                           StackKind::kShardedTinca,
                                           StackKind::kNvLogClassic,
                                           StackKind::kNvLogTinca,
                                           StackKind::kNvLogSharded),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case StackKind::kTinca: return "Tinca";
                             case StackKind::kUbj: return "Ubj";
                             case StackKind::kShardedTinca: return "Sharded";
                             case StackKind::kNvLogClassic: return "NvLog";
                             case StackKind::kNvLogTinca: return "NvLogTinca";
                             case StackKind::kNvLogSharded:
                               return "NvLogSharded";
                             default: return "Other";
                           }
                         });

// Oracle self-test for the cleaner: a cleaner that marks blocks clean
// WITHOUT the pre-writeback disk flush leaks stale disk data into reads
// after eviction or remount, and the campaign must flag it.  Fault-free,
// crash-free schedules: the cleaner's lie is the only anomaly in play.
TEST(FaultFuzzScripted, CleanerSkippingFlushIsCaught) {
  FuzzOptions opts;
  opts.kind = StackKind::kTinca;
  opts.cleaner = cleaner::CleanerMode::kStepped;
  opts.sabotage = FuzzSabotage::kCleanerSkipsFlush;
  opts.seed = 515151;
  opts.schedules = 12;
  opts.txns_per_schedule = 40;  // deep schedules: drain + evict + remount
  opts.crash_prob = 0.0;
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_GT(rep.violations, 0u)
      << "oracle has no teeth: a cleaner that skips the pre-writeback "
         "flush went unnoticed\n"
      << describe(rep);
}

// Oracle self-test for the NVM write-ahead tier: an absorb path that
// acknowledges commits WITHOUT its clflush + sfence loses them on a power
// cut, and the campaign's recovery oracle must flag the missing state.
// Crash-heavy, fault-free schedules: the skipped flush is the only bug.
TEST(FaultFuzzScripted, NvLogSkippingCommitFlushIsCaught) {
  FuzzOptions opts;
  opts.kind = StackKind::kNvLogClassic;
  opts.sabotage = FuzzSabotage::kNvLogSkipsCommitFlush;
  opts.seed = 616161;
  opts.schedules = 20;
  opts.crash_prob = 0.6;  // the lie only shows when the power goes out
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_GT(rep.violations, 0u)
      << "oracle has no teeth: an NvLog absorb that skips its commit "
         "flush went unnoticed\n"
      << describe(rep);
}

// And the drain-side lie on the same stack: the cleaner sabotage knob maps
// onto a drain that marks segments clean without applying them, so reads
// that fall through to the backing store see stale data.
TEST(FaultFuzzScripted, NvLogDrainSkippingApplyIsCaught) {
  FuzzOptions opts;
  opts.kind = StackKind::kNvLogClassic;
  opts.cleaner = cleaner::CleanerMode::kStepped;
  opts.sabotage = FuzzSabotage::kCleanerSkipsFlush;
  opts.seed = 525252;
  opts.schedules = 12;
  opts.txns_per_schedule = 40;  // deep schedules: drain + remount
  opts.crash_prob = 0.0;
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_GT(rep.violations, 0u)
      << "oracle has no teeth: an NvLog drain that skips its apply "
         "went unnoticed\n"
      << describe(rep);
}

// Oracle self-test for the watermark record ring (DESIGN.md §16): a tier
// that stores watermark records WITHOUT their flush mounts a stale
// watermark after a power cut.  The stale oldest_live_seq is harmless
// until the log WRAPS — once a drained segment has been recycled and
// re-acquired, the stale watermark chains recovery from a segment whose
// header now carries a different seq, the scan finds nothing, and every
// committed log-resident txn is lost.  Deep, crash-heavy, fault-free
// schedules force that wrap; the oracle must flag the losses.
TEST(FaultFuzzScripted, SkippedWatermarkFlushIsCaught) {
  FuzzOptions opts;
  opts.kind = StackKind::kNvLogTinca;
  opts.cleaner = cleaner::CleanerMode::kStepped;
  opts.sabotage = FuzzSabotage::kSkipWatermarkRecordFlush;
  opts.seed = 818181;
  opts.schedules = 40;
  opts.txns_per_schedule = 40;
  opts.max_blocks_per_txn = 24;   // fat txns wrap the 7-segment log fast
  opts.crash_prob = 0.8;          // the lie only shows when the power goes out
  opts.crash_point_range = 4000;  // ...and only on cuts AFTER the wrap
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_GT(rep.violations, 0u)
      << "oracle has no teeth: watermark records stored without their "
         "flush went unnoticed\n"
      << describe(rep);
}

// Multi-stream campaigns (DESIGN.md §15): per-shard commit streams with
// cross-shard transactions anchored to the atomic commit record, with and
// without the group batcher.  The oracle carries NO shard-prefix exemption
// any more — a half-applied cross-shard transaction at any cut is a
// violation — so these runs prove the record really is the commit point.
TEST(FaultFuzzScripted, MultiStreamShardedSchedulesUpholdInvariants) {
  FuzzOptions opts;
  opts.kind = StackKind::kShardedTinca;
  opts.streams = 2;
  opts.seed = env_u64("TINCA_FUZZ_SEED", 20260807);
  opts.schedules =
      static_cast<std::uint32_t>(env_u64("TINCA_FUZZ_SCHEDULES", 120));

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_EQ(rep.violations, 0u)
      << describe(rep) << "reproduce: TINCA_FUZZ_SEED=" << opts.seed
      << " TINCA_FUZZ_SCHEDULES=" << opts.schedules;
  EXPECT_GT(rep.crashes, 0u) << describe(rep);
}

TEST(FaultFuzzScripted, MultiStreamGroupCommitSchedulesUpholdInvariants) {
  FuzzOptions opts;
  opts.kind = StackKind::kShardedTinca;
  opts.streams = 2;
  opts.group_commit = true;
  opts.seed = env_u64("TINCA_FUZZ_SEED", 20260807);
  opts.schedules =
      static_cast<std::uint32_t>(env_u64("TINCA_FUZZ_SCHEDULES", 120));

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_EQ(rep.violations, 0u)
      << describe(rep) << "reproduce: TINCA_FUZZ_SEED=" << opts.seed
      << " TINCA_FUZZ_SCHEDULES=" << opts.schedules;
  EXPECT_GT(rep.crashes, 0u) << describe(rep);
}

// Oracle self-test for the cross-stream commit record: a sharded stack
// that stages the record WITHOUT its clflush rolls back acknowledged
// cross-shard transactions on a power cut, and the (prefix-exemption-free)
// oracle must flag the missing state.  Crash-heavy, fault-free schedules:
// the skipped flush is the only bug in play.
TEST(FaultFuzzScripted, SkippedCommitRecordFlushIsCaught) {
  FuzzOptions opts;
  opts.kind = StackKind::kShardedTinca;
  opts.streams = 2;
  opts.sabotage = FuzzSabotage::kSkipCommitRecordFlush;
  opts.seed = 717171;
  opts.schedules = 40;
  opts.crash_prob = 0.8;  // the lie only shows when the power goes out
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_GT(rep.violations, 0u)
      << "oracle has no teeth: a commit record staged without its flush "
         "went unnoticed\n"
      << describe(rep);
}

// A hand-scripted torn write through the full stack: the Nth disk write
// tears (half new, half old), the machine dies, and recovery must still
// present exactly the committed history — the §9 "torn write" row.
TEST(FaultFuzzScripted, TornDiskWriteNeverSplitsACommit) {
  FuzzOptions opts;
  opts.kind = StackKind::kTinca;
  opts.seed = 99;
  opts.schedules = 60;
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.08;  // tearing is the only fault in play
  opts.crash_prob = 0.0;        // all crashes come from torn writes

  const FuzzReport rep = run_fault_fuzz(opts);
  EXPECT_EQ(rep.violations, 0u) << describe(rep);
  EXPECT_GT(rep.faults.torn_writes, 0u) << describe(rep);
  EXPECT_EQ(rep.crashes, rep.faults.torn_writes) << describe(rep);
}

// Every violation message embeds a machine-parseable reproduce tag (seed +
// absolute schedule index).  Sabotage a campaign so the oracle fires, parse
// the tag out of the first message, and replay exactly that one schedule —
// the violation must come back.  This is the contract debugging relies on.
TEST(FaultFuzzScripted, ViolationReproducesFromItsPrintedTag) {
  FuzzOptions opts;
  opts.kind = StackKind::kTinca;
  opts.seed = 424242;
  opts.schedules = 8;
  opts.crash_prob = 0.0;  // sabotage targets crash-free schedules
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;
  opts.sabotage = FuzzSabotage::kCorruptCommitted;

  const FuzzReport first = run_fault_fuzz(opts);
  ASSERT_GT(first.violations, 0u) << "sabotage failed to trip the oracle";
  ASSERT_FALSE(first.violation_messages.empty());

  std::uint64_t seed = 0;
  std::uint32_t first_schedule = 0;
  ASSERT_TRUE(fuzz_parse_reproduce(first.violation_messages.front(), &seed,
                                   &first_schedule))
      << "no reproduce tag in: " << first.violation_messages.front();
  EXPECT_EQ(seed, opts.seed);

  FuzzOptions replay = opts;
  replay.seed = seed;
  replay.first_schedule = first_schedule;
  replay.schedules = 1;
  const FuzzReport second = run_fault_fuzz(replay);
  EXPECT_GT(second.violations, 0u)
      << "replaying seed=" << seed << " first_schedule=" << first_schedule
      << " did not reproduce the violation";
  ASSERT_FALSE(second.violation_messages.empty());
  // The replayed schedule carries the same schedule tag (same schedule seed).
  EXPECT_NE(second.violation_messages.front().find(
                "schedule " + std::to_string(first_schedule) + " "),
            std::string::npos)
      << second.violation_messages.front();
}

}  // namespace
}  // namespace tinca::backend
