// File-system-level fault-fuzz sweeps (DESIGN.md §10): random MiniFs op
// histories × disk faults × power cuts × every stack kind, verified against
// an in-DRAM reference model and the strengthened fsck().
//
// Reproduce a failure by re-running with the seed the assertion prints:
//   TINCA_FS_FUZZ_SEED=<seed> TINCA_FS_FUZZ_SCHEDULES=<n> ./fs_fuzz_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fs/fs_fuzz.h"

namespace tinca::fs {
namespace {

using backend::StackKind;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtoull(v, nullptr, 0);
}

std::string describe(const FsFuzzReport& rep) {
  std::string s = "schedules=" + std::to_string(rep.schedules) +
                  " ops=" + std::to_string(rep.ops_executed) +
                  " txns=" + std::to_string(rep.txns_committed) +
                  " crashes=" + std::to_string(rep.crashes) +
                  " remounts=" + std::to_string(rep.clean_remounts) +
                  " fscks=" + std::to_string(rep.fsck_runs) +
                  " dirty=" + std::to_string(rep.fsck_dirty) +
                  " wedges=" + std::to_string(rep.wedges) + "\n";
  for (const std::string& m : rep.violation_messages) s += "  " + m + "\n";
  return s;
}

class FsFuzz : public ::testing::TestWithParam<StackKind> {};

TEST_P(FsFuzz, RandomizedHistoriesRecoverToAnFsyncBoundary) {
  FsFuzzOptions opts;
  opts.kind = GetParam();
  opts.seed = env_u64("TINCA_FS_FUZZ_SEED", 20260806);
  opts.schedules =
      static_cast<std::uint32_t>(env_u64("TINCA_FS_FUZZ_SCHEDULES", 30));

  const FsFuzzReport rep = run_fs_fuzz(opts);
  EXPECT_EQ(rep.violations, 0u)
      << describe(rep) << "reproduce: TINCA_FS_FUZZ_SEED=" << opts.seed
      << " TINCA_FS_FUZZ_SCHEDULES=" << opts.schedules;
  EXPECT_EQ(rep.fsck_dirty, 0u) << describe(rep);

  // The campaign must actually have exercised what it verifies.
  EXPECT_EQ(rep.schedules, opts.schedules);
  EXPECT_GT(rep.crashes, 0u) << describe(rep);
  EXPECT_GT(rep.fsck_runs, 0u) << describe(rep);
  EXPECT_GT(rep.txns_committed, 0u) << describe(rep);
}

TEST_P(FsFuzz, CrashPointSweepCoversOneCompoundCommit) {
  FsFuzzOptions opts;
  opts.kind = GetParam();
  opts.seed = env_u64("TINCA_FS_FUZZ_SEED", 11);

  // Stride keeps Debug+ASan runtime sane; CI's bench gate runs stride 1.
  const FsFuzzReport rep = run_fs_crash_sweep(
      opts, static_cast<std::uint32_t>(env_u64("TINCA_FS_SWEEP_STRIDE", 7)));
  EXPECT_EQ(rep.violations, 0u) << describe(rep);
  EXPECT_EQ(rep.fsck_dirty, 0u) << describe(rep);
  EXPECT_GT(rep.sweep_points, 0u) << describe(rep);
  EXPECT_GT(rep.crashes, 0u) << describe(rep);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FsFuzz,
                         ::testing::Values(StackKind::kTinca,
                                           StackKind::kClassic,
                                           StackKind::kUbj,
                                           StackKind::kShardedTinca,
                                           StackKind::kNvLogClassic,
                                           StackKind::kNvLogTinca,
                                           StackKind::kNvLogSharded),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case StackKind::kTinca: return "Tinca";
                             case StackKind::kClassic: return "Classic";
                             case StackKind::kUbj: return "Ubj";
                             case StackKind::kShardedTinca: return "Sharded";
                             case StackKind::kNvLogClassic: return "NvLog";
                             case StackKind::kNvLogTinca: return "NvLogTinca";
                             case StackKind::kNvLogSharded:
                               return "NvLogSharded";
                             default: return "Other";
                           }
                         });

// The full file-system campaign with the background cleaner armed in
// deterministic stepped mode: every committed MiniFs operation is followed
// by a cleaner quantum, so power cuts land mid-drain under a real
// metadata/data workload.  Recovery must still land on an fsync boundary.
class FsFuzzCleaner : public ::testing::TestWithParam<StackKind> {};

TEST_P(FsFuzzCleaner, CleanerArmedHistoriesRecoverToAnFsyncBoundary) {
  FsFuzzOptions opts;
  opts.kind = GetParam();
  opts.cleaner = cleaner::CleanerMode::kStepped;
  opts.seed = env_u64("TINCA_FS_FUZZ_SEED", 20260806);
  opts.schedules =
      static_cast<std::uint32_t>(env_u64("TINCA_FS_FUZZ_SCHEDULES", 30));

  const FsFuzzReport rep = run_fs_fuzz(opts);
  EXPECT_EQ(rep.violations, 0u)
      << describe(rep) << "reproduce: TINCA_FS_FUZZ_SEED=" << opts.seed
      << " TINCA_FS_FUZZ_SCHEDULES=" << opts.schedules << " (cleaner armed)";
  EXPECT_EQ(rep.fsck_dirty, 0u) << describe(rep);
  EXPECT_GT(rep.crashes, 0u) << describe(rep);
  EXPECT_GT(rep.fsck_runs, 0u) << describe(rep);
}

INSTANTIATE_TEST_SUITE_P(CleanerBackends, FsFuzzCleaner,
                         ::testing::Values(StackKind::kTinca,
                                           StackKind::kUbj,
                                           StackKind::kShardedTinca,
                                           StackKind::kNvLogClassic,
                                           StackKind::kNvLogTinca,
                                           StackKind::kNvLogSharded),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case StackKind::kTinca: return "Tinca";
                             case StackKind::kUbj: return "Ubj";
                             case StackKind::kShardedTinca: return "Sharded";
                             case StackKind::kNvLogClassic: return "NvLog";
                             case StackKind::kNvLogTinca: return "NvLogTinca";
                             case StackKind::kNvLogSharded:
                               return "NvLogSharded";
                             default: return "Other";
                           }
                         });

// --- Oracle self-tests: the harness must catch corruption it didn't cause.

// Multi-stream sharded stack under the file-system workload (DESIGN.md
// §15): per-shard commit streams, cross-shard compound commits anchored to
// the atomic commit record, and an oracle with NO shard-prefix exemption —
// every recovered image must be an fsync boundary, full stop.
TEST(FsFuzzMultiStream, StreamedShardedHistoriesRecoverToAnFsyncBoundary) {
  FsFuzzOptions opts;
  opts.kind = StackKind::kShardedTinca;
  opts.streams = 2;
  opts.seed = env_u64("TINCA_FS_FUZZ_SEED", 20260807);
  opts.schedules =
      static_cast<std::uint32_t>(env_u64("TINCA_FS_FUZZ_SCHEDULES", 30));

  const FsFuzzReport rep = run_fs_fuzz(opts);
  EXPECT_EQ(rep.violations, 0u)
      << describe(rep) << "reproduce: TINCA_FS_FUZZ_SEED=" << opts.seed
      << " TINCA_FS_FUZZ_SCHEDULES=" << opts.schedules << " (streams=2)";
  EXPECT_EQ(rep.fsck_dirty, 0u) << describe(rep);
  EXPECT_GT(rep.crashes, 0u) << describe(rep);
  EXPECT_GT(rep.fsck_runs, 0u) << describe(rep);
}

// The fs-level commit-record self-test: a sharded stack that skips the
// record's clflush loses acked cross-shard compound commits on a power cut,
// and the image/tree oracle must notice the rollback past an acknowledged
// fsync boundary.
TEST(FsFuzzSabotage, SkippedCommitRecordFlushIsCaught) {
  FsFuzzOptions opts;
  opts.kind = StackKind::kShardedTinca;
  opts.streams = 2;
  opts.sabotage = FsSabotage::kSkipCommitRecordFlush;
  opts.seed = 409;
  opts.schedules = 20;
  opts.crash_prob = 0.9;  // the lie only shows when the power goes out
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;

  const FsFuzzReport rep = run_fs_fuzz(opts);
  EXPECT_GT(rep.violations + rep.fsck_dirty, 0u)
      << "oracle has no teeth: a commit record staged without its flush "
         "went unnoticed\n"
      << describe(rep);
}

// A cleaner that marks cache blocks clean WITHOUT their pre-writeback disk
// flush: stale disk data then surfaces through the file system after
// evictions or a remount, and the tree-vs-model comparison (or fsck) must
// notice.  Fault-free and crash-free so the cleaner's lie is the only
// anomaly in play.
TEST(FsFuzzSabotage, CleanerSkippingFlushIsCaught) {
  FsFuzzOptions opts;
  opts.kind = StackKind::kTinca;
  opts.cleaner = cleaner::CleanerMode::kStepped;
  // Aggressive watermarks: the cleaner "cleans" (i.e. lies about) blocks on
  // every schedule, so stale disk data is guaranteed to exist.
  opts.cleaner_low_water_pct = 0;
  opts.cleaner_high_water_pct = 1;
  opts.sabotage = FsSabotage::kCleanerSkipsFlush;
  opts.seed = 407;
  opts.schedules = 8;
  opts.ops_per_schedule = 120;  // enough writes to evict lying-clean blocks
  opts.crash_prob = 0.0;
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;

  const FsFuzzReport rep = run_fs_fuzz(opts);
  EXPECT_GT(rep.violations + rep.fsck_dirty, 0u)
      << "oracle has no teeth: a cleaner that skips the pre-writeback "
         "flush went unnoticed\n"
      << describe(rep);
}

// The same drain-side lie on the NVM write-ahead stack: segments marked
// clean without their records ever reaching the backing store, so stale
// store data surfaces through the file system once the log index forgets
// them.  The fs-level oracle must notice on the new stack too.
TEST(FsFuzzSabotage, NvLogDrainSkippingApplyIsCaught) {
  FsFuzzOptions opts;
  opts.kind = StackKind::kNvLogClassic;
  opts.cleaner = cleaner::CleanerMode::kStepped;
  opts.cleaner_low_water_pct = 0;
  opts.cleaner_high_water_pct = 1;
  opts.sabotage = FsSabotage::kCleanerSkipsFlush;
  opts.seed = 408;
  opts.schedules = 8;
  opts.ops_per_schedule = 120;
  opts.crash_prob = 0.0;
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;

  const FsFuzzReport rep = run_fs_fuzz(opts);
  EXPECT_GT(rep.violations + rep.fsck_dirty, 0u)
      << "oracle has no teeth: an NvLog drain that skips its apply "
         "went unnoticed\n"
      << describe(rep);
}

// A committed data (or directory) block is silently replaced behind the
// harness's block-image bookkeeping; only the tree-vs-model comparison or
// fsck's structural checks can notice.  Crash-free schedules so every
// schedule self-tests.
TEST(FsFuzzSabotage, CorruptedDataBlockIsCaught) {
  FsFuzzOptions opts;
  opts.kind = StackKind::kTinca;
  opts.seed = 404;
  opts.schedules = 4;
  opts.crash_prob = 0.0;
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;
  opts.sabotage = FsSabotage::kCorruptData;

  const FsFuzzReport rep = run_fs_fuzz(opts);
  EXPECT_GT(rep.violations, 0u)
      << "oracle has no teeth: corrupted data went unnoticed\n"
      << describe(rep);
}

// Bits flipped in the block-allocation bitmap: the tree still reads fine,
// so only fsck's bitmap cross-check (leak / free-but-used) can notice.
TEST(FsFuzzSabotage, CorruptedBitmapIsCaughtByFsck) {
  FsFuzzOptions opts;
  opts.kind = StackKind::kTinca;
  opts.seed = 405;
  opts.schedules = 4;
  opts.crash_prob = 0.0;
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;
  opts.sabotage = FsSabotage::kCorruptBitmap;

  const FsFuzzReport rep = run_fs_fuzz(opts);
  EXPECT_GT(rep.fsck_dirty, 0u)
      << "fsck has no teeth: a corrupted allocation bitmap came back clean\n"
      << describe(rep);
}

// A forced violation must reproduce from the printed message alone: parse
// the embedded "reproduce:" tag and re-run exactly that one schedule.
TEST(FsFuzzSabotage, ViolationReproducesFromPrintedSeed) {
  FsFuzzOptions opts;
  opts.kind = StackKind::kTinca;
  opts.seed = 406;
  opts.schedules = 6;
  opts.crash_prob = 0.0;
  opts.transient_read_rate = 0.0;
  opts.transient_write_rate = 0.0;
  opts.bad_sector_rate = 0.0;
  opts.torn_write_rate = 0.0;
  opts.sabotage = FsSabotage::kCorruptData;

  const FsFuzzReport first = run_fs_fuzz(opts);
  ASSERT_GT(first.violations, 0u) << describe(first);
  ASSERT_FALSE(first.violation_messages.empty());

  std::uint64_t seed = 0;
  std::uint32_t first_schedule = 0;
  ASSERT_TRUE(backend::fuzz_parse_reproduce(first.violation_messages.front(),
                                            &seed, &first_schedule))
      << first.violation_messages.front();

  FsFuzzOptions replay = opts;
  replay.seed = seed;
  replay.first_schedule = first_schedule;
  replay.schedules = 1;
  const FsFuzzReport again = run_fs_fuzz(replay);
  EXPECT_GT(again.violations, 0u)
      << "printed reproduce tag did not replay the violation\n"
      << describe(again);
}

}  // namespace
}  // namespace tinca::fs
