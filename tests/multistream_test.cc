// Multi-stream commit rings and the atomic cross-stream commit record
// (DESIGN.md §15).
//
// Layer by layer:
//   - Layout: the ring region splits into per-stream slices with disjoint
//     slots and per-stream hint lines;
//   - RingBuffer: streams wrap, fill and validate independently — one full
//     stream exerts no backpressure on its empty siblings, and a recycled
//     slot's remnant never validates on another stream or after an epoch
//     bump;
//   - TincaCache: round-robin batch placement really uses every stream;
//   - ShardedTinca: a cross-shard transaction anchored to the §15 commit
//     record is all-or-nothing at EVERY persistence cut point (exhaustive
//     injector sweep × survival lotteries), and the sabotage self-test
//     proves the record's flush is load-bearing (skip it and an acked
//     transaction rolls back — which the harness must observe).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "blockdev/faulty_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "nvm/nvm_device.h"
#include "shard/sharded_tinca.h"
#include "tinca/commit_directory.h"
#include "tinca/layout.h"
#include "tinca/ring_buffer.h"
#include "tinca/tinca_cache.h"
#include "tinca/verify.h"

namespace tinca::core {
namespace {

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

// --- Layout ----------------------------------------------------------------

TEST(MultiStreamLayout, StreamsPartitionTheRingRegion) {
  const Layout l = Layout::compute(1 << 20, 64 * 1024, /*num_streams=*/4);
  EXPECT_EQ(l.num_streams, 4u);
  EXPECT_EQ(l.stream_capacity, l.ring_capacity / 4);
  // Slot 0 of each stream lands in its own quarter of the region; slices
  // never overlap.
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(l.ring_slot_off(s, 0),
              l.ring_off + s * l.stream_capacity * Layout::kRingSlotBytes);
    const std::uint64_t last = l.ring_slot_off(s, l.stream_capacity - 1);
    EXPECT_LT(last, l.ring_off +
                        (s + 1) * l.stream_capacity * Layout::kRingSlotBytes);
  }
  // Wrap stays inside the stream's own slice.
  EXPECT_EQ(l.ring_slot_off(2, l.stream_capacity), l.ring_slot_off(2, 0));
  // Per-stream hint lines are distinct cache lines in the superblock, below
  // the commit directory.
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(Layout::stream_hint_off(s) % 64, 0u);
    EXPECT_LT(Layout::stream_hint_off(s), Layout::kDirOff);
    for (std::uint32_t t = s + 1; t < 4; ++t)
      EXPECT_NE(Layout::stream_hint_off(s), Layout::stream_hint_off(t));
  }
}

TEST(MultiStreamLayout, TooManyOrTooThinStreamsRejected) {
  EXPECT_THROW(Layout::compute(1 << 20, 64 * 1024, Layout::kMaxStreams + 1),
               ContractViolation);
  // 4096-byte ring = 128 slots; 64 streams would leave 2 < 4 slots each.
  EXPECT_THROW(Layout::compute(1 << 20, 4096, 64), ContractViolation);
}

// --- RingBuffer ------------------------------------------------------------

struct StreamsFixture {
  static constexpr std::size_t kNvm = 1 << 20;
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvm, nvdimm_profile(), clock};
  Layout layout = Layout::compute(kNvm, 4096, /*num_streams=*/2);
  RingBuffer ring0{dev, layout, 0};
  RingBuffer ring1{dev, layout, 1};
  std::uint64_t epoch = 1;

  StreamsFixture() {
    dev.atomic_store8(Layout::kFormatEpochOff, epoch);
    dev.persist(Layout::kFormatEpochOff, 8);
    ring0.format();
    ring1.format();
  }

  // Stage one single-record batch on `ring`, seal, flush, publish, persist.
  void commit_one(RingBuffer& ring, std::uint64_t blkno, std::uint64_t tag) {
    const std::uint64_t start = ring.head();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> rs;
    rs.push_back(ring.stage_block(blkno, 0, 0x5eed));
    rs.push_back(ring.stage_commit(start, 1, tag));
    for (const auto& [off, len] : rs) dev.clflush(off, len);
    dev.sfence();
    ring.note_staged_hint_durable();
    rs.push_back(ring.publish(start));
    ring.persist_hint();
  }
};

TEST(MultiStreamRing, StreamsWrapIndependently) {
  StreamsFixture f;
  // Push stream 0 through several laps of its 64-slot slice; stream 1 never
  // moves.
  const std::uint64_t laps = 3 * f.ring0.capacity();
  for (std::uint64_t i = 0; i < laps; i += 2) f.commit_one(f.ring0, i, i + 1);
  EXPECT_GT(f.ring0.head(), f.ring0.capacity());
  EXPECT_EQ(f.ring1.head(), 0u);
  EXPECT_EQ(f.ring1.tail(), 0u);
  EXPECT_EQ(f.ring1.durable_hint(), 0u);
  // Stream 1 still validates nothing: its slice was never written.
  EXPECT_FALSE(f.ring1.scan(0, f.epoch).has_value());
  // And stream 0's records validate only on stream 0 — a fresh ring over
  // stream 1 cannot adopt them even at matching indices, because the
  // checksum mixes the stream id.
  const std::uint64_t idx = f.ring0.tail() - 2;  // newest block record
  EXPECT_TRUE(f.ring0.scan(idx, f.epoch).has_value());
}

TEST(MultiStreamRing, ChecksumsAreStreamSpecific) {
  StreamsFixture f;
  // Write the same words at the same index on both streams; each validates
  // only through its own ring.
  f.commit_one(f.ring0, 7, 1);
  ASSERT_TRUE(f.ring0.scan(0, f.epoch).has_value());
  // Copy stream 0's slot 0 bytes into stream 1's slot 0 verbatim.
  std::array<std::byte, Layout::kRingSlotBytes> raw{};
  f.dev.load(f.layout.ring_slot_off(0, 0), raw);
  f.dev.store(f.layout.ring_slot_off(1, 0), raw);
  f.dev.persist(f.layout.ring_slot_off(1, 0), Layout::kRingSlotBytes);
  // The remnant carries stream 0's checksum salt: stream 1 must reject it.
  EXPECT_FALSE(f.ring1.scan(0, f.epoch).has_value());
}

TEST(MultiStreamRing, BackpressureIsPerStream) {
  StreamsFixture f;
  // Fill stream 0 without ever syncing its hint: head races a full slice
  // ahead of the durable hint and has_room collapses — on stream 0 only.
  std::uint64_t staged = 0;
  while (f.ring0.has_room(2)) {
    const std::uint64_t start = f.ring0.head();
    auto r1 = f.ring0.stage_block(staged, 0, 0);
    auto r2 = f.ring0.stage_commit(start, 1, ++staged);
    f.dev.clflush(r1.first, r1.second);
    f.dev.clflush(r2.first, r2.second);
    f.dev.sfence();
    f.ring0.publish(start);  // hint staged lazily, never made durable
  }
  EXPECT_FALSE(f.ring0.has_room(2));
  EXPECT_TRUE(f.ring1.has_room(f.ring1.capacity()));
  EXPECT_EQ(f.ring1.in_flight(), 0u);
  // The stream-0 slow path (persist_hint) clears its own backpressure.
  f.ring0.persist_hint();
  EXPECT_TRUE(f.ring0.has_room(2));
}

TEST(MultiStreamRing, RecycledRemnantsNeverValidateAfterEpochBump) {
  StreamsFixture f;
  f.commit_one(f.ring0, 3, 1);
  f.commit_one(f.ring1, 4, 2);
  ASSERT_TRUE(f.ring0.scan(0, f.epoch).has_value());
  ASSERT_TRUE(f.ring1.scan(0, f.epoch).has_value());
  // A reformat bumps the epoch; every surviving slot remnant (and every
  // commit-directory record) is dead on arrival under the new epoch.
  f.dev.atomic_store8(Layout::kFormatEpochOff, f.epoch + 1);
  f.dev.persist(Layout::kFormatEpochOff, 8);
  EXPECT_FALSE(f.ring0.scan(0, f.epoch + 1).has_value());
  EXPECT_FALSE(f.ring1.scan(0, f.epoch + 1).has_value());
}

// --- TincaCache round-robin ------------------------------------------------

TEST(MultiStreamCache, RoundRobinUsesEveryStream) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(1 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice mem(1 << 12);
  blockdev::FaultyBlockDevice disk(mem, {}, &clock, &nvm.injector);

  TincaConfig cfg;
  cfg.ring_bytes = 64 * 1024;
  cfg.num_streams = 4;
  auto cache = TincaCache::format(nvm, disk, cfg);
  ASSERT_EQ(cache->num_streams(), 4u);

  std::vector<std::byte> buf(kBlockSize);
  for (std::uint64_t t = 0; t < 8; ++t) {
    Transaction txn = cache->tinca_init_txn();
    fill_pattern(buf, t + 1);
    txn.add(t, buf);
    cache->tinca_commit(txn);
  }
  // 8 commits over 4 streams round-robin: every stream carries 2 batches
  // (2 block records + 2 seals = tail 4).
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_EQ(cache->stream_ring(s).tail(), 4u) << "stream " << s;

  // And the media verifier agrees across all streams.
  const MediaReport mr =
      verify_media(nvm, Layout::compute(1 << 20, 64 * 1024, 4));
  EXPECT_TRUE(mr.ok) << (mr.problems.empty() ? "?" : mr.problems[0]);
  // Every stream's newest batch is inside its scan window (lazier hints may
  // hide older ones).
  EXPECT_GE(mr.committed_batches, 4u);
}

// --- Cross-shard atomic commit ---------------------------------------------

namespace {
constexpr std::size_t kShardNvm = 4 << 20;
constexpr std::uint64_t kDiskBlocks = 1 << 14;
constexpr std::uint64_t kOldBase = 10;
constexpr std::uint64_t kNewBase = 50;

shard::ShardedConfig streamed_cfg(bool sabotage = false) {
  shard::ShardedConfig cfg;
  cfg.num_shards = 2;
  cfg.shard.ring_bytes = 4096;
  cfg.shard.num_streams = 2;
  cfg.sabotage_skip_commit_record_flush = sabotage;
  return cfg;
}

std::vector<std::uint64_t> one_block_per_shard(const shard::ShardedTinca& st) {
  std::vector<std::uint64_t> home(st.shard_count(), UINT64_MAX);
  std::uint32_t found = 0;
  for (std::uint64_t b = 0; found < st.shard_count(); ++b) {
    const std::uint32_t s = st.shard_of(b);
    if (home[s] == UINT64_MAX) {
      home[s] = b;
      ++found;
    }
  }
  return home;
}

struct VictimRun {
  bool crashed = false;
  std::uint64_t steps = 0;
};

/// Format, commit a cross-shard prelude, then (injector armed at
/// `crash_step` if nonzero) commit the cross-shard victim transaction.
VictimRun run_victim(nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
                     std::uint64_t crash_step, bool sabotage = false) {
  auto st = shard::ShardedTinca::format(dev, disk, streamed_cfg(sabotage));
  const auto home = one_block_per_shard(*st);

  auto prelude = st->init_txn();
  for (std::uint32_t s = 0; s < 2; ++s)
    prelude.add(home[s], block_of(kOldBase + s));
  st->commit(prelude);

  dev.injector.disarm();
  if (crash_step > 0) dev.injector.arm(crash_step);

  VictimRun result;
  try {
    auto victim = st->init_txn();
    for (std::uint32_t s = 0; s < 2; ++s)
      victim.add(home[s], block_of(kNewBase + s));
    st->commit(victim);
  } catch (const nvm::CrashException&) {
    result.crashed = true;
  }
  result.steps = dev.injector.steps_seen();
  dev.injector.disarm();
  return result;
}
}  // namespace

// Exhaustive crash-point sweep over a two-shard, two-streams-per-shard
// commit, crossed with line-survival lotteries from "every dirty line dies"
// to "every dirty line survives".  This covers every {stream records
// persisted} × {commit record torn/persisted} × {role switches staged}
// combination the protocol can produce: whatever subset of lines lands, the
// recovered state must carry BOTH shard portions of the victim or NEITHER.
TEST(MultiStreamCrash, CrossShardCommitIsAtomicAtEveryCut) {
  sim::SimClock probe_clock;
  nvm::NvmDevice probe_dev(kShardNvm, nvdimm_profile(), probe_clock);
  blockdev::MemBlockDevice probe_disk(kDiskBlocks);
  const VictimRun full = run_victim(probe_dev, probe_disk, 0);
  ASSERT_FALSE(full.crashed);
  ASSERT_GT(full.steps, 10u);

  Rng rng(20260808);
  static constexpr double kSurvive[] = {0.0, 0.5, 1.0};
  for (std::uint64_t step = 1; step <= full.steps; ++step) {
    for (const double survive : kSurvive) {
      sim::SimClock clock;
      nvm::NvmDevice dev(kShardNvm, nvdimm_profile(), clock);
      blockdev::MemBlockDevice disk(kDiskBlocks);
      const VictimRun run = run_victim(dev, disk, step);
      ASSERT_TRUE(run.crashed) << "step " << step << " did not crash";

      if (survive == 0.0) {
        dev.crash_discard_all();
      } else {
        dev.crash(rng, survive);
      }
      auto st = shard::ShardedTinca::recover(dev, disk, streamed_cfg());

      ASSERT_EQ(dev.dirty_lines(), 0u)
          << "recovery left unflushed state at step " << step;

      const auto home = one_block_per_shard(*st);
      std::vector<bool> committed(2);
      std::vector<std::byte> buf(kBlockSize);
      for (std::uint32_t s = 0; s < 2; ++s) {
        st->read_block(home[s], buf);
        const std::uint64_t got = fingerprint(buf);
        const std::uint64_t old_fp = fingerprint(block_of(kOldBase + s));
        const std::uint64_t new_fp = fingerprint(block_of(kNewBase + s));
        ASSERT_TRUE(got == old_fp || got == new_fp)
            << "shard " << s << " torn at step " << step << " survive "
            << survive;
        committed[s] = got == new_fp;
      }
      EXPECT_EQ(committed[0], committed[1])
          << "cross-shard txn half-applied at step " << step << " survive "
          << survive;

      for (std::uint32_t s = 0; s < st->shard_count(); ++s) {
        const auto report =
            verify_media(st->shard_nvm(s), st->shard_cache(s).layout());
        ASSERT_TRUE(report.ok)
            << "shard " << s << " media corrupt after step " << step << ": "
            << (report.problems.empty() ? "?" : report.problems[0]);
      }
    }
  }
}

// Sabotage self-test: skip ONLY the commit record's clflush.  The record is
// then still a dirty line when power dies, so a full-loss crash must roll
// back the acknowledged cross-shard transaction — on both shards.  If the
// victim ever survived this, the record's flush would not be load-bearing
// and the §15 protocol (and every test above) would be vacuous.
TEST(MultiStreamCrash, SabotagedCommitRecordFlushLosesTheAckedTxn) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kShardNvm, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  const VictimRun run = run_victim(dev, disk, 0, /*sabotage=*/true);
  ASSERT_FALSE(run.crashed);  // the commit was acknowledged

  dev.crash_discard_all();
  auto st = shard::ShardedTinca::recover(dev, disk, streamed_cfg());

  const auto home = one_block_per_shard(*st);
  std::vector<std::byte> buf(kBlockSize);
  for (std::uint32_t s = 0; s < 2; ++s) {
    st->read_block(home[s], buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(kOldBase + s)))
        << "shard " << s
        << ": acked txn survived a skipped commit-record flush — the flush "
           "is not load-bearing";
  }
}

// Control for the sabotage test: with the flush in place the identical
// sequence KEEPS the acknowledged transaction through total line loss.
TEST(MultiStreamCrash, FlushedCommitRecordKeepsTheAckedTxn) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kShardNvm, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  const VictimRun run = run_victim(dev, disk, 0, /*sabotage=*/false);
  ASSERT_FALSE(run.crashed);

  dev.crash_discard_all();
  auto st = shard::ShardedTinca::recover(dev, disk, streamed_cfg());

  const auto home = one_block_per_shard(*st);
  std::vector<std::byte> buf(kBlockSize);
  for (std::uint32_t s = 0; s < 2; ++s) {
    st->read_block(home[s], buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(kNewBase + s)))
        << "shard " << s << " lost an acked, fully flushed cross-shard txn";
  }
}

}  // namespace
}  // namespace tinca::core
