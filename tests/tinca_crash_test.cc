// Crash-consistency property tests for Tinca (paper §4.5, §5.1).
//
// Strategy: run a workload of transactions with the commit path instrumented
// by crash points.  For *every* step k, re-run with a crash armed at step k,
// simulate power loss (each unflushed cache line independently survives or
// not), recover, and assert the atomicity invariant:
//
//   every block of an in-flight transaction reads back its last committed
//   contents; every block of a completed transaction reads back the new
//   contents; nothing else changed.
//
// This is strictly stronger than the paper's pull-the-plug test because it
// covers every ordering window deterministically.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/tinca_cache.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 1 << 20;
constexpr std::uint64_t kRing = 4096;

using Expected = std::map<std::uint64_t, std::uint64_t>;  // blkno -> seed

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

/// A deterministic little history of transactions.  Returns, per txn, the
/// (blkno, seed) set it writes.  Blocks repeat across txns to exercise COW.
std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
make_history(int txns, int blocks_per_txn) {
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> history;
  std::uint64_t seed = 1;
  for (int t = 0; t < txns; ++t) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> txn;
    for (int b = 0; b < blocks_per_txn; ++b) {
      // Mix of fresh blocks and rewrites of earlier ones.
      const std::uint64_t blkno =
          (b % 2 == 0) ? static_cast<std::uint64_t>(t * blocks_per_txn + b)
                       : static_cast<std::uint64_t>(b);
      txn.emplace_back(blkno, seed++);
    }
    history.push_back(std::move(txn));
  }
  return history;
}

/// Replays `history` against a fresh cache; crashes at injector step
/// `crash_step` (0 = never).  Returns the expected committed state.
struct RunResult {
  Expected committed;     // state if every txn before the crash committed
  std::size_t committed_txns = 0;  // commits that returned before the crash
  std::uint64_t steps = 0;  // crash points observed (when not crashing)
  bool crashed = false;
};

RunResult run_history(nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
                      std::uint64_t crash_step) {
  auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = kRing});
  dev.injector.disarm();
  if (crash_step > 0) dev.injector.arm(crash_step);

  RunResult result;
  const auto history = make_history(6, 5);
  try {
    for (const auto& txn_spec : history) {
      auto txn = cache->tinca_init_txn();
      for (const auto& [blkno, seed] : txn_spec) txn.add(blkno, block_of(seed));
      cache->tinca_commit(txn);
      // The commit returned: everything in it is now expected state.
      for (const auto& [blkno, seed] : txn_spec) result.committed[blkno] = seed;
      ++result.committed_txns;
    }
  } catch (const nvm::CrashException&) {
    result.crashed = true;
  }
  result.steps = dev.injector.steps_seen();
  dev.injector.disarm();
  return result;
}

Expected whole_universe() {
  Expected u;
  for (const auto& txn : make_history(6, 5))
    for (const auto& [blkno, seed] : txn) u[blkno] = seed;
  return u;
}

/// The atomicity invariant must hold for a crash at *every* step, under
/// every line-survival pattern.  Parameterized over survival probability.
class CrashSweep : public ::testing::TestWithParam<double> {};

TEST_P(CrashSweep, EveryStepRecoversConsistently) {
  // First, learn the number of crash points in a full run.
  sim::SimClock probe_clock;
  nvm::NvmDevice probe_dev(kNvmBytes, nvdimm_profile(), probe_clock);
  blockdev::MemBlockDevice probe_disk(1 << 16);
  const RunResult full = run_history(probe_dev, probe_disk, 0);
  ASSERT_FALSE(full.crashed);
  ASSERT_GT(full.steps, 100u);

  const Expected universe = whole_universe();
  const double survive = GetParam();
  Rng rng(static_cast<std::uint64_t>(survive * 1000) + 5);

  for (std::uint64_t step = 1; step <= full.steps; ++step) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 16);
    const RunResult run = run_history(dev, disk, step);
    ASSERT_TRUE(run.crashed) << "step " << step << " did not crash";

    dev.crash(rng, survive);
    auto recovered = TincaCache::recover(dev, disk,
                                         TincaConfig{.ring_bytes = kRing});

    // Recovery must leave no unflushed state of its own (verification reads
    // below will add clean fills, so check this first).
    ASSERT_EQ(dev.dirty_lines(), 0u)
        << "recovery left unflushed state at step " << step;

    // The committed map from the crashed run reflects exactly the txns whose
    // commit call returned before the crash — but the *last* transaction may
    // also have committed durably if the crash hit after Tail was published
    // (between publish and return).  Accept either: the recovered state must
    // match `run.committed` or `run.committed + next txn`.
    const auto history = make_history(6, 5);
    std::vector<Expected> acceptable;
    acceptable.push_back(run.committed);
    // The in-flight transaction may also have landed durably if the crash
    // hit between Tail publication and the commit call returning.
    if (run.committed_txns < history.size()) {
      Expected with_next = run.committed;
      for (const auto& [blkno, seed] : history[run.committed_txns])
        with_next[blkno] = seed;
      acceptable.push_back(with_next);
    }

    bool ok = false;
    std::string last_err;
    for (const Expected& exp : acceptable) {
      bool match = true;
      std::vector<std::byte> buf(kBlockSize);
      for (const auto& [blkno, _] : universe) {
        recovered->read_block(blkno, buf);
        auto it = exp.find(blkno);
        const std::uint64_t want =
            it != exp.end() ? fingerprint(block_of(it->second))
                            : fingerprint(std::vector<std::byte>(kBlockSize, std::byte{0}));
        if (fingerprint(buf) != want) {
          match = false;
          break;
        }
      }
      if (match) {
        ok = true;
        break;
      }
    }
    ASSERT_TRUE(ok) << "inconsistent recovery after crash at step " << step
                    << " (survive=" << survive << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(SurvivalPatterns, CrashSweep,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0));

TEST(TincaCrash, RecoveryIsIdempotentUnderRepeatedCrashes) {
  // Crash during the run, then crash *during recovery* at every recovery
  // step, recover again, and check consistency still holds.
  sim::SimClock probe_clock;
  nvm::NvmDevice probe_dev(kNvmBytes, nvdimm_profile(), probe_clock);
  blockdev::MemBlockDevice probe_disk(1 << 16);
  const RunResult full = run_history(probe_dev, probe_disk, 0);
  const Expected universe = whole_universe();

  Rng rng(77);
  // Sample a spread of crash steps (full sweep of the cross product would
  // be quadratic).
  for (std::uint64_t step = 7; step <= full.steps; step += 13) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 16);
    const RunResult run = run_history(dev, disk, step);
    ASSERT_TRUE(run.crashed);
    dev.crash(rng, 0.5);

    // First recovery attempt, crashed at recovery step 1, 2, ... until a
    // recovery completes.
    std::unique_ptr<TincaCache> recovered;
    for (std::uint64_t rstep = 1; rstep < 100 && !recovered; ++rstep) {
      dev.injector.arm(rstep);
      try {
        recovered = TincaCache::recover(dev, disk,
                                        TincaConfig{.ring_bytes = kRing});
      } catch (const nvm::CrashException&) {
        dev.crash(rng, 0.5);
      }
    }
    dev.injector.disarm();
    if (!recovered)
      recovered = TincaCache::recover(dev, disk, TincaConfig{.ring_bytes = kRing});

    // All committed-before-crash data must still be intact (the final txn
    // may or may not have landed, as in the sweep test).
    std::vector<std::byte> buf(kBlockSize);
    for (const auto& [blkno, seed] : run.committed) {
      recovered->read_block(blkno, buf);
      const auto history = make_history(6, 5);
      // Accept the committed seed or any later seed for this block from the
      // immediately-following transaction.
      bool acceptable = fingerprint(buf) == fingerprint(block_of(seed));
      if (!acceptable) {
        for (const auto& txn : history)
          for (const auto& [b2, s2] : txn)
            if (b2 == blkno && s2 > seed &&
                fingerprint(buf) == fingerprint(block_of(s2)))
              acceptable = true;
      }
      ASSERT_TRUE(acceptable)
          << "block " << blkno << " corrupted after repeated crashes at step "
          << step;
    }
  }
}

TEST(TincaCrash, WriteMissAbortedMidCommitIsDiscardedWholly) {
  // Directed sweep over the revoke-marker blind spot: a WRITE-MISS block
  // has prev_nvm == kFresh, so the marker encoding (prev == curr) cannot
  // represent its rollback — revoke_slot must instead discard the whole
  // entry.  Crash a single-block write-miss commit at every injector step
  // and assert recovery leaves exactly one of two states: the block fully
  // committed (Tail already published) or not cached at all with the disk
  // untouched.  No step may yield a half-alive entry, and no step may trip
  // the revoke-marker precondition (prev != kFresh) during recovery.
  constexpr std::uint64_t kBlkno = 42;

  sim::SimClock probe_clock;
  nvm::NvmDevice probe_dev(kNvmBytes, nvdimm_profile(), probe_clock);
  blockdev::MemBlockDevice probe_disk(1 << 16);
  std::uint64_t steps = 0;
  {
    auto cache = TincaCache::format(probe_dev, probe_disk,
                                    TincaConfig{.ring_bytes = kRing});
    auto txn = cache->tinca_init_txn();
    txn.add(kBlkno, block_of(7));
    cache->tinca_commit(txn);
    steps = probe_dev.injector.steps_seen();
  }
  ASSERT_GT(steps, 3u);

  Rng rng(4242);
  for (const double survive : {0.0, 0.5, 1.0}) {
    for (std::uint64_t step = 1; step <= steps; ++step) {
      sim::SimClock clock;
      nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
      blockdev::MemBlockDevice disk(1 << 16);
      auto cache =
          TincaCache::format(dev, disk, TincaConfig{.ring_bytes = kRing});
      dev.injector.arm(step);
      bool crashed = false;
      try {
        auto txn = cache->tinca_init_txn();
        txn.add(kBlkno, block_of(7));
        cache->tinca_commit(txn);
      } catch (const nvm::CrashException&) {
        crashed = true;
      }
      dev.injector.disarm();
      if (!crashed) continue;  // step beyond the commit: nothing to check

      dev.crash(rng, survive);
      auto recovered =
          TincaCache::recover(dev, disk, TincaConfig{.ring_bytes = kRing});

      // Inspect the cache state BEFORE reading (read_block would fill the
      // cache on a miss and mask a ghost entry).
      const bool resident = recovered->cached(kBlkno);
      std::vector<std::byte> got(kBlockSize);
      recovered->read_block(kBlkno, got);
      const bool committed = fingerprint(got) == fingerprint(block_of(7));
      const bool discarded =
          fingerprint(got) ==
          fingerprint(std::vector<std::byte>(kBlockSize, std::byte{0}));
      ASSERT_TRUE(committed || discarded)
          << "half-alive write-miss block after crash at step " << step
          << " (survive=" << survive << ")";
      // A discarded write miss must leave no cache ghost: the entry is
      // invalidated whole, never kept as a revoke marker.
      if (discarded) {
        EXPECT_FALSE(resident) << "step " << step << " survive " << survive;
      }
      // Write-back cache, single txn: the commit path must never have
      // touched the disk, whichever way recovery resolved the crash.
      std::vector<std::byte> raw(kBlockSize);
      disk.read(kBlkno, raw);
      EXPECT_EQ(raw, std::vector<std::byte>(kBlockSize))
          << "disk advanced during an aborted write-miss commit, step "
          << step;
    }
  }
}

TEST(TincaCrash, KillBeforeAnyCommitIsHarmless) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  {
    auto cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = kRing});
    auto txn = cache->tinca_init_txn();
    txn.add(1, block_of(1));
    // Process dies before commit: staged data simply evaporates.
  }
  dev.crash_discard_all();
  auto recovered =
      TincaCache::recover(dev, disk, TincaConfig{.ring_bytes = kRing});
  EXPECT_FALSE(recovered->cached(1));
  EXPECT_EQ(recovered->stats().revoked_blocks, 0u);
}

}  // namespace
}  // namespace tinca::core
