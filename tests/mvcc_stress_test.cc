// Multi-reader / single-writer MVCC stress (DESIGN.md §12), built to run
// under ThreadSanitizer (ci.sh runs it in the TSan stage).
//
// One writer thread commits rounds of an 8-block transaction where every
// block carries the same round pattern; N reader threads concurrently take
// snapshots and issue lock-free read_block calls.  The invariant a snapshot
// must uphold is exactly the commit boundary: all 8 blocks read through one
// snapshot decode to the SAME round, and successive snapshots on one thread
// never travel backwards in time.  Plain reads must always decode to *some*
// committed round — any torn or recycled-mid-copy block surfaces as an
// unknown fingerprint.
//
// Failures are collected into shared state and asserted on the main thread
// (gtest assertions are not thread-safe off the main thread).  The NVM
// device is sized to hold every version the run can publish, so reclamation
// pressure can stall (a reader parked on a pin) without ever wedging the
// writer — the stress stays about ordering, not capacity.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "shard/sharded_tinca.h"

namespace tinca::shard {
namespace {

using core::kBlockSize;

constexpr std::size_t kNvmBytes = 16 << 20;  // every version fits: no wedge
constexpr std::uint64_t kGroupBlocks = 8;
constexpr std::uint64_t kRounds = 200;
constexpr int kReaders = 4;

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

/// fingerprint -> round, for decoding what a read returned.  Round 0 is the
/// pre-history zero block.
std::unordered_map<std::uint64_t, std::uint64_t> make_round_table() {
  std::unordered_map<std::uint64_t, std::uint64_t> t;
  t[fingerprint(std::vector<std::byte>(kBlockSize, std::byte{0}))] = 0;
  for (std::uint64_t r = 1; r <= kRounds; ++r)
    t[fingerprint(block_of(r))] = r;
  return t;
}

/// Thread-safe failure sink: keeps the first detailed message and counts.
struct Violations {
  std::atomic<std::uint64_t> count{0};
  std::mutex mu;
  std::string first;

  void add(const std::string& msg) {
    if (count.fetch_add(1) == 0) {
      std::lock_guard<std::mutex> lock(mu);
      first = msg;
    }
  }
};

TEST(MvccStress, SnapshotsSeeCommitBoundariesUnderConcurrentReaders) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  ShardedConfig cfg;
  cfg.num_shards = 1;  // one shard: the snapshot boundary spans all blocks
  cfg.shard.ring_bytes = 64 << 10;
  auto sharded = ShardedTinca::format(dev, disk, cfg);

  const auto round_of = make_round_table();
  Violations bad;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots_taken{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int rd = 0; rd < kReaders; ++rd) {
    readers.emplace_back([&, rd] {
      std::vector<std::byte> buf(kBlockSize);
      std::uint64_t last_round = 0;
      std::uint64_t plain_blkno = static_cast<std::uint64_t>(rd);
      while (!done.load(std::memory_order_acquire) || snapshots_taken < 50) {
        // One snapshot: all group blocks must decode to one round.
        ShardedSnapshot snap = sharded->open_snapshot();
        std::uint64_t round = ~std::uint64_t{0};
        for (std::uint64_t b = 0; b < kGroupBlocks; ++b) {
          sharded->snapshot_read(snap, b, buf);
          const auto it = round_of.find(fingerprint(buf));
          if (it == round_of.end()) {
            std::ostringstream os;
            os << "reader " << rd << ": snapshot block " << b
               << " is no committed image (torn/recycled read)";
            bad.add(os.str());
            round = ~std::uint64_t{0};
            break;
          }
          if (b == 0) {
            round = it->second;
          } else if (it->second != round) {
            std::ostringstream os;
            os << "reader " << rd << ": snapshot mixes round " << round
               << " (block 0) with round " << it->second << " (block " << b
               << ") — not a commit-boundary image";
            bad.add(os.str());
            break;
          }
        }
        sharded->close_snapshot(snap);
        if (round != ~std::uint64_t{0}) {
          if (round < last_round) {
            std::ostringstream os;
            os << "reader " << rd << ": snapshot went backwards, round "
               << round << " after " << last_round;
            bad.add(os.str());
          }
          last_round = round;
        }
        snapshots_taken.fetch_add(1, std::memory_order_relaxed);

        // One lock-free plain read: must decode to SOME committed round.
        sharded->read_block(plain_blkno % kGroupBlocks, buf);
        if (!round_of.contains(fingerprint(buf))) {
          std::ostringstream os;
          os << "reader " << rd << ": plain read of block "
             << plain_blkno % kGroupBlocks << " returned no committed image";
          bad.add(os.str());
        }
        ++plain_blkno;
      }
    });
  }

  // The single writer: kGroupBlocks-wide transactions, one round each.
  for (std::uint64_t r = 1; r <= kRounds; ++r) {
    ShardedTxn txn = sharded->init_txn();
    const auto data = block_of(r);
    for (std::uint64_t b = 0; b < kGroupBlocks; ++b) txn.add(b, data);
    sharded->commit(txn);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ASSERT_EQ(bad.count.load(), 0u) << bad.first;
  EXPECT_GE(snapshots_taken.load(), 50u);

  // Quiesced: a final snapshot must read the last round everywhere.
  ShardedSnapshot snap = sharded->open_snapshot();
  std::vector<std::byte> buf(kBlockSize);
  for (std::uint64_t b = 0; b < kGroupBlocks; ++b) {
    sharded->snapshot_read(snap, b, buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(kRounds))) << "blk " << b;
  }
  sharded->close_snapshot(snap);
}

TEST(ShardedSnapshotRaii, AbandonedSnapshotReleasesItsPins) {
  // A snapshot dropped without close_snapshot() (early return, exception
  // from snapshot_read) must release its registry pins in the destructor —
  // a leaked pin silently blocks version trimming and writebacks forever.
  sim::SimClock clock;
  nvm::NvmDevice dev(4 << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 12);
  ShardedConfig cfg;
  cfg.num_shards = 2;
  cfg.shard.ring_bytes = 4096;
  auto sharded = ShardedTinca::format(dev, disk, cfg);
  sharded->write_block(1, block_of(1));

  {
    ShardedSnapshot snap = sharded->open_snapshot();
    ASSERT_TRUE(snap.open());
    std::vector<std::byte> buf(kBlockSize);
    sharded->snapshot_read(snap, 1, buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(1)));
    // No close_snapshot: destruction must release every shard's pin.
  }
  for (std::uint32_t s = 0; s < sharded->shard_count(); ++s)
    EXPECT_FALSE(sharded->shard_cache(s).mvcc().any_pin()) << "shard " << s;

  // A moved-from snapshot is closed and releases nothing; the explicit
  // close path still works on the destination.
  ShardedSnapshot a = sharded->open_snapshot();
  ShardedSnapshot b = std::move(a);
  EXPECT_FALSE(a.open());
  EXPECT_TRUE(b.open());
  sharded->close_snapshot(b);
  EXPECT_FALSE(b.open());
  for (std::uint32_t s = 0; s < sharded->shard_count(); ++s)
    EXPECT_FALSE(sharded->shard_cache(s).mvcc().any_pin()) << "shard " << s;
}

}  // namespace
}  // namespace tinca::shard
