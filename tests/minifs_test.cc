// Functional tests for MiniFs over both backends.
#include <gtest/gtest.h>

#include "backend/stack_builder.h"
#include "common/bytes.h"
#include "fs/minifs.h"

namespace tinca::fs {
namespace {

using backend::Stack;
using backend::StackConfig;
using backend::StackKind;

StackConfig fs_stack(StackKind kind) {
  StackConfig cfg;
  cfg.kind = kind;
  cfg.nvm_bytes = 16 << 20;
  cfg.disk_blocks = 1 << 14;
  cfg.classic.journal_blocks = 1024;
  cfg.tinca.ring_bytes = 128 * 1024;
  return cfg;
}

std::vector<std::byte> bytes_of(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> b(n);
  fill_pattern(b, seed);
  return b;
}

class MiniFsOnBackend : public ::testing::TestWithParam<StackKind> {
 protected:
  MiniFsOnBackend() : stack_(fs_stack(GetParam())) {
    fsys_ = MiniFs::mkfs(stack_.backend());
  }
  Stack stack_;
  std::unique_ptr<MiniFs> fsys_;
};

TEST_P(MiniFsOnBackend, FreshFsHasEmptyRoot) {
  EXPECT_TRUE(fsys_->list("/").empty());
  EXPECT_TRUE(fsys_->exists("/"));
  EXPECT_FALSE(fsys_->exists("/nope"));
}

TEST_P(MiniFsOnBackend, CreateListRemove) {
  fsys_->create("/a");
  fsys_->create("/b");
  auto names = fsys_->list("/");
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  fsys_->remove("/a");
  EXPECT_FALSE(fsys_->exists("/a"));
  EXPECT_TRUE(fsys_->exists("/b"));
}

TEST_P(MiniFsOnBackend, WriteReadRoundTrip) {
  fsys_->create("/f");
  const auto data = bytes_of(10000, 42);
  fsys_->write("/f", 0, data);
  std::vector<std::byte> got(10000);
  EXPECT_EQ(fsys_->read("/f", 0, got), 10000u);
  EXPECT_EQ(got, data);
  EXPECT_EQ(fsys_->file_size("/f"), 10000u);
}

TEST_P(MiniFsOnBackend, PartialAndOffsetReads) {
  fsys_->create("/f");
  fsys_->write("/f", 0, bytes_of(8192, 1));
  std::vector<std::byte> got(4096);
  EXPECT_EQ(fsys_->read("/f", 6000, got), 2192u);
  EXPECT_EQ(fsys_->read("/f", 8192, got), 0u);
}

TEST_P(MiniFsOnBackend, OverwriteInPlace) {
  fsys_->create("/f");
  fsys_->write("/f", 0, bytes_of(4096, 1));
  fsys_->write("/f", 100, bytes_of(50, 2));
  std::vector<std::byte> got(4096);
  fsys_->read("/f", 0, got);
  const auto orig = bytes_of(4096, 1);
  const auto patch = bytes_of(50, 2);
  EXPECT_TRUE(std::equal(got.begin(), got.begin() + 100, orig.begin()));
  EXPECT_TRUE(std::equal(got.begin() + 100, got.begin() + 150, patch.begin()));
  EXPECT_TRUE(std::equal(got.begin() + 150, got.end(), orig.begin() + 150));
}

TEST_P(MiniFsOnBackend, AppendGrowsFile) {
  fsys_->create("/log");
  for (int i = 0; i < 10; ++i) fsys_->append("/log", bytes_of(1000, i));
  EXPECT_EQ(fsys_->file_size("/log"), 10000u);
  std::vector<std::byte> got(1000);
  fsys_->read("/log", 4000, got);
  EXPECT_EQ(got, bytes_of(1000, 4));
}

TEST_P(MiniFsOnBackend, LargeFileUsesIndirectBlocks) {
  fsys_->create("/big");
  const std::size_t size = 200 * 1024;  // beyond 12 direct blocks (48 KB)
  fsys_->write("/big", 0, bytes_of(size, 5));
  std::vector<std::byte> got(size);
  EXPECT_EQ(fsys_->read("/big", 0, got), size);
  EXPECT_EQ(fingerprint(got), fingerprint(bytes_of(size, 5)));
}

TEST_P(MiniFsOnBackend, MaxFileSizeEnforced) {
  fsys_->create("/huge");
  EXPECT_THROW(fsys_->write("/huge", fsys_->max_file_bytes(), bytes_of(1, 1)),
               ContractViolation);
}

TEST_P(MiniFsOnBackend, DirectoriesNest) {
  fsys_->mkdir("/d1");
  fsys_->mkdir("/d1/d2");
  fsys_->create("/d1/d2/f");
  EXPECT_TRUE(fsys_->exists("/d1/d2/f"));
  EXPECT_EQ(fsys_->list("/d1"), std::vector<std::string>{"d2"});
}

TEST_P(MiniFsOnBackend, ManyFilesPerDirectory) {
  fsys_->mkdir("/dir");
  for (int i = 0; i < 300; ++i)
    fsys_->create("/dir/file" + std::to_string(i));
  EXPECT_EQ(fsys_->list("/dir").size(), 300u);
  for (int i = 0; i < 300; i += 2)
    fsys_->remove("/dir/file" + std::to_string(i));
  EXPECT_EQ(fsys_->list("/dir").size(), 150u);
}

TEST_P(MiniFsOnBackend, DuplicateCreateRejected) {
  fsys_->create("/x");
  EXPECT_THROW(fsys_->create("/x"), ContractViolation);
}

TEST_P(MiniFsOnBackend, MissingFileOpsRejected) {
  EXPECT_THROW(fsys_->remove("/ghost"), ContractViolation);
  EXPECT_THROW(fsys_->write("/ghost", 0, bytes_of(1, 1)), ContractViolation);
  std::vector<std::byte> buf(8);
  EXPECT_THROW(fsys_->read("/ghost", 0, buf), ContractViolation);
}

TEST_P(MiniFsOnBackend, RemoveFreesSpaceForReuse) {
  fsys_->create("/a");
  fsys_->write("/a", 0, bytes_of(100 * 1024, 1));
  fsys_->remove("/a");
  // Freed blocks must be reusable many times over.
  for (int round = 0; round < 20; ++round) {
    const std::string path = "/r" + std::to_string(round);
    fsys_->create(path);
    fsys_->write(path, 0, bytes_of(100 * 1024, round));
    fsys_->remove(path);
  }
  fsys_->fsync();
  const FsckReport report = fsys_->fsck();
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

TEST_P(MiniFsOnBackend, FsckPassesAfterMixedWorkload) {
  fsys_->mkdir("/w");
  for (int i = 0; i < 50; ++i) {
    fsys_->create("/w/f" + std::to_string(i));
    fsys_->write("/w/f" + std::to_string(i), 0, bytes_of(5000 + i * 100, i));
  }
  for (int i = 0; i < 50; i += 3) fsys_->remove("/w/f" + std::to_string(i));
  fsys_->fsync();
  const FsckReport report = fsys_->fsck();
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
  EXPECT_EQ(report.directories, 2u);  // root + /w
}

TEST_P(MiniFsOnBackend, RemountSeesCommittedState) {
  fsys_->create("/persist");
  fsys_->write("/persist", 0, bytes_of(20000, 9));
  fsys_->fsync();
  auto remounted = MiniFs::mount(stack_.backend());
  EXPECT_TRUE(remounted->exists("/persist"));
  std::vector<std::byte> got(20000);
  EXPECT_EQ(remounted->read("/persist", 0, got), 20000u);
  EXPECT_EQ(fingerprint(got), fingerprint(bytes_of(20000, 9)));
}

TEST_P(MiniFsOnBackend, UncommittedOpsInvisibleAfterRemount) {
  fsys_->create("/durable");
  fsys_->fsync();
  fsys_->create("/volatile");  // staged, never fsynced
  auto remounted = MiniFs::mount(stack_.backend());
  EXPECT_TRUE(remounted->exists("/durable"));
  EXPECT_FALSE(remounted->exists("/volatile"));
}

INSTANTIATE_TEST_SUITE_P(Backends, MiniFsOnBackend,
                         ::testing::Values(StackKind::kTinca,
                                           StackKind::kClassic,
                                           StackKind::kUbj,
                                           StackKind::kShardedTinca),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case StackKind::kTinca: return "Tinca";
                             case StackKind::kClassic: return "Classic";
                             case StackKind::kShardedTinca: return "ShardedTinca";
                             default: return "Ubj";
                           }
                         });

// ---------------------------------------------------------------------------
// fsck problem codes: corrupt a committed image one invariant at a time and
// assert the checker reports exactly the machine-checkable code for it.
// One stack suffices — fsck only sees blocks through the TxnBackend surface.
// ---------------------------------------------------------------------------

// On-media inode field offsets (see minifs.cc: read_inode/write_inode).
constexpr std::uint64_t kInodeBytes = 128;
constexpr std::uint64_t kInodesPerBlock = 4096 / kInodeBytes;
constexpr std::uint64_t kTypeOff = 0;
constexpr std::uint64_t kSizeOff = 8;
constexpr std::uint64_t kDirect0Off = 16;
constexpr std::uint64_t kDirEntryBytes = 64;

class FsckCodes : public ::testing::Test {
 protected:
  FsckCodes() : stack_(fs_stack(StackKind::kTinca)) {
    fsys_ = MiniFs::mkfs(stack_.backend());
  }

  /// Read–modify–write one raw media block behind the file system's back
  /// (committed through the backend, so a remount sees it).
  template <typename Fn>
  void corrupt(std::uint64_t blkno, Fn mutate) {
    std::vector<std::byte> blk(4096);
    stack_.backend().read_block(blkno, blk);
    mutate(std::span<std::byte>(blk));
    stack_.backend().begin();
    stack_.backend().stage(blkno, blk);
    stack_.backend().commit();
  }

  /// Poke one little-endian u64 field of inode `ino` on media.
  void poke_inode(std::uint64_t ino, std::uint64_t field_off,
                  std::uint64_t value) {
    const MiniFs::Geometry& g = fsys_->geometry();
    corrupt(g.itable_start + ino / kInodesPerBlock, [&](std::span<std::byte> b) {
      store_le(b.data() + (ino % kInodesPerBlock) * kInodeBytes + field_off,
               value, 8);
    });
  }

  /// Read one little-endian u64 field of inode `ino` from media.
  std::uint64_t peek_inode(std::uint64_t ino, std::uint64_t field_off) {
    const MiniFs::Geometry& g = fsys_->geometry();
    std::vector<std::byte> blk(4096);
    stack_.backend().read_block(g.itable_start + ino / kInodesPerBlock, blk);
    return load_le(
        blk.data() + (ino % kInodesPerBlock) * kInodeBytes + field_off, 8);
  }

  /// Flip one bit of the inode (or block) allocation bitmap on media.
  void flip_bitmap_bit(bool inode_bitmap, std::uint64_t index) {
    const MiniFs::Geometry& g = fsys_->geometry();
    const std::uint64_t start = inode_bitmap ? g.ibmap_start : g.bbmap_start;
    corrupt(start + index / (4096 * 8), [&](std::span<std::byte> b) {
      b[(index / 8) % 4096] ^= static_cast<std::byte>(1u << (index % 8));
    });
  }

  /// Drop caches and re-mount so fsck sees the corrupted media.
  FsckReport fsck_fresh() {
    fsys_.reset();
    fsys_ = MiniFs::mount(stack_.backend());
    return fsys_->fsck();
  }

  Stack stack_;
  std::unique_ptr<MiniFs> fsys_;
};

// Root is inode 0; the first created file gets inode 1, the next inode 2.

TEST_F(FsckCodes, PtrOutOfRange) {
  fsys_->create("/f");
  fsys_->write("/f", 0, bytes_of(4096, 1));
  fsys_->fsync();
  poke_inode(1, kDirect0Off, fsys_->geometry().total_blocks + 7);
  const FsckReport r = fsck_fresh();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.has(FsckCode::kPtrOutOfRange)) << r.summary();
}

TEST_F(FsckCodes, CrossLinkedBlock) {
  fsys_->create("/a");
  fsys_->create("/b");
  fsys_->write("/a", 0, bytes_of(4096, 1));
  fsys_->write("/b", 0, bytes_of(4096, 2));
  fsys_->fsync();
  poke_inode(2, kDirect0Off, peek_inode(1, kDirect0Off));
  const FsckReport r = fsck_fresh();
  EXPECT_TRUE(r.has(FsckCode::kCrossLinkedBlock)) << r.summary();
  EXPECT_TRUE(r.has(FsckCode::kBlockLeak)) << r.summary();  // b's old block
}

TEST_F(FsckCodes, BadDirType) {
  fsys_->create("/f");
  fsys_->fsync();
  poke_inode(0, kTypeOff, 1);  // root is "a file" now
  EXPECT_TRUE(fsck_fresh().has(FsckCode::kBadDirType));
}

TEST_F(FsckCodes, BadDirSize) {
  fsys_->create("/f");
  fsys_->fsync();
  poke_inode(0, kSizeOff, peek_inode(0, kSizeOff) + 100);
  EXPECT_TRUE(fsck_fresh().has(FsckCode::kBadDirSize));
}

TEST_F(FsckCodes, EntryBadInodeAndOrphanLeak) {
  fsys_->create("/f");
  fsys_->write("/f", 0, bytes_of(4096, 1));
  fsys_->fsync();
  // Point /f's root-directory entry past the inode table; /f's inode and
  // data block become unreachable.
  corrupt(peek_inode(0, kDirect0Off), [&](std::span<std::byte> b) {
    store_le(b.data(), fsys_->geometry().inode_count + 9, 8);
  });
  const FsckReport r = fsck_fresh();
  EXPECT_TRUE(r.has(FsckCode::kEntryBadInode)) << r.summary();
  EXPECT_TRUE(r.has(FsckCode::kInodeLeak)) << r.summary();
  EXPECT_TRUE(r.has(FsckCode::kBlockLeak)) << r.summary();
}

TEST_F(FsckCodes, EntryFreeInode) {
  fsys_->create("/f");
  fsys_->fsync();
  flip_bitmap_bit(true, 1);  // free /f's inode under the live entry
  const FsckReport r = fsck_fresh();
  EXPECT_TRUE(r.has(FsckCode::kEntryFreeInode)) << r.summary();
  EXPECT_TRUE(r.has(FsckCode::kInodeFreeButLinked)) << r.summary();
}

TEST_F(FsckCodes, MultiplyLinkedInode) {
  fsys_->create("/a");
  fsys_->create("/b");
  fsys_->fsync();
  // Rewrite /b's entry to point at /a's inode (a forbidden hard link).
  corrupt(peek_inode(0, kDirect0Off), [&](std::span<std::byte> b) {
    store_le(b.data() + kDirEntryBytes, 1, 8);
  });
  const FsckReport r = fsck_fresh();
  EXPECT_TRUE(r.has(FsckCode::kMultiplyLinkedInode)) << r.summary();
  EXPECT_TRUE(r.has(FsckCode::kInodeLeak)) << r.summary();  // b's inode
}

TEST_F(FsckCodes, EntryUntypedInode) {
  fsys_->create("/f");
  fsys_->fsync();
  poke_inode(1, kTypeOff, 0);
  EXPECT_TRUE(fsck_fresh().has(FsckCode::kEntryUntypedInode));
}

TEST_F(FsckCodes, DupName) {
  fsys_->create("/a");
  fsys_->create("/b");
  fsys_->fsync();
  // Rename /b's entry to "a" in place: two live entries, one name.
  corrupt(peek_inode(0, kDirect0Off), [&](std::span<std::byte> b) {
    b[kDirEntryBytes + 9] = static_cast<std::byte>('a');
    b[kDirEntryBytes + 10] = std::byte{0};
  });
  EXPECT_TRUE(fsck_fresh().has(FsckCode::kDupName));
}

TEST_F(FsckCodes, FileTooLarge) {
  fsys_->create("/f");
  fsys_->write("/f", 0, bytes_of(4096, 1));
  fsys_->fsync();
  poke_inode(1, kSizeOff, fsys_->max_file_bytes() + 4096);
  EXPECT_TRUE(fsck_fresh().has(FsckCode::kFileTooLarge));
}

TEST_F(FsckCodes, BlockPastEof) {
  fsys_->create("/f");
  fsys_->write("/f", 0, bytes_of(2 * 4096, 1));
  fsys_->fsync();
  // Shrink the size on media without freeing the second block — exactly the
  // state a buggy truncate would leave behind.
  poke_inode(1, kSizeOff, 4096);
  EXPECT_TRUE(fsck_fresh().has(FsckCode::kBlockPastEof));
}

TEST_F(FsckCodes, BlockLeak) {
  fsys_->create("/f");
  fsys_->fsync();
  const MiniFs::Geometry& g = fsys_->geometry();
  flip_bitmap_bit(false, g.total_blocks - g.data_start - 1);  // mark a free block used
  EXPECT_TRUE(fsck_fresh().has(FsckCode::kBlockLeak));
}

TEST_F(FsckCodes, BlockFreeButUsed) {
  fsys_->create("/f");
  fsys_->write("/f", 0, bytes_of(4096, 1));
  fsys_->fsync();
  const std::uint64_t blkno = peek_inode(1, kDirect0Off);
  flip_bitmap_bit(false, blkno - fsys_->geometry().data_start);
  EXPECT_TRUE(fsck_fresh().has(FsckCode::kBlockFreeButUsed));
}

TEST_F(FsckCodes, InodeLeak) {
  fsys_->create("/f");
  fsys_->fsync();
  flip_bitmap_bit(true, 5);  // mark an unused inode allocated
  EXPECT_TRUE(fsck_fresh().has(FsckCode::kInodeLeak));
}

TEST_F(FsckCodes, CleanImageStaysClean) {
  fsys_->mkdir("/d");
  fsys_->create("/d/f");
  fsys_->write("/d/f", 0, bytes_of(60 * 1024, 3));  // into the indirect block
  fsys_->fsync();
  const FsckReport r = fsck_fresh();
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_TRUE(r.codes.empty());
}

}  // namespace
}  // namespace tinca::fs
