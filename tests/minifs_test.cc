// Functional tests for MiniFs over both backends.
#include <gtest/gtest.h>

#include "backend/stack_builder.h"
#include "common/bytes.h"
#include "fs/minifs.h"

namespace tinca::fs {
namespace {

using backend::Stack;
using backend::StackConfig;
using backend::StackKind;

StackConfig fs_stack(StackKind kind) {
  StackConfig cfg;
  cfg.kind = kind;
  cfg.nvm_bytes = 16 << 20;
  cfg.disk_blocks = 1 << 14;
  cfg.classic.journal_blocks = 1024;
  cfg.tinca.ring_bytes = 128 * 1024;
  return cfg;
}

std::vector<std::byte> bytes_of(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> b(n);
  fill_pattern(b, seed);
  return b;
}

class MiniFsOnBackend : public ::testing::TestWithParam<StackKind> {
 protected:
  MiniFsOnBackend() : stack_(fs_stack(GetParam())) {
    fsys_ = MiniFs::mkfs(stack_.backend());
  }
  Stack stack_;
  std::unique_ptr<MiniFs> fsys_;
};

TEST_P(MiniFsOnBackend, FreshFsHasEmptyRoot) {
  EXPECT_TRUE(fsys_->list("/").empty());
  EXPECT_TRUE(fsys_->exists("/"));
  EXPECT_FALSE(fsys_->exists("/nope"));
}

TEST_P(MiniFsOnBackend, CreateListRemove) {
  fsys_->create("/a");
  fsys_->create("/b");
  auto names = fsys_->list("/");
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  fsys_->remove("/a");
  EXPECT_FALSE(fsys_->exists("/a"));
  EXPECT_TRUE(fsys_->exists("/b"));
}

TEST_P(MiniFsOnBackend, WriteReadRoundTrip) {
  fsys_->create("/f");
  const auto data = bytes_of(10000, 42);
  fsys_->write("/f", 0, data);
  std::vector<std::byte> got(10000);
  EXPECT_EQ(fsys_->read("/f", 0, got), 10000u);
  EXPECT_EQ(got, data);
  EXPECT_EQ(fsys_->file_size("/f"), 10000u);
}

TEST_P(MiniFsOnBackend, PartialAndOffsetReads) {
  fsys_->create("/f");
  fsys_->write("/f", 0, bytes_of(8192, 1));
  std::vector<std::byte> got(4096);
  EXPECT_EQ(fsys_->read("/f", 6000, got), 2192u);
  EXPECT_EQ(fsys_->read("/f", 8192, got), 0u);
}

TEST_P(MiniFsOnBackend, OverwriteInPlace) {
  fsys_->create("/f");
  fsys_->write("/f", 0, bytes_of(4096, 1));
  fsys_->write("/f", 100, bytes_of(50, 2));
  std::vector<std::byte> got(4096);
  fsys_->read("/f", 0, got);
  const auto orig = bytes_of(4096, 1);
  const auto patch = bytes_of(50, 2);
  EXPECT_TRUE(std::equal(got.begin(), got.begin() + 100, orig.begin()));
  EXPECT_TRUE(std::equal(got.begin() + 100, got.begin() + 150, patch.begin()));
  EXPECT_TRUE(std::equal(got.begin() + 150, got.end(), orig.begin() + 150));
}

TEST_P(MiniFsOnBackend, AppendGrowsFile) {
  fsys_->create("/log");
  for (int i = 0; i < 10; ++i) fsys_->append("/log", bytes_of(1000, i));
  EXPECT_EQ(fsys_->file_size("/log"), 10000u);
  std::vector<std::byte> got(1000);
  fsys_->read("/log", 4000, got);
  EXPECT_EQ(got, bytes_of(1000, 4));
}

TEST_P(MiniFsOnBackend, LargeFileUsesIndirectBlocks) {
  fsys_->create("/big");
  const std::size_t size = 200 * 1024;  // beyond 12 direct blocks (48 KB)
  fsys_->write("/big", 0, bytes_of(size, 5));
  std::vector<std::byte> got(size);
  EXPECT_EQ(fsys_->read("/big", 0, got), size);
  EXPECT_EQ(fingerprint(got), fingerprint(bytes_of(size, 5)));
}

TEST_P(MiniFsOnBackend, MaxFileSizeEnforced) {
  fsys_->create("/huge");
  EXPECT_THROW(fsys_->write("/huge", fsys_->max_file_bytes(), bytes_of(1, 1)),
               ContractViolation);
}

TEST_P(MiniFsOnBackend, DirectoriesNest) {
  fsys_->mkdir("/d1");
  fsys_->mkdir("/d1/d2");
  fsys_->create("/d1/d2/f");
  EXPECT_TRUE(fsys_->exists("/d1/d2/f"));
  EXPECT_EQ(fsys_->list("/d1"), std::vector<std::string>{"d2"});
}

TEST_P(MiniFsOnBackend, ManyFilesPerDirectory) {
  fsys_->mkdir("/dir");
  for (int i = 0; i < 300; ++i)
    fsys_->create("/dir/file" + std::to_string(i));
  EXPECT_EQ(fsys_->list("/dir").size(), 300u);
  for (int i = 0; i < 300; i += 2)
    fsys_->remove("/dir/file" + std::to_string(i));
  EXPECT_EQ(fsys_->list("/dir").size(), 150u);
}

TEST_P(MiniFsOnBackend, DuplicateCreateRejected) {
  fsys_->create("/x");
  EXPECT_THROW(fsys_->create("/x"), ContractViolation);
}

TEST_P(MiniFsOnBackend, MissingFileOpsRejected) {
  EXPECT_THROW(fsys_->remove("/ghost"), ContractViolation);
  EXPECT_THROW(fsys_->write("/ghost", 0, bytes_of(1, 1)), ContractViolation);
  std::vector<std::byte> buf(8);
  EXPECT_THROW(fsys_->read("/ghost", 0, buf), ContractViolation);
}

TEST_P(MiniFsOnBackend, RemoveFreesSpaceForReuse) {
  fsys_->create("/a");
  fsys_->write("/a", 0, bytes_of(100 * 1024, 1));
  fsys_->remove("/a");
  // Freed blocks must be reusable many times over.
  for (int round = 0; round < 20; ++round) {
    const std::string path = "/r" + std::to_string(round);
    fsys_->create(path);
    fsys_->write(path, 0, bytes_of(100 * 1024, round));
    fsys_->remove(path);
  }
  fsys_->fsync();
  const FsckReport report = fsys_->fsck();
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

TEST_P(MiniFsOnBackend, FsckPassesAfterMixedWorkload) {
  fsys_->mkdir("/w");
  for (int i = 0; i < 50; ++i) {
    fsys_->create("/w/f" + std::to_string(i));
    fsys_->write("/w/f" + std::to_string(i), 0, bytes_of(5000 + i * 100, i));
  }
  for (int i = 0; i < 50; i += 3) fsys_->remove("/w/f" + std::to_string(i));
  fsys_->fsync();
  const FsckReport report = fsys_->fsck();
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
  EXPECT_EQ(report.directories, 2u);  // root + /w
}

TEST_P(MiniFsOnBackend, RemountSeesCommittedState) {
  fsys_->create("/persist");
  fsys_->write("/persist", 0, bytes_of(20000, 9));
  fsys_->fsync();
  auto remounted = MiniFs::mount(stack_.backend());
  EXPECT_TRUE(remounted->exists("/persist"));
  std::vector<std::byte> got(20000);
  EXPECT_EQ(remounted->read("/persist", 0, got), 20000u);
  EXPECT_EQ(fingerprint(got), fingerprint(bytes_of(20000, 9)));
}

TEST_P(MiniFsOnBackend, UncommittedOpsInvisibleAfterRemount) {
  fsys_->create("/durable");
  fsys_->fsync();
  fsys_->create("/volatile");  // staged, never fsynced
  auto remounted = MiniFs::mount(stack_.backend());
  EXPECT_TRUE(remounted->exists("/durable"));
  EXPECT_FALSE(remounted->exists("/volatile"));
}

INSTANTIATE_TEST_SUITE_P(Backends, MiniFsOnBackend,
                         ::testing::Values(StackKind::kTinca,
                                           StackKind::kClassic,
                                           StackKind::kUbj,
                                           StackKind::kShardedTinca),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case StackKind::kTinca: return "Tinca";
                             case StackKind::kClassic: return "Classic";
                             case StackKind::kShardedTinca: return "ShardedTinca";
                             default: return "Ubj";
                           }
                         });

}  // namespace
}  // namespace tinca::fs
