// Tests for the workload generators: determinism, mix ratios, and sane
// interaction with both stacks.
#include <gtest/gtest.h>

#include <map>

#include "backend/stack_builder.h"
#include "fs/minifs.h"
#include "workloads/filebench.h"
#include "workloads/fio.h"
#include "workloads/teragen.h"
#include "workloads/tpcc.h"

namespace tinca::workloads {
namespace {

using backend::Stack;
using backend::StackConfig;
using backend::StackKind;

StackConfig small_stack(StackKind kind) {
  StackConfig cfg;
  cfg.kind = kind;
  cfg.nvm_bytes = 16 << 20;
  cfg.disk_blocks = 1 << 14;
  cfg.classic.journal_blocks = 1024;
  cfg.tinca.ring_bytes = 128 * 1024;
  return cfg;
}

TEST(Fio, RespectsWriteRatioRoughly) {
  Stack stack(small_stack(StackKind::kTinca));
  FioConfig cfg;
  cfg.dataset_blocks = 2048;
  cfg.write_pct = 70;
  const FioResult r =
      run_fio(stack.backend(), stack.clock(), 200 * sim::kMsec, cfg);
  const double frac = static_cast<double>(r.write_ops) /
                      static_cast<double>(r.write_ops + r.read_ops);
  EXPECT_NEAR(frac, 0.70, 0.05);
  EXPECT_GT(r.write_iops(), 0.0);
}

TEST(Fio, DeterministicForFixedSeed) {
  Stack a(small_stack(StackKind::kTinca));
  Stack b(small_stack(StackKind::kTinca));
  FioConfig cfg;
  cfg.dataset_blocks = 1024;
  const auto r1 = run_fio(a.backend(), a.clock(), 50 * sim::kMsec, cfg);
  const auto r2 = run_fio(b.backend(), b.clock(), 50 * sim::kMsec, cfg);
  EXPECT_EQ(r1.write_ops, r2.write_ops);
  EXPECT_EQ(r1.read_ops, r2.read_ops);
  EXPECT_EQ(a.clflush_count(), b.clflush_count());
}

TEST(Fio, TincaOutperformsClassicOnWrites) {
  Stack tinca(small_stack(StackKind::kTinca));
  Stack classic(small_stack(StackKind::kClassic));
  FioConfig cfg;
  cfg.dataset_blocks = 2048;
  cfg.write_pct = 70;
  const auto rt = run_fio(tinca.backend(), tinca.clock(), 200 * sim::kMsec, cfg);
  const auto rc =
      run_fio(classic.backend(), classic.clock(), 200 * sim::kMsec, cfg);
  EXPECT_GT(rt.write_iops(), 1.3 * rc.write_iops());
}

TEST(Fio, DatasetBoundsChecked) {
  Stack stack(small_stack(StackKind::kTinca));
  FioConfig cfg;
  cfg.dataset_blocks = stack.backend().data_block_limit() + 1;
  EXPECT_THROW(run_fio(stack.backend(), stack.clock(), sim::kMsec, cfg),
               ContractViolation);
}

TEST(Tpcc, MixMatchesConfiguredPercentages) {
  Stack stack(small_stack(StackKind::kTinca));
  TpccConfig cfg;
  cfg.dataset_blocks = 4096;
  TpccWorkload tpcc(stack.backend(), cfg);
  Rng rng(1);
  std::map<TpccKind, int> counts;
  for (int i = 0; i < 2000; ++i) ++counts[tpcc.execute_txn(rng)];
  EXPECT_NEAR(counts[TpccKind::kNewOrder], 900, 120);
  EXPECT_NEAR(counts[TpccKind::kPayment], 860, 120);
  EXPECT_GT(counts[TpccKind::kOrderStatus], 20);
  EXPECT_GT(counts[TpccKind::kDelivery], 20);
  EXPECT_GT(counts[TpccKind::kStockLevel], 20);
  EXPECT_EQ(tpcc.stats().txns, 2000u);
  EXPECT_GT(tpcc.stats().page_writes, 0u);
}

TEST(Tpcc, SkewFavoursHotPages) {
  Stack stack(small_stack(StackKind::kTinca));
  TpccConfig cfg;
  cfg.dataset_blocks = 8192;
  cfg.zipf_theta = 0.9;
  TpccWorkload tpcc(stack.backend(), cfg);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) tpcc.execute_txn(rng);
  // With strong skew the cache should be hitting frequently.
  auto& be = dynamic_cast<backend::TincaBackend&>(stack.backend());
  const auto& s = be.cache().stats();
  EXPECT_GT(s.write_hits, s.write_misses);
}

TEST(Filebench, PersonalitiesHaveDistinctMixes) {
  for (auto kind : {FilebenchKind::kFileserver, FilebenchKind::kWebproxy,
                    FilebenchKind::kVarmail}) {
    Stack stack(small_stack(StackKind::kTinca));
    auto fsys = fs::MiniFs::mkfs(stack.backend());
    FilebenchConfig cfg;
    cfg.kind = kind;
    cfg.nfiles = 64;
    cfg.mean_file_bytes = 16 * 1024;
    FilebenchWorkload wl(*fsys, cfg);
    wl.populate();
    const FilebenchResult r = wl.run(stack.clock(), 100 * sim::kMsec);
    ASSERT_GT(r.ops, 50u);
    const double read_frac =
        static_cast<double>(r.read_ops) /
        static_cast<double>(r.read_ops + r.write_ops);
    switch (kind) {
      case FilebenchKind::kWebproxy:
        EXPECT_GT(read_frac, 0.6) << "webproxy must be read-dominated";
        break;
      case FilebenchKind::kFileserver:
        EXPECT_LT(read_frac, 0.5) << "fileserver must be write-dominated";
        break;
      case FilebenchKind::kVarmail:
        EXPECT_NEAR(read_frac, 0.5, 0.15) << "varmail is balanced";
        break;
    }
    fsys->fsync();
    EXPECT_TRUE(fsys->fsck().ok);
  }
}

TEST(Filebench, SurvivesLongChurn) {
  Stack stack(small_stack(StackKind::kTinca));
  auto fsys = fs::MiniFs::mkfs(stack.backend());
  FilebenchConfig cfg;
  cfg.kind = FilebenchKind::kFileserver;
  cfg.nfiles = 32;
  cfg.mean_file_bytes = 8 * 1024;
  FilebenchWorkload wl(*fsys, cfg);
  wl.populate();
  for (int i = 0; i < 2000; ++i) wl.step();
  fsys->fsync();
  const auto report = fsys->fsck();
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

TEST(TeraGen, WritesRequestedVolume) {
  Stack stack(small_stack(StackKind::kTinca));
  TeraGenSink sink(stack.backend(), 0, 4096);
  sink.generate(1 << 20);
  EXPECT_GE(sink.bytes_written(), 1u << 20);
  EXPECT_EQ(sink.rows_written(), sink.bytes_written() / 100);
  EXPECT_GT(stack.clflush_count(), 0u);
}

TEST(TeraGen, WrapsWithinItsRange) {
  Stack stack(small_stack(StackKind::kTinca));
  TeraGenSink sink(stack.backend(), 100, 64);
  // 10x the range: must wrap without touching blocks outside [100, 164).
  sink.generate(64 * 4096 * 10);
  EXPECT_GE(sink.bytes_written(), 64u * 4096 * 10);
}

TEST(TeraGen, SequentialStreamIsCheapOnDiskSeeks) {
  StackConfig cfg = small_stack(StackKind::kTinca);
  cfg.disk_profile = "hdd";
  Stack stack(cfg);
  TeraGenSink sink(stack.backend(), 0, 8192);
  sink.generate(4 << 20);
  stack.backend().flush();
  const auto& ds = stack.disk().stats();
  // Sequential writeback: seeks should be rare relative to blocks written.
  EXPECT_LT(ds.seeks * 10, ds.blocks_written);
}

}  // namespace
}  // namespace tinca::workloads
