// Tests for the uniform TxnBackend surface and the stack builder: both
// backends must satisfy the same behavioural contract.
#include <gtest/gtest.h>

#include "backend/stack_builder.h"
#include "common/bytes.h"

namespace tinca::backend {
namespace {

StackConfig small_config(StackKind kind) {
  StackConfig cfg;
  cfg.kind = kind;
  cfg.nvm_bytes = 8 << 20;
  cfg.disk_blocks = 1 << 14;
  cfg.classic.journal_blocks = 512;
  cfg.tinca.ring_bytes = 64 * 1024;
  return cfg;
}

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(blockdev::kBlockSize);
  fill_pattern(b, seed);
  return b;
}

/// Contract tests parameterized over every backend kind.
class BackendContract : public ::testing::TestWithParam<StackKind> {};

TEST_P(BackendContract, CommitMakesDataReadable) {
  Stack stack(small_config(GetParam()));
  auto& be = stack.backend();
  be.begin();
  be.stage(10, block_of(1));
  be.stage(11, block_of(2));
  be.commit();
  std::vector<std::byte> got(blockdev::kBlockSize);
  be.read_block(10, got);
  EXPECT_EQ(got, block_of(1));
  be.read_block(11, got);
  EXPECT_EQ(got, block_of(2));
}

TEST_P(BackendContract, AbortLeavesNoTrace) {
  Stack stack(small_config(GetParam()));
  auto& be = stack.backend();
  be.begin();
  be.stage(5, block_of(9));
  be.abort();
  std::vector<std::byte> got(blockdev::kBlockSize);
  be.read_block(5, got);
  EXPECT_EQ(got, std::vector<std::byte>(blockdev::kBlockSize, std::byte{0}));
}

TEST_P(BackendContract, DoubleBeginRejected) {
  Stack stack(small_config(GetParam()));
  auto& be = stack.backend();
  be.begin();
  EXPECT_THROW(be.begin(), ContractViolation);
  be.abort();
}

TEST_P(BackendContract, StageWithoutBeginRejected) {
  Stack stack(small_config(GetParam()));
  EXPECT_THROW(stack.backend().stage(1, block_of(1)), ContractViolation);
  EXPECT_THROW(stack.backend().commit(), ContractViolation);
}

TEST_P(BackendContract, FlushPushesToDisk) {
  Stack stack(small_config(GetParam()));
  auto& be = stack.backend();
  be.begin();
  be.stage(20, block_of(7));
  be.commit();
  be.flush();
  EXPECT_GT(stack.disk_blocks_written(), 0u);
}

TEST_P(BackendContract, RewriteKeepsLatest) {
  Stack stack(small_config(GetParam()));
  auto& be = stack.backend();
  for (std::uint64_t v = 1; v <= 10; ++v) {
    be.begin();
    be.stage(3, block_of(v));
    be.commit();
  }
  std::vector<std::byte> got(blockdev::kBlockSize);
  be.read_block(3, got);
  EXPECT_EQ(got, block_of(10));
}

TEST_P(BackendContract, MaxTxnBlocksIsPositive) {
  Stack stack(small_config(GetParam()));
  EXPECT_GT(stack.backend().max_txn_blocks(), 16u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContract,
                         ::testing::Values(StackKind::kTinca,
                                           StackKind::kClassic,
                                           StackKind::kClassicNoJournal,
                                           StackKind::kUbj),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case StackKind::kTinca: return "Tinca";
                             case StackKind::kClassic: return "Classic";
                             case StackKind::kUbj: return "Ubj";
                             default: return "ClassicNoJournal";
                           }
                         });

TEST(StackBuilder, NamesIdentifyBackends) {
  EXPECT_EQ(Stack(small_config(StackKind::kTinca)).name(), "Tinca");
  EXPECT_EQ(Stack(small_config(StackKind::kClassic)).name(), "Classic");
  EXPECT_EQ(Stack(small_config(StackKind::kClassicNoJournal)).name(),
            "Classic-nojournal");
}

TEST(StackBuilder, ProfilesAreApplied) {
  StackConfig cfg = small_config(StackKind::kTinca);
  cfg.nvm_profile = "sttram";
  cfg.disk_profile = "hdd";
  Stack stack(cfg);
  EXPECT_EQ(stack.nvm().profile().name, "STT-RAM");
}

TEST(StackBuilder, TincaWritesCostFewerFlushesThanClassic) {
  // The paper's core claim at the unit scale (Fig 7(b) mechanism).
  Stack tinca(small_config(StackKind::kTinca));
  Stack classic(small_config(StackKind::kClassic));
  for (auto* stack : {&tinca, &classic}) {
    auto& be = stack->backend();
    for (std::uint64_t i = 0; i < 64; ++i) {
      be.begin();
      be.stage(i, block_of(i));
      be.commit();
    }
    be.flush();
  }
  EXPECT_LT(tinca.clflush_count() * 2, classic.clflush_count())
      << "Tinca should need less than half of Classic's flushes";
  EXPECT_LT(tinca.disk_blocks_written(), classic.disk_blocks_written());
}

}  // namespace
}  // namespace tinca::backend
