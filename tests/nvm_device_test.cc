// Unit tests for the NVM emulation: persistence semantics, crash behaviour,
// latency accounting, atomics, and the crash injector.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "common/bytes.h"
#include "common/expect.h"
#include "nvm/nvm_device.h"

namespace tinca::nvm {
namespace {

constexpr std::size_t kDev = 64 * 1024;

struct Fixture {
  sim::SimClock clock;
  NvmDevice dev{kDev, pcm_profile(), clock};
  Rng rng{99};
};

std::vector<std::byte> bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(NvmDevice, StoreThenLoadSeesData) {
  Fixture f;
  const auto data = bytes({1, 2, 3, 4});
  f.dev.store(100, data);
  std::vector<std::byte> got(4);
  f.dev.load(100, got);
  EXPECT_EQ(got, data);
}

TEST(NvmDevice, UnflushedStoreIsLostOnCrash) {
  Fixture f;
  f.dev.store(0, bytes({0xAA}));
  f.dev.crash_discard_all();
  std::vector<std::byte> got(1);
  f.dev.load(0, got);
  EXPECT_EQ(got[0], std::byte{0});
}

TEST(NvmDevice, FlushedStoreSurvivesCrash) {
  Fixture f;
  f.dev.store(0, bytes({0xAB}));
  f.dev.persist(0, 1);
  f.dev.crash_discard_all();
  std::vector<std::byte> got(1);
  f.dev.load(0, got);
  EXPECT_EQ(got[0], std::byte{0xAB});
}

TEST(NvmDevice, CrashDropsWholeLinesNotBytes) {
  Fixture f;
  // Two stores to the same line, one crash: both survive or neither.
  f.dev.store(0, bytes({0x11}));
  f.dev.store(32, bytes({0x22}));
  f.dev.crash(f.rng, 0.5);
  std::vector<std::byte> a(1), b(1);
  f.dev.load(0, a);
  f.dev.load(32, b);
  EXPECT_EQ(a[0] == std::byte{0x11}, b[0] == std::byte{0x22});
}

TEST(NvmDevice, CrashWithFullSurvivalKeepsEverything) {
  Fixture f;
  f.dev.store(128, bytes({5, 6, 7}));
  f.dev.crash(f.rng, 1.0);
  std::vector<std::byte> got(3);
  f.dev.load(128, got);
  EXPECT_EQ(got, bytes({5, 6, 7}));
}

TEST(NvmDevice, DirtyLineAccountingIsExact) {
  Fixture f;
  EXPECT_EQ(f.dev.dirty_lines(), 0u);
  f.dev.store(0, std::vector<std::byte>(64));      // one line
  f.dev.store(100, std::vector<std::byte>(64));    // spans lines 1..2
  EXPECT_EQ(f.dev.dirty_lines(), 3u);
  f.dev.clflush(0, 64);
  EXPECT_EQ(f.dev.dirty_lines(), 2u);
  f.dev.persist(64, 128);
  EXPECT_EQ(f.dev.dirty_lines(), 0u);
}

TEST(NvmDevice, ClflushCountsPerLine) {
  Fixture f;
  f.dev.store(0, std::vector<std::byte>(4096));
  const auto before = f.dev.stats().clflush;
  f.dev.clflush(0, 4096);
  EXPECT_EQ(f.dev.stats().clflush - before, 64u);
}

TEST(NvmDevice, PcmFlushCostsMoreThanNvdimm) {
  sim::SimClock c1, c2;
  NvmDevice pcm(kDev, pcm_profile(), c1);
  NvmDevice nvdimm(kDev, nvdimm_profile(), c2);
  std::vector<std::byte> data(4096);
  pcm.store(0, data);
  pcm.persist(0, 4096);
  nvdimm.store(0, data);
  nvdimm.persist(0, 4096);
  EXPECT_GT(c1.now(), c2.now());
  // The delta should be ~64 lines * 180 ns.
  EXPECT_NEAR(static_cast<double>(c1.now() - c2.now()), 64.0 * 180.0, 1.0);
}

TEST(NvmDevice, FlushOfCleanLineCostsOnlyInstruction) {
  Fixture f;
  f.dev.store(0, bytes({1}));
  f.dev.clflush(0, 1);
  const sim::Ns before = f.clock.now();
  f.dev.clflush(0, 1);  // clean now
  EXPECT_EQ(f.clock.now() - before, pcm_profile().clflush_ns);
}

TEST(NvmDevice, Atomic8RequiresAlignment) {
  Fixture f;
  EXPECT_THROW(f.dev.atomic_store8(3, 1), ContractViolation);
  f.dev.atomic_store8(8, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(f.dev.load8(8), 0xDEADBEEFCAFEF00DULL);
}

TEST(NvmDevice, Atomic16RequiresAlignment) {
  Fixture f;
  std::array<std::byte, 16> v{};
  v[0] = std::byte{0x42};
  EXPECT_THROW(f.dev.atomic_store16(8, v), ContractViolation);
  f.dev.atomic_store16(16, v);
  std::vector<std::byte> got(16);
  f.dev.load(16, got);
  EXPECT_EQ(got[0], std::byte{0x42});
}

TEST(NvmDevice, Atomic16NeverTearsAcrossCrash) {
  // A 16 B aligned value lives in one line: after any crash it is either
  // the old or the new value, never a mix.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    sim::SimClock clock;
    NvmDevice dev(kDev, pcm_profile(), clock);
    Rng rng(seed);
    std::array<std::byte, 16> oldv{}, newv{};
    oldv.fill(std::byte{0xAA});
    newv.fill(std::byte{0xBB});
    dev.atomic_store16(0, oldv);
    dev.persist(0, 16);
    dev.atomic_store16(0, newv);  // not flushed
    dev.crash(rng, 0.5);
    std::vector<std::byte> got(16);
    dev.load(0, got);
    const bool all_old =
        std::all_of(got.begin(), got.end(), [](auto b) { return b == std::byte{0xAA}; });
    const bool all_new =
        std::all_of(got.begin(), got.end(), [](auto b) { return b == std::byte{0xBB}; });
    EXPECT_TRUE(all_old || all_new) << "torn 16 B write, seed " << seed;
  }
}

TEST(NvmDevice, StatsTrackOperations) {
  Fixture f;
  f.dev.store(0, std::vector<std::byte>(128));
  f.dev.sfence();
  f.dev.atomic_store8(0, 1);
  const auto& s = f.dev.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.bytes_stored, 136u);
  EXPECT_EQ(s.sfence, 1u);
  EXPECT_EQ(s.atomic8, 1u);
}

TEST(NvmDevice, StatsDeltaOperator) {
  Fixture f;
  f.dev.store(0, std::vector<std::byte>(64));
  const NvmStats snap = f.dev.stats();
  f.dev.persist(0, 64);
  const NvmStats d = f.dev.stats() - snap;
  EXPECT_EQ(d.clflush, 1u);
  EXPECT_EQ(d.sfence, 1u);
  EXPECT_EQ(d.stores, 0u);
}

TEST(NvmDevice, OutOfRangeAccessesThrow) {
  Fixture f;
  std::vector<std::byte> buf(16);
  EXPECT_THROW(f.dev.store(kDev - 8, buf), ContractViolation);
  EXPECT_THROW(f.dev.load(kDev, buf), ContractViolation);
  EXPECT_THROW(f.dev.clflush(kDev - 1, 2), ContractViolation);
}

TEST(NvmDevice, WearCountsMediaWritesOnly) {
  Fixture f;
  f.dev.store(0, bytes({1}));
  EXPECT_EQ(f.dev.wear().total_line_writes, 0u) << "stores alone do not wear";
  f.dev.persist(0, 1);
  EXPECT_EQ(f.dev.wear().total_line_writes, 1u);
  f.dev.clflush(0, 1);  // clean line: no media write
  EXPECT_EQ(f.dev.wear().total_line_writes, 1u);
}

TEST(NvmDevice, WearTracksHotLines) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    f.dev.atomic_store8(0, static_cast<std::uint64_t>(i));
    f.dev.persist(0, 8);
  }
  f.dev.store(4096, bytes({1}));
  f.dev.persist(4096, 1);
  const auto w = f.dev.wear();
  EXPECT_EQ(w.max_line_writes, 10u);
  EXPECT_EQ(w.total_line_writes, 11u);
  EXPECT_EQ(w.lines_touched, 2u);
  EXPECT_GT(w.mean_line_writes, 0.0);
}

TEST(NvmDevice, SurvivingCrashLinesCountAsWear) {
  Fixture f;
  f.dev.store(0, bytes({1}));
  f.dev.crash(f.rng, 1.0);  // line reached the media during power loss
  EXPECT_EQ(f.dev.wear().total_line_writes, 1u);
}

TEST(CrashInjector, FiresAtArmedStep) {
  CrashInjector inj;
  inj.point();  // disarmed: counts only
  EXPECT_EQ(inj.steps_seen(), 1u);
  inj.arm(3);
  inj.point();
  inj.point();
  EXPECT_THROW(inj.point(), CrashException);
}

TEST(CrashInjector, DisarmStopsFiring) {
  CrashInjector inj;
  inj.arm(1);
  inj.disarm();
  EXPECT_NO_THROW(inj.point());
}

TEST(CrashInjector, TornCounterIsIndependentOfPointCounter) {
  CrashInjector inj;
  inj.arm_torn(2);
  // Ordinary points never advance (or trip) the torn counter, so arming a
  // torn step cannot perturb an existing point() sweep's numbering.
  EXPECT_NO_THROW(inj.point());
  EXPECT_NO_THROW(inj.point());
  EXPECT_EQ(inj.torn_steps_seen(), 0u);
  EXPECT_FALSE(inj.point_torn());  // torn step 1
  EXPECT_TRUE(inj.point_torn());   // torn step 2 fires
  EXPECT_EQ(inj.torn_steps_seen(), 2u);
  EXPECT_EQ(inj.steps_seen(), 2u);  // point() count untouched by torn calls
  inj.disarm_torn();
  EXPECT_FALSE(inj.torn_armed());
  EXPECT_FALSE(inj.point_torn());
}

TEST(NvmDevice, TornStoreAppliesPrefixThenCrashes) {
  Fixture f;
  std::vector<std::byte> old_data(128);
  fill_pattern(old_data, 1);
  f.dev.store(0, old_data);
  f.dev.clflush(0, old_data.size());
  f.dev.sfence();

  std::vector<std::byte> new_data(128);
  fill_pattern(new_data, 2);
  f.dev.injector.arm_torn(1);
  EXPECT_THROW(f.dev.store(0, new_data), CrashException);
  f.dev.injector.disarm_torn();

  // Every torn-prefix line survives the power cut: the first half of the
  // store is new, the second half still old — a torn write, not a lost one.
  f.dev.crash(f.rng, 1.0);
  std::vector<std::byte> got(128);
  f.dev.load(0, got);
  EXPECT_TRUE(std::equal(got.begin(), got.begin() + 64, new_data.begin()));
  EXPECT_TRUE(std::equal(got.begin() + 64, got.end(), old_data.begin() + 64));
}

TEST(NvmDevice, TornStorePrefixStillFacesLineSurvivalLottery) {
  Fixture f;
  std::vector<std::byte> old_data(128);
  fill_pattern(old_data, 1);
  f.dev.store(0, old_data);
  f.dev.clflush(0, old_data.size());
  f.dev.sfence();

  std::vector<std::byte> new_data(128);
  fill_pattern(new_data, 2);
  f.dev.injector.arm_torn(1);
  EXPECT_THROW(f.dev.store(0, new_data), CrashException);
  f.dev.injector.disarm_torn();

  // The torn prefix was only in the CPU cache; with zero survival it is
  // dropped wholesale and the flushed old contents are intact.
  f.dev.crash(f.rng, 0.0);
  std::vector<std::byte> got(128);
  f.dev.load(0, got);
  EXPECT_EQ(got, old_data);
}

}  // namespace
}  // namespace tinca::nvm
