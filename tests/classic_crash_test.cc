// Crash-consistency sweep for the Classic stack (Ext4+JBD2 over Flashcache).
//
// The paper's comparison holds "identical data consistency" on both sides
// (§5.1), so the baseline deserves the same adversarial treatment as Tinca:
// a power failure is armed at every flashcache-level crash point of a
// multi-transaction history; after recovery (metadata scan + journal
// replay), every transaction must be all-or-nothing.
#include <gtest/gtest.h>

#include <map>

#include "blockdev/mem_block_device.h"
#include "classic/classic_stack.h"
#include "common/bytes.h"

namespace tinca::classic {
namespace {

constexpr std::size_t kNvmBytes = 4 << 20;
constexpr std::uint64_t kDiskBlocks = 1 << 14;

ClassicConfig config() {
  ClassicConfig cfg;
  cfg.journal_blocks = 256;
  return cfg;
}

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(blockdev::kBlockSize);
  fill_pattern(b, seed);
  return b;
}

using Expected = std::map<std::uint64_t, std::uint64_t>;

std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> history() {
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> h;
  std::uint64_t seed = 1;
  for (int t = 0; t < 4; ++t) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> txn;
    for (int b = 0; b < 4; ++b) {
      const std::uint64_t blkno =
          (b % 2 == 0) ? static_cast<std::uint64_t>(t * 4 + b)
                       : static_cast<std::uint64_t>(b);
      txn.emplace_back(blkno, seed++);
    }
    h.push_back(std::move(txn));
  }
  return h;
}

struct RunResult {
  Expected committed;
  std::size_t committed_txns = 0;
  std::uint64_t steps = 0;
  bool crashed = false;
};

RunResult run(nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
              std::uint64_t crash_step) {
  auto stack = ClassicStack::format(dev, disk, config());
  dev.injector.disarm();
  if (crash_step) dev.injector.arm(crash_step);
  RunResult result;
  try {
    for (const auto& txn_spec : history()) {
      auto txn = stack->begin_txn();
      for (const auto& [blkno, seed] : txn_spec) txn.add(blkno, block_of(seed));
      stack->commit(txn);
      for (const auto& [blkno, seed] : txn_spec) result.committed[blkno] = seed;
      ++result.committed_txns;
    }
  } catch (const nvm::CrashException&) {
    result.crashed = true;
  }
  result.steps = dev.injector.steps_seen();
  dev.injector.disarm();
  return result;
}

class ClassicCrashSweep : public ::testing::TestWithParam<double> {};

TEST_P(ClassicCrashSweep, EveryStepRecoversAllOrNothing) {
  std::uint64_t total_steps = 0;
  {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    const RunResult full = run(dev, disk, 0);
    ASSERT_FALSE(full.crashed);
    total_steps = full.steps;
  }
  ASSERT_GT(total_steps, 40u);

  const auto hist = history();
  Expected universe;
  for (const auto& txn : hist)
    for (const auto& [blkno, seed] : txn) universe[blkno] = seed;

  const double survive = GetParam();
  Rng rng(static_cast<std::uint64_t>(survive * 100) + 3);

  for (std::uint64_t step = 1; step <= total_steps; ++step) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    const RunResult r = run(dev, disk, step);
    ASSERT_TRUE(r.crashed) << "step " << step;
    dev.crash(rng, survive);

    auto recovered = ClassicStack::recover(dev, disk, config());

    // Acceptable states: exactly the returned commits, or those plus the
    // in-flight transaction (crash after its commit block persisted but
    // before the call returned).
    std::vector<Expected> acceptable{r.committed};
    if (r.committed_txns < hist.size()) {
      Expected with_next = r.committed;
      for (const auto& [blkno, seed] : hist[r.committed_txns])
        with_next[blkno] = seed;
      acceptable.push_back(with_next);
    }

    std::vector<std::byte> buf(blockdev::kBlockSize);
    bool ok = false;
    for (const Expected& exp : acceptable) {
      bool match = true;
      for (const auto& [blkno, _] : universe) {
        recovered->read_block(blkno, buf);
        auto it = exp.find(blkno);
        const std::uint64_t want =
            it != exp.end()
                ? fingerprint(block_of(it->second))
                : fingerprint(std::vector<std::byte>(blockdev::kBlockSize,
                                                     std::byte{0}));
        if (fingerprint(buf) != want) {
          match = false;
          break;
        }
      }
      if (match) {
        ok = true;
        break;
      }
    }
    ASSERT_TRUE(ok) << "Classic recovery inconsistent at step " << step
                    << " (survive=" << survive << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(SurvivalPatterns, ClassicCrashSweep,
                         ::testing::Values(0.0, 0.5, 1.0));

TEST(ClassicCrash, CheckpointedDataSurvivesJournalLoss) {
  // After checkpoint_all, even total loss of the journal area's unflushed
  // state cannot hurt: the home locations hold everything.
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  {
    auto stack = ClassicStack::format(dev, disk, config());
    auto txn = stack->begin_txn();
    txn.add(42, block_of(7));
    stack->commit(txn);
    stack->journal()->checkpoint_all();
  }
  dev.crash_discard_all();
  auto recovered = ClassicStack::recover(dev, disk, config());
  std::vector<std::byte> got(blockdev::kBlockSize);
  recovered->read_block(42, got);
  EXPECT_EQ(got, block_of(7));
}

}  // namespace
}  // namespace tinca::classic
