// Tests for the persistent ring buffer and its Head/Tail protocol (§4.4).
#include <gtest/gtest.h>

#include "nvm/nvm_device.h"
#include "tinca/layout.h"
#include "tinca/ring_buffer.h"

namespace tinca::core {
namespace {

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{1 << 20, nvdimm_profile(), clock};
  Layout layout = Layout::compute(1 << 20, 4096);
  RingBuffer ring{dev, layout};
  Fixture() { ring.format(); }
};

TEST(Layout, ComputePartitionsDevice) {
  const Layout l = Layout::compute(8 << 20, 1 << 20);
  EXPECT_EQ(l.ring_off, Layout::kSuperblockBytes);
  EXPECT_EQ(l.ring_capacity, (1u << 20) / 8);
  EXPECT_GT(l.num_blocks, 0u);
  EXPECT_LE(l.data_off + l.num_blocks * kBlockSize, 8u << 20);
  // Entry table is 16 B per block, 4 KB aligned.
  EXPECT_EQ(l.data_off % kBlockSize, 0u);
  EXPECT_EQ(l.entry_off(0) % 16, 0u);
}

TEST(Layout, EntryAndDataOffsetsDisjoint) {
  const Layout l = Layout::compute(4 << 20, 4096);
  EXPECT_GE(l.data_block_off(0), l.entry_off(l.num_blocks - 1) + 16);
  EXPECT_THROW((void)l.entry_off(l.num_blocks), ContractViolation);
  EXPECT_THROW((void)l.data_block_off(l.num_blocks), ContractViolation);
}

TEST(Layout, TooSmallDeviceRejected) {
  EXPECT_THROW(Layout::compute(8192, 4096), ContractViolation);
  EXPECT_THROW(Layout::compute((1 << 20) + 1, 4096), ContractViolation);
}

TEST(Layout, RingSlotWrapsModuloCapacity) {
  const Layout l = Layout::compute(1 << 20, 4096);
  EXPECT_EQ(l.ring_slot_off(0), l.ring_slot_off(l.ring_capacity));
  EXPECT_EQ(l.ring_slot_off(1), l.ring_slot_off(l.ring_capacity + 1));
}

TEST(RingBuffer, FormatZeroesPointers) {
  Fixture f;
  EXPECT_EQ(f.ring.head(), 0u);
  EXPECT_EQ(f.ring.tail(), 0u);
  EXPECT_EQ(f.ring.in_flight(), 0u);
}

TEST(RingBuffer, RecordAdvancePublishCycle) {
  Fixture f;
  f.ring.record(101);
  f.ring.advance_head();
  f.ring.record(202);
  f.ring.advance_head();
  EXPECT_EQ(f.ring.in_flight(), 2u);
  EXPECT_EQ(f.ring.slot(0), 101u);
  EXPECT_EQ(f.ring.slot(1), 202u);
  f.ring.publish_tail();
  EXPECT_EQ(f.ring.in_flight(), 0u);
  EXPECT_EQ(f.ring.head(), 2u);
}

TEST(RingBuffer, PointersSurviveReload) {
  Fixture f;
  f.ring.record(7);
  f.ring.advance_head();
  f.ring.publish_tail();
  RingBuffer other(f.dev, f.layout);
  other.load();
  EXPECT_EQ(other.head(), 1u);
  EXPECT_EQ(other.tail(), 1u);
}

TEST(RingBuffer, UnflushedStateRevertsOnCrash) {
  Fixture f;
  f.ring.record(7);
  f.ring.advance_head();  // persisted
  // publish_tail persists too, so simulate a crash before it:
  f.dev.crash_discard_all();
  RingBuffer other(f.dev, f.layout);
  other.load();
  EXPECT_EQ(other.head(), 1u);
  EXPECT_EQ(other.tail(), 0u);
  EXPECT_EQ(other.slot(0), 7u);
}

TEST(RingBuffer, ResetHeadToTailAborts) {
  Fixture f;
  f.ring.record(9);
  f.ring.advance_head();
  f.ring.reset_head_to_tail();
  EXPECT_EQ(f.ring.head(), 0u);
  EXPECT_EQ(f.ring.in_flight(), 0u);
}

TEST(RingBuffer, WrapsAroundCapacity) {
  Fixture f;
  const std::uint64_t cap = f.ring.capacity();
  // Fill and publish several times past one full wrap.
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < cap / 2; ++i) {
      f.ring.record(round * 1'000'000 + i);
      f.ring.advance_head();
    }
    f.ring.publish_tail();
  }
  EXPECT_EQ(f.ring.head(), 3 * (cap / 2));
  EXPECT_EQ(f.ring.in_flight(), 0u);
}

TEST(RingBuffer, OverfillRejected) {
  Fixture f;
  const std::uint64_t cap = f.ring.capacity();
  for (std::uint64_t i = 0; i < cap; ++i) {
    f.ring.record(i);
    f.ring.advance_head();
  }
  EXPECT_THROW(f.ring.record(999), ContractViolation);
}

TEST(RingBuffer, CorruptPointersRejectedOnLoad) {
  Fixture f;
  // Head behind tail is impossible in a healthy cache.
  f.dev.atomic_store8(Layout::kHeadOff, 1);
  f.dev.atomic_store8(Layout::kTailOff, 5);
  f.dev.persist(Layout::kHeadOff, 8);
  f.dev.persist(Layout::kTailOff, 8);
  RingBuffer other(f.dev, f.layout);
  EXPECT_THROW(other.load(), ContractViolation);
}

}  // namespace
}  // namespace tinca::core
