// Tests for the persistent ring of self-validating records (§4.4 reworked
// for group commit, DESIGN.md §14): staged records, checksum validation
// against index/lap/epoch, the lazily-persisted commit hint, and backpressure.
#include <gtest/gtest.h>

#include <map>

#include "blockdev/faulty_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "nvm/nvm_device.h"
#include "tinca/layout.h"
#include "tinca/ring_buffer.h"
#include "tinca/tinca_cache.h"
#include "tinca/verify.h"

namespace tinca::core {
namespace {

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{1 << 20, nvdimm_profile(), clock};
  Layout layout = Layout::compute(1 << 20, 4096);
  RingBuffer ring{dev, layout};
  std::uint64_t epoch = 1;

  Fixture() {
    // The cache owns the epoch field; stand in for it here.
    dev.atomic_store8(Layout::kFormatEpochOff, epoch);
    dev.persist(Layout::kFormatEpochOff, 8);
    ring.format();
  }

  // A batch flush pass: flush the staged ranges and fence, like
  // TincaCache::commit_group stage C.
  void flush(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& rs) {
    for (const auto& [off, len] : rs) dev.clflush(off, len);
    dev.sfence();
    ring.note_staged_hint_durable();
  }
};

TEST(Layout, ComputePartitionsDevice) {
  const Layout l = Layout::compute(8 << 20, 1 << 20);
  EXPECT_EQ(l.ring_off, Layout::kSuperblockBytes);
  EXPECT_EQ(l.ring_capacity, (1u << 20) / Layout::kRingSlotBytes);
  EXPECT_GT(l.num_blocks, 0u);
  EXPECT_LE(l.data_off + l.num_blocks * kBlockSize, 8u << 20);
  // Entry table is 16 B per block, 4 KB aligned.
  EXPECT_EQ(l.data_off % kBlockSize, 0u);
  EXPECT_EQ(l.entry_off(0) % 16, 0u);
}

TEST(Layout, EntryAndDataOffsetsDisjoint) {
  const Layout l = Layout::compute(4 << 20, 4096);
  EXPECT_GE(l.data_block_off(0), l.entry_off(l.num_blocks - 1) + 16);
  EXPECT_THROW((void)l.entry_off(l.num_blocks), ContractViolation);
  EXPECT_THROW((void)l.data_block_off(l.num_blocks), ContractViolation);
}

TEST(Layout, TooSmallDeviceRejected) {
  EXPECT_THROW(Layout::compute(8192, 4096), ContractViolation);
  EXPECT_THROW(Layout::compute((1 << 20) + 1, 4096), ContractViolation);
}

TEST(Layout, RingSlotWrapsModuloCapacity) {
  const Layout l = Layout::compute(1 << 20, 4096);
  EXPECT_EQ(l.ring_slot_off(0), l.ring_slot_off(l.ring_capacity));
  EXPECT_EQ(l.ring_slot_off(1), l.ring_slot_off(l.ring_capacity + 1));
}

TEST(RingBuffer, FormatZeroesIndices) {
  Fixture f;
  EXPECT_EQ(f.ring.head(), 0u);
  EXPECT_EQ(f.ring.tail(), 0u);
  EXPECT_EQ(f.ring.in_flight(), 0u);
  EXPECT_EQ(f.ring.durable_hint(), 0u);
}

TEST(RingBuffer, StageSealScanRoundTrip) {
  Fixture f;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rs;
  rs.push_back(f.ring.stage_block(101, 7, 0xABCDu));
  rs.push_back(f.ring.stage_block(202, 9, 0x1234u));
  EXPECT_EQ(f.ring.in_flight(), 2u);
  rs.push_back(
      f.ring.stage_commit(/*batch_start=*/0, /*txn_count=*/2, /*tag=*/1));
  f.flush(rs);
  f.ring.publish(0);
  EXPECT_EQ(f.ring.in_flight(), 0u);
  EXPECT_EQ(f.ring.head(), 3u);

  const auto b0 = f.ring.scan(0, f.epoch);
  ASSERT_TRUE(b0.has_value());
  EXPECT_EQ(b0->kind, RingRecord::Kind::kBlock);
  EXPECT_EQ(b0->disk_blkno, 101u);
  EXPECT_EQ(b0->curr_nvm, 7u);
  EXPECT_EQ(b0->payload_fp, 0xABCDu);
  const auto b1 = f.ring.scan(1, f.epoch);
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->disk_blkno, 202u);
  const auto c = f.ring.scan(2, f.epoch);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->kind, RingRecord::Kind::kCommit);
  EXPECT_EQ(c->txn_count, 2u);
  EXPECT_EQ(c->batch_start(), 0u);
  // Nothing was ever staged at index 3.
  EXPECT_FALSE(f.ring.scan(3, f.epoch).has_value());
}

TEST(RingBuffer, StagedRecordsDieWithACrash) {
  Fixture f;
  f.ring.stage_block(7, 1, 0x1u);
  f.ring.stage_commit(0, 1, 1);
  f.dev.crash_discard_all();  // nothing was flushed
  RingBuffer other(f.dev, f.layout);
  other.load();
  EXPECT_EQ(other.durable_hint(), 0u);
  EXPECT_FALSE(other.scan(0, f.epoch).has_value());
  EXPECT_FALSE(other.scan(1, f.epoch).has_value());
}

TEST(RingBuffer, FencedRecordsSurviveACrash) {
  Fixture f;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rs;
  rs.push_back(f.ring.stage_block(7, 1, 0x1u));
  rs.push_back(f.ring.stage_commit(0, 1, 1));
  f.flush(rs);
  f.dev.crash_discard_all();
  RingBuffer other(f.dev, f.layout);
  other.load();
  // The hint was never published, so recovery scans from 0 and finds the
  // whole fenced batch.
  EXPECT_EQ(other.durable_hint(), 0u);
  ASSERT_TRUE(other.scan(0, f.epoch).has_value());
  ASSERT_TRUE(other.scan(1, f.epoch).has_value());
  EXPECT_EQ(other.scan(1, f.epoch)->kind, RingRecord::Kind::kCommit);
}

TEST(RingBuffer, HintStagedAtPublishSweptByNextFlush) {
  Fixture f;
  // Three batches of (1 block + 1 commit) records.  Each publish stages the
  // hint; each successor's flush pass sweeps the predecessor's hint out.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rs;
  std::pair<std::uint64_t, std::uint64_t> hint_range{};
  for (std::uint64_t b = 0; b < 3; ++b) {
    const std::uint64_t start = 2 * b;
    if (b > 0) rs.push_back(hint_range);  // sweep the previous publish
    rs.push_back(f.ring.stage_block(7 + b, 1 + b, 0x1u + b));
    rs.push_back(f.ring.stage_commit(start, 1, b + 1));
    f.flush(rs);
    rs.clear();
    hint_range = f.ring.publish(start);
    EXPECT_EQ(hint_range.first, Layout::kCommitHintOff);
  }
  // Batch 3's publish (hint := 4) is staged but unfenced; the last FENCED
  // hint value is batch 2's start (2), swept out by batch 3's flush pass.
  EXPECT_EQ(f.ring.durable_hint(), 2u);

  f.dev.crash_discard_all();
  RingBuffer other(f.dev, f.layout);
  other.load();
  EXPECT_EQ(other.durable_hint(), 2u);
  // Both fenced batches above the hint are scannable (batch 2 at 2..3,
  // batch 3 at 4..5).
  for (std::uint64_t idx = 2; idx < 6; ++idx)
    ASSERT_TRUE(other.scan(idx, f.epoch).has_value()) << idx;
  EXPECT_FALSE(other.scan(6, f.epoch).has_value());
}

TEST(RingBuffer, PersistHintAdvancesDurably) {
  Fixture f;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rs;
  rs.push_back(f.ring.stage_block(7, 1, 0x1u));
  rs.push_back(f.ring.stage_commit(0, 1, 1));
  f.flush(rs);
  f.ring.publish(0);
  f.ring.persist_hint();  // hint := tail = 2
  EXPECT_EQ(f.ring.durable_hint(), 2u);
  f.dev.crash_discard_all();
  RingBuffer other(f.dev, f.layout);
  other.load();
  EXPECT_EQ(other.durable_hint(), 2u);
  EXPECT_EQ(other.head(), 2u);
}

TEST(RingBuffer, StaleLapRecordsDoNotValidate) {
  Fixture f;
  const std::uint64_t cap = f.ring.capacity();
  // Fill exactly one lap with fenced batches of 1 block + 1 commit record.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rs;
  for (std::uint64_t i = 0; i < cap / 2; ++i) {
    rs.push_back(f.ring.stage_block(i, 1, i));
    rs.push_back(f.ring.stage_commit(2 * i, 1, i + 1));
    f.flush(rs);
    rs.clear();
    rs.push_back(f.ring.publish(2 * i));
    f.ring.persist_hint();  // keep has_room() true forever
    rs.clear();
  }
  EXPECT_EQ(f.ring.head(), cap);
  // Index cap lands on slot 0, which holds the (fenced) record staged for
  // index 0 — the checksum's index mixing must reject it.
  EXPECT_FALSE(f.ring.scan(cap, f.epoch).has_value());
  // And an old record does not validate under a bumped format epoch.
  EXPECT_FALSE(f.ring.scan(0, f.epoch + 1).has_value());
  EXPECT_TRUE(f.ring.scan(0, f.epoch).has_value());
}

TEST(RingBuffer, HasRoomTracksDurableHint) {
  Fixture f;
  const std::uint64_t cap = f.ring.capacity();
  EXPECT_TRUE(f.ring.has_room(cap));
  EXPECT_FALSE(f.ring.has_room(cap + 1));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rs;
  for (std::uint64_t i = 0; i < cap - 1; ++i)
    rs.push_back(f.ring.stage_block(i, 1, i));
  rs.push_back(f.ring.stage_commit(0, 1, 1));
  f.flush(rs);
  f.ring.publish(0);
  // The hint still sits at 0: the full lap is the scan window.
  EXPECT_FALSE(f.ring.has_room(1));
  EXPECT_THROW(f.ring.stage_block(99, 1, 0x9u), ContractViolation);
  // Syncing the hint empties the window.
  f.ring.persist_hint();
  EXPECT_TRUE(f.ring.has_room(cap));
}

TEST(RingBuffer, ResetHeadToTailDropsStagedRun) {
  Fixture f;
  f.ring.stage_block(9, 1, 0x1u);
  f.ring.reset_head_to_tail();
  EXPECT_EQ(f.ring.head(), 0u);
  EXPECT_EQ(f.ring.in_flight(), 0u);
}

// Integration: the monotonic record indices wrap their slot capacity many
// times while the backing disk throws transient errors into the write-back
// stream.  The ring protocol must stay consistent, committed data must stay
// readable, and a remount after the wraps must still verify and serve
// everything.
TEST(RingBuffer, WrapAroundSurvivesDiskErrorsMidAppendStream) {
  constexpr std::size_t kNvm = 1 << 20;
  constexpr std::uint64_t kRing = 4096;  // 128 slots — wraps fast
  sim::SimClock clock;
  nvm::NvmDevice nvm(kNvm, nvdimm_profile(), clock);
  blockdev::MemBlockDevice mem(1 << 12);
  blockdev::FaultyBlockDevice disk(mem, {}, &clock, &nvm.injector);

  TincaConfig cfg;
  cfg.ring_bytes = kRing;
  cfg.clean_thresh_pct = 50;  // cleaning keeps write-backs in the commit loop
  auto cache = TincaCache::format(nvm, disk, cfg);

  // 150 transactions × 4 blocks = 750 ring records > 128 slots: many wraps.
  constexpr std::uint64_t kTxns = 150;
  constexpr std::uint64_t kUniverse = 300;  // > capacity → steady eviction
  std::map<std::uint64_t, std::uint64_t> expected;
  std::vector<std::byte> buf(kBlockSize);
  for (std::uint64_t t = 0; t < kTxns; ++t) {
    if (t % 3 == 0) disk.fail_next_writes(1);  // mid-stream transient error
    Transaction txn = cache->tinca_init_txn();
    for (std::uint64_t i = 0; i < 4; ++i) {
      const std::uint64_t blkno = (t * 37 + i * 11) % kUniverse;
      const std::uint64_t seed = t * 8 + i + 1;
      fill_pattern(buf, seed);
      txn.add(blkno, buf);
      expected[blkno] = seed;
    }
    cache->tinca_commit(txn);
  }
  EXPECT_GT(cache->stats().io_retries, 0u);  // the transients really hit

  // The monotonic indices wrapped the slot capacity; the durable hint (the
  // reload point) tracked them upward.
  const Layout layout = Layout::compute(kNvm, kRing);
  RingBuffer ring(nvm, layout);
  ring.load();
  EXPECT_GT(ring.head(), ring.capacity());
  EXPECT_EQ(ring.in_flight(), 0u);

  const MediaReport before = verify_media(nvm, layout);
  EXPECT_TRUE(before.ok) << (before.problems.empty() ? ""
                                                     : before.problems[0]);

  // Remount: every committed block must still be intact after the wraps.
  cache.reset();
  cache = TincaCache::recover(nvm, disk, cfg);
  for (const auto& [blkno, seed] : expected) {
    cache->read_block(blkno, buf);
    const std::uint64_t got = fingerprint(buf);
    fill_pattern(buf, seed);
    EXPECT_EQ(got, fingerprint(buf)) << "block " << blkno;
  }
}

}  // namespace
}  // namespace tinca::core
