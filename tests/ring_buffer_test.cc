// Tests for the persistent ring buffer and its Head/Tail protocol (§4.4).
#include <gtest/gtest.h>

#include <map>

#include "blockdev/faulty_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "nvm/nvm_device.h"
#include "tinca/layout.h"
#include "tinca/ring_buffer.h"
#include "tinca/tinca_cache.h"
#include "tinca/verify.h"

namespace tinca::core {
namespace {

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{1 << 20, nvdimm_profile(), clock};
  Layout layout = Layout::compute(1 << 20, 4096);
  RingBuffer ring{dev, layout};
  Fixture() { ring.format(); }
};

TEST(Layout, ComputePartitionsDevice) {
  const Layout l = Layout::compute(8 << 20, 1 << 20);
  EXPECT_EQ(l.ring_off, Layout::kSuperblockBytes);
  EXPECT_EQ(l.ring_capacity, (1u << 20) / 8);
  EXPECT_GT(l.num_blocks, 0u);
  EXPECT_LE(l.data_off + l.num_blocks * kBlockSize, 8u << 20);
  // Entry table is 16 B per block, 4 KB aligned.
  EXPECT_EQ(l.data_off % kBlockSize, 0u);
  EXPECT_EQ(l.entry_off(0) % 16, 0u);
}

TEST(Layout, EntryAndDataOffsetsDisjoint) {
  const Layout l = Layout::compute(4 << 20, 4096);
  EXPECT_GE(l.data_block_off(0), l.entry_off(l.num_blocks - 1) + 16);
  EXPECT_THROW((void)l.entry_off(l.num_blocks), ContractViolation);
  EXPECT_THROW((void)l.data_block_off(l.num_blocks), ContractViolation);
}

TEST(Layout, TooSmallDeviceRejected) {
  EXPECT_THROW(Layout::compute(8192, 4096), ContractViolation);
  EXPECT_THROW(Layout::compute((1 << 20) + 1, 4096), ContractViolation);
}

TEST(Layout, RingSlotWrapsModuloCapacity) {
  const Layout l = Layout::compute(1 << 20, 4096);
  EXPECT_EQ(l.ring_slot_off(0), l.ring_slot_off(l.ring_capacity));
  EXPECT_EQ(l.ring_slot_off(1), l.ring_slot_off(l.ring_capacity + 1));
}

TEST(RingBuffer, FormatZeroesPointers) {
  Fixture f;
  EXPECT_EQ(f.ring.head(), 0u);
  EXPECT_EQ(f.ring.tail(), 0u);
  EXPECT_EQ(f.ring.in_flight(), 0u);
}

TEST(RingBuffer, RecordAdvancePublishCycle) {
  Fixture f;
  f.ring.record(101);
  f.ring.advance_head();
  f.ring.record(202);
  f.ring.advance_head();
  EXPECT_EQ(f.ring.in_flight(), 2u);
  EXPECT_EQ(f.ring.slot(0), 101u);
  EXPECT_EQ(f.ring.slot(1), 202u);
  f.ring.publish_tail();
  EXPECT_EQ(f.ring.in_flight(), 0u);
  EXPECT_EQ(f.ring.head(), 2u);
}

TEST(RingBuffer, PointersSurviveReload) {
  Fixture f;
  f.ring.record(7);
  f.ring.advance_head();
  f.ring.publish_tail();
  RingBuffer other(f.dev, f.layout);
  other.load();
  EXPECT_EQ(other.head(), 1u);
  EXPECT_EQ(other.tail(), 1u);
}

TEST(RingBuffer, UnflushedStateRevertsOnCrash) {
  Fixture f;
  f.ring.record(7);
  f.ring.advance_head();  // persisted
  // publish_tail persists too, so simulate a crash before it:
  f.dev.crash_discard_all();
  RingBuffer other(f.dev, f.layout);
  other.load();
  EXPECT_EQ(other.head(), 1u);
  EXPECT_EQ(other.tail(), 0u);
  EXPECT_EQ(other.slot(0), 7u);
}

TEST(RingBuffer, ResetHeadToTailAborts) {
  Fixture f;
  f.ring.record(9);
  f.ring.advance_head();
  f.ring.reset_head_to_tail();
  EXPECT_EQ(f.ring.head(), 0u);
  EXPECT_EQ(f.ring.in_flight(), 0u);
}

TEST(RingBuffer, WrapsAroundCapacity) {
  Fixture f;
  const std::uint64_t cap = f.ring.capacity();
  // Fill and publish several times past one full wrap.
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < cap / 2; ++i) {
      f.ring.record(round * 1'000'000 + i);
      f.ring.advance_head();
    }
    f.ring.publish_tail();
  }
  EXPECT_EQ(f.ring.head(), 3 * (cap / 2));
  EXPECT_EQ(f.ring.in_flight(), 0u);
}

TEST(RingBuffer, OverfillRejected) {
  Fixture f;
  const std::uint64_t cap = f.ring.capacity();
  for (std::uint64_t i = 0; i < cap; ++i) {
    f.ring.record(i);
    f.ring.advance_head();
  }
  EXPECT_THROW(f.ring.record(999), ContractViolation);
}

TEST(RingBuffer, CorruptPointersRejectedOnLoad) {
  Fixture f;
  // Head behind tail is impossible in a healthy cache.
  f.dev.atomic_store8(Layout::kHeadOff, 1);
  f.dev.atomic_store8(Layout::kTailOff, 5);
  f.dev.persist(Layout::kHeadOff, 8);
  f.dev.persist(Layout::kTailOff, 8);
  RingBuffer other(f.dev, f.layout);
  EXPECT_THROW(other.load(), ContractViolation);
}

// Integration: the monotonic Head/Tail indices wrap their slot capacity many
// times while the backing disk throws transient errors into the write-back
// stream (every retry happens between ring appends).  The ring protocol must
// stay consistent, committed data must stay readable, and a remount after
// the wraps must still verify and serve everything.
TEST(RingBuffer, WrapAroundSurvivesDiskErrorsMidAppendStream) {
  constexpr std::size_t kNvm = 1 << 20;
  constexpr std::uint64_t kRing = 4096;  // 512 slots — wraps fast
  sim::SimClock clock;
  nvm::NvmDevice nvm(kNvm, nvdimm_profile(), clock);
  blockdev::MemBlockDevice mem(1 << 12);
  blockdev::FaultyBlockDevice disk(mem, {}, &clock, &nvm.injector);

  TincaConfig cfg;
  cfg.ring_bytes = kRing;
  cfg.clean_thresh_pct = 50;  // cleaning keeps write-backs in the commit loop
  auto cache = TincaCache::format(nvm, disk, cfg);

  // 150 transactions × 4 blocks = 600 ring records > 512 slots: > 1 wrap.
  constexpr std::uint64_t kTxns = 150;
  constexpr std::uint64_t kUniverse = 300;  // > capacity → steady eviction
  std::map<std::uint64_t, std::uint64_t> expected;
  std::vector<std::byte> buf(kBlockSize);
  for (std::uint64_t t = 0; t < kTxns; ++t) {
    if (t % 3 == 0) disk.fail_next_writes(1);  // mid-stream transient error
    Transaction txn = cache->tinca_init_txn();
    for (std::uint64_t i = 0; i < 4; ++i) {
      const std::uint64_t blkno = (t * 37 + i * 11) % kUniverse;
      const std::uint64_t seed = t * 8 + i + 1;
      fill_pattern(buf, seed);
      txn.add(blkno, buf);
      expected[blkno] = seed;
    }
    cache->tinca_commit(txn);
  }
  EXPECT_GT(cache->stats().io_retries, 0u);  // the transients really hit

  // The monotonic indices wrapped the slot capacity and drained.
  const Layout layout = Layout::compute(kNvm, kRing);
  RingBuffer ring(nvm, layout);
  ring.load();
  EXPECT_GT(ring.head(), ring.capacity());
  EXPECT_EQ(ring.in_flight(), 0u);

  const MediaReport before = verify_media(nvm, layout);
  EXPECT_TRUE(before.ok) << (before.problems.empty() ? ""
                                                     : before.problems[0]);

  // Remount: every committed block must still be intact after the wraps.
  cache.reset();
  cache = TincaCache::recover(nvm, disk, cfg);
  for (const auto& [blkno, seed] : expected) {
    cache->read_block(blkno, buf);
    const std::uint64_t got = fingerprint(buf);
    fill_pattern(buf, seed);
    EXPECT_EQ(got, fingerprint(buf)) << "block " << blkno;
  }
}

}  // namespace
}  // namespace tinca::core
