// Tests for the optional cache modes and profile extensions: write-through,
// clwb-based profiles, and read-caching toggles.
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/tinca_cache.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 2 << 20;

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev;
  blockdev::MemBlockDevice disk{1 << 14};
  TincaConfig cfg;
  std::unique_ptr<TincaCache> cache;

  explicit Fixture(bool write_through, NvmProfile profile = nvdimm_profile())
      : dev(kNvmBytes, std::move(profile), clock) {
    cfg.ring_bytes = 4096;
    cfg.write_through = write_through;
    cache = TincaCache::format(dev, disk, cfg);
  }

  std::vector<std::byte> block(std::uint64_t seed) const {
    std::vector<std::byte> b(kBlockSize);
    fill_pattern(b, seed);
    return b;
  }
};

TEST(WriteThrough, CommitReachesDiskImmediately) {
  Fixture f(/*write_through=*/true);
  auto txn = f.cache->tinca_init_txn();
  txn.add(7, f.block(1));
  txn.add(8, f.block(2));
  f.cache->tinca_commit(txn);
  std::vector<std::byte> got(kBlockSize);
  f.disk.read(7, got);
  EXPECT_EQ(got, f.block(1));
  f.disk.read(8, got);
  EXPECT_EQ(got, f.block(2));
  EXPECT_FALSE(f.cache->dirty(7));
  EXPECT_TRUE(f.cache->cached(7)) << "write-through keeps blocks cached";
}

TEST(WriteThrough, WriteBackDefersDisk) {
  Fixture f(/*write_through=*/false);
  f.cache->write_block(7, f.block(1));
  EXPECT_EQ(f.disk.stats().blocks_written, 0u);
  EXPECT_TRUE(f.cache->dirty(7));
}

TEST(WriteThrough, RewriteStaysConsistentOnDisk) {
  Fixture f(true);
  for (std::uint64_t v = 1; v <= 5; ++v) f.cache->write_block(3, f.block(v));
  std::vector<std::byte> got(kBlockSize);
  f.disk.read(3, got);
  EXPECT_EQ(got, f.block(5));
}

TEST(WriteThrough, CrashAfterCommitKeepsData) {
  Fixture f(true);
  f.cache->write_block(9, f.block(4));
  f.dev.crash_discard_all();
  auto recovered = TincaCache::recover(f.dev, f.disk, f.cfg);
  std::vector<std::byte> got(kBlockSize);
  recovered->read_block(9, got);
  EXPECT_EQ(got, f.block(4));
}

TEST(WriteThrough, RecoveryDropsCleanEntriesButDiskHoldsData) {
  // Write-through entries end up clean, so a remount sheds them from the
  // cache — the data must still be servable from disk.
  Fixture f(true);
  f.cache->write_block(11, f.block(6));
  auto recovered = TincaCache::recover(f.dev, f.disk, f.cfg);
  EXPECT_FALSE(recovered->cached(11));
  std::vector<std::byte> got(kBlockSize);
  recovered->read_block(11, got);
  EXPECT_EQ(got, f.block(6));
}

TEST(ClwbProfile, CheaperFlushSameDurability) {
  sim::SimClock c1, c2;
  nvm::NvmDevice flush_dev(64 * 1024, pcm_profile(), c1);
  nvm::NvmDevice clwb_dev(64 * 1024, with_clwb(pcm_profile()), c2);
  std::vector<std::byte> data(4096);
  for (auto* dev : {&flush_dev, &clwb_dev}) {
    dev->store(0, data);
    dev->persist(0, 4096);
  }
  EXPECT_LT(c2.now(), c1.now()) << "clwb must be cheaper to issue";
  // Durability identical: both survive a total crash.
  flush_dev.crash_discard_all();
  clwb_dev.crash_discard_all();
  std::vector<std::byte> got(4096, std::byte{0xFF});
  clwb_dev.load(0, got);
  EXPECT_EQ(got, data);
}

TEST(ClwbProfile, NameParsingAndComposition) {
  EXPECT_EQ(nvm_profile_by_name("pcm+clwb").name, "PCM+clwb");
  EXPECT_EQ(nvm_profile_by_name("PCM+CLWB").name, "PCM+clwb");
  EXPECT_EQ(nvm_profile_by_name("pcm+clwb").write_extra_ns,
            pcm_profile().write_extra_ns)
      << "clwb changes issue cost, not media latency";
  EXPECT_LT(nvm_profile_by_name("sttram+clwb").clflush_ns,
            sttram_profile().clflush_ns);
}

TEST(ClwbProfile, CrashSweepStillHolds) {
  // The commit protocol's crash consistency must be instruction-agnostic.
  Rng rng(17);
  for (std::uint64_t step = 1; step <= 40; step += 3) {
    Fixture f(false, with_clwb(pcm_profile()));
    // Seed the old version.
    f.cache->write_block(1, f.block(10));
    f.dev.injector.arm(step);
    try {
      auto txn = f.cache->tinca_init_txn();
      txn.add(1, f.block(20));
      txn.add(2, f.block(21));
      f.cache->tinca_commit(txn);
    } catch (const nvm::CrashException&) {
    }
    f.dev.injector.disarm();
    f.dev.crash(rng, 0.5);
    auto recovered = TincaCache::recover(f.dev, f.disk, f.cfg);
    std::vector<std::byte> a(kBlockSize), b(kBlockSize);
    recovered->read_block(1, a);
    recovered->read_block(2, b);
    const bool new1 = fingerprint(a) == fingerprint(f.block(20));
    const bool old1 = fingerprint(a) == fingerprint(f.block(10));
    const bool new2 = fingerprint(b) == fingerprint(f.block(21));
    const bool zero2 =
        fingerprint(b) ==
        fingerprint(std::vector<std::byte>(kBlockSize, std::byte{0}));
    ASSERT_TRUE((new1 && new2) || (old1 && zero2))
        << "non-atomic recovery with clwb at step " << step;
  }
}

}  // namespace
}  // namespace tinca::core
