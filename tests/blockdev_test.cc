// Unit tests for the block-device substrate.
#include <gtest/gtest.h>

#include "blockdev/latency_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/expect.h"
#include "common/rng.h"

namespace tinca::blockdev {
namespace {

std::vector<std::byte> block_with(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  tinca::fill_pattern(b, seed);
  return b;
}

TEST(MemBlockDevice, UnwrittenBlocksReadZero) {
  MemBlockDevice dev(100);
  std::vector<std::byte> buf(kBlockSize, std::byte{0xFF});
  dev.read(7, buf);
  for (std::byte b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST(MemBlockDevice, WriteReadRoundTrip) {
  MemBlockDevice dev(100);
  const auto data = block_with(1);
  dev.write(42, data);
  std::vector<std::byte> got(kBlockSize);
  dev.read(42, got);
  EXPECT_EQ(got, data);
}

TEST(MemBlockDevice, SparseResidency) {
  MemBlockDevice dev(1'000'000);
  dev.write(999'999, block_with(2));
  dev.write(0, block_with(3));
  EXPECT_EQ(dev.resident_blocks(), 2u);
}

TEST(MemBlockDevice, StatsCountIo) {
  MemBlockDevice dev(10);
  std::vector<std::byte> buf(kBlockSize);
  dev.write(1, buf);
  dev.write(2, buf);
  dev.read(1, buf);
  EXPECT_EQ(dev.stats().blocks_written, 2u);
  EXPECT_EQ(dev.stats().blocks_read, 1u);
}

TEST(MemBlockDevice, BoundsChecked) {
  MemBlockDevice dev(10);
  std::vector<std::byte> buf(kBlockSize);
  EXPECT_THROW(dev.write(10, buf), ContractViolation);
  EXPECT_THROW(dev.read(11, buf), ContractViolation);
  std::vector<std::byte> small(8);
  EXPECT_THROW(dev.write(0, small), ContractViolation);
}

TEST(LatencyBlockDevice, SsdChargesPerBlock) {
  sim::SimClock clock;
  MemBlockDevice mem(100);
  LatencyBlockDevice dev(mem, ssd_profile(), clock);
  std::vector<std::byte> buf(kBlockSize);
  dev.write(0, buf);
  const auto p = ssd_profile();
  EXPECT_EQ(clock.now(), p.request_overhead_ns + p.write_block_ns);
}

TEST(LatencyBlockDevice, HddChargesSeekOnRandomAccess) {
  sim::SimClock clock;
  MemBlockDevice mem(1000);
  LatencyBlockDevice dev(mem, hdd_profile(), clock);
  std::vector<std::byte> buf(kBlockSize);
  dev.write(0, buf);           // first access: seek
  const sim::Ns after_first = clock.now();
  dev.write(1, buf);           // sequential: no seek
  const sim::Ns seq_cost = clock.now() - after_first;
  dev.write(500, buf);         // random: seek again
  const sim::Ns rnd_cost = clock.now() - after_first - seq_cost;
  EXPECT_GT(rnd_cost, seq_cost);
  EXPECT_EQ(rnd_cost - seq_cost, hdd_profile().seek_ns);
  EXPECT_EQ(dev.stats().seeks, 2u);
}

TEST(LatencyBlockDevice, PassesDataThrough) {
  sim::SimClock clock;
  MemBlockDevice mem(100);
  LatencyBlockDevice dev(mem, ssd_profile(), clock);
  const auto data = block_with(9);
  dev.write(5, data);
  std::vector<std::byte> got(kBlockSize);
  dev.read(5, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(dev.stats().blocks_written, 1u);
  EXPECT_EQ(dev.stats().blocks_read, 1u);
}

TEST(LatencyBlockDevice, HddRandomIsSlowerThanSsdRandom) {
  sim::SimClock c_ssd, c_hdd;
  MemBlockDevice m1(1000), m2(1000);
  LatencyBlockDevice ssd(m1, ssd_profile(), c_ssd);
  LatencyBlockDevice hdd(m2, hdd_profile(), c_hdd);
  std::vector<std::byte> buf(kBlockSize);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto blk = rng.below(1000);
    ssd.write(blk, buf);
    hdd.write(blk, buf);
  }
  EXPECT_GT(c_hdd.now(), 5 * c_ssd.now());
}

}  // namespace
}  // namespace tinca::blockdev
