// Unit tests for the block-device substrate.
#include <gtest/gtest.h>

#include <algorithm>

#include "blockdev/faulty_block_device.h"
#include "blockdev/latency_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/expect.h"
#include "common/rng.h"

namespace tinca::blockdev {
namespace {

std::vector<std::byte> block_with(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  tinca::fill_pattern(b, seed);
  return b;
}

TEST(MemBlockDevice, UnwrittenBlocksReadZero) {
  MemBlockDevice dev(100);
  std::vector<std::byte> buf(kBlockSize, std::byte{0xFF});
  dev.read(7, buf);
  for (std::byte b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST(MemBlockDevice, WriteReadRoundTrip) {
  MemBlockDevice dev(100);
  const auto data = block_with(1);
  dev.write(42, data);
  std::vector<std::byte> got(kBlockSize);
  dev.read(42, got);
  EXPECT_EQ(got, data);
}

TEST(MemBlockDevice, SparseResidency) {
  MemBlockDevice dev(1'000'000);
  dev.write(999'999, block_with(2));
  dev.write(0, block_with(3));
  EXPECT_EQ(dev.resident_blocks(), 2u);
}

TEST(MemBlockDevice, StatsCountIo) {
  MemBlockDevice dev(10);
  std::vector<std::byte> buf(kBlockSize);
  dev.write(1, buf);
  dev.write(2, buf);
  dev.read(1, buf);
  EXPECT_EQ(dev.stats().blocks_written, 2u);
  EXPECT_EQ(dev.stats().blocks_read, 1u);
}

TEST(MemBlockDevice, BoundsChecked) {
  MemBlockDevice dev(10);
  std::vector<std::byte> buf(kBlockSize);
  EXPECT_THROW(dev.write(10, buf), ContractViolation);
  EXPECT_THROW(dev.read(11, buf), ContractViolation);
  std::vector<std::byte> small(8);
  EXPECT_THROW(dev.write(0, small), ContractViolation);
}

TEST(LatencyBlockDevice, SsdChargesPerBlock) {
  sim::SimClock clock;
  MemBlockDevice mem(100);
  LatencyBlockDevice dev(mem, ssd_profile(), clock);
  std::vector<std::byte> buf(kBlockSize);
  dev.write(0, buf);
  const auto p = ssd_profile();
  EXPECT_EQ(clock.now(), p.request_overhead_ns + p.write_block_ns);
}

TEST(LatencyBlockDevice, HddChargesSeekOnRandomAccess) {
  sim::SimClock clock;
  MemBlockDevice mem(1000);
  LatencyBlockDevice dev(mem, hdd_profile(), clock);
  std::vector<std::byte> buf(kBlockSize);
  dev.write(0, buf);           // first access: seek
  const sim::Ns after_first = clock.now();
  dev.write(1, buf);           // sequential: no seek
  const sim::Ns seq_cost = clock.now() - after_first;
  dev.write(500, buf);         // random: seek again
  const sim::Ns rnd_cost = clock.now() - after_first - seq_cost;
  EXPECT_GT(rnd_cost, seq_cost);
  EXPECT_EQ(rnd_cost - seq_cost, hdd_profile().seek_ns);
  EXPECT_EQ(dev.stats().seeks, 2u);
}

TEST(LatencyBlockDevice, PassesDataThrough) {
  sim::SimClock clock;
  MemBlockDevice mem(100);
  LatencyBlockDevice dev(mem, ssd_profile(), clock);
  const auto data = block_with(9);
  dev.write(5, data);
  std::vector<std::byte> got(kBlockSize);
  dev.read(5, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(dev.stats().blocks_written, 1u);
  EXPECT_EQ(dev.stats().blocks_read, 1u);
}

TEST(LatencyBlockDevice, HddRandomIsSlowerThanSsdRandom) {
  sim::SimClock c_ssd, c_hdd;
  MemBlockDevice m1(1000), m2(1000);
  LatencyBlockDevice ssd(m1, ssd_profile(), c_ssd);
  LatencyBlockDevice hdd(m2, hdd_profile(), c_hdd);
  std::vector<std::byte> buf(kBlockSize);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto blk = rng.below(1000);
    ssd.write(blk, buf);
    hdd.write(blk, buf);
  }
  EXPECT_GT(c_hdd.now(), 5 * c_ssd.now());
}

TEST(FaultyBlockDevice, DefaultConfigIsTransparent) {
  MemBlockDevice mem(64);
  FaultyBlockDevice dev(mem, {});
  const auto data = block_with(7);
  std::vector<std::byte> got(kBlockSize);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(dev.write(i % 64, data), IoStatus::kOk);
    EXPECT_EQ(dev.read(i % 64, got), IoStatus::kOk);
  }
  EXPECT_EQ(got, data);
  EXPECT_EQ(dev.fault_stats().transient_write_errors, 0u);
  EXPECT_EQ(dev.bad_sector_count(), 0u);
}

TEST(FaultyBlockDevice, MarkBadFailsWritesButReadsKeepLastGoodContents) {
  MemBlockDevice mem(64);
  FaultyBlockDevice dev(mem, {});
  const auto old_data = block_with(1);
  ASSERT_EQ(dev.write(5, old_data), IoStatus::kOk);
  dev.mark_bad(5);
  EXPECT_TRUE(dev.is_bad(5));
  EXPECT_EQ(dev.write(5, block_with(2)), IoStatus::kBadSector);
  std::vector<std::byte> got(kBlockSize);
  EXPECT_EQ(dev.read(5, got), IoStatus::kOk);
  EXPECT_EQ(got, old_data);  // the failed write never reached the media
  EXPECT_EQ(dev.fault_stats().bad_sectors, 1u);
  EXPECT_EQ(dev.fault_stats().bad_sector_errors, 1u);
}

TEST(FaultyBlockDevice, ScriptedTransientsFailExactlyNTimes) {
  MemBlockDevice mem(64);
  FaultyBlockDevice dev(mem, {});
  const auto data = block_with(3);
  std::vector<std::byte> got(kBlockSize);
  dev.fail_next_writes(2);
  EXPECT_EQ(dev.write(1, data), IoStatus::kTransient);
  EXPECT_EQ(dev.write(1, data), IoStatus::kTransient);
  EXPECT_EQ(dev.write(1, data), IoStatus::kOk);  // the retry that lands
  dev.fail_next_reads(1);
  EXPECT_EQ(dev.read(1, got), IoStatus::kTransient);
  EXPECT_EQ(dev.read(1, got), IoStatus::kOk);
  EXPECT_EQ(got, data);
  EXPECT_EQ(dev.fault_stats().transient_write_errors, 2u);
  EXPECT_EQ(dev.fault_stats().transient_read_errors, 1u);
}

TEST(FaultyBlockDevice, ScriptedTearLeavesHalfOldHalfNewAndCrashes) {
  MemBlockDevice mem(64);
  FaultyBlockDevice dev(mem, {});
  const auto old_data = block_with(1);
  const auto new_data = block_with(2);
  ASSERT_EQ(dev.write(9, old_data), IoStatus::kOk);
  dev.tear_write_after(2);
  ASSERT_EQ(dev.write(9, old_data), IoStatus::kOk);  // write 1: intact
  EXPECT_THROW(dev.write(9, new_data), nvm::CrashException);  // write 2 tears
  std::vector<std::byte> got(kBlockSize);
  ASSERT_EQ(mem.read(9, got), IoStatus::kOk);
  EXPECT_TRUE(std::equal(got.begin(), got.begin() + kBlockSize / 2,
                         new_data.begin()));
  EXPECT_TRUE(std::equal(got.begin() + kBlockSize / 2, got.end(),
                         old_data.begin() + kBlockSize / 2));
  EXPECT_EQ(dev.fault_stats().torn_writes, 1u);
}

TEST(FaultyBlockDevice, InjectorTornPointTearsDiskWrites) {
  MemBlockDevice mem(64);
  nvm::CrashInjector inj;
  FaultyBlockDevice dev(mem, {}, nullptr, &inj);
  const auto data = block_with(4);
  ASSERT_EQ(dev.write(0, data), IoStatus::kOk);
  inj.arm_torn(2);
  EXPECT_EQ(dev.write(0, data), IoStatus::kOk);  // torn step 1: passes
  EXPECT_THROW(dev.write(0, block_with(5)), nvm::CrashException);
  EXPECT_EQ(dev.fault_stats().torn_writes, 1u);
}

TEST(FaultyBlockDevice, RandomScheduleIsReproducibleFromSeed) {
  FaultConfig cfg;
  cfg.seed = 1234;
  cfg.transient_write_rate = 0.2;
  cfg.bad_sector_rate = 0.02;
  const auto data = block_with(6);
  std::vector<IoStatus> a, b;
  for (std::vector<IoStatus>* out : {&a, &b}) {
    MemBlockDevice mem(64);
    FaultyBlockDevice dev(mem, cfg);
    for (int i = 0; i < 300; ++i) out->push_back(dev.write(i % 64, data));
  }
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::find(a.begin(), a.end(), IoStatus::kTransient) != a.end());
}

TEST(FaultyBlockDevice, QuiesceStopsRandomFaultsButKeepsBadSectors) {
  FaultConfig cfg;
  cfg.seed = 9;
  cfg.transient_write_rate = 0.5;
  MemBlockDevice mem(64);
  FaultyBlockDevice dev(mem, cfg);
  const auto data = block_with(8);
  dev.mark_bad(3);
  dev.quiesce();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dev.write(10, data), IoStatus::kOk);
  EXPECT_EQ(dev.write(3, data), IoStatus::kBadSector);  // bad stays bad
}

}  // namespace
}  // namespace tinca::blockdev
