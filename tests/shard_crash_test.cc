// Crash-consistency sweep over the multi-shard commit path.
//
// A two-shard transaction runs the full per-shard protocol twice: ring
// records, Head move, role switches and the Tail publication of shard i,
// then the same for shard j > i.  This sweep arms the injector at *every*
// crash point of that sequence, simulates power loss, recovers every shard,
// and asserts the sharded atomicity contract:
//
//   the transaction is all-or-nothing ACROSS shards: it is anchored to one
//   cross-stream commit record (DESIGN.md §15), so after recovery either
//   every shard's portion is durable or none is — the old ascending-shard
//   prefix contract is retired;
//
// plus structural health: verify_media is clean on every shard after every
// recovery, and recovery leaves no unflushed lines behind.
#include <gtest/gtest.h>

#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "shard/sharded_tinca.h"
#include "tinca/verify.h"

namespace tinca::shard {
namespace {

constexpr std::size_t kNvmBytes = 4 << 20;  // 2 MB per shard at 2 shards
constexpr std::uint64_t kDiskBlocks = 1 << 14;

ShardedConfig two_shards() {
  ShardedConfig cfg;
  cfg.num_shards = 2;
  cfg.shard.ring_bytes = 4096;
  return cfg;
}

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(core::kBlockSize);
  fill_pattern(b, seed);
  return b;
}

/// Find one block per shard, lowest block numbers first.  With the ascending
/// iteration below, `home[0]`'s shard id 0 publishes before shard id 1.
std::vector<std::uint64_t> one_block_per_shard(const ShardedTinca& st) {
  std::vector<std::uint64_t> home(st.shard_count(), UINT64_MAX);
  std::uint32_t found = 0;
  for (std::uint64_t b = 0; found < st.shard_count(); ++b) {
    const std::uint32_t s = st.shard_of(b);
    if (home[s] == UINT64_MAX) {
      home[s] = b;
      ++found;
    }
  }
  return home;
}

constexpr std::uint64_t kOldSeedBase = 10;  // prelude: block i holds seed 10+i
constexpr std::uint64_t kNewSeedBase = 50;  // victim txn: seed 50+i

/// Formats a fresh sharded cache, commits the prelude transaction (both
/// blocks get their "old" contents), then — with the injector armed at
/// `crash_step` if nonzero — commits the two-shard victim transaction.
struct SweepRun {
  bool crashed = false;
  std::uint64_t steps = 0;
};

SweepRun run_victim(nvm::NvmDevice& dev, blockdev::MemBlockDevice& disk,
                    std::uint64_t crash_step) {
  auto st = ShardedTinca::format(dev, disk, two_shards());
  const auto home = one_block_per_shard(*st);

  auto prelude = st->init_txn();
  for (std::uint32_t s = 0; s < 2; ++s)
    prelude.add(home[s], block_of(kOldSeedBase + s));
  st->commit(prelude);

  // Count (or crash at) the victim transaction's own steps only.
  dev.injector.disarm();
  if (crash_step > 0) dev.injector.arm(crash_step);

  SweepRun result;
  try {
    auto victim = st->init_txn();
    for (std::uint32_t s = 0; s < 2; ++s)
      victim.add(home[s], block_of(kNewSeedBase + s));
    st->commit(victim);
  } catch (const nvm::CrashException&) {
    result.crashed = true;
  }
  result.steps = dev.injector.steps_seen();
  dev.injector.disarm();
  return result;
}

TEST(ShardCrashSweep, EveryStepOfATwoShardCommitRecoversPerShardAtomically) {
  // Learn the step count from an unarmed run.
  sim::SimClock probe_clock;
  nvm::NvmDevice probe_dev(kNvmBytes, nvdimm_profile(), probe_clock);
  blockdev::MemBlockDevice probe_disk(kDiskBlocks);
  const SweepRun full = run_victim(probe_dev, probe_disk, 0);
  ASSERT_FALSE(full.crashed);
  // Each shard's single-block sub-commit passes ~7 points (block staging,
  // entry install, ring record, Head move, role switch, Tail publication).
  ASSERT_GT(full.steps, 10u) << "two-shard commit should have many crash points";

  Rng rng(7);
  for (std::uint64_t step = 1; step <= full.steps; ++step) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    const SweepRun run = run_victim(dev, disk, step);
    ASSERT_TRUE(run.crashed) << "step " << step << " did not crash";

    dev.crash(rng, 0.5);
    auto st = ShardedTinca::recover(dev, disk, two_shards());

    ASSERT_EQ(dev.dirty_lines(), 0u)
        << "recovery left unflushed state at step " << step;

    for (std::uint32_t s = 0; s < st->shard_count(); ++s) {
      const auto report =
          core::verify_media(st->shard_nvm(s), st->shard_cache(s).layout());
      ASSERT_TRUE(report.ok)
          << "shard " << s << " media corrupt after crash at step " << step
          << ": " << (report.problems.empty() ? "?" : report.problems[0]);
    }

    // Per-shard atomicity: each block is exactly its old or its new version.
    const auto home = one_block_per_shard(*st);
    std::vector<bool> committed(2);
    std::vector<std::byte> buf(core::kBlockSize);
    for (std::uint32_t s = 0; s < 2; ++s) {
      st->read_block(home[s], buf);
      const std::uint64_t got = fingerprint(buf);
      const std::uint64_t old_fp = fingerprint(block_of(kOldSeedBase + s));
      const std::uint64_t new_fp = fingerprint(block_of(kNewSeedBase + s));
      ASSERT_TRUE(got == old_fp || got == new_fp)
          << "shard " << s << " block " << home[s]
          << " is neither version after crash at step " << step;
      committed[s] = (got == new_fp);
    }

    // Cross-shard atomicity: the commit record decides for BOTH shards, so
    // the two portions must agree at every cut point (strictly stronger
    // than the old "later implies earlier" publication-order contract).
    EXPECT_EQ(committed[0], committed[1])
        << "cross-shard txn half-applied at step " << step;
  }
}

TEST(ShardCrashSweep, RecoveryAfterTotalLineLossIsStillConsistent) {
  // Worst case: no unflushed line survives.  The prelude must stay durable
  // regardless of where the victim commit died.
  sim::SimClock probe_clock;
  nvm::NvmDevice probe_dev(kNvmBytes, nvdimm_profile(), probe_clock);
  blockdev::MemBlockDevice probe_disk(kDiskBlocks);
  const SweepRun full = run_victim(probe_dev, probe_disk, 0);

  for (std::uint64_t step = 1; step <= full.steps; step += 5) {
    sim::SimClock clock;
    nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(kDiskBlocks);
    const SweepRun run = run_victim(dev, disk, step);
    ASSERT_TRUE(run.crashed);

    dev.crash_discard_all();
    auto st = ShardedTinca::recover(dev, disk, two_shards());

    const auto home = one_block_per_shard(*st);
    std::vector<bool> committed(2);
    std::vector<std::byte> buf(core::kBlockSize);
    for (std::uint32_t s = 0; s < 2; ++s) {
      st->read_block(home[s], buf);
      const std::uint64_t got = fingerprint(buf);
      ASSERT_TRUE(got == fingerprint(block_of(kOldSeedBase + s)) ||
                  got == fingerprint(block_of(kNewSeedBase + s)))
          << "shard " << s << " lost the prelude after crash at step " << step;
      committed[s] = got == fingerprint(block_of(kNewSeedBase + s));
    }
    EXPECT_EQ(committed[0], committed[1])
        << "cross-shard txn half-applied after total line loss at step "
        << step;
  }
}

}  // namespace
}  // namespace tinca::shard
