// Thread-safety stress for the deep-stacked NvLog tier (DESIGN.md §16),
// aimed at TSan (ci.sh runs it in the sanitizer stage): several absorber
// threads push committed transactions through NvLogStackedBackend's
// thread-safe absorb path while a drainer loops drain_pass(), and the
// drains themselves run one real std::thread per shard batch
// (drain_threads=true) into the sharded inner.  The assertions at the end
// are plain single-threaded reads — the point of the test is that TSan
// stays silent while absorbers, the drainer and the per-shard drain workers
// interleave.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "backend/nvlog_stacked_backend.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"

namespace tinca {
namespace {

constexpr std::size_t kBlock = blockdev::kBlockSize;
constexpr std::size_t kLogBytes = 1 << 19;
constexpr std::size_t kNvmBytes = (2u << 19) + kLogBytes;

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlock);
  fill_pattern(b, seed);
  return b;
}

TEST(NvLogStackedStress, ConcurrentAbsorbersAndThreadedParallelDrains) {
  constexpr int kAbsorbers = 4;
  constexpr int kTxnsPerAbsorber = 64;
  constexpr int kBlocksPerTxn = 4;

  sim::SimClock clock;
  nvm::NvmDevice nvm(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 12);
  backend::NvLogStackedConfig cfg;
  cfg.log_bytes = kLogBytes;
  cfg.log.segment_bytes = 64 * 1024;
  cfg.inner = backend::NvLogInner::kSharded;
  cfg.shards = 2;
  cfg.tinca.ring_bytes = 64 * 1024;
  cfg.drain_threads = true;  // real per-shard drain workers
  auto be = backend::NvLogStackedBackend::format(nvm, disk, cfg);

  // Each absorber owns a disjoint block range; the last write per block is
  // the one its own thread issued, so the final check needs no cross-thread
  // ordering assumptions.
  std::atomic<int> done{0};
  std::vector<std::thread> absorbers;
  absorbers.reserve(kAbsorbers);
  for (int a = 0; a < kAbsorbers; ++a) {
    absorbers.emplace_back([&, a] {
      for (int t = 0; t < kTxnsPerAbsorber; ++t) {
        std::vector<std::vector<std::byte>> payloads;
        std::vector<std::pair<std::uint64_t, std::span<const std::byte>>>
            blocks;
        payloads.reserve(kBlocksPerTxn);
        blocks.reserve(kBlocksPerTxn);
        for (int b = 0; b < kBlocksPerTxn; ++b) {
          const std::uint64_t blkno = static_cast<std::uint64_t>(
              a * 256 + (t * kBlocksPerTxn + b) % 64);
          payloads.push_back(block_of(a * 1'000'000 + t * 100 + b));
          blocks.emplace_back(blkno, payloads.back());
        }
        be->absorb_txn(blocks);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }

  std::thread drainer([&] {
    while (done.load(std::memory_order_acquire) < kAbsorbers) {
      if (be->drain_pass(2) == 0) std::this_thread::yield();
    }
  });

  for (std::thread& t : absorbers) t.join();
  drainer.join();

  be->flush();  // drain the tail single-threaded
  EXPECT_EQ(be->tier().live_records(), 0u);
  EXPECT_EQ(be->tier().stats().absorbed_txns,
            static_cast<std::uint64_t>(kAbsorbers) * kTxnsPerAbsorber);

  // Every absorber's final write per block must read back bit-exact.
  std::vector<std::byte> buf(kBlock);
  for (int a = 0; a < kAbsorbers; ++a) {
    for (int slot = 0; slot < 64; ++slot) {
      // Last txn t and position b that wrote this slot.
      int last_t = -1, last_b = -1;
      for (int t = 0; t < kTxnsPerAbsorber; ++t) {
        for (int b = 0; b < kBlocksPerTxn; ++b) {
          if ((t * kBlocksPerTxn + b) % 64 == slot) {
            last_t = t;
            last_b = b;
          }
        }
      }
      ASSERT_GE(last_t, 0);
      const std::uint64_t blkno = static_cast<std::uint64_t>(a * 256 + slot);
      be->read_block(blkno, buf);
      EXPECT_EQ(fingerprint(buf),
                fingerprint(block_of(a * 1'000'000 + last_t * 100 + last_b)))
          << "absorber " << a << " slot " << slot;
    }
  }
}

}  // namespace
}  // namespace tinca
