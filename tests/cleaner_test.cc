// Tests for the background cleaner (DESIGN.md §11): stepped draining with
// watermark pacing, trickle of explicitly enqueued keys, contiguous-run
// coalescing, backpressure drains, crash-mid-drain safety, bad-sector
// retry/backoff, thread mode, the shared pacer, and the UBJ variant where
// cleaner keys are transaction sequence numbers.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "blockdev/faulty_block_device.h"
#include "blockdev/mem_block_device.h"
#include "cleaner/cleaner.h"
#include "common/bytes.h"
#include "obs/metrics.h"
#include "shard/sharded_tinca.h"
#include "tinca/tinca_cache.h"
#include "ubj/ubj_store.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 1 << 19;  // ~120 blocks: watermarks bite

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice disk{1 << 16};
  TincaConfig cfg;
  std::unique_ptr<TincaCache> cache;

  explicit Fixture(cleaner::CleanerMode mode = cleaner::CleanerMode::kStepped,
                   std::uint64_t ring_bytes = 8192) {
    cfg.ring_bytes = ring_bytes;
    cfg.cleaner.mode = mode;
    cfg.cleaner.low_water_pct = 10;
    cfg.cleaner.high_water_pct = 30;
    cache = TincaCache::format(dev, disk, cfg);
  }

  std::vector<std::byte> block(std::uint64_t seed) const {
    std::vector<std::byte> b(kBlockSize);
    fill_pattern(b, seed);
    return b;
  }

  std::vector<std::byte> read(std::uint64_t blkno) {
    std::vector<std::byte> b(kBlockSize);
    cache->read_block(blkno, b);
    return b;
  }

  void commit_one(std::uint64_t blkno, std::uint64_t seed) {
    auto txn = cache->tinca_init_txn();
    txn.add(blkno, block(seed));
    cache->tinca_commit(txn);
  }

  /// Commit blknos [0, n) with seed == blkno + 1.
  void fill_dirty(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) commit_one(i, i + 1);
  }
};

TEST(Cleaner, SteppedDrainRetiresDirtyBlocksAboveHighWater) {
  Fixture f;
  const std::uint64_t cap = f.cache->capacity_blocks();
  const std::uint64_t n = cap * f.cfg.cleaner.high_water_pct / 100 + 10;
  f.fill_dirty(n);
  ASSERT_GT(f.cache->dirty_blocks() * 100,
            cap * f.cfg.cleaner.high_water_pct);

  for (int i = 0; i < 200 && f.cache->dirty_blocks() * 100 >
                                cap * f.cfg.cleaner.low_water_pct;
       ++i)
    f.cache->cleaner_step();

  // Drained to (at or below) the low watermark, via the cleaner.
  EXPECT_LE(f.cache->dirty_blocks() * 100, cap * f.cfg.cleaner.low_water_pct);
  const cleaner::CleanerStats& s = f.cache->cleaner()->stats();
  EXPECT_GT(s.retired, 0u);
  EXPECT_GT(s.enqueued, 0u);  // commits nominate oldest-first above high water
  EXPECT_GT(s.steps, 0u);
  EXPECT_GT(s.drain_lag.count(), 0u);
  // Retired blocks are durable on disk and still correct through the cache.
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(f.read(i), f.block(i + 1));
  // Write accounting: every retirement was a real disk write.
  EXPECT_EQ(f.cache->stats().background_cleanings, s.retired);
}

TEST(Cleaner, BelowHighWaterOnlyExplicitKeysTrickle) {
  Fixture f;
  f.fill_dirty(8);  // well below the high watermark
  const std::uint64_t dirty_before = f.cache->dirty_blocks();
  for (int i = 0; i < 10; ++i) f.cache->cleaner_step();
  // No watermark pressure and nothing enqueued: the cleaner stays idle.
  EXPECT_EQ(f.cache->dirty_blocks(), dirty_before);
  EXPECT_EQ(f.cache->cleaner()->stats().retired, 0u);

  // Explicitly enqueued keys trickle out at trickle_per_step per quantum.
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_TRUE(f.cache->cleaner()->try_enqueue(i));
  f.cache->cleaner_step();
  EXPECT_EQ(f.cache->cleaner()->stats().retired, f.cfg.cleaner.trickle_per_step);
  while (f.cache->cleaner()->queue_depth() > 0) f.cache->cleaner_step();
  EXPECT_EQ(f.cache->dirty_blocks(), dirty_before - 8);
}

TEST(Cleaner, ContiguousKeysCoalesceIntoRuns) {
  Fixture f;
  f.fill_dirty(12);  // blknos 0..11 — one contiguous span
  for (std::uint64_t i = 0; i < 12; ++i) f.cache->cleaner()->try_enqueue(i);
  while (f.cache->cleaner()->queue_depth() > 0) f.cache->cleaner_step();
  const cleaner::CleanerStats& s = f.cache->cleaner()->stats();
  EXPECT_EQ(s.retired, 12u);
  EXPECT_GT(s.coalesced_blocks, 0u);
  // 12 contiguous keys in trickle batches of trickle_per_step: every batch
  // is one ascending run, so runs == steps that drained, far below 12.
  EXPECT_LT(s.batches, 12u);
}

TEST(Cleaner, StaleAndRewrittenKeysDropWithoutDiskWrites) {
  Fixture f;
  f.commit_one(5, 1);
  f.cache->cleaner()->try_enqueue(5);
  f.cache->cleaner()->try_enqueue(999);  // never written: no index entry
  // Re-dirtying key 5 before the drain is fine (the cleaner writes the
  // newest committed image); key 999 must drop as stale.
  while (f.cache->cleaner()->queue_depth() > 0) f.cache->cleaner_step();
  const cleaner::CleanerStats& s = f.cache->cleaner()->stats();
  EXPECT_EQ(s.retired, 1u);
  EXPECT_EQ(s.stale_drops, 1u);
  EXPECT_EQ(f.read(5), f.block(1));
}

TEST(Cleaner, DuplicateEnqueueIsIdempotent) {
  Fixture f;
  f.commit_one(3, 7);
  EXPECT_TRUE(f.cache->cleaner()->try_enqueue(3));
  EXPECT_TRUE(f.cache->cleaner()->try_enqueue(3));
  EXPECT_EQ(f.cache->cleaner()->stats().dup_skips, 1u);
  EXPECT_EQ(f.cache->cleaner()->queue_depth(), 1u);
}

TEST(Cleaner, BackpressureDrainKeepsOvercommitEvictionsAlive) {
  // Overcommit the cache without ever stepping the cleaner: evictions find
  // only dirty victims, enqueue them, and fall back to drain_blocking().
  Fixture f;
  const std::uint64_t cap = f.cache->capacity_blocks();
  const std::uint64_t universe = cap * 3;
  for (std::uint64_t i = 0; i < universe; ++i) f.commit_one(i, i + 1);
  const cleaner::CleanerStats& s = f.cache->cleaner()->stats();
  EXPECT_GT(s.backpressure_drains, 0u);
  EXPECT_GT(s.retired, 0u);
  // Everything committed is still readable (cache or disk).
  for (std::uint64_t i = 0; i < universe; i += 17)
    EXPECT_EQ(f.read(i), f.block(i + 1)) << "blkno " << i;
}

TEST(Cleaner, CrashMidDrainLosesNothing) {
  // Arm a power cut inside the cleaner's drain (NVM persistence points fire
  // both before the disk write and after it, before the entry is marked
  // clean).  Whatever step the cut lands on, recovery must still serve every
  // committed block — the block only leaves the dirty set once durable.
  for (std::uint64_t crash_step = 1; crash_step <= 40; crash_step += 3) {
    Fixture f;
    f.fill_dirty(24);
    for (std::uint64_t i = 0; i < 24; ++i) f.cache->cleaner()->try_enqueue(i);
    f.dev.injector.disarm();
    f.dev.injector.arm(crash_step);
    bool crashed = false;
    try {
      for (int i = 0; i < 50; ++i) f.cache->cleaner_step();
    } catch (const nvm::CrashException&) {
      crashed = true;
    }
    f.dev.injector.disarm();
    if (!crashed) continue;  // cut landed beyond the drain: nothing to check
    f.cache.reset();
    f.cache = TincaCache::recover(f.dev, f.disk, f.cfg);
    for (std::uint64_t i = 0; i < 24; ++i)
      ASSERT_EQ(f.read(i), f.block(i + 1))
          << "blkno " << i << " lost after crash at step " << crash_step;
  }
}

TEST(Cleaner, SabotagedCleanerIsCaughtAfterRemount) {
  // Oracle self-test: a cleaner that marks blocks clean WITHOUT the
  // pre-writeback disk flush must surface as stale disk data once recovery
  // drops the (wrongly) clean NVM entries.
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice disk{1 << 16};
  TincaConfig cfg;
  cfg.ring_bytes = 8192;
  cfg.cleaner.mode = cleaner::CleanerMode::kStepped;
  cfg.cleaner.sabotage_skip_write = true;
  auto cache = TincaCache::format(dev, disk, cfg);

  std::vector<std::byte> want(kBlockSize);
  fill_pattern(want, 42);
  auto txn = cache->tinca_init_txn();
  txn.add(7, want);
  cache->tinca_commit(txn);
  cache->cleaner()->try_enqueue(7);
  while (cache->cleaner()->queue_depth() > 0) cache->cleaner_step();
  ASSERT_EQ(cache->dirty_blocks(), 0u);  // lied clean, never written

  cache.reset();
  cache = TincaCache::recover(dev, disk, cfg);
  std::vector<std::byte> got(kBlockSize);
  cache->read_block(7, got);
  EXPECT_NE(got, want) << "sabotaged cleaner went unnoticed: block 7 read "
                          "back committed data that was never flushed";
}

TEST(Cleaner, BadSectorFailuresBackOffThenQuarantine) {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice mem{1 << 16};
  blockdev::FaultyBlockDevice disk(mem, blockdev::FaultConfig{}, &clock,
                                   &dev.injector);
  TincaConfig cfg;
  cfg.ring_bytes = 8192;
  cfg.cleaner.mode = cleaner::CleanerMode::kStepped;
  auto cache = TincaCache::format(dev, disk, cfg);

  disk.mark_bad(9);
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, 1);
  auto txn = cache->tinca_init_txn();
  txn.add(9, b);
  cache->tinca_commit(txn);
  cache->cleaner()->try_enqueue(9);

  // Enough steps to cover several backoff rounds.
  const std::uint32_t rounds =
      3 * (cfg.cleaner.retry_backoff_steps + 1);
  for (std::uint32_t i = 0; i < rounds; ++i) cache->cleaner_step();

  const cleaner::CleanerStats& s = cache->cleaner()->stats();
  EXPECT_GT(s.failures, 1u);                      // failed more than once
  EXPECT_GT(s.retries, 0u);                       // ... via backed-off retries
  EXPECT_GE(s.failures, s.retries);               // one probe per quantum
  EXPECT_EQ(s.retired, 0u);
  EXPECT_GE(cache->quarantined_blocks(), 1u);     // DESIGN.md §9 kicked in
  // The block stays dirty in NVM and stays readable.
  EXPECT_GE(cache->dirty_blocks(), 1u);
  std::vector<std::byte> got(kBlockSize);
  cache->read_block(9, got);
  EXPECT_EQ(got, b);
}

TEST(Cleaner, PacerClampsAndMetersTokens) {
  cleaner::Pacer pacer(4);
  EXPECT_EQ(pacer.tokens(), 0);
  EXPECT_FALSE(pacer.try_take());
  pacer.grant(10);  // clamped at capacity
  EXPECT_EQ(pacer.tokens(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(pacer.try_take());
  EXPECT_FALSE(pacer.try_take());
  pacer.grant(1);
  EXPECT_TRUE(pacer.try_take());
}

TEST(Cleaner, PacerThrottlesStepDrains) {
  Fixture f;
  // Private pacer with a 1-token budget and 1-token grants: at most one
  // retirement per step no matter how full the queue is.
  f.cache.reset();
  f.cfg.cleaner.pacer = std::make_shared<cleaner::Pacer>(1);
  f.cfg.cleaner.pacer_grant_per_step = 1;
  f.cache = TincaCache::format(f.dev, f.disk, f.cfg);
  f.fill_dirty(6);
  for (std::uint64_t i = 0; i < 6; ++i) f.cache->cleaner()->try_enqueue(i);
  std::uint64_t prev = 0;
  for (int i = 0; i < 6; ++i) {
    f.cache->cleaner_step();
    const std::uint64_t now = f.cache->cleaner()->stats().retired;
    EXPECT_LE(now - prev, 1u);
    prev = now;
  }
  EXPECT_EQ(prev, 6u);
}

TEST(Cleaner, ThreadModeDrainsShardsUnderTheirMutexes) {
  sim::SimClock clock;
  nvm::NvmDevice dev{2 * kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice disk{1 << 16};
  shard::ShardedConfig cfg;
  cfg.num_shards = 2;
  cfg.shard.ring_bytes = 8192;
  cfg.shard.cleaner.mode = cleaner::CleanerMode::kThread;
  cfg.shard.cleaner.thread_poll_us = 50;
  // 64 blocks over 2 shards is ~27% dirty; drop the watermarks so the
  // threads actually have work without overcommitting the cache.
  cfg.shard.cleaner.high_water_pct = 10;
  cfg.shard.cleaner.low_water_pct = 0;
  auto st = shard::ShardedTinca::format(dev, disk, cfg);

  std::vector<std::byte> b(kBlockSize);
  for (std::uint64_t i = 0; i < 64; ++i) {
    fill_pattern(b, i + 1);
    auto txn = st->init_txn();
    txn.add(i, b);
    st->commit(txn);
  }

  st->start_cleaner_threads();
  // Real threads, real time: poll until the dirty set visibly shrinks.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (st->aggregated_stats().background_cleanings > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  st->stop_cleaner_threads();
  EXPECT_GT(st->aggregated_stats().background_cleanings, 0u);

  // Everything is still readable after concurrent cleaning.
  for (std::uint64_t i = 0; i < 64; ++i) {
    fill_pattern(b, i + 1);
    std::vector<std::byte> got(kBlockSize);
    st->read_block(i, got);
    EXPECT_EQ(got, b) << "blkno " << i;
  }
}

TEST(Cleaner, UbjCleanerCheckpointsFifoBySequence) {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice disk{1 << 16};
  ubj::UbjConfig cfg;
  cfg.cleaner.mode = cleaner::CleanerMode::kStepped;
  auto store = ubj::UbjStore::format(dev, disk, cfg);

  std::vector<std::byte> b(kBlockSize);
  for (std::uint64_t t = 0; t < 8; ++t) {
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> blocks;
    fill_pattern(b, t + 1);
    blocks.emplace_back(t, b);
    store->commit_txn(blocks);
  }
  ASSERT_GT(store->frozen_blocks(), 0u);

  // Commits enqueue their seqs; steps trickle them out front-to-back.
  for (int i = 0; i < 50 && store->frozen_blocks() > 0; ++i)
    store->cleaner_step();
  EXPECT_EQ(store->frozen_blocks(), 0u);
  EXPECT_EQ(store->stats().checkpointed_txns, 8u);
  EXPECT_GT(store->cleaner()->stats().retired, 0u);

  // Checkpointed data is durable: a remount reads every block back.
  store.reset();
  store = ubj::UbjStore::recover(dev, disk, cfg);
  for (std::uint64_t t = 0; t < 8; ++t) {
    fill_pattern(b, t + 1);
    std::vector<std::byte> got(kBlockSize);
    store->read_block(t, got);
    EXPECT_EQ(got, b) << "blkno " << t;
  }
}

TEST(Cleaner, MetricsExposeQueueDepthAndDrainLag) {
  Fixture f;
  f.fill_dirty(6);
  for (std::uint64_t i = 0; i < 6; ++i) f.cache->cleaner()->try_enqueue(i);
  obs::MetricsRegistry reg;
  f.cache->register_metrics(reg, "tinca.");
  ASSERT_TRUE(reg.has("tinca.cleaner.queue_depth"));
  ASSERT_TRUE(reg.has("tinca.cleaner.retired"));
  ASSERT_TRUE(reg.has("tinca.cleaner.drain_lag"));
  EXPECT_EQ(reg.value("tinca.cleaner.queue_depth"), 6u);

  while (f.cache->cleaner()->queue_depth() > 0) f.cache->cleaner_step();
  EXPECT_EQ(reg.value("tinca.cleaner.queue_depth"), 0u);
  EXPECT_EQ(reg.value("tinca.cleaner.retired"), 6u);
  const Histogram* lag = reg.histogram("tinca.cleaner.drain_lag");
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->count(), 6u);
}

TEST(Cleaner, QueueDepthGaugeIsExactAcrossFailureRequeues) {
  // Regression for the queue_depth gauge: a key bouncing through the
  // failure-retry queue must count exactly once (queue_ + retry_, never
  // both, never neither), and its drain-lag sample must be recorded exactly
  // once — at retirement, against the ORIGINAL enqueue time — no matter how
  // many failed attempts happened in between.
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice mem{1 << 16};
  blockdev::FaultyBlockDevice disk(mem, blockdev::FaultConfig{}, &clock,
                                   &dev.injector);
  TincaConfig cfg;
  cfg.ring_bytes = 8192;
  cfg.cleaner.mode = cleaner::CleanerMode::kStepped;
  auto cache = TincaCache::format(dev, disk, cfg);
  cleaner::Cleaner& cl = *cache->cleaner();

  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, 1);
  auto txn = cache->tinca_init_txn();
  txn.add(5, b);
  cache->tinca_commit(txn);

  disk.mark_bad(5);
  EXPECT_TRUE(cl.try_enqueue(5));
  EXPECT_EQ(cl.queue_depth(), 1u);
  // Stall well past any single I/O's virtual cost: if the failure requeue
  // were to re-stamp the key's enqueue time, the final drain-lag sample
  // would miss this window and come out far below kStallNs.
  constexpr std::uint64_t kStallNs = 10'000'000;
  clock.advance(kStallNs);

  // First attempt fails: the key moves queue_ -> retry_.  The gauge must
  // not drop to 0 (the key is still the cleaner's obligation) and must not
  // read 2 (it is one key, not two), and no drain-lag sample exists yet.
  cache->cleaner_step();
  EXPECT_EQ(cl.stats().failures, 1u);
  EXPECT_EQ(cl.queue_depth(), 1u);
  EXPECT_TRUE(cl.pending(5));
  EXPECT_EQ(cl.stats().drain_lag.count(), 0u);

  // Through the whole backoff window the gauge stays pinned at 1.
  for (std::uint32_t i = 0; i < cfg.cleaner.retry_backoff_steps - 1; ++i) {
    cache->cleaner_step();
    ASSERT_EQ(cl.queue_depth(), 1u) << "step " << i;
  }

  // Sector recovers; the due retry retires the key.
  disk.heal(5);
  for (int i = 0; i < 20 && cl.queue_depth() > 0; ++i) cache->cleaner_step();
  EXPECT_EQ(cl.queue_depth(), 0u);
  EXPECT_FALSE(cl.pending(5));
  EXPECT_EQ(cl.stats().retired, 1u);
  EXPECT_GE(cl.stats().retries, 1u);
  // Exactly one drain-lag sample, measured from the original enqueue — the
  // requeue must not have reset the key's enqueue timestamp, so the sample
  // covers the whole failed-and-backed-off window including the stall.
  ASSERT_EQ(cl.stats().drain_lag.count(), 1u);
  EXPECT_GE(cl.stats().drain_lag.max(), kStallNs)
      << "drain-lag sample lost the pre-failure wait: the requeue reset the "
         "key's enqueue timestamp";
}

TEST(Cleaner, PinnedRequeueKeepsDepthAndDefersDrainLag) {
  // Same gauge contract on the kPinned path: a snapshot pin makes the
  // block's disk write deferrable (DESIGN.md §12), the cleaner requeues it
  // each quantum, and the gauge must hold steady at 1 with no premature
  // drain-lag sample until the pin is released and the key finally retires.
  Fixture f;
  const SnapshotPin pin = f.cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());
  f.commit_one(7, 3);  // committed after the pin: disk write must defer

  cleaner::Cleaner& cl = *f.cache->cleaner();
  EXPECT_TRUE(cl.try_enqueue(7));
  for (int i = 0; i < 5; ++i) {
    f.cache->cleaner_step();
    ASSERT_EQ(cl.queue_depth(), 1u) << "step " << i;
  }
  EXPECT_GE(cl.stats().pinned_requeues, 5u);
  EXPECT_EQ(cl.stats().retired, 0u);
  EXPECT_EQ(cl.stats().drain_lag.count(), 0u);
  EXPECT_EQ(f.cache->dirty_blocks(), 1u);

  f.cache->snapshot_unpin(pin);
  for (int i = 0; i < 10 && cl.queue_depth() > 0; ++i) f.cache->cleaner_step();
  EXPECT_EQ(cl.queue_depth(), 0u);
  EXPECT_EQ(cl.stats().retired, 1u);
  EXPECT_EQ(cl.stats().drain_lag.count(), 1u);
  EXPECT_EQ(f.cache->dirty_blocks(), 0u);
}

TEST(Cleaner, FullyQuarantinedCacheRecoversEvictionAfterHeal) {
  // Regression for the eviction scan-cursor staleness: fill the cache with
  // dirty blocks, fail every disk write so the cleaner quarantines all of
  // them, then heal the device.  The next write miss finds no evictable
  // victim on its first scan (everything quarantined), must fall back to a
  // blocking cleaner drain — which now succeeds and de-quarantines — and
  // must then RESCAN FROM THE LRU END rather than resuming a stale cursor
  // that has already walked past every victim.  One write_block call, no
  // wedge.
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice mem{1 << 16};
  blockdev::FaultyBlockDevice disk(mem, blockdev::FaultConfig{}, &clock,
                                   &dev.injector);
  TincaConfig cfg;
  cfg.ring_bytes = 8192;
  cfg.cleaner.mode = cleaner::CleanerMode::kStepped;
  auto cache = TincaCache::format(dev, disk, cfg);

  // Fill to capacity with dirty blocks.
  std::vector<std::uint64_t> blocks;
  std::uint64_t next = 0;
  std::vector<std::byte> b(kBlockSize);
  while (cache->free_blocks() > 0) {
    fill_pattern(b, next + 1);
    auto txn = cache->tinca_init_txn();
    txn.add(next, b);
    cache->tinca_commit(txn);
    blocks.push_back(next++);
  }
  ASSERT_GT(blocks.size(), 8u);

  // Every sector is bad: cleaner attempts quarantine all of them (and keep
  // them on the retry queue — quarantine must stay leavable, DESIGN.md §9).
  for (std::uint64_t blkno : blocks) disk.mark_bad(blkno);
  for (std::uint64_t blkno : blocks)
    ASSERT_TRUE(cache->cleaner()->try_enqueue(blkno));
  for (int i = 0; i < 40 && cache->quarantined_blocks() < blocks.size(); ++i)
    cache->cleaner_step();
  ASSERT_EQ(cache->quarantined_blocks(), blocks.size());
  ASSERT_EQ(cache->cleaner()->queue_depth(), blocks.size());

  // The disk comes back.  A single write miss must recover end to end:
  // backpressure-drain the healed blocks, de-quarantine, evict one victim.
  for (std::uint64_t blkno : blocks) disk.heal(blkno);
  fill_pattern(b, 777);
  cache->write_block(blocks.size(), b);

  EXPECT_GE(cache->stats().evictions, 1u);
  EXPECT_GT(cache->cleaner()->stats().backpressure_drains, 0u);
  EXPECT_EQ(cache->quarantined_blocks(), 0u);
  std::vector<std::byte> got(kBlockSize);
  cache->read_block(blocks.size(), got);
  EXPECT_EQ(got, b);
  // Nothing was lost along the way.
  for (std::uint64_t blkno : blocks) {
    fill_pattern(b, blkno + 1);
    cache->read_block(blkno, got);
    ASSERT_EQ(got, b) << "blkno " << blkno;
  }
}

}  // namespace
}  // namespace tinca::core
