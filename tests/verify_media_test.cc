// Tests for the Tinca media verifier, including its use as a post-crash
// oracle: after a crash at any commit step, the raw (pre-recovery) media
// must still satisfy the structural invariants, and after recovery it must
// be fully clean.
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/tinca_cache.h"
#include "tinca/verify.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 1 << 20;
constexpr std::uint64_t kRing = 4096;

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, nvdimm_profile(), clock};
  blockdev::MemBlockDevice disk{1 << 14};
  std::unique_ptr<TincaCache> cache;

  Fixture() {
    cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = kRing});
  }

  std::vector<std::byte> block(std::uint64_t seed) const {
    std::vector<std::byte> b(kBlockSize);
    fill_pattern(b, seed);
    return b;
  }
};

TEST(VerifyMedia, FreshDeviceIsClean) {
  Fixture f;
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_EQ(r.valid_entries, 0u);
  EXPECT_EQ(r.in_flight, 0u);
}

TEST(VerifyMedia, PopulatedDeviceIsClean) {
  Fixture f;
  for (std::uint64_t i = 0; i < 32; ++i) f.cache->write_block(i, f.block(i));
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_EQ(r.valid_entries, 32u);
  EXPECT_EQ(r.log_entries, 0u);
}

TEST(VerifyMedia, DetectsForeignDevice) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  const Layout layout = Layout::compute(kNvmBytes, kRing);
  const MediaReport r = verify_media(dev, layout);
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, DetectsRingCorruption) {
  Fixture f;
  // Forge a checksum-valid commit record at the scan start (index 0, hint 0)
  // whose batch_start does not seal the run before it — the one ring state
  // no crash can produce.
  const std::uint64_t epoch = f.dev.load8(Layout::kFormatEpochOff);
  const std::uint64_t w0 = 2u | (1u << 2);  // commit record, txn_count 1
  const std::uint64_t w1 = 0;
  const std::uint64_t w2 = 5;  // claims the batch started at index 5
  std::array<std::byte, Layout::kRingSlotBytes> raw{};
  store_le(raw.data(), w0, 8);
  store_le(raw.data() + 8, w1, 8);
  store_le(raw.data() + 16, w2, 8);
  store_le(raw.data() + 24, RingBuffer::checksum(w0, w1, w2, 0, epoch), 8);
  f.dev.store(f.cache->layout().ring_slot_off(0), raw);
  f.dev.persist(f.cache->layout().ring_slot_off(0), Layout::kRingSlotBytes);
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, DetectsDuplicateDiskMapping) {
  Fixture f;
  f.cache->write_block(5, f.block(1));
  // Forge a second entry for disk block 5 in an unused slot.
  CacheEntry forged;
  forged.valid = true;
  forged.role = Role::kBuffer;
  forged.modified = true;
  forged.disk_blkno = 5;
  forged.prev_nvm = CacheEntry::kFresh;
  forged.curr_nvm = 99;
  const std::uint64_t off = f.cache->layout().entry_off(200);
  f.dev.atomic_store16(off, forged.encode());
  f.dev.persist(off, 16);
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, DetectsSharedNvmBlock) {
  Fixture f;
  f.cache->write_block(5, f.block(1));
  const std::uint32_t owned = f.cache->entry_for(5).curr_nvm;
  CacheEntry forged;
  forged.valid = true;
  forged.disk_blkno = 77;
  forged.prev_nvm = CacheEntry::kFresh;
  forged.curr_nvm = owned;  // steals block 5's NVM block
  const std::uint64_t off = f.cache->layout().entry_off(201);
  f.dev.atomic_store16(off, forged.encode());
  f.dev.persist(off, 16);
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, DetectsOutOfRangePointer) {
  Fixture f;
  CacheEntry forged;
  forged.valid = true;
  forged.disk_blkno = 9;
  forged.prev_nvm = CacheEntry::kFresh;
  forged.curr_nvm = 0xFFFFFF;  // way past the data area
  const std::uint64_t off = f.cache->layout().entry_off(10);
  f.dev.atomic_store16(off, forged.encode());
  f.dev.persist(off, 16);
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, HoldsAtEveryCrashPointAndAfterRecovery) {
  // The strongest use: structural invariants must hold on the raw media
  // after a crash at *any* commit step (before recovery!), and recovery
  // must leave zero log entries and a closed ring.
  const Layout layout = Layout::compute(kNvmBytes, kRing);
  // Learn the step count.
  std::uint64_t steps = 0;
  {
    Fixture f;
    f.dev.injector.disarm();
    auto txn = f.cache->tinca_init_txn();
    for (std::uint64_t b = 0; b < 6; ++b) txn.add(b, f.block(b));
    f.cache->tinca_commit(txn);
    auto txn2 = f.cache->tinca_init_txn();
    for (std::uint64_t b = 0; b < 6; ++b) txn2.add(b + 3, f.block(b + 50));
    f.cache->tinca_commit(txn2);
    steps = f.dev.injector.steps_seen();
  }
  Rng rng(31);
  for (std::uint64_t step = 1; step <= steps; ++step) {
    Fixture f;
    f.dev.injector.arm(step);
    try {
      auto txn = f.cache->tinca_init_txn();
      for (std::uint64_t b = 0; b < 6; ++b) txn.add(b, f.block(b));
      f.cache->tinca_commit(txn);
      auto txn2 = f.cache->tinca_init_txn();
      for (std::uint64_t b = 0; b < 6; ++b) txn2.add(b + 3, f.block(b + 50));
      f.cache->tinca_commit(txn2);
    } catch (const nvm::CrashException&) {
    }
    f.dev.injector.disarm();
    f.dev.crash(rng, 0.5);

    const MediaReport raw = verify_media(f.dev, layout);
    ASSERT_TRUE(raw.ok) << "raw media corrupt after crash at step " << step
                        << ": " << (raw.problems.empty() ? "?" : raw.problems[0]);

    auto recovered =
        TincaCache::recover(f.dev, f.disk, TincaConfig{.ring_bytes = kRing});
    const MediaReport clean = verify_media(f.dev, layout);
    ASSERT_TRUE(clean.ok);
    ASSERT_EQ(clean.log_entries, 0u) << "log entry survived recovery, step " << step;
    ASSERT_EQ(clean.in_flight, 0u) << "ring left open by recovery, step " << step;
  }
}

}  // namespace
}  // namespace tinca::core
