// Tests for the Tinca media verifier, including its use as a post-crash
// oracle: after a crash at any commit step, the raw (pre-recovery) media
// must still satisfy the structural invariants, and after recovery it must
// be fully clean.
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "nvlog/log_meta.h"
#include "nvlog/nvlog_tier.h"
#include "tinca/tinca_cache.h"
#include "tinca/verify.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 1 << 20;
constexpr std::uint64_t kRing = 4096;

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, nvdimm_profile(), clock};
  blockdev::MemBlockDevice disk{1 << 14};
  std::unique_ptr<TincaCache> cache;

  Fixture() {
    cache = TincaCache::format(dev, disk, TincaConfig{.ring_bytes = kRing});
  }

  std::vector<std::byte> block(std::uint64_t seed) const {
    std::vector<std::byte> b(kBlockSize);
    fill_pattern(b, seed);
    return b;
  }
};

TEST(VerifyMedia, FreshDeviceIsClean) {
  Fixture f;
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_EQ(r.valid_entries, 0u);
  EXPECT_EQ(r.in_flight, 0u);
}

TEST(VerifyMedia, PopulatedDeviceIsClean) {
  Fixture f;
  for (std::uint64_t i = 0; i < 32; ++i) f.cache->write_block(i, f.block(i));
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_EQ(r.valid_entries, 32u);
  EXPECT_EQ(r.log_entries, 0u);
}

TEST(VerifyMedia, DetectsForeignDevice) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  const Layout layout = Layout::compute(kNvmBytes, kRing);
  const MediaReport r = verify_media(dev, layout);
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, DetectsRingCorruption) {
  Fixture f;
  // Forge a checksum-valid commit record at the scan start (index 0, hint 0)
  // whose batch_start does not seal the run before it — the one ring state
  // no crash can produce.
  const std::uint64_t epoch = f.dev.load8(Layout::kFormatEpochOff);
  const std::uint64_t w0 = 2u | (1u << 2);  // commit record, txn_count 1
  const std::uint64_t w1 = 0;
  const std::uint64_t w2 = 5;  // claims the batch started at index 5
  std::array<std::byte, Layout::kRingSlotBytes> raw{};
  store_le(raw.data(), w0, 8);
  store_le(raw.data() + 8, w1, 8);
  store_le(raw.data() + 16, w2, 8);
  store_le(raw.data() + 24, RingBuffer::checksum(w0, w1, w2, 0, epoch), 8);
  f.dev.store(f.cache->layout().ring_slot_off(0), raw);
  f.dev.persist(f.cache->layout().ring_slot_off(0), Layout::kRingSlotBytes);
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, DetectsDuplicateDiskMapping) {
  Fixture f;
  f.cache->write_block(5, f.block(1));
  // Forge a second entry for disk block 5 in an unused slot.
  CacheEntry forged;
  forged.valid = true;
  forged.role = Role::kBuffer;
  forged.modified = true;
  forged.disk_blkno = 5;
  forged.prev_nvm = CacheEntry::kFresh;
  forged.curr_nvm = 99;
  const std::uint64_t off = f.cache->layout().entry_off(200);
  f.dev.atomic_store16(off, forged.encode());
  f.dev.persist(off, 16);
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, DetectsSharedNvmBlock) {
  Fixture f;
  f.cache->write_block(5, f.block(1));
  const std::uint32_t owned = f.cache->entry_for(5).curr_nvm;
  CacheEntry forged;
  forged.valid = true;
  forged.disk_blkno = 77;
  forged.prev_nvm = CacheEntry::kFresh;
  forged.curr_nvm = owned;  // steals block 5's NVM block
  const std::uint64_t off = f.cache->layout().entry_off(201);
  f.dev.atomic_store16(off, forged.encode());
  f.dev.persist(off, 16);
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, DetectsOutOfRangePointer) {
  Fixture f;
  CacheEntry forged;
  forged.valid = true;
  forged.disk_blkno = 9;
  forged.prev_nvm = CacheEntry::kFresh;
  forged.curr_nvm = 0xFFFFFF;  // way past the data area
  const std::uint64_t off = f.cache->layout().entry_off(10);
  f.dev.atomic_store16(off, forged.encode());
  f.dev.persist(off, 16);
  const MediaReport r = verify_media(f.dev, f.cache->layout());
  EXPECT_FALSE(r.ok);
}

TEST(VerifyMedia, HoldsAtEveryCrashPointAndAfterRecovery) {
  // The strongest use: structural invariants must hold on the raw media
  // after a crash at *any* commit step (before recovery!), and recovery
  // must leave zero log entries and a closed ring.
  const Layout layout = Layout::compute(kNvmBytes, kRing);
  // Learn the step count.
  std::uint64_t steps = 0;
  {
    Fixture f;
    f.dev.injector.disarm();
    auto txn = f.cache->tinca_init_txn();
    for (std::uint64_t b = 0; b < 6; ++b) txn.add(b, f.block(b));
    f.cache->tinca_commit(txn);
    auto txn2 = f.cache->tinca_init_txn();
    for (std::uint64_t b = 0; b < 6; ++b) txn2.add(b + 3, f.block(b + 50));
    f.cache->tinca_commit(txn2);
    steps = f.dev.injector.steps_seen();
  }
  Rng rng(31);
  for (std::uint64_t step = 1; step <= steps; ++step) {
    Fixture f;
    f.dev.injector.arm(step);
    try {
      auto txn = f.cache->tinca_init_txn();
      for (std::uint64_t b = 0; b < 6; ++b) txn.add(b, f.block(b));
      f.cache->tinca_commit(txn);
      auto txn2 = f.cache->tinca_init_txn();
      for (std::uint64_t b = 0; b < 6; ++b) txn2.add(b + 3, f.block(b + 50));
      f.cache->tinca_commit(txn2);
    } catch (const nvm::CrashException&) {
    }
    f.dev.injector.disarm();
    f.dev.crash(rng, 0.5);

    const MediaReport raw = verify_media(f.dev, layout);
    ASSERT_TRUE(raw.ok) << "raw media corrupt after crash at step " << step
                        << ": " << (raw.problems.empty() ? "?" : raw.problems[0]);

    auto recovered =
        TincaCache::recover(f.dev, f.disk, TincaConfig{.ring_bytes = kRing});
    const MediaReport clean = verify_media(f.dev, layout);
    ASSERT_TRUE(clean.ok);
    ASSERT_EQ(clean.log_entries, 0u) << "log entry survived recovery, step " << step;
    ASSERT_EQ(clean.in_flight, 0u) << "ring left open by recovery, step " << step;
  }
}

// --- NvLog watermark-ring walk (verify_nvlog_media, DESIGN.md §16). ---

struct NvLogFixture {
  static constexpr std::size_t kLogBytes = 1 << 19;
  sim::SimClock clock;
  nvm::NvmDevice dev{kLogBytes, nvdimm_profile(), clock};
  struct Sink : nvlog::NvLogTier::DrainSink {
    void drain_apply(const DrainBatch& blocks) override { (void)blocks; }
  } sink;
  nvlog::NvLogConfig cfg;
  std::unique_ptr<nvlog::NvLogTier> tier;
  std::uint64_t seed = 1;

  NvLogFixture() {
    cfg.segment_bytes = 64 * 1024;
    tier = nvlog::NvLogTier::format(dev, cfg);
  }

  /// Absorb one block and immediately drain everything: seals the active
  /// segment, recycles it, and persists one fresh watermark ring record —
  /// each call advances the watermark epoch by exactly one.
  void rotate_once() {
    std::vector<std::byte> b(blockdev::kBlockSize);
    fill_pattern(b, seed++);
    std::vector<std::pair<std::uint64_t, std::span<const std::byte>>> blocks;
    blocks.emplace_back(seed, b);
    tier->absorb_commit(blocks, sink);
    tier->drain_all(sink);
  }

  void corrupt_slot(std::uint64_t slot) {
    std::array<std::byte, nvlog::kWatermarkSlotBytes> raw{};
    dev.load(nvlog::watermark_slot_off(slot), raw);
    raw[nvlog::kWmCrcAt] ^= std::byte{0xFF};
    dev.store(nvlog::watermark_slot_off(slot), raw);
    dev.persist(nvlog::watermark_slot_off(slot), raw.size());
  }
};

TEST(VerifyNvLogMedia, FreshFormatMountsEpochOne) {
  NvLogFixture f;
  const MediaReport r = verify_nvlog_media(f.dev);
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_EQ(r.wm_winning_epoch, 1u);
  EXPECT_EQ(r.wm_winning_slot, nvlog::watermark_slot_of(1, f.cfg.watermark_slots));
  EXPECT_EQ(r.wm_oldest_live_seq, 1u);
  EXPECT_EQ(r.wm_stale_records, 0u);
}

TEST(VerifyNvLogMedia, RotationReportsWinnerAndStaleRecords) {
  NvLogFixture f;
  for (int i = 0; i < 4; ++i) f.rotate_once();
  const std::uint64_t epoch = f.tier->watermark_epoch();
  ASSERT_EQ(epoch, 5u);  // format's epoch 1 + four advances

  const MediaReport r = verify_nvlog_media(f.dev);
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_EQ(r.wm_winning_epoch, epoch);
  EXPECT_EQ(r.wm_winning_slot,
            nvlog::watermark_slot_of(epoch, f.cfg.watermark_slots));
  EXPECT_EQ(r.wm_oldest_live_seq, f.tier->oldest_live_seq());
  // Earlier epochs still sit in their own slots, valid but outdated.
  EXPECT_EQ(r.wm_stale_records, epoch - 1);
}

TEST(VerifyNvLogMedia, TornWinnerFallsBackToPreviousEpoch) {
  NvLogFixture f;
  for (int i = 0; i < 4; ++i) f.rotate_once();
  const std::uint64_t epoch = f.tier->watermark_epoch();
  f.corrupt_slot(nvlog::watermark_slot_of(epoch, f.cfg.watermark_slots));

  // A torn record fails closed: the walk (like recovery) mounts the
  // previous epoch instead of flagging the device.
  const MediaReport r = verify_nvlog_media(f.dev);
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_EQ(r.wm_winning_epoch, epoch - 1);
  EXPECT_EQ(r.wm_stale_records, epoch - 2);
}

TEST(VerifyNvLogMedia, NoValidRecordIsFatal) {
  NvLogFixture f;
  for (std::uint64_t s = 0; s < f.cfg.watermark_slots; ++s) f.corrupt_slot(s);
  const MediaReport r = verify_nvlog_media(f.dev);
  EXPECT_FALSE(r.ok);
}

TEST(VerifyNvLogMedia, ReformatSaltsOutThePreviousLife) {
  NvLogFixture f;
  for (int i = 0; i < 4; ++i) f.rotate_once();
  // Reformat the same device: the nonce bump must invalidate every record
  // the previous life left in the ring, even though the bytes are intact.
  f.tier = nvlog::NvLogTier::format(f.dev, f.cfg);
  const MediaReport r = verify_nvlog_media(f.dev);
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_EQ(r.wm_winning_epoch, 1u);
  EXPECT_EQ(r.wm_stale_records, 0u);
}

}  // namespace
}  // namespace tinca::core
