// Tests for the MVCC snapshot layer (DESIGN.md §12): the MvccTable version
// chains in isolation, then the TincaCache snapshot surface built on them —
// commit-boundary pinning, disk fallback with the write-defer rule, recovery
// baseline seeding, and the parked-block lifecycle when a pinned reader
// overlaps eviction pressure.
#include <gtest/gtest.h>

#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/expect.h"
#include "tinca/mvcc.h"
#include "tinca/tinca_cache.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 256 << 10;
constexpr std::uint64_t kDiskBlocks = 1 << 14;

TincaConfig small_cfg() { return TincaConfig{.ring_bytes = 4096}; }

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

/// Commit single-block write transactions for distinct blocks until exactly
/// `leave_free` NVM data blocks remain free.
std::vector<std::uint64_t> fill_cache(TincaCache& cache,
                                      std::uint64_t leave_free) {
  std::vector<std::uint64_t> blocks;
  std::uint64_t next = 0;
  while (cache.free_blocks() > leave_free) {
    cache.write_block(next, block_of(next + 1));
    blocks.push_back(next++);
  }
  return blocks;
}

// --- MvccTable in isolation --------------------------------------------------

TEST(MvccTable, PinCapturesEpochAndResolvesNewestNotAbove) {
  MvccTable t(64);
  EXPECT_EQ(t.epoch(), 1u);

  t.publish(7, 10);  // visible at epoch 2
  t.bump();
  const SnapshotPin p2 = t.pin();
  ASSERT_TRUE(p2.valid());
  EXPECT_EQ(p2.epoch, 2u);

  t.publish(7, 11);  // epoch 3
  t.bump();
  t.publish(7, 12);  // epoch 4
  t.bump();

  // The old pin stops below the versions published after it...
  const VersionRec* rec = t.resolve(7, p2.epoch);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->epoch, 2u);
  EXPECT_EQ(rec->nvm_block, 10u);
  // ... while a fresh pin resolves to the newest.
  const SnapshotPin p4 = t.pin();
  EXPECT_EQ(p4.epoch, 4u);
  rec = t.resolve(7, p4.epoch);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->nvm_block, 12u);
  // A block never published resolves to nothing (disk fallback).
  EXPECT_EQ(t.resolve(8, p4.epoch), nullptr);

  t.unpin(p2);
  t.unpin(p4);
}

TEST(MvccTable, BaselineIsVisibleToEveryPossiblePin) {
  MvccTable t(64);
  t.publish_baseline(11, 50);  // epoch 1 <= every pin
  const SnapshotPin p = t.pin();
  ASSERT_TRUE(p.valid());
  const VersionRec* rec = t.resolve(11, p.epoch);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->epoch, 1u);
  EXPECT_EQ(rec->nvm_block, 50u);
  t.unpin(p);
}

TEST(MvccTable, TrimWaitsForTheOldestPin) {
  MvccTable t(64);
  t.publish(7, 10);
  t.bump();  // v@2
  const SnapshotPin pin = t.pin();
  t.publish(7, 11);
  t.bump();  // v@3
  t.publish(7, 12);
  t.bump();  // v@4
  EXPECT_EQ(t.live_versions(), 3u);

  std::vector<std::uint32_t> freed;
  t.reclaim(freed);
  // The pin at epoch 2 still reaches v@2: nothing may be trimmed.
  EXPECT_TRUE(freed.empty());
  EXPECT_EQ(t.live_versions(), 3u);
  ASSERT_NE(t.resolve(7, pin.epoch), nullptr);
  EXPECT_EQ(t.resolve(7, pin.epoch)->nvm_block, 10u);

  t.unpin(pin);
  t.reclaim(freed);
  // Floor rose to the current epoch: only the newest version survives and
  // the suffix's NVM blocks come back for reuse.
  EXPECT_EQ(t.live_versions(), 1u);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{11, 10}));
  EXPECT_EQ(t.stats.versions_trimmed.load(), 2u);
  EXPECT_EQ(t.resolve(7, t.epoch())->nvm_block, 12u);
}

TEST(MvccTable, RetiredChainUnlinksUnderPinAndFreesAfterUnpin) {
  MvccTable t(64);
  t.publish(9, 20);
  t.bump();  // v@2
  const SnapshotPin pin = t.pin();

  t.retire(9);
  EXPECT_EQ(t.retired_nodes(), 1u);
  // Still resolvable until reclamation decides otherwise.
  ASSERT_NE(t.resolve(9, pin.epoch), nullptr);

  std::vector<std::uint32_t> freed;
  t.reclaim(freed);
  // floor == head epoch: unlink is allowed (disk already holds the head's
  // bytes, readers fall back there) but the free must wait out the pin.
  EXPECT_EQ(t.resolve(9, pin.epoch), nullptr);
  EXPECT_TRUE(freed.empty());
  EXPECT_EQ(t.retired_nodes(), 1u);

  t.unpin(pin);
  t.reclaim(freed);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{20}));
  EXPECT_EQ(t.retired_nodes(), 0u);
  EXPECT_EQ(t.stats.nodes_freed.load(), 1u);
  EXPECT_EQ(t.live_versions(), 0u);
}

TEST(MvccTable, ReclaimWithEmptyRegistryFreesARetiredChainInOnePass) {
  // Regression: eviction on a full cache calls reclaim() once and must see
  // the NVM blocks of an unpinned retired chain immediately — unlink and
  // free used to be forced into separate passes even with no pins live.
  MvccTable t(64);
  t.publish(5, 30);
  t.bump();
  t.retire(5);
  std::vector<std::uint32_t> freed;
  t.reclaim(freed);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{30}));
  EXPECT_EQ(t.retired_nodes(), 0u);
}

TEST(MvccTable, ReCachedBlockShadowsItsRetiredChain) {
  MvccTable t(64);
  t.publish(3, 40);
  t.bump();  // v@2
  const SnapshotPin old_pin = t.pin();
  t.retire(3);         // evicted ...
  t.publish(3, 41);    // ... and re-cached: a fresh node in the same bucket
  t.bump();            // v@3

  // The old pin resolves through the retired chain; a new pin sees only the
  // fresh node.  Ownership follows the live chain.
  ASSERT_NE(t.resolve(3, old_pin.epoch), nullptr);
  EXPECT_EQ(t.resolve(3, old_pin.epoch)->nvm_block, 40u);
  EXPECT_EQ(t.resolve(3, t.epoch())->nvm_block, 41u);
  EXPECT_TRUE(t.owns(3, 41));
  EXPECT_FALSE(t.owns(3, 40));

  t.unpin(old_pin);
  std::vector<std::uint32_t> freed;
  t.reclaim(freed);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{40}));
  // Old history is gone; the live chain is untouched.
  EXPECT_EQ(t.resolve(3, 2), nullptr);
  EXPECT_EQ(t.resolve(3, t.epoch())->nvm_block, 41u);
}

TEST(MvccTable, PinRegistryExhaustionFailsTheExtraPin) {
  MvccTable t(16);
  std::vector<SnapshotPin> pins;
  for (int i = 0; i < 256; ++i) {
    pins.push_back(t.pin());
    ASSERT_TRUE(pins.back().valid()) << "slot " << i;
  }
  const SnapshotPin extra = t.pin();
  EXPECT_FALSE(extra.valid());
  EXPECT_EQ(t.stats.lock_fallbacks.load(), 1u);
  for (const SnapshotPin& p : pins) t.unpin(p);
  EXPECT_TRUE(t.pin().valid());  // slots come back
}

// --- TincaCache snapshot surface ---------------------------------------------

TEST(TincaSnapshot, PinFreezesTheCommittedBoundary) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());

  cache->write_block(7, block_of(1));
  const SnapshotPin pin = cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());
  cache->write_block(7, block_of(2));

  std::vector<std::byte> got(kBlockSize);
  cache->snapshot_read(pin, 7, got);
  EXPECT_EQ(got, block_of(1)) << "snapshot must see the pinned boundary";
  cache->read_block(7, got);
  EXPECT_EQ(got, block_of(2)) << "ordinary reads see the newest commit";
  EXPECT_GE(cache->mvcc().stats.snapshot_reads.load(), 1u);
  cache->snapshot_unpin(pin);
}

TEST(TincaSnapshot, UnversionedBlockFallsBackToDiskAndDefersItsWriteback) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());

  const SnapshotPin pin = cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());
  cache->write_block(9, block_of(5));  // committed after the pin

  // No version <= the pin exists: the snapshot read falls through to disk,
  // which still holds the pre-transaction (zero) image.
  std::vector<std::byte> got(kBlockSize);
  EXPECT_FALSE(cache->snapshot_try_read(pin, 9, got));
  cache->snapshot_read(pin, 9, got);
  EXPECT_EQ(got, std::vector<std::byte>(kBlockSize));
  EXPECT_GE(cache->mvcc().stats.disk_fallbacks.load(), 1u);

  // The defer rule: while the pin lives, nothing may advance block 9 on
  // disk — flush_dirty must leave it dirty.
  cache->flush_dirty();
  EXPECT_EQ(cache->dirty_blocks(), 1u);
  cache->snapshot_read(pin, 9, got);
  EXPECT_EQ(got, std::vector<std::byte>(kBlockSize));

  cache->snapshot_unpin(pin);
  cache->flush_dirty();
  EXPECT_EQ(cache->dirty_blocks(), 0u);
  std::vector<std::byte> on_disk(kBlockSize);
  disk.read(9, on_disk);
  EXPECT_EQ(on_disk, block_of(5));
}

TEST(TincaSnapshot, RecoverySeedsBaselinesForDirtySurvivors) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  const TincaConfig cfg = small_cfg();
  auto cache = TincaCache::format(dev, disk, cfg);
  cache->write_block(3, block_of(1));
  cache->write_block(4, block_of(2));

  cache.reset();
  cache = TincaCache::recover(dev, disk, cfg);
  // Both dirty survivors got epoch-1 baseline chains: their committed bytes
  // live in NVM only, so a pinned reader must resolve them through the
  // chain, never through the (stale) disk.
  EXPECT_EQ(cache->mvcc().stats.recovery_seeded.load(), 2u);

  const SnapshotPin pin = cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());
  cache->write_block(3, block_of(9));

  std::vector<std::byte> got(kBlockSize);
  ASSERT_TRUE(cache->snapshot_try_read(pin, 3, got));
  EXPECT_EQ(got, block_of(1));
  cache->read_block(3, got);
  EXPECT_EQ(got, block_of(9));
  cache->snapshot_unpin(pin);
}

TEST(TincaSnapshot, EvictionUnderAPinParksBlocksThenWedgesRecoverably) {
  // A live pin forbids recycling any chain-owned NVM block, so a completely
  // full cache under eviction pressure parks every victim in a retired
  // chain and finally wedges.  This test nails down that whole degradation:
  // the pinned reader keeps a consistent image throughout (chain first,
  // disk after the unlink), the wedge is a clean ContractViolation, and a
  // remount gets back to a fully working cache with no data loss.
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  const TincaConfig cfg = small_cfg();
  auto cache = TincaCache::format(dev, disk, cfg);

  const auto blocks = fill_cache(*cache, 0);
  ASSERT_GT(blocks.size(), 4u);
  const SnapshotPin pin = cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());

  std::vector<std::byte> got(kBlockSize);
  ASSERT_TRUE(cache->snapshot_try_read(pin, blocks[0], got));
  EXPECT_EQ(got, block_of(blocks[0] + 1));

  // One more distinct block: eviction evicts victims but their blocks stay
  // pinned in retired chains, so no free block can materialize.
  EXPECT_THROW(cache->write_block(blocks.size(), block_of(999)),
               ContractViolation);
  EXPECT_GE(cache->mvcc().stats.nodes_retired.load(), 1u);

  // The pinned reader still sees the boundary image — the eviction wrote
  // the block back, so the disk fallback serves the same bytes.
  cache->snapshot_read(pin, blocks[0], got);
  EXPECT_EQ(got, block_of(blocks[0] + 1));

  cache->snapshot_unpin(pin);
  cache.reset();
  cache = TincaCache::recover(dev, disk, cfg);
  for (std::uint64_t b : blocks) {
    cache->read_block(b, got);
    ASSERT_EQ(got, block_of(b + 1)) << "blkno " << b;
  }
  cache->write_block(blocks.size(), block_of(999));  // space is back
  cache->read_block(blocks.size(), got);
  EXPECT_EQ(got, block_of(999));
}

TEST(TincaSnapshot, CommitReclaimsVersionsNoPinNeeds) {
  // Without any reader pinned, the per-commit reclaim keeps chains at one
  // version: a write-hit stream must not grow memory or leak NVM blocks.
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());

  cache->write_block(7, block_of(1));
  const std::uint64_t free_before = cache->free_blocks();
  for (std::uint64_t i = 0; i < 32; ++i)
    cache->write_block(7, block_of(100 + i));
  EXPECT_EQ(cache->mvcc().live_versions(), 1u);
  EXPECT_EQ(cache->free_blocks(), free_before);
  EXPECT_GE(cache->mvcc().stats.versions_trimmed.load(), 31u);
}

}  // namespace
}  // namespace tinca::core
