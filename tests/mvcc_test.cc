// Tests for the MVCC snapshot layer (DESIGN.md §12): the MvccTable version
// chains in isolation, then the TincaCache snapshot surface built on them —
// commit-boundary pinning, disk fallback with the write-defer rule, recovery
// baseline seeding, and the parked-block lifecycle when a pinned reader
// overlaps eviction pressure.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/expect.h"
#include "tinca/mvcc.h"
#include "tinca/tinca_cache.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 256 << 10;
constexpr std::uint64_t kDiskBlocks = 1 << 14;

TincaConfig small_cfg() { return TincaConfig{.ring_bytes = 4096}; }

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

/// Commit single-block write transactions for distinct blocks until exactly
/// `leave_free` NVM data blocks remain free.
std::vector<std::uint64_t> fill_cache(TincaCache& cache,
                                      std::uint64_t leave_free) {
  std::vector<std::uint64_t> blocks;
  std::uint64_t next = 0;
  while (cache.free_blocks() > leave_free) {
    cache.write_block(next, block_of(next + 1));
    blocks.push_back(next++);
  }
  return blocks;
}

// --- MvccTable in isolation --------------------------------------------------

TEST(MvccTable, PinCapturesEpochAndResolvesNewestNotAbove) {
  MvccTable t(64);
  EXPECT_EQ(t.epoch(), 1u);

  t.publish(7, 10);  // visible at epoch 2
  t.bump();
  const SnapshotPin p2 = t.pin();
  ASSERT_TRUE(p2.valid());
  EXPECT_EQ(p2.epoch, 2u);

  t.publish(7, 11);  // epoch 3
  t.bump();
  t.publish(7, 12);  // epoch 4
  t.bump();

  // The old pin stops below the versions published after it...
  const VersionRec* rec = t.resolve(7, p2.epoch);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->epoch, 2u);
  EXPECT_EQ(rec->nvm_block, 10u);
  // ... while a fresh pin resolves to the newest.
  const SnapshotPin p4 = t.pin();
  EXPECT_EQ(p4.epoch, 4u);
  rec = t.resolve(7, p4.epoch);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->nvm_block, 12u);
  // A block never published resolves to nothing (disk fallback).
  EXPECT_EQ(t.resolve(8, p4.epoch), nullptr);

  t.unpin(p2);
  t.unpin(p4);
}

TEST(MvccTable, BaselineIsVisibleToEveryPossiblePin) {
  MvccTable t(64);
  t.publish_baseline(11, 50);  // epoch 1 <= every pin
  const SnapshotPin p = t.pin();
  ASSERT_TRUE(p.valid());
  const VersionRec* rec = t.resolve(11, p.epoch);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->epoch, 1u);
  EXPECT_EQ(rec->nvm_block, 50u);
  t.unpin(p);
}

TEST(MvccTable, TrimWaitsForTheOldestPin) {
  MvccTable t(64);
  t.publish(7, 10);
  t.bump();  // v@2
  const SnapshotPin pin = t.pin();
  t.publish(7, 11);
  t.bump();  // v@3
  t.publish(7, 12);
  t.bump();  // v@4
  EXPECT_EQ(t.live_versions(), 3u);

  std::vector<std::uint32_t> freed;
  t.reclaim(freed);
  // The pin at epoch 2 still reaches v@2: nothing may be trimmed.
  EXPECT_TRUE(freed.empty());
  EXPECT_EQ(t.live_versions(), 3u);
  ASSERT_NE(t.resolve(7, pin.epoch), nullptr);
  EXPECT_EQ(t.resolve(7, pin.epoch)->nvm_block, 10u);

  t.unpin(pin);
  t.reclaim(freed);
  // Floor rose to the current epoch: only the newest version survives and
  // the suffix's NVM blocks come back for reuse.
  EXPECT_EQ(t.live_versions(), 1u);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{11, 10}));
  EXPECT_EQ(t.stats.versions_trimmed.load(), 2u);
  EXPECT_EQ(t.resolve(7, t.epoch())->nvm_block, 12u);
}

TEST(MvccTable, RetiredChainUnlinksUnderPinAndFreesAfterUnpin) {
  MvccTable t(64);
  t.publish(9, 20);
  t.bump();  // v@2
  const SnapshotPin pin = t.pin();

  t.retire(9);
  EXPECT_EQ(t.retired_nodes(), 1u);
  // Still resolvable until reclamation decides otherwise.
  ASSERT_NE(t.resolve(9, pin.epoch), nullptr);

  std::vector<std::uint32_t> freed;
  t.reclaim(freed);
  // floor == head epoch: unlink is allowed (disk already holds the head's
  // bytes, readers fall back there) but the free must wait out the pin.
  EXPECT_EQ(t.resolve(9, pin.epoch), nullptr);
  EXPECT_TRUE(freed.empty());
  EXPECT_EQ(t.retired_nodes(), 1u);

  t.unpin(pin);
  t.reclaim(freed);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{20}));
  EXPECT_EQ(t.retired_nodes(), 0u);
  EXPECT_EQ(t.stats.nodes_freed.load(), 1u);
  EXPECT_EQ(t.live_versions(), 0u);
}

TEST(MvccTable, ReclaimWithEmptyRegistryFreesARetiredChainInOnePass) {
  // Regression: eviction on a full cache calls reclaim() once and must see
  // the NVM blocks of an unpinned retired chain immediately — unlink and
  // free used to be forced into separate passes even with no pins live.
  MvccTable t(64);
  t.publish(5, 30);
  t.bump();
  t.retire(5);
  std::vector<std::uint32_t> freed;
  t.reclaim(freed);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{30}));
  EXPECT_EQ(t.retired_nodes(), 0u);
}

TEST(MvccTable, ReCachedBlockShadowsItsRetiredChain) {
  MvccTable t(64);
  t.publish(3, 40);
  t.bump();  // v@2
  const SnapshotPin old_pin = t.pin();
  t.retire(3);         // evicted ...
  t.publish(3, 41);    // ... and re-cached: a fresh node in the same bucket
  t.bump();            // v@3

  // The old pin resolves through the retired chain; a new pin sees only the
  // fresh node.  Ownership follows the live chain.
  ASSERT_NE(t.resolve(3, old_pin.epoch), nullptr);
  EXPECT_EQ(t.resolve(3, old_pin.epoch)->nvm_block, 40u);
  EXPECT_EQ(t.resolve(3, t.epoch())->nvm_block, 41u);
  EXPECT_TRUE(t.owns(3, 41));
  EXPECT_FALSE(t.owns(3, 40));

  t.unpin(old_pin);
  std::vector<std::uint32_t> freed;
  t.reclaim(freed);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{40}));
  // Old history is gone; the live chain is untouched.
  EXPECT_EQ(t.resolve(3, 2), nullptr);
  EXPECT_EQ(t.resolve(3, t.epoch())->nvm_block, 41u);
}

TEST(MvccTable, ReFillBaselineLandsAtTheRetiredHeadEpoch) {
  // Regression: a block evicted under a pin and later re-cached gets a new
  // baseline from its disk bytes — which ARE the retired head's bytes (the
  // eviction writeback put them there).  Publishing that baseline at epoch 1
  // tied with the retired chain's own baseline, and resolve() kept the
  // first-found fresh rec, handing old pins the post-pin image.
  MvccTable t(64);
  t.publish(99, 10);
  t.bump();  // epoch 2
  const SnapshotPin pin = t.pin();
  ASSERT_EQ(pin.epoch, 2u);

  // Block 7: clean-fill baseline (block 40) + COW at epoch 3 (block 41).
  t.publish_baseline(7, 40);
  t.publish(7, 41);
  t.bump();  // epoch 3

  t.retire(7);  // evicted: disk now holds block 41's bytes
  std::vector<std::uint32_t> freed;
  t.reclaim(freed);
  EXPECT_TRUE(freed.empty());  // pin 2 < head 3: chain stays linked

  // Re-cached from disk: the new baseline carries the retired HEAD's bytes
  // and must land at its epoch, leaving pins below it to the retired chain.
  t.publish_baseline(7, 42);
  ASSERT_NE(t.resolve(7, pin.epoch), nullptr);
  EXPECT_EQ(t.resolve(7, pin.epoch)->nvm_block, 40u)
      << "old pin must keep resolving the retired chain's baseline";
  EXPECT_EQ(t.resolve(7, t.epoch())->nvm_block, 42u);
  // The retired generation still anchors the block at epoch 1: every pin is
  // covered in NVM, so the disk-write defer rule must not engage.
  EXPECT_EQ(t.oldest_live_epoch(7), 1u);

  t.publish(7, 43);
  t.bump();  // epoch 4
  EXPECT_EQ(t.resolve(7, pin.epoch)->nvm_block, 40u);

  t.unpin(pin);
  t.reclaim(freed);
  // Retired generation fully reclaimed, live chain trimmed to its head.
  std::sort(freed.begin(), freed.end());
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{40, 41, 42}));
  EXPECT_EQ(t.retired_nodes(), 0u);
  EXPECT_EQ(t.resolve(7, t.epoch())->nvm_block, 43u);
}

TEST(MvccTable, PinRegistryExhaustionFailsTheExtraPin) {
  MvccTable t(16);
  std::vector<SnapshotPin> pins;
  for (int i = 0; i < 256; ++i) {
    pins.push_back(t.pin());
    ASSERT_TRUE(pins.back().valid()) << "slot " << i;
  }
  const SnapshotPin extra = t.pin();
  EXPECT_FALSE(extra.valid());
  EXPECT_EQ(t.stats.lock_fallbacks.load(), 1u);
  for (const SnapshotPin& p : pins) t.unpin(p);
  EXPECT_TRUE(t.pin().valid());  // slots come back
}

// --- TincaCache snapshot surface ---------------------------------------------

TEST(TincaSnapshot, PinFreezesTheCommittedBoundary) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());

  cache->write_block(7, block_of(1));
  const SnapshotPin pin = cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());
  cache->write_block(7, block_of(2));

  std::vector<std::byte> got(kBlockSize);
  cache->snapshot_read(pin, 7, got);
  EXPECT_EQ(got, block_of(1)) << "snapshot must see the pinned boundary";
  cache->read_block(7, got);
  EXPECT_EQ(got, block_of(2)) << "ordinary reads see the newest commit";
  EXPECT_GE(cache->mvcc().stats.snapshot_reads.load(), 1u);
  cache->snapshot_unpin(pin);
}

TEST(TincaSnapshot, UnversionedBlockFallsBackToDiskAndDefersItsWriteback) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());

  const SnapshotPin pin = cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());
  cache->write_block(9, block_of(5));  // committed after the pin

  // No version <= the pin exists: the snapshot read falls through to disk,
  // which still holds the pre-transaction (zero) image.
  std::vector<std::byte> got(kBlockSize);
  EXPECT_FALSE(cache->snapshot_try_read(pin, 9, got));
  cache->snapshot_read(pin, 9, got);
  EXPECT_EQ(got, std::vector<std::byte>(kBlockSize));
  EXPECT_GE(cache->mvcc().stats.disk_fallbacks.load(), 1u);

  // The defer rule: while the pin lives, nothing may advance block 9 on
  // disk — flush_dirty must leave it dirty.
  cache->flush_dirty();
  EXPECT_EQ(cache->dirty_blocks(), 1u);
  cache->snapshot_read(pin, 9, got);
  EXPECT_EQ(got, std::vector<std::byte>(kBlockSize));

  cache->snapshot_unpin(pin);
  cache->flush_dirty();
  EXPECT_EQ(cache->dirty_blocks(), 0u);
  std::vector<std::byte> on_disk(kBlockSize);
  disk.read(9, on_disk);
  EXPECT_EQ(on_disk, block_of(5));
}

TEST(TincaSnapshot, RecoverySeedsBaselinesForDirtySurvivors) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  const TincaConfig cfg = small_cfg();
  auto cache = TincaCache::format(dev, disk, cfg);
  cache->write_block(3, block_of(1));
  cache->write_block(4, block_of(2));

  cache.reset();
  cache = TincaCache::recover(dev, disk, cfg);
  // Both dirty survivors got epoch-1 baseline chains: their committed bytes
  // live in NVM only, so a pinned reader must resolve them through the
  // chain, never through the (stale) disk.
  EXPECT_EQ(cache->mvcc().stats.recovery_seeded.load(), 2u);

  const SnapshotPin pin = cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());
  cache->write_block(3, block_of(9));

  std::vector<std::byte> got(kBlockSize);
  ASSERT_TRUE(cache->snapshot_try_read(pin, 3, got));
  EXPECT_EQ(got, block_of(1));
  cache->read_block(3, got);
  EXPECT_EQ(got, block_of(9));
  cache->snapshot_unpin(pin);
}

TEST(TincaSnapshot, EvictionUnderAPinParksBlocksThenWedgesRecoverably) {
  // A live pin forbids recycling any chain-owned NVM block, so a completely
  // full cache under eviction pressure parks every victim in a retired
  // chain and finally wedges.  This test nails down that whole degradation:
  // the pinned reader keeps a consistent image throughout (chain first,
  // disk after the unlink), the wedge is a clean ContractViolation, and a
  // remount gets back to a fully working cache with no data loss.
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  const TincaConfig cfg = small_cfg();
  auto cache = TincaCache::format(dev, disk, cfg);

  const auto blocks = fill_cache(*cache, 0);
  ASSERT_GT(blocks.size(), 4u);
  const SnapshotPin pin = cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());

  std::vector<std::byte> got(kBlockSize);
  ASSERT_TRUE(cache->snapshot_try_read(pin, blocks[0], got));
  EXPECT_EQ(got, block_of(blocks[0] + 1));

  // One more distinct block: eviction evicts victims but their blocks stay
  // pinned in retired chains, so no free block can materialize.
  EXPECT_THROW(cache->write_block(blocks.size(), block_of(999)),
               ContractViolation);
  EXPECT_GE(cache->mvcc().stats.nodes_retired.load(), 1u);

  // The pinned reader still sees the boundary image — the eviction wrote
  // the block back, so the disk fallback serves the same bytes.
  cache->snapshot_read(pin, blocks[0], got);
  EXPECT_EQ(got, block_of(blocks[0] + 1));

  cache->snapshot_unpin(pin);
  cache.reset();
  cache = TincaCache::recover(dev, disk, cfg);
  for (std::uint64_t b : blocks) {
    cache->read_block(b, got);
    ASSERT_EQ(got, block_of(b + 1)) << "blkno " << b;
  }
  cache->write_block(blocks.size(), block_of(999));  // space is back
  cache->read_block(blocks.size(), got);
  EXPECT_EQ(got, block_of(999));
}

TEST(TincaSnapshot, ReFillAfterEvictionDoesNotShadowAnOlderPin) {
  // Directed regression for the re-baseline snapshot-isolation hole: pin,
  // COW-commit a clean fill, evict it (writeback + retired chain), re-read
  // it through the locked path, COW-commit again.  The second commit's
  // baseline carries the *evicted head's* bytes; published at epoch 1 it
  // used to tie with the retired chain's baseline and capture the old pin
  // with post-pin content.
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());

  const std::uint64_t kB = 10000;     // target block, distinctive disk bytes
  const std::uint64_t kSpare = 11000; // sacrificial clean fills
  const std::uint64_t kNew = 12000;   // write miss that evicts kB
  disk.write(kB, block_of(100));
  for (std::uint64_t s = 0; s < 3; ++s) disk.write(kSpare + s, block_of(50 + s));

  // Fill with committed blocks, flush them clean, then clean-fill the
  // target plus three spares.  The spares are chainless, so eviction can
  // recycle their NVM blocks even while the pin lives — everything else it
  // evicts parks in a retired chain.
  const auto filler = fill_cache(*cache, 5);
  ASSERT_GE(filler.size(), 1u);
  cache->flush_dirty();
  std::vector<std::byte> got(kBlockSize);
  for (std::uint64_t s = 0; s < 3; ++s) cache->read_block(kSpare + s, got);
  cache->read_block(kB, got);
  ASSERT_EQ(got, block_of(100));
  ASSERT_EQ(cache->free_blocks(), 1u);

  const SnapshotPin pin = cache->snapshot_pin();
  ASSERT_TRUE(pin.valid());
  ASSERT_GT(pin.epoch, 1u);

  // First COW over the clean fill: baseline (fill bytes) + new version.
  cache->write_block(kB, block_of(200));
  ASSERT_TRUE(cache->snapshot_try_read(pin, kB, got));
  ASSERT_EQ(got, block_of(100));
  ASSERT_EQ(cache->free_blocks(), 0u);

  // Line up eviction: target first, spares right behind it.
  for (std::uint64_t s = 0; s < 3; ++s) cache->read_block(kSpare + s, got);
  for (std::uint64_t b : filler) cache->read_block(b, got);

  // The write miss needs a free NVM block: evicts kB (writeback allowed —
  // its chain is anchored by the epoch-1 fill baseline, covering the pin)
  // into a retired chain, then recycles a spare for the new block.
  cache->write_block(kNew, block_of(300));
  EXPECT_FALSE(cache->cached(kB));
  EXPECT_GE(cache->mvcc().stats.nodes_retired.load(), 1u);
  std::vector<std::byte> on_disk(kBlockSize);
  disk.read(kB, on_disk);
  EXPECT_EQ(on_disk, block_of(200)) << "eviction wrote the head back";
  // The retired chain keeps serving the pin.
  ASSERT_TRUE(cache->snapshot_try_read(pin, kB, got));
  ASSERT_EQ(got, block_of(100));

  // Locked re-read fills kB from disk (the evicted head's bytes) ...
  cache->read_block(kB, got);
  ASSERT_EQ(got, block_of(200));
  // ... and the second COW publishes those bytes as the re-fill baseline.
  cache->write_block(kB, block_of(400));

  ASSERT_TRUE(cache->snapshot_try_read(pin, kB, got));
  EXPECT_EQ(got, block_of(100))
      << "old pin must keep the pre-pin image, not the re-fill baseline";
  cache->read_block(kB, got);
  EXPECT_EQ(got, block_of(400)) << "current reads see the newest commit";

  // After the pin goes away one commit's piggybacked reclaim frees the
  // retired generation whole.
  cache->snapshot_unpin(pin);
  cache->write_block(kB, block_of(500));
  EXPECT_EQ(cache->mvcc().retired_nodes(), 0u);
  cache->read_block(kB, got);
  EXPECT_EQ(got, block_of(500));
}

TEST(TincaSnapshot, CommitReclaimsVersionsNoPinNeeds) {
  // Without any reader pinned, the per-commit reclaim keeps chains at one
  // version: a write-hit stream must not grow memory or leak NVM blocks.
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());

  cache->write_block(7, block_of(1));
  const std::uint64_t free_before = cache->free_blocks();
  for (std::uint64_t i = 0; i < 32; ++i)
    cache->write_block(7, block_of(100 + i));
  EXPECT_EQ(cache->mvcc().live_versions(), 1u);
  EXPECT_EQ(cache->free_blocks(), free_before);
  EXPECT_GE(cache->mvcc().stats.versions_trimmed.load(), 31u);
}

}  // namespace
}  // namespace tinca::core
