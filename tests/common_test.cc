// Unit tests for the common substrate: clock, RNG, Zipf, histogram, event
// queue, resources, byte codecs, latency profiles, table printer.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/event_queue.h"
#include "common/expect.h"
#include "common/histogram.h"
#include "common/latency.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/table.h"

namespace tinca {
namespace {

TEST(SimClock, StartsAtZeroAndAdvances) {
  sim::SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(42);
  clock.advance(58);
  EXPECT_EQ(clock.now(), 100u);
  EXPECT_DOUBLE_EQ(clock.seconds(), 100e-9);
}

TEST(SimClock, CostProbeMeasuresDelta) {
  sim::SimClock clock;
  clock.advance(1000);
  sim::CostProbe probe(clock);
  clock.advance(250);
  EXPECT_EQ(probe.elapsed(), 250u);
}

TEST(Expect, ThrowsContractViolationWithContext) {
  try {
    TINCA_EXPECT(1 == 2, "the impossible");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("the impossible"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversDomain) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Zipf, SkewConcentratesOnHotItems) {
  Rng rng(17);
  Zipf zipf(1000, 0.9);
  std::uint64_t hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (zipf.draw(rng) < 10) ++hot;
  // With theta 0.9, the top-1% items should absorb well over 20% of draws.
  EXPECT_GT(hot, static_cast<std::uint64_t>(n) / 5);
}

TEST(Zipf, ZeroThetaIsRoughlyUniform) {
  Rng rng(19);
  Zipf zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.draw(rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 400);
}

TEST(Zipf, DrawsStayInDomain) {
  Rng rng(23);
  Zipf zipf(37, 0.8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.draw(rng), 37u);
}

TEST(Histogram, MeanMinMaxCount) {
  Histogram h;
  for (std::uint64_t v : {1, 2, 3, 4, 100}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 22.0);
}

TEST(Histogram, QuantileBracketsValues) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(10);
  h.record(100000);
  EXPECT_LE(h.quantile(0.5), 15u);
  EXPECT_EQ(h.quantile(1.0), 100000u);
}

TEST(Histogram, MergeAccumulates) {
  Histogram a, b;
  a.record(5);
  b.record(7);
  b.record(9);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 21u);
  EXPECT_EQ(a.max(), 9u);
}

TEST(Histogram, ClearEmpties) {
  Histogram h;
  h.record(42);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(EventQueue, RunsInTimeOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&](sim::Ns) { order.push_back(3); });
  q.schedule_at(10, [&](sim::Ns) { order.push_back(1); });
  q.schedule_at(20, [&](sim::Ns) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&](sim::Ns) { order.push_back(1); });
  q.schedule_at(5, [&](sim::Ns) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  sim::EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&](sim::Ns now) {
    ++fired;
    if (now < 5) q.schedule_at(now + 1, [&](sim::Ns) { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  sim::EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&](sim::Ns) { ++fired; });
  q.schedule_at(20, [&](sim::Ns) { ++fired; });
  q.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(Resource, FifoQueueing) {
  sim::Resource r;
  EXPECT_EQ(r.acquire(0, 100), 100u);   // idle: starts immediately
  EXPECT_EQ(r.acquire(50, 100), 200u);  // queued behind the first
  EXPECT_EQ(r.acquire(500, 100), 600u); // idle again
  EXPECT_EQ(r.requests(), 3u);
  EXPECT_EQ(r.total_busy(), 300u);
  EXPECT_EQ(r.total_wait(), 50u);
}

TEST(Bytes, StoreLoadRoundTripAllWidths) {
  std::byte buf[8];
  for (std::size_t w = 1; w <= 8; ++w) {
    const std::uint64_t v = 0x1122334455667788ULL & ((w == 8) ? ~0ULL : ((1ULL << (w * 8)) - 1));
    store_le(buf, v, w);
    EXPECT_EQ(load_le(buf, w), v) << "width " << w;
  }
}

TEST(Bytes, FillPatternIsDeterministicAndSeedSensitive) {
  std::vector<std::byte> a(256), b(256), c(256);
  fill_pattern(a, 1);
  fill_pattern(b, 1);
  fill_pattern(c, 2);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(c));
}

TEST(Latency, ProfilesMatchPaperDeltas) {
  EXPECT_EQ(pcm_profile().write_extra_ns, 180u);
  EXPECT_EQ(pcm_profile().read_extra_ns, 50u);
  EXPECT_EQ(sttram_profile().write_extra_ns, 50u);
  EXPECT_EQ(nvdimm_profile().write_extra_ns, 0u);
  EXPECT_GT(pcm_profile().line_flush_cost(), nvdimm_profile().line_flush_cost());
}

TEST(Latency, LookupByNameIsCaseInsensitive) {
  EXPECT_EQ(nvm_profile_by_name("PCM").name, "PCM");
  EXPECT_EQ(nvm_profile_by_name("SttRam").name, "STT-RAM");
  EXPECT_THROW(nvm_profile_by_name("flux-capacitor"), ContractViolation);
  EXPECT_EQ(disk_profile_by_name("hdd").name, "HDD");
  EXPECT_THROW(disk_profile_by_name("tape"), ContractViolation);
}

TEST(Latency, HddSlowerThanSsd) {
  const auto ssd = ssd_profile();
  const auto hdd = hdd_profile();
  EXPECT_GT(hdd.seek_ns, ssd.seek_ns);
}

TEST(Latency, NetworkTransferScalesWithBytes) {
  const auto net = tengig_profile();
  EXPECT_EQ(net.transfer_ns(0), 0u);
  EXPECT_NEAR(static_cast<double>(net.transfer_ns(1'250'000'000)), 1e9, 1e6);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(std::uint64_t{1234567}), "1,234,567");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace tinca
