// Regression tests for the write-path eviction/accounting fixes.
//
// Guards four distinct bugs:
//   1. commit_block reserved an entry slot it never consumed on write hits
//      (ensure_free(1,1) instead of (0,1)) — and did so *before* the lookup,
//      so on a full cache the eviction could hit the very block being
//      written, silently converting every write hit into an eviction +
//      writeback + write miss in steady state;
//   2. the dirty-block count was recomputed by an O(capacity) index scan on
//      every commit; it is now maintained incrementally (dirty_blocks());
//   3. write-through commit disk writes were folded into `dirty_writebacks`,
//      skewing the Fig 12 replacement-traffic accounting; they are now
//      `writethrough_writes`;
//   4. FreeMonitor accepted double-give, silently handing one NVM block to
//      two owners; it now fails fast.
#include <gtest/gtest.h>

#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/slot_lru.h"
#include "tinca/tinca_cache.h"

namespace tinca::core {
namespace {

constexpr std::size_t kNvmBytes = 256 << 10;
constexpr std::uint64_t kDiskBlocks = 1 << 14;

TincaConfig small_cfg() { return TincaConfig{.ring_bytes = 4096}; }

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlockSize);
  fill_pattern(b, seed);
  return b;
}

/// Commit single-block write transactions for distinct blocks until exactly
/// `leave_free` NVM data blocks remain free.  Returns the block numbers
/// written.
std::vector<std::uint64_t> fill_cache(TincaCache& cache,
                                      std::uint64_t leave_free) {
  std::vector<std::uint64_t> blocks;
  std::uint64_t next = 0;
  while (cache.free_blocks() > leave_free) {
    cache.write_block(next, block_of(next + 1));
    blocks.push_back(next++);
  }
  return blocks;
}

TEST(WriteHitRegression, HitStreamOnNearlyFullCacheEvictsNothing) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());

  // Fill to capacity - 1: exactly the COW slack a write hit needs.
  const auto blocks = fill_cache(*cache, 1);
  ASSERT_GT(blocks.size(), 4u);
  ASSERT_EQ(cache->free_blocks(), 1u);
  ASSERT_EQ(cache->stats().evictions, 0u);

  // A long write-hit stream over the resident blocks must run entirely on
  // the COW slack: zero evictions, zero writebacks, hits stay hits.
  std::uint64_t seed = 1000;
  for (int round = 0; round < 3; ++round)
    for (std::uint64_t b : blocks) cache->write_block(b, block_of(seed++));

  EXPECT_EQ(cache->stats().evictions, 0u)
      << "write hits must not evict when one free block exists";
  EXPECT_EQ(cache->stats().dirty_writebacks, 0u);
  EXPECT_EQ(cache->stats().write_hits, 3 * blocks.size());
  EXPECT_EQ(cache->stats().write_misses, blocks.size());  // the fills only
}

TEST(WriteHitRegression, HitStreamOnCompletelyFullCacheEvictsExactlyOnce) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());

  const auto blocks = fill_cache(*cache, 0);  // 100% full, zero slack
  ASSERT_EQ(cache->free_blocks(), 0u);
  const std::uint64_t misses_before = cache->stats().write_misses;

  // The first hit must carve out the COW slack with exactly one eviction;
  // after that the freed previous version sustains the stream forever.
  // The old code instead evicted the *write target* (the LRU block) on
  // every operation, so each "hit" became eviction + miss — the stream
  // would show zero write hits and one eviction per write.
  std::uint64_t seed = 5000;
  for (int round = 0; round < 3; ++round)
    for (std::uint64_t b : blocks) {
      if (!cache->cached(b)) continue;  // the one evicted slack victim
      cache->write_block(b, block_of(seed++));
    }

  EXPECT_EQ(cache->stats().evictions, 1u)
      << "one eviction to create slack, then zero";
  EXPECT_EQ(cache->stats().write_misses, misses_before)
      << "no hit may degrade into a miss";
  EXPECT_GE(cache->stats().write_hits, 3 * (blocks.size() - 1));
}

TEST(DirtyAccounting, IncrementalCounterTracksCommitsFlushesAndRecovery) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  auto cache = TincaCache::format(dev, disk, small_cfg());
  EXPECT_EQ(cache->dirty_blocks(), 0u);

  auto txn = cache->tinca_init_txn();
  for (std::uint64_t b = 0; b < 5; ++b) txn.add(b, block_of(b + 1));
  cache->tinca_commit(txn);
  EXPECT_EQ(cache->dirty_blocks(), 5u);

  // Read misses fill clean entries: the dirty count must not move.
  std::vector<std::byte> buf(kBlockSize);
  for (std::uint64_t b = 100; b < 110; ++b) cache->read_block(b, buf);
  EXPECT_EQ(cache->dirty_blocks(), 5u);

  // Rewriting a dirty block keeps it dirty (no double count).
  cache->write_block(3, block_of(99));
  EXPECT_EQ(cache->dirty_blocks(), 5u);

  cache->flush_dirty();
  EXPECT_EQ(cache->dirty_blocks(), 0u);
  EXPECT_EQ(cache->stats().dirty_writebacks, 5u);

  // Dirty state survives remount; the counter is rebuilt by recovery.
  cache->write_block(7, block_of(7));
  cache.reset();
  auto remounted = TincaCache::recover(dev, disk, small_cfg());
  EXPECT_EQ(remounted->dirty_blocks(), 1u);
  EXPECT_TRUE(remounted->dirty(7));
}

TEST(DirtyAccounting, BackgroundCleaningDrivesTheCounterDown) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  TincaConfig cfg = small_cfg();
  cfg.clean_thresh_pct = 25;
  auto cache = TincaCache::format(dev, disk, cfg);

  const std::uint64_t limit = cache->capacity_blocks() * 25 / 100;
  for (std::uint64_t b = 0; b < cache->capacity_blocks() - 2; ++b)
    cache->write_block(b, block_of(b + 1));

  EXPECT_LE(cache->dirty_blocks(), limit)
      << "cleaning must hold the dirty count at the threshold";
  EXPECT_GT(cache->stats().background_cleanings, 0u);
}

TEST(WritebackSplit, WriteThroughTrafficIsNotCountedAsReplacement) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  TincaConfig cfg = small_cfg();
  cfg.write_through = true;
  auto cache = TincaCache::format(dev, disk, cfg);

  auto txn = cache->tinca_init_txn();
  for (std::uint64_t b = 0; b < 4; ++b) txn.add(b, block_of(b + 1));
  cache->tinca_commit(txn);

  EXPECT_EQ(cache->stats().writethrough_writes, 4u);
  EXPECT_EQ(cache->stats().dirty_writebacks, 0u)
      << "foreground write-through is commit traffic, not replacement";
  EXPECT_EQ(cache->dirty_blocks(), 0u);

  // And the converse: write-back traffic never lands in the WT counter.
  sim::SimClock clock2;
  nvm::NvmDevice dev2(kNvmBytes, nvdimm_profile(), clock2);
  blockdev::MemBlockDevice disk2(kDiskBlocks);
  auto wb = TincaCache::format(dev2, disk2, small_cfg());
  for (std::uint64_t b = 0; b < 4; ++b) wb->write_block(b, block_of(b + 1));
  wb->flush_dirty();
  EXPECT_EQ(wb->stats().dirty_writebacks, 4u);
  EXPECT_EQ(wb->stats().writethrough_writes, 0u);
}

TEST(FreeMonitorRegression, DoubleGiveAndDoubleTakeFailFast) {
  FreeMonitor fm(4);
  EXPECT_EQ(fm.count(), 4u);
  EXPECT_TRUE(fm.holds(2));

  const std::uint32_t id = fm.take();
  EXPECT_FALSE(fm.holds(id));
  EXPECT_THROW(fm.give(5), ContractViolation);   // out of range
  fm.give(id);
  EXPECT_TRUE(fm.holds(id));
  EXPECT_THROW(fm.give(id), ContractViolation);  // double give
  EXPECT_EQ(fm.count(), 4u) << "failed give must not grow the pool";

  // Draining the pool and over-taking also fails fast.
  for (int i = 0; i < 4; ++i) fm.take();
  EXPECT_THROW(fm.take(), ContractViolation);
}

}  // namespace
}  // namespace tinca::core
