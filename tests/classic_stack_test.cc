// Integration tests for the assembled Classic stack (journal + flashcache).
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "classic/classic_stack.h"
#include "common/bytes.h"

namespace tinca::classic {
namespace {

constexpr std::size_t kNvmBytes = 8 << 20;
constexpr std::uint64_t kDiskBlocks = 1 << 15;

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice disk{kDiskBlocks};
  ClassicConfig cfg;
  std::unique_ptr<ClassicStack> stack;

  explicit Fixture(bool journaling = true) {
    cfg.journaling = journaling;
    cfg.journal_blocks = 512;
    stack = ClassicStack::format(dev, disk, cfg);
  }

  std::vector<std::byte> block(std::uint64_t seed) const {
    std::vector<std::byte> b(blockdev::kBlockSize);
    fill_pattern(b, seed);
    return b;
  }

  std::vector<std::byte> read(std::uint64_t blkno) {
    std::vector<std::byte> b(blockdev::kBlockSize);
    stack->read_block(blkno, b);
    return b;
  }
};

TEST(ClassicStack, CommittedDataIsReadable) {
  Fixture f;
  auto txn = f.stack->begin_txn();
  txn.add(10, f.block(1));
  txn.add(11, f.block(2));
  f.stack->commit(txn);
  EXPECT_EQ(f.read(10), f.block(1));
  EXPECT_EQ(f.read(11), f.block(2));
}

TEST(ClassicStack, ReadsSeeLatestAcrossRewrites) {
  Fixture f;
  for (std::uint64_t v = 1; v <= 5; ++v) {
    auto txn = f.stack->begin_txn();
    txn.add(20, f.block(v));
    f.stack->commit(txn);
    EXPECT_EQ(f.read(20), f.block(v));
  }
}

TEST(ClassicStack, AbortDiscardsStagedData) {
  Fixture f;
  auto txn = f.stack->begin_txn();
  txn.add(30, f.block(1));
  f.stack->abort(txn);
  std::vector<std::byte> zeros(blockdev::kBlockSize, std::byte{0});
  EXPECT_EQ(f.read(30), zeros);
}

TEST(ClassicStack, WritesIntoJournalAreaRejected) {
  Fixture f;
  auto txn = f.stack->begin_txn();
  txn.add(f.stack->data_block_limit(), f.block(1));
  EXPECT_THROW(f.stack->commit(txn), ContractViolation);
}

TEST(ClassicStack, CrashRecoveryReplaysCommitted) {
  Fixture f;
  auto txn = f.stack->begin_txn();
  txn.add(40, f.block(4));
  f.stack->commit(txn);
  f.dev.crash_discard_all();
  auto recovered = ClassicStack::recover(f.dev, f.disk, f.cfg);
  std::vector<std::byte> got(blockdev::kBlockSize);
  recovered->read_block(40, got);
  EXPECT_EQ(got, f.block(4));
}

TEST(ClassicStack, FlushAllPushesDataToDisk) {
  Fixture f;
  auto txn = f.stack->begin_txn();
  txn.add(50, f.block(5));
  f.stack->commit(txn);
  f.stack->flush_all();
  std::vector<std::byte> got(blockdev::kBlockSize);
  f.disk.read(50, got);
  EXPECT_EQ(got, f.block(5));
}

TEST(ClassicStack, JournalingDoublesNvmTraffic) {
  Fixture with(true);
  Fixture without(false);
  // Compound transactions of 8 blocks, as a journaling FS would batch them
  // (Fig 3(a) measures 195%–290% write amplification under such batching).
  for (std::uint64_t t = 0; t < 8; ++t) {
    auto t1 = with.stack->begin_txn();
    auto t2 = without.stack->begin_txn();
    for (std::uint64_t b = 0; b < 8; ++b) {
      t1.add(t * 8 + b, with.block(t * 8 + b));
      t2.add(t * 8 + b, without.block(t * 8 + b));
    }
    with.stack->commit(t1);
    without.stack->commit(t2);
  }
  with.stack->flush_all();
  without.stack->flush_all();
  // Fig 3(a): journaling causes ~2x the write traffic (195%–290% in paper).
  const double ratio = static_cast<double>(with.dev.stats().bytes_stored) /
                       static_cast<double>(without.dev.stats().bytes_stored);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 3.2);
}

TEST(ClassicStack, NoJournalModeHasNoJournalObject) {
  Fixture f(false);
  EXPECT_EQ(f.stack->journal(), nullptr);
  EXPECT_FALSE(f.stack->journaling());
  auto txn = f.stack->begin_txn();
  txn.add(5, f.block(1));
  f.stack->commit(txn);
  EXPECT_EQ(f.read(5), f.block(1));
}

TEST(ClassicStack, SustainedLoadTriggersCheckpoints) {
  Fixture f;
  // Mostly-unique blocks: the journal wraps and must checkpoint cold
  // blocks home; a hot block (0) is re-logged constantly and therefore
  // skipped at checkpoint until the end.
  for (std::uint64_t i = 0; i < 2000; ++i) {
    auto txn = f.stack->begin_txn();
    txn.add(i % 1900, f.block(i));
    txn.add(0, f.block(100000 + i));
    f.stack->commit(txn);
  }
  EXPECT_GT(f.stack->journal()->stats().checkpoint_writes, 0u);
  EXPECT_GT(f.stack->journal()->stats().superblock_writes, 1u);
  // Latest values must win even after checkpoint interleavings.
  for (std::uint64_t b = 1; b < 1900; b += 131) {
    const std::uint64_t last = (2000 - 1 - b) / 1900 * 1900 + b;
    ASSERT_EQ(f.read(b), f.block(last)) << "block " << b;
  }
  ASSERT_EQ(f.read(0), f.block(100000 + 1999));
}

}  // namespace
}  // namespace tinca::classic
