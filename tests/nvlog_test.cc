// NVM write-ahead tier tests (DESIGN.md §13).
//
// Covers the log tier in isolation (absorb / lookup / coalescing drain /
// recovery, torn log tail, segment wrap-around with a live unreplayed
// prefix, the sabotage self-test proving the commit flush is load-bearing)
// and the assembled NvLogBackend under a full crash-point sweep including a
// re-crash mid-drain — the pull-the-plug test of §5.1, made exhaustive.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "backend/nvlog_backend.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "nvlog/log_meta.h"
#include "nvlog/nvlog_tier.h"
#include "obs/metrics.h"
#include "tinca/slot_lru.h"
#include "tinca/tinca_cache.h"

namespace tinca::nvlog {
namespace {

constexpr std::uint64_t kSegBytes = 64 * 1024;         // 15 block records
constexpr std::size_t kLogBytes = 1 << 19;             // 7 segments + meta
constexpr std::size_t kBlock = blockdev::kBlockSize;

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(kBlock);
  fill_pattern(b, seed);
  return b;
}

/// DrainSink that applies into a map and checks the batch contract.
class MapSink : public NvLogTier::DrainSink {
 public:
  void drain_apply(const std::vector<std::pair<std::uint64_t,
                                               std::vector<std::byte>>>&
                       blocks) override {
    ++applies;
    for (std::size_t i = 1; i < blocks.size(); ++i)
      EXPECT_LT(blocks[i - 1].first, blocks[i].first)
          << "drain batch not ascending";
    for (const auto& [blkno, data] : blocks) applied[blkno] = data;
  }

  std::map<std::uint64_t, std::vector<std::byte>> applied;
  int applies = 0;
};

NvLogConfig small_cfg() {
  NvLogConfig cfg;
  cfg.segment_bytes = kSegBytes;
  return cfg;
}

void absorb_one(NvLogTier& tier, NvLogTier::DrainSink& sink,
                std::vector<std::pair<std::uint64_t, std::uint64_t>> spec) {
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(spec.size());
  std::vector<std::pair<std::uint64_t, std::span<const std::byte>>> blocks;
  for (const auto& [blkno, seed] : spec) {
    payloads.push_back(block_of(seed));
    blocks.emplace_back(blkno, payloads.back());
  }
  tier.absorb_commit(blocks, sink);
}

TEST(NvLogTier, AbsorbLookupDrainRoundtrip) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(kLogBytes, nvdimm_profile(), clock);
  auto tier = NvLogTier::format(nvm, small_cfg());
  MapSink sink;

  absorb_one(*tier, sink, {{7, 1}, {3, 2}, {9, 3}});
  absorb_one(*tier, sink, {{3, 4}, {11, 5}});  // overwrites block 3

  // One flush pass + fence per absorb covers everything it appended.
  EXPECT_EQ(nvm.dirty_lines(), 0u);

  std::vector<std::byte> buf(kBlock);
  ASSERT_TRUE(tier->lookup(3, buf));
  EXPECT_EQ(fingerprint(buf), fingerprint(block_of(4)));  // newest wins
  ASSERT_TRUE(tier->lookup(7, buf));
  EXPECT_EQ(fingerprint(buf), fingerprint(block_of(1)));
  EXPECT_FALSE(tier->lookup(42, buf));
  EXPECT_EQ(tier->live_records(), 4u);

  tier->drain_all(sink);
  EXPECT_EQ(tier->live_records(), 0u);
  ASSERT_EQ(sink.applied.size(), 4u);
  EXPECT_EQ(fingerprint(sink.applied[3]), fingerprint(block_of(4)));
  EXPECT_EQ(fingerprint(sink.applied[9]), fingerprint(block_of(3)));

  const auto& st = tier->stats();
  EXPECT_EQ(st.absorbed_txns, 2u);
  EXPECT_EQ(st.absorbed_records, 5u);
  EXPECT_EQ(st.drained_records, 4u);
  EXPECT_EQ(st.coalesced_records, 1u);  // the superseded image of block 3
}

TEST(NvLogTier, RecoverReplaysCommittedTxns) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(kLogBytes, nvdimm_profile(), clock);
  MapSink sink;
  {
    auto tier = NvLogTier::format(nvm, small_cfg());
    absorb_one(*tier, sink, {{1, 10}, {2, 11}});
    absorb_one(*tier, sink, {{2, 12}, {5, 13}});
  }
  // Power loss: nothing unflushed may be load-bearing.
  nvm.crash_discard_all();

  auto tier = NvLogTier::recover(nvm, small_cfg());
  EXPECT_EQ(tier->stats().recovery_replayed, 4u);
  std::vector<std::byte> buf(kBlock);
  ASSERT_TRUE(tier->lookup(1, buf));
  EXPECT_EQ(fingerprint(buf), fingerprint(block_of(10)));
  ASSERT_TRUE(tier->lookup(2, buf));
  EXPECT_EQ(fingerprint(buf), fingerprint(block_of(12)));
  ASSERT_TRUE(tier->lookup(5, buf));
  EXPECT_EQ(fingerprint(buf), fingerprint(block_of(13)));

  // The recovered log keeps absorbing and draining.
  absorb_one(*tier, sink, {{6, 14}});
  tier->drain_all(sink);
  EXPECT_EQ(fingerprint(sink.applied[2]), fingerprint(block_of(12)));
  EXPECT_EQ(fingerprint(sink.applied[6]), fingerprint(block_of(14)));
}

TEST(NvLogTier, TornTailDiscardsOnlyTheIncompleteSuffix) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(kLogBytes, nvdimm_profile(), clock);
  MapSink sink;
  auto tier = NvLogTier::format(nvm, small_cfg());
  absorb_one(*tier, sink, {{1, 20}, {2, 21}});
  absorb_one(*tier, sink, {{3, 22}, {4, 23}});

  // Tear the second txn's *second* record: its first record stays valid, so
  // recovery must actively discard it (txn atomicity), not merely stop.
  const auto range = tier->record_range(4);
  ASSERT_TRUE(range.has_value());
  std::vector<std::byte> garbage(nvm::NvmDevice::kLineSize,
                                 std::byte{0x5A});
  nvm.store(range->first, garbage);
  nvm.persist(range->first, garbage.size());

  auto rec = NvLogTier::recover(nvm, small_cfg());
  std::vector<std::byte> buf(kBlock);
  ASSERT_TRUE(rec->lookup(1, buf));
  EXPECT_EQ(fingerprint(buf), fingerprint(block_of(20)));
  ASSERT_TRUE(rec->lookup(2, buf));
  EXPECT_EQ(fingerprint(buf), fingerprint(block_of(21)));
  // The torn txn is all-or-nothing: neither of its blocks replays.
  EXPECT_FALSE(rec->contains(3));
  EXPECT_FALSE(rec->contains(4));
  EXPECT_EQ(rec->stats().recovery_replayed, 2u);
  EXPECT_GT(rec->stats().recovery_discarded, 0u);

  // New commits append past the torn tail and survive the next mount.
  MapSink sink2;
  absorb_one(*rec, sink2, {{8, 24}});
  auto rec2 = NvLogTier::recover(nvm, small_cfg());
  ASSERT_TRUE(rec2->lookup(8, buf));
  EXPECT_EQ(fingerprint(buf), fingerprint(block_of(24)));
  EXPECT_FALSE(rec2->contains(3));
}

TEST(NvLogTier, SkippedCommitFlushLosesAcknowledgedTxns) {
  // The sabotage self-test pair: prove the absorb-path clflush+sfence is
  // load-bearing by removing it and watching the acknowledged txn vanish.
  for (const bool sabotage : {true, false}) {
    sim::SimClock clock;
    nvm::NvmDevice nvm(kLogBytes, nvdimm_profile(), clock);
    MapSink sink;
    NvLogConfig cfg = small_cfg();
    cfg.sabotage_skip_commit_flush = sabotage;
    {
      auto tier = NvLogTier::format(nvm, cfg);
      absorb_one(*tier, sink, {{1, 30}, {2, 31}});
    }
    nvm.crash_discard_all();  // worst-case power loss
    auto rec = NvLogTier::recover(nvm, small_cfg());
    if (sabotage) {
      EXPECT_EQ(rec->stats().recovery_replayed, 0u);
      EXPECT_FALSE(rec->contains(1));
    } else {
      EXPECT_EQ(rec->stats().recovery_replayed, 2u);
      std::vector<std::byte> buf(kBlock);
      ASSERT_TRUE(rec->lookup(1, buf));
      EXPECT_EQ(fingerprint(buf), fingerprint(block_of(30)));
    }
  }
}

TEST(NvLogTier, SegmentWrapAroundKeepsLiveUnreplayedPrefix) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(kLogBytes, nvdimm_profile(), clock);
  MapSink sink;
  auto tier = NvLogTier::format(nvm, small_cfg());

  // Hammer a small working set far past the log's record capacity so the
  // free list wraps: backpressure drains recycle old segments while newer
  // ones still hold live records.
  std::map<std::uint64_t, std::uint64_t> expected;  // blkno -> newest seed
  std::uint64_t seed = 100;
  for (int round = 0; round < 60; ++round) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> spec;
    for (int b = 0; b < 4; ++b) {
      const std::uint64_t blkno = (round * 3 + b) % 17;
      spec.emplace_back(blkno, seed);
      expected[blkno] = seed++;
    }
    absorb_one(*tier, sink, spec);
  }
  const auto& st = tier->stats();
  EXPECT_GT(st.backpressure_drains, 0u);
  EXPECT_GT(st.segments_recycled, 0u);
  EXPECT_GT(tier->oldest_live_seq(), 1u);
  EXPECT_GT(st.coalesced_records, 0u);
  EXPECT_GT(tier->live_records(), 0u);

  // Mount mid-stream: the oldest segments are gone (drained + recycled),
  // the survivors replay, and log-over-store reads see every write.
  auto rec = NvLogTier::recover(nvm, small_cfg());
  EXPECT_GT(rec->stats().recovery_replayed, 0u);
  std::vector<std::byte> buf(kBlock);
  for (const auto& [blkno, want] : expected) {
    if (!rec->lookup(blkno, buf)) {
      auto it = sink.applied.find(blkno);
      ASSERT_NE(it, sink.applied.end()) << "block " << blkno << " lost";
      buf = it->second;
    }
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(want)))
        << "block " << blkno << " stale after wrap-around recovery";
  }

  // And the recovered instance can still drain everything.
  rec->drain_all(sink);
  EXPECT_EQ(rec->live_records(), 0u);
  for (const auto& [blkno, want] : expected)
    EXPECT_EQ(fingerprint(sink.applied[blkno]), fingerprint(block_of(want)));
}

TEST(NvLogTier, WatermarkRingRotatesAndRecoveryMountsHighestEpoch) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(kLogBytes, nvdimm_profile(), clock);
  MapSink sink;
  auto tier = NvLogTier::format(nvm, small_cfg());
  EXPECT_EQ(tier->watermark_epoch(), 1u);  // format's birth record

  // Each absorb + full drain recycles one segment: one fresh ring record,
  // rotated into the next slot.
  for (int i = 0; i < 5; ++i) {
    absorb_one(*tier, sink, {{1, 40u + static_cast<std::uint64_t>(i)}});
    tier->drain_all(sink);
  }
  EXPECT_EQ(tier->watermark_epoch(), 6u);
  EXPECT_EQ(tier->stats().watermark_records, 6u);
  const std::uint64_t oldest = tier->oldest_live_seq();
  EXPECT_GT(oldest, 1u);

  // Recovery adjudicates the ring: it must mount the HIGHEST valid epoch,
  // not slot 0 or whatever a fixed hot line would have said.
  nvm.crash_discard_all();
  auto rec = NvLogTier::recover(nvm, small_cfg());
  EXPECT_EQ(rec->watermark_epoch(), 6u);
  EXPECT_EQ(rec->oldest_live_seq(), oldest);

  // The next advance continues the epoch sequence past the mount.
  absorb_one(*rec, sink, {{2, 60}});
  rec->drain_all(sink);
  EXPECT_EQ(rec->watermark_epoch(), 7u);
}

TEST(NvLogTier, WatermarkRotationSpreadsMetaLineWear) {
  // The §16 wear claim at tier level: with one slot every advance hammers
  // the same 64 B line; with the rotating ring the writes spread across all
  // slots and the hottest metadata line cools by an order of magnitude.
  std::uint64_t hot_single = 0, hot_rotated = 0;
  for (const std::uint32_t slots : {1u, 32u}) {
    sim::SimClock clock;
    nvm::NvmDevice nvm(kLogBytes, nvdimm_profile(), clock);
    MapSink sink;
    NvLogConfig cfg = small_cfg();
    cfg.watermark_slots = slots;
    auto tier = NvLogTier::format(nvm, cfg);
    for (int i = 0; i < 64; ++i) {
      absorb_one(*tier, sink, {{1, 70u + static_cast<std::uint64_t>(i)}});
      tier->drain_all(sink);
    }
    // Hottest line in the watermark ring region (the superblock line at
    // offset 0 is written once at format and never again).
    const auto wear =
        nvm.wear(kWatermarkBase, kLogMetaBytes - kWatermarkBase);
    (slots == 1 ? hot_single : hot_rotated) = wear.max_line_writes;
  }
  EXPECT_GE(hot_single, 65u);  // every advance on the one line
  EXPECT_GE(hot_single, hot_rotated * 10) << "rotation must spread wear";
}

TEST(NvLogTier, SkippedWatermarkFlushLosesLiveTxnsAfterWrap) {
  // Sabotage self-test pair for the watermark-record flush: an unflushed
  // ring record is harmless until the log WRAPS — once the segment the
  // stale watermark points at has been recycled and rewritten, recovery's
  // contiguous chain scan from the stale oldest_live_seq finds nothing and
  // every live log-resident txn silently vanishes.
  for (const bool sabotage : {true, false}) {
    sim::SimClock clock;
    nvm::NvmDevice nvm(kLogBytes, nvdimm_profile(), clock);
    MapSink sink;
    NvLogConfig cfg = small_cfg();
    cfg.sabotage_skip_watermark_flush = sabotage;
    std::uint64_t seed = 900, last4 = 0;
    {
      auto tier = NvLogTier::format(nvm, cfg);
      // Fat commits over a tiny working set wrap the 7-segment log several
      // times; backpressure drains recycle and rewrite the early segments.
      for (int round = 0; round < 40; ++round) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> spec;
        for (std::uint64_t b = 1; b <= 4; ++b) {
          spec.emplace_back(b, seed);
          if (b == 4) last4 = seed;
          ++seed;
        }
        absorb_one(*tier, sink, spec);
      }
      ASSERT_GT(tier->oldest_live_seq(), 1u) << "log never wrapped";
      ASSERT_GT(tier->stats().segments_recycled, 0u);
    }
    nvm.crash_discard_all();  // unflushed watermark records evaporate

    auto rec = NvLogTier::recover(nvm, small_cfg());
    std::vector<std::byte> buf(kBlock);
    if (sabotage) {
      // The stale epoch-1 record won adjudication; seq 1's segment has been
      // recycled, so the chain is empty and the live txns are gone.
      EXPECT_EQ(rec->stats().recovery_replayed, 0u);
      EXPECT_FALSE(rec->contains(4));
    } else {
      EXPECT_GT(rec->stats().recovery_replayed, 0u);
      ASSERT_TRUE(rec->lookup(4, buf));
      EXPECT_EQ(fingerprint(buf), fingerprint(block_of(last4)));
    }
  }
}

TEST(NvLogTier, MetricsRegistration) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(kLogBytes, nvdimm_profile(), clock);
  auto tier = NvLogTier::format(nvm, small_cfg());
  obs::MetricsRegistry reg;
  tier->register_metrics(reg, "nvlog.");
  EXPECT_TRUE(reg.has("nvlog.absorbed_txns"));
  EXPECT_TRUE(reg.has("nvlog.coalesced_records"));
  EXPECT_TRUE(reg.has("nvlog.segments_recycled"));
  EXPECT_TRUE(reg.has("nvlog.recovery_replayed"));
  EXPECT_TRUE(reg.has("nvlog.live_records"));
  EXPECT_TRUE(reg.has("nvlog.watermark_records"));
  EXPECT_TRUE(reg.has("nvlog.meta_line_wear"));
  EXPECT_NE(reg.histogram("nvlog.drain_lag"), nullptr);
  EXPECT_NE(reg.histogram("nvlog.drain_apply"), nullptr);
}

// ---------------------------------------------------------------------------
// Assembled backend: crash-point sweep with re-crash mid-drain.
// ---------------------------------------------------------------------------

using Expected = std::map<std::uint64_t, std::uint64_t>;

backend::NvLogStackConfig sweep_cfg() {
  backend::NvLogStackConfig cfg;
  cfg.log_bytes = kLogBytes;
  cfg.log.segment_bytes = kSegBytes;
  // The inner store never journals, but the reserved area still bounds the
  // data blocks; keep it small for the 4096-block test disk.
  cfg.inner.journal_blocks = 512;
  return cfg;
}

constexpr std::size_t kSweepNvmBytes = (3u << 19) + kLogBytes;

std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
sweep_history() {
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> h;
  std::uint64_t seed = 1;
  for (int t = 0; t < 8; ++t) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> txn;
    for (int b = 0; b < 4; ++b) {
      const std::uint64_t blkno =
          (b % 2 == 0) ? static_cast<std::uint64_t>(t * 4 + b)
                       : static_cast<std::uint64_t>(b);
      txn.emplace_back(blkno, seed++);
    }
    h.push_back(std::move(txn));
  }
  return h;
}

struct SweepRun {
  Expected committed;
  std::size_t committed_txns = 0;
  std::uint64_t steps = 0;
  bool crashed = false;
};

SweepRun run_sweep(nvm::NvmDevice& nvm, blockdev::MemBlockDevice& disk,
                   std::uint64_t crash_step) {
  auto be = backend::NvLogBackend::format(nvm, disk, sweep_cfg());
  nvm.injector.disarm();
  if (crash_step > 0) nvm.injector.arm(crash_step);
  SweepRun r;
  const auto history = sweep_history();
  try {
    for (std::size_t t = 0; t < history.size(); ++t) {
      be->begin();
      for (const auto& [blkno, seed] : history[t]) {
        const auto data = block_of(seed);
        be->stage(blkno, data);
      }
      be->commit();
      for (const auto& [blkno, seed] : history[t]) r.committed[blkno] = seed;
      ++r.committed_txns;
      // Periodic drains put the apply / prefix-advance crash points in play.
      if (t % 3 == 2) be->flush();
    }
    be->flush();
  } catch (const nvm::CrashException&) {
    r.crashed = true;
  }
  r.steps = nvm.injector.steps_seen();
  nvm.injector.disarm();
  return r;
}

/// Reads the full block universe through `be` and matches it against one of
/// `acceptable` (committed state, or committed + the ambiguous last txn).
bool state_matches(backend::NvLogBackend& be,
                   const std::vector<Expected>& acceptable,
                   const Expected& universe) {
  std::vector<std::byte> buf(kBlock);
  const auto zero = fingerprint(std::vector<std::byte>(kBlock, std::byte{0}));
  for (const Expected& exp : acceptable) {
    bool match = true;
    for (const auto& [blkno, _] : universe) {
      be.read_block(blkno, buf);
      auto it = exp.find(blkno);
      const std::uint64_t want =
          it != exp.end() ? fingerprint(block_of(it->second)) : zero;
      if (fingerprint(buf) != want) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::vector<Expected> acceptable_states(const SweepRun& run) {
  std::vector<Expected> acceptable{run.committed};
  const auto history = sweep_history();
  if (run.committed_txns < history.size()) {
    // The in-flight txn's absorb may have reached its fence before the
    // crash hit between durability and the commit call returning.
    Expected with_next = run.committed;
    for (const auto& [blkno, seed] : history[run.committed_txns])
      with_next[blkno] = seed;
    acceptable.push_back(with_next);
  }
  return acceptable;
}

TEST(NvLogBackendCrash, EveryStepRecoversAndReCrashMidDrainIsIdempotent) {
  // Learn the step count with a disarmed probe run.
  sim::SimClock probe_clock;
  nvm::NvmDevice probe_nvm(kSweepNvmBytes, nvdimm_profile(), probe_clock);
  blockdev::MemBlockDevice probe_disk(1 << 12);
  const SweepRun full = run_sweep(probe_nvm, probe_disk, 0);
  ASSERT_FALSE(full.crashed);
  ASSERT_GT(full.steps, 50u);

  Expected universe;
  for (const auto& txn : sweep_history())
    for (const auto& [blkno, seed] : txn) universe[blkno] = seed;

  Rng rng(7);
  for (std::uint64_t step = 1; step <= full.steps; ++step) {
    sim::SimClock clock;
    nvm::NvmDevice nvm(kSweepNvmBytes, nvdimm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 12);
    const SweepRun run = run_sweep(nvm, disk, step);
    ASSERT_TRUE(run.crashed) << "step " << step << " did not crash";
    nvm.crash(rng, 0.5);

    const auto acceptable = acceptable_states(run);
    {
      auto rec = backend::NvLogBackend::recover(nvm, disk, sweep_cfg());
      ASSERT_TRUE(state_matches(*rec, acceptable, universe))
          << "inconsistent recovery after crash at step " << step;

      // Re-crash mid-drain: arm a rotating step inside the unmount drain,
      // so over the sweep the second crash lands on every drain window
      // (coalesce, apply, prefix advance, prefix persist).
      nvm.injector.arm(step % 5 + 1);
      try {
        rec->flush();
      } catch (const nvm::CrashException&) {
      }
      nvm.injector.disarm();
    }
    nvm.crash(rng, 0.5);

    // Second recovery must land in the same acceptable set (draining moves
    // data between tiers, never changes what a read returns), and a full
    // drain afterwards must leave the log empty with the state intact.
    auto rec2 = backend::NvLogBackend::recover(nvm, disk, sweep_cfg());
    ASSERT_TRUE(state_matches(*rec2, acceptable, universe))
        << "re-crash mid-drain broke recovery at step " << step;
    rec2->flush();
    EXPECT_EQ(rec2->tier().live_records(), 0u);
    ASSERT_TRUE(state_matches(*rec2, acceptable, universe))
        << "post-drain state diverged at step " << step;
  }
}

TEST(NvLogBackend, ReadsHitLogThenFallThrough) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(kSweepNvmBytes, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 12);
  auto be = backend::NvLogBackend::format(nvm, disk, sweep_cfg());

  be->begin();
  const auto d1 = block_of(71);
  be->stage(9, d1);
  be->commit();

  std::vector<std::byte> buf(kBlock);
  be->read_block(9, buf);
  EXPECT_EQ(fingerprint(buf), fingerprint(d1));
  EXPECT_GT(be->tier().stats().log_hits, 0u);

  be->flush();  // drained to the inner store
  EXPECT_EQ(be->tier().live_records(), 0u);
  be->read_block(9, buf);
  EXPECT_EQ(fingerprint(buf), fingerprint(d1));
}

// ---------------------------------------------------------------------------
// Wear-aware allocation satellite.
// ---------------------------------------------------------------------------

TEST(FreeMonitor, RotationReusesLongestFreeId) {
  core::FreeMonitor fifo(3, /*rotate=*/true);
  const std::uint32_t first = fifo.take();
  (void)fifo.take();
  (void)fifo.take();
  fifo.give(first);
  // Only `first` is free; rotation hands it back out.
  EXPECT_EQ(fifo.take(), first);

  core::FreeMonitor lifo(3, /*rotate=*/false);
  const std::uint32_t a = lifo.take();
  lifo.give(a);
  EXPECT_EQ(lifo.take(), a);  // LIFO reuses the just-freed id immediately
}

TEST(FreeMonitor, RotationIsFifoOverGives) {
  core::FreeMonitor fm(4, /*rotate=*/true);
  std::vector<std::uint32_t> taken;
  for (int i = 0; i < 4; ++i) taken.push_back(fm.take());
  fm.give(taken[2]);
  fm.give(taken[0]);
  fm.give(taken[3]);
  EXPECT_EQ(fm.take(), taken[2]);
  EXPECT_EQ(fm.take(), taken[0]);
  EXPECT_EQ(fm.take(), taken[3]);
}

TEST(FreeMonitor, OrderByWearHandsOutLeastWornFirst) {
  const std::vector<std::uint64_t> wear = {50, 5, 90, 20};
  const auto wear_of = [&](std::uint32_t id) { return wear[id]; };

  core::FreeMonitor fifo(4, /*rotate=*/true);
  fifo.order_by_wear(wear_of);
  EXPECT_EQ(fifo.take(), 1u);
  EXPECT_EQ(fifo.take(), 3u);
  EXPECT_EQ(fifo.take(), 0u);
  EXPECT_EQ(fifo.take(), 2u);

  core::FreeMonitor lifo(4, /*rotate=*/false);
  lifo.order_by_wear(wear_of);
  EXPECT_EQ(lifo.take(), 1u);  // least-worn first in LIFO order too
  EXPECT_EQ(lifo.take(), 3u);
}

TEST(WearLevel, TincaWearLevelledCacheRoundtrips) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(1 << 20, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 12);
  core::TincaConfig cfg;
  cfg.ring_bytes = 4096;
  cfg.wear_level = true;
  Expected expected;
  {
    auto cache = core::TincaCache::format(nvm, disk, cfg);
    std::uint64_t seed = 500;
    for (int t = 0; t < 12; ++t) {
      auto txn = cache->tinca_init_txn();
      for (int b = 0; b < 3; ++b) {
        const std::uint64_t blkno = (t * 2 + b) % 10;
        txn.add(blkno, block_of(seed));
        expected[blkno] = seed++;
      }
      cache->tinca_commit(txn);
    }
    std::vector<std::byte> buf(kBlock);
    for (const auto& [blkno, want] : expected) {
      cache->read_block(blkno, buf);
      EXPECT_EQ(fingerprint(buf), fingerprint(block_of(want)));
    }
  }
  // Recovery re-seeds the free list from media wear and must still serve
  // every committed block.
  auto rec = core::TincaCache::recover(nvm, disk, cfg);
  std::vector<std::byte> buf(kBlock);
  for (const auto& [blkno, want] : expected) {
    rec->read_block(blkno, buf);
    EXPECT_EQ(fingerprint(buf), fingerprint(block_of(want)));
  }
}

TEST(WearLevel, RotationSpreadsHotBlockWrites) {
  // One hot disk block rewritten many times: LIFO burns one NVM data block;
  // rotation cycles the whole free pool, capping per-line wear.  Measure the
  // data area only — the global hottest line is Tinca's Head pointer, which
  // rotation deliberately does not touch.
  const auto run = [](bool wear_level) {
    sim::SimClock clock;
    nvm::NvmDevice nvm(1 << 20, pcm_profile(), clock);
    blockdev::MemBlockDevice disk(1 << 12);
    core::TincaConfig cfg;
    cfg.ring_bytes = 4096;
    cfg.wear_level = wear_level;
    auto cache = core::TincaCache::format(nvm, disk, cfg);
    for (int i = 0; i < 200; ++i) {
      auto txn = cache->tinca_init_txn();
      txn.add(0, block_of(static_cast<std::uint64_t>(i)));
      cache->tinca_commit(txn);
    }
    const auto& l = cache->layout();
    return nvm.wear(l.data_off, l.num_blocks * core::kBlockSize);
  };
  const auto lifo = run(false);
  const auto fifo = run(true);
  // Identical work, so comparable totals; the hottest data line must cool
  // down substantially under rotation.
  EXPECT_LT(fifo.max_line_writes * 2, lifo.max_line_writes);
}

}  // namespace
}  // namespace tinca::nvlog
