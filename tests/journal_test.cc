// Unit tests for the JBD2-style redo journal (double writes included).
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "classic/journal.h"
#include "common/bytes.h"

namespace tinca::classic {
namespace {

constexpr std::size_t kNvmBytes = 8 << 20;
constexpr std::uint64_t kDiskBlocks = 1 << 15;
constexpr std::uint64_t kJournalBlocks = 256;

struct Fixture {
  sim::SimClock clock;
  nvm::NvmDevice dev{kNvmBytes, pcm_profile(), clock};
  blockdev::MemBlockDevice disk{kDiskBlocks};
  std::unique_ptr<FlashCache> cache;
  std::unique_ptr<Journal> journal;

  Fixture() {
    cache = FlashCache::format(dev, disk, FlashCacheConfig{});
    JournalConfig jc;
    jc.base_blkno = kDiskBlocks - kJournalBlocks;
    jc.length_blocks = kJournalBlocks;
    journal = Journal::format(*cache, jc);
  }

  std::vector<std::byte> block(std::uint64_t seed) const {
    std::vector<std::byte> b(blockdev::kBlockSize);
    fill_pattern(b, seed);
    return b;
  }

  void commit_one(std::uint64_t blkno, std::uint64_t seed) {
    journal->commit({{blkno, block(seed)}});
  }
};

TEST(Journal, CommitWritesDescriptorLogsAndCommitBlock) {
  Fixture f;
  f.journal->commit({{10, f.block(1)}, {11, f.block(2)}});
  const auto& s = f.journal->stats();
  EXPECT_EQ(s.txns_committed, 1u);
  EXPECT_EQ(s.descriptor_blocks_written, 1u);
  EXPECT_EQ(s.log_blocks_written, 2u);
  EXPECT_EQ(s.commit_blocks_written, 1u);
}

TEST(Journal, PendingServesLatestCommittedData) {
  Fixture f;
  f.commit_one(5, 1);
  ASSERT_NE(f.journal->pending(5), nullptr);
  EXPECT_EQ(*f.journal->pending(5), f.block(1));
  f.commit_one(5, 2);
  EXPECT_EQ(*f.journal->pending(5), f.block(2));
  EXPECT_EQ(f.journal->pending(99), nullptr);
}

TEST(Journal, CheckpointWritesHomeLocationAndClearsPending) {
  Fixture f;
  f.commit_one(5, 1);
  f.journal->checkpoint_all();
  EXPECT_EQ(f.journal->pending(5), nullptr);
  EXPECT_EQ(f.journal->stats().checkpoint_writes, 1u);
  std::vector<std::byte> got(blockdev::kBlockSize);
  f.cache->read_block(5, got);
  EXPECT_EQ(got, f.block(1));
}

TEST(Journal, DoubleWriteAmplificationIsVisible) {
  // The §3.1 phenomenon: with journaling every block reaches the cache
  // twice (log + checkpoint).
  Fixture f;
  const auto before = f.dev.stats().clflush;
  for (std::uint64_t i = 0; i < 16; ++i) f.commit_one(100 + i, i);
  f.journal->checkpoint_all();
  const double per_block =
      static_cast<double>(f.dev.stats().clflush - before) / 16.0;
  // Two data writes (128 line flushes each incl. flashcache metadata) plus
  // descriptor/commit/superblock overhead.
  EXPECT_GT(per_block, 2 * 128.0);
}

TEST(Journal, RingWrapsUnderSustainedLoad) {
  Fixture f;
  // Far more traffic than the ring holds: forces checkpoints.  Blocks are
  // mostly unique so checkpoint actually writes them home (a re-logged
  // block is skipped in favour of the newer transaction's copy).
  for (std::uint64_t i = 0; i < 500; ++i) f.commit_one(i, i);
  EXPECT_GT(f.journal->stats().checkpoint_writes, 0u);
  EXPECT_GT(f.journal->free_ring_blocks(), 0u);
}

TEST(Journal, ReloggedBlocksSkippedAtCheckpoint) {
  Fixture f;
  f.commit_one(5, 1);
  f.commit_one(5, 2);  // re-logs block 5 in a newer txn
  f.journal->checkpoint_all();
  // Only the newest copy is written home, once.
  EXPECT_EQ(f.journal->stats().checkpoint_writes, 1u);
  std::vector<std::byte> got(blockdev::kBlockSize);
  f.cache->read_block(5, got);
  EXPECT_EQ(got, f.block(2));
}

TEST(Journal, OversizedTransactionRejected) {
  Fixture f;
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> blocks;
  for (std::uint64_t i = 0; i <= f.journal->max_txn_blocks() + 2; ++i)
    blocks.emplace_back(i, f.block(i));
  EXPECT_THROW(f.journal->commit(blocks), ContractViolation);
}

TEST(Journal, ReplayRecoversCommittedTransactions) {
  Fixture f;
  f.commit_one(7, 1);
  f.commit_one(8, 2);
  f.commit_one(7, 3);
  // Crash: nothing checkpointed, pending map lost with DRAM.
  f.dev.crash_discard_all();
  auto cache2 = FlashCache::recover(f.dev, f.disk, FlashCacheConfig{});
  JournalConfig jc;
  jc.base_blkno = kDiskBlocks - kJournalBlocks;
  jc.length_blocks = kJournalBlocks;
  auto journal2 = Journal::recover(*cache2, jc);
  EXPECT_EQ(journal2->stats().txns_replayed, 3u);
  std::vector<std::byte> got(blockdev::kBlockSize);
  cache2->read_block(7, got);
  EXPECT_EQ(got, f.block(3)) << "latest committed version must win";
  cache2->read_block(8, got);
  EXPECT_EQ(got, f.block(2));
}

TEST(Journal, ReplayStopsAtUnsealedTransaction) {
  // Simulate a torn commit: write a descriptor + log but no commit block by
  // crashing the NVM beneath the journal write path mid-transaction is hard
  // to stage directly, so emulate by committing and then corrupting the
  // commit block's slot in the cache.
  Fixture f;
  f.commit_one(7, 1);
  // Second txn sealed normally, then we smash its commit block.
  f.commit_one(8, 2);
  // Commit block of txn 2 lives right before head; overwrite it with junk.
  // (Offsets: txn1 = desc,log,commit at ring 0..2; txn2 at 3..5.)
  const std::uint64_t commit_blk = (kDiskBlocks - kJournalBlocks) + 1 + 5;
  std::vector<std::byte> junk(blockdev::kBlockSize, std::byte{0xEE});
  f.cache->write_block(commit_blk, junk);
  f.dev.crash_discard_all();

  auto cache2 = FlashCache::recover(f.dev, f.disk, FlashCacheConfig{});
  JournalConfig jc;
  jc.base_blkno = kDiskBlocks - kJournalBlocks;
  jc.length_blocks = kJournalBlocks;
  auto journal2 = Journal::recover(*cache2, jc);
  EXPECT_EQ(journal2->stats().txns_replayed, 1u) << "torn txn must be discarded";
  std::vector<std::byte> got(blockdev::kBlockSize);
  cache2->read_block(7, got);
  EXPECT_EQ(got, f.block(1));
  cache2->read_block(8, got);
  EXPECT_NE(got, f.block(2)) << "unsealed txn must not be replayed";
}

TEST(Journal, EmptyCommitIsANoop) {
  Fixture f;
  f.journal->commit({});
  EXPECT_EQ(f.journal->stats().txns_committed, 1u);
  EXPECT_EQ(f.journal->stats().log_blocks_written, 0u);
}

TEST(Journal, JournalTrafficConsumesCacheSpace) {
  // §5.4.2's mechanism: journal blocks occupy the NVM cache, reducing the
  // effective capacity for home blocks.
  Fixture f;
  for (std::uint64_t i = 0; i < 32; ++i) f.commit_one(i, i);
  std::uint64_t journal_resident = 0;
  for (std::uint64_t b = kDiskBlocks - kJournalBlocks; b < kDiskBlocks; ++b)
    if (f.cache->cached(b)) ++journal_resident;
  EXPECT_GT(journal_resident, 32u);
}

}  // namespace
}  // namespace tinca::classic
