// Bench — NVM write-ahead tier: fsync-heavy small writes (DESIGN.md §13).
//
// Workload: single-block transactions, each committed (= fsynced)
// immediately, 80% of them re-writing a small hot set — the mail-spool /
// database-WAL pattern that motivates log-structured NVM staging.  Disk
// writes are synchronous, so every journal block Classic writes stalls the
// committer, while NvLog-Classic retires the same writes as one NVM append
// per commit plus background coalesced drains.  Tinca rides along as the
// specialised-NVM-cache reference point.
//
// The second half benches the DEEP stacks (DESIGN.md §16): the same log
// tier draining into a full TincaCache / ShardedTinca inner, measured on a
// commit-window clock (only time spent inside commit() counts, summed over
// the outer clock and every shard clock), plus the watermark-ring wear
// ablation.
//
// Usage:
//   bench_nvlog [--txns N] [--json <path>]
//
// Exit status is nonzero unless NvLog-Classic's fsync-heavy throughput is
// at least 2x classic-journal's AND the drain coalesced at least one
// superseded record AND the §16 stacked gates hold: NvLog-Sharded >= 2x
// Sharded commit throughput, parallel drain-lag p95 <= 0.5x sequential,
// and watermark rotation cools the hottest metadata line >= 10x.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <random>
#include <vector>

#include "backend/nvlog_backend.h"
#include "backend/nvlog_stacked_backend.h"
#include "backend/sharded_backend.h"
#include "bench_reporter.h"
#include "bench_util.h"
#include "common/bytes.h"
#include "nvlog/log_meta.h"
#include "nvlog/nvlog_tier.h"
#include "obs/metrics.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

struct RunResult {
  Histogram commit_lat;            ///< per-commit span (virtual ns)
  std::uint64_t ops = 0;           ///< measured commits
  double secs = 0.0;               ///< measured virtual seconds
  std::uint64_t disk_writes = 0;   ///< measured window only
  nvlog::NvLogStats log;           ///< zeroed for non-NvLog stacks
};

RunResult run_one(backend::StackKind kind, std::uint64_t txns) {
  backend::StackConfig cfg = scaled_stack(kind);
  // Synchronous disk writes: committing IS fsyncing, so whoever puts disk
  // blocks on the commit path pays for them in the commit span.
  cfg.disk_writes = blockdev::WritePolicy::kSync;
  // Same reserved journal area for the inner store as for classic-journal,
  // so both address identical data-block ranges.
  cfg.nvlog.inner.journal_blocks = ScaledDefaults::kJournalBlocks;
  // Background drains between commits, like the cleaner bench.
  cfg.nvlog.cleaner.mode = cleaner::CleanerMode::kStepped;
  backend::Stack stack(cfg);
  backend::TxnBackend& be = stack.backend();

  // 80% of writes land in a 64-block hot set: segments retire holding
  // several generations of the same blocks, which is what coalescing eats.
  constexpr std::uint64_t kUniverse = 2048;
  constexpr std::uint64_t kHotSet = 64;
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<std::uint64_t> hot(0, kHotSet - 1);
  std::uniform_int_distribution<std::uint64_t> cold(kHotSet, kUniverse - 1);
  std::uniform_int_distribution<int> coin(0, 99);
  std::vector<std::byte> blk(4096);

  const auto run_txns = [&](std::uint64_t n) {
    for (std::uint64_t t = 0; t < n; ++t) {
      const std::uint64_t blkno = coin(rng) < 80 ? hot(rng) : cold(rng);
      fill_pattern(blk, blkno ^ t);
      be.begin();
      be.stage(blkno, blk);
      be.commit();
      be.cleaner_step();  // no-op on stacks without one
    }
  };

  run_txns(txns / 4);  // warmup: fill caches / seal first segments

  stack.enable_tracing();
  const std::uint64_t disk_before = stack.disk_blocks_written();
  const std::uint64_t t0 = stack.clock().now();
  const nvlog::NvLogStats warm =
      kind == backend::StackKind::kNvLogClassic
          ? static_cast<backend::NvLogBackend&>(be).tier().stats()
          : nvlog::NvLogStats{};
  run_txns(txns);

  RunResult r;
  if (const Histogram* h = commit_histogram(stack)) r.commit_lat = *h;
  r.ops = txns;
  r.secs = static_cast<double>(stack.clock().now() - t0) /
           static_cast<double>(sim::kSec);
  r.disk_writes = stack.disk_blocks_written() - disk_before;
  if (kind == backend::StackKind::kNvLogClassic) {
    r.log = static_cast<backend::NvLogBackend&>(be).tier().stats();
    r.log.absorbed_txns -= warm.absorbed_txns;
    r.log.absorbed_records -= warm.absorbed_records;
    r.log.drained_records -= warm.drained_records;
    r.log.coalesced_records -= warm.coalesced_records;
    r.log.segments_recycled -= warm.segments_recycled;
  }
  return r;
}

double kiops(const RunResult& r) {
  return r.secs == 0.0 ? 0.0
                       : static_cast<double>(r.ops) / r.secs / 1000.0;
}

/// Fraction of retired records that were superseded before ever reaching
/// the disk — the write traffic coalescing deleted outright.
double coalesce_ratio(const nvlog::NvLogStats& s) {
  const std::uint64_t retired = s.drained_records + s.coalesced_records;
  return retired == 0 ? 0.0
                      : static_cast<double>(s.coalesced_records) /
                            static_cast<double>(retired);
}

void emit(Table& t, BenchReporter& reporter, const char* name,
          const RunResult& r) {
  t.add_row({name, Table::num(kiops(r), 1),
             Table::num(static_cast<double>(r.commit_lat.quantile(0.50)) / 1000.0, 2),
             Table::num(static_cast<double>(r.commit_lat.quantile(0.95)) / 1000.0, 2),
             Table::num(static_cast<double>(r.commit_lat.quantile(0.99)) / 1000.0, 2),
             Table::num(per_op(r.disk_writes, 0, r.ops), 2)});
  reporter.add_row(name)
      .metric("iops_k", kiops(r))
      .metric("commit_p50_us",
              static_cast<double>(r.commit_lat.quantile(0.50)) / 1000.0)
      .metric("commit_p95_us",
              static_cast<double>(r.commit_lat.quantile(0.95)) / 1000.0)
      .metric("commit_p99_us",
              static_cast<double>(r.commit_lat.quantile(0.99)) / 1000.0)
      .metric("disk_writes_per_op", per_op(r.disk_writes, 0, r.ops));
}

// --- Deep stacks (DESIGN.md §16) -------------------------------------------

/// Virtual now summed over the outer clock and every inner shard clock, so
/// commit spans that advance a shard's private clock are not invisible.
std::uint64_t all_clocks_now(backend::Stack& stack, backend::StackKind kind) {
  std::uint64_t t = stack.clock().now();
  shard::ShardedTinca* sh = nullptr;
  if (kind == backend::StackKind::kShardedTinca) {
    sh = &static_cast<backend::ShardedBackend&>(stack.backend()).sharded();
  } else if (kind == backend::StackKind::kNvLogSharded) {
    sh = &static_cast<backend::NvLogStackedBackend&>(stack.backend())
              .inner_sharded()
              ->sharded();
  }
  if (sh != nullptr)
    for (std::uint32_t s = 0; s < sh->shard_count(); ++s)
      t += sh->shard_clock(s).now();
  return t;
}

/// One fsync-heavy run over a deep stack, timed on the commit window only:
/// background drains (cleaner_step) are real work but not commit latency —
/// exactly the §16 claim that the log takes the inner stack (and its disk
/// evictions) off the fsync path.
RunResult run_stacked(backend::StackKind kind, std::uint64_t txns,
                      bool parallel_drain, Histogram* drain_apply_out) {
  backend::StackConfig cfg = scaled_stack(kind);
  cfg.disk_writes = blockdev::WritePolicy::kSync;
  // Shrink the NVM so the 2048-block universe overflows the inner caches:
  // the Sharded baseline must evict ON the commit path (synchronous disk
  // writes), the stacked log absorbs the same commits in one append.
  cfg.nvm_bytes = 5ull << 20;
  cfg.tinca.ring_bytes = 256 * 1024;  // per shard
  cfg.nvlog_stacked.log_bytes = 2ull << 20;
  cfg.nvlog_stacked.cleaner.mode = cleaner::CleanerMode::kStepped;
  cfg.nvlog_stacked.parallel_drain = parallel_drain;
  backend::Stack stack(cfg);
  backend::TxnBackend& be = stack.backend();

  constexpr std::uint64_t kUniverse = 2048;
  constexpr std::uint64_t kHotSet = 64;
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<std::uint64_t> hot(0, kHotSet - 1);
  std::uniform_int_distribution<std::uint64_t> cold(kHotSet, kUniverse - 1);
  std::uniform_int_distribution<int> coin(0, 99);
  std::vector<std::byte> blk(4096);

  RunResult r;
  const auto commit_one = [&](std::uint64_t blkno, std::uint64_t salt,
                              bool measured) {
    fill_pattern(blk, blkno ^ salt);
    be.begin();
    be.stage(blkno, blk);
    const std::uint64_t c0 = all_clocks_now(stack, kind);
    be.commit();
    if (measured) r.commit_lat.record(all_clocks_now(stack, kind) - c0);
    be.cleaner_step();
  };

  // Warmup: one sequential pass over the whole universe dirties every
  // block, filling the inner caches to capacity — the measured window runs
  // at steady state, where every cold miss costs the baseline an eviction.
  // The measured mix is 50% hot / 50% cold: colder than the first table's
  // mail-spool mix on purpose, because THIS table is about who pays for
  // capacity misses when every commit is an fsync.
  for (std::uint64_t b = 0; b < kUniverse; ++b) commit_one(b, 0, false);
  for (std::uint64_t t = 0; t < txns / 4; ++t)
    commit_one(coin(rng) < 50 ? hot(rng) : cold(rng), t, false);

  const std::uint64_t disk_before = stack.disk_blocks_written();
  for (std::uint64_t t = 0; t < txns; ++t)
    commit_one(coin(rng) < 50 ? hot(rng) : cold(rng), t, true);
  r.disk_writes = stack.disk_blocks_written() - disk_before;

  r.ops = txns;
  r.secs = static_cast<double>(r.commit_lat.sum()) /
           static_cast<double>(sim::kSec);
  if (kind != backend::StackKind::kShardedTinca) {
    auto& nb = static_cast<backend::NvLogStackedBackend&>(be);
    r.log = nb.tier().stats();
    if (drain_apply_out != nullptr) *drain_apply_out = r.log.drain_apply;
  }
  return r;
}

/// Watermark-ring wear ablation at tier level: N drain cycles with one slot
/// (the pre-§16 hot line) vs the rotating ring; returns the hottest line's
/// write count over the metadata ring region.
std::uint64_t meta_hot_line_writes(std::uint32_t slots, int cycles) {
  struct NullSink : nvlog::NvLogTier::DrainSink {
    void drain_apply(const DrainBatch& blocks) override { (void)blocks; }
  } sink;
  sim::SimClock clock;
  nvm::NvmDevice nvm(1 << 19, nvdimm_profile(), clock);
  nvlog::NvLogConfig cfg;
  cfg.segment_bytes = 64 * 1024;
  cfg.watermark_slots = slots;
  auto tier = nvlog::NvLogTier::format(nvm, cfg);
  std::vector<std::byte> blk(4096);
  for (int i = 0; i < cycles; ++i) {
    fill_pattern(blk, static_cast<std::uint64_t>(i));
    std::vector<std::pair<std::uint64_t, std::span<const std::byte>>> blocks;
    blocks.emplace_back(1, blk);
    tier->absorb_commit(blocks, sink);
    tier->drain_all(sink);  // one watermark advance per cycle
  }
  return nvm
      .wear(nvlog::kWatermarkBase,
            nvlog::kLogMetaBytes - nvlog::kWatermarkBase)
      .max_line_writes;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("nvlog", argc, argv);

  std::uint64_t txns = 8000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--txns") == 0 && i + 1 < argc) {
      txns = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::cerr << "usage: bench_nvlog [--txns N] [--json <path>]\n";
      return 2;
    }
  }
  reporter.config("txns", txns);
  reporter.config("blocks_per_txn", std::uint64_t{1});
  reporter.config("hot_set_pct", std::uint64_t{80});
  reporter.config("disk_writes", "sync");
  reporter.config("nvm_profile", "pcm");
  reporter.config("disk_profile", "ssd");

  banner("NVM write-ahead tier",
         "fsync-heavy 1-block commits: log staging vs disk journal");

  const RunResult classic = run_one(backend::StackKind::kClassic, txns);
  const RunResult nvlog_r = run_one(backend::StackKind::kNvLogClassic, txns);
  const RunResult tinca = run_one(backend::StackKind::kTinca, txns);

  Table t({"stack", "kIOPS", "p50 us", "p95 us", "p99 us", "disk wr/op"});
  emit(t, reporter, "Classic-journal", classic);
  emit(t, reporter, "NvLog-Classic", nvlog_r);
  emit(t, reporter, "Tinca", tinca);
  std::cout << t.render();

  const double speedup = kiops(classic) == 0.0
                             ? 0.0
                             : kiops(nvlog_r) / kiops(classic);
  const double ratio = coalesce_ratio(nvlog_r.log);
  reporter.add_row("NvLog-drain")
      .metric("speedup_vs_classic", speedup)
      .metric("coalesce_ratio", ratio)
      .metric("absorbed_txns", static_cast<double>(nvlog_r.log.absorbed_txns))
      .metric("drained_records",
              static_cast<double>(nvlog_r.log.drained_records))
      .metric("coalesced_records",
              static_cast<double>(nvlog_r.log.coalesced_records))
      .metric("segments_recycled",
              static_cast<double>(nvlog_r.log.segments_recycled));

  std::cout << "\nNvLog-Classic vs classic-journal: " << Table::num(speedup, 2)
            << "x throughput; drain coalesced "
            << Table::num(100.0 * ratio, 1) << "% of retired records ("
            << nvlog_r.log.coalesced_records << " of "
            << (nvlog_r.log.drained_records + nvlog_r.log.coalesced_records)
            << ").\n";
  std::cout << "Expectation: absorbing fsyncs in NVM takes the synchronous\n"
               "disk journal off the commit path (>= 2x here), and the\n"
               "hot-set overwrites never reach the disk at all.\n";

  // --- Deep stacks (DESIGN.md §16): log over the REAL caches. --------------
  banner("NVM write-ahead tier, deep-stacked",
         "commit-window throughput: log-over-Tinca/Sharded vs bare Sharded");

  Histogram drain_par, drain_seq;
  const RunResult sharded =
      run_stacked(backend::StackKind::kShardedTinca, txns, true, nullptr);
  const RunResult nv_tinca =
      run_stacked(backend::StackKind::kNvLogTinca, txns, true, nullptr);
  const RunResult nv_sharded =
      run_stacked(backend::StackKind::kNvLogSharded, txns, true, &drain_par);
  const RunResult nv_sharded_seq = run_stacked(
      backend::StackKind::kNvLogSharded, txns, false, &drain_seq);
  (void)nv_sharded_seq;

  Table t2({"stack", "kIOPS", "p50 us", "p95 us", "p99 us", "disk wr/op"});
  emit(t2, reporter, "Sharded", sharded);
  emit(t2, reporter, "NvLog-Tinca", nv_tinca);
  emit(t2, reporter, "NvLog-Sharded", nv_sharded);
  std::cout << t2.render();

  const double stacked_speedup =
      kiops(sharded) == 0.0 ? 0.0 : kiops(nv_sharded) / kiops(sharded);
  const double lag_p95_par =
      static_cast<double>(drain_par.quantile(0.95)) / 1000.0;
  const double lag_p95_seq =
      static_cast<double>(drain_seq.quantile(0.95)) / 1000.0;
  const double lag_ratio = lag_p95_seq == 0.0 ? 1.0 : lag_p95_par / lag_p95_seq;
  reporter.add_row("NvLog-stacked")
      .metric("speedup_vs_sharded", stacked_speedup)
      .metric("drain_lag_p95_parallel_us", lag_p95_par)
      .metric("drain_lag_p95_sequential_us", lag_p95_seq)
      .metric("drain_lag_ratio", lag_ratio)
      .metric("partitioned_drains",
              static_cast<double>(nv_sharded.log.partitioned_drains))
      .metric("shard_batches",
              static_cast<double>(nv_sharded.log.shard_batches))
      .metric("coalesce_ratio", coalesce_ratio(nv_sharded.log));

  // Watermark-ring wear ablation: the pre-§16 single hot line vs rotation.
  const std::uint64_t wear_single = meta_hot_line_writes(1, 256);
  const std::uint64_t wear_rotated = meta_hot_line_writes(32, 256);
  const double wear_improvement =
      wear_rotated == 0 ? 0.0
                        : static_cast<double>(wear_single) /
                              static_cast<double>(wear_rotated);
  reporter.add_row("NvLog-meta-wear")
      .metric("hot_line_writes_single_slot", static_cast<double>(wear_single))
      .metric("hot_line_writes_rotated", static_cast<double>(wear_rotated))
      .metric("wear_improvement", wear_improvement);

  std::cout << "\nNvLog-Sharded vs Sharded (commit window): "
            << Table::num(stacked_speedup, 2)
            << "x; parallel drain p95 " << Table::num(lag_p95_par, 1)
            << " us vs sequential " << Table::num(lag_p95_seq, 1)
            << " us (ratio " << Table::num(lag_ratio, 2)
            << "); watermark rotation cools the hot metadata line "
            << Table::num(wear_improvement, 1) << "x ("
            << wear_single << " -> " << wear_rotated << " writes).\n";

  bool ok = reporter.finish();
  if (speedup < 2.0) {
    std::cerr << "GATE FAILED: NvLog speedup " << speedup << " < 2.0\n";
    ok = false;
  }
  if (ratio <= 0.0) {
    std::cerr << "GATE FAILED: drain never coalesced a record\n";
    ok = false;
  }
  if (stacked_speedup < 2.0) {
    std::cerr << "GATE FAILED: NvLog-Sharded stacked speedup "
              << stacked_speedup << " < 2.0\n";
    ok = false;
  }
  if (lag_ratio > 0.5) {
    std::cerr << "GATE FAILED: parallel drain-lag p95 ratio " << lag_ratio
              << " > 0.5\n";
    ok = false;
  }
  if (wear_improvement < 10.0) {
    std::cerr << "GATE FAILED: watermark wear improvement "
              << wear_improvement << "x < 10x\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
