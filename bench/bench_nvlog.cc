// Bench — NVM write-ahead tier: fsync-heavy small writes (DESIGN.md §13).
//
// Workload: single-block transactions, each committed (= fsynced)
// immediately, 80% of them re-writing a small hot set — the mail-spool /
// database-WAL pattern that motivates log-structured NVM staging.  Disk
// writes are synchronous, so every journal block Classic writes stalls the
// committer, while NvLog-Classic retires the same writes as one NVM append
// per commit plus background coalesced drains.  Tinca rides along as the
// specialised-NVM-cache reference point.
//
// Usage:
//   bench_nvlog [--txns N] [--json <path>]
//
// Exit status is nonzero unless NvLog-Classic's fsync-heavy throughput is
// at least 2x classic-journal's AND the drain coalesced at least one
// superseded record (the two headline properties CI gates on).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <random>
#include <vector>

#include "backend/nvlog_backend.h"
#include "bench_reporter.h"
#include "bench_util.h"
#include "common/bytes.h"
#include "obs/metrics.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

struct RunResult {
  Histogram commit_lat;            ///< per-commit span (virtual ns)
  std::uint64_t ops = 0;           ///< measured commits
  double secs = 0.0;               ///< measured virtual seconds
  std::uint64_t disk_writes = 0;   ///< measured window only
  nvlog::NvLogStats log;           ///< zeroed for non-NvLog stacks
};

RunResult run_one(backend::StackKind kind, std::uint64_t txns) {
  backend::StackConfig cfg = scaled_stack(kind);
  // Synchronous disk writes: committing IS fsyncing, so whoever puts disk
  // blocks on the commit path pays for them in the commit span.
  cfg.disk_writes = blockdev::WritePolicy::kSync;
  // Same reserved journal area for the inner store as for classic-journal,
  // so both address identical data-block ranges.
  cfg.nvlog.inner.journal_blocks = ScaledDefaults::kJournalBlocks;
  // Background drains between commits, like the cleaner bench.
  cfg.nvlog.cleaner.mode = cleaner::CleanerMode::kStepped;
  backend::Stack stack(cfg);
  backend::TxnBackend& be = stack.backend();

  // 80% of writes land in a 64-block hot set: segments retire holding
  // several generations of the same blocks, which is what coalescing eats.
  constexpr std::uint64_t kUniverse = 2048;
  constexpr std::uint64_t kHotSet = 64;
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<std::uint64_t> hot(0, kHotSet - 1);
  std::uniform_int_distribution<std::uint64_t> cold(kHotSet, kUniverse - 1);
  std::uniform_int_distribution<int> coin(0, 99);
  std::vector<std::byte> blk(4096);

  const auto run_txns = [&](std::uint64_t n) {
    for (std::uint64_t t = 0; t < n; ++t) {
      const std::uint64_t blkno = coin(rng) < 80 ? hot(rng) : cold(rng);
      fill_pattern(blk, blkno ^ t);
      be.begin();
      be.stage(blkno, blk);
      be.commit();
      be.cleaner_step();  // no-op on stacks without one
    }
  };

  run_txns(txns / 4);  // warmup: fill caches / seal first segments

  stack.enable_tracing();
  const std::uint64_t disk_before = stack.disk_blocks_written();
  const std::uint64_t t0 = stack.clock().now();
  const nvlog::NvLogStats warm =
      kind == backend::StackKind::kNvLogClassic
          ? static_cast<backend::NvLogBackend&>(be).tier().stats()
          : nvlog::NvLogStats{};
  run_txns(txns);

  RunResult r;
  if (const Histogram* h = commit_histogram(stack)) r.commit_lat = *h;
  r.ops = txns;
  r.secs = static_cast<double>(stack.clock().now() - t0) /
           static_cast<double>(sim::kSec);
  r.disk_writes = stack.disk_blocks_written() - disk_before;
  if (kind == backend::StackKind::kNvLogClassic) {
    r.log = static_cast<backend::NvLogBackend&>(be).tier().stats();
    r.log.absorbed_txns -= warm.absorbed_txns;
    r.log.absorbed_records -= warm.absorbed_records;
    r.log.drained_records -= warm.drained_records;
    r.log.coalesced_records -= warm.coalesced_records;
    r.log.segments_recycled -= warm.segments_recycled;
  }
  return r;
}

double kiops(const RunResult& r) {
  return r.secs == 0.0 ? 0.0
                       : static_cast<double>(r.ops) / r.secs / 1000.0;
}

/// Fraction of retired records that were superseded before ever reaching
/// the disk — the write traffic coalescing deleted outright.
double coalesce_ratio(const nvlog::NvLogStats& s) {
  const std::uint64_t retired = s.drained_records + s.coalesced_records;
  return retired == 0 ? 0.0
                      : static_cast<double>(s.coalesced_records) /
                            static_cast<double>(retired);
}

void emit(Table& t, BenchReporter& reporter, const char* name,
          const RunResult& r) {
  t.add_row({name, Table::num(kiops(r), 1),
             Table::num(static_cast<double>(r.commit_lat.quantile(0.50)) / 1000.0, 2),
             Table::num(static_cast<double>(r.commit_lat.quantile(0.95)) / 1000.0, 2),
             Table::num(static_cast<double>(r.commit_lat.quantile(0.99)) / 1000.0, 2),
             Table::num(per_op(r.disk_writes, 0, r.ops), 2)});
  reporter.add_row(name)
      .metric("iops_k", kiops(r))
      .metric("commit_p50_us",
              static_cast<double>(r.commit_lat.quantile(0.50)) / 1000.0)
      .metric("commit_p95_us",
              static_cast<double>(r.commit_lat.quantile(0.95)) / 1000.0)
      .metric("commit_p99_us",
              static_cast<double>(r.commit_lat.quantile(0.99)) / 1000.0)
      .metric("disk_writes_per_op", per_op(r.disk_writes, 0, r.ops));
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("nvlog", argc, argv);

  std::uint64_t txns = 8000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--txns") == 0 && i + 1 < argc) {
      txns = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::cerr << "usage: bench_nvlog [--txns N] [--json <path>]\n";
      return 2;
    }
  }
  reporter.config("txns", txns);
  reporter.config("blocks_per_txn", std::uint64_t{1});
  reporter.config("hot_set_pct", std::uint64_t{80});
  reporter.config("disk_writes", "sync");
  reporter.config("nvm_profile", "pcm");
  reporter.config("disk_profile", "ssd");

  banner("NVM write-ahead tier",
         "fsync-heavy 1-block commits: log staging vs disk journal");

  const RunResult classic = run_one(backend::StackKind::kClassic, txns);
  const RunResult nvlog_r = run_one(backend::StackKind::kNvLogClassic, txns);
  const RunResult tinca = run_one(backend::StackKind::kTinca, txns);

  Table t({"stack", "kIOPS", "p50 us", "p95 us", "p99 us", "disk wr/op"});
  emit(t, reporter, "Classic-journal", classic);
  emit(t, reporter, "NvLog-Classic", nvlog_r);
  emit(t, reporter, "Tinca", tinca);
  std::cout << t.render();

  const double speedup = kiops(classic) == 0.0
                             ? 0.0
                             : kiops(nvlog_r) / kiops(classic);
  const double ratio = coalesce_ratio(nvlog_r.log);
  reporter.add_row("NvLog-drain")
      .metric("speedup_vs_classic", speedup)
      .metric("coalesce_ratio", ratio)
      .metric("absorbed_txns", static_cast<double>(nvlog_r.log.absorbed_txns))
      .metric("drained_records",
              static_cast<double>(nvlog_r.log.drained_records))
      .metric("coalesced_records",
              static_cast<double>(nvlog_r.log.coalesced_records))
      .metric("segments_recycled",
              static_cast<double>(nvlog_r.log.segments_recycled));

  std::cout << "\nNvLog-Classic vs classic-journal: " << Table::num(speedup, 2)
            << "x throughput; drain coalesced "
            << Table::num(100.0 * ratio, 1) << "% of retired records ("
            << nvlog_r.log.coalesced_records << " of "
            << (nvlog_r.log.drained_records + nvlog_r.log.coalesced_records)
            << ").\n";
  std::cout << "Expectation: absorbing fsyncs in NVM takes the synchronous\n"
               "disk journal off the commit path (>= 2x here), and the\n"
               "hot-set overwrites never reach the disk at all.\n";

  bool ok = reporter.finish();
  if (speedup < 2.0) {
    std::cerr << "GATE FAILED: NvLog speedup " << speedup << " < 2.0\n";
    ok = false;
  }
  if (ratio <= 0.0) {
    std::cerr << "GATE FAILED: drain never coalesced a record\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
