// Ablation — NVM cache size and cache mode.
//
// (a) Sweep the dataset:cache ratio: Tinca's advantage should hold across
//     cache pressure, and the hit-rate gap (Fig 12(c)'s mechanism — journal
//     blocks consuming Classic's cache) should widen as the cache shrinks.
// (b) Tinca write-back (paper default) vs write-through: write-through pays
//     foreground disk writes per commit; write-back defers them to
//     replacement.
#include <iostream>

#include "backend/tinca_backend.h"
#include "bench_reporter.h"
#include "bench_util.h"
#include "workloads/fio.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

struct Out {
  double iops;
  double hit_rate;
};

Out fio_run(backend::StackKind kind, std::uint64_t nvm_bytes,
            bool write_through) {
  backend::StackConfig cfg = scaled_stack(kind);
  cfg.nvm_bytes = nvm_bytes;
  cfg.tinca.write_through = write_through;
  backend::Stack stack(cfg);
  workloads::FioConfig fio;
  fio.dataset_blocks = ScaledDefaults::kFioDatasetBlocks;
  fio.write_pct = 70;
  // Warm-up.
  (void)workloads::run_fio(stack.backend(), stack.clock(), 2 * sim::kSec, fio);
  const auto r =
      workloads::run_fio(stack.backend(), stack.clock(), 6 * sim::kSec, fio);
  Out out{r.write_iops(), 0.0};
  if (kind == backend::StackKind::kTinca) {
    const auto& s =
        dynamic_cast<backend::TincaBackend&>(stack.backend()).cache().stats();
    out.hit_rate = 100.0 * static_cast<double>(s.write_hits) /
                   static_cast<double>(s.write_hits + s.write_misses);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("ablation_cache_size", argc, argv);
  reporter.config("dataset_blocks", ScaledDefaults::kFioDatasetBlocks);
  reporter.config("write_pct", std::uint64_t{70});

  banner("Ablation: cache size and cache mode", "Fio R/W 3/7");

  std::cout << "\n(a) Cache size sweep (dataset fixed at 160 \"MB\")\n";
  Table a({"NVM size MB", "dataset:cache", "Classic IOPS", "Tinca IOPS",
           "gap", "Tinca write hit"});
  for (std::uint64_t mb : {16ull, 32ull, 64ull, 128ull, 256ull}) {
    const Out classic = fio_run(backend::StackKind::kClassic, mb << 20, false);
    const Out tinca = fio_run(backend::StackKind::kTinca, mb << 20, false);
    a.add_row({Table::num(mb), Table::num(160.0 / static_cast<double>(mb), 1) + ":1",
               Table::num(classic.iops, 0), Table::num(tinca.iops, 0),
               Table::num(tinca.iops / classic.iops, 2) + "x",
               Table::num(tinca.hit_rate, 1) + "%"});
    reporter.add_row("cache_mb=" + std::to_string(mb))
        .metric("classic_iops", classic.iops)
        .metric("tinca_iops", tinca.iops)
        .metric("gap", tinca.iops / classic.iops)
        .metric("tinca_write_hit_pct", tinca.hit_rate);
  }
  std::cout << a.render();

  std::cout << "\n(b) Tinca cache mode (64 MB cache)\n";
  Table b({"mode", "write IOPS"});
  const Out wb = fio_run(backend::StackKind::kTinca, 64 << 20, false);
  const Out wt = fio_run(backend::StackKind::kTinca, 64 << 20, true);
  b.add_row({"write-back (paper default)", Table::num(wb.iops, 0)});
  b.add_row({"write-through", Table::num(wt.iops, 0)});
  std::cout << b.render()
            << "Expectation: write-back wins — write-through pays a disk"
               " write per committed block in the foreground.\n";
  reporter.add_row("mode/write_back").metric("write_iops", wb.iops);
  reporter.add_row("mode/write_through").metric("write_iops", wt.iops);
  return reporter.finish() ? 0 : 1;
}
