// Shared discrete-event TPC-C driver for the Fig 8 and Fig 12 benches.
//
// Model (DESIGN.md §5): N users alternate exponential think time with a
// transaction.  A transaction costs
//
//     db_cpu + storage_service * convoy(N)
//
// where `storage_service` is *measured* by executing the transaction's page
// reads and commit on the real stack under a cost probe, `db_cpu` models
// MySQL's query-processing time per TPC-C transaction (lock-held parsing,
// B-tree traversal, replication hooks — storage-independent), and
// convoy(N) = 1 + α(N−1) models lock convoys lengthening effective service
// as concurrency grows.  The whole path is serialized through one FIFO
// resource, as InnoDB's log mutex + JBD2's commit path effectively are.
#pragma once

#include <functional>

#include "backend/classic_backend.h"
#include "backend/tinca_backend.h"
#include "bench_util.h"
#include "common/event_queue.h"
#include "workloads/tpcc.h"

namespace tinca::bench {

struct TpccDesParams {
  sim::Ns run_span = 15 * sim::kSec;
  std::uint32_t users = 20;
  double think_mean_ns = 0.5e6;   ///< 0.5 ms user think time
  double convoy_alpha = 0.02;     ///< lock-convoy growth per extra user
  double zipf_theta = 0.92;       ///< NURand-like hot-set skew
  sim::Ns db_cpu_ns = 300 * sim::kUsec;  ///< MySQL processing per txn
  std::uint64_t warmup_txns = 3000;
};

struct TpccDesResult {
  double tpm = 0;
  double clflush_per_txn = 0;
  double disk_per_txn = 0;
  double write_hit_rate = 0;  ///< percent, steady-state
};

/// Run TPC-C on a freshly formatted stack of `kind` over the given media.
inline TpccDesResult run_tpcc_des(backend::StackKind kind,
                                  const std::string& nvm_profile,
                                  const std::string& disk_profile,
                                  const TpccDesParams& p) {
  backend::Stack stack(scaled_stack(kind, nvm_profile, disk_profile));
  workloads::TpccConfig cfg;
  cfg.dataset_blocks = ScaledDefaults::kTpccDatasetBlocks;
  cfg.zipf_theta = p.zipf_theta;
  workloads::TpccWorkload tpcc(stack.backend(), cfg);

  {
    Rng warm(123);
    for (std::uint64_t i = 0; i < p.warmup_txns; ++i)
      (void)tpcc.execute_txn(warm);
  }

  auto write_hits = [&](std::uint64_t* hits, std::uint64_t* misses) {
    if (kind == backend::StackKind::kTinca) {
      const auto& s =
          dynamic_cast<backend::TincaBackend&>(stack.backend()).cache().stats();
      *hits = s.write_hits;
      *misses = s.write_misses;
    } else {
      // For Classic, count only workload-data writes: the paper's hit rate
      // is about how well the cache serves the application, and journal-
      // area rewrites would inflate it artificially.
      const auto& s = dynamic_cast<backend::ClassicBackend&>(stack.backend())
                          .stack()
                          .cache()
                          .stats();
      *hits = s.data_write_hits;
      *misses = s.data_write_misses;
    }
  };

  const MetricSnapshot before = snapshot(stack);
  const std::uint64_t txns_before = tpcc.stats().txns;
  std::uint64_t hits_before = 0, misses_before = 0;
  write_hits(&hits_before, &misses_before);

  sim::EventQueue events;
  sim::Resource storage;
  const double convoy = 1.0 + p.convoy_alpha * (p.users - 1);
  std::uint64_t completed = 0;

  std::function<void(std::uint64_t, sim::Ns)> user_turn =
      [&](std::uint64_t uid, sim::Ns now) {
        if (now >= p.run_span) return;
        Rng rng(uid * 7919 + completed);
        const sim::Ns service = [&] {
          const sim::CostProbe probe(stack.clock());
          (void)tpcc.execute_txn(rng);
          return probe.elapsed();
        }();
        const auto eff = static_cast<sim::Ns>(
            static_cast<double>(service) * convoy +
            static_cast<double>(p.db_cpu_ns));
        const sim::Ns done = storage.acquire(now, eff);
        if (done <= p.run_span) ++completed;
        const auto think =
            static_cast<sim::Ns>(rng.exponential(p.think_mean_ns));
        if (done + think < p.run_span)
          events.schedule_at(done + think,
                             [&, uid](sim::Ns t) { user_turn(uid, t); });
      };
  Rng seed_rng(42);
  for (std::uint32_t u = 0; u < p.users; ++u)
    events.schedule_at(
        static_cast<sim::Ns>(seed_rng.exponential(p.think_mean_ns)),
        [&, u](sim::Ns t) { user_turn(u, t); });
  events.run();

  const MetricSnapshot after = snapshot(stack);
  const std::uint64_t txns = tpcc.stats().txns - txns_before;
  std::uint64_t hits_after = 0, misses_after = 0;
  write_hits(&hits_after, &misses_after);

  TpccDesResult out;
  out.tpm = static_cast<double>(completed) /
            (static_cast<double>(p.run_span) / 1e9) * 60.0;
  out.clflush_per_txn = per_op(after.clflush, before.clflush, txns);
  out.disk_per_txn = per_op(after.disk_writes, before.disk_writes, txns);
  const double h = static_cast<double>(hits_after - hits_before);
  const double m = static_cast<double>(misses_after - misses_before);
  out.write_hit_rate = (h + m) == 0 ? 0.0 : h / (h + m) * 100.0;
  return out;
}

}  // namespace tinca::bench
