// Microbenchmarks of the core primitives (google-benchmark).
//
// These measure *host* CPU time of the simulation itself — useful for
// keeping the repository's own hot paths fast — and report the simulated
// virtual-time costs as counters, which is where the paper-relevant numbers
// (e.g. virtual nanoseconds per committed block) show up.
#include <benchmark/benchmark.h>

#include "backend/stack_builder.h"
#include "bench_reporter.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/cache_entry.h"
#include "tinca/tinca_cache.h"

namespace {

using namespace tinca;

void BM_CacheEntryCodec(benchmark::State& state) {
  core::CacheEntry e;
  e.valid = true;
  e.role = core::Role::kLog;
  e.modified = true;
  e.disk_blkno = 0x123456789ABCULL;
  e.prev_nvm = 7;
  e.curr_nvm = 9;
  for (auto _ : state) {
    auto raw = e.encode();
    benchmark::DoNotOptimize(raw);
    auto d = core::CacheEntry::decode(raw);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_CacheEntryCodec);

void BM_NvmPersist4K(benchmark::State& state) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1 << 20, pcm_profile(), clock);
  std::vector<std::byte> data(4096);
  fill_pattern(data, 1);
  for (auto _ : state) {
    dev.store(0, data);
    dev.persist(0, 4096);
  }
  state.counters["virtual_ns_per_4K"] =
      static_cast<double>(clock.now()) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_NvmPersist4K);

void BM_TincaCommitSingleBlock(benchmark::State& state) {
  sim::SimClock clock;
  nvm::NvmDevice dev(32 << 20, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  auto cache = core::TincaCache::format(dev, disk,
                                        core::TincaConfig{.ring_bytes = 1 << 20});
  std::vector<std::byte> data(4096);
  fill_pattern(data, 2);
  std::uint64_t blk = 0;
  for (auto _ : state) {
    cache->write_block(blk++ % 4096, data);
  }
  state.counters["virtual_ns_per_commit"] =
      static_cast<double>(clock.now()) / static_cast<double>(state.iterations());
  state.counters["clflush_per_commit"] =
      static_cast<double>(dev.stats().clflush) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_TincaCommitSingleBlock);

void BM_TincaCommitBatch64(benchmark::State& state) {
  sim::SimClock clock;
  nvm::NvmDevice dev(64 << 20, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 17);
  auto cache = core::TincaCache::format(dev, disk,
                                        core::TincaConfig{.ring_bytes = 1 << 20});
  std::vector<std::byte> data(4096);
  fill_pattern(data, 3);
  std::uint64_t base = 0;
  for (auto _ : state) {
    auto txn = cache->tinca_init_txn();
    for (std::uint64_t i = 0; i < 64; ++i) txn.add((base + i) % 8192, data);
    cache->tinca_commit(txn);
    base += 64;
  }
  state.counters["virtual_ns_per_block"] =
      static_cast<double>(clock.now()) /
      static_cast<double>(state.iterations() * 64);
}
BENCHMARK(BM_TincaCommitBatch64);

void BM_ClassicCommitBatch64(benchmark::State& state) {
  sim::SimClock clock;
  nvm::NvmDevice dev(64 << 20, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 17);
  classic::ClassicConfig cfg;
  cfg.journal_blocks = 4096;
  auto stack = classic::ClassicStack::format(dev, disk, cfg);
  std::vector<std::byte> data(4096);
  fill_pattern(data, 4);
  std::uint64_t base = 0;
  for (auto _ : state) {
    auto txn = stack->begin_txn();
    for (std::uint64_t i = 0; i < 64; ++i) txn.add((base + i) % 8192, data);
    stack->commit(txn);
    base += 64;
  }
  state.counters["virtual_ns_per_block"] =
      static_cast<double>(clock.now()) /
      static_cast<double>(state.iterations() * 64);
}
BENCHMARK(BM_ClassicCommitBatch64);

void BM_TincaReadHit(benchmark::State& state) {
  sim::SimClock clock;
  nvm::NvmDevice dev(32 << 20, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  auto cache = core::TincaCache::format(dev, disk,
                                        core::TincaConfig{.ring_bytes = 1 << 20});
  std::vector<std::byte> data(4096);
  for (std::uint64_t i = 0; i < 256; ++i) cache->write_block(i, data);
  std::uint64_t blk = 0;
  for (auto _ : state) {
    cache->read_block(blk++ % 256, data);
  }
}
BENCHMARK(BM_TincaReadHit);

void BM_TincaRecoveryScan(benchmark::State& state) {
  // Recovery cost over a populated cache (mount path).
  sim::SimClock clock;
  nvm::NvmDevice dev(32 << 20, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 16);
  {
    auto cache = core::TincaCache::format(
        dev, disk, core::TincaConfig{.ring_bytes = 1 << 20});
    std::vector<std::byte> data(4096);
    for (std::uint64_t i = 0; i < 2048; ++i) cache->write_block(i, data);
  }
  for (auto _ : state) {
    auto cache = core::TincaCache::recover(
        dev, disk, core::TincaConfig{.ring_bytes = 1 << 20});
    benchmark::DoNotOptimize(cache);
  }
}
BENCHMARK(BM_TincaRecoveryScan);

// Console reporter that mirrors every run into a BenchReporter row so the
// microbenchmarks participate in the same --json machinery as the table
// benches.  Times are per-iteration nanoseconds (the default time unit).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(bench::BenchReporter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      auto& row = out_.add_row(run.benchmark_name());
      row.metric("real_ns", run.GetAdjustedRealTime())
          .metric("cpu_ns", run.GetAdjustedCPUTime())
          .metric("iterations", static_cast<double>(run.iterations));
      for (const auto& [name, counter] : run.counters)
        row.metric(name, counter.value);
    }
  }

 private:
  bench::BenchReporter& out_;
};

}  // namespace

int main(int argc, char** argv) {
  // BenchReporter strips --json before google-benchmark sees the argv.
  tinca::bench::BenchReporter reporter("micro_primitives", argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter console(reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  return reporter.finish() ? 0 : 1;
}
