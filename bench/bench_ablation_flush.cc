// Ablation — cache-line write-back instruction and NVM technology.
//
// §2.1 notes that clflushopt/clwb were proposed to replace clflush "but
// still bring in overheads".  This ablation quantifies that within our
// model: Fio random writes on every NVM technology, with classic clflush vs
// clwb, for both stacks.  The Tinca/Classic gap should persist under clwb —
// the paper's contribution is eliminating *writes*, not making flushes
// cheaper.
#include <iostream>

#include "bench_reporter.h"
#include "bench_util.h"
#include "workloads/fio.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

double fio_iops(backend::StackKind kind, const std::string& nvm) {
  backend::Stack stack(scaled_stack(kind, nvm));
  workloads::FioConfig cfg;
  cfg.dataset_blocks = ScaledDefaults::kFioDatasetBlocks;
  cfg.write_pct = 100;
  const auto r =
      workloads::run_fio(stack.backend(), stack.clock(), 6 * sim::kSec, cfg);
  return r.write_iops();
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("ablation_flush", argc, argv);
  reporter.config("fio_dataset_blocks", ScaledDefaults::kFioDatasetBlocks);

  banner("Ablation: flush instruction x NVM technology",
         "Fio 100% random writes");

  Table t({"NVM", "Classic IOPS", "Classic +clwb", "Tinca IOPS",
           "Tinca +clwb", "gap (clflush)", "gap (clwb)"});
  for (const char* nvm : {"pcm", "sttram", "nvdimm", "reram"}) {
    const double classic = fio_iops(backend::StackKind::kClassic, nvm);
    const double classic_clwb =
        fio_iops(backend::StackKind::kClassic, std::string(nvm) + "+clwb");
    const double tinca = fio_iops(backend::StackKind::kTinca, nvm);
    const double tinca_clwb =
        fio_iops(backend::StackKind::kTinca, std::string(nvm) + "+clwb");
    t.add_row({nvm, Table::num(classic, 0), Table::num(classic_clwb, 0),
               Table::num(tinca, 0), Table::num(tinca_clwb, 0),
               Table::num(tinca / classic, 2) + "x",
               Table::num(tinca_clwb / classic_clwb, 2) + "x"});
    reporter.add_row(nvm)
        .metric("classic_iops", classic)
        .metric("classic_clwb_iops", classic_clwb)
        .metric("tinca_iops", tinca)
        .metric("tinca_clwb_iops", tinca_clwb)
        .metric("gap_clflush", tinca / classic)
        .metric("gap_clwb", tinca_clwb / classic_clwb);
  }
  std::cout << t.render();
  std::cout << "\nExpectation: clwb lifts both stacks (cheaper issue cost)"
               " but the Tinca/Classic gap persists — double writes, not"
               " flush cost, dominate.\n";
  return reporter.finish() ? 0 : 1;
}
