// Fig 3 — the cost of file-system journaling over an NVM cache (paper §3.1).
//
// Panel (a): write traffic to the NVM cache with Ext4 journaling vs without,
// for three Filebench workloads (paper: journaling causes 195–290 % of the
// no-journal traffic).
//
// Panel (b): Fio random-write bandwidth in three configurations — no journal
// & no clflush, + journaling, + clflush/sfence (paper: −31.5 % then −28.3 %).
#include <iostream>

#include "bench_reporter.h"
#include "bench_util.h"
#include "fs/minifs.h"
#include "workloads/filebench.h"
#include "workloads/fio.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

std::uint64_t filebench_nvm_bytes(bool journaling,
                                  workloads::FilebenchKind kind) {
  backend::StackConfig cfg = scaled_stack(journaling
                                              ? backend::StackKind::kClassic
                                              : backend::StackKind::kClassicNoJournal);
  backend::Stack stack(cfg);
  auto fsys = fs::MiniFs::mkfs(stack.backend());
  workloads::FilebenchConfig wl;
  wl.kind = kind;
  wl.nfiles = 768;
  wl.mean_file_bytes = 64 * 1024;
  workloads::FilebenchWorkload bench(*fsys, wl);
  bench.populate();
  // Identical *work* on both sides (fixed op count): the figure compares
  // write traffic for the same workload, not for the same wall time.
  const std::uint64_t before = stack.nvm().stats().bytes_stored;
  for (int op = 0; op < 20000; ++op) bench.step();
  fsys->fsync();
  stack.backend().flush();
  return stack.nvm().stats().bytes_stored - before;
}

double fio_write_bandwidth(bool journaling, bool clflush) {
  backend::StackConfig cfg = scaled_stack(journaling
                                              ? backend::StackKind::kClassic
                                              : backend::StackKind::kClassicNoJournal);
  cfg.classic.cache.use_flush = clflush;
  backend::Stack stack(cfg);
  workloads::FioConfig fio;
  fio.dataset_blocks = ScaledDefaults::kFioDatasetBlocks;
  fio.write_pct = 100;
  const auto r =
      workloads::run_fio(stack.backend(), stack.clock(), 10 * sim::kSec, fio);
  return r.write_iops() * 4096.0 / (1 << 20);  // MB/s
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("fig03_journaling", argc, argv);
  reporter.config("filebench_ops", std::uint64_t{20000});
  reporter.config("fio_dataset_blocks", ScaledDefaults::kFioDatasetBlocks);

  banner("Figure 3", "double writes of journaling over an NVM cache");

  std::cout << "\n(a) Write traffic to NVM cache, Ext4-journal vs no-journal\n";
  Table a({"workload", "no-journal MB", "journal MB", "journal traffic"});
  struct Row {
    const char* name;
    workloads::FilebenchKind kind;
  } rows[] = {{"fileserver", workloads::FilebenchKind::kFileserver},
              {"webproxy", workloads::FilebenchKind::kWebproxy},
              {"varmail", workloads::FilebenchKind::kVarmail}};
  for (const Row& row : rows) {
    const double without =
        static_cast<double>(filebench_nvm_bytes(false, row.kind)) / (1 << 20);
    const double with =
        static_cast<double>(filebench_nvm_bytes(true, row.kind)) / (1 << 20);
    a.add_row({row.name, Table::num(without, 1), Table::num(with, 1),
               Table::num(with / without * 100.0, 0) + "%"});
    reporter.add_row(std::string("nvm_traffic/") + row.name)
        .metric("nojournal_mb", without)
        .metric("journal_mb", with)
        .metric("journal_traffic_pct", with / without * 100.0);
  }
  std::cout << a.render()
            << "Paper reference: journaling causes ~195%-290% of the"
               " no-journal write traffic.\n";

  std::cout << "\n(b) Fio random-write bandwidth under consistency costs\n";
  Table b({"configuration", "bandwidth MB/s", "vs previous"});
  const double none = fio_write_bandwidth(false, false);
  const double journal = fio_write_bandwidth(true, false);
  const double flush = fio_write_bandwidth(true, true);
  b.add_row({"no journal, no clflush", Table::num(none, 1), "-"});
  b.add_row({"+ journaling", Table::num(journal, 1),
             Table::num((journal / none - 1.0) * 100.0, 1) + "%"});
  b.add_row({"+ clflush & sfence", Table::num(flush, 1),
             Table::num((flush / journal - 1.0) * 100.0, 1) + "%"});
  std::cout << b.render()
            << "Paper reference: journaling costs -31.5%, clflush a further"
               " -28.3%.\n";
  reporter.add_row("fio_bandwidth/no_journal_no_clflush")
      .metric("bandwidth_mb_s", none);
  reporter.add_row("fio_bandwidth/journaling").metric("bandwidth_mb_s", journal);
  reporter.add_row("fio_bandwidth/journaling_clflush")
      .metric("bandwidth_mb_s", flush);
  return reporter.finish() ? 0 : 1;
}
