// Ablation — NVM lifetime (write endurance).
//
// The paper motivates eliminating double writes partly by endurance:
// "considering the limited write endurance of some NVM technologies, double
// writes adversely affect the lifetime of NVM cache" (§1; Table 1 lists
// PCM at 10^6–10^8 writes/cell).  This bench runs identical Fio work over
// all three stacks and reports media-level line-write wear, plus a naive
// lifetime projection for a PCM part rated at 10^7 writes per cell.
#include <iostream>
#include <random>
#include <vector>

#include "backend/tinca_backend.h"
#include "backend/ubj_backend.h"
#include "bench_reporter.h"
#include "bench_util.h"
#include "blockdev/latency_block_device.h"
#include "blockdev/mem_block_device.h"
#include "nvlog/log_meta.h"
#include "nvlog/nvlog_tier.h"
#include "workloads/fio.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

constexpr double kEnduranceWrites = 1e7;  // PCM, Table 1 midpoint

struct WearRow {
  std::uint64_t ops;
  nvm::NvmDevice::WearReport wear;
};

WearRow run_stack(backend::StackKind kind) {
  backend::Stack stack(scaled_stack(kind));
  workloads::FioConfig cfg;
  cfg.dataset_blocks = ScaledDefaults::kFioDatasetBlocks;
  cfg.write_pct = 100;
  const auto r =
      workloads::run_fio(stack.backend(), stack.clock(), 8 * sim::kSec, cfg);
  return WearRow{r.write_ops, stack.nvm().wear()};
}

WearRow run_ubj() {
  sim::SimClock clock;
  nvm::NvmDevice nvm(ScaledDefaults::kNvmBytes, pcm_profile(), clock);
  blockdev::MemBlockDevice mem(1ull << 17);
  blockdev::LatencyBlockDevice ssd(mem, ssd_profile(), clock,
                                   blockdev::WritePolicy::kAsync);
  auto be = backend::UbjBackend::format(nvm, ssd);
  workloads::FioConfig cfg;
  cfg.dataset_blocks = ScaledDefaults::kFioDatasetBlocks;
  cfg.write_pct = 100;
  const auto r = workloads::run_fio(*be, clock, 8 * sim::kSec, cfg);
  return WearRow{r.write_ops, nvm.wear()};
}

void emit(Table& t, BenchReporter& reporter, const char* name,
          const WearRow& row) {
  const double writes_per_op =
      static_cast<double>(row.wear.total_line_writes) /
      static_cast<double>(row.ops);
  // Naive projection: ops the mean cell survives, assuming this mix.
  const double lifetime_ops =
      kEnduranceWrites / (row.wear.mean_line_writes /
                          static_cast<double>(row.ops));
  t.add_row({name, Table::num(row.ops), Table::num(writes_per_op, 1),
             Table::num(row.wear.mean_line_writes, 2),
             Table::num(row.wear.max_line_writes),
             Table::num(lifetime_ops / 1e9, 1) + "e9"});
  reporter.add_row(name)
      .metric("write_ops", static_cast<double>(row.ops))
      .metric("line_writes_per_op", writes_per_op)
      .metric("mean_wear_per_line", row.wear.mean_line_writes)
      .metric("max_wear_per_line",
              static_cast<double>(row.wear.max_line_writes))
      .metric("lifetime_ops", lifetime_ops);
}

/// Wear-levelling ablation: hot-block rewrites with the free-block list as
/// a LIFO stack (paper behaviour) vs the FIFO rotation seeded least-worn
/// first (TincaConfig::wear_level).  Uniform traffic is wear-balanced by
/// accident, so this uses the workload rotation exists for: 90% of writes
/// rewrite a 32-block hot set, which LIFO pins to the same few just-freed
/// NVM blocks.  Reported over the *data area* only — the ring's Head/Tail
/// lines dominate the whole-device maximum either way.
nvm::NvmDevice::WearReport run_wear_level(bool wear_level) {
  backend::StackConfig cfg = scaled_stack(backend::StackKind::kTinca);
  cfg.tinca.wear_level = wear_level;
  backend::Stack stack(cfg);
  backend::TxnBackend& be = stack.backend();
  constexpr std::uint64_t kHotSet = 32;
  constexpr std::uint64_t kUniverse = 4096;
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<std::uint64_t> hot(0, kHotSet - 1);
  std::uniform_int_distribution<std::uint64_t> cold(kHotSet, kUniverse - 1);
  std::uniform_int_distribution<int> coin(0, 99);
  std::vector<std::byte> blk(4096);
  for (std::uint64_t t = 0; t < 20000; ++t) {
    const std::uint64_t blkno = coin(rng) < 90 ? hot(rng) : cold(rng);
    fill_pattern(blk, blkno ^ t);
    be.begin();
    be.stage(blkno, blk);
    be.commit();
  }
  const core::TincaCache& cache =
      static_cast<backend::TincaBackend&>(be).cache();
  const auto& l = cache.layout();
  return stack.nvm().wear(l.data_off, l.num_blocks * core::kBlockSize);
}

double skew(const nvm::NvmDevice::WearReport& w) {
  return w.mean_line_writes <= 0.0
             ? 0.0
             : static_cast<double>(w.max_line_writes) / w.mean_line_writes;
}

/// NvLog watermark-ring ablation (DESIGN.md §16): the drain watermark used
/// to live on ONE fixed metadata line, rewritten per drained-prefix advance
/// — the exact Head/Tail-style hot line the caveat above warns about.  Run
/// the same absorb+drain cycle count with slots=1 (the old hot line) and
/// the rotating ring, and report the hottest metadata line.
nvm::NvmDevice::WearReport run_watermark_wear(std::uint32_t slots) {
  struct NullSink : nvlog::NvLogTier::DrainSink {
    void drain_apply(const DrainBatch& blocks) override { (void)blocks; }
  } sink;
  sim::SimClock clock;
  nvm::NvmDevice nvm(1 << 19, pcm_profile(), clock);
  nvlog::NvLogConfig cfg;
  cfg.segment_bytes = 64 * 1024;
  cfg.watermark_slots = slots;
  auto tier = nvlog::NvLogTier::format(nvm, cfg);
  std::vector<std::byte> blk(4096);
  for (int i = 0; i < 512; ++i) {
    fill_pattern(blk, static_cast<std::uint64_t>(i));
    std::vector<std::pair<std::uint64_t, std::span<const std::byte>>> blocks;
    blocks.emplace_back(1, blk);
    tier->absorb_commit(blocks, sink);
    tier->drain_all(sink);  // one watermark advance per cycle
  }
  return nvm.wear(nvlog::kWatermarkBase,
                  nvlog::kLogMetaBytes - nvlog::kWatermarkBase);
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("ablation_wear", argc, argv);
  reporter.config("endurance_writes", kEnduranceWrites);
  reporter.config("dataset_blocks", ScaledDefaults::kFioDatasetBlocks);

  banner("Ablation: NVM wear (endurance)",
         "Fio 100% random writes, identical virtual duration");

  Table t({"stack", "write ops", "line writes/op", "mean wear/line",
           "max wear/line", "ops before mean-cell death"});
  emit(t, reporter, "Classic", run_stack(backend::StackKind::kClassic));
  emit(t, reporter, "UBJ", run_ubj());
  emit(t, reporter, "Tinca", run_stack(backend::StackKind::kTinca));
  std::cout << t.render();
  std::cout << "\nExpectation: Tinca's single-write commit cuts media wear"
               " per operation to ~1/4 of Classic's (double writes +"
               " metadata blocks), directly extending PCM lifetime (§1).\n";
  std::cout << "\nCaveat surfaced by this reproduction: Tinca's *hottest*"
               " line is its persistent Head pointer, written once per\n"
               "committed block — orders of magnitude above any data line."
               " A deployment on low-endurance media would need to\n"
               "wear-level the Head/Tail lines (e.g. rotate them through a"
               " line group), which the paper does not discuss.\n";

  // Wear-levelled allocation ablation (data area only).
  const auto lifo = run_wear_level(false);
  const auto fifo = run_wear_level(true);
  Table wl({"allocation", "mean wear/line", "max wear/line", "skew max/mean"});
  wl.add_row({"LIFO (paper)", Table::num(lifo.mean_line_writes, 2),
              Table::num(lifo.max_line_writes), Table::num(skew(lifo), 2)});
  wl.add_row({"FIFO rotation", Table::num(fifo.mean_line_writes, 2),
              Table::num(fifo.max_line_writes), Table::num(skew(fifo), 2)});
  std::cout << "\nData-area wear with wear-aware allocation"
               " (TincaConfig::wear_level):\n"
            << wl.render();
  reporter.add_row("alloc_lifo")
      .metric("data_mean_wear_per_line", lifo.mean_line_writes)
      .metric("data_max_wear_per_line",
              static_cast<double>(lifo.max_line_writes))
      .metric("data_wear_skew", skew(lifo));
  reporter.add_row("alloc_fifo_rotation")
      .metric("data_mean_wear_per_line", fifo.mean_line_writes)
      .metric("data_max_wear_per_line",
              static_cast<double>(fifo.max_line_writes))
      .metric("data_wear_skew", skew(fifo));
  std::cout << "\nExpectation: rotation spreads hot-block rewrites over the"
               " whole data area, dropping the max/mean skew toward 1.\n";

  // NvLog watermark-ring ablation (§16): the metadata hot line, retired.
  const auto wm_single = run_watermark_wear(1);
  const auto wm_rotated = run_watermark_wear(32);
  const double wm_improvement =
      wm_rotated.max_line_writes == 0
          ? 0.0
          : static_cast<double>(wm_single.max_line_writes) /
                static_cast<double>(wm_rotated.max_line_writes);
  Table wm({"watermark", "max wear/line", "mean wear/line"});
  wm.add_row({"single slot (pre-ring)", Table::num(wm_single.max_line_writes),
              Table::num(wm_single.mean_line_writes, 2)});
  wm.add_row({"rotating ring (32)", Table::num(wm_rotated.max_line_writes),
              Table::num(wm_rotated.mean_line_writes, 2)});
  std::cout << "\nNvLog drain-watermark metadata line, 512 advances"
               " (DESIGN.md §16):\n"
            << wm.render();
  reporter.add_row("nvlog_watermark_wear")
      .metric("single_slot_max_wear",
              static_cast<double>(wm_single.max_line_writes))
      .metric("rotated_max_wear",
              static_cast<double>(wm_rotated.max_line_writes))
      .metric("wear_improvement", wm_improvement);
  std::cout << "\nExpectation: rotating the watermark record through the ring"
               " cools the hottest metadata line by >= 10x.\n";

  bool ok = reporter.finish();
  if (skew(fifo) >= skew(lifo)) {
    std::cerr << "GATE FAILED: wear rotation did not reduce data-area skew ("
              << skew(fifo) << " >= " << skew(lifo) << ")\n";
    ok = false;
  }
  if (wm_improvement < 10.0) {
    std::cerr << "GATE FAILED: watermark-ring wear improvement "
              << wm_improvement << "x < 10x\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
