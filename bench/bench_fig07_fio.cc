// Fig 7 — Fio micro-benchmark, Classic vs Tinca (paper §5.2.1).
//
// Reproduces all three panels: (a) write IOPS, (b) clflush per write op,
// (c) disk blocks written per write op, for read/write ratios 3/7, 5/5, 7/3.
// Paper headline: Tinca's write IOPS is 2.5×/2.1×/1.7× Classic's, with
// 73–76 % fewer cache-line flushes and 60–65 % fewer disk writes.
#include <iostream>

#include "bench_reporter.h"
#include "bench_util.h"
#include "workloads/fio.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

struct Cell {
  double iops;
  double clflush_per_op;
  double disk_per_op;
  double write_mean_ns;
  std::uint64_t write_p99_ns;
  Histogram commit_lat;  ///< backend commit span (virtual ns)
};

Cell run_one(backend::StackKind kind, int write_pct) {
  backend::Stack stack(scaled_stack(kind));
  workloads::FioConfig cfg;
  cfg.dataset_blocks = ScaledDefaults::kFioDatasetBlocks;
  cfg.write_pct = write_pct;
  cfg.writes_per_txn = 64;

  // Warm the cache the way a 20-minute run would (paper measures steady
  // state): one pass at the same mix, not measured.
  (void)workloads::run_fio(stack.backend(), stack.clock(), 4 * sim::kSec, cfg);

  // Span histograms on for the measured window only.
  stack.enable_tracing();
  const MetricSnapshot before = snapshot(stack);
  const workloads::FioResult r =
      workloads::run_fio(stack.backend(), stack.clock(), 10 * sim::kSec, cfg);
  const MetricSnapshot after = snapshot(stack);

  Cell cell{r.write_iops(),
            per_op(after.clflush, before.clflush, r.write_ops),
            per_op(after.disk_writes, before.disk_writes, r.write_ops),
            r.write_lat_ns.mean(), r.write_lat_ns.quantile(0.99),
            Histogram{}};
  if (const Histogram* h = commit_histogram(stack)) cell.commit_lat = *h;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("fig07_fio", argc, argv);
  reporter.config("dataset_blocks", ScaledDefaults::kFioDatasetBlocks);
  reporter.config("writes_per_txn", std::uint64_t{64});
  reporter.config("nvm_profile", "pcm");
  reporter.config("disk_profile", "ssd");
  reporter.config("measured_virtual_sec", std::uint64_t{10});

  banner("Figure 7", "Fio mixed random 4 KB I/O, Classic vs Tinca");

  Table table({"R/W ratio", "Classic IOPS", "Tinca IOPS", "speedup",
               "Classic clflush/op", "Tinca clflush/op", "flush reduction",
               "Classic dw/op", "Tinca dw/op", "disk reduction"});
  const int write_pcts[] = {70, 50, 30};
  const char* labels[] = {"3/7", "5/5", "7/3"};
  Cell classic_cells[3], tinca_cells[3];
  for (int i = 0; i < 3; ++i) {
    const Cell classic = run_one(backend::StackKind::kClassic, write_pcts[i]);
    const Cell tinca = run_one(backend::StackKind::kTinca, write_pcts[i]);
    classic_cells[i] = classic;
    tinca_cells[i] = tinca;
    table.add_row({labels[i],
                   Table::num(classic.iops, 0),
                   Table::num(tinca.iops, 0),
                   Table::num(tinca.iops / classic.iops, 2) + "x",
                   Table::num(classic.clflush_per_op, 1),
                   Table::num(tinca.clflush_per_op, 1),
                   Table::num((1.0 - tinca.clflush_per_op / classic.clflush_per_op) * 100.0, 1) + "%",
                   Table::num(classic.disk_per_op, 2),
                   Table::num(tinca.disk_per_op, 2),
                   Table::num((1.0 - tinca.disk_per_op / classic.disk_per_op) * 100.0, 1) + "%"});
  }
  std::cout << table.render();

  std::cout << "\nPer-write virtual latency (extra detail, not in the paper):\n";
  Table lat({"R/W ratio", "Classic mean us", "Classic p99 us", "Tinca mean us",
             "Tinca p99 us"});
  for (int i = 0; i < 3; ++i) {
    const Cell& classic = classic_cells[i];
    const Cell& tinca = tinca_cells[i];
    lat.add_row({labels[i],
                 Table::num(classic.write_mean_ns / 1000.0, 1),
                 Table::num(static_cast<double>(classic.write_p99_ns) / 1000.0, 1),
                 Table::num(tinca.write_mean_ns / 1000.0, 1),
                 Table::num(static_cast<double>(tinca.write_p99_ns) / 1000.0, 1)});
  }
  std::cout << lat.render();
  std::cout << "\nPaper reference: speedups 2.5x/2.1x/1.7x; flush reductions"
               " 73.4/75.4/76.3%; disk-write reductions 60.6/62.6/64.6%.\n";

  for (int i = 0; i < 3; ++i) {
    const struct {
      const char* system;
      const Cell* cell;
    } sides[] = {{"Classic", &classic_cells[i]}, {"Tinca", &tinca_cells[i]}};
    for (const auto& [system, cell] : sides) {
      reporter.add_row(std::string(system) + "/rw=" + labels[i])
          .metric("iops", cell->iops)
          .metric("clflush_per_op", cell->clflush_per_op)
          .metric("disk_writes_per_op", cell->disk_per_op)
          .metric("write_mean_ns", cell->write_mean_ns)
          .metric("write_p99_ns", static_cast<double>(cell->write_p99_ns))
          .latency("commit", cell->commit_lat);
    }
  }
  return reporter.finish() ? 0 : 1;
}
