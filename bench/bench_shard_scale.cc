// Shard-scaling bench: aggregate commit throughput and p99 commit latency of
// the sharded Tinca front-end over a (shards × threads) sweep.
//
// Time base: like every bench in this repository, device latencies are
// charged to virtual clocks — here one *per shard*.  A run's makespan is the
// largest per-shard clock advance, so aggregate throughput
// (total commits / makespan) directly measures the device-level parallelism
// the sharding unlocks: one shard serializes every commit on one clock;
// four shards split the same work across four clocks.  This is also the only
// meaningful basis on single-core CI hosts, where wall-clock threads merely
// timeslice.
//
// Workload: write-heavy (the paper's motivating case — transactional writes
// through the cache), one committing thread per slot in the sweep, each
// thread working a private key pool pre-filtered to its own shard so commits
// are single-shard and contention-free (the upper bound the design targets).
// A cross-shard table at the end shows the cost of multi-shard transactions.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_reporter.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/histogram.h"
#include "common/table.h"
#include "obs/trace.h"
#include "shard/sharded_tinca.h"

namespace tinca::bench {
namespace {

constexpr std::uint64_t kPerShardNvm = 8ull << 20;   // 8 MB NVM per shard
constexpr std::uint64_t kDiskBlocks = 1ull << 17;
constexpr int kTxnsPerThread = 2000;
constexpr int kBlocksPerTxn = 4;
constexpr std::uint64_t kKeysPerThread = 512;  // working set > cache? no: hits

struct RunResult {
  double commits_per_sec = 0.0;
  std::uint64_t p99_ns = 0;
  Histogram span_commit;     ///< tinca.commit tracer spans, all shards (ns)
  Histogram span_lock_wait;  ///< shard.lock_wait front-end spans (host ns)
  std::uint64_t background_cleanings = 0;  ///< cleaner-thread write-backs
};

/// One sweep cell: `threads` committing threads over `shards` shards.
/// Every thread owns a key pool routed entirely to shard (thread % shards).
/// With a `sink` the measured phase additionally emits a Chrome trace.
/// With `cleaner_threads` each shard also runs a real kThread cleaner
/// (DESIGN.md §11) racing the committers under the shard mutexes.
RunResult run_cell(std::uint32_t shards, std::uint32_t threads,
                   bool cross_shard, obs::TraceSink* sink = nullptr,
                   bool cleaner_threads = false) {
  sim::SimClock clock;
  nvm::NvmDevice dev(kPerShardNvm * shards, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  shard::ShardedConfig cfg;
  cfg.num_shards = shards;
  cfg.shard.ring_bytes = 1 << 20;
  if (cleaner_threads) {
    cfg.shard.cleaner.mode = cleaner::CleanerMode::kThread;
    cfg.shard.cleaner.thread_poll_us = 50;
    // Aggressive watermarks: the warm working set sits below the default
    // high water, so without this the threads would idle the whole run.
    cfg.shard.cleaner.low_water_pct = 0;
    cfg.shard.cleaner.high_water_pct = 10;
  }
  auto st = shard::ShardedTinca::format(dev, disk, cfg);

  // Per-thread key pools.  Affinity mode: keys homed on one shard per
  // thread.  Cross-shard mode: every pool deliberately mixes all shards.
  std::vector<std::vector<std::uint64_t>> pools(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const std::uint32_t target = t % shards;
    for (std::uint64_t b = 0; pools[t].size() < kKeysPerThread; ++b) {
      const std::uint64_t key = static_cast<std::uint64_t>(t) * 16384 + b;
      if (cross_shard || st->shard_of(key) == target) pools[t].push_back(key);
    }
  }

  std::vector<std::byte> payload(core::kBlockSize);
  fill_pattern(payload, 1);

  // Warm the cache so the measured phase is the write-hit commit path.
  for (std::uint32_t t = 0; t < threads; ++t)
    for (std::uint64_t key : pools[t]) st->write_block(key, payload);

  // Span recording covers only the measured phase (enabled after warm-up).
  if (sink != nullptr)
    st->attach_trace_sink(sink);
  else
    st->enable_tracing();

  // Virtual-time origin per shard, after the warm-up's charges.
  std::vector<sim::Ns> start(shards);
  for (std::uint32_t s = 0; s < shards; ++s) start[s] = st->shard_clock(s).now();

  if (cleaner_threads) st->start_cleaner_threads();

  std::vector<Histogram> lat(threads);  // per-commit latency, virtual ns
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<std::byte> buf(core::kBlockSize);
      fill_pattern(buf, t + 2);
      const auto& pool = pools[t];
      // In affinity mode this thread is the sole user of its shard's clock,
      // so unlocked before/after reads are race-free; in cross-shard mode
      // clocks are shared and per-commit deltas are skipped (throughput,
      // computed from the joined end state, is the meaningful number there).
      sim::SimClock* own =
          cross_shard ? nullptr : &st->shard_clock(t % shards);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn = st->init_txn();
        for (int b = 0; b < kBlocksPerTxn; ++b)
          txn.add(pool[(static_cast<std::uint64_t>(i) * kBlocksPerTxn + b) %
                       pool.size()],
                  buf);
        const sim::Ns c0 = own ? own->now() : 0;
        st->commit(txn);
        if (own) lat[t].record(own->now() - c0);
      }
    });
  }
  for (auto& w : workers) w.join();
  if (cleaner_threads) st->stop_cleaner_threads();

  // Makespan: the busiest shard's virtual-time advance.
  sim::Ns makespan = 0;
  for (std::uint32_t s = 0; s < shards; ++s)
    makespan = std::max(makespan, st->shard_clock(s).now() - start[s]);

  Histogram all;
  for (const auto& h : lat) all.merge(h);

  RunResult r;
  r.commits_per_sec = static_cast<double>(threads) * kTxnsPerThread /
                      (static_cast<double>(makespan) / sim::kSec);
  r.p99_ns = all.quantile(0.99);
  // Per-commit latency from the trace spans: every shard cache's
  // tinca.commit histogram merged, plus the front-end's lock-wait phase.
  for (std::uint32_t s = 0; s < shards; ++s)
    if (const Histogram* h = st->shard_cache(s).tracer().histogram("commit"))
      r.span_commit.merge(*h);
  if (const Histogram* h = st->tracer().histogram("lock_wait"))
    r.span_lock_wait = *h;
  r.background_cleanings = st->aggregated_stats().background_cleanings;
  return r;
}

}  // namespace
}  // namespace tinca::bench

int main(int argc, char** argv) {
  using namespace tinca;
  using namespace tinca::bench;

  BenchReporter reporter("shard_scale", argc, argv);
  reporter.config("per_shard_nvm_bytes", kPerShardNvm);
  reporter.config("txns_per_thread", std::uint64_t{kTxnsPerThread});
  reporter.config("blocks_per_txn", std::uint64_t{kBlocksPerTxn});
  reporter.config("keys_per_thread", kKeysPerThread);
  reporter.config("nvm_profile", "nvdimm");

  // `--trace <path>`: run one traced 4×4 cell and write a Chrome
  // about:tracing file (load it via chrome://tracing or ui.perfetto.dev).
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc)
      trace_path = argv[++i];
    else if (arg.rfind("--trace=", 0) == 0)
      trace_path = arg.substr(8);
  }

  std::cout << "==========================================================\n"
            << "bench_shard_scale — sharded Tinca commit scalability\n"
            << "(virtual time, per-shard clocks; write-heavy 4-block txns,\n"
            << " shard-affine key pools; makespan = busiest shard)\n"
            << "==========================================================\n";

  Table table({"shards", "threads", "commits/s", "p99 commit (us)",
               "speedup vs 1/1"});
  double base = 0.0;
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
      if (threads > shards) continue;  // affinity mode: ≤1 thread per shard
      const RunResult r = run_cell(shards, threads, /*cross_shard=*/false);
      if (shards == 1 && threads == 1) base = r.commits_per_sec;
      char tput[32], p99[32], speedup[32];
      std::snprintf(tput, sizeof tput, "%.0f", r.commits_per_sec);
      std::snprintf(p99, sizeof p99, "%.1f", r.p99_ns / 1000.0);
      std::snprintf(speedup, sizeof speedup, "%.2fx",
                    base > 0 ? r.commits_per_sec / base : 0.0);
      table.add_row({std::to_string(shards), std::to_string(threads), tput,
                     p99, speedup});
      reporter
          .add_row("affine/shards=" + std::to_string(shards) +
                   "/threads=" + std::to_string(threads))
          .metric("commits_per_sec", r.commits_per_sec)
          .metric("p99_commit_ns", static_cast<double>(r.p99_ns))
          .latency("commit", r.span_commit)
          .latency("lock_wait", r.span_lock_wait);
    }
  }
  std::cout << table.render();

  std::cout << "\ncross-shard transactions (every txn spans shards):\n";
  Table xtable({"shards", "threads", "commits/s"});
  for (std::uint32_t shards : {2u, 4u}) {
    const RunResult r = run_cell(shards, shards, /*cross_shard=*/true);
    char tput[32];
    std::snprintf(tput, sizeof tput, "%.0f", r.commits_per_sec);
    xtable.add_row({std::to_string(shards), std::to_string(shards), tput});
    reporter
        .add_row("cross/shards=" + std::to_string(shards) +
                 "/threads=" + std::to_string(shards))
        .metric("commits_per_sec", r.commits_per_sec)
        .latency("commit", r.span_commit)
        .latency("lock_wait", r.span_lock_wait);
  }
  std::cout << xtable.render();

  std::cout << "\nbackground cleaner threads (one kThread cleaner per shard"
               " racing the committers):\n";
  Table ctable({"shards", "threads", "commits/s", "bg cleaned"});
  for (std::uint32_t shards : {2u, 4u}) {
    const RunResult r = run_cell(shards, shards, /*cross_shard=*/false,
                                 /*sink=*/nullptr, /*cleaner_threads=*/true);
    char tput[32];
    std::snprintf(tput, sizeof tput, "%.0f", r.commits_per_sec);
    ctable.add_row({std::to_string(shards), std::to_string(shards), tput,
                    std::to_string(r.background_cleanings)});
    reporter
        .add_row("cleaner/shards=" + std::to_string(shards) +
                 "/threads=" + std::to_string(shards))
        .metric("commits_per_sec", r.commits_per_sec)
        .metric("background_cleanings",
                static_cast<double>(r.background_cleanings))
        .latency("commit", r.span_commit)
        .latency("lock_wait", r.span_lock_wait);
  }
  std::cout << ctable.render();

  if (!trace_path.empty()) {
    obs::TraceSink sink;
    (void)run_cell(4, 4, /*cross_shard=*/false, &sink);
    if (sink.write_file(trace_path))
      std::cout << "\n[chrome trace (" << sink.event_count() << " events, "
                << "4 shards x 4 threads) written to " << trace_path << "]\n";
    else
      std::cerr << "\ncannot write trace file " << trace_path << "\n";
  }
  return reporter.finish() ? 0 : 1;
}
