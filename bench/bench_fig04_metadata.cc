// Fig 4 — the cost of synchronous block-format cache metadata (paper §3.2).
//
// Flashcache writes one 4 KB metadata block to the cache device for every
// cached write.  The paper measures Fio random writes with metadata updating
// waived: +45.2 % throughput on Ext4 with journaling, +65.5 % without.
#include <iostream>

#include "bench_reporter.h"
#include "bench_util.h"
#include "workloads/fio.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

double fio_iops(bool journaling, bool sync_metadata) {
  backend::StackConfig cfg = scaled_stack(journaling
                                              ? backend::StackKind::kClassic
                                              : backend::StackKind::kClassicNoJournal);
  cfg.classic.cache.sync_metadata = sync_metadata;
  backend::Stack stack(cfg);
  workloads::FioConfig fio;
  fio.dataset_blocks = ScaledDefaults::kFioDatasetBlocks;
  fio.write_pct = 100;
  const auto r =
      workloads::run_fio(stack.backend(), stack.clock(), 10 * sim::kSec, fio);
  return r.write_iops();
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("fig04_metadata", argc, argv);
  reporter.config("fio_dataset_blocks", ScaledDefaults::kFioDatasetBlocks);

  banner("Figure 4", "impact of synchronously updating cache metadata");

  Table t({"file system", "with metadata IOPS", "metadata waived IOPS",
           "improvement"});
  for (const bool journaling : {true, false}) {
    const double with = fio_iops(journaling, true);
    const double without = fio_iops(journaling, false);
    t.add_row({journaling ? "Ext4 (journaling)" : "Ext4 (no journaling)",
               Table::num(with, 0), Table::num(without, 0),
               Table::num((without / with - 1.0) * 100.0, 1) + "%"});
    reporter
        .add_row(journaling ? "journaling" : "no_journaling")
        .metric("iops_with_metadata", with)
        .metric("iops_metadata_waived", without)
        .metric("improvement_pct", (without / with - 1.0) * 100.0);
  }
  std::cout << t.render()
            << "Paper reference: +45.2% with journaling, +65.5% without.\n";
  return reporter.finish() ? 0 : 1;
}
