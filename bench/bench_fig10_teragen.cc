// Fig 10 — TeraGen on the HDFS-style cluster, 1–3 replicas (paper §5.3.1).
//
// Panels: (a) execution time for the whole dataset, (b) clflush per MB
// generated, (c) disk blocks written per MB.  Paper headline: Tinca is
// 29.0 % / 54.1 % / 59.7 % faster at 1/2/3 replicas, with up to 80.7 % fewer
// cache-line flushes and 38.3 % fewer disk writes at 3 replicas.
#include <iostream>

#include "bench_reporter.h"
#include "bench_util.h"
#include "cluster/minidfs.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

// "100 GB" scaled by 1/128 like everything else.
constexpr std::uint64_t kDatasetBytes = 512ull << 20;

struct Cell {
  double seconds;
  double clflush_per_mb;
  double disk_per_mb;
};

Cell run_cluster(backend::StackKind kind, std::uint32_t replicas) {
  cluster::DfsConfig cfg;
  cfg.nodes = 4;
  cfg.replicas = replicas;
  cfg.node.stack = scaled_stack(kind);
  cluster::MiniDfs dfs(cfg);
  const sim::Ns t = dfs.run_teragen(kDatasetBytes);
  const double mb = static_cast<double>(kDatasetBytes) / (1 << 20);
  Cell cell;
  cell.seconds = static_cast<double>(t) / 1e9;
  cell.clflush_per_mb = static_cast<double>(dfs.total_clflush()) / mb;
  cell.disk_per_mb = static_cast<double>(dfs.total_disk_writes()) / mb;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("fig10_teragen", argc, argv);
  reporter.config("dataset_bytes", kDatasetBytes);
  reporter.config("nodes", std::uint64_t{4});

  banner("Figure 10", "TeraGen over 4-node HDFS-style cluster");

  Table t({"replicas", "Classic time s", "Tinca time s", "time saved",
           "Classic clflush/MB", "Tinca clflush/MB", "flush reduction",
           "Classic dw/MB", "Tinca dw/MB", "disk reduction"});
  for (std::uint32_t r : {1u, 2u, 3u}) {
    const Cell classic = run_cluster(backend::StackKind::kClassic, r);
    const Cell tinca = run_cluster(backend::StackKind::kTinca, r);
    t.add_row({std::to_string(r),
               Table::num(classic.seconds, 2),
               Table::num(tinca.seconds, 2),
               Table::num((1.0 - tinca.seconds / classic.seconds) * 100.0, 1) + "%",
               Table::num(classic.clflush_per_mb, 0),
               Table::num(tinca.clflush_per_mb, 0),
               Table::num((1.0 - tinca.clflush_per_mb / classic.clflush_per_mb) * 100.0, 1) + "%",
               Table::num(classic.disk_per_mb, 1),
               Table::num(tinca.disk_per_mb, 1),
               Table::num((1.0 - tinca.disk_per_mb / classic.disk_per_mb) * 100.0, 1) + "%"});
    const struct {
      const char* system;
      const Cell* cell;
    } sides[] = {{"Classic", &classic}, {"Tinca", &tinca}};
    for (const auto& [system, cell] : sides)
      reporter
          .add_row(std::string(system) + "/replicas=" + std::to_string(r))
          .metric("seconds", cell->seconds)
          .metric("clflush_per_mb", cell->clflush_per_mb)
          .metric("disk_writes_per_mb", cell->disk_per_mb);
  }
  std::cout << t.render();
  std::cout << "\nPaper reference: Tinca saves 29.0/54.1/59.7% time at 1/2/3"
               " replicas; at 3 replicas, 80.7% fewer clflush and 38.3%"
               " fewer disk writes.\n";
  return reporter.finish() ? 0 : 1;
}
