// Group commit + pipelined commit path (DESIGN.md §14).
//
// Three sections, all deterministic in virtual time except the middle one:
//
//   1. Stream sweep (gated) — N independent transaction streams over one
//      TincaCache, each txn ~2 writes with a shared 4-block hot set.  In
//      "single" mode every txn pays its own flush pass + fence; in "group"
//      mode each round of N txns goes through ONE commit_group() call: one
//      coalesced LWW merge, one flush pass, one fence.  Virtual-clock
//      advance gives throughput; per-txn commit latency comes from clock
//      deltas around each commit call.  Single-threaded and seeded, so the
//      CI gates below never flake on scheduling.
//
//   2. Threaded batcher (informational) — 8 real threads committing
//      single-shard txns through the ShardedTinca per-shard batcher
//      (cfg.group_commit on).  Reports the achieved batch size and
//      fences/txn; not gated, since wall-clock scheduling decides how many
//      co-committers each leader finds.
//
//   3. TPC-C-style DES (gated at 100k users) — an open-arrival queueing
//      simulation: `users` clients with 1 s mean think time feed a storage
//      server; while the server is busy, arrivals queue.  In "single" mode
//      the server drains one txn at a time; in "group" mode it hands every
//      txn that arrived during the previous service to one commit_group()
//      (≤ 32 members).  Per-txn latency = completion − arrival, so the p95
//      contrast shows group commit flattening the convoy at high user
//      counts (the paper's Fig 8 regime, §5.3).
//
// Usage: bench_group_commit [--rounds N] [--des-txns N] [--json <path>]
//
// Exit status is nonzero when a gate fails:
//   * group(8 streams) throughput ≥ 2× single(8 streams)
//   * group(8 streams) fences/txn < 0.25
//   * group(1 stream) commit p95 ≤ single(1 stream) p95  (no regression
//     when there is nothing to batch)
//   * DES group p95 < DES single p95 at 100 000 users
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_reporter.h"
#include "bench_util.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/histogram.h"
#include "common/latency.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "nvm/nvm_device.h"
#include "shard/sharded_tinca.h"
#include "tinca/tinca_cache.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

constexpr std::uint64_t kBlock = core::kBlockSize;

/// Shared hot set: all streams rewrite these blocks, so a batch's LWW merge
/// collapses most of the flush work (DESIGN.md §14 "why batching wins").
constexpr std::uint64_t kHotBlocks = 4;

struct StreamResult {
  double txns_per_sec = 0;
  double fences_per_txn = 0;
  double batch_mean = 0;
  Histogram lat;  ///< per-txn commit latency (virtual ns)
};

/// Section 1: N seeded streams over one core cache, single vs grouped.
StreamResult run_streams(std::uint64_t streams, bool grouped,
                         std::uint64_t rounds) {
  sim::SimClock clock;
  nvm::NvmDevice dev(16ull << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto cache = core::TincaCache::format(dev, disk);

  Rng rng(0xC0FFEE + streams * 2 + (grouped ? 1 : 0));
  std::vector<std::byte> buf(kBlock);
  std::uint64_t pattern = 0;

  // Each txn: one write to the shared hot set, one more write that is hot
  // 75% of the time and stream-private otherwise (~2 writes/txn, heavy
  // cross-stream overlap).
  auto make_txn = [&](std::uint64_t s) {
    core::Transaction t = cache->tinca_init_txn();
    fill_pattern(buf, ++pattern);
    t.add(rng.below(kHotBlocks), buf);
    fill_pattern(buf, ++pattern);
    const std::uint64_t second = rng.chance(0.75)
                                     ? rng.below(kHotBlocks)
                                     : kHotBlocks + s * 8 + rng.below(8);
    t.add(second, buf);
    return t;
  };

  // Warm-up: one committed txn per stream so both modes start from the same
  // steady state (blocks installed, roles settled).
  for (std::uint64_t s = 0; s < streams; ++s) {
    core::Transaction t = make_txn(s);
    cache->tinca_commit(t);
  }

  const core::TincaCacheStats before = cache->stats();
  const sim::Ns t0 = clock.now();
  StreamResult r;

  for (std::uint64_t round = 0; round < rounds; ++round) {
    if (grouped) {
      std::vector<core::Transaction> txns;
      txns.reserve(streams);
      for (std::uint64_t s = 0; s < streams; ++s) txns.push_back(make_txn(s));
      std::vector<core::Transaction*> ptrs;
      ptrs.reserve(streams);
      for (core::Transaction& t : txns) ptrs.push_back(&t);
      const sim::Ns c0 = clock.now();
      cache->commit_group(ptrs);
      const sim::Ns span = clock.now() - c0;
      // Every member becomes durable when its batch does.
      for (std::uint64_t s = 0; s < streams; ++s)
        r.lat.record(static_cast<double>(span));
    } else {
      for (std::uint64_t s = 0; s < streams; ++s) {
        core::Transaction t = make_txn(s);
        const sim::Ns c0 = clock.now();
        cache->tinca_commit(t);
        r.lat.record(static_cast<double>(clock.now() - c0));
      }
    }
  }

  const core::TincaCacheStats after = cache->stats();
  const double txns = static_cast<double>(streams * rounds);
  const double secs =
      static_cast<double>(clock.now() - t0) / static_cast<double>(sim::kSec);
  const double fences =
      static_cast<double>((after.commit_fences - before.commit_fences) +
                          (after.hint_syncs - before.hint_syncs));
  const double batches =
      static_cast<double>(after.commit_batches - before.commit_batches);
  r.txns_per_sec = txns / secs;
  r.fences_per_txn = fences / txns;
  r.batch_mean = batches > 0 ? txns / batches : 0;
  return r;
}

struct BatcherResult {
  double txns = 0;
  double batch_mean = 0;
  double fences_per_txn = 0;
};

/// Section 2: real threads through the ShardedTinca per-shard batcher.
BatcherResult run_batcher(std::uint32_t threads, std::uint64_t per_thread) {
  sim::SimClock clock;
  nvm::NvmDevice dev(1ull << 22, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  shard::ShardedConfig cfg;
  cfg.num_shards = 2;
  cfg.group_commit = true;
  cfg.group_linger_us = 100;
  cfg.shard.ring_bytes = 1 << 16;
  auto st = shard::ShardedTinca::format(dev, disk, cfg);

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      std::vector<std::byte> buf(kBlock);
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        shard::ShardedTxn txn = st->init_txn();
        fill_pattern(buf, (w << 20) + i);
        txn.add(1000 + w * per_thread + i, buf);
        st->commit(txn);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  const core::TincaCacheStats agg = st->aggregated_stats();
  BatcherResult r;
  r.txns = static_cast<double>(agg.txns_committed);
  r.batch_mean = agg.commit_batches > 0
                     ? r.txns / static_cast<double>(agg.commit_batches)
                     : 0;
  r.fences_per_txn =
      static_cast<double>(agg.commit_fences + agg.hint_syncs) / r.txns;
  return r;
}

struct DesResult {
  double p50 = 0, p95 = 0, p99 = 0;  ///< per-txn latency (virtual ns)
  double batch_mean = 0;
};

/// Section 3: open-arrival queueing DES over the core cache.  `users`
/// clients with 1 s mean think time produce a Poisson txn stream; the
/// storage server drains it one txn at a time or in ≤32-member groups.
DesResult run_des(std::uint64_t users, bool grouped, std::uint64_t total) {
  sim::SimClock clock;
  nvm::NvmDevice dev(64ull << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  auto cache = core::TincaCache::format(dev, disk);

  constexpr std::uint64_t kDataset = 8192;  ///< fits the cache: no evictions
  constexpr std::uint64_t kHotSet = 512;    ///< TPC-C-ish skew target
  constexpr std::uint64_t kMaxBatch = 32;
  const std::uint64_t max_blocks = cache->max_txn_blocks();

  Rng rng(0xDE5 + users + (grouped ? 1 : 0));
  std::vector<std::byte> buf(kBlock);
  std::uint64_t pattern = 0;

  // TPC-C write mix, write txns only (reads don't hit the commit path):
  // New-Order w10 49%, Payment w4 47%, Delivery w25 4% (workloads/tpcc.h).
  auto draw_writes = [&]() -> std::uint64_t {
    const std::uint64_t u = rng.below(100);
    if (u < 49) return 10;
    if (u < 96) return 4;
    return 25;
  };
  auto draw_block = [&]() -> std::uint64_t {
    return rng.chance(0.7) ? rng.below(kHotSet) : rng.below(kDataset);
  };

  // Poisson arrivals: `users` clients, 1 s mean think each.
  const double inter_mean_ns = 1e9 / static_cast<double>(users);
  std::vector<sim::Ns> arrival(total);
  std::vector<std::uint64_t> nwrites(total);
  double at = 0;
  for (std::uint64_t i = 0; i < total; ++i) {
    at += rng.exponential(inter_mean_ns);
    arrival[i] = static_cast<sim::Ns>(at);
    nwrites[i] = draw_writes();
  }

  DesResult r;
  Histogram lat;
  std::uint64_t batches = 0;

  std::uint64_t i = 0;
  sim::Ns server_free = 0;
  while (i < total) {
    const sim::Ns start = std::max(server_free, arrival[i]);
    // Group mode: everything queued by `start`, capped by member count and
    // by the ring's per-batch block budget (merged distinct ≤ the sum).
    std::uint64_t members = 1;
    if (grouped) {
      std::uint64_t blocks = nwrites[i];
      while (i + members < total && members < kMaxBatch &&
             arrival[i + members] <= start &&
             blocks + nwrites[i + members] <= max_blocks) {
        blocks += nwrites[i + members];
        ++members;
      }
    }

    std::vector<core::Transaction> txns;
    txns.reserve(members);
    for (std::uint64_t m = 0; m < members; ++m) {
      core::Transaction t = cache->tinca_init_txn();
      for (std::uint64_t w = 0; w < nwrites[i + m]; ++w) {
        fill_pattern(buf, ++pattern);
        t.add(draw_block(), buf);
      }
      txns.push_back(std::move(t));
    }
    std::vector<core::Transaction*> ptrs;
    ptrs.reserve(members);
    for (core::Transaction& t : txns) ptrs.push_back(&t);

    const sim::CostProbe probe(clock);
    cache->commit_group(ptrs);
    const sim::Ns finish = start + probe.elapsed();
    for (std::uint64_t m = 0; m < members; ++m)
      lat.record(static_cast<double>(finish - arrival[i + m]));
    server_free = finish;
    i += members;
    ++batches;
  }

  r.p50 = lat.quantile(0.50);
  r.p95 = lat.quantile(0.95);
  r.p99 = lat.quantile(0.99);
  r.batch_mean = static_cast<double>(total) / static_cast<double>(batches);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("group_commit", argc, argv);

  std::uint64_t rounds = 300;
  std::uint64_t des_txns = 3000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--des-txns") == 0 && i + 1 < argc) {
      des_txns = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::cerr << "usage: bench_group_commit [--rounds N] [--des-txns N]"
                   " [--json <path>]\n";
      return 2;
    }
  }
  reporter.config("rounds", rounds);
  reporter.config("des_txns", des_txns);
  reporter.config("hot_blocks", kHotBlocks);

  banner("Group commit",
         "stream sweep: single commits vs commit_group (DESIGN.md §14)");
  Table t1({"mode", "streams", "txns/s", "fences/txn", "batch_mean",
            "p50_us", "p95_us", "p99_us"});
  const std::uint64_t kStreams[] = {1, 2, 4, 8, 16};
  StreamResult single1, group1, single8, group8;
  for (const std::uint64_t n : kStreams) {
    for (const bool grouped : {false, true}) {
      StreamResult r = run_streams(n, grouped, rounds);
      const char* mode = grouped ? "group" : "single";
      t1.add_row({mode, Table::num(n), Table::num(r.txns_per_sec, 0),
                  Table::num(r.fences_per_txn, 3),
                  Table::num(r.batch_mean, 2),
                  Table::num(r.lat.quantile(0.50) / 1e3, 1),
                  Table::num(r.lat.quantile(0.95) / 1e3, 1),
                  Table::num(r.lat.quantile(0.99) / 1e3, 1)});
      reporter.add_row(std::string(mode) + "/streams=" + std::to_string(n))
          .metric("streams", static_cast<double>(n))
          .metric("txns_per_sec", r.txns_per_sec)
          .metric("fences_per_txn", r.fences_per_txn)
          .metric("batch_mean_txns", r.batch_mean)
          .latency("commit", r.lat);
      if (n == 1) (grouped ? group1 : single1) = r;
      if (n == 8) (grouped ? group8 : single8) = r;
    }
  }
  std::cout << t1.render();
  const double speedup8 = group8.txns_per_sec / single8.txns_per_sec;
  std::cout << "\n8-stream group/single throughput: " << Table::num(speedup8, 2)
            << "x, group fences/txn " << Table::num(group8.fences_per_txn, 3)
            << "\n\n";

  std::cout << "-- Per-shard batcher (8 real threads, informational) --\n";
  const BatcherResult b = run_batcher(8, 200);
  std::cout << "txns " << b.txns << ", achieved batch mean "
            << Table::num(b.batch_mean, 2) << ", fences/txn "
            << Table::num(b.fences_per_txn, 3) << "\n\n";
  reporter.add_row("batcher/threads=8")
      .metric("threads", 8)
      .metric("txns", b.txns)
      .metric("batch_mean_txns", b.batch_mean)
      .metric("fences_per_txn", b.fences_per_txn);

  std::cout << "-- TPC-C-style open-arrival DES (1 s think time) --\n";
  Table t2({"mode", "users", "batch_mean", "p50_ms", "p95_ms", "p99_ms"});
  const std::uint64_t kUsers[] = {1000, 10000, 100000};
  DesResult des_single_100k, des_group_100k;
  for (const std::uint64_t users : kUsers) {
    for (const bool grouped : {false, true}) {
      DesResult r = run_des(users, grouped, des_txns);
      const char* mode = grouped ? "des-group" : "des-single";
      t2.add_row({mode, Table::num(users), Table::num(r.batch_mean, 2),
                  Table::num(r.p50 / 1e6, 3), Table::num(r.p95 / 1e6, 3),
                  Table::num(r.p99 / 1e6, 3)});
      reporter.add_row(std::string(mode) + "/users=" + std::to_string(users))
          .metric("users", static_cast<double>(users))
          .metric("batch_mean_txns", r.batch_mean)
          .metric("txn_p50_ns", r.p50)
          .metric("txn_p95_ns", r.p95)
          .metric("txn_p99_ns", r.p99);
      if (users == 100000) (grouped ? des_group_100k : des_single_100k) = r;
    }
  }
  std::cout << t2.render() << "\n";

  // --- Gates (DESIGN.md §14; ci.sh re-checks these from the JSON) ----------
  bool ok = true;
  auto gate = [&](bool pass, const std::string& what) {
    std::cout << (pass ? "PASS: " : "FAIL: ") << what << "\n";
    ok &= pass;
  };
  gate(speedup8 >= 2.0,
       "group(8 streams) >= 2x single(8 streams) commit throughput (got " +
           Table::num(speedup8, 2) + "x)");
  gate(group8.fences_per_txn < 0.25,
       "group(8 streams) fences/txn < 0.25 (got " +
           Table::num(group8.fences_per_txn, 3) + ")");
  gate(group1.lat.quantile(0.95) <= single1.lat.quantile(0.95),
       "group(1 stream) commit p95 <= single(1 stream) p95");
  gate(des_group_100k.p95 < des_single_100k.p95,
       "DES group p95 < single p95 at 100k users (" +
           Table::num(des_group_100k.p95 / 1e6, 3) + " vs " +
           Table::num(des_single_100k.p95 / 1e6, 3) + " ms)");

  if (!reporter.finish()) return 1;
  return ok ? 0 : 1;
}
