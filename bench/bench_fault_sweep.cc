// Fault-injection sweep across all four transactional stacks (DESIGN.md §9).
//
// Runs the randomized fault-fuzz campaign — transient disk errors, growing
// bad sectors, torn 4 KB writes and deterministic power cuts — over Tinca,
// Classic, UBJ and the sharded Tinca front-end, and reports how each stack
// absorbed it: crashes survived, retries spent, blocks quarantined,
// degraded write-through writes, and (the gate) recovery-invariant
// violations, which must be zero.
//
// Usage:
//   bench_fault_sweep [--schedules N] [--seed S] [--json <path>]
//
// Exit status is nonzero when any stack violated its recovery contract, so
// CI can gate on this binary directly (ci.sh runs it with a fixed seed).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "backend/fault_fuzz.h"
#include "bench_reporter.h"
#include "bench_util.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

/// One sweep row: a stack kind with the background cleaner off or armed in
/// deterministic stepped mode (DESIGN.md §11), and optionally with group
/// commit enabled (DESIGN.md §14) so power cuts land inside batched
/// commit_group() pipelines.  Classic has no cleaner.
struct Campaign {
  backend::StackKind kind;
  cleaner::CleanerMode cleaner;
  bool group;
  std::uint32_t streams;  ///< commit streams per shard (DESIGN.md §15)
  const char* label;
};

constexpr Campaign kCampaigns[] = {
    {backend::StackKind::kTinca, cleaner::CleanerMode::kDisabled, false, 1,
     "Tinca"},
    {backend::StackKind::kClassic, cleaner::CleanerMode::kDisabled, false, 1,
     "Classic"},
    {backend::StackKind::kUbj, cleaner::CleanerMode::kDisabled, false, 1,
     "UBJ"},
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kDisabled, false,
     1, "Sharded"},
    {backend::StackKind::kTinca, cleaner::CleanerMode::kStepped, false, 1,
     "Tinca+cleaner"},
    {backend::StackKind::kUbj, cleaner::CleanerMode::kStepped, false, 1,
     "UBJ+cleaner"},
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kStepped, false,
     1, "Sharded+cleaner"},
    {backend::StackKind::kNvLogClassic, cleaner::CleanerMode::kDisabled, false,
     1, "NvLog"},
    {backend::StackKind::kNvLogClassic, cleaner::CleanerMode::kStepped, false,
     1, "NvLog+cleaner"},
    {backend::StackKind::kTinca, cleaner::CleanerMode::kDisabled, true, 1,
     "Tinca+group"},
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kDisabled, true,
     1, "Sharded+group"},
    {backend::StackKind::kNvLogClassic, cleaner::CleanerMode::kDisabled, true,
     1, "NvLog+group"},
    // Multi-stream rings (DESIGN.md §15): cross-shard txns anchor to one
    // atomic cross-stream commit record, cuts land at every protocol step.
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kDisabled, false,
     2, "Sharded+streams"},
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kDisabled, true,
     2, "Sharded+streams+group"},
    // Deep-stacked NvLog tiers (DESIGN.md §16): the write-ahead log drains
    // into a full transactional cache, so cuts land mid-drain with both the
    // tier's watermark ring and the inner cache's commit protocol in flight.
    {backend::StackKind::kNvLogTinca, cleaner::CleanerMode::kStepped, false, 1,
     "NvLogTinca"},
    {backend::StackKind::kNvLogSharded, cleaner::CleanerMode::kStepped, false,
     1, "NvLogSharded"},
    {backend::StackKind::kNvLogSharded, cleaner::CleanerMode::kDisabled, true,
     1, "NvLogSharded+group"},
};

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("fault_sweep", argc, argv);

  std::uint64_t schedules = 1000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schedules") == 0 && i + 1 < argc) {
      schedules = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::cerr << "usage: bench_fault_sweep [--schedules N] [--seed S]"
                   " [--json <path>]\n";
      return 2;
    }
  }

  backend::FuzzOptions base;
  reporter.config("schedules", schedules);
  reporter.config("seed", seed);
  reporter.config("transient_write_rate", base.transient_write_rate);
  reporter.config("bad_sector_rate", base.bad_sector_rate);
  reporter.config("torn_write_rate", base.torn_write_rate);
  reporter.config("crash_prob", base.crash_prob);

  std::cout << "Fault sweep: " << schedules << " randomized schedules per"
            << " stack, seed " << seed << "\n\n";

  Table t({"stack", "crashes", "remounts", "transients", "bad_sect", "torn",
           "retries", "quarant", "degraded", "wedges", "violations"});
  std::uint64_t total_violations = 0;

  for (const Campaign& c : kCampaigns) {
    backend::FuzzOptions opts;
    opts.kind = c.kind;
    opts.cleaner = c.cleaner;
    opts.group_commit = c.group;
    opts.streams = c.streams;
    opts.seed = seed;
    opts.schedules = static_cast<std::uint32_t>(schedules);
    const backend::FuzzReport r = backend::run_fault_fuzz(opts);

    const std::uint64_t transients = r.faults.transient_read_errors +
                                     r.faults.transient_write_errors;
    t.add_row({c.label, Table::num(r.crashes),
               Table::num(r.clean_remounts), Table::num(transients),
               Table::num(r.faults.bad_sectors), Table::num(r.faults.torn_writes),
               Table::num(r.io_retries), Table::num(r.io_quarantined),
               Table::num(r.io_degraded_writes), Table::num(r.wedges),
               Table::num(r.violations)});
    reporter.add_row(c.label)
        .metric("schedules", static_cast<double>(r.schedules))
        .metric("crashes", static_cast<double>(r.crashes))
        .metric("clean_remounts", static_cast<double>(r.clean_remounts))
        .metric("transient_errors", static_cast<double>(transients))
        .metric("bad_sectors", static_cast<double>(r.faults.bad_sectors))
        .metric("torn_writes", static_cast<double>(r.faults.torn_writes))
        .metric("io_retries", static_cast<double>(r.io_retries))
        .metric("io_quarantined", static_cast<double>(r.io_quarantined))
        .metric("io_degraded_writes", static_cast<double>(r.io_degraded_writes))
        .metric("io_errors", static_cast<double>(r.io_errors))
        .metric("wedges", static_cast<double>(r.wedges))
        .metric("violations", static_cast<double>(r.violations));

    total_violations += r.violations;
    for (const std::string& m : r.violation_messages)
      std::cerr << c.label << " VIOLATION: " << m << "\n";
  }

  std::cout << t.render();
  std::cout << "\nEvery recovered state matched the committed history (or"
               " committed + the mid-commit transaction); violations must"
               " be 0.\n";
  if (total_violations != 0) {
    std::cerr << "\nFAIL: " << total_violations
              << " recovery-invariant violation(s); reproduce with --seed "
              << seed << "\n";
  }
  if (!reporter.finish()) return 1;
  return total_violations == 0 ? 0 : 1;
}
