// Fig 13 — data blocks per committed transaction (paper §5.4.3).
//
// The paper monitors the number of blocks committed in one transaction while
// running fileserver and webproxy, to bound the spatial overhead of COW
// block writes: fileserver commits roughly twice the blocks of webproxy, and
// even at ~8,000 blocks per transaction the worst-case extra space (every
// block a write hit holding two versions) is ~0.4 % of the cache.
#include <iostream>

#include "backend/tinca_backend.h"
#include "bench_reporter.h"
#include "bench_util.h"
#include "fs/minifs.h"
#include "workloads/filebench.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

struct Series {
  Histogram blocks_per_txn;
  std::vector<double> window_means;  // time series, one point per window
  std::uint64_t cache_blocks = 0;
};

Series run_one(workloads::FilebenchKind kind) {
  backend::Stack stack(scaled_stack(backend::StackKind::kTinca));
  auto& be = dynamic_cast<backend::TincaBackend&>(stack.backend());
  auto fsys = fs::MiniFs::mkfs(stack.backend());
  workloads::FilebenchConfig wl;
  wl.kind = kind;
  wl.nfiles = 768;
  wl.mean_file_bytes = 64 * 1024;
  workloads::FilebenchWorkload bench(*fsys, wl);
  bench.populate();

  Series series;
  Histogram warm = be.cache().stats().blocks_per_txn;  // populate traffic
  for (int window = 0; window < 10; ++window) {
    (void)bench.run(stack.clock(), sim::kSec);
    const Histogram& h = be.cache().stats().blocks_per_txn;
    const double blocks =
        static_cast<double>(h.sum() - warm.sum());
    const double txns = static_cast<double>(h.count() - warm.count());
    series.window_means.push_back(txns == 0 ? 0.0 : blocks / txns);
    warm = h;
  }
  series.blocks_per_txn = be.cache().stats().blocks_per_txn;
  series.cache_blocks = be.cache().capacity_blocks();
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("fig13_txn_blocks", argc, argv);
  reporter.config("windows", std::uint64_t{10});
  reporter.config("nfiles", std::uint64_t{768});

  banner("Figure 13", "data blocks per committed transaction (Tinca local)");

  const Series fileserver = run_one(workloads::FilebenchKind::kFileserver);
  const Series webproxy = run_one(workloads::FilebenchKind::kWebproxy);

  std::cout << "\nPer-window mean blocks/transaction (1 virtual second each):\n";
  Table t({"window", "fileserver", "webproxy", "ratio"});
  for (std::size_t w = 0; w < fileserver.window_means.size(); ++w) {
    const double fsv = fileserver.window_means[w];
    const double wpv = webproxy.window_means[w];
    t.add_row({std::to_string(w + 1), Table::num(fsv, 1), Table::num(wpv, 1),
               wpv == 0 ? "-" : Table::num(fsv / wpv, 2) + "x"});
  }
  std::cout << t.render();

  const double fs_mean = fileserver.blocks_per_txn.mean();
  const double wp_mean = webproxy.blocks_per_txn.mean();
  std::cout << "\nOverall blocks/txn:  fileserver "
            << Table::num(fs_mean, 1) << "  (p99 "
            << Table::num(fileserver.blocks_per_txn.quantile(0.99)) << ")"
            << "   webproxy " << Table::num(wp_mean, 1) << "  (p99 "
            << Table::num(webproxy.blocks_per_txn.quantile(0.99)) << ")\n";

  // §5.4.3's spatial-overhead argument at our scale.
  const double worst_fraction =
      static_cast<double>(fileserver.blocks_per_txn.max()) /
      static_cast<double>(fileserver.cache_blocks) * 100.0;
  std::cout << "Worst-case COW double-version overhead: "
            << Table::num(fileserver.blocks_per_txn.max()) << " of "
            << Table::num(fileserver.cache_blocks) << " cache blocks = "
            << Table::num(worst_fraction, 2) << "% of cache capacity\n";
  std::cout << "\nPaper reference: fileserver writes ~2x the blocks of"
               " webproxy per transaction; worst-case COW overhead ~0.4% of"
               " an 8 GB cache.\n";

  const struct {
    const char* name;
    const Series* s;
  } sides[] = {{"fileserver", &fileserver}, {"webproxy", &webproxy}};
  for (const auto& [name, s] : sides) {
    auto& row = reporter.add_row(name);
    row.metric("blocks_per_txn_mean", s->blocks_per_txn.mean())
        .metric("blocks_per_txn_p99",
                static_cast<double>(s->blocks_per_txn.quantile(0.99)))
        .metric("blocks_per_txn_max",
                static_cast<double>(s->blocks_per_txn.max()))
        .metric("cache_blocks", static_cast<double>(s->cache_blocks));
    for (std::size_t w = 0; w < s->window_means.size(); ++w)
      row.metric("window" + std::to_string(w + 1) + "_mean",
                 s->window_means[w]);
  }
  return reporter.finish() ? 0 : 1;
}
