// Bench — background cleaner: commit latency with dirty write-back on vs
// off the commit path (DESIGN.md §11).
//
// Workload: uniform random whole-block writes over a universe ~4x the NVM
// cache capacity, 1–4 blocks per transaction, with *synchronous* disk
// writes so every write-back stalls whoever issues it.  With the cleaner
// disabled, a full cache means each commit's eviction lands on a dirty LRU
// victim and pays the disk write inline.  With the cleaner armed (stepped
// mode, one quantum between commits), dirty blocks retire in the
// background, evictions find clean victims, and the commit path keeps only
// its two 8 B ring persists.
//
// Usage:
//   bench_cleaner [--txns N] [--json <path>]
//
// Exit status is nonzero unless cleaner-on commit p95 beats cleaner-off
// (the headline claim is >= 2x; CI gates on strictly-better so a noisy run
// cannot silently regress the cleaner into a no-op).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <random>
#include <vector>

#include "backend/tinca_backend.h"
#include "bench_reporter.h"
#include "bench_util.h"
#include "cleaner/cleaner.h"
#include "common/bytes.h"
#include "obs/metrics.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

struct RunResult {
  Histogram commit_lat;                ///< per-commit span (virtual ns)
  core::TincaCacheStats cache;
  cleaner::CleanerStats cleaner;      ///< zeroed when the cleaner is off
  std::uint64_t disk_writes = 0;       ///< measured window only
  double queue_depth = 0.0;            ///< cleaner.queue_depth gauge at end
};

RunResult run_one(bool cleaner_on, std::uint64_t txns) {
  backend::StackConfig cfg = scaled_stack(backend::StackKind::kTinca);
  // Synchronous disk writes: a write-back stalls its issuer, so the commit
  // span shows exactly who pays for retiring dirty blocks.
  cfg.disk_writes = blockdev::WritePolicy::kSync;
  if (cleaner_on) cfg.tinca.cleaner.mode = cleaner::CleanerMode::kStepped;
  backend::Stack stack(cfg);
  backend::TxnBackend& be = stack.backend();
  core::TincaCache& cache = static_cast<backend::TincaBackend&>(be).cache();

  obs::MetricsRegistry reg;
  stack.register_metrics(reg);

  const std::uint64_t universe =
      std::min<std::uint64_t>(cfg.disk_blocks, 4 * cache.capacity_blocks());
  std::mt19937_64 rng(20260806);
  std::uniform_int_distribution<std::uint64_t> pick(0, universe - 1);
  std::uniform_int_distribution<int> batch_pick(1, 4);
  std::vector<std::byte> blk(4096);

  const auto run_txns = [&](std::uint64_t n) {
    for (std::uint64_t t = 0; t < n; ++t) {
      be.begin();
      const int batch = batch_pick(rng);
      for (int b = 0; b < batch; ++b) {
        const std::uint64_t blkno = pick(rng);
        fill_pattern(blk, blkno ^ t);
        be.stage(blkno, blk);
      }
      be.commit();
      be.cleaner_step();  // no-op with the cleaner disabled
    }
  };

  // Warm until the cache is full and dirty — the steady state the cleaner
  // exists for.  Not measured.
  run_txns(2 * cache.capacity_blocks());

  stack.enable_tracing();
  const std::uint64_t disk_before = stack.disk_blocks_written();
  const core::TincaCacheStats warm = cache.stats();
  const cleaner::CleanerStats warm_cl =
      cache.cleaner() ? cache.cleaner()->stats() : cleaner::CleanerStats{};
  run_txns(txns);

  RunResult r;
  if (const Histogram* h = be.tracer()->histogram("commit")) r.commit_lat = *h;
  r.cache = cache.stats();
  if (cache.cleaner() != nullptr) {
    r.cleaner = cache.cleaner()->stats();
    // Report the measured window, not the warmup.
    r.cleaner.retired -= warm_cl.retired;
    r.cleaner.steps -= warm_cl.steps;
    r.cleaner.batches -= warm_cl.batches;
    r.cleaner.coalesced_blocks -= warm_cl.coalesced_blocks;
    r.cleaner.backpressure_drains -= warm_cl.backpressure_drains;
  }
  r.cache.dirty_writebacks -= warm.dirty_writebacks;
  r.cache.writethrough_writes -= warm.writethrough_writes;
  r.cache.background_cleanings -= warm.background_cleanings;
  r.cache.evictions -= warm.evictions;
  r.disk_writes = stack.disk_blocks_written() - disk_before;
  if (reg.has("tinca.cleaner.queue_depth"))
    r.queue_depth = reg.value("tinca.cleaner.queue_depth");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("cleaner", argc, argv);

  std::uint64_t txns = 6000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--txns") == 0 && i + 1 < argc) {
      txns = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::cerr << "usage: bench_cleaner [--txns N] [--json <path>]\n";
      return 2;
    }
  }
  reporter.config("txns", txns);
  reporter.config("blocks_per_txn", "1-4 uniform");
  reporter.config("universe_over_capacity", std::uint64_t{4});
  reporter.config("disk_writes", "sync");
  reporter.config("nvm_profile", "pcm");
  reporter.config("disk_profile", "ssd");

  banner("Background cleaner",
         "commit latency: dirty write-back on vs off the commit path");

  const RunResult off = run_one(false, txns);
  const RunResult on = run_one(true, txns);

  Table t({"cleaner", "commits", "p50 us", "p95 us", "p99 us", "mean us",
           "evictions", "wb inline", "bg cleaned", "disk writes"});
  const struct {
    const char* label;
    const RunResult* r;
  } rows[] = {{"off", &off}, {"on", &on}};
  for (const auto& [label, r] : rows) {
    t.add_row({label, Table::num(r->commit_lat.count()),
               Table::num(static_cast<double>(r->commit_lat.quantile(0.50)) / 1000.0, 1),
               Table::num(static_cast<double>(r->commit_lat.quantile(0.95)) / 1000.0, 1),
               Table::num(static_cast<double>(r->commit_lat.quantile(0.99)) / 1000.0, 1),
               Table::num(r->commit_lat.mean() / 1000.0, 1),
               Table::num(r->cache.evictions),
               Table::num(r->cache.dirty_writebacks - r->cache.background_cleanings),
               Table::num(r->cache.background_cleanings),
               Table::num(r->disk_writes)});
    BenchReporter::Row& row =
        reporter.add_row(std::string("cleaner-") + label);
    row.latency("commit", r->commit_lat)
        .metric("evictions", static_cast<double>(r->cache.evictions))
        .metric("dirty_writebacks", static_cast<double>(r->cache.dirty_writebacks))
        .metric("background_cleanings",
                static_cast<double>(r->cache.background_cleanings))
        .metric("disk_writes", static_cast<double>(r->disk_writes))
        .metric("cleaner_retired", static_cast<double>(r->cleaner.retired))
        .metric("cleaner_steps", static_cast<double>(r->cleaner.steps))
        .metric("cleaner_batches", static_cast<double>(r->cleaner.batches))
        .metric("cleaner_coalesced_blocks",
                static_cast<double>(r->cleaner.coalesced_blocks))
        .metric("cleaner_backpressure_drains",
                static_cast<double>(r->cleaner.backpressure_drains))
        .metric("cleaner_queue_depth", r->queue_depth);
    row.latency("drain_lag", r->cleaner.drain_lag);
  }
  std::cout << t.render();

  const std::uint64_t off_p95 = off.commit_lat.quantile(0.95);
  const std::uint64_t on_p95 = on.commit_lat.quantile(0.95);
  const double ratio = on_p95 == 0
                           ? 0.0
                           : static_cast<double>(off_p95) /
                                 static_cast<double>(on_p95);
  std::cout << "\nCommit p95 off/on = " << Table::num(ratio, 2)
            << "x (goal >= 2x: dirty write-backs retired off the commit"
               " path).\n";
  reporter.config("p95_speedup", ratio);

  if (!reporter.finish()) return 1;
  if (on_p95 >= off_p95) {
    std::cerr << "FAIL: cleaner-on commit p95 (" << on_p95
              << " ns) is not below cleaner-off (" << off_p95 << " ns)\n";
    return 1;
  }
  return 0;
}
