// Multi-stream commit rings + atomic cross-stream commit records
// (DESIGN.md §15).
//
// Two sections, both deterministic in virtual time:
//
//   1. Stream sweep (gated) — a pipeline model over REAL measured commit
//      costs.  A 2-shard ShardedTinca is formatted with `num_streams`
//      per-stream rings per shard; a seeded workload (90% single-shard,
//      ~10% cross-shard) is committed one txn at a time and each commit's
//      virtual NVM cost is read off the per-shard SimClocks.  The model
//      then replays those costs on (shard, stream) lanes: commits on
//      distinct lanes overlap — exactly the independence the per-stream
//      Head/Tail/hint lines provide, since their ring traffic touches
//      disjoint NVM lines — while commits on the same lane serialize.  A
//      cross-stream transaction occupies one lane on EVERY participant
//      shard for max(per-shard cost): its flush passes proceed in
//      parallel and one 64 B commit record (flushed with shard 0's pass,
//      one fence) makes the whole set durable, so the OTHER streams keep
//      flowing — the single-ring baseline (streams=1) instead serializes
//      every commit behind the one Head per shard.  Throughput = txns /
//      modeled makespan.  Single-threaded and seeded: the gates never
//      flake on scheduling.
//
//   2. Fence accounting (gated) — §15 must not cost fences over the §14
//      group path: rounds of 8-txn commit_group() batches on one
//      TincaCache, streams=1 (the §14 baseline ring) vs streams=8.  A
//      batch lands on ONE stream either way — same single flush pass,
//      same single fence — so fences/txn must not grow.
//
// Usage: bench_multistream [--txns N] [--rounds N] [--json <path>]
//
// Exit status is nonzero when a gate fails:
//   * modeled throughput at 8 streams ≥ 3× the single-ring baseline
//   * fences/txn with 8 streams ≤ §14 group path (streams=1) + 5%
//   * the sweep's cross-shard mix actually took the commit-record path
#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_reporter.h"
#include "bench_util.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "nvm/nvm_device.h"
#include "shard/sharded_tinca.h"
#include "tinca/tinca_cache.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

constexpr std::uint64_t kBlock = core::kBlockSize;
constexpr std::uint32_t kShards = 2;
constexpr std::uint64_t kDataset = 1024;  ///< fits the cache: no evictions
constexpr double kCrossShare = 0.10;      ///< ~10% cross-shard mix

struct SweepResult {
  double txns_per_sec = 0;    ///< modeled pipeline throughput
  double fences_per_txn = 0;  ///< real fences over real txns
  double cross_share = 0;     ///< achieved cross-shard fraction
  std::uint64_t xstream_commits = 0;
  Histogram svc;  ///< per-commit virtual service cost (ns)
};

/// One designated block per shard (lowest block numbers), for the
/// cross-shard transactions.
std::vector<std::uint64_t> one_block_per_shard(const shard::ShardedTinca& st) {
  std::vector<std::uint64_t> home(st.shard_count(), UINT64_MAX);
  std::uint32_t found = 0;
  for (std::uint64_t b = 0; found < st.shard_count(); ++b) {
    const std::uint32_t s = st.shard_of(b);
    if (home[s] == UINT64_MAX) {
      home[s] = b;
      ++found;
    }
  }
  return home;
}

/// Section 1: measure per-commit costs on a real §15 stack, then replay
/// them on (shard, stream) lanes.
SweepResult run_sweep(std::uint32_t streams, std::uint64_t txns) {
  sim::SimClock root_clock;
  nvm::NvmDevice dev(16ull << 20, nvdimm_profile(), root_clock);
  blockdev::MemBlockDevice disk(1 << 14);

  shard::ShardedConfig cfg;
  cfg.num_shards = kShards;
  cfg.shard.ring_bytes = 16 * 1024;  // 16 slots/stream even at 16 streams
  cfg.shard.num_streams = streams;
  auto st = shard::ShardedTinca::format(dev, disk, cfg);

  const auto home = one_block_per_shard(*st);
  // One fixed seed: every stream count replays the identical txn sequence,
  // so the sweep isolates the lane count.
  Rng rng(0x515EA);
  std::vector<std::byte> buf(kBlock);
  std::uint64_t pattern = 0;

  // Warm-up: touch the designated blocks and a spread of singles so every
  // stream count starts from the same installed state.
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto t = st->init_txn();
    fill_pattern(buf, ++pattern);
    t.add(kShards + i, buf);
    st->commit(t);
  }
  {
    auto t = st->init_txn();
    for (std::uint32_t s = 0; s < kShards; ++s) {
      fill_pattern(buf, ++pattern);
      t.add(home[s], buf);
    }
    st->commit(t);
  }

  // Lane model state: one virtual-time cursor per (shard, stream), fed
  // round-robin per shard like the cache's own stream rotation.
  std::vector<std::vector<sim::Ns>> lane_free(kShards,
                                              std::vector<sim::Ns>(streams, 0));
  std::vector<std::uint32_t> rr(kShards, 0);
  sim::Ns makespan = 0;

  const core::TincaCacheStats before = st->aggregated_stats();
  SweepResult r;
  std::uint64_t cross = 0;

  for (std::uint64_t i = 0; i < txns; ++i) {
    const bool is_cross = rng.chance(kCrossShare);
    const std::uint64_t single_blk = kShards + rng.below(kDataset);
    auto t = st->init_txn();
    if (is_cross) {
      // One block on every shard, same payload: the §15 atomic unit.
      ++cross;
      for (std::uint32_t s = 0; s < kShards; ++s) {
        fill_pattern(buf, pattern);
        t.add(home[s], buf);
      }
      ++pattern;
    } else {
      fill_pattern(buf, ++pattern);
      t.add(single_blk, buf);
    }

    std::array<sim::Ns, kShards> t0{};
    for (std::uint32_t s = 0; s < kShards; ++s)
      t0[s] = st->shard_clock(s).now();
    st->commit(t);

    sim::Ns svc = 0;
    sim::Ns start = 0;
    sim::Ns end = 0;
    if (is_cross) {
      // Participant flush passes overlap (disjoint NVM); the shared record
      // + fence ride shard 0's pass, so service = max of per-shard costs.
      // One lane per participant shard is held for the duration.
      std::array<std::uint32_t, kShards> lanes{};
      for (std::uint32_t s = 0; s < kShards; ++s) {
        svc = std::max(svc, st->shard_clock(s).now() - t0[s]);
        lanes[s] = rr[s]++ % streams;
        start = std::max(start, lane_free[s][lanes[s]]);
      }
      end = start + svc;
      for (std::uint32_t s = 0; s < kShards; ++s) lane_free[s][lanes[s]] = end;
    } else {
      const std::uint32_t s = st->shard_of(single_blk);
      svc = st->shard_clock(s).now() - t0[s];
      const std::uint32_t lane = rr[s]++ % streams;
      start = lane_free[s][lane];
      end = start + svc;
      lane_free[s][lane] = end;
    }
    makespan = std::max(makespan, end);
    r.svc.record(static_cast<double>(svc));
  }

  const core::TincaCacheStats after = st->aggregated_stats();
  r.fences_per_txn =
      static_cast<double>((after.commit_fences - before.commit_fences) +
                          (after.hint_syncs - before.hint_syncs)) /
      static_cast<double>(txns);
  r.cross_share = static_cast<double>(cross) / static_cast<double>(txns);
  r.xstream_commits = after.xstream_commits - before.xstream_commits;
  r.txns_per_sec =
      static_cast<double>(txns) /
      (static_cast<double>(makespan) / static_cast<double>(sim::kSec));
  return r;
}

struct FenceResult {
  double fences_per_txn = 0;
  double batch_mean = 0;
};

/// Section 2: §14 group-commit rounds on one core cache, parameterized by
/// stream count.  Mirrors bench_group_commit's stream sweep so the two
/// benches measure the same fence budget.
FenceResult run_group_fences(std::uint32_t streams, std::uint64_t rounds) {
  sim::SimClock clock;
  nvm::NvmDevice dev(16ull << 20, nvdimm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  core::TincaConfig cfg;
  cfg.ring_bytes = 64 * 1024;  // generous per-stream slack at 8 streams
  cfg.num_streams = streams;
  auto cache = core::TincaCache::format(dev, disk, cfg);

  constexpr std::uint64_t kBatch = 8;
  Rng rng(0xFE9CE + streams);
  std::vector<std::byte> buf(kBlock);
  std::uint64_t pattern = 0;

  auto make_txn = [&] {
    core::Transaction t = cache->tinca_init_txn();
    fill_pattern(buf, ++pattern);
    t.add(rng.below(64), buf);
    return t;
  };
  // Warm-up round, excluded from the counters.
  for (std::uint64_t i = 0; i < kBatch; ++i) {
    core::Transaction t = make_txn();
    cache->tinca_commit(t);
  }

  const core::TincaCacheStats before = cache->stats();
  for (std::uint64_t round = 0; round < rounds; ++round) {
    std::vector<core::Transaction> txns;
    txns.reserve(kBatch);
    for (std::uint64_t i = 0; i < kBatch; ++i) txns.push_back(make_txn());
    std::vector<core::Transaction*> ptrs;
    ptrs.reserve(kBatch);
    for (core::Transaction& t : txns) ptrs.push_back(&t);
    cache->commit_group(ptrs);
  }
  const core::TincaCacheStats after = cache->stats();

  FenceResult r;
  const double txns = static_cast<double>(rounds * kBatch);
  r.fences_per_txn =
      static_cast<double>((after.commit_fences - before.commit_fences) +
                          (after.hint_syncs - before.hint_syncs)) /
      txns;
  const double batches =
      static_cast<double>(after.commit_batches - before.commit_batches);
  r.batch_mean = batches > 0 ? txns / batches : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("multistream", argc, argv);

  std::uint64_t txns = 2000;
  std::uint64_t rounds = 300;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--txns") == 0 && i + 1 < argc) {
      txns = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::cerr << "usage: bench_multistream [--txns N] [--rounds N]"
                   " [--json <path>]\n";
      return 2;
    }
  }
  reporter.config("txns", txns);
  reporter.config("rounds", rounds);
  reporter.config("shards", static_cast<std::uint64_t>(kShards));
  reporter.config("cross_share_target", kCrossShare);

  banner("Multi-stream commit rings",
         "per-stream lanes vs the single-ring baseline (DESIGN.md §15)");
  Table t1({"streams", "txns/s", "speedup", "fences/txn", "cross%",
            "xstream", "svc_p50_us", "svc_p95_us"});
  const std::uint32_t kStreamCounts[] = {1, 2, 4, 8, 16};
  SweepResult base, eight;
  for (const std::uint32_t n : kStreamCounts) {
    SweepResult r = run_sweep(n, txns);
    if (n == 1) base = r;
    if (n == 8) eight = r;
    const double speedup = n == 1 ? 1.0 : r.txns_per_sec / base.txns_per_sec;
    t1.add_row({Table::num(static_cast<std::uint64_t>(n)), Table::num(r.txns_per_sec, 0),
                Table::num(speedup, 2), Table::num(r.fences_per_txn, 3),
                Table::num(r.cross_share * 100, 1),
                Table::num(r.xstream_commits),
                Table::num(r.svc.quantile(0.50) / 1e3, 1),
                Table::num(r.svc.quantile(0.95) / 1e3, 1)});
    reporter.add_row("sweep/streams=" + std::to_string(n))
        .metric("streams", static_cast<double>(n))
        .metric("txns_per_sec", r.txns_per_sec)
        .metric("speedup_vs_single_ring", speedup)
        .metric("fences_per_txn", r.fences_per_txn)
        .metric("cross_shard_share", r.cross_share)
        .metric("xstream_commits", static_cast<double>(r.xstream_commits))
        .latency("service", r.svc);
  }
  std::cout << t1.render();
  const double speedup8 = eight.txns_per_sec / base.txns_per_sec;
  std::cout << "\n8-stream/single-ring modeled throughput: "
            << Table::num(speedup8, 2) << "x\n\n";

  std::cout << "-- Fence accounting vs the §14 group path --\n";
  Table t2({"streams", "fences/txn", "batch_mean"});
  const FenceResult g1 = run_group_fences(1, rounds);
  const FenceResult g8 = run_group_fences(8, rounds);
  const std::uint32_t group_streams[] = {1, 8};
  const FenceResult* group_results[] = {&g1, &g8};
  for (std::size_t i = 0; i < 2; ++i) {
    const std::uint32_t n = group_streams[i];
    const FenceResult& g = *group_results[i];
    t2.add_row({Table::num(static_cast<std::uint64_t>(n)), Table::num(g.fences_per_txn, 3),
                Table::num(g.batch_mean, 2)});
    reporter.add_row("group/streams=" + std::to_string(n))
        .metric("streams", static_cast<double>(n))
        .metric("fences_per_txn", g.fences_per_txn)
        .metric("batch_mean_txns", g.batch_mean);
  }
  std::cout << t2.render() << "\n";

  // --- Gates (DESIGN.md §15; ci.sh re-checks these from the JSON) ----------
  bool ok = true;
  auto gate = [&](bool pass, const std::string& what) {
    std::cout << (pass ? "PASS: " : "FAIL: ") << what << "\n";
    ok &= pass;
  };
  gate(speedup8 >= 3.0,
       "8 streams >= 3x single-ring modeled throughput (got " +
           Table::num(speedup8, 2) + "x)");
  gate(g8.fences_per_txn <= g1.fences_per_txn * 1.05,
       "group fences/txn at 8 streams <= single-ring group path (" +
           Table::num(g8.fences_per_txn, 3) + " vs " +
           Table::num(g1.fences_per_txn, 3) + ")");
  gate(eight.xstream_commits > 0,
       "cross-shard mix exercised the cross-stream commit record path");

  if (!reporter.finish()) return 1;
  return ok ? 0 : 1;
}
