// Structured result output shared by every bench binary.
//
// Each bench keeps printing its human-readable table, and additionally
// passes its rows through a BenchReporter.  When the user runs the binary
// with `--json <path>` (or `--json=<path>`), finish() writes the same rows
// as a machine-readable document:
//
//   {
//     "schema": "tinca-bench-v1",
//     "bench":  "fig07_fio",
//     "config": { "nvm_profile": "pcm", "dataset_blocks": 40960, ... },
//     "rows":   [ { "label": "Tinca/seq-write",
//                   "metrics": { "iops_k": 103.2, "clflush_per_op": 3.0 } },
//                 ... ]
//   }
//
// The schema is deliberately flat — one metrics object per row, numbers
// only — so `ci.sh` can validate it with a few lines of python and plotting
// scripts can consume it without bench-specific knowledge.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/expect.h"
#include "common/histogram.h"
#include "obs/json.h"

namespace tinca::bench {

/// Collects rows of metric→value pairs and writes the tinca-bench-v1 JSON
/// document when the command line requested one.
class BenchReporter {
 public:
  /// One result row (a table line): a label plus named numeric metrics.
  class Row {
   public:
    explicit Row(std::string label) : label_(std::move(label)) {}

    /// Add (or overwrite nothing — names should be unique) one metric.
    Row& metric(const std::string& name, double value) {
      metrics_.emplace_back(name, value);
      return *this;
    }

    /// Add p50/p95/p99 (plus mean and count) summaries of a latency
    /// histogram as `<prefix>_p50_ns` etc.
    Row& latency(const std::string& prefix, const Histogram& h) {
      metric(prefix + "_count", static_cast<double>(h.count()));
      metric(prefix + "_mean_ns", h.mean());
      metric(prefix + "_p50_ns", static_cast<double>(h.quantile(0.50)));
      metric(prefix + "_p95_ns", static_cast<double>(h.quantile(0.95)));
      metric(prefix + "_p99_ns", static_cast<double>(h.quantile(0.99)));
      return *this;
    }

    [[nodiscard]] const std::string& label() const { return label_; }
    [[nodiscard]] const std::vector<std::pair<std::string, double>>& metrics()
        const {
      return metrics_;
    }

   private:
    std::string label_;
    std::vector<std::pair<std::string, double>> metrics_;
  };

  /// Parse `--json <path>` / `--json=<path>` out of the command line.  The
  /// consumed arguments are removed from argv (argc is updated) so benches
  /// that forward the remainder — e.g. to google-benchmark — stay clean.
  BenchReporter(std::string bench_name, int& argc, char** argv)
      : bench_(std::move(bench_name)) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        TINCA_EXPECT(i + 1 < argc, "--json requires a path argument");
        path_ = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }

  /// Record one configuration key (shown under "config").
  void config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, obs::Json::str(value));
  }
  void config(const std::string& key, const char* value) {
    config(key, std::string(value));
  }
  void config(const std::string& key, std::uint64_t value) {
    config_.emplace_back(key, obs::Json::number(value));
  }
  void config(const std::string& key, double value) {
    config_.emplace_back(key, obs::Json::number(value));
  }

  /// Append a result row; the returned reference stays valid until the next
  /// add_row (rows are stored in a deque-free vector, so take metrics
  /// immediately — the idiomatic use is chained calls).
  Row& add_row(const std::string& label) {
    rows_.emplace_back(label);
    return rows_.back();
  }

  [[nodiscard]] bool json_requested() const { return !path_.empty(); }
  [[nodiscard]] const std::string& json_path() const { return path_; }

  /// The document, whether or not a path was requested.
  [[nodiscard]] obs::Json to_json() const {
    obs::Json doc = obs::Json::object();
    doc.set("schema", obs::Json::str("tinca-bench-v1"));
    doc.set("bench", obs::Json::str(bench_));
    obs::Json cfg = obs::Json::object();
    for (const auto& [k, v] : config_) cfg.set(k, v);
    doc.set("config", std::move(cfg));
    obs::Json rows = obs::Json::array();
    for (const Row& r : rows_) {
      obs::Json row = obs::Json::object();
      row.set("label", obs::Json::str(r.label()));
      obs::Json metrics = obs::Json::object();
      for (const auto& [name, value] : r.metrics())
        metrics.set(name, obs::Json::number(value));
      row.set("metrics", std::move(metrics));
      rows.push(std::move(row));
    }
    doc.set("rows", std::move(rows));
    return doc;
  }

  /// Write the JSON file if one was requested.  Returns false (and prints
  /// to stderr) on I/O failure; true otherwise.
  bool finish() const {
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "bench: cannot open " << path_ << " for writing\n";
      return false;
    }
    const std::string text = to_json().dump(2) + "\n";
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (ok) std::cout << "[json results written to " << path_ << "]\n";
    return ok;
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, obs::Json>> config_;
  std::vector<Row> rows_;
};

}  // namespace tinca::bench
