// Ablation — transaction batch size.
//
// Tinca's per-block commit overhead is a ring record + Head move (two 8 B
// persists); Classic's is descriptor/commit blocks plus the journal
// superblock on checkpoint.  Sweeping blocks-per-transaction shows where
// each amortizes: Tinca is nearly flat (its overhead is per-block already),
// Classic improves with batching but never closes the double-write gap.
// This backs the paper's claim that Tinca's transactions are "lightweight"
// (§4.4) independent of batching.
#include <iostream>

#include "bench_reporter.h"
#include "bench_util.h"
#include "common/bytes.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

/// Virtual nanoseconds per committed block at the given batch size.
double ns_per_block(backend::StackKind kind, std::uint64_t batch) {
  backend::Stack stack(scaled_stack(kind));
  auto& be = stack.backend();
  std::vector<std::byte> blk(4096);
  fill_pattern(blk, batch);
  const std::uint64_t total_blocks = 8192;
  const std::uint64_t txns = total_blocks / batch;
  const sim::Ns start = stack.clock().now();
  std::uint64_t next = 0;
  for (std::uint64_t t = 0; t < txns; ++t) {
    be.begin();
    for (std::uint64_t b = 0; b < batch; ++b)
      be.stage(next++ % (ScaledDefaults::kFioDatasetBlocks), blk);
    be.commit();
  }
  return static_cast<double>(stack.clock().now() - start) /
         static_cast<double>(txns * batch);
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("ablation_txn_batch", argc, argv);
  reporter.config("total_blocks", std::uint64_t{8192});

  banner("Ablation: blocks per transaction",
         "virtual ns per committed block vs batch size");

  Table t({"blocks/txn", "Classic ns/blk", "Tinca ns/blk", "gap"});
  for (std::uint64_t batch : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull}) {
    const double classic = ns_per_block(backend::StackKind::kClassic, batch);
    const double tinca = ns_per_block(backend::StackKind::kTinca, batch);
    t.add_row({Table::num(batch), Table::num(classic, 0), Table::num(tinca, 0),
               Table::num(classic / tinca, 2) + "x"});
    reporter.add_row("batch=" + std::to_string(batch))
        .metric("classic_ns_per_block", classic)
        .metric("tinca_ns_per_block", tinca)
        .metric("gap", classic / tinca);
  }
  std::cout << t.render();
  std::cout << "\nExpectation: Tinca is flat across batch sizes; Classic"
               " amortizes its descriptor/commit blocks with batching but"
               " keeps paying the double write.\n";
  return reporter.finish() ? 0 : 1;
}
