// File-system-level fault-fuzz campaign + crash-point sweep (DESIGN.md §10).
//
// Part 1 — randomized campaign: drives MiniFs over all four stacks with
// random op histories under disk faults and power cuts, checking every
// recovered tree against the in-DRAM reference model and running the
// strengthened fsck() (both must be clean — those are the gates).
//
// Part 2 — crash-point sweep: replays one fixed op script per stack and
// steps the injector through every NVM-store point and torn disk-write site
// inside the script's final mutation batch + compound commit.
//
// Usage:
//   bench_fs_fuzz_sweep [--schedules N] [--seed S] [--sweep-stride K]
//                       [--sabotage data|bitmap] [--json <path>]
//
// --sabotage corrupts every crash-free schedule behind the harness's back
// (oracle self-test): the run must then *fail*, proving the oracle has
// teeth.  Exit status is nonzero on any violation or dirty fsck, so CI can
// gate on this binary directly (ci.sh runs it with a fixed seed, and runs
// the sabotage mode expecting failure).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_reporter.h"
#include "bench_util.h"
#include "fs/fs_fuzz.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

/// One sweep row: a stack kind with the background cleaner off or armed in
/// deterministic stepped mode (DESIGN.md §11), and optionally with the
/// sharded per-shard commit batcher armed (DESIGN.md §14) so the crash-point
/// sweep cuts inside the batched commit pipeline.  Classic has no cleaner.
struct Campaign {
  backend::StackKind kind;
  cleaner::CleanerMode cleaner;
  bool group;
  std::uint32_t streams;  ///< commit streams per shard (DESIGN.md §15)
  const char* label;
};

constexpr Campaign kCampaigns[] = {
    {backend::StackKind::kTinca, cleaner::CleanerMode::kDisabled, false, 1,
     "Tinca"},
    {backend::StackKind::kClassic, cleaner::CleanerMode::kDisabled, false, 1,
     "Classic"},
    {backend::StackKind::kUbj, cleaner::CleanerMode::kDisabled, false, 1,
     "UBJ"},
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kDisabled, false,
     1, "Sharded"},
    {backend::StackKind::kTinca, cleaner::CleanerMode::kStepped, false, 1,
     "Tinca+cleaner"},
    {backend::StackKind::kUbj, cleaner::CleanerMode::kStepped, false, 1,
     "UBJ+cleaner"},
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kStepped, false,
     1, "Sharded+cleaner"},
    {backend::StackKind::kNvLogClassic, cleaner::CleanerMode::kDisabled, false,
     1, "NvLog"},
    {backend::StackKind::kNvLogClassic, cleaner::CleanerMode::kStepped, false,
     1, "NvLog+cleaner"},
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kDisabled, true,
     1, "Sharded+group"},
    // Multi-stream rings (DESIGN.md §15): fs txns spanning shards commit
    // through one atomic cross-stream record; fsync semantics must hold.
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kDisabled, false,
     2, "Sharded+streams"},
    {backend::StackKind::kShardedTinca, cleaner::CleanerMode::kDisabled, true,
     2, "Sharded+streams+group"},
    // Deep-stacked NvLog tiers (DESIGN.md §16): MiniFs compound commits
    // absorb into the log and drain into a full transactional cache inner.
    {backend::StackKind::kNvLogTinca, cleaner::CleanerMode::kStepped, false, 1,
     "NvLogTinca"},
    {backend::StackKind::kNvLogSharded, cleaner::CleanerMode::kStepped, false,
     1, "NvLogSharded"},
    {backend::StackKind::kNvLogSharded, cleaner::CleanerMode::kDisabled, true,
     1, "NvLogSharded+group"},
};

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("fs_fuzz_sweep", argc, argv);

  std::uint64_t schedules = 500;
  std::uint64_t seed = 1;
  std::uint32_t sweep_stride = 1;
  fs::FsSabotage sabotage = fs::FsSabotage::kNone;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schedules") == 0 && i + 1 < argc) {
      schedules = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--sweep-stride") == 0 && i + 1 < argc) {
      sweep_stride =
          static_cast<std::uint32_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (std::strcmp(argv[i], "--sabotage") == 0 && i + 1 < argc) {
      const char* what = argv[++i];
      if (std::strcmp(what, "data") == 0) {
        sabotage = fs::FsSabotage::kCorruptData;
      } else if (std::strcmp(what, "bitmap") == 0) {
        sabotage = fs::FsSabotage::kCorruptBitmap;
      } else {
        std::cerr << "unknown --sabotage mode: " << what << "\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_fs_fuzz_sweep [--schedules N] [--seed S]"
                   " [--sweep-stride K] [--sabotage data|bitmap]"
                   " [--json <path>]\n";
      return 2;
    }
  }

  fs::FsFuzzOptions base;
  reporter.config("schedules", schedules);
  reporter.config("seed", seed);
  reporter.config("sweep_stride", static_cast<std::uint64_t>(sweep_stride));
  reporter.config("ops_per_schedule",
                  static_cast<std::uint64_t>(base.ops_per_schedule));
  reporter.config("crash_prob", base.crash_prob);
  reporter.config("transient_write_rate", base.transient_write_rate);
  reporter.config("sabotage", static_cast<std::uint64_t>(sabotage));

  std::cout << "FS fuzz: " << schedules << " randomized MiniFs schedules per"
            << " stack + crash-point sweep, seed " << seed
            << (sabotage != fs::FsSabotage::kNone ? " [SABOTAGE self-test]"
                                                  : "")
            << "\n\n";

  Table t({"stack", "ops", "txns", "crashes", "remounts",
           "fscks", "dirty", "sweep_pts", "sweep_torn", "violations"});
  std::uint64_t total_violations = 0;
  std::uint64_t total_dirty = 0;

  for (const Campaign& c : kCampaigns) {
    fs::FsFuzzOptions opts;
    opts.kind = c.kind;
    opts.cleaner = c.cleaner;
    opts.group_commit = c.group;
    opts.streams = c.streams;
    opts.seed = seed;
    opts.schedules = static_cast<std::uint32_t>(schedules);
    opts.sabotage = sabotage;
    fs::FsFuzzReport r = fs::run_fs_fuzz(opts);

    // Crash-point sweep rides on the same options (always sabotage-free:
    // the sweep verifies crash states, sabotage targets crash-free ones).
    fs::FsFuzzOptions sweep_opts = opts;
    sweep_opts.sabotage = fs::FsSabotage::kNone;
    const fs::FsFuzzReport s = fs::run_fs_crash_sweep(sweep_opts, sweep_stride);

    const std::uint64_t violations = r.violations + s.violations;
    const std::uint64_t dirty = r.fsck_dirty + s.fsck_dirty;
    t.add_row({c.label, Table::num(r.ops_executed),
               Table::num(r.txns_committed), Table::num(r.crashes + s.crashes),
               Table::num(r.clean_remounts + s.clean_remounts),
               Table::num(r.fsck_runs + s.fsck_runs), Table::num(dirty),
               Table::num(s.sweep_points), Table::num(s.sweep_torn_points),
               Table::num(violations)});
    reporter.add_row(c.label)
        .metric("schedules", static_cast<double>(r.schedules))
        .metric("ops", static_cast<double>(r.ops_executed))
        .metric("txns_committed", static_cast<double>(r.txns_committed))
        .metric("crashes", static_cast<double>(r.crashes + s.crashes))
        .metric("mkfs_crashes", static_cast<double>(r.mkfs_crashes))
        .metric("clean_remounts",
                static_cast<double>(r.clean_remounts + s.clean_remounts))
        .metric("io_errors", static_cast<double>(r.io_errors + s.io_errors))
        .metric("io_retries", static_cast<double>(r.io_retries))
        .metric("wedges", static_cast<double>(r.wedges + s.wedges))
        .metric("fsck_runs", static_cast<double>(r.fsck_runs + s.fsck_runs))
        .metric("fsck_dirty", static_cast<double>(dirty))
        .metric("sweep_points", static_cast<double>(s.sweep_points))
        .metric("sweep_torn_points", static_cast<double>(s.sweep_torn_points))
        .metric("violations", static_cast<double>(violations));

    total_violations += violations;
    total_dirty += dirty;
    for (const std::string& m : r.violation_messages)
      std::cerr << c.label << " VIOLATION: " << m << "\n";
    for (const std::string& m : s.violation_messages)
      std::cerr << c.label << " SWEEP VIOLATION: " << m << "\n";
  }

  std::cout << t.render();
  std::cout << "\nEvery recovered tree matched the reference model at an"
               " fsync boundary and every fsck came back clean; violations"
               " and dirty must be 0.\n";
  if (total_violations != 0 || total_dirty != 0) {
    std::cerr << "\nFAIL: " << total_violations << " violation(s), "
              << total_dirty << " dirty fsck report(s); reproduce with"
              << " --seed " << seed << "\n";
  }
  if (!reporter.finish()) return 1;
  return total_violations == 0 && total_dirty == 0 ? 0 : 1;
}
