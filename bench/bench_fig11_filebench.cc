// Fig 11 — Filebench on the GlusterFS-style cluster, 2 replicas (§5.3.2).
//
// Panels: (a) file operations per second, (b) clflush per file operation,
// (c) disk blocks written per file operation, for fileserver / webproxy /
// varmail.  Paper headline: Tinca yields 1.8× (fileserver), 1.2× (webproxy,
// +20.1 %) and 1.5× (varmail) Classic's throughput.
#include <iostream>

#include "bench_reporter.h"
#include "bench_util.h"
#include "cluster/minidfs.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

constexpr std::uint64_t kOps = 6000;
constexpr std::uint32_t kStreams = 16;

struct Cell {
  double ops_per_sec;
  double clflush_per_op;
  double disk_per_op;
};

Cell run_cluster(backend::StackKind kind, workloads::FilebenchKind wkind) {
  cluster::DfsConfig cfg;
  cfg.nodes = 4;
  cfg.replicas = 2;  // the paper fixes GlusterFS replicas at 2
  cfg.node.stack = scaled_stack(kind);
  cfg.node.with_fs = true;
  cluster::MiniDfs dfs(cfg);

  const std::uint64_t clflush_before = dfs.total_clflush();
  const std::uint64_t disk_before = dfs.total_disk_writes();
  workloads::FilebenchConfig wl;
  wl.kind = wkind;
  wl.nfiles = 768;
  wl.mean_file_bytes = 64 * 1024;
  const auto r = dfs.run_filebench(wl, kOps, kStreams);

  Cell cell;
  cell.ops_per_sec = r.ops_per_sec();
  cell.clflush_per_op =
      per_op(dfs.total_clflush(), clflush_before, r.ops);
  cell.disk_per_op = per_op(dfs.total_disk_writes(), disk_before, r.ops);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("fig11_filebench", argc, argv);
  reporter.config("ops", kOps);
  reporter.config("streams", std::uint64_t{kStreams});
  reporter.config("replicas", std::uint64_t{2});

  banner("Figure 11", "Filebench over 4-node GlusterFS-style cluster (2 replicas)");

  Table t({"workload", "Classic OPs/s", "Tinca OPs/s", "speedup",
           "Classic clflush/op", "Tinca clflush/op",
           "Classic dw/op", "Tinca dw/op"});
  struct Row {
    const char* name;
    workloads::FilebenchKind kind;
  } rows[] = {{"fileserver", workloads::FilebenchKind::kFileserver},
              {"webproxy", workloads::FilebenchKind::kWebproxy},
              {"varmail", workloads::FilebenchKind::kVarmail}};
  for (const Row& row : rows) {
    const Cell classic = run_cluster(backend::StackKind::kClassic, row.kind);
    const Cell tinca = run_cluster(backend::StackKind::kTinca, row.kind);
    t.add_row({row.name,
               Table::num(classic.ops_per_sec, 0),
               Table::num(tinca.ops_per_sec, 0),
               Table::num(tinca.ops_per_sec / classic.ops_per_sec, 2) + "x",
               Table::num(classic.clflush_per_op, 0),
               Table::num(tinca.clflush_per_op, 0),
               Table::num(classic.disk_per_op, 2),
               Table::num(tinca.disk_per_op, 2)});
    const struct {
      const char* system;
      const Cell* cell;
    } sides[] = {{"Classic", &classic}, {"Tinca", &tinca}};
    for (const auto& [system, cell] : sides)
      reporter.add_row(std::string(system) + "/" + row.name)
          .metric("ops_per_sec", cell->ops_per_sec)
          .metric("clflush_per_op", cell->clflush_per_op)
          .metric("disk_writes_per_op", cell->disk_per_op);
  }
  std::cout << t.render();
  std::cout << "\nPaper reference: Tinca 1.8x on fileserver, +20.1% on"
               " webproxy, 1.5x on varmail.\n";
  return reporter.finish() ? 0 : 1;
}
