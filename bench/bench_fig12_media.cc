// Fig 12 — sensitivity to disk and NVM media, and cache write hit rate
// (paper §5.4.1, §5.4.2).  All panels run TPC-C with 20 users via the
// shared DES driver (tpcc_des.h).
//
//   (a) TPM on SSD vs HDD: the Tinca/Classic gap widens on the slower disk
//       (paper: 1.7× on SSD → 2.8× on HDD).
//   (b) TPM on PCM vs NVDIMM vs STT-RAM: the gap relaxes slightly on faster
//       NVM (paper: 1.7× → 1.6×).
//   (c) Cache write hit rate: Classic 80 % vs Tinca 93 % — Tinca spends no
//       cache space on journal blocks.
#include <iostream>

#include "bench_reporter.h"
#include "tpcc_des.h"

using namespace tinca;
using namespace tinca::bench;

int main(int argc, char** argv) {
  BenchReporter reporter("fig12_media", argc, argv);
  reporter.config("users", std::uint64_t{20});

  banner("Figure 12",
         "disk/NVM media sensitivity and write hit rate (TPC-C, 20 users)");
  TpccDesParams params;
  params.users = 20;

  std::cout << "\n(a) Disk media (NVM = PCM)\n";
  Table a({"disk", "Classic TPM", "Tinca TPM", "gap"});
  for (const char* disk : {"ssd", "hdd"}) {
    const auto classic =
        run_tpcc_des(backend::StackKind::kClassic, "pcm", disk, params);
    const auto tinca =
        run_tpcc_des(backend::StackKind::kTinca, "pcm", disk, params);
    a.add_row({disk, Table::num(classic.tpm, 0), Table::num(tinca.tpm, 0),
               Table::num(tinca.tpm / classic.tpm, 2) + "x"});
    reporter.add_row(std::string("disk_media/") + disk)
        .metric("classic_tpm", classic.tpm)
        .metric("tinca_tpm", tinca.tpm)
        .metric("gap", tinca.tpm / classic.tpm);
  }
  std::cout << a.render()
            << "Paper reference: gap widens 1.7x (SSD) -> 2.8x (HDD).\n";

  std::cout << "\n(b) NVM media (disk = SSD)\n";
  Table b({"NVM", "Classic TPM", "Tinca TPM", "gap"});
  for (const char* nvm : {"pcm", "nvdimm", "sttram"}) {
    const auto classic =
        run_tpcc_des(backend::StackKind::kClassic, nvm, "ssd", params);
    const auto tinca =
        run_tpcc_des(backend::StackKind::kTinca, nvm, "ssd", params);
    b.add_row({nvm, Table::num(classic.tpm, 0), Table::num(tinca.tpm, 0),
               Table::num(tinca.tpm / classic.tpm, 2) + "x"});
    reporter.add_row(std::string("nvm_media/") + nvm)
        .metric("classic_tpm", classic.tpm)
        .metric("tinca_tpm", tinca.tpm)
        .metric("gap", tinca.tpm / classic.tpm);
  }
  std::cout << b.render()
            << "Paper reference: gap relaxes 1.7x (PCM) -> 1.6x"
               " (NVDIMM, STT-RAM).\n";

  std::cout << "\n(c) Cache write hit rate (PCM + SSD)\n";
  Table c({"stack", "write hit rate"});
  const auto classic =
      run_tpcc_des(backend::StackKind::kClassic, "pcm", "ssd", params);
  const auto tinca =
      run_tpcc_des(backend::StackKind::kTinca, "pcm", "ssd", params);
  c.add_row({"Classic", Table::num(classic.write_hit_rate, 1) + "%"});
  c.add_row({"Tinca", Table::num(tinca.write_hit_rate, 1) + "%"});
  std::cout << c.render() << "Paper reference: Classic 80%, Tinca 93%.\n";
  reporter.add_row("write_hit_rate/Classic")
      .metric("write_hit_rate_pct", classic.write_hit_rate);
  reporter.add_row("write_hit_rate/Tinca")
      .metric("write_hit_rate_pct", tinca.write_hit_rate);
  return reporter.finish() ? 0 : 1;
}
