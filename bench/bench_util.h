// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper with the same
// rows and series the figure plots.  Scales are reduced (DESIGN.md §2) but
// the ratios the paper's effects depend on — dataset : cache size,
// read : write mix, replica counts — are preserved, so the *shape* of each
// result (who wins, by what factor) is comparable.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "backend/stack_builder.h"
#include "common/table.h"
#include "obs/trace.h"

namespace tinca::bench {

/// Scaled default geometry: the paper used an 8 GB NVM cache over a 128 GB
/// SSD with 20–32 GB datasets; we keep the same proportions at 1/128 scale.
struct ScaledDefaults {
  static constexpr std::uint64_t kNvmBytes = 64ull << 20;        // "8 GB"
  static constexpr std::uint64_t kDiskBlocks = 256ull << 8;      // "128 GB"
  static constexpr std::uint64_t kFioDatasetBlocks = 40960;      // "20 GB"
  static constexpr std::uint64_t kTpccDatasetBlocks = 65536;     // "32 GB"
  static constexpr std::uint64_t kJournalBlocks = 4096;          // "16 MB" jrnl
};

/// Build a StackConfig at the scaled defaults.
inline backend::StackConfig scaled_stack(backend::StackKind kind,
                                         const std::string& nvm = "pcm",
                                         const std::string& disk = "ssd") {
  backend::StackConfig cfg;
  cfg.kind = kind;
  cfg.nvm_bytes = ScaledDefaults::kNvmBytes;
  cfg.disk_blocks = 1ull << 17;  // 512 MB address space
  cfg.nvm_profile = nvm;
  cfg.disk_profile = disk;
  cfg.classic.journal_blocks = ScaledDefaults::kJournalBlocks;
  cfg.tinca.ring_bytes = 1 << 20;  // the paper's 1 MB ring
  return cfg;
}

/// Snapshot of the two per-op metrics every figure reports.
struct MetricSnapshot {
  std::uint64_t clflush = 0;
  std::uint64_t disk_writes = 0;
};

inline MetricSnapshot snapshot(backend::Stack& stack) {
  // Debug builds cross-check the cache-side write counters against the
  // device counter at every snapshot point (no-op for Classic/UBJ).
  stack.assert_write_accounting();
  return {stack.clflush_count(), stack.disk_blocks_written()};
}

/// The backend's commit-latency span histogram (virtual ns), whatever the
/// backend calls its commit: Tinca's "commit", Classic's "journal_commit",
/// UBJ's "freeze".  nullptr when the stack is uninstrumented or tracing was
/// never enabled (the histogram is then empty but still returned).
inline const Histogram* commit_histogram(backend::Stack& stack) {
  const obs::Tracer* t = stack.backend().tracer();
  if (t == nullptr) return nullptr;
  for (const char* site : {"commit", "journal_commit", "freeze"})
    if (const Histogram* h = t->histogram(site)) return h;
  return nullptr;
}

/// Per-op deltas between two snapshots.
inline double per_op(std::uint64_t after, std::uint64_t before,
                     std::uint64_t ops) {
  return ops == 0 ? 0.0
                  : static_cast<double>(after - before) /
                        static_cast<double>(ops);
}

/// Uniform bench banner.
inline void banner(const std::string& figure, const std::string& what) {
  std::cout << "==========================================================\n"
            << figure << " — " << what << "\n"
            << "(virtual-time simulation at 1/128 scale; shapes and ratios\n"
            << " are comparable to the paper, absolute values are not)\n"
            << "==========================================================\n";
}

}  // namespace tinca::bench
