// Fig 8 — TPC-C throughput, Classic vs Tinca, 5–60 users (paper §5.2.2).
//
// Panels: (a) transactions per minute, (b) clflush per TPC-C transaction,
// (c) disk blocks written per transaction.  Paper headline: Tinca delivers
// 1.7–1.8× Classic's TPM; its clflush per txn is ~30–36 % of Classic's;
// disk writes drop from ~4.2–7.0 to ~1.9–3.0 blocks per txn; from 5 to 60
// users throughput declines 41.0 % (Classic) vs 35.3 % (Tinca).
//
// The user-concurrency model is the shared DES driver in tpcc_des.h.
#include <iostream>

#include "bench_reporter.h"
#include "tpcc_des.h"

using namespace tinca;
using namespace tinca::bench;

int main(int argc, char** argv) {
  BenchReporter reporter("fig08_tpcc", argc, argv);
  reporter.config("nvm_profile", "pcm");
  reporter.config("disk_profile", "ssd");

  banner("Figure 8", "TPC-C (MySQL/HammerDB modelled), Classic vs Tinca");

  Table t({"users", "Classic TPM", "Tinca TPM", "speedup",
           "Classic clflush/txn", "Tinca clflush/txn", "Tinca/Classic",
           "Classic dw/txn", "Tinca dw/txn"});
  double first_classic = 0, first_tinca = 0, last_classic = 0, last_tinca = 0;
  for (std::uint32_t users : {5u, 10u, 15u, 20u, 40u, 60u}) {
    TpccDesParams params;
    params.users = users;
    const TpccDesResult classic =
        run_tpcc_des(backend::StackKind::kClassic, "pcm", "ssd", params);
    const TpccDesResult tinca =
        run_tpcc_des(backend::StackKind::kTinca, "pcm", "ssd", params);
    if (users == 5) {
      first_classic = classic.tpm;
      first_tinca = tinca.tpm;
    }
    last_classic = classic.tpm;
    last_tinca = tinca.tpm;
    t.add_row({std::to_string(users),
               Table::num(classic.tpm, 0),
               Table::num(tinca.tpm, 0),
               Table::num(tinca.tpm / classic.tpm, 2) + "x",
               Table::num(classic.clflush_per_txn, 0),
               Table::num(tinca.clflush_per_txn, 0),
               Table::num(tinca.clflush_per_txn / classic.clflush_per_txn * 100.0, 1) + "%",
               Table::num(classic.disk_per_txn, 2),
               Table::num(tinca.disk_per_txn, 2)});
    const struct {
      const char* system;
      const TpccDesResult* r;
    } sides[] = {{"Classic", &classic}, {"Tinca", &tinca}};
    for (const auto& [system, r] : sides)
      reporter
          .add_row(std::string(system) + "/users=" + std::to_string(users))
          .metric("tpm", r->tpm)
          .metric("clflush_per_txn", r->clflush_per_txn)
          .metric("disk_writes_per_txn", r->disk_per_txn);
  }
  std::cout << t.render();
  std::cout << "\nThroughput decline 5 -> 60 users:  Classic "
            << Table::num((1.0 - last_classic / first_classic) * 100.0, 1)
            << "%  Tinca "
            << Table::num((1.0 - last_tinca / first_tinca) * 100.0, 1) << "%\n";
  std::cout << "Paper reference: Tinca 1.8x (5 users) and 1.7x (60 users);"
               " clflush/txn 29.8%-36.2% of Classic's; declines 41.0% vs"
               " 35.3%; disk writes 4.2->1.9 (5 users) and 7.0->3.0 (60).\n";
  return reporter.finish() ? 0 : 1;
}
