// Bench — MVCC snapshot reads: lock-free read throughput vs the mutex
// baseline under concurrent commit traffic (DESIGN.md §12).
//
// The claim under test: ShardedTinca clean read hits never take the shard
// mutex, so N concurrent readers scale their aggregate throughput ~N× while
// the locked baseline serializes every read (and the writer) behind one
// mutex.  The machine running CI may have a single core, so concurrency is
// measured in *virtual* time, the same discipline as every other bench
// here:
//
//   * locked baseline — read_block_locked() charges the shard's one
//     SimClock for every NVM line it loads (plus the modelled per-op CPU
//     cost), exactly what mutex serialization costs: the makespan is the
//     shard clock's total advance across readers and writer alike.
//   * MVCC readers — read_block()'s lock-free path by design touches no
//     shared clock (load_nocharge), so each simulated reader charges a
//     PRIVATE clock with the same modelled cost per read:
//     cpu_op_ns + 64 lines × line_read_cost.  Readers overlap each other
//     and the writer, so the makespan is the MAXIMUM of the private clocks
//     and the shard clock's advance (the writer's commits).
//
// Every read is verified against the committed content (any torn or stale
// image aborts the bench), and a writer keeps committing throughout, so the
// lock-free path is measured against live publication and reclamation, not
// a quiesced cache.
//
// Usage:
//   bench_mvcc_reads [--reads N] [--json <path>]
//
// Exit status is nonzero unless MVCC read throughput at 4 readers is at
// least 3x the locked baseline (the PR's acceptance gate), and unless the
// verified-read check passes at every point.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_reporter.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "common/histogram.h"
#include "shard/sharded_tinca.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

constexpr std::size_t kNvmBytes = 32 << 20;
constexpr std::uint64_t kDiskBlocks = 1 << 16;
constexpr std::uint64_t kWorkingSet = 512;   ///< resident blocks readers hit
constexpr std::uint64_t kCommitEvery = 256;  ///< reads between writer commits
constexpr std::uint64_t kWriterBatch = 4;    ///< blocks per writer txn

struct RunResult {
  std::uint64_t reads = 0;
  std::uint64_t makespan_ns = 0;       ///< virtual completion time
  double reads_per_sec_m = 0.0;        ///< aggregate, millions/s (virtual)
  Histogram commit_lat;                ///< writer commit spans (shard clock)
  std::uint64_t snapshot_reads = 0;    ///< resolved via version chains
  std::uint64_t disk_fallbacks = 0;
  std::uint64_t lock_fallbacks = 0;
  bool verified = true;
};

/// The per-read virtual cost a lock-free reader charges its private clock:
/// the modelled CPU op plus one whole block of NVM line reads — the same
/// bill read_block_locked pays on the shared clock.
std::uint64_t modelled_read_ns(const core::TincaConfig& cfg,
                               const NvmProfile& profile) {
  return cfg.cpu_op_ns + (core::kBlockSize / nvm::NvmDevice::kLineSize) *
                             profile.line_read_cost();
}

/// `seed_of[blkno]` tracks the newest committed seed per block; a read is
/// valid if it matches the seed at pin time or any later one (the reader
/// raced the writer; both images are committed states).
RunResult run_one(bool mvcc, std::uint64_t readers, std::uint64_t reads) {
  sim::SimClock clock;
  const NvmProfile profile = pcm_profile();
  nvm::NvmDevice dev(kNvmBytes, profile, clock);
  blockdev::MemBlockDevice disk(kDiskBlocks);
  shard::ShardedConfig cfg;
  cfg.num_shards = 1;  // one mutex, one clock: the contention under test
  cfg.shard.ring_bytes = 64 << 10;
  auto sharded = shard::ShardedTinca::format(dev, disk, cfg);

  std::vector<std::uint64_t> seed_of(kWorkingSet, 0);
  std::vector<std::byte> blk(core::kBlockSize);
  std::uint64_t next_seed = 1;

  // Resident working set, all committed (clean or dirty is irrelevant to
  // the read path; what matters is an NVM-resident version chain).
  for (std::uint64_t b = 0; b < kWorkingSet; ++b) {
    auto txn = sharded->init_txn();
    fill_pattern(blk, next_seed);
    txn.add(b, blk);
    sharded->commit(txn);
    seed_of[b] = next_seed++;
  }

  const std::uint64_t per_read_ns = modelled_read_ns(cfg.shard, profile);
  const auto mvcc_before = [&] {
    const core::MvccStats& s = sharded->shard_cache(0).mvcc().stats;
    return std::array<std::uint64_t, 3>{s.snapshot_reads.load(),
                                        s.disk_fallbacks.load(),
                                        s.lock_fallbacks.load()};
  }();

  RunResult r;
  std::vector<std::uint64_t> reader_clock(readers, 0);
  std::vector<std::mt19937_64> rng;
  for (std::uint64_t i = 0; i < readers; ++i) rng.emplace_back(977 + i);
  std::uniform_int_distribution<std::uint64_t> pick(0, kWorkingSet - 1);
  std::vector<std::byte> buf(core::kBlockSize);

  sim::SimClock& shard_clock = sharded->shard_clock(0);
  const std::uint64_t start_ns = shard_clock.now();
  std::uint64_t issued = 0;
  while (issued < reads) {
    // Round-robin one read per simulated reader — the interleaving a fair
    // scheduler would produce.
    for (std::uint64_t rd = 0; rd < readers && issued < reads; ++rd) {
      const std::uint64_t blkno = pick(rng[rd]);
      const std::uint64_t seed_at_pin = seed_of[blkno];
      if (mvcc) {
        sharded->read_block(blkno, buf);
        reader_clock[rd] += per_read_ns;
      } else {
        sharded->read_block_locked(blkno, buf);
      }
      // Committed-boundary check: the image must be the seed at pin time or
      // a later committed one (the writer runs between reads, never during
      // one — reads are atomic units of virtual time here).
      const std::uint64_t got = fingerprint(buf);
      bool ok = false;
      for (std::uint64_t s = seed_at_pin; s <= seed_of[blkno] && !ok; ++s) {
        fill_pattern(blk, s);
        ok = got == fingerprint(blk);
      }
      if (!ok) r.verified = false;
      ++issued;
    }
    // The single writer: a small txn on the shard clock every kCommitEvery
    // reads, so publication and reclamation churn while readers run.
    if (issued % kCommitEvery < readers) {
      auto txn = sharded->init_txn();
      for (std::uint64_t b = 0; b < kWriterBatch; ++b) {
        const std::uint64_t blkno = (issued / kCommitEvery + b) % kWorkingSet;
        fill_pattern(blk, next_seed);
        txn.add(blkno, blk);
        seed_of[blkno] = next_seed++;
      }
      const std::uint64_t t0 = shard_clock.now();
      sharded->commit(txn);
      r.commit_lat.record(shard_clock.now() - t0);
    }
  }

  const std::uint64_t shard_advance = shard_clock.now() - start_ns;
  std::uint64_t reader_makespan = 0;
  for (const std::uint64_t c : reader_clock)
    reader_makespan = std::max(reader_makespan, c);
  // Locked: everything serialized on the shard clock.  MVCC: readers
  // overlap; the run finishes when the slowest party does.
  r.makespan_ns = mvcc ? std::max(reader_makespan, shard_advance)
                       : shard_advance;
  r.reads = issued;
  r.reads_per_sec_m = r.makespan_ns == 0
                          ? 0.0
                          : static_cast<double>(issued) * 1e3 /
                                static_cast<double>(r.makespan_ns);

  const core::MvccStats& ms = sharded->shard_cache(0).mvcc().stats;
  r.snapshot_reads = ms.snapshot_reads.load() - mvcc_before[0];
  r.disk_fallbacks = ms.disk_fallbacks.load() - mvcc_before[1];
  r.lock_fallbacks = ms.lock_fallbacks.load() - mvcc_before[2];
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("mvcc_reads", argc, argv);

  std::uint64_t reads = 50'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reads") == 0 && i + 1 < argc)
      reads = std::strtoull(argv[++i], nullptr, 0);
  }

  reporter.config("reads", reads);
  reporter.config("working_set_blocks", kWorkingSet);
  reporter.config("commit_every_reads", kCommitEvery);
  reporter.config("writer_blocks_per_txn", kWriterBatch);
  reporter.config("nvm_profile", "pcm");
  reporter.config("time_model", "virtual (per-reader clocks, see header)");

  std::printf("%-18s %12s %14s %14s %12s %12s\n", "mode/readers", "reads",
              "makespan_ms", "reads/s (M)", "commit_p95", "fallbacks");

  bool all_verified = true;
  double locked_at4 = 0.0, mvcc_at4 = 0.0;
  for (const bool mvcc : {false, true}) {
    for (const std::uint64_t readers : {1ull, 2ull, 4ull, 8ull}) {
      const RunResult r = run_one(mvcc, readers, reads);
      all_verified = all_verified && r.verified;
      const std::string label = std::string(mvcc ? "mvcc" : "locked") +
                                "/readers=" + std::to_string(readers);
      std::printf("%-18s %12llu %14.3f %14.3f %12llu %12llu\n", label.c_str(),
                  static_cast<unsigned long long>(r.reads),
                  static_cast<double>(r.makespan_ns) / 1e6, r.reads_per_sec_m,
                  static_cast<unsigned long long>(r.commit_lat.quantile(0.95)),
                  static_cast<unsigned long long>(r.lock_fallbacks));
      if (readers == 4) (mvcc ? mvcc_at4 : locked_at4) = r.reads_per_sec_m;

      reporter.add_row(label)
          .metric("readers", static_cast<double>(readers))
          .metric("reads", static_cast<double>(r.reads))
          .metric("makespan_ns", static_cast<double>(r.makespan_ns))
          .metric("reads_per_sec_m", r.reads_per_sec_m)
          .metric("snapshot_reads", static_cast<double>(r.snapshot_reads))
          .metric("disk_fallbacks", static_cast<double>(r.disk_fallbacks))
          .metric("lock_fallbacks", static_cast<double>(r.lock_fallbacks))
          .metric("verified", r.verified ? 1.0 : 0.0)
          .latency("commit", r.commit_lat);
    }
  }

  const double speedup = locked_at4 == 0.0 ? 0.0 : mvcc_at4 / locked_at4;
  reporter.config("read_speedup_at_4", speedup);
  std::printf("\nMVCC read speedup at 4 readers: %.2fx (gate: >= 3.0x)\n",
              speedup);
  if (!reporter.finish()) return 1;

  if (!all_verified) {
    std::cerr << "FATAL: a reader observed a non-committed image\n";
    return 1;
  }
  if (speedup < 3.0) {
    std::cerr << "FATAL: MVCC reads at 4 readers are only " << speedup
              << "x the locked baseline (gate: 3x)\n";
    return 1;
  }
  return 0;
}
