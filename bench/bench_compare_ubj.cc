// §5.4.4 made quantitative — Tinca vs UBJ vs Classic.
//
// The paper compares Tinca with UBJ only qualitatively: UBJ avoids double
// writes too, but (1) pays a memcpy on the critical path when a frozen block
// is rewritten, (2) checkpoints in transaction units, writing even
// superseded copies to disk, and (3) its working copies burn NVM capacity.
// This bench runs Fio and a rewrite-heavy stress over all three stacks and
// reports throughput plus the diagnostic counters behind each claim.
#include <iostream>

#include "backend/ubj_backend.h"
#include "bench_reporter.h"
#include "bench_util.h"
#include "blockdev/latency_block_device.h"
#include "blockdev/mem_block_device.h"
#include "workloads/fio.h"

using namespace tinca;
using namespace tinca::bench;

namespace {

struct UbjRig {
  sim::SimClock clock;
  nvm::NvmDevice nvm;
  blockdev::MemBlockDevice mem;
  blockdev::LatencyBlockDevice ssd;
  std::unique_ptr<backend::UbjBackend> be;

  UbjRig()
      : nvm(ScaledDefaults::kNvmBytes, pcm_profile(), clock),
        mem(1ull << 17),
        ssd(mem, ssd_profile(), clock, blockdev::WritePolicy::kAsync) {
    be = backend::UbjBackend::format(nvm, ssd);
  }
};

struct Row {
  double iops;
  double clflush_per_op;
  double disk_per_op;
};

Row run_fio_on(backend::TxnBackend& be, sim::SimClock& clock,
               nvm::NvmDevice& nvm, const blockdev::BlockStats& disk_stats_ref,
               int write_pct) {
  workloads::FioConfig cfg;
  cfg.dataset_blocks = ScaledDefaults::kFioDatasetBlocks;
  cfg.write_pct = write_pct;
  (void)workloads::run_fio(be, clock, 3 * sim::kSec, cfg);  // warm-up
  const std::uint64_t flush_before = nvm.stats().clflush;
  const std::uint64_t disk_before = disk_stats_ref.blocks_written;
  const auto r = workloads::run_fio(be, clock, 8 * sim::kSec, cfg);
  return Row{r.write_iops(),
             per_op(nvm.stats().clflush, flush_before, r.write_ops),
             per_op(disk_stats_ref.blocks_written, disk_before, r.write_ops)};
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("compare_ubj", argc, argv);
  reporter.config("dataset_blocks", ScaledDefaults::kFioDatasetBlocks);

  banner("Comparison: Tinca vs UBJ vs Classic (§5.4.4)",
         "Fio mixed random I/O");

  auto report = [&reporter](const char* rw, const char* system, const Row& r) {
    reporter.add_row(std::string(system) + "/rw=" + rw)
        .metric("write_iops", r.iops)
        .metric("clflush_per_op", r.clflush_per_op)
        .metric("disk_writes_per_op", r.disk_per_op);
  };
  Table t({"R/W", "stack", "write IOPS", "clflush/op", "disk writes/op"});
  for (int write_pct : {70, 30}) {
    const char* label = write_pct == 70 ? "3/7" : "7/3";
    {
      backend::Stack stack(scaled_stack(backend::StackKind::kClassic));
      const Row r = run_fio_on(stack.backend(), stack.clock(), stack.nvm(),
                               stack.disk().stats(), write_pct);
      t.add_row({label, "Classic", Table::num(r.iops, 0),
                 Table::num(r.clflush_per_op, 1), Table::num(r.disk_per_op, 2)});
      report(label, "Classic", r);
    }
    {
      UbjRig rig;
      const Row r = run_fio_on(*rig.be, rig.clock, rig.nvm, rig.ssd.stats(),
                               write_pct);
      t.add_row({label, "UBJ", Table::num(r.iops, 0),
                 Table::num(r.clflush_per_op, 1), Table::num(r.disk_per_op, 2)});
      report(label, "UBJ", r);
    }
    {
      backend::Stack stack(scaled_stack(backend::StackKind::kTinca));
      const Row r = run_fio_on(stack.backend(), stack.clock(), stack.nvm(),
                               stack.disk().stats(), write_pct);
      t.add_row({label, "Tinca", Table::num(r.iops, 0),
                 Table::num(r.clflush_per_op, 1), Table::num(r.disk_per_op, 2)});
      report(label, "Tinca", r);
    }
  }
  std::cout << t.render();

  // The §5.4.4 diagnostics under a rewrite-heavy stress (hot working set).
  std::cout << "\nRewrite-heavy stress (4K hot blocks rewritten 8x):\n";
  UbjRig rig;
  std::vector<std::byte> blk(4096);
  for (int round = 0; round < 8; ++round) {
    for (std::uint64_t b = 0; b < 4096; b += 16) {
      rig.be->begin();
      for (std::uint64_t i = 0; i < 16; ++i) {
        fill_pattern(blk, round * 10000 + b + i);
        rig.be->stage(b + i, blk);
      }
      rig.be->commit();
    }
  }
  const auto& s = rig.be->store().stats();
  Table d({"UBJ diagnostic", "count"});
  d.add_row({"memcpy-on-critical-path COWs", Table::num(s.frozen_cow_copies)});
  d.add_row({"checkpoint disk writes", Table::num(s.checkpoint_writes)});
  d.add_row({"  of which superseded (wasted)",
             Table::num(s.stale_checkpoint_writes)});
  d.add_row({"transactions checkpointed", Table::num(s.checkpointed_txns)});
  std::cout << d.render();
  std::cout << "\nExpectation: UBJ lands between Classic and Tinca — no"
               " journal double write, but stale checkpoint writes and"
               " critical-path copies that Tinca's role switch avoids.\n";
  reporter.add_row("ubj_diagnostics")
      .metric("frozen_cow_copies", static_cast<double>(s.frozen_cow_copies))
      .metric("checkpoint_writes", static_cast<double>(s.checkpoint_writes))
      .metric("stale_checkpoint_writes",
              static_cast<double>(s.stale_checkpoint_writes))
      .metric("checkpointed_txns", static_cast<double>(s.checkpointed_txns));
  return reporter.finish() ? 0 : 1;
}
