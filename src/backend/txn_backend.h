// Uniform transactional block-store interface.
//
// The file system and all workload generators drive the storage stack
// through this surface so every experiment can swap Tinca for Classic (or
// the §3 ablation variants) without touching workload code.  The model is
// one open transaction at a time — matching both JBD2's running transaction
// and Tinca's running transaction — staged in DRAM until commit().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace tinca::obs {
class MetricsRegistry;
class TraceSink;
class Tracer;
}  // namespace tinca::obs

namespace tinca::backend {

/// One member of a group commit: a whole transaction's write set, staged in
/// DRAM and handed to commit_group() at once.  Duplicate block numbers
/// inside one GroupTxn follow last-writer-wins, same as repeated stage().
struct GroupTxn {
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> writes;
};

/// Abstract transactional block backend (4 KB blocks).
class TxnBackend {
 public:
  virtual ~TxnBackend() = default;

  /// Open the running transaction.  At most one may be open.
  virtual void begin() = 0;

  /// Stage a whole-block update into the running transaction.
  virtual void stage(std::uint64_t blkno, std::span<const std::byte> data) = 0;

  /// Durably commit the running transaction (atomic all-or-nothing).
  virtual void commit() = 0;

  /// Abort the running transaction; staged updates are discarded.
  virtual void abort() = 0;

  // --- Group commit (DESIGN.md §14) ----------------------------------------

  /// Whether commit_group() amortizes durability work (flush passes,
  /// fences) across the batch and makes the batch atomic as a unit.
  [[nodiscard]] virtual bool supports_group_commit() const { return false; }

  /// Durably commit every transaction in `txns` as one batch.  Backends
  /// that support group commit make the batch all-or-nothing — a transaction
  /// spanning several persistence streams (shards) is anchored to one atomic
  /// cross-stream commit record, so a crash either keeps all of its writes or
  /// none — and pay one flush pass + one fence per stream touched.  The
  /// default degrades to back-to-back single commits (each per-txn atomic)
  /// so harnesses can drive any backend through one code path.  No
  /// transaction may be open when this is called.
  virtual void commit_group(std::span<const GroupTxn> txns) {
    for (const GroupTxn& t : txns) {
      begin();
      for (const auto& [blkno, data] : t.writes) stage(blkno, data);
      commit();
    }
  }

  /// Read a block.  Sees all *committed* data (staged-but-uncommitted data
  /// is the caller's to overlay — the file system's page cache does).
  virtual void read_block(std::uint64_t blkno, std::span<std::byte> dst) = 0;

  /// Push everything down to the disk (unmount path).
  virtual void flush() = 0;

  /// Number of data blocks addressable by callers (the Classic backend
  /// reserves its journal area above this limit).
  [[nodiscard]] virtual std::uint64_t data_block_limit() const = 0;

  /// Largest number of blocks one transaction may contain.
  [[nodiscard]] virtual std::uint64_t max_txn_blocks() const = 0;

  /// Human-readable backend name for bench output.
  [[nodiscard]] virtual std::string name() const = 0;

  /// One background-cleaner pacing quantum (DESIGN.md §11).  Harness loops
  /// call this between transactions; backends without a cleaner (or with it
  /// disabled) treat it as a no-op, so callers need not special-case.
  virtual void cleaner_step() {}

  // --- Snapshot reads (MVCC backends, DESIGN.md §12) -----------------------
  // Backends over version-chained caches pin a committed boundary and serve
  // reads as of that boundary without blocking (or being blocked by)
  // writers.  The defaults degrade to plain current reads so uninstrumented
  // backends keep compiling; harnesses gate snapshot assertions on
  // supports_snapshots().

  /// Whether snapshot_open() pins a real committed-boundary snapshot.
  [[nodiscard]] virtual bool supports_snapshots() const { return false; }

  /// Open a read snapshot pinned at the current committed boundary and
  /// return an opaque token for snapshot_read()/snapshot_close().  Multiple
  /// snapshots may be open at once.
  virtual std::uint64_t snapshot_open() { return 0; }

  /// Read `blkno` as of the snapshot.  Default: a plain current read.
  virtual void snapshot_read(std::uint64_t /*token*/, std::uint64_t blkno,
                             std::span<std::byte> dst) {
    read_block(blkno, dst);
  }

  /// Release the snapshot's pins.  Must be called once per snapshot_open().
  virtual void snapshot_close(std::uint64_t /*token*/) {}

  // --- Observability (src/obs/) --------------------------------------------
  // Default implementations are no-ops so backends without instrumentation
  // keep compiling; every shipped backend overrides them.

  /// Turn per-op span recording on/off across the backend's layers.
  virtual void enable_tracing(bool /*on*/ = true) {}

  /// Attach a Chrome-trace sink to every tracer in the backend (nullptr
  /// detaches).  Implies enable_tracing(true) when non-null.
  virtual void attach_trace_sink(obs::TraceSink* /*sink*/) {}

  /// The backend's principal tracer — the one whose commit-latency
  /// histogram a bench should report.  nullptr when uninstrumented.
  [[nodiscard]] virtual const obs::Tracer* tracer() const { return nullptr; }

  /// Register every layer's counters, gauges and span histograms into `reg`
  /// under `prefix`.  The registry must not outlive the backend.
  virtual void register_metrics(obs::MetricsRegistry& /*reg*/,
                                const std::string& /*prefix*/) const {}
};

}  // namespace tinca::backend
