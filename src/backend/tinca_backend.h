// TxnBackend adapter over TincaCache.
#pragma once

#include <memory>
#include <optional>

#include "backend/txn_backend.h"
#include "tinca/tinca_cache.h"

namespace tinca::backend {

/// Drives a TincaCache through the uniform transactional surface.
class TincaBackend final : public TxnBackend {
 public:
  /// Format a fresh Tinca cache over `nvm` backed by `disk`.
  static std::unique_ptr<TincaBackend> format(nvm::NvmDevice& nvm,
                                              blockdev::BlockDevice& disk,
                                              core::TincaConfig cfg = {}) {
    return std::unique_ptr<TincaBackend>(
        new TincaBackend(core::TincaCache::format(nvm, disk, cfg), disk));
  }

  /// Mount with crash recovery.
  static std::unique_ptr<TincaBackend> recover(nvm::NvmDevice& nvm,
                                               blockdev::BlockDevice& disk,
                                               core::TincaConfig cfg = {}) {
    return std::unique_ptr<TincaBackend>(
        new TincaBackend(core::TincaCache::recover(nvm, disk, cfg), disk));
  }

  void begin() override {
    TINCA_EXPECT(!txn_.has_value(), "transaction already open");
    txn_.emplace(cache_->tinca_init_txn());
  }

  void stage(std::uint64_t blkno, std::span<const std::byte> data) override {
    TINCA_EXPECT(txn_.has_value(), "stage without begin");
    txn_->add(blkno, data);
  }

  void commit() override {
    TINCA_EXPECT(txn_.has_value(), "commit without begin");
    cache_->tinca_commit(*txn_);
    txn_.reset();
  }

  void abort() override {
    TINCA_EXPECT(txn_.has_value(), "abort without begin");
    cache_->tinca_abort(*txn_);
    txn_.reset();
  }

  void read_block(std::uint64_t blkno, std::span<std::byte> dst) override {
    cache_->read_block(blkno, dst);
  }

  void flush() override { cache_->flush_dirty(); }

  [[nodiscard]] std::uint64_t data_block_limit() const override {
    return disk_.block_count();
  }

  [[nodiscard]] std::uint64_t max_txn_blocks() const override {
    return cache_->max_txn_blocks();
  }

  [[nodiscard]] std::string name() const override { return "Tinca"; }

  void cleaner_step() override { cache_->cleaner_step(); }

  void enable_tracing(bool on = true) override { cache_->enable_tracing(on); }

  void attach_trace_sink(obs::TraceSink* sink) override {
    cache_->attach_trace_sink(sink);
  }

  [[nodiscard]] const obs::Tracer* tracer() const override {
    return &cache_->tracer();
  }

  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const override {
    cache_->register_metrics(reg, prefix + "tinca.");
  }

  /// The underlying cache, for stats and tests.
  [[nodiscard]] core::TincaCache& cache() { return *cache_; }

 private:
  TincaBackend(std::unique_ptr<core::TincaCache> cache,
               blockdev::BlockDevice& disk)
      : cache_(std::move(cache)), disk_(disk) {}

  std::unique_ptr<core::TincaCache> cache_;
  blockdev::BlockDevice& disk_;
  std::optional<core::Transaction> txn_;
};

}  // namespace tinca::backend
