// TxnBackend adapter over TincaCache.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "backend/txn_backend.h"
#include "tinca/tinca_cache.h"

namespace tinca::backend {

/// Drives a TincaCache through the uniform transactional surface.
class TincaBackend final : public TxnBackend {
 public:
  /// Format a fresh Tinca cache over `nvm` backed by `disk`.
  static std::unique_ptr<TincaBackend> format(nvm::NvmDevice& nvm,
                                              blockdev::BlockDevice& disk,
                                              core::TincaConfig cfg = {}) {
    return std::unique_ptr<TincaBackend>(
        new TincaBackend(core::TincaCache::format(nvm, disk, cfg), disk));
  }

  /// Mount with crash recovery.
  static std::unique_ptr<TincaBackend> recover(nvm::NvmDevice& nvm,
                                               blockdev::BlockDevice& disk,
                                               core::TincaConfig cfg = {}) {
    return std::unique_ptr<TincaBackend>(
        new TincaBackend(core::TincaCache::recover(nvm, disk, cfg), disk));
  }

  void begin() override {
    TINCA_EXPECT(!txn_.has_value(), "transaction already open");
    txn_.emplace(cache_->tinca_init_txn());
  }

  void stage(std::uint64_t blkno, std::span<const std::byte> data) override {
    TINCA_EXPECT(txn_.has_value(), "stage without begin");
    txn_->add(blkno, data);
  }

  void commit() override {
    TINCA_EXPECT(txn_.has_value(), "commit without begin");
    cache_->tinca_commit(*txn_);
    txn_.reset();
  }

  void abort() override {
    TINCA_EXPECT(txn_.has_value(), "abort without begin");
    cache_->tinca_abort(*txn_);
    txn_.reset();
  }

  [[nodiscard]] bool supports_group_commit() const override { return true; }

  void commit_group(std::span<const GroupTxn> txns) override {
    TINCA_EXPECT(!txn_.has_value(), "group commit with a transaction open");
    std::vector<core::Transaction> staged;
    staged.reserve(txns.size());
    for (const GroupTxn& t : txns) {
      staged.emplace_back(cache_->tinca_init_txn());
      for (const auto& [blkno, data] : t.writes)
        staged.back().add(blkno, data);
    }
    std::vector<core::Transaction*> ptrs;
    ptrs.reserve(staged.size());
    for (core::Transaction& t : staged) ptrs.push_back(&t);
    cache_->commit_group(ptrs);
  }

  void read_block(std::uint64_t blkno, std::span<std::byte> dst) override {
    cache_->read_block(blkno, dst);
  }

  void flush() override { cache_->flush_dirty(); }

  [[nodiscard]] std::uint64_t data_block_limit() const override {
    return disk_.block_count();
  }

  [[nodiscard]] std::uint64_t max_txn_blocks() const override {
    return cache_->max_txn_blocks();
  }

  [[nodiscard]] std::string name() const override { return "Tinca"; }

  void cleaner_step() override { cache_->cleaner_step(); }

  [[nodiscard]] bool supports_snapshots() const override { return true; }

  std::uint64_t snapshot_open() override {
    const std::uint64_t token = next_snap_++;
    snaps_.emplace(token, cache_->snapshot_pin());
    return token;
  }

  void snapshot_read(std::uint64_t token, std::uint64_t blkno,
                     std::span<std::byte> dst) override {
    const core::SnapshotPin& pin = snaps_.at(token);
    // A failed pin (registry full) degrades to a current read — same
    // contract as a reader that could not start a snapshot at all.
    if (pin.valid())
      cache_->snapshot_read(pin, blkno, dst);
    else
      cache_->read_block(blkno, dst);
  }

  void snapshot_close(std::uint64_t token) override {
    auto it = snaps_.find(token);
    TINCA_EXPECT(it != snaps_.end(), "close of an unknown snapshot token");
    cache_->snapshot_unpin(it->second);
    snaps_.erase(it);
  }

  void enable_tracing(bool on = true) override { cache_->enable_tracing(on); }

  void attach_trace_sink(obs::TraceSink* sink) override {
    cache_->attach_trace_sink(sink);
  }

  [[nodiscard]] const obs::Tracer* tracer() const override {
    return &cache_->tracer();
  }

  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const override {
    cache_->register_metrics(reg, prefix + "tinca.");
  }

  /// The underlying cache, for stats and tests.
  [[nodiscard]] core::TincaCache& cache() { return *cache_; }

 private:
  TincaBackend(std::unique_ptr<core::TincaCache> cache,
               blockdev::BlockDevice& disk)
      : cache_(std::move(cache)), disk_(disk) {}

  std::unique_ptr<core::TincaCache> cache_;
  blockdev::BlockDevice& disk_;
  std::optional<core::Transaction> txn_;
  std::unordered_map<std::uint64_t, core::SnapshotPin> snaps_;
  std::uint64_t next_snap_ = 1;
};

}  // namespace tinca::backend
