// TxnBackend adapter over the UBJ store (§5.4.4 comparison baseline).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/txn_backend.h"
#include "ubj/ubj_store.h"

namespace tinca::backend {

/// Drives a UbjStore through the uniform transactional surface.
class UbjBackend final : public TxnBackend {
 public:
  static std::unique_ptr<UbjBackend> format(nvm::NvmDevice& nvm,
                                            blockdev::BlockDevice& disk,
                                            ubj::UbjConfig cfg = {}) {
    return std::unique_ptr<UbjBackend>(
        new UbjBackend(ubj::UbjStore::format(nvm, disk, cfg), disk));
  }

  static std::unique_ptr<UbjBackend> recover(nvm::NvmDevice& nvm,
                                             blockdev::BlockDevice& disk,
                                             ubj::UbjConfig cfg = {}) {
    return std::unique_ptr<UbjBackend>(
        new UbjBackend(ubj::UbjStore::recover(nvm, disk, cfg), disk));
  }

  void begin() override {
    TINCA_EXPECT(!open_, "transaction already open");
    open_ = true;
  }

  void stage(std::uint64_t blkno, std::span<const std::byte> data) override {
    TINCA_EXPECT(open_, "stage without begin");
    auto [it, inserted] = staged_.try_emplace(blkno);
    if (inserted) order_.push_back(blkno);
    it->second.assign(data.begin(), data.end());
  }

  void commit() override {
    TINCA_EXPECT(open_, "commit without begin");
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> blocks;
    blocks.reserve(order_.size());
    for (std::uint64_t blkno : order_)
      blocks.emplace_back(blkno, std::move(staged_[blkno]));
    store_->commit_txn(blocks);
    clear();
  }

  void abort() override {
    TINCA_EXPECT(open_, "abort without begin");
    clear();
  }

  void read_block(std::uint64_t blkno, std::span<std::byte> dst) override {
    store_->read_block(blkno, dst);
  }

  void flush() override { store_->checkpoint_all(); }

  [[nodiscard]] std::uint64_t data_block_limit() const override {
    return disk_.block_count();
  }

  [[nodiscard]] std::uint64_t max_txn_blocks() const override {
    return store_->capacity_blocks() / 3;
  }

  [[nodiscard]] std::string name() const override { return "UBJ"; }

  void cleaner_step() override { store_->cleaner_step(); }

  void enable_tracing(bool on = true) override { store_->enable_tracing(on); }

  void attach_trace_sink(obs::TraceSink* sink) override {
    store_->attach_trace_sink(sink);
  }

  [[nodiscard]] const obs::Tracer* tracer() const override {
    return &store_->tracer();
  }

  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const override {
    store_->register_metrics(reg, prefix + "ubj.");
  }

  [[nodiscard]] ubj::UbjStore& store() { return *store_; }

 private:
  UbjBackend(std::unique_ptr<ubj::UbjStore> store, blockdev::BlockDevice& disk)
      : store_(std::move(store)), disk_(disk) {}

  void clear() {
    open_ = false;
    staged_.clear();
    order_.clear();
  }

  std::unique_ptr<ubj::UbjStore> store_;
  blockdev::BlockDevice& disk_;
  bool open_ = false;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> staged_;
  std::vector<std::uint64_t> order_;
};

}  // namespace tinca::backend
