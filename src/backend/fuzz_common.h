// Shared schedule/seed/campaign machinery for the randomized fault-fuzz
// harnesses: the block-level harness (src/backend/fault_fuzz.h) and the
// file-system-level harness (src/fs/fs_fuzz.h) both derive their schedules
// from the same option block, build their stacks through the same per-kind
// constructors, and report failures with the same reproduce-from-seed tag.
//
// Everything is a function of FuzzOptions::seed and the schedule index, so a
// failure anywhere reproduces from the printed "reproduce:" tag alone:
// re-run the campaign with the printed seed, first_schedule and schedules=1.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "backend/classic_backend.h"
#include "backend/sharded_backend.h"
#include "backend/stack_builder.h"
#include "backend/tinca_backend.h"
#include "backend/txn_backend.h"
#include "backend/ubj_backend.h"

namespace tinca::backend {

/// Deliberate harness sabotage for oracle self-tests ("does the harness
/// actually catch a corruption?").  kNone in every real campaign.
enum class FuzzSabotage : std::uint8_t {
  kNone = 0,
  /// Commit one unrecorded update over a committed block right before
  /// verification — the recovered/live state then matches no acceptable
  /// history, and the harness must flag it.
  kCorruptCommitted,
  /// The background cleaner marks blocks clean WITHOUT their pre-writeback
  /// disk flush (DESIGN.md §11).  Stale disk data then leaks into reads
  /// after eviction or a clean remount, and the oracle must flag it.
  kCleanerSkipsFlush,
  /// The NvLog tier's absorb returns WITHOUT its clflush + sfence pass
  /// (DESIGN.md §13) — "committed" txns are only cache-resident.  Any
  /// crash then loses acknowledged commits, and the oracle must flag it.
  kNvLogSkipsCommitFlush,
  /// The sharded stack stages its cross-stream commit record WITHOUT the
  /// clflush that makes it the atomic commit point (DESIGN.md §15).  A
  /// crash then rolls back an acknowledged cross-shard transaction, and
  /// the oracle must flag the lost commit.
  kSkipCommitRecordFlush,
  /// The NvLog tier stores its watermark ring records WITHOUT the flush
  /// that makes them durable (DESIGN.md §16).  A crash then mounts a stale
  /// watermark whose oldest_live_seq can name a recycled-and-reused
  /// segment; the chain scan finds a gap at its head and every younger
  /// committed txn is lost — the oracle must flag it.
  kSkipWatermarkRecordFlush,
};

/// Parameters of one fuzz campaign (one backend kind, many schedules).
struct FuzzOptions {
  StackKind kind = StackKind::kTinca;
  std::uint64_t seed = 1;
  std::uint32_t schedules = 200;
  /// First schedule index to run (schedule seeds depend only on the campaign
  /// seed and the *absolute* index, so seed + first_schedule + schedules=1
  /// replays exactly one schedule of a larger campaign).
  std::uint32_t first_schedule = 0;
  /// Transactions attempted per schedule (a crash may cut a schedule short).
  std::uint32_t txns_per_schedule = 12;
  /// Blocks per transaction: 1..min(this, backend max_txn_blocks()).
  std::uint32_t max_blocks_per_txn = 6;
  /// Data-block universe [0, data_blocks) — deliberately larger than the
  /// small NVM cache so evictions and write-backs run under fault pressure.
  std::uint64_t data_blocks = 320;
  /// Probability a schedule arms a deterministic crash (power cut or torn
  /// write); random torn writes can still crash unarmed schedules.
  double crash_prob = 0.6;
  /// Armed power cuts land uniformly on NVM crash points [1, this].  The
  /// default covers the first few transactions of every stack; self-tests
  /// whose bug needs a LONG history first (e.g. the watermark-ring sabotage,
  /// which only bites after the log wraps) raise it so late cuts happen.
  std::uint64_t crash_point_range = 300;
  /// Disk fault rates (per operation).
  double transient_read_rate = 0.01;
  double transient_write_rate = 0.02;
  double bad_sector_rate = 0.002;
  double torn_write_rate = 0.001;
  /// 0 = pick a per-kind default small enough to force evictions.
  std::uint64_t nvm_bytes = 0;
  std::uint64_t disk_blocks = 1ull << 12;
  std::uint64_t ring_bytes = 64 * 1024;    ///< Tinca ring (per shard)
  std::uint64_t journal_blocks = 512;      ///< Classic journal reservation
  std::uint32_t shards = 2;                ///< kShardedTinca only
  /// Per-shard commit streams (DESIGN.md §15).  1 keeps the single-ring
  /// layout; >1 splits each shard's ring region into per-stream rings and
  /// lets cross-shard transactions anchor to the commit directory.
  std::uint32_t streams = 1;
  blockdev::RetryPolicy retry{};
  /// Background cleaner mode for the cache under test (kStepped arms the
  /// cleaner deterministically: the harness calls cleaner_step() after each
  /// commit, and crash points inside the drain are swept like any other).
  cleaner::CleanerMode cleaner = cleaner::CleanerMode::kDisabled;
  /// Cleaner watermarks for cleaner-armed campaigns.  The aggressive
  /// self-test campaigns drop these so the cleaner provably does work on
  /// every schedule; real campaigns keep the production defaults.
  std::uint32_t cleaner_low_water_pct = cleaner::CleanerConfig{}.low_water_pct;
  std::uint32_t cleaner_high_water_pct =
      cleaner::CleanerConfig{}.high_water_pct;
  /// Group commit (DESIGN.md §14): the workload randomly commits 2–4
  /// transactions through TxnBackend::commit_group() instead of one at a
  /// time, and the sharded stack arms its per-shard commit batcher.  Only
  /// backends whose supports_group_commit() is true take the batched path;
  /// others keep single commits so their crash-candidate set stays exact.
  bool group_commit = false;
  /// Oracle self-test hook; leave kNone outside harness self-tests.
  FuzzSabotage sabotage = FuzzSabotage::kNone;
};

/// Campaign outcome.  `violations` is the only failure signal; everything
/// else is telemetry (how hard the campaign actually exercised the stack).
struct FuzzReport {
  std::uint64_t schedules = 0;
  std::uint64_t crashes = 0;          ///< schedules ended by CrashException
  std::uint64_t clean_remounts = 0;   ///< crash-free recover() round trips
  std::uint64_t io_errors = 0;        ///< unrecoverable-read IoError throws
  std::uint64_t wedges = 0;           ///< documented capacity wedges hit
  std::uint64_t violations = 0;       ///< invariant violations (must be 0)
  std::vector<std::string> violation_messages;  ///< first few, with seeds
  std::uint64_t io_retries = 0;
  std::uint64_t io_quarantined = 0;
  std::uint64_t io_degraded_writes = 0;
  blockdev::FaultStats faults;        ///< summed over all schedules
};

namespace detail {

/// Log-tier carve-out shared by every NvLog fuzz stack (and by the harness'
/// post-crash verify_nvlog_media sweep, which must view the same range).
inline constexpr std::uint64_t kFuzzLogBytes = 1ull << 19;  // 512 KB

inline std::uint64_t fuzz_mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Per-kind NVM size: small enough that the workload's block universe
/// overcommits the cache (evictions + threshold cleaning run under faults),
/// big enough for a valid layout (FlashCache needs one full 256-slot set).
inline std::uint64_t fuzz_nvm_bytes(StackKind kind, std::uint64_t override) {
  if (override != 0) return override;
  switch (kind) {
    case StackKind::kClassic:
    case StackKind::kClassicNoJournal:
      return 3ull << 19;  // 1.5 MB → one 256-slot set
    case StackKind::kShardedTinca:
      return (1ull << 19) * 2;  // two 512 KB shards
    case StackKind::kNvLogClassic:
      return (3ull << 19) + kFuzzLogBytes;  // classic cache + 512 KB log
    case StackKind::kNvLogTinca:
      return (1ull << 19) + kFuzzLogBytes;  // Tinca cache + 512 KB log
    case StackKind::kNvLogSharded:
      return (1ull << 19) * 2 + kFuzzLogBytes;  // two shards + 512 KB log
    default:
      return 1ull << 19;  // 512 KB → ~100 Tinca/UBJ blocks
  }
}

inline std::unique_ptr<TxnBackend> fuzz_build(const FuzzOptions& o,
                                              nvm::NvmDevice& nvm,
                                              blockdev::BlockDevice& disk,
                                              bool recover) {
  switch (o.kind) {
    case StackKind::kTinca: {
      core::TincaConfig c;
      c.ring_bytes = o.ring_bytes;
      c.num_streams = o.streams;
      c.io = o.retry;
      c.cleaner.mode = o.cleaner;
      c.cleaner.low_water_pct = o.cleaner_low_water_pct;
      c.cleaner.high_water_pct = o.cleaner_high_water_pct;
      c.cleaner.sabotage_skip_write =
          o.sabotage == FuzzSabotage::kCleanerSkipsFlush;
      return recover ? TincaBackend::recover(nvm, disk, c)
                     : TincaBackend::format(nvm, disk, c);
    }
    case StackKind::kClassic:
    case StackKind::kClassicNoJournal: {
      classic::ClassicConfig c;
      c.journaling = o.kind == StackKind::kClassic;
      c.journal_blocks = o.journal_blocks;
      c.cache.io = o.retry;
      return recover ? ClassicBackend::recover(nvm, disk, c)
                     : ClassicBackend::format(nvm, disk, c);
    }
    case StackKind::kUbj: {
      ubj::UbjConfig c;
      c.io = o.retry;
      c.cleaner.mode = o.cleaner;
      c.cleaner.low_water_pct = o.cleaner_low_water_pct;
      c.cleaner.high_water_pct = o.cleaner_high_water_pct;
      c.cleaner.sabotage_skip_write =
          o.sabotage == FuzzSabotage::kCleanerSkipsFlush;
      return recover ? UbjBackend::recover(nvm, disk, c)
                     : UbjBackend::format(nvm, disk, c);
    }
    case StackKind::kShardedTinca: {
      shard::ShardedConfig s;
      s.num_shards = o.shards;
      s.group_commit = o.group_commit;
      // The harnesses are single-threaded, so lingering for co-committers
      // only wastes wall clock; linger=0 keeps the full leader/batch commit
      // path (the code under test) without the wait.
      s.group_linger_us = 0;
      s.sabotage_skip_commit_record_flush =
          o.sabotage == FuzzSabotage::kSkipCommitRecordFlush;
      s.shard.ring_bytes = o.ring_bytes;
      s.shard.num_streams = o.streams;
      s.shard.io = o.retry;
      s.shard.cleaner.mode = o.cleaner;
      s.shard.cleaner.low_water_pct = o.cleaner_low_water_pct;
      s.shard.cleaner.high_water_pct = o.cleaner_high_water_pct;
      s.shard.cleaner.sabotage_skip_write =
          o.sabotage == FuzzSabotage::kCleanerSkipsFlush;
      return recover ? ShardedBackend::recover(nvm, disk, s)
                     : ShardedBackend::format(nvm, disk, s);
    }
    case StackKind::kNvLogClassic: {
      NvLogStackConfig c;
      c.log_bytes = kFuzzLogBytes;   // 512 KB log in front of the cache
      c.log.segment_bytes = 64 * 1024;  // 7 segments → frequent wrap + drain
      c.inner.journal_blocks = o.journal_blocks;  // same data area as Classic
      c.inner.cache.io = o.retry;
      c.cleaner.mode = o.cleaner;
      c.cleaner.low_water_pct = o.cleaner_low_water_pct;
      c.cleaner.high_water_pct = o.cleaner_high_water_pct;
      c.cleaner.sabotage_skip_write =
          o.sabotage == FuzzSabotage::kCleanerSkipsFlush;
      c.log.sabotage_skip_commit_flush =
          o.sabotage == FuzzSabotage::kNvLogSkipsCommitFlush;
      c.log.sabotage_skip_watermark_flush =
          o.sabotage == FuzzSabotage::kSkipWatermarkRecordFlush;
      return recover ? NvLogBackend::recover(nvm, disk, c)
                     : NvLogBackend::format(nvm, disk, c);
    }
    case StackKind::kNvLogTinca:
    case StackKind::kNvLogSharded: {
      NvLogStackedConfig c;
      c.log_bytes = kFuzzLogBytes;      // 512 KB log in front of the cache
      c.log.segment_bytes = 64 * 1024;  // 7 segments → frequent wrap + drain
      c.inner = o.kind == StackKind::kNvLogSharded ? NvLogInner::kSharded
                                                   : NvLogInner::kTinca;
      c.shards = o.shards;
      c.tinca.ring_bytes = o.ring_bytes;
      c.tinca.num_streams = o.streams;
      c.tinca.io = o.retry;
      // The inner cache keeps its own threshold cleaner on the harness'
      // settings; the *log* cleaner (segment drains) is the one the stepped
      // campaigns arm and crash-sweep.
      c.tinca.cleaner.mode = o.cleaner;
      c.tinca.cleaner.low_water_pct = o.cleaner_low_water_pct;
      c.tinca.cleaner.high_water_pct = o.cleaner_high_water_pct;
      c.tinca.cleaner.sabotage_skip_write =
          o.sabotage == FuzzSabotage::kCleanerSkipsFlush;
      c.cleaner.mode = o.cleaner;
      c.cleaner.low_water_pct = o.cleaner_low_water_pct;
      c.cleaner.high_water_pct = o.cleaner_high_water_pct;
      c.cleaner.sabotage_skip_write =
          o.sabotage == FuzzSabotage::kCleanerSkipsFlush;
      c.log.sabotage_skip_commit_flush =
          o.sabotage == FuzzSabotage::kNvLogSkipsCommitFlush;
      c.log.sabotage_skip_watermark_flush =
          o.sabotage == FuzzSabotage::kSkipWatermarkRecordFlush;
      return recover ? NvLogStackedBackend::recover(nvm, disk, c)
                     : NvLogStackedBackend::format(nvm, disk, c);
    }
  }
  TINCA_ENSURE(false, "unknown StackKind");
  return nullptr;
}

/// Fold the backend's retry/quarantine/degradation counters into `rep`.
inline void fuzz_collect(const FuzzOptions& o, TxnBackend& be,
                         FuzzReport& rep) {
  const auto add = [&rep](std::uint64_t retries, std::uint64_t quarantined,
                          std::uint64_t degraded) {
    rep.io_retries += retries;
    rep.io_quarantined += quarantined;
    rep.io_degraded_writes += degraded;
  };
  switch (o.kind) {
    case StackKind::kTinca: {
      const core::TincaCacheStats& s =
          static_cast<TincaBackend&>(be).cache().stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
    case StackKind::kClassic:
    case StackKind::kClassicNoJournal: {
      const classic::FlashCacheStats& s =
          static_cast<ClassicBackend&>(be).stack().cache().stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
    case StackKind::kUbj: {
      const ubj::UbjStats& s = static_cast<UbjBackend&>(be).store().stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
    case StackKind::kShardedTinca: {
      const core::TincaCacheStats s =
          static_cast<ShardedBackend&>(be).sharded().aggregated_stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
    case StackKind::kNvLogClassic: {
      const classic::FlashCacheStats& s =
          static_cast<NvLogBackend&>(be).inner().stack().cache().stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
    case StackKind::kNvLogTinca: {
      const core::TincaCacheStats& s =
          static_cast<NvLogStackedBackend&>(be).inner_tinca()->cache().stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
    case StackKind::kNvLogSharded: {
      const core::TincaCacheStats s = static_cast<NvLogStackedBackend&>(be)
                                          .inner_sharded()
                                          ->sharded()
                                          .aggregated_stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
  }
}

/// Fold one schedule's disk-fault telemetry into the campaign totals.
inline void fuzz_fold_faults(blockdev::FaultStats& total,
                             const blockdev::FaultStats& f) {
  total.transient_read_errors += f.transient_read_errors;
  total.transient_write_errors += f.transient_write_errors;
  total.bad_sectors += f.bad_sectors;
  total.bad_sector_errors += f.bad_sector_errors;
  total.torn_writes += f.torn_writes;
  total.latency_spikes += f.latency_spikes;
}

}  // namespace detail

/// Machine-parseable reproduce tag appended to every violation message.
/// Re-running the same harness with these exact options replays the failing
/// schedule alone (schedule seeds depend only on seed + absolute index).
inline std::string fuzz_reproduce_tag(std::uint64_t campaign_seed,
                                      std::uint64_t schedule) {
  return "reproduce: seed=" + std::to_string(campaign_seed) +
         " first_schedule=" + std::to_string(schedule) + " schedules=1";
}

/// Parse a violation message's reproduce tag back into campaign options.
/// Returns false when the message carries no tag.
inline bool fuzz_parse_reproduce(const std::string& message,
                                 std::uint64_t* seed,
                                 std::uint32_t* first_schedule) {
  const auto grab = [&message](const char* key, std::uint64_t* out) {
    const std::size_t at = message.rfind(key);
    if (at == std::string::npos) return false;
    *out = std::strtoull(message.c_str() + at + std::strlen(key), nullptr, 10);
    return true;
  };
  std::uint64_t first = 0;
  if (!grab("reproduce: seed=", seed) || !grab(" first_schedule=", &first))
    return false;
  *first_schedule = static_cast<std::uint32_t>(first);
  return true;
}

/// The full schedule context embedded verbatim in every violation message:
/// campaign seed, schedule index and seed, the fault rates in force, and the
/// armed deterministic crash (if any).
inline std::string fuzz_schedule_tag(const FuzzOptions& o,
                                     std::uint64_t schedule,
                                     std::uint64_t schedule_seed,
                                     const std::string& armed) {
  return "schedule " + std::to_string(schedule) + " (schedule_seed=" +
         std::to_string(schedule_seed) + " faults[tr=" +
         std::to_string(o.transient_read_rate) + " tw=" +
         std::to_string(o.transient_write_rate) + " bad=" +
         std::to_string(o.bad_sector_rate) + " torn=" +
         std::to_string(o.torn_write_rate) + "] arm=" + armed + ")";
}

}  // namespace tinca::backend
