// Randomized block-level fault-fuzz harness shared by
// tests/fault_fuzz_test.cc and bench/bench_fault_sweep.cc.
//
// Each *schedule* builds a fresh stack (SimClock → NvmDevice → MemBlockDevice
// ← FaultyBlockDevice), formats the backend under test, runs a random
// transactional workload while the disk injects transient errors, bad
// sectors and torn writes, and optionally arms a deterministic power-cut
// point (CrashInjector) or torn-write point.  After a crash the NVM loses a
// random fraction of unflushed lines, the backend recovers, and the
// recovered state is checked against the DESIGN.md §6 invariant: it must
// equal the committed history, or committed history + the one transaction
// that was mid-commit (atomicity: nothing in between, nothing lost).
//
// The campaign plumbing (options, per-kind stack construction, reproduce
// tags) lives in fuzz_common.h and is shared with the file-system-level
// harness in src/fs/fs_fuzz.h.  Every violation message embeds the failing
// schedule's seed and fault schedule verbatim plus a "reproduce:" tag that
// replays it alone.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "backend/fuzz_common.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "tinca/verify.h"

namespace tinca::backend {

/// Run the campaign.  Never throws for injected faults — every anomaly is
/// classified into the report; only harness misuse (bad options) throws.
inline FuzzReport run_fault_fuzz(const FuzzOptions& opts) {
  using detail::fuzz_mix;
  FuzzReport rep;
  std::vector<std::byte> buf(blockdev::kBlockSize);
  fill_pattern(buf, 0);
  std::fill(buf.begin(), buf.end(), std::byte{0});
  const std::uint64_t zero_fp = fingerprint(buf);

  const auto fp_of = [&buf](std::uint64_t value) {
    fill_pattern(buf, value);
    return fingerprint(buf);
  };

  const std::uint64_t last_schedule =
      static_cast<std::uint64_t>(opts.first_schedule) + opts.schedules;
  for (std::uint64_t sched = opts.first_schedule; sched < last_schedule;
       ++sched) {
    ++rep.schedules;
    const std::uint64_t sseed = fuzz_mix(opts.seed, sched);
    Rng rng(sseed);
    std::string armed = "none";

    const auto record_violation = [&](const std::string& what) {
      ++rep.violations;
      if (rep.violation_messages.size() < 16) {
        rep.violation_messages.push_back(
            fuzz_schedule_tag(opts, sched, sseed, armed) + ": " + what +
            " | " + fuzz_reproduce_tag(opts.seed, sched));
      }
    };

    sim::SimClock clock;
    nvm::NvmDevice nvm(detail::fuzz_nvm_bytes(opts.kind, opts.nvm_bytes),
                       nvdimm_profile(), clock);
    blockdev::MemBlockDevice mem(opts.disk_blocks);
    blockdev::FaultConfig fcfg;
    fcfg.seed = fuzz_mix(sseed, 0xFA01);
    fcfg.transient_read_rate = opts.transient_read_rate;
    fcfg.transient_write_rate = opts.transient_write_rate;
    fcfg.bad_sector_rate = opts.bad_sector_rate;
    fcfg.torn_write_rate = opts.torn_write_rate;
    blockdev::FaultyBlockDevice disk(mem, fcfg, &clock, &nvm.injector);

    std::unique_ptr<TxnBackend> be = detail::fuzz_build(opts, nvm, disk, false);
    TINCA_EXPECT(opts.data_blocks <= be->data_block_limit(),
                 "fuzz universe exceeds the backend's data block limit");
    const std::uint64_t max_blocks = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(opts.max_blocks_per_txn,
                                   be->max_txn_blocks()));

    // Arm at most one deterministic crash; half the armed schedules cut
    // power at an NVM persistence point, the rest tear a disk write.
    if (rng.chance(opts.crash_prob)) {
      if (rng.chance(0.5)) {
        const std::uint64_t step = 1 + rng.below(opts.crash_point_range);
        nvm.injector.arm(step);
        armed = "point@" + std::to_string(step);
      } else {
        const std::uint64_t step = 1 + rng.below(40);
        nvm.injector.arm_torn(step);
        armed = "torn@" + std::to_string(step);
      }
    }

    // --- Workload ----------------------------------------------------------
    std::map<std::uint64_t, std::uint64_t> committed;  // blkno → pattern seed
    std::vector<std::pair<std::uint64_t, std::uint64_t>> txn;  // in flight
    std::set<std::uint64_t> touched;
    std::uint64_t pat = 0;
    bool crashed = false;
    bool wedged = false;

    // Snapshot oracle (DESIGN.md §12): pin a committed boundary mid-run,
    // keep committing/cleaning/faulting past it, and every pinned read must
    // keep returning exactly the boundary image.
    bool snap_open = false;
    bool snap_bad = false;
    std::uint64_t snap_token = 0;
    std::uint32_t snap_close_at = 0;
    std::map<std::uint64_t, std::uint64_t> snap_frozen;

    try {
      for (std::uint32_t t = 0; t < opts.txns_per_schedule; ++t) {
        if (be->supports_snapshots()) {
          if (!snap_open && !committed.empty() && rng.chance(0.25)) {
            snap_token = be->snapshot_open();
            snap_frozen = committed;
            snap_open = true;
            snap_close_at = t + 1 + static_cast<std::uint32_t>(rng.below(3));
          } else if (snap_open) {
            for (int probe = 0; probe < 3 && !touched.empty(); ++probe) {
              auto it = touched.begin();
              std::advance(it, static_cast<long>(rng.below(touched.size())));
              be->snapshot_read(snap_token, *it, buf);
              const std::uint64_t got_fp = fingerprint(buf);  // before fp_of
              const auto want = snap_frozen.find(*it);
              const std::uint64_t want_fp =
                  want == snap_frozen.end() ? zero_fp : fp_of(want->second);
              if (got_fp != want_fp) {
                record_violation(
                    "snapshot read of block " + std::to_string(*it) +
                    " is not the pinned committed-boundary image");
                snap_bad = true;
                break;
              }
            }
            if (snap_bad) break;
            if (t >= snap_close_at) {
              be->snapshot_close(snap_token);
              snap_open = false;
            }
          }
        }

        // Occasionally re-read a committed block mid-run: committed data
        // must be visible long before any crash.
        if (!committed.empty() && rng.chance(0.3)) {
          auto it = committed.begin();
          std::advance(it, static_cast<long>(rng.below(committed.size())));
          be->read_block(it->first, buf);
          const std::uint64_t got_fp = fingerprint(buf);
          if (got_fp != fp_of(it->second)) {
            record_violation("live read of committed block " +
                             std::to_string(it->first) +
                             " returned wrong contents");
            break;
          }
        }

        txn.clear();
        if (opts.group_commit && be->supports_group_commit() &&
            rng.chance(0.6)) {
          // Group commit (DESIGN.md §14): hand 2–4 whole transactions to
          // commit_group() at once.  The flattened member-order write list
          // is the in-flight image — a batch is all-or-nothing even across
          // shards (the cross-stream commit record, DESIGN.md §15), so the
          // crash candidates below (nothing or the whole batch) stay exact.
          // Duplicate blocks across members exercise the LWW merge; the
          // merged distinct-block count stays within max_txn_blocks.
          const std::uint64_t members = 2 + rng.below(3);
          std::vector<GroupTxn> batch(members);
          std::set<std::uint64_t> distinct;
          for (GroupTxn& member : batch) {
            const std::uint64_t want = 1 + rng.below(2);
            for (std::uint64_t k = 0; k < want; ++k) {
              const std::uint64_t blkno = rng.below(opts.data_blocks);
              bool dup = false;
              for (const auto& [b, v] : member.writes) dup |= b == blkno;
              if (dup) continue;  // writes within one member stay distinct
              if (!distinct.contains(blkno) && distinct.size() >= max_blocks)
                continue;
              distinct.insert(blkno);
              const std::uint64_t value = (sseed << 16) + ++pat;
              fill_pattern(buf, value);
              member.writes.emplace_back(
                  blkno, std::vector<std::byte>(buf.begin(), buf.end()));
              txn.emplace_back(blkno, value);
              touched.insert(blkno);
            }
          }
          be->commit_group(batch);
        } else {
          const std::uint64_t nblocks = 1 + rng.below(max_blocks);
          while (txn.size() < nblocks) {
            const std::uint64_t blkno = rng.below(opts.data_blocks);
            bool dup = false;
            for (const auto& [b, v] : txn) dup |= b == blkno;
            if (dup) continue;
            txn.emplace_back(blkno, (sseed << 16) + ++pat);
          }
          be->begin();
          for (const auto& [blkno, value] : txn) {
            fill_pattern(buf, value);
            be->stage(blkno, buf);
            touched.insert(blkno);
          }
          be->commit();
        }
        for (const auto& [blkno, value] : txn) committed[blkno] = value;
        txn.clear();
        // Cleaner-armed campaigns drain between commits.  A crash inside the
        // step lands after the oracle bookkeeping with txn empty, so the only
        // acceptable state is exactly the committed history — precisely the
        // crash-safety claim under test (re-clean on recovery, lose nothing).
        be->cleaner_step();
        if (rng.chance(0.1)) be->flush();
      }
    } catch (const nvm::CrashException&) {
      crashed = true;
    } catch (const blockdev::IoError&) {
      ++rep.io_errors;  // unrecoverable read; state stays consistent
    } catch (const ContractViolation& e) {
      if (std::string(e.what()).find("wedged") != std::string::npos) {
        ++rep.wedges;  // documented capacity degradation, not a bug
        wedged = true;
      } else {
        record_violation(e.what());
      }
    }

    // Release any open snapshot before verification: pins defer disk
    // writebacks, and the sabotage/verify phases should run unthrottled.
    // (After a crash the backend is rebuilt anyway, so unpinning the dying
    // instance is merely tidy.)
    if (snap_open) {
      try {
        be->snapshot_close(snap_token);
      } catch (const std::exception&) {
      }
      snap_open = false;
    }

    // Stop injecting *new* faults; already-bad sectors keep failing.
    nvm.injector.disarm();
    nvm.injector.disarm_torn();
    disk.quiesce();
    detail::fuzz_collect(opts, *be, rep);

    if (wedged) {
      // A wedge aborts mid-operation by design; the interrupted operation's
      // partial state is reconciled by recovery, which the crash schedules
      // already cover.  Nothing further to verify here.
      detail::fuzz_fold_faults(rep.faults, disk.fault_stats());
      continue;
    }

    // --- Crash + recovery --------------------------------------------------
    if (crashed) {
      ++rep.crashes;
      static constexpr double kSurvive[] = {0.0, 0.3, 0.7, 1.0};
      nvm.crash(rng, kSurvive[rng.below(4)]);
      be.reset();
      try {
        be = detail::fuzz_build(opts, nvm, disk, true);
      } catch (const std::exception& e) {
        record_violation(std::string("recovery failed: ") + e.what());
        continue;
      }
    } else if (rng.chance(0.5)) {
      // Crash-free round trip: a clean remount must preserve everything.
      ++rep.clean_remounts;
      be.reset();
      try {
        be = detail::fuzz_build(opts, nvm, disk, true);
      } catch (const std::exception& e) {
        record_violation(std::string("clean remount failed: ") + e.what());
        continue;
      }
      txn.clear();  // nothing was in flight
    } else {
      txn.clear();  // verify the live instance; nothing in flight
    }

    // Oracle self-test: corrupt one committed block behind the harness's
    // bookkeeping.  The recovered/live state then matches no acceptable
    // history and verification below MUST flag it.
    if (opts.sabotage == FuzzSabotage::kCorruptCommitted && !crashed &&
        !committed.empty()) {
      try {
        fill_pattern(buf, fuzz_mix(sseed, 0x5AB0));
        be->begin();
        be->stage(committed.begin()->first, buf);
        be->commit();
      } catch (const std::exception&) {
        // A sabotage commit lost to residual faults just means this
        // schedule doesn't self-test; others will.
      }
    }

    // --- Verification ------------------------------------------------------
    // Acceptable states: committed history, or (crash during commit only)
    // committed history + the in-flight transaction — for EVERY backend,
    // including the sharded stack.  A cross-shard transaction is anchored to
    // one atomic commit record (DESIGN.md §15), so no shard-prefix states
    // are acceptable any more: anything else — a torn block, a lost
    // committed block, a half-applied shard portion — is a violation.
    try {
      const auto matches =
          [&](const std::map<std::uint64_t, std::uint64_t>& expect,
              std::string* why) {
            std::vector<std::byte> got(blockdev::kBlockSize);
            for (const std::uint64_t blkno : touched) {
              be->read_block(blkno, got);
              const auto it = expect.find(blkno);
              const std::uint64_t want =
                  it == expect.end() ? zero_fp : fp_of(it->second);
              if (fingerprint(got) != want) {
                *why = "block " + std::to_string(blkno) + " mismatch";
                return false;
              }
            }
            return true;
          };

      std::vector<std::map<std::uint64_t, std::uint64_t>> candidates;
      candidates.push_back(committed);
      if (!txn.empty()) {
        std::map<std::uint64_t, std::uint64_t> with_txn = committed;
        for (const auto& [blkno, value] : txn) with_txn[blkno] = value;
        candidates.push_back(with_txn);
      }

      bool ok = false;
      std::string why;
      for (const auto& cand : candidates) {
        if (matches(cand, &why)) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        record_violation("recovered state matches no acceptable history (" +
                         why + ")");
      }

      // Tinca media must also be *structurally* sound after recovery.
      if (ok && crashed && opts.kind == StackKind::kTinca) {
        const core::MediaReport mr = core::verify_media(
            nvm, core::Layout::compute(nvm.size(), opts.ring_bytes));
        if (!mr.ok) {
          record_violation("verify_media: " + (mr.problems.empty()
                                                   ? std::string("not ok")
                                                   : mr.problems.front()));
        }
      }
      // NvLog stacks: after every crash the log tier's metadata — the
      // superblock and the watermark record ring (DESIGN.md §16) — must
      // still decode and hold a mountable winning record.  This is the
      // structural check for the rotated hot-line metadata: a torn record
      // cut is acceptable only because an older valid record survives.
      if (ok && crashed &&
          (opts.kind == StackKind::kNvLogClassic ||
           opts.kind == StackKind::kNvLogTinca ||
           opts.kind == StackKind::kNvLogSharded)) {
        nvm::NvmDevice logv(nvm, 0, detail::kFuzzLogBytes, clock);
        const core::MediaReport mr = core::verify_nvlog_media(logv);
        if (!mr.ok) {
          record_violation("verify_nvlog_media: " +
                           (mr.problems.empty() ? std::string("not ok")
                                                : mr.problems.front()));
        }
      }
      if (crashed) detail::fuzz_collect(opts, *be, rep);
    } catch (const std::exception& e) {
      record_violation(std::string("verification threw: ") + e.what());
    }

    detail::fuzz_fold_faults(rep.faults, disk.fault_stats());
  }
  return rep;
}

}  // namespace tinca::backend
