// Randomized fault-fuzz harness shared by tests/fault_fuzz_test.cc and
// bench/bench_fault_sweep.cc.
//
// Each *schedule* builds a fresh stack (SimClock → NvmDevice → MemBlockDevice
// ← FaultyBlockDevice), formats the backend under test, runs a random
// transactional workload while the disk injects transient errors, bad
// sectors and torn writes, and optionally arms a deterministic power-cut
// point (CrashInjector) or torn-write point.  After a crash the NVM loses a
// random fraction of unflushed lines, the backend recovers, and the
// recovered state is checked against the DESIGN.md §6 invariant: it must
// equal the committed history, or committed history + the one transaction
// that was mid-commit (atomicity: nothing in between, nothing lost).
//
// Everything is derived from FuzzOptions::seed, so any failure reproduces
// from the seed alone — harness users print it on failure.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "backend/stack_builder.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "tinca/verify.h"

namespace tinca::backend {

/// Parameters of one fuzz campaign (one backend kind, many schedules).
struct FuzzOptions {
  StackKind kind = StackKind::kTinca;
  std::uint64_t seed = 1;
  std::uint32_t schedules = 200;
  /// Transactions attempted per schedule (a crash may cut a schedule short).
  std::uint32_t txns_per_schedule = 12;
  /// Blocks per transaction: 1..min(this, backend max_txn_blocks()).
  std::uint32_t max_blocks_per_txn = 6;
  /// Data-block universe [0, data_blocks) — deliberately larger than the
  /// small NVM cache so evictions and write-backs run under fault pressure.
  std::uint64_t data_blocks = 320;
  /// Probability a schedule arms a deterministic crash (power cut or torn
  /// write); random torn writes can still crash unarmed schedules.
  double crash_prob = 0.6;
  /// Disk fault rates (per operation).
  double transient_read_rate = 0.01;
  double transient_write_rate = 0.02;
  double bad_sector_rate = 0.002;
  double torn_write_rate = 0.001;
  /// 0 = pick a per-kind default small enough to force evictions.
  std::uint64_t nvm_bytes = 0;
  std::uint64_t disk_blocks = 1ull << 12;
  std::uint64_t ring_bytes = 64 * 1024;    ///< Tinca ring (per shard)
  std::uint64_t journal_blocks = 512;      ///< Classic journal reservation
  std::uint32_t shards = 2;                ///< kShardedTinca only
  blockdev::RetryPolicy retry{};
};

/// Campaign outcome.  `violations` is the only failure signal; everything
/// else is telemetry (how hard the campaign actually exercised the stack).
struct FuzzReport {
  std::uint64_t schedules = 0;
  std::uint64_t crashes = 0;          ///< schedules ended by CrashException
  std::uint64_t clean_remounts = 0;   ///< crash-free recover() round trips
  std::uint64_t io_errors = 0;        ///< unrecoverable-read IoError throws
  std::uint64_t wedges = 0;           ///< documented capacity wedges hit
  std::uint64_t violations = 0;       ///< invariant violations (must be 0)
  std::vector<std::string> violation_messages;  ///< first few, with seeds
  std::uint64_t io_retries = 0;
  std::uint64_t io_quarantined = 0;
  std::uint64_t io_degraded_writes = 0;
  blockdev::FaultStats faults;        ///< summed over all schedules
};

namespace detail {

inline std::uint64_t fuzz_mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Per-kind NVM size: small enough that `data_blocks` overcommits the cache
/// (evictions + threshold cleaning run under faults), big enough for a
/// valid layout (FlashCache needs one full 256-slot set + metadata).
inline std::uint64_t fuzz_nvm_bytes(const FuzzOptions& o) {
  if (o.nvm_bytes != 0) return o.nvm_bytes;
  switch (o.kind) {
    case StackKind::kClassic:
    case StackKind::kClassicNoJournal:
      return 3ull << 19;  // 1.5 MB → one 256-slot set
    case StackKind::kShardedTinca:
      return (1ull << 19) * 2;  // two 512 KB shards
    default:
      return 1ull << 19;  // 512 KB → ~100 Tinca/UBJ blocks
  }
}

inline std::unique_ptr<TxnBackend> fuzz_build(const FuzzOptions& o,
                                              nvm::NvmDevice& nvm,
                                              blockdev::BlockDevice& disk,
                                              bool recover) {
  switch (o.kind) {
    case StackKind::kTinca: {
      core::TincaConfig c;
      c.ring_bytes = o.ring_bytes;
      c.io = o.retry;
      return recover ? TincaBackend::recover(nvm, disk, c)
                     : TincaBackend::format(nvm, disk, c);
    }
    case StackKind::kClassic:
    case StackKind::kClassicNoJournal: {
      classic::ClassicConfig c;
      c.journaling = o.kind == StackKind::kClassic;
      c.journal_blocks = o.journal_blocks;
      c.cache.io = o.retry;
      return recover ? ClassicBackend::recover(nvm, disk, c)
                     : ClassicBackend::format(nvm, disk, c);
    }
    case StackKind::kUbj: {
      ubj::UbjConfig c;
      c.io = o.retry;
      return recover ? UbjBackend::recover(nvm, disk, c)
                     : UbjBackend::format(nvm, disk, c);
    }
    case StackKind::kShardedTinca: {
      shard::ShardedConfig s;
      s.num_shards = o.shards;
      s.shard.ring_bytes = o.ring_bytes;
      s.shard.io = o.retry;
      return recover ? ShardedBackend::recover(nvm, disk, s)
                     : ShardedBackend::format(nvm, disk, s);
    }
  }
  TINCA_ENSURE(false, "unknown StackKind");
  return nullptr;
}

/// Fold the backend's retry/quarantine/degradation counters into `rep`.
inline void fuzz_collect(const FuzzOptions& o, TxnBackend& be,
                         FuzzReport& rep) {
  const auto add = [&rep](std::uint64_t retries, std::uint64_t quarantined,
                          std::uint64_t degraded) {
    rep.io_retries += retries;
    rep.io_quarantined += quarantined;
    rep.io_degraded_writes += degraded;
  };
  switch (o.kind) {
    case StackKind::kTinca: {
      const core::TincaCacheStats& s =
          static_cast<TincaBackend&>(be).cache().stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
    case StackKind::kClassic:
    case StackKind::kClassicNoJournal: {
      const classic::FlashCacheStats& s =
          static_cast<ClassicBackend&>(be).stack().cache().stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
    case StackKind::kUbj: {
      const ubj::UbjStats& s = static_cast<UbjBackend&>(be).store().stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
    case StackKind::kShardedTinca: {
      const core::TincaCacheStats s =
          static_cast<ShardedBackend&>(be).sharded().aggregated_stats();
      add(s.io_retries, s.io_quarantined, s.io_degraded_writes);
      break;
    }
  }
}

}  // namespace detail

/// Run the campaign.  Never throws for injected faults — every anomaly is
/// classified into the report; only harness misuse (bad options) throws.
inline FuzzReport run_fault_fuzz(const FuzzOptions& opts) {
  using detail::fuzz_mix;
  FuzzReport rep;
  std::vector<std::byte> buf(blockdev::kBlockSize);
  fill_pattern(buf, 0);
  std::fill(buf.begin(), buf.end(), std::byte{0});
  const std::uint64_t zero_fp = fingerprint(buf);

  const auto fp_of = [&buf](std::uint64_t value) {
    fill_pattern(buf, value);
    return fingerprint(buf);
  };

  const auto record_violation = [&rep](std::uint32_t sched,
                                       std::uint64_t sseed,
                                       const std::string& what) {
    ++rep.violations;
    if (rep.violation_messages.size() < 16) {
      rep.violation_messages.push_back(
          "schedule " + std::to_string(sched) + " (seed " +
          std::to_string(sseed) + "): " + what);
    }
  };

  for (std::uint32_t sched = 0; sched < opts.schedules; ++sched) {
    ++rep.schedules;
    const std::uint64_t sseed = fuzz_mix(opts.seed, sched);
    Rng rng(sseed);

    sim::SimClock clock;
    nvm::NvmDevice nvm(detail::fuzz_nvm_bytes(opts), nvdimm_profile(), clock);
    blockdev::MemBlockDevice mem(opts.disk_blocks);
    blockdev::FaultConfig fcfg;
    fcfg.seed = fuzz_mix(sseed, 0xFA01);
    fcfg.transient_read_rate = opts.transient_read_rate;
    fcfg.transient_write_rate = opts.transient_write_rate;
    fcfg.bad_sector_rate = opts.bad_sector_rate;
    fcfg.torn_write_rate = opts.torn_write_rate;
    blockdev::FaultyBlockDevice disk(mem, fcfg, &clock, &nvm.injector);

    std::unique_ptr<TxnBackend> be = detail::fuzz_build(opts, nvm, disk, false);
    TINCA_EXPECT(opts.data_blocks <= be->data_block_limit(),
                 "fuzz universe exceeds the backend's data block limit");
    const std::uint64_t max_blocks = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(opts.max_blocks_per_txn,
                                   be->max_txn_blocks()));

    // Arm at most one deterministic crash; half the armed schedules cut
    // power at an NVM persistence point, the rest tear a disk write.
    if (rng.chance(opts.crash_prob)) {
      if (rng.chance(0.5)) {
        nvm.injector.arm(1 + rng.below(300));
      } else {
        nvm.injector.arm_torn(1 + rng.below(40));
      }
    }

    // --- Workload ----------------------------------------------------------
    std::map<std::uint64_t, std::uint64_t> committed;  // blkno → pattern seed
    std::vector<std::pair<std::uint64_t, std::uint64_t>> txn;  // in flight
    std::set<std::uint64_t> touched;
    std::uint64_t pat = 0;
    bool crashed = false;
    bool wedged = false;

    try {
      for (std::uint32_t t = 0; t < opts.txns_per_schedule; ++t) {
        // Occasionally re-read a committed block mid-run: committed data
        // must be visible long before any crash.
        if (!committed.empty() && rng.chance(0.3)) {
          auto it = committed.begin();
          std::advance(it, static_cast<long>(rng.below(committed.size())));
          be->read_block(it->first, buf);
          const std::uint64_t got_fp = fingerprint(buf);
          if (got_fp != fp_of(it->second)) {
            record_violation(sched, sseed,
                             "live read of committed block " +
                                 std::to_string(it->first) +
                                 " returned wrong contents");
            break;
          }
        }

        txn.clear();
        const std::uint64_t nblocks = 1 + rng.below(max_blocks);
        while (txn.size() < nblocks) {
          const std::uint64_t blkno = rng.below(opts.data_blocks);
          bool dup = false;
          for (const auto& [b, v] : txn) dup |= b == blkno;
          if (dup) continue;
          txn.emplace_back(blkno, (sseed << 16) + ++pat);
        }
        be->begin();
        for (const auto& [blkno, value] : txn) {
          fill_pattern(buf, value);
          be->stage(blkno, buf);
          touched.insert(blkno);
        }
        be->commit();
        for (const auto& [blkno, value] : txn) committed[blkno] = value;
        txn.clear();
        if (rng.chance(0.1)) be->flush();
      }
    } catch (const nvm::CrashException&) {
      crashed = true;
    } catch (const blockdev::IoError&) {
      ++rep.io_errors;  // unrecoverable read; state stays consistent
    } catch (const ContractViolation& e) {
      if (std::string(e.what()).find("wedged") != std::string::npos) {
        ++rep.wedges;  // documented capacity degradation, not a bug
        wedged = true;
      } else {
        record_violation(sched, sseed, e.what());
      }
    }

    // Stop injecting *new* faults; already-bad sectors keep failing.
    nvm.injector.disarm();
    nvm.injector.disarm_torn();
    disk.quiesce();
    detail::fuzz_collect(opts, *be, rep);

    if (wedged) {
      // A wedge aborts mid-operation by design; the interrupted operation's
      // partial state is reconciled by recovery, which the crash schedules
      // already cover.  Nothing further to verify here.
      const blockdev::FaultStats& f = disk.fault_stats();
      rep.faults.transient_read_errors += f.transient_read_errors;
      rep.faults.transient_write_errors += f.transient_write_errors;
      rep.faults.bad_sectors += f.bad_sectors;
      rep.faults.bad_sector_errors += f.bad_sector_errors;
      rep.faults.torn_writes += f.torn_writes;
      rep.faults.latency_spikes += f.latency_spikes;
      continue;
    }

    // --- Crash + recovery --------------------------------------------------
    if (crashed) {
      ++rep.crashes;
      static constexpr double kSurvive[] = {0.0, 0.3, 0.7, 1.0};
      nvm.crash(rng, kSurvive[rng.below(4)]);
      be.reset();
      try {
        be = detail::fuzz_build(opts, nvm, disk, true);
      } catch (const std::exception& e) {
        record_violation(sched, sseed,
                         std::string("recovery failed: ") + e.what());
        continue;
      }
    } else if (rng.chance(0.5)) {
      // Crash-free round trip: a clean remount must preserve everything.
      ++rep.clean_remounts;
      be.reset();
      try {
        be = detail::fuzz_build(opts, nvm, disk, true);
      } catch (const std::exception& e) {
        record_violation(sched, sseed,
                         std::string("clean remount failed: ") + e.what());
        continue;
      }
      txn.clear();  // nothing was in flight
    } else {
      txn.clear();  // verify the live instance; nothing in flight
    }

    // --- Verification ------------------------------------------------------
    // Acceptable states: committed history, or (crash during commit only)
    // committed history + the in-flight transaction.  The sharded stack's
    // documented contract (DESIGN.md §7) is per-shard all-or-nothing with
    // ascending-shard publication, so there an ascending-shard *prefix* of
    // the in-flight transaction is also acceptable.  Anything else — a torn
    // block, a lost committed block, a half-applied shard portion — is a
    // violation.
    try {
      const auto matches =
          [&](const std::map<std::uint64_t, std::uint64_t>& expect,
              std::string* why) {
            std::vector<std::byte> got(blockdev::kBlockSize);
            for (const std::uint64_t blkno : touched) {
              be->read_block(blkno, got);
              const auto it = expect.find(blkno);
              const std::uint64_t want =
                  it == expect.end() ? zero_fp : fp_of(it->second);
              if (fingerprint(got) != want) {
                *why = "block " + std::to_string(blkno) + " mismatch";
                return false;
              }
            }
            return true;
          };

      std::vector<std::map<std::uint64_t, std::uint64_t>> candidates;
      candidates.push_back(committed);
      if (!txn.empty()) {
        if (opts.kind == StackKind::kShardedTinca) {
          const shard::ShardedTinca& st =
              static_cast<ShardedBackend&>(*be).sharded();
          std::map<std::uint32_t,
                   std::vector<std::pair<std::uint64_t, std::uint64_t>>>
              by_shard;
          for (const auto& [blkno, value] : txn)
            by_shard[st.shard_of(blkno)].emplace_back(blkno, value);
          std::map<std::uint64_t, std::uint64_t> acc = committed;
          for (const auto& [sid, part] : by_shard) {  // ascending shard id
            for (const auto& [blkno, value] : part) acc[blkno] = value;
            candidates.push_back(acc);
          }
        } else {
          std::map<std::uint64_t, std::uint64_t> with_txn = committed;
          for (const auto& [blkno, value] : txn) with_txn[blkno] = value;
          candidates.push_back(with_txn);
        }
      }

      bool ok = false;
      std::string why;
      for (const auto& cand : candidates) {
        if (matches(cand, &why)) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        record_violation(sched, sseed,
                         "recovered state matches no acceptable history (" +
                             why + ")");
      }

      // Tinca media must also be *structurally* sound after recovery.
      if (ok && crashed && opts.kind == StackKind::kTinca) {
        const core::MediaReport mr = core::verify_media(
            nvm, core::Layout::compute(nvm.size(), opts.ring_bytes));
        if (!mr.ok) {
          record_violation(sched, sseed,
                           "verify_media: " + (mr.problems.empty()
                                                   ? std::string("not ok")
                                                   : mr.problems.front()));
        }
      }
      if (crashed) detail::fuzz_collect(opts, *be, rep);
    } catch (const std::exception& e) {
      record_violation(sched, sseed,
                       std::string("verification threw: ") + e.what());
    }

    const blockdev::FaultStats& f = disk.fault_stats();
    rep.faults.transient_read_errors += f.transient_read_errors;
    rep.faults.transient_write_errors += f.transient_write_errors;
    rep.faults.bad_sectors += f.bad_sectors;
    rep.faults.bad_sector_errors += f.bad_sector_errors;
    rep.faults.torn_writes += f.torn_writes;
    rep.faults.latency_spikes += f.latency_spikes;
  }
  return rep;
}

}  // namespace tinca::backend
