// TxnBackend adapter over the Classic (Ext4+JBD2+Flashcache) stack.
#pragma once

#include <memory>
#include <optional>

#include "backend/txn_backend.h"
#include "classic/classic_stack.h"

namespace tinca::backend {

/// Drives a ClassicStack through the uniform transactional surface.
///
/// With `cfg.journaling = false` this doubles as the paper's "Ext4 without
/// journaling" ablation (no crash consistency, single writes).
class ClassicBackend final : public TxnBackend {
 public:
  static std::unique_ptr<ClassicBackend> format(nvm::NvmDevice& nvm,
                                                blockdev::BlockDevice& disk,
                                                classic::ClassicConfig cfg = {}) {
    return std::unique_ptr<ClassicBackend>(
        new ClassicBackend(classic::ClassicStack::format(nvm, disk, cfg)));
  }

  static std::unique_ptr<ClassicBackend> recover(
      nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
      classic::ClassicConfig cfg = {}) {
    return std::unique_ptr<ClassicBackend>(
        new ClassicBackend(classic::ClassicStack::recover(nvm, disk, cfg)));
  }

  void begin() override {
    TINCA_EXPECT(!txn_.has_value(), "transaction already open");
    txn_.emplace(stack_->begin_txn());
  }

  void stage(std::uint64_t blkno, std::span<const std::byte> data) override {
    TINCA_EXPECT(txn_.has_value(), "stage without begin");
    txn_->add(blkno, data);
  }

  void commit() override {
    TINCA_EXPECT(txn_.has_value(), "commit without begin");
    stack_->commit(*txn_);
    txn_.reset();
  }

  void abort() override {
    TINCA_EXPECT(txn_.has_value(), "abort without begin");
    stack_->abort(*txn_);
    txn_.reset();
  }

  void read_block(std::uint64_t blkno, std::span<std::byte> dst) override {
    stack_->read_block(blkno, dst);
  }

  void flush() override { stack_->flush_all(); }

  [[nodiscard]] std::uint64_t data_block_limit() const override {
    return stack_->data_block_limit();
  }

  [[nodiscard]] std::uint64_t max_txn_blocks() const override {
    // Bounded by the journal ring (Journal::commit's capacity check).
    return stack_->journaling() ? stack_->journal()->max_txn_blocks()
                                : UINT64_MAX;
  }

  [[nodiscard]] std::string name() const override {
    return stack_->journaling() ? "Classic" : "Classic-nojournal";
  }

  void enable_tracing(bool on = true) override {
    if (stack_->journal() != nullptr) stack_->journal()->tracer().enable(on);
  }

  void attach_trace_sink(obs::TraceSink* sink) override {
    if (stack_->journal() != nullptr) stack_->journal()->tracer().attach_sink(sink);
  }

  [[nodiscard]] const obs::Tracer* tracer() const override {
    return stack_->journal() != nullptr ? &stack_->journal()->tracer() : nullptr;
  }

  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const override {
    stack_->cache().register_metrics(reg, prefix + "flashcache.");
    if (stack_->journal() != nullptr)
      stack_->journal()->register_metrics(reg, prefix + "journal.");
  }

  /// The underlying stack, for stats and tests.
  [[nodiscard]] classic::ClassicStack& stack() { return *stack_; }

 private:
  explicit ClassicBackend(std::unique_ptr<classic::ClassicStack> stack)
      : stack_(std::move(stack)) {}

  std::unique_ptr<classic::ClassicStack> stack_;
  std::optional<classic::ClassicTxn> txn_;
};

}  // namespace tinca::backend
