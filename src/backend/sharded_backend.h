// TxnBackend adapter over the sharded Tinca front-end.
//
// Lets MiniFs and every workload generator run unchanged on top of
// ShardedTinca: the backend surface is still one running transaction per
// caller, but distinct ShardedBackend users (or direct ShardedTinca users)
// may commit concurrently against the same sharded cache.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "backend/txn_backend.h"
#include "shard/sharded_tinca.h"

namespace tinca::backend {

/// Drives a ShardedTinca through the uniform transactional surface.
class ShardedBackend final : public TxnBackend {
 public:
  /// Format every shard afresh over `nvm` backed by `disk`.
  static std::unique_ptr<ShardedBackend> format(nvm::NvmDevice& nvm,
                                                blockdev::BlockDevice& disk,
                                                shard::ShardedConfig cfg = {}) {
    return std::unique_ptr<ShardedBackend>(new ShardedBackend(
        shard::ShardedTinca::format(nvm, disk, cfg), disk));
  }

  /// Mount with per-shard crash recovery.
  static std::unique_ptr<ShardedBackend> recover(
      nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
      shard::ShardedConfig cfg = {}) {
    return std::unique_ptr<ShardedBackend>(new ShardedBackend(
        shard::ShardedTinca::recover(nvm, disk, cfg), disk));
  }

  void begin() override {
    TINCA_EXPECT(!txn_.has_value(), "transaction already open");
    txn_.emplace(sharded_->init_txn());
  }

  void stage(std::uint64_t blkno, std::span<const std::byte> data) override {
    TINCA_EXPECT(txn_.has_value(), "stage without begin");
    txn_->add(blkno, data);
  }

  void commit() override {
    TINCA_EXPECT(txn_.has_value(), "commit without begin");
    sharded_->commit(*txn_);
    txn_.reset();
  }

  void abort() override {
    TINCA_EXPECT(txn_.has_value(), "abort without begin");
    sharded_->abort(*txn_);
    txn_.reset();
  }

  [[nodiscard]] bool supports_group_commit() const override { return true; }

  void commit_group(std::span<const GroupTxn> txns) override {
    TINCA_EXPECT(!txn_.has_value(), "group commit with a transaction open");
    std::vector<shard::ShardedTxn> staged;
    staged.reserve(txns.size());
    for (const GroupTxn& t : txns) {
      staged.emplace_back(sharded_->init_txn());
      for (const auto& [blkno, data] : t.writes)
        staged.back().add(blkno, data);
    }
    std::vector<shard::ShardedTxn*> ptrs;
    ptrs.reserve(staged.size());
    for (shard::ShardedTxn& t : staged) ptrs.push_back(&t);
    sharded_->commit_batch(ptrs);
  }

  void read_block(std::uint64_t blkno, std::span<std::byte> dst) override {
    sharded_->read_block(blkno, dst);
  }

  void flush() override { sharded_->flush_dirty(); }

  [[nodiscard]] std::uint64_t data_block_limit() const override {
    return disk_.block_count();
  }

  [[nodiscard]] std::uint64_t max_txn_blocks() const override {
    return sharded_->max_txn_blocks();
  }

  [[nodiscard]] std::string name() const override { return "ShardedTinca"; }

  void cleaner_step() override { sharded_->step_cleaners(); }

  [[nodiscard]] bool supports_snapshots() const override { return true; }

  std::uint64_t snapshot_open() override {
    const std::uint64_t token = next_snap_++;
    snaps_.emplace(token, sharded_->open_snapshot());
    return token;
  }

  void snapshot_read(std::uint64_t token, std::uint64_t blkno,
                     std::span<std::byte> dst) override {
    sharded_->snapshot_read(snaps_.at(token), blkno, dst);
  }

  void snapshot_close(std::uint64_t token) override {
    auto it = snaps_.find(token);
    TINCA_EXPECT(it != snaps_.end(), "close of an unknown snapshot token");
    sharded_->close_snapshot(it->second);
    snaps_.erase(it);
  }

  void enable_tracing(bool on = true) override { sharded_->enable_tracing(on); }

  void attach_trace_sink(obs::TraceSink* sink) override {
    sharded_->attach_trace_sink(sink);
  }

  [[nodiscard]] const obs::Tracer* tracer() const override {
    return &sharded_->tracer();
  }

  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const override {
    sharded_->register_metrics(reg, prefix + "sharded.");
  }

  /// The underlying sharded cache, for stats, tests and concurrent callers.
  [[nodiscard]] shard::ShardedTinca& sharded() { return *sharded_; }

 private:
  ShardedBackend(std::unique_ptr<shard::ShardedTinca> sharded,
                 blockdev::BlockDevice& disk)
      : sharded_(std::move(sharded)), disk_(disk) {}

  std::unique_ptr<shard::ShardedTinca> sharded_;
  blockdev::BlockDevice& disk_;
  std::optional<shard::ShardedTxn> txn_;
  std::unordered_map<std::uint64_t, shard::ShardedSnapshot> snaps_;
  std::uint64_t next_snap_ = 1;
};

}  // namespace tinca::backend
