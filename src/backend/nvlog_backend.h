// TxnBackend adapter stacking the NVM write-ahead tier (src/nvlog/) on top
// of a journal-less Classic store: commits absorb into the log with one
// flush + fence, a cleaner::Cleaner drains sealed segments to the inner
// FlashCache as coalesced ascending batches, and reads consult the log
// index before falling through.  The inner store runs WITHOUT its journal —
// the log tier *is* the write-ahead journal, which is the whole point: any
// BlockDevice-backed store gains crash consistency by being wrapped here.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "backend/classic_backend.h"
#include "backend/txn_backend.h"
#include "blockdev/io_status.h"
#include "cleaner/cleaner.h"
#include "nvlog/nvlog_tier.h"
#include "obs/trace.h"

namespace tinca::backend {

/// Assembly parameters for the NvLog-over-Classic stack.
struct NvLogStackConfig {
  /// Leading bytes of the NVM device carved out for the log tier; the
  /// remainder backs the inner FlashCache.
  std::uint64_t log_bytes = 8ull << 20;
  nvlog::NvLogConfig log;
  /// Inner store config; `journaling` is forced off (the log replaces it).
  classic::ClassicConfig inner;
  /// Background drain driver; kDisabled leaves draining to backpressure
  /// and explicit flush().
  cleaner::CleanerConfig cleaner;
};

class NvLogBackend final : public TxnBackend,
                           public cleaner::CleanerClient,
                           public nvlog::NvLogTier::DrainSink {
 public:
  static std::unique_ptr<NvLogBackend> format(nvm::NvmDevice& nvm,
                                              blockdev::BlockDevice& disk,
                                              NvLogStackConfig cfg = {}) {
    return std::unique_ptr<NvLogBackend>(
        new NvLogBackend(nvm, disk, std::move(cfg), /*recover=*/false));
  }

  static std::unique_ptr<NvLogBackend> recover(nvm::NvmDevice& nvm,
                                               blockdev::BlockDevice& disk,
                                               NvLogStackConfig cfg = {}) {
    return std::unique_ptr<NvLogBackend>(
        new NvLogBackend(nvm, disk, std::move(cfg), /*recover=*/true));
  }

  void begin() override {
    TINCA_EXPECT(!txn_open_, "transaction already open");
    txn_open_ = true;
  }

  void stage(std::uint64_t blkno, std::span<const std::byte> data) override {
    TINCA_EXPECT(txn_open_, "stage without begin");
    auto [it, inserted] = staged_.try_emplace(blkno);
    if (inserted) order_.push_back(blkno);
    it->second.assign(data.begin(), data.end());
  }

  void commit() override {
    TINCA_EXPECT(txn_open_, "commit without begin");
    if (order_.empty()) {
      txn_open_ = false;
      return;
    }
    {
      TINCA_TRACE_SPAN(trace_, site_commit_);
      std::vector<std::pair<std::uint64_t, std::span<const std::byte>>> blocks;
      blocks.reserve(order_.size());
      for (std::uint64_t blkno : order_) {
        TINCA_EXPECT(blkno < data_block_limit(), "write past the data area");
        blocks.emplace_back(blkno, staged_[blkno]);
      }
      // Throws (disk error inside a backpressure drain) leave the staging
      // intact — the txn stays open for the caller to retry or abort.
      tier_->absorb_commit(blocks, *this);
    }
    txn_open_ = false;
    staged_.clear();
    order_.clear();
    if (cleaner_) {
      std::vector<std::uint64_t> seqs;
      tier_->collect_drainable(cleaner_->config().trickle_per_step, seqs);
      for (std::uint64_t s : seqs) cleaner_->try_enqueue(s);
    }
  }

  [[nodiscard]] bool supports_group_commit() const override { return true; }

  void commit_group(std::span<const GroupTxn> txns) override {
    TINCA_EXPECT(!txn_open_, "group commit with a transaction open");
    if (txns.empty()) return;
    {
      TINCA_TRACE_SPAN(trace_, site_commit_);
      std::vector<
          std::vector<std::pair<std::uint64_t, std::span<const std::byte>>>>
          members;
      members.reserve(txns.size());
      for (const GroupTxn& t : txns) {
        members.emplace_back();
        members.back().reserve(t.writes.size());
        for (const auto& [blkno, data] : t.writes) {
          TINCA_EXPECT(blkno < data_block_limit(), "write past the data area");
          members.back().emplace_back(blkno, data);
        }
      }
      tier_->absorb_commit_group(members, *this);
    }
    if (cleaner_) {
      std::vector<std::uint64_t> seqs;
      tier_->collect_drainable(cleaner_->config().trickle_per_step, seqs);
      for (std::uint64_t s : seqs) cleaner_->try_enqueue(s);
    }
  }

  void abort() override {
    TINCA_EXPECT(txn_open_, "abort without begin");
    txn_open_ = false;
    staged_.clear();
    order_.clear();
  }

  void read_block(std::uint64_t blkno, std::span<std::byte> dst) override {
    if (tier_->lookup(blkno, dst)) return;
    inner_->read_block(blkno, dst);
  }

  void flush() override {
    tier_->drain_all(*this);
    inner_->flush();
  }

  void cleaner_step() override {
    if (cleaner_) cleaner_->step();
  }

  [[nodiscard]] std::uint64_t data_block_limit() const override {
    return inner_->data_block_limit();
  }

  [[nodiscard]] std::uint64_t max_txn_blocks() const override {
    return std::min(tier_->max_txn_blocks(), inner_->max_txn_blocks());
  }

  [[nodiscard]] std::string name() const override { return "NvLog-Classic"; }

  void enable_tracing(bool on = true) override {
    trace_.enable(on);
    if (cleaner_) cleaner_->tracer().enable(on);
    inner_->enable_tracing(on);
  }

  void attach_trace_sink(obs::TraceSink* sink) override {
    trace_.attach_sink(sink);
    if (cleaner_) cleaner_->tracer().attach_sink(sink);
    inner_->attach_trace_sink(sink);
  }

  [[nodiscard]] const obs::Tracer* tracer() const override { return &trace_; }

  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const override {
    tier_->register_metrics(reg, prefix + "nvlog.");
    trace_.register_into(reg, prefix + "nvlog.lat.");
    if (cleaner_) cleaner_->register_metrics(reg, prefix + "nvlog.cleaner.");
    inner_->register_metrics(reg, prefix);
  }

  // --- DrainSink -----------------------------------------------------------

  void drain_apply(
      const std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>&
          blocks) override {
    // The inner store is journal-less: each committed block is individually
    // durable on return, which is all draining needs — a crash between
    // blocks just replays the segment (the drained prefix has not advanced).
    const std::uint64_t chunk =
        std::max<std::uint64_t>(1, inner_->max_txn_blocks());
    for (std::size_t i = 0; i < blocks.size(); i += chunk) {
      inner_->begin();
      const std::size_t end = std::min(blocks.size(), i + chunk);
      for (std::size_t k = i; k < end; ++k)
        inner_->stage(blocks[k].first, blocks[k].second);
      inner_->commit();
    }
  }

  // --- CleanerClient (keys are log segment seqs) ---------------------------

  cleaner::CleanOutcome cleaner_clean(std::uint64_t key,
                                      std::uint64_t* io_retries) override {
    (void)io_retries;  // inner retries charge its own flashcache counters
    try {
      switch (tier_->drain_segment(key, *this)) {
        case nvlog::NvLogTier::DrainResult::kDrained:
          return cleaner::CleanOutcome::kRetired;
        case nvlog::NvLogTier::DrainResult::kStale:
          return cleaner::CleanOutcome::kStale;
        case nvlog::NvLogTier::DrainResult::kPinned:
          return cleaner::CleanOutcome::kPinned;
      }
      return cleaner::CleanOutcome::kStale;
    } catch (const blockdev::IoError&) {
      return cleaner::CleanOutcome::kFailed;
    }
  }

  [[nodiscard]] std::uint64_t cleaner_dirty_blocks() const override {
    return tier_->live_records();
  }

  [[nodiscard]] std::uint64_t cleaner_capacity_blocks() const override {
    return tier_->record_capacity();
  }

  void cleaner_collect(std::uint32_t max,
                       std::vector<std::uint64_t>& out) override {
    tier_->collect_drainable(max, out);
  }

  /// The log tier, for stats and tests.
  [[nodiscard]] nvlog::NvLogTier& tier() { return *tier_; }
  /// The inner journal-less Classic store, for stats.
  [[nodiscard]] ClassicBackend& inner() { return *inner_; }

 private:
  NvLogBackend(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
               NvLogStackConfig cfg, bool recover)
      : trace_(nvm.clock(), /*tid=*/0, "nvlog.") {
    TINCA_EXPECT(cfg.log_bytes % nvm::NvmDevice::kLineSize == 0 &&
                     cfg.log_bytes < nvm.size(),
                 "log carve-out must be line-aligned and leave cache room");
    log_view_ = std::make_unique<nvm::NvmDevice>(nvm, 0, cfg.log_bytes,
                                                 nvm.clock());
    store_view_ = std::make_unique<nvm::NvmDevice>(
        nvm, cfg.log_bytes, nvm.size() - cfg.log_bytes, nvm.clock());
    cfg.inner.journaling = false;
    // The cleaner's oracle sabotage knob maps onto the tier's: "mark clean
    // without writing" is exactly a drain that skips its apply.
    cfg.log.sabotage_skip_drain_apply |= cfg.cleaner.sabotage_skip_write;
    if (recover) {
      inner_ = ClassicBackend::recover(*store_view_, disk, cfg.inner);
      tier_ = nvlog::NvLogTier::recover(*log_view_, cfg.log);
    } else {
      inner_ = ClassicBackend::format(*store_view_, disk, cfg.inner);
      tier_ = nvlog::NvLogTier::format(*log_view_, cfg.log);
    }
    if (cfg.cleaner.mode != cleaner::CleanerMode::kDisabled)
      cleaner_ = std::make_unique<cleaner::Cleaner>(cfg.cleaner, *this,
                                                    nvm.clock());
    site_commit_ = trace_.site("commit");
  }

  obs::Tracer trace_;
  obs::Tracer::Site* site_commit_ = nullptr;
  std::unique_ptr<nvm::NvmDevice> log_view_;
  std::unique_ptr<nvm::NvmDevice> store_view_;
  std::unique_ptr<ClassicBackend> inner_;
  std::unique_ptr<nvlog::NvLogTier> tier_;
  std::unique_ptr<cleaner::Cleaner> cleaner_;

  bool txn_open_ = false;
  std::map<std::uint64_t, std::vector<std::byte>> staged_;
  std::vector<std::uint64_t> order_;
};

}  // namespace tinca::backend
