// TxnBackend stacking the NVM write-ahead tier (src/nvlog/) on top of the
// REAL transactional stacks (DESIGN.md §16): a full TincaCache or a
// ShardedTinca front-end, instead of the journal-less Classic store
// NvLogBackend wraps.  Commits absorb into the log with one flush + fence;
// sealed segments drain into the inner stack *through its commit_group
// path*, so a whole coalesced chunk costs the inner one flush pass and one
// sfence (§14 fence economics), and the inner keeps its own crash
// consistency — a power cut inside an apply tears nothing.
//
// Sharded inners additionally get shard-affine parallel drains: the tier
// partitions a segment's coalesced run by `ShardedTinca::shard_of`, this
// sink drains the per-shard batches concurrently (modeled virtual time by
// default, real threads for the TSan stress), and the tier advances its
// persisted watermark only after drain_apply_shards returns — the barrier
// where EVERY shard's batch is durable.  Re-crash anywhere mid-drain is
// idempotent: the watermark still names the segment, recovery re-drains it,
// and last-writer-wins block applies make the replay harmless.
//
// Threading: the tier itself is single-threaded; every tier access here is
// serialized by `tier_mu_`, making `absorb_txn`, `read_block`, `drain_pass`
// and cleaner callbacks safe to call concurrently (the TSan stress drives
// absorbers against a drainer).  The begin/stage/commit staging surface
// stays single-caller like every other backend.
#pragma once

#include <algorithm>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "backend/sharded_backend.h"
#include "backend/tinca_backend.h"
#include "backend/txn_backend.h"
#include "blockdev/io_status.h"
#include "cleaner/cleaner.h"
#include "nvlog/nvlog_tier.h"
#include "obs/trace.h"

namespace tinca::backend {

/// Which real stack the log drains into.
enum class NvLogInner : std::uint8_t { kTinca, kSharded };

/// Assembly parameters for the NvLog-over-Tinca/Sharded stacks.
struct NvLogStackedConfig {
  /// Leading bytes of the NVM device carved out for the log tier; the
  /// remainder backs the inner stack.
  std::uint64_t log_bytes = 8ull << 20;
  nvlog::NvLogConfig log;
  NvLogInner inner = NvLogInner::kTinca;
  /// Inner cache config (per shard when inner == kSharded).
  core::TincaConfig tinca;
  /// Shard count for the kSharded inner.
  std::uint32_t shards = 4;
  /// Background drain driver; kDisabled leaves draining to backpressure
  /// and explicit flush().
  cleaner::CleanerConfig cleaner;
  /// Shard-affine parallel drains (kSharded only): per-shard batches are
  /// modeled as draining concurrently — the tier's drain_apply histogram
  /// records the barrier time (max over shards) instead of the sum.
  /// Execution stays deterministic; only the time model changes.
  bool parallel_drain = true;
  /// Drain each shard batch on a real std::thread (kSharded only; implies
  /// parallel semantics).  For the TSan stress — the modeled mode is what
  /// benches and fuzz use.
  bool drain_threads = false;
};

class NvLogStackedBackend final : public TxnBackend,
                                  public cleaner::CleanerClient,
                                  public nvlog::NvLogTier::DrainSink {
 public:
  static std::unique_ptr<NvLogStackedBackend> format(
      nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
      NvLogStackedConfig cfg = {}) {
    return std::unique_ptr<NvLogStackedBackend>(
        new NvLogStackedBackend(nvm, disk, std::move(cfg), /*recover=*/false));
  }

  static std::unique_ptr<NvLogStackedBackend> recover(
      nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
      NvLogStackedConfig cfg = {}) {
    return std::unique_ptr<NvLogStackedBackend>(
        new NvLogStackedBackend(nvm, disk, std::move(cfg), /*recover=*/true));
  }

  void begin() override {
    TINCA_EXPECT(!txn_open_, "transaction already open");
    txn_open_ = true;
  }

  void stage(std::uint64_t blkno, std::span<const std::byte> data) override {
    TINCA_EXPECT(txn_open_, "stage without begin");
    auto [it, inserted] = staged_.try_emplace(blkno);
    if (inserted) order_.push_back(blkno);
    it->second.assign(data.begin(), data.end());
  }

  void commit() override {
    TINCA_EXPECT(txn_open_, "commit without begin");
    if (order_.empty()) {
      txn_open_ = false;
      return;
    }
    {
      TINCA_TRACE_SPAN(trace_, site_commit_);
      std::vector<std::pair<std::uint64_t, std::span<const std::byte>>> blocks;
      blocks.reserve(order_.size());
      for (std::uint64_t blkno : order_) {
        TINCA_EXPECT(blkno < data_block_limit(), "write past the data area");
        blocks.emplace_back(blkno, staged_[blkno]);
      }
      // Throws (disk error inside a backpressure drain) leave the staging
      // intact — the txn stays open for the caller to retry or abort.
      std::lock_guard<std::mutex> lock(tier_mu_);
      tier_->absorb_commit(blocks, *this);
    }
    txn_open_ = false;
    staged_.clear();
    order_.clear();
    trickle_collect();
  }

  /// Thread-safe commit entry: durably absorb one committed transaction
  /// without touching the begin/stage staging area.  Concurrent absorbers
  /// serialize on the tier mutex (the TSan stress drives several against a
  /// draining thread).
  void absorb_txn(
      const std::vector<std::pair<std::uint64_t, std::span<const std::byte>>>&
          blocks) {
    TINCA_TRACE_SPAN(trace_, site_commit_);
    std::lock_guard<std::mutex> lock(tier_mu_);
    tier_->absorb_commit(blocks, *this);
  }

  [[nodiscard]] bool supports_group_commit() const override { return true; }

  void commit_group(std::span<const GroupTxn> txns) override {
    TINCA_EXPECT(!txn_open_, "group commit with a transaction open");
    if (txns.empty()) return;
    {
      TINCA_TRACE_SPAN(trace_, site_commit_);
      std::vector<
          std::vector<std::pair<std::uint64_t, std::span<const std::byte>>>>
          members;
      members.reserve(txns.size());
      for (const GroupTxn& t : txns) {
        members.emplace_back();
        members.back().reserve(t.writes.size());
        for (const auto& [blkno, data] : t.writes) {
          TINCA_EXPECT(blkno < data_block_limit(), "write past the data area");
          members.back().emplace_back(blkno, data);
        }
      }
      std::lock_guard<std::mutex> lock(tier_mu_);
      tier_->absorb_commit_group(members, *this);
    }
    trickle_collect();
  }

  void abort() override {
    TINCA_EXPECT(txn_open_, "abort without begin");
    txn_open_ = false;
    staged_.clear();
    order_.clear();
  }

  void read_block(std::uint64_t blkno, std::span<std::byte> dst) override {
    {
      std::lock_guard<std::mutex> lock(tier_mu_);
      if (tier_->lookup(blkno, dst)) return;
    }
    inner_->read_block(blkno, dst);
  }

  void flush() override {
    {
      std::lock_guard<std::mutex> lock(tier_mu_);
      tier_->drain_all(*this);
    }
    inner_->flush();
  }

  /// Drain up to `max` sealed segments now (thread-safe).  The TSan stress
  /// drainer loops this against concurrent absorbers; returns the number of
  /// segments retired.
  std::uint64_t drain_pass(std::uint32_t max = 4) {
    std::vector<std::uint64_t> seqs;
    std::lock_guard<std::mutex> lock(tier_mu_);
    tier_->collect_drainable(max, seqs);
    std::uint64_t retired = 0;
    for (std::uint64_t s : seqs) {
      if (tier_->drain_segment(s, *this) ==
          nvlog::NvLogTier::DrainResult::kDrained)
        ++retired;
    }
    return retired;
  }

  void cleaner_step() override {
    if (cleaner_) cleaner_->step();
    inner_->cleaner_step();  // the inner cache's own threshold cleaner
  }

  [[nodiscard]] std::uint64_t data_block_limit() const override {
    return inner_->data_block_limit();
  }

  [[nodiscard]] std::uint64_t max_txn_blocks() const override {
    return std::min(tier_->max_txn_blocks(), inner_->max_txn_blocks());
  }

  [[nodiscard]] std::string name() const override {
    return sharded_ != nullptr ? "NvLog-Sharded" : "NvLog-Tinca";
  }

  void enable_tracing(bool on = true) override {
    trace_.enable(on);
    if (cleaner_) cleaner_->tracer().enable(on);
    inner_->enable_tracing(on);
  }

  void attach_trace_sink(obs::TraceSink* sink) override {
    trace_.attach_sink(sink);
    if (cleaner_) cleaner_->tracer().attach_sink(sink);
    inner_->attach_trace_sink(sink);
  }

  [[nodiscard]] const obs::Tracer* tracer() const override { return &trace_; }

  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const override {
    tier_->register_metrics(reg, prefix + "nvlog.");
    trace_.register_into(reg, prefix + "nvlog.lat.");
    if (cleaner_) cleaner_->register_metrics(reg, prefix + "nvlog.cleaner.");
    inner_->register_metrics(reg, prefix);
  }

  // --- DrainSink -----------------------------------------------------------

  void drain_apply(const DrainBatch& blocks) override {
    apply_chunked(blocks);
  }

  [[nodiscard]] std::uint32_t drain_shard_count() const override {
    return sharded_ != nullptr ? sharded_->sharded().shard_count() : 1;
  }

  [[nodiscard]] std::uint32_t drain_shard_of(
      std::uint64_t blkno) const override {
    return sharded_ != nullptr ? sharded_->sharded().shard_of(blkno) : 0;
  }

  std::uint64_t drain_apply_shards(
      const std::vector<DrainBatch>& shard_batches) override {
    if (cfg_.drain_threads) return drain_shards_threaded(shard_batches);
    // Deterministic mode: apply the shard batches one after another —
    // they touch disjoint shards, so order is immaterial — but model the
    // barrier time.  Each batch's cost lands on its shard's private clock
    // plus the shared (disk) clock; concurrent drains overlap those costs,
    // so the modeled apply duration is the longest batch (vs. the sum when
    // parallel_drain is off).  The injector point between batches is a
    // shard-batch boundary: the per-step crash sweeps cut there.
    std::uint64_t sum = 0;
    std::uint64_t longest = 0;
    bool first = true;
    for (std::uint32_t s = 0; s < shard_batches.size(); ++s) {
      if (shard_batches[s].empty()) continue;
      if (!first) nvm_.injector.point();  // CP: shard-batch boundary
      first = false;
      const std::uint64_t shard0 = sharded_->sharded().shard_clock(s).now();
      const std::uint64_t outer0 = nvm_.clock().now();
      apply_chunked(shard_batches[s]);
      const std::uint64_t d =
          (sharded_->sharded().shard_clock(s).now() - shard0) +
          (nvm_.clock().now() - outer0);
      sum += d;
      longest = std::max(longest, d);
    }
    return cfg_.parallel_drain ? longest : sum;
  }

  // --- CleanerClient (keys are log segment seqs) ---------------------------

  cleaner::CleanOutcome cleaner_clean(std::uint64_t key,
                                      std::uint64_t* io_retries) override {
    (void)io_retries;  // inner retries charge its own per-shard counters
    try {
      std::lock_guard<std::mutex> lock(tier_mu_);
      switch (tier_->drain_segment(key, *this)) {
        case nvlog::NvLogTier::DrainResult::kDrained:
          return cleaner::CleanOutcome::kRetired;
        case nvlog::NvLogTier::DrainResult::kStale:
          return cleaner::CleanOutcome::kStale;
        case nvlog::NvLogTier::DrainResult::kPinned:
          return cleaner::CleanOutcome::kPinned;
      }
      return cleaner::CleanOutcome::kStale;
    } catch (const blockdev::IoError&) {
      return cleaner::CleanOutcome::kFailed;
    }
  }

  [[nodiscard]] std::uint64_t cleaner_dirty_blocks() const override {
    std::lock_guard<std::mutex> lock(tier_mu_);
    return tier_->live_records();
  }

  [[nodiscard]] std::uint64_t cleaner_capacity_blocks() const override {
    return tier_->record_capacity();
  }

  void cleaner_collect(std::uint32_t max,
                       std::vector<std::uint64_t>& out) override {
    std::lock_guard<std::mutex> lock(tier_mu_);
    tier_->collect_drainable(max, out);
  }

  /// The log tier, for stats and tests.
  [[nodiscard]] nvlog::NvLogTier& tier() { return *tier_; }
  /// The inner stack as its concrete backend (exactly one is non-null).
  [[nodiscard]] TincaBackend* inner_tinca() { return tinca_.get(); }
  [[nodiscard]] ShardedBackend* inner_sharded() { return sharded_.get(); }

 private:
  NvLogStackedBackend(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
                      NvLogStackedConfig cfg, bool recover)
      : trace_(nvm.clock(), /*tid=*/0, "nvlog."), nvm_(nvm), cfg_(cfg) {
    TINCA_EXPECT(cfg.log_bytes % nvm::NvmDevice::kLineSize == 0 &&
                     cfg.log_bytes < nvm.size(),
                 "log carve-out must be line-aligned and leave cache room");
    log_view_ = std::make_unique<nvm::NvmDevice>(nvm, 0, cfg.log_bytes,
                                                 nvm.clock());
    store_view_ = std::make_unique<nvm::NvmDevice>(
        nvm, cfg.log_bytes, nvm.size() - cfg.log_bytes, nvm.clock());
    // The cleaner's oracle sabotage knob maps onto the tier's: "mark clean
    // without writing" is exactly a drain that skips its apply.
    cfg.log.sabotage_skip_drain_apply |= cfg.cleaner.sabotage_skip_write;
    if (cfg.inner == NvLogInner::kSharded) {
      shard::ShardedConfig sc;
      sc.num_shards = cfg.shards;
      sc.shard = cfg.tinca;
      sharded_ = recover ? ShardedBackend::recover(*store_view_, disk, sc)
                         : ShardedBackend::format(*store_view_, disk, sc);
      inner_ = sharded_.get();
    } else {
      tinca_ = recover ? TincaBackend::recover(*store_view_, disk, cfg.tinca)
                       : TincaBackend::format(*store_view_, disk, cfg.tinca);
      inner_ = tinca_.get();
    }
    tier_ = recover ? nvlog::NvLogTier::recover(*log_view_, cfg.log)
                    : nvlog::NvLogTier::format(*log_view_, cfg.log);
    if (cfg.cleaner.mode != cleaner::CleanerMode::kDisabled)
      cleaner_ = std::make_unique<cleaner::Cleaner>(cfg.cleaner, *this,
                                                    nvm.clock());
    site_commit_ = trace_.site("commit");
  }

  /// Apply one ascending batch through the inner's group-commit path,
  /// chunked to its transaction capacity: each chunk is ONE merged inner
  /// commit — one flush pass, one sfence (§14) — and durable on return.  A
  /// crash between chunks just replays the segment (the watermark has not
  /// advanced), and the inner's own commit protocol keeps each chunk
  /// atomic.
  void apply_chunked(const DrainBatch& blocks) {
    const std::uint64_t chunk =
        std::max<std::uint64_t>(1, inner_->max_txn_blocks());
    for (std::size_t i = 0; i < blocks.size(); i += chunk) {
      const std::size_t end = std::min(blocks.size(), i + chunk);
      GroupTxn g;
      g.writes.assign(blocks.begin() + static_cast<std::ptrdiff_t>(i),
                      blocks.begin() + static_cast<std::ptrdiff_t>(end));
      inner_->commit_group(std::span<const GroupTxn>(&g, 1));
    }
  }

  /// Real concurrency (TSan stress): one thread per non-empty shard batch.
  /// Safe because each batch's blocks home to one ShardedTinca shard (its
  /// own mutex, cache and clock) and the shared disk is behind
  /// LockedBlockDevice.  No injector points here — crash sweeps use the
  /// deterministic mode.  Returns 0: with real threads the wall time is
  /// genuine, so the tier's clock delta is the honest measure.
  std::uint64_t drain_shards_threaded(
      const std::vector<DrainBatch>& shard_batches) {
    std::vector<std::thread> workers;
    std::vector<std::exception_ptr> errors(shard_batches.size());
    for (std::uint32_t s = 0; s < shard_batches.size(); ++s) {
      if (shard_batches[s].empty()) continue;
      workers.emplace_back([this, &shard_batches, &errors, s] {
        try {
          apply_chunked(shard_batches[s]);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
    return 0;
  }

  /// Feed freshly drainable segments to the background cleaner.
  void trickle_collect() {
    if (!cleaner_) return;
    std::vector<std::uint64_t> seqs;
    {
      std::lock_guard<std::mutex> lock(tier_mu_);
      tier_->collect_drainable(cleaner_->config().trickle_per_step, seqs);
    }
    for (std::uint64_t s : seqs) cleaner_->try_enqueue(s);
  }

  obs::Tracer trace_;
  obs::Tracer::Site* site_commit_ = nullptr;
  nvm::NvmDevice& nvm_;
  NvLogStackedConfig cfg_;
  std::unique_ptr<nvm::NvmDevice> log_view_;
  std::unique_ptr<nvm::NvmDevice> store_view_;
  std::unique_ptr<TincaBackend> tinca_;
  std::unique_ptr<ShardedBackend> sharded_;
  TxnBackend* inner_ = nullptr;  ///< whichever of the two is live
  std::unique_ptr<nvlog::NvLogTier> tier_;
  std::unique_ptr<cleaner::Cleaner> cleaner_;

  /// Serializes every tier_ access (the tier is single-threaded).  Sink
  /// callbacks run *inside* drain_segment while this is held; they touch
  /// only the inner stack, never the tier, so there is no recursion.
  mutable std::mutex tier_mu_;

  bool txn_open_ = false;
  std::map<std::uint64_t, std::vector<std::byte>> staged_;
  std::vector<std::uint64_t> order_;
};

}  // namespace tinca::backend
