// One-stop assembly of a full storage stack for benches, examples and
// cluster nodes: virtual clock → NVM device → (mem + fault-injection +
// latency) disk → transactional backend (Tinca or Classic or a §3 ablation
// variant).
#pragma once

#include <memory>
#include <string>

#include "backend/classic_backend.h"
#include "backend/nvlog_backend.h"
#include "backend/nvlog_stacked_backend.h"
#include "backend/sharded_backend.h"
#include "backend/tinca_backend.h"
#include "backend/txn_backend.h"
#include "backend/ubj_backend.h"
#include "blockdev/faulty_block_device.h"
#include "blockdev/latency_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/expect.h"
#include "common/latency.h"
#include "obs/metrics.h"

namespace tinca::backend {

/// Which stack to assemble.
enum class StackKind : std::uint8_t {
  kTinca,              ///< Tinca transactional NVM cache
  kClassic,            ///< Ext4+JBD2 over Flashcache (the paper's baseline)
  kClassicNoJournal,   ///< "Ext4 without journaling" ablation
  kUbj,                ///< UBJ unioned buffer cache + journal (§5.4.4)
  kShardedTinca,       ///< N-way sharded concurrent Tinca front-end
  kNvLogClassic,       ///< NVM write-ahead log tier over journal-less Classic
  kNvLogTinca,         ///< log tier draining into a full TincaCache (§16)
  kNvLogSharded,       ///< log tier + shard-affine drains into ShardedTinca
};

/// Assembly parameters.
struct StackConfig {
  StackKind kind = StackKind::kTinca;
  /// NVM cache size in bytes (the paper's 8 GB, scaled).
  std::uint64_t nvm_bytes = 64ull << 20;
  /// Backing disk size in 4 KB blocks (the paper's 128 GB SSD, scaled).
  std::uint64_t disk_blocks = 1ull << 17;
  /// NVM technology ("pcm" is the paper default; "nvdimm", "sttram", "reram").
  std::string nvm_profile = "pcm";
  /// Disk model ("ssd" default, "hdd" for §5.4.1).
  std::string disk_profile = "ssd";
  /// Whether disk writes queue behind the device (background cleaners) or
  /// stall the caller.  Async matches the measured systems; sync is simpler
  /// for unit tests.
  blockdev::WritePolicy disk_writes = blockdev::WritePolicy::kAsync;
  core::TincaConfig tinca;
  classic::ClassicConfig classic;
  ubj::UbjConfig ubj;
  /// NvLog tier + inner store for kNvLogClassic (`nvlog.inner` is the inner
  /// Classic config; the top-level `classic` field is ignored there).
  NvLogStackConfig nvlog;
  /// NvLog tier over the real stacks for kNvLogTinca / kNvLogSharded
  /// (DESIGN.md §16).  The inner cache config and shard count are copied
  /// from the top-level `tinca` / `tinca_shards` fields at assembly time.
  NvLogStackedConfig nvlog_stacked;
  /// Shard count for kShardedTinca (per-shard config comes from `tinca`).
  std::uint32_t tinca_shards = 4;
  /// Disk fault schedule (DESIGN.md §9).  The defaults inject nothing, so
  /// the decorator is a transparent pass-through unless rates are raised or
  /// faults are scripted through Stack::faulty_disk().
  blockdev::FaultConfig disk_faults{};
  /// Retry/backoff policy applied to every backend's disk I/O (copied into
  /// the selected backend's own config at assembly time).
  blockdev::RetryPolicy disk_retry{};
};

/// The assembled stack; owns every layer.
class Stack {
 public:
  explicit Stack(const StackConfig& cfg)
      : cfg_(cfg),
        nvm_(cfg.nvm_bytes, nvm_profile_by_name(cfg.nvm_profile), clock_),
        mem_(cfg.disk_blocks),
        // Device chain: mem ← fault injection ← latency model.  A failed
        // attempt costs time (the latency layer charges it) but never
        // reaches mem, so blocks_written counts only landed writes and the
        // write accounting below stays exact.
        faulty_(mem_, cfg.disk_faults, &clock_, &nvm_.injector),
        disk_(faulty_, disk_profile_by_name(cfg.disk_profile), clock_,
              cfg.disk_writes) {
    switch (cfg.kind) {
      case StackKind::kTinca: {
        core::TincaConfig c = cfg.tinca;
        c.io = cfg.disk_retry;
        backend_ = TincaBackend::format(nvm_, disk_, c);
        break;
      }
      case StackKind::kClassic: {
        classic::ClassicConfig c = cfg.classic;
        c.journaling = true;
        c.cache.io = cfg.disk_retry;
        backend_ = ClassicBackend::format(nvm_, disk_, c);
        break;
      }
      case StackKind::kClassicNoJournal: {
        classic::ClassicConfig c = cfg.classic;
        c.journaling = false;
        c.cache.io = cfg.disk_retry;
        backend_ = ClassicBackend::format(nvm_, disk_, c);
        break;
      }
      case StackKind::kUbj: {
        ubj::UbjConfig c = cfg.ubj;
        c.io = cfg.disk_retry;
        backend_ = UbjBackend::format(nvm_, disk_, c);
        break;
      }
      case StackKind::kShardedTinca: {
        shard::ShardedConfig s;
        s.num_shards = cfg.tinca_shards;
        s.shard = cfg.tinca;
        s.shard.io = cfg.disk_retry;
        backend_ = ShardedBackend::format(nvm_, disk_, s);
        break;
      }
      case StackKind::kNvLogClassic: {
        NvLogStackConfig c = cfg.nvlog;
        c.inner.cache.io = cfg.disk_retry;
        backend_ = NvLogBackend::format(nvm_, disk_, c);
        break;
      }
      case StackKind::kNvLogTinca:
      case StackKind::kNvLogSharded: {
        NvLogStackedConfig c = cfg.nvlog_stacked;
        c.inner = cfg.kind == StackKind::kNvLogSharded ? NvLogInner::kSharded
                                                       : NvLogInner::kTinca;
        c.tinca = cfg.tinca;
        c.tinca.io = cfg.disk_retry;
        c.shards = cfg.tinca_shards;
        backend_ = NvLogStackedBackend::format(nvm_, disk_, c);
        break;
      }
    }
  }

  [[nodiscard]] sim::SimClock& clock() { return clock_; }
  [[nodiscard]] nvm::NvmDevice& nvm() { return nvm_; }
  [[nodiscard]] blockdev::BlockDevice& disk() { return disk_; }

  /// The fault-injection layer, for scripting faults (mark_bad,
  /// fail_next_writes, tear_write_after) and reading FaultStats.
  [[nodiscard]] blockdev::FaultyBlockDevice& faulty_disk() { return faulty_; }
  [[nodiscard]] TxnBackend& backend() { return *backend_; }
  [[nodiscard]] const StackConfig& config() const { return cfg_; }

  /// Total cache-line flushes issued so far.
  [[nodiscard]] std::uint64_t clflush_count() const {
    return nvm_.stats().clflush;
  }

  /// Total blocks written to the backing disk so far.
  [[nodiscard]] std::uint64_t disk_blocks_written() const {
    return disk_.stats().blocks_written;
  }

  /// Human-readable stack name.
  [[nodiscard]] std::string name() const { return backend_->name(); }

  // --- Observability (src/obs/) --------------------------------------------

  /// Enable per-op span recording on every instrumented layer.
  void enable_tracing(bool on = true) { backend_->enable_tracing(on); }

  /// Attach a Chrome-trace sink to every tracer in the stack.
  void attach_trace_sink(obs::TraceSink* sink) {
    backend_->attach_trace_sink(sink);
  }

  /// Register the whole stack into `reg`: device counters (nvm.*, disk.*),
  /// the virtual clock, and every backend layer's metrics.  The registry
  /// must not outlive this stack.
  void register_metrics(obs::MetricsRegistry& reg) {
    reg.add_counter("nvm.stores", &nvm_.stats().stores);
    reg.add_counter("nvm.bytes_stored", &nvm_.stats().bytes_stored);
    reg.add_counter("nvm.clflush", &nvm_.stats().clflush);
    reg.add_counter("nvm.sfence", &nvm_.stats().sfence);
    reg.add_counter("nvm.lines_loaded", &nvm_.stats().lines_loaded);
    reg.add_counter("nvm.atomic8", &nvm_.stats().atomic8);
    reg.add_counter("nvm.atomic16", &nvm_.stats().atomic16);
    reg.add_counter("disk.blocks_written", &disk_.stats().blocks_written);
    reg.add_counter("disk.blocks_read", &disk_.stats().blocks_read);
    reg.add_counter("disk.seeks", &disk_.stats().seeks);
    const blockdev::FaultStats& f = faulty_.fault_stats();
    reg.add_counter("disk.faults.transient_read_errors",
                    &f.transient_read_errors);
    reg.add_counter("disk.faults.transient_write_errors",
                    &f.transient_write_errors);
    reg.add_counter("disk.faults.bad_sectors", &f.bad_sectors);
    reg.add_counter("disk.faults.bad_sector_errors", &f.bad_sector_errors);
    reg.add_counter("disk.faults.torn_writes", &f.torn_writes);
    reg.add_counter("disk.faults.latency_spikes", &f.latency_spikes);
    reg.add_gauge("sim.now_ns", [this] { return clock_.now(); });
    // Media-endurance view (Table 1: PCM/ReRAM cells endure 10^6–10^8
    // writes): the hottest line, the average, and their ratio — a skew of
    // 100 (= 1.00x) means perfectly levelled wear.
    reg.add_gauge("nvm.wear_max_line_writes",
                  [this] { return nvm_.wear().max_line_writes; });
    reg.add_gauge("nvm.wear_mean_line_writes", [this] {
      return static_cast<std::uint64_t>(nvm_.wear().mean_line_writes + 0.5);
    });
    reg.add_gauge("nvm.wear_skew_x100", [this] {
      const nvm::NvmDevice::WearReport w = nvm_.wear();
      return w.mean_line_writes <= 0.0
                 ? std::uint64_t{0}
                 : static_cast<std::uint64_t>(
                       100.0 * static_cast<double>(w.max_line_writes) /
                       w.mean_line_writes);
    });
    backend_->register_metrics(reg, "");
  }

  /// Debug-build cross-check of the write-path accounting: for the Tinca
  /// stacks every disk write is either a dirty write-back or a foreground
  /// write-through write, so the cache counters must exactly explain the
  /// device counter.  No-op for Classic/UBJ (journal and checkpoint writes
  /// are additional disk traffic by design) and in release builds.
  void assert_write_accounting() {
#ifndef NDEBUG
    std::uint64_t cache_writes = 0;
    switch (cfg_.kind) {
      case StackKind::kTinca: {
        const core::TincaCacheStats& s =
            static_cast<TincaBackend&>(*backend_).cache().stats();
        cache_writes = s.dirty_writebacks + s.writethrough_writes;
        break;
      }
      case StackKind::kShardedTinca: {
        const core::TincaCacheStats s =
            static_cast<ShardedBackend&>(*backend_).sharded().aggregated_stats();
        cache_writes = s.dirty_writebacks + s.writethrough_writes;
        break;
      }
      default:
        return;
    }
    TINCA_ENSURE(cache_writes == disk_blocks_written(),
                 "write accounting mismatch: cache-side writeback counters "
                 "disagree with the disk's blocks_written");
#endif
  }

 private:
  StackConfig cfg_;
  sim::SimClock clock_;
  nvm::NvmDevice nvm_;
  blockdev::MemBlockDevice mem_;
  blockdev::FaultyBlockDevice faulty_;
  blockdev::LatencyBlockDevice disk_;
  std::unique_ptr<TxnBackend> backend_;
};

}  // namespace tinca::backend
