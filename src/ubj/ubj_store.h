// UBJ-style unioned buffer cache + journal (Lee, Bahn, Noh — FAST'13),
// the design the paper compares against qualitatively in §5.4.4.
//
// UBJ treats NVM main memory as both the buffer cache and the journal:
//
//   * writes land in NVM buffer-cache blocks in place (no DRAM staging);
//   * commit is **commit-in-place**: the transaction's blocks are *frozen* —
//     a state change, not a copy — and become the journal;
//   * writing to a frozen block cannot overwrite it (it is a journal copy):
//     UBJ performs a **memcpy to a fresh block on the write's critical
//     path**, which the paper singles out as UBJ's first weakness;
//   * **checkpointing is transaction-granular**: to free NVM, whole
//     committed transactions are written to disk and unfrozen — the paper's
//     second criticism (a large transaction blocks for many disk writes),
//     and stale frozen copies superseded by newer transactions are still
//     carried until their transaction checkpoints.
//
// The model reuses this repository's 16 B entry format with a per-entry
// transaction sequence number and a persistent last-committed-sequence field
// that publishes commits atomically (UBJ's commit record).  Recovery keeps
// the newest frozen copy of every block whose sequence is committed and
// discards everything else.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blockdev/block_device.h"
#include "cleaner/cleaner.h"
#include "common/histogram.h"
#include "nvm/nvm_device.h"
#include "obs/trace.h"
#include "tinca/slot_lru.h"

namespace tinca::ubj {

/// UBJ tunables.
struct UbjConfig {
  /// Checkpoint when the free fraction of NVM blocks drops below this.
  double checkpoint_low_water = 0.15;
  /// Committed transactions checkpointed per trigger (batch size).
  std::uint32_t checkpoint_txn_batch = 8;
  /// Modelled software overhead per operation.
  std::uint64_t cpu_op_ns = 150;
  /// Retry/backoff policy for disk I/O (DESIGN.md §9).
  blockdev::RetryPolicy io{};
  /// Background cleaner (DESIGN.md §11).  Keys are transaction sequence
  /// numbers: one retired key = one whole transaction checkpointed off the
  /// commit path (UBJ checkpointing stays txn-granular and FIFO).
  cleaner::CleanerConfig cleaner{};
};

/// Counters.
struct UbjStats {
  std::uint64_t txns_committed = 0;
  std::uint64_t blocks_committed = 0;
  std::uint64_t frozen_cow_copies = 0;   ///< memcpy-on-critical-path events
  std::uint64_t checkpointed_txns = 0;
  std::uint64_t checkpoint_writes = 0;   ///< disk writes from checkpointing
  std::uint64_t stale_checkpoint_writes = 0;  ///< superseded copies written
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t recovered_entries = 0;
  std::uint64_t discarded_uncommitted = 0;
  std::uint64_t io_retries = 0;          ///< disk retries after kTransient
  std::uint64_t io_quarantined = 0;      ///< blocks quarantined (bad sector)
  std::uint64_t io_degraded_writes = 0;  ///< eager checkpoint writes while degraded
  Histogram blocks_per_txn;
};

/// The UBJ store: NVM buffer cache with in-place commit and txn checkpoints.
class UbjStore : private cleaner::CleanerClient {
 public:
  static std::unique_ptr<UbjStore> format(nvm::NvmDevice& nvm,
                                          blockdev::BlockDevice& disk,
                                          UbjConfig cfg = {});

  static std::unique_ptr<UbjStore> recover(nvm::NvmDevice& nvm,
                                           blockdev::BlockDevice& disk,
                                           UbjConfig cfg = {});

  /// Stage + commit a transaction of whole-block updates; on return it is
  /// durable (all blocks frozen, sequence published).
  void commit_txn(
      const std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>& blocks);

  /// Read a block: working copy, else newest frozen copy, else disk.
  void read_block(std::uint64_t disk_blkno, std::span<std::byte> dst);

  /// Checkpoint everything (unmount path).
  void checkpoint_all();

  // --- Background cleaner (DESIGN.md §11) ----------------------------------

  /// One cleaner pacing quantum; no-op without a configured cleaner.
  void cleaner_step() {
    if (cleaner_) cleaner_->step();
  }

  /// The cleaner instance, or nullptr when mode is kDisabled.
  [[nodiscard]] cleaner::Cleaner* cleaner() { return cleaner_.get(); }

  /// Enable/disable span recording for this store *and* its cleaner.
  void enable_tracing(bool on = true) {
    trace_.enable(on);
    if (cleaner_) cleaner_->tracer().enable(on);
  }

  /// Attach a Chrome-trace sink to this store *and* its cleaner.
  void attach_trace_sink(obs::TraceSink* sink) {
    trace_.attach_sink(sink);
    if (cleaner_) cleaner_->tracer().attach_sink(sink);
  }

  [[nodiscard]] bool cached(std::uint64_t disk_blkno) const;
  [[nodiscard]] std::uint64_t capacity_blocks() const { return num_blocks_; }
  [[nodiscard]] std::uint64_t frozen_blocks() const { return frozen_count_; }
  [[nodiscard]] const UbjStats& stats() const { return stats_; }

  /// Blocks quarantined after a permanent bad sector.  Their frozen NVM
  /// slots stay pinned forever (UBJ's checkpoint cannot retire them), so
  /// quarantine shows up as capacity degradation.
  [[nodiscard]] std::size_t quarantined_blocks() const {
    return quarantine_.size();
  }

  /// Whether a permanent disk fault has switched the store to eager
  /// (write-through-like) checkpointing.
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Trace spans: ubj.freeze (commit-in-place) / ubj.checkpoint /
  /// ubj.recovery (virtual-time; disabled by default).
  [[nodiscard]] obs::Tracer& tracer() { return trace_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return trace_; }

  /// Register the UBJ counters, gauges and span histograms under `prefix`.
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const;

 private:
  UbjStore(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk, UbjConfig cfg);

  struct Slot {
    bool valid = false;
    bool frozen = false;
    std::uint64_t disk_blkno = 0;
    std::uint32_t seq = 0;  ///< committing transaction sequence
  };

  void format_media();
  void run_recovery();
  void persist_slot(std::uint32_t slot);
  void publish_seq(std::uint64_t seq);
  std::uint32_t allocate_slot();
  /// Checkpoint the oldest outstanding transaction (always consumes the
  /// front record); retry backoff spent on disk is charged to `*io_retries`.
  void checkpoint_front(std::uint64_t* io_retries);
  void checkpoint_batch();
  void evict_one_clean();

  // CleanerClient: keys are txn sequence numbers, cleaned strictly FIFO.
  cleaner::CleanOutcome cleaner_clean(std::uint64_t key,
                                      std::uint64_t* io_retries) override;
  [[nodiscard]] std::uint64_t cleaner_dirty_blocks() const override;
  [[nodiscard]] std::uint64_t cleaner_capacity_blocks() const override;
  void cleaner_collect(std::uint32_t max,
                       std::vector<std::uint64_t>& out) override;

  /// Disk I/O with the configured retry policy (traced per retry); the 3-arg
  /// write charges retries to `retry_counter` (the cleaner's or our own).
  blockdev::IoStatus disk_write(std::uint64_t blkno,
                                std::span<const std::byte> buf);
  blockdev::IoStatus disk_write(std::uint64_t blkno,
                                std::span<const std::byte> buf,
                                std::uint64_t* retry_counter);
  blockdev::IoStatus disk_read(std::uint64_t blkno, std::span<std::byte> buf);
  void note_bad_block(std::uint64_t disk_blkno);

  [[nodiscard]] std::uint64_t entry_off(std::uint32_t slot) const;
  [[nodiscard]] std::uint64_t data_off(std::uint32_t slot) const;

  nvm::NvmDevice& nvm_;
  blockdev::BlockDevice& disk_;
  UbjConfig cfg_;
  std::uint64_t num_blocks_ = 0;
  std::uint64_t entry_table_off_ = 0;
  std::uint64_t data_off_ = 0;

  std::vector<Slot> slots_;
  /// Latest (working or newest-frozen) slot per disk block.
  std::unordered_map<std::uint64_t, std::uint32_t> latest_;
  core::SlotLru lru_;          ///< over clean, unfrozen slots only
  core::FreeMonitor free_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t committed_seq_ = 0;
  std::uint64_t frozen_count_ = 0;

  struct TxnRecord {
    std::uint64_t seq;
    std::vector<std::uint32_t> slots;
  };
  std::deque<TxnRecord> unchkpt_;

  UbjStats stats_;
  /// Disk blocks that hit a permanent bad sector (DRAM-only: their slots
  /// stay frozen in NVM, so a restart re-discovers them at checkpoint time).
  std::unordered_set<std::uint64_t> quarantine_;
  bool degraded_ = false;

  obs::Tracer trace_;  ///< virtual-time tracer (nvm_'s clock)
  obs::Tracer::Site* ts_freeze_;
  obs::Tracer::Site* ts_checkpoint_;
  obs::Tracer::Site* ts_recovery_;
  obs::Tracer::Site* ts_io_retry_;

  /// Background cleaner; null when cfg_.cleaner.mode is kDisabled.  Last
  /// member: it references this store as its client.
  std::unique_ptr<cleaner::Cleaner> cleaner_;
};

}  // namespace tinca::ubj
