#include "ubj/ubj_store.h"

#include <algorithm>
#include <map>

#include "common/bytes.h"
#include "common/expect.h"
#include "obs/metrics.h"

namespace tinca::ubj {

namespace {
constexpr std::uint64_t kBlockSize = blockdev::kBlockSize;
constexpr std::uint64_t kMagic = 0x55424A2D554E494FULL;  // "UBJ-UNIO"
constexpr std::uint64_t kMagicOff = 0;
constexpr std::uint64_t kNumBlocksOff = 16;
constexpr std::uint64_t kCommittedSeqOff = 64;  // own cache line
constexpr std::uint64_t kSuperBytes = kBlockSize;

constexpr std::uint8_t kFlagValid = 0x1;
constexpr std::uint8_t kFlagFrozen = 0x2;
}  // namespace

UbjStore::UbjStore(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
                   UbjConfig cfg)
    : nvm_(nvm),
      disk_(disk),
      cfg_(cfg),
      lru_(0),
      free_(0),
      trace_(nvm.clock(), /*tid=*/0, "ubj."),
      ts_freeze_(trace_.site("freeze")),
      ts_checkpoint_(trace_.site("checkpoint")),
      ts_recovery_(trace_.site("recovery")),
      ts_io_retry_(trace_.site("io_retry")) {
  // Geometry: superblock | 16 B entry per block | 4 KB data per block.
  const std::uint64_t usable = nvm_.size() - kSuperBytes;
  num_blocks_ = usable / (kBlockSize + 16);
  // Shrink until the 4 KB-aligned table fits.
  auto table_bytes = [&](std::uint64_t n) {
    return (n * 16 + kBlockSize - 1) / kBlockSize * kBlockSize;
  };
  while (num_blocks_ > 0 &&
         kSuperBytes + table_bytes(num_blocks_) + num_blocks_ * kBlockSize >
             nvm_.size())
    --num_blocks_;
  TINCA_EXPECT(num_blocks_ >= 8, "NVM too small for a UBJ buffer cache");
  entry_table_off_ = kSuperBytes;
  data_off_ = kSuperBytes + table_bytes(num_blocks_);
  slots_.resize(num_blocks_);
  lru_ = core::SlotLru(static_cast<std::uint32_t>(num_blocks_));
  free_ = core::FreeMonitor(static_cast<std::uint32_t>(num_blocks_));
  if (cfg_.cleaner.mode != cleaner::CleanerMode::kDisabled)
    cleaner_ = std::make_unique<cleaner::Cleaner>(
        cfg_.cleaner, static_cast<cleaner::CleanerClient&>(*this),
        nvm_.clock());
}

std::uint64_t UbjStore::entry_off(std::uint32_t slot) const {
  return entry_table_off_ + static_cast<std::uint64_t>(slot) * 16;
}

std::uint64_t UbjStore::data_off(std::uint32_t slot) const {
  return data_off_ + static_cast<std::uint64_t>(slot) * kBlockSize;
}

std::unique_ptr<UbjStore> UbjStore::format(nvm::NvmDevice& nvm,
                                           blockdev::BlockDevice& disk,
                                           UbjConfig cfg) {
  auto store = std::unique_ptr<UbjStore>(new UbjStore(nvm, disk, cfg));
  store->format_media();
  return store;
}

std::unique_ptr<UbjStore> UbjStore::recover(nvm::NvmDevice& nvm,
                                            blockdev::BlockDevice& disk,
                                            UbjConfig cfg) {
  auto store = std::unique_ptr<UbjStore>(new UbjStore(nvm, disk, cfg));
  store->run_recovery();
  return store;
}

void UbjStore::format_media() {
  nvm_.atomic_store8(kMagicOff, kMagic);
  nvm_.atomic_store8(kNumBlocksOff, num_blocks_);
  nvm_.atomic_store8(kCommittedSeqOff, 0);
  nvm_.persist(0, kSuperBytes);
  const std::vector<std::byte> zeros(kBlockSize, std::byte{0});
  for (std::uint64_t off = entry_table_off_; off < data_off_; off += kBlockSize) {
    nvm_.store(off, zeros);
    nvm_.clflush(off, kBlockSize);
  }
  nvm_.sfence();
}

void UbjStore::persist_slot(std::uint32_t slot) {
  const Slot& s = slots_[slot];
  std::array<std::byte, 16> raw{};
  std::uint8_t flags = 0;
  if (s.valid) flags |= kFlagValid;
  if (s.frozen) flags |= kFlagFrozen;
  raw[0] = static_cast<std::byte>(flags);
  store_le(raw.data() + 1, s.disk_blkno, 7);
  store_le(raw.data() + 8, s.seq, 4);
  nvm_.atomic_store16(entry_off(slot), raw);
  nvm_.persist(entry_off(slot), 16);
}

void UbjStore::publish_seq(std::uint64_t seq) {
  committed_seq_ = seq;
  nvm_.atomic_store8(kCommittedSeqOff, seq);
  nvm_.persist(kCommittedSeqOff, 8);
}

void UbjStore::evict_one_clean() {
  const std::uint32_t victim = lru_.lru();
  TINCA_ENSURE(victim != core::SlotLru::kNil,
               "UBJ wedged: no clean block to evict");
  Slot& s = slots_[victim];
  TINCA_ENSURE(s.valid && !s.frozen, "LRU held a non-clean slot");
  auto it = latest_.find(s.disk_blkno);
  if (it != latest_.end() && it->second == victim) latest_.erase(it);
  s.valid = false;
  persist_slot(victim);
  lru_.remove(victim);
  free_.give(victim);
  ++stats_.evictions;
}

std::uint32_t UbjStore::allocate_slot() {
  while (!free_.any()) {
    if (!unchkpt_.empty()) {
      // With a cleaner, let it retire queued transactions first (its drain
      // pops front records just like checkpoint_batch, so this terminates);
      // fall back to an inline batch when the cleaner made no progress.
      if (cleaner_ && cleaner_->drain_blocking() > 0) continue;
      checkpoint_batch();
    } else {
      evict_one_clean();
    }
  }
  return free_.take();
}

blockdev::IoStatus UbjStore::disk_write(std::uint64_t blkno,
                                        std::span<const std::byte> buf,
                                        std::uint64_t* retry_counter) {
  blockdev::IoStatus st = disk_.write(blkno, buf);
  std::uint64_t wait = cfg_.io.backoff_ns;
  for (std::uint32_t attempt = 0;
       st == blockdev::IoStatus::kTransient && attempt < cfg_.io.max_retries;
       ++attempt) {
    TINCA_TRACE_SPAN(trace_, ts_io_retry_);
    nvm_.clock().advance(wait);
    wait *= cfg_.io.backoff_mult == 0 ? 1 : cfg_.io.backoff_mult;
    ++*retry_counter;
    st = disk_.write(blkno, buf);
  }
  return st;
}

blockdev::IoStatus UbjStore::disk_write(std::uint64_t blkno,
                                        std::span<const std::byte> buf) {
  return disk_write(blkno, buf, &stats_.io_retries);
}

blockdev::IoStatus UbjStore::disk_read(std::uint64_t blkno,
                                       std::span<std::byte> buf) {
  blockdev::IoStatus st = disk_.read(blkno, buf);
  std::uint64_t wait = cfg_.io.backoff_ns;
  for (std::uint32_t attempt = 0;
       st == blockdev::IoStatus::kTransient && attempt < cfg_.io.max_retries;
       ++attempt) {
    TINCA_TRACE_SPAN(trace_, ts_io_retry_);
    nvm_.clock().advance(wait);
    wait *= cfg_.io.backoff_mult == 0 ? 1 : cfg_.io.backoff_mult;
    ++stats_.io_retries;
    st = disk_.read(blkno, buf);
  }
  return st;
}

void UbjStore::note_bad_block(std::uint64_t disk_blkno) {
  if (quarantine_.insert(disk_blkno).second) ++stats_.io_quarantined;
  degraded_ = true;
}

// Checkpoint exactly the oldest outstanding transaction.  Crash-safe in the
// same way as Tinca's cleaner: each block's disk write completes before its
// slot is unfrozen (persist_slot), so a cut mid-checkpoint leaves the
// remaining blocks frozen and recovery simply re-checkpoints them.
void UbjStore::checkpoint_front(std::uint64_t* io_retries) {
  TINCA_EXPECT(!unchkpt_.empty(), "checkpoint with nothing outstanding");
  std::vector<std::byte> buf(kBlockSize);
  TxnRecord rec = std::move(unchkpt_.front());
  unchkpt_.pop_front();
  // Transaction-granular checkpoint: every frozen block of the txn goes
  // to disk in one burst — the §5.4.4 "takes longer for multiple blocks"
  // behaviour.
  for (std::uint32_t slot : rec.slots) {
    Slot& s = slots_[slot];
    if (!s.valid || !s.frozen || s.seq != rec.seq) continue;  // re-frozen
    // A block that cannot reach disk (quarantined, or discovering a bad
    // sector right now) keeps its slot frozen forever: the journal copy
    // is the only durable one, so the slot is pinned and NVM capacity
    // degrades — UBJ has no other home for the data.
    if (quarantine_.contains(s.disk_blkno)) continue;
    if (!cfg_.cleaner.sabotage_skip_write) {
      nvm_.load(data_off(slot), buf);
      nvm_.injector.point();  // CP: cut mid-checkpoint, before the write
      const blockdev::IoStatus st = disk_write(s.disk_blkno, buf, io_retries);
      if (st != blockdev::IoStatus::kOk) {
        if (st == blockdev::IoStatus::kBadSector) note_bad_block(s.disk_blkno);
        continue;
      }
      ++stats_.checkpoint_writes;
      if (degraded_) ++stats_.io_degraded_writes;
      nvm_.injector.point();  // CP: durable on disk, slot still frozen
    }
    // Sabotage mode (oracle self-test) unfreezes WITHOUT the disk write.
    auto it = latest_.find(s.disk_blkno);
    if (it != latest_.end() && it->second == slot) {
      // Newest copy: unfreeze, keep cached clean.
      s.frozen = false;
      persist_slot(slot);
      lru_.push_mru(slot);
    } else {
      // Superseded by a newer transaction: the write above was stale.
      ++stats_.stale_checkpoint_writes;
      s.valid = false;
      s.frozen = false;
      persist_slot(slot);
      free_.give(slot);
    }
    --frozen_count_;
  }
  ++stats_.checkpointed_txns;
}

void UbjStore::checkpoint_batch() {
  TINCA_TRACE_SPAN(trace_, ts_checkpoint_);
  TINCA_EXPECT(!unchkpt_.empty(), "checkpoint with nothing outstanding");
  for (std::uint32_t i = 0;
       i < cfg_.checkpoint_txn_batch && !unchkpt_.empty(); ++i)
    checkpoint_front(&stats_.io_retries);
}

// ---------------------------------------------------------------------------
// CleanerClient (DESIGN.md §11): keys are txn sequence numbers, FIFO only
// ---------------------------------------------------------------------------

cleaner::CleanOutcome UbjStore::cleaner_clean(std::uint64_t key,
                                              std::uint64_t* io_retries) {
  if (unchkpt_.empty() || unchkpt_.front().seq > key)
    return cleaner::CleanOutcome::kStale;  // already checkpointed inline
  if (unchkpt_.front().seq < key)
    // Not this txn's turn yet — UBJ checkpoints strictly in commit order.
    // Requeue; it retires once the earlier sequences have drained.
    return cleaner::CleanOutcome::kPinned;
  checkpoint_front(io_retries);
  return cleaner::CleanOutcome::kRetired;
}

std::uint64_t UbjStore::cleaner_dirty_blocks() const { return frozen_count_; }

std::uint64_t UbjStore::cleaner_capacity_blocks() const { return num_blocks_; }

void UbjStore::cleaner_collect(std::uint32_t max,
                               std::vector<std::uint64_t>& out) {
  for (const TxnRecord& rec : unchkpt_) {
    if (out.size() >= max) break;
    if (!cleaner_->pending(rec.seq)) out.push_back(rec.seq);
  }
}

void UbjStore::checkpoint_all() {
  while (!unchkpt_.empty()) checkpoint_batch();
}

void UbjStore::commit_txn(
    const std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>& blocks) {
  TINCA_TRACE_SPAN(trace_, ts_freeze_);
  if (blocks.empty()) {
    ++stats_.txns_committed;
    return;
  }
  TINCA_EXPECT(blocks.size() <= num_blocks_ / 3,
               "transaction exceeds UBJ's committable size");
  // Space pressure: checkpoint old transactions before taking new blocks.
  const auto low_water = static_cast<std::uint64_t>(
      cfg_.checkpoint_low_water * static_cast<double>(num_blocks_));
  while (free_.count() < blocks.size() + low_water && !unchkpt_.empty()) {
    // Prefer the cleaner's drain (it pops the same front records, so every
    // iteration still consumes at least one outstanding transaction).
    if (cleaner_ && cleaner_->drain_blocking() > 0) continue;
    checkpoint_batch();
  }

  TxnRecord rec;
  rec.seq = next_seq_;
  std::vector<std::byte> scratch(kBlockSize);

  for (const auto& [blkno, data] : blocks) {
    TINCA_EXPECT(data.size() == kBlockSize, "UBJ commits whole 4 KB blocks");
    nvm_.clock().advance(cfg_.cpu_op_ns);
    nvm_.injector.point();  // CP: before this block
    std::uint32_t slot;
    auto it = latest_.find(blkno);
    if (it != latest_.end() && !slots_[it->second].frozen) {
      // In-place update of the working/clean copy (UBJ's fast path).
      slot = it->second;
      ++stats_.write_hits;
      if (lru_.contains(slot)) lru_.remove(slot);  // about to become frozen
      nvm_.store(data_off(slot), data);
      nvm_.persist(data_off(slot), kBlockSize);
    } else if (it != latest_.end()) {
      // Frozen: memcpy to a fresh block on the critical path (§5.4.4).
      ++stats_.write_hits;
      ++stats_.frozen_cow_copies;
      nvm_.load(data_off(it->second), scratch);  // the memcpy's read side
      slot = allocate_slot();
      nvm_.store(data_off(slot), data);
      nvm_.persist(data_off(slot), kBlockSize);
      slots_[slot].disk_blkno = blkno;
      latest_[blkno] = slot;
    } else {
      ++stats_.write_misses;
      slot = allocate_slot();
      nvm_.store(data_off(slot), data);
      nvm_.persist(data_off(slot), kBlockSize);
      slots_[slot].disk_blkno = blkno;
      latest_[blkno] = slot;
    }
    nvm_.injector.point();  // CP: data durable, not yet frozen
    Slot& s = slots_[slot];
    s.valid = true;
    s.frozen = true;
    s.disk_blkno = blkno;
    s.seq = static_cast<std::uint32_t>(rec.seq);
    persist_slot(slot);
    ++frozen_count_;
    rec.slots.push_back(slot);
    nvm_.injector.point();  // CP: block frozen
  }

  // Commit record: the sequence publication makes the freeze set atomic.
  publish_seq(rec.seq);
  nvm_.injector.point();  // CP: transaction durable
  ++next_seq_;
  stats_.blocks_per_txn.record(blocks.size());
  stats_.blocks_committed += blocks.size();
  ++stats_.txns_committed;
  const std::uint64_t seq = rec.seq;
  unchkpt_.push_back(std::move(rec));
  // Nominate the new transaction for background checkpointing: cleaner steps
  // retire it off the commit path, shrinking the frozen set before the next
  // frozen-copy memcpy or space-pressure stall would pay for it.
  if (cleaner_) cleaner_->try_enqueue(seq);

  // Degraded mode (bad sector seen): checkpoint eagerly so every commit is
  // pushed toward disk immediately — UBJ's analogue of forced write-through.
  // With a cleaner the push happens on its budget, not this commit's.
  if (degraded_) {
    if (cleaner_) {
      for (const TxnRecord& r : unchkpt_) cleaner_->try_enqueue(r.seq);
    } else {
      checkpoint_all();
    }
  }
}

void UbjStore::read_block(std::uint64_t disk_blkno, std::span<std::byte> dst) {
  TINCA_EXPECT(dst.size() == kBlockSize, "reads are whole 4 KB blocks");
  nvm_.clock().advance(cfg_.cpu_op_ns);
  auto it = latest_.find(disk_blkno);
  if (it != latest_.end()) {
    ++stats_.read_hits;
    nvm_.load(data_off(it->second), dst);
    if (lru_.contains(it->second)) lru_.touch(it->second);
    return;
  }
  ++stats_.read_misses;
  const blockdev::IoStatus st = disk_read(disk_blkno, dst);
  if (st != blockdev::IoStatus::kOk)
    throw blockdev::IoError("ubj: unrecoverable disk read", disk_blkno, st);
  // Clean fill, unflushed: recovery discards unfrozen entries anyway.
  if (!free_.any() && lru_.lru() == core::SlotLru::kNil) return;  // all frozen
  const std::uint32_t slot = allocate_slot();
  nvm_.store(data_off(slot), dst);
  Slot& s = slots_[slot];
  s.valid = true;
  s.frozen = false;
  s.disk_blkno = disk_blkno;
  s.seq = 0;
  std::array<std::byte, 16> raw{};
  raw[0] = static_cast<std::byte>(kFlagValid);
  store_le(raw.data() + 1, disk_blkno, 7);
  nvm_.atomic_store16(entry_off(slot), raw);
  latest_.emplace(disk_blkno, slot);
  lru_.push_mru(slot);
}

bool UbjStore::cached(std::uint64_t disk_blkno) const {
  return latest_.contains(disk_blkno);
}

void UbjStore::run_recovery() {
  TINCA_TRACE_SPAN(trace_, ts_recovery_);
  TINCA_EXPECT(nvm_.load8(kMagicOff) == kMagic, "not a UBJ device");
  TINCA_EXPECT(nvm_.load8(kNumBlocksOff) == num_blocks_,
               "UBJ geometry changed since format");
  committed_seq_ = nvm_.load8(kCommittedSeqOff);

  std::map<std::uint64_t, std::vector<std::uint32_t>> by_seq;
  for (std::uint32_t slot = 0; slot < num_blocks_; ++slot) {
    std::array<std::byte, 16> raw{};
    nvm_.load(entry_off(slot), raw);
    const auto flags = static_cast<std::uint8_t>(raw[0]);
    Slot& s = slots_[slot];
    if (!(flags & kFlagValid)) continue;
    s.valid = true;
    s.frozen = (flags & kFlagFrozen) != 0;
    s.disk_blkno = load_le(raw.data() + 1, 7);
    s.seq = static_cast<std::uint32_t>(load_le(raw.data() + 8, 4));

    if (!s.frozen || s.seq > committed_seq_) {
      // Working copies and uncommitted freezes evaporate.
      if (s.frozen) ++stats_.discarded_uncommitted;
      s = Slot{};
      std::array<std::byte, 16> zeros{};
      nvm_.atomic_store16(entry_off(slot), zeros);
      nvm_.persist(entry_off(slot), 16);
      continue;
    }
    ++stats_.recovered_entries;
    ++frozen_count_;
    by_seq[s.seq].push_back(slot);
    // Newest frozen copy wins the latest_ map.
    auto [it, fresh] = latest_.emplace(s.disk_blkno, slot);
    if (!fresh && slots_[it->second].seq < s.seq) it->second = slot;
  }

  // Rebuild DRAM structures.
  free_.clear();
  for (std::uint32_t i = num_blocks_; i-- > 0;)
    if (!slots_[i].valid) free_.give(i);
  for (auto& [seq, slot_list] : by_seq) {
    TxnRecord rec;
    rec.seq = seq;
    rec.slots = std::move(slot_list);
    unchkpt_.push_back(std::move(rec));
  }
  next_seq_ = committed_seq_ + 1;
}

void UbjStore::register_metrics(obs::MetricsRegistry& reg,
                                const std::string& prefix) const {
  reg.add_counter(prefix + "txns_committed", &stats_.txns_committed);
  reg.add_counter(prefix + "blocks_committed", &stats_.blocks_committed);
  reg.add_counter(prefix + "frozen_cow_copies", &stats_.frozen_cow_copies);
  reg.add_counter(prefix + "checkpointed_txns", &stats_.checkpointed_txns);
  reg.add_counter(prefix + "checkpoint_writes", &stats_.checkpoint_writes);
  reg.add_counter(prefix + "stale_checkpoint_writes",
                  &stats_.stale_checkpoint_writes);
  reg.add_counter(prefix + "write_hits", &stats_.write_hits);
  reg.add_counter(prefix + "write_misses", &stats_.write_misses);
  reg.add_counter(prefix + "read_hits", &stats_.read_hits);
  reg.add_counter(prefix + "read_misses", &stats_.read_misses);
  reg.add_counter(prefix + "evictions", &stats_.evictions);
  reg.add_counter(prefix + "recovered_entries", &stats_.recovered_entries);
  reg.add_counter(prefix + "discarded_uncommitted",
                  &stats_.discarded_uncommitted);
  reg.add_counter(prefix + "io.retries", &stats_.io_retries);
  reg.add_counter(prefix + "io.quarantined", &stats_.io_quarantined);
  reg.add_counter(prefix + "io.degraded_writes", &stats_.io_degraded_writes);
  reg.add_histogram(prefix + "blocks_per_txn", &stats_.blocks_per_txn);
  reg.add_gauge(prefix + "capacity_blocks", [this] { return capacity_blocks(); });
  reg.add_gauge(prefix + "frozen_blocks", [this] { return frozen_blocks(); });
  if (cleaner_) cleaner_->register_metrics(reg, prefix + "cleaner.");
  trace_.register_into(reg, prefix + "lat.");
}

}  // namespace tinca::ubj
