// Byte-addressable NVM emulation with cache-line-granular persistence.
//
// The paper's prototype puts NVDIMM on the memory bus and reaches it with
// regular stores followed by clflush + sfence (§2.1).  The crash-consistency
// hazard it defends against is precisely: *a store is not durable until its
// cache line has been flushed, and unflushed lines may reach the media in any
// order or not at all*.  NvmDevice reproduces those semantics:
//
//   - `store()` writes into a volatile image and marks the covered 64 B
//     lines dirty (they live in the simulated CPU cache);
//   - `clflush()` copies dirty lines to the persistent image, charging the
//     NVM technology's write latency per line (Table 1 / §5.1 delays);
//   - `crash()` keeps each still-dirty line with an independent coin flip —
//     modelling arbitrary writeback order at the moment of power loss — and
//     then resets the volatile image to the persistent one;
//   - `atomic_store8` / `atomic_store16` model the 8 B native atomic store
//     and LOCK cmpxchg16b (§2.1): they require natural alignment, which also
//     guarantees the value never straddles a line, so it cannot tear.
//
// A device can also be opened as a **sub-range view** (see the view
// constructor): the view shares the root device's media images — so a crash
// of the root is a crash of every view — but carries its own SimClock and
// operation counters.  Views over disjoint ranges may be driven from
// different threads concurrently; that is what the sharded front-end
// (src/shard/) builds on.  The only cross-view shared mutable state is the
// dirty-line count (atomic) and the per-line dirty bits / wear counters,
// which disjoint views never alias.
//
// Latency is charged to a SimClock (see common/sim_clock.h); operation counts
// are accumulated in NvmStats, which the benches report as the paper's
// "normalized quantity of clflush" metric.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/latency.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "nvm/crash.h"

namespace tinca::nvm {

/// Operation counters for one NVM device (or one view of it).
struct NvmStats {
  std::uint64_t stores = 0;          ///< store() calls
  std::uint64_t bytes_stored = 0;    ///< bytes passed to store()/atomics
  std::uint64_t clflush = 0;         ///< cache-line flushes issued
  std::uint64_t sfence = 0;          ///< fences issued
  std::uint64_t lines_loaded = 0;    ///< lines charged on load()
  std::uint64_t atomic8 = 0;         ///< 8 B atomic stores
  std::uint64_t atomic16 = 0;        ///< 16 B atomic stores
  std::uint64_t crashes = 0;         ///< simulated power failures

  /// Difference of two snapshots (for per-phase accounting).
  NvmStats operator-(const NvmStats& rhs) const {
    NvmStats d;
    d.stores = stores - rhs.stores;
    d.bytes_stored = bytes_stored - rhs.bytes_stored;
    d.clflush = clflush - rhs.clflush;
    d.sfence = sfence - rhs.sfence;
    d.lines_loaded = lines_loaded - rhs.lines_loaded;
    d.atomic8 = atomic8 - rhs.atomic8;
    d.atomic16 = atomic16 - rhs.atomic16;
    d.crashes = crashes - rhs.crashes;
    return d;
  }

  /// Sum of two snapshots (aggregating per-shard views).
  NvmStats operator+(const NvmStats& rhs) const {
    NvmStats s;
    s.stores = stores + rhs.stores;
    s.bytes_stored = bytes_stored + rhs.bytes_stored;
    s.clflush = clflush + rhs.clflush;
    s.sfence = sfence + rhs.sfence;
    s.lines_loaded = lines_loaded + rhs.lines_loaded;
    s.atomic8 = atomic8 + rhs.atomic8;
    s.atomic16 = atomic16 + rhs.atomic16;
    s.crashes = crashes + rhs.crashes;
    return s;
  }
};

/// Emulated NVM DIMM, or a sub-range view of one.
class NvmDevice {
  CrashInjector injector_storage_;  ///< backing for `injector` (root devices);
                                    ///< declared first so the public reference
                                    ///< below binds to constructed storage

 public:
  static constexpr std::size_t kLineSize = 64;

  /// Root device; `size` must be a multiple of the cache-line size.
  NvmDevice(std::size_t size, NvmProfile profile, sim::SimClock& clock);

  /// Sub-range view of `parent` covering `[base, base + bytes)`.  The view
  /// shares the parent's media (stores/flushes/crashes are visible both
  /// ways) and its crash injector, but charges latency to `clock` and keeps
  /// its own operation counters.  `base` and `bytes` must be line-aligned.
  NvmDevice(NvmDevice& parent, std::uint64_t base, std::size_t bytes,
            sim::SimClock& clock);

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  /// Device (or view) capacity in bytes.
  [[nodiscard]] std::size_t size() const { return span_; }

  /// Whether this is a sub-range view rather than a root device.
  [[nodiscard]] bool is_view() const { return root_ != this; }

  /// Byte offset of this view within the root device (0 for a root).
  [[nodiscard]] std::uint64_t base() const { return base_; }

  /// Regular store: visible immediately, durable only after clflush+sfence.
  void store(std::uint64_t off, std::span<const std::byte> src);

  /// Load bytes (sees the latest stored values, flushed or not).
  void load(std::uint64_t off, std::span<std::byte> dst) const;

  /// Load without charging read latency — for DRAM-side bookkeeping reads
  /// (e.g. recovery-time full scans are charged; LRU probes are not).
  void load_nocharge(std::uint64_t off, std::span<std::byte> dst) const;

  /// Flush every cache line covering [off, off+len) to the media.
  void clflush(std::uint64_t off, std::size_t len);

  /// Store fence.
  void sfence();

  /// Convenience: clflush + sfence over a range.
  void persist(std::uint64_t off, std::size_t len) {
    clflush(off, len);
    sfence();
  }

  /// 8 B atomic store; `off` must be 8-aligned.
  void atomic_store8(std::uint64_t off, std::uint64_t value);

  /// 16 B atomic store (models LOCK cmpxchg16b); `off` must be 16-aligned.
  void atomic_store16(std::uint64_t off, std::span<const std::byte, 16> value);

  /// 8 B load; `off` must be 8-aligned.  Charged as one line read.
  [[nodiscard]] std::uint64_t load8(std::uint64_t off) const;

  /// Simulated power failure: each dirty (unflushed) line independently
  /// survives with probability `survive_prob` (modelling arbitrary hardware
  /// writeback order), all other dirty lines revert to their last flushed
  /// contents, and the CPU cache empties.  Root device only — power loss
  /// does not respect partition boundaries.
  void crash(Rng& rng, double survive_prob = 0.5);

  /// Power failure in which *no* unflushed line survives (worst case).
  void crash_discard_all();

  /// Number of currently dirty (unflushed) lines on the whole root device —
  /// tests assert on this to prove the implementation flushed everything it
  /// claims to have.
  [[nodiscard]] std::size_t dirty_lines() const {
    return root_->dirty_count_.load(std::memory_order_relaxed);
  }

  /// Wear statistics: media writes per cache line.  PCM/ReRAM endure only
  /// 10^6–10^8 writes per cell (Table 1), which is why the paper counts
  /// write amplification as a *lifetime* problem, not just a speed problem.
  struct WearReport {
    std::uint64_t total_line_writes = 0;  ///< media line writes overall
    std::uint64_t max_line_writes = 0;    ///< hottest line
    double mean_line_writes = 0.0;        ///< average over all lines
    std::uint64_t lines_touched = 0;      ///< lines ever written
  };

  /// Compute the wear report over the whole root device (O(lines)).
  [[nodiscard]] WearReport wear() const;

  /// Wear report restricted to `[off, off + len)` of this device/view —
  /// the hook wear-aware allocators rank candidate regions with.  `off` and
  /// `len` must be line-aligned and inside the view.
  [[nodiscard]] WearReport wear(std::uint64_t off, std::size_t len) const;

  /// Operation counters of this device/view.
  [[nodiscard]] const NvmStats& stats() const { return stats_; }

  /// Technology profile in force.
  [[nodiscard]] const NvmProfile& profile() const { return profile_; }

  /// Virtual clock the device charges to.
  [[nodiscard]] sim::SimClock& clock() { return clock_; }

  /// Crash injector consulted by *clients* at their crash points; views
  /// alias the root's injector so the whole stack above one physical device
  /// shares one sequence of crash points.
  CrashInjector& injector;

 private:
  void mark_dirty(std::size_t line);

  NvmDevice* root_;        ///< self for a root device
  std::uint64_t base_;     ///< offset of this view within the root
  std::size_t span_;       ///< bytes addressable through this handle
  NvmProfile profile_;
  sim::SimClock& clock_;
  std::vector<std::byte> volatile_;    ///< CPU-visible image (root only)
  std::vector<std::byte> persistent_;  ///< media image (root only)
  std::vector<std::uint8_t> dirty_;    ///< per-line dirty bit (root only)
  std::vector<std::uint32_t> line_writes_;  ///< media writes per line (root)
  std::atomic<std::size_t> dirty_count_ = 0;
  NvmStats stats_;
};

}  // namespace tinca::nvm
