#include "nvm/nvm_device.h"

#include <cstring>

#include "common/expect.h"

namespace tinca::nvm {

NvmDevice::NvmDevice(std::size_t size, NvmProfile profile, sim::SimClock& clock)
    : injector(injector_storage_),
      root_(this),
      base_(0),
      span_(size),
      profile_(std::move(profile)),
      clock_(clock),
      volatile_(size),
      persistent_(size),
      dirty_(size / kLineSize, 0),
      line_writes_(size / kLineSize, 0) {
  TINCA_EXPECT(size > 0 && size % kLineSize == 0,
               "NVM size must be a positive multiple of the line size");
}

NvmDevice::NvmDevice(NvmDevice& parent, std::uint64_t base, std::size_t bytes,
                     sim::SimClock& clock)
    : injector(parent.injector),
      root_(parent.root_),
      base_(parent.base_ + base),
      span_(bytes),
      profile_(parent.profile_),
      clock_(clock) {
  TINCA_EXPECT(bytes > 0 && bytes % kLineSize == 0,
               "view size must be a positive multiple of the line size");
  TINCA_EXPECT(base % kLineSize == 0, "view base must be line-aligned");
  TINCA_EXPECT(base + bytes <= parent.span_, "view exceeds parent range");
}

void NvmDevice::mark_dirty(std::size_t line) {
  // Lines are never shared between concurrently driven views (partitions are
  // line-aligned), so the flag itself needs no synchronization; only the
  // device-wide count does.
  if (!root_->dirty_[line]) {
    root_->dirty_[line] = 1;
    root_->dirty_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void NvmDevice::store(std::uint64_t off, std::span<const std::byte> src) {
  TINCA_EXPECT(off + src.size() <= span_, "store out of range");
  const std::uint64_t abs = base_ + off;
  if (injector.point_torn()) {
    // Power cut mid-store: only a prefix of the bytes made it into the CPU
    // cache.  Apply that prefix (marking its lines dirty so crash() applies
    // the usual per-line survival lottery) and die.
    const std::size_t keep = src.size() / 2;
    if (keep > 0) {
      std::memcpy(root_->volatile_.data() + abs, src.data(), keep);
      const std::size_t f = abs / kLineSize;
      const std::size_t l = (abs + keep - 1) / kLineSize;
      for (std::size_t line = f; line <= l; ++line) mark_dirty(line);
    }
    throw CrashException();
  }
  std::memcpy(root_->volatile_.data() + abs, src.data(), src.size());
  const std::size_t first = abs / kLineSize;
  const std::size_t last = (abs + src.size() - 1) / kLineSize;
  for (std::size_t line = first; line <= last; ++line) mark_dirty(line);
  ++stats_.stores;
  stats_.bytes_stored += src.size();
  // Store into the CPU cache: charged at DRAM-bus cost per line touched.
  clock_.advance((last - first + 1) * profile_.base_line_ns);
}

void NvmDevice::load(std::uint64_t off, std::span<std::byte> dst) const {
  TINCA_EXPECT(off + dst.size() <= span_, "load out of range");
  std::memcpy(dst.data(), root_->volatile_.data() + base_ + off, dst.size());
  const std::size_t lines = (dst.size() + kLineSize - 1) / kLineSize;
  auto& self = const_cast<NvmDevice&>(*this);
  self.stats_.lines_loaded += lines;
  self.clock_.advance(lines * profile_.line_read_cost());
}

void NvmDevice::load_nocharge(std::uint64_t off, std::span<std::byte> dst) const {
  TINCA_EXPECT(off + dst.size() <= span_, "load out of range");
  std::memcpy(dst.data(), root_->volatile_.data() + base_ + off, dst.size());
}

void NvmDevice::clflush(std::uint64_t off, std::size_t len) {
  TINCA_EXPECT(len > 0 && off + len <= span_, "clflush out of range");
  const std::uint64_t abs = base_ + off;
  const std::size_t first = abs / kLineSize;
  const std::size_t last = (abs + len - 1) / kLineSize;
  for (std::size_t line = first; line <= last; ++line) {
    ++stats_.clflush;
    if (root_->dirty_[line]) {
      std::memcpy(root_->persistent_.data() + line * kLineSize,
                  root_->volatile_.data() + line * kLineSize, kLineSize);
      root_->dirty_[line] = 0;
      root_->dirty_count_.fetch_sub(1, std::memory_order_relaxed);
      ++root_->line_writes_[line];
      clock_.advance(profile_.line_flush_cost());
    } else {
      // clflush of a clean line still costs the instruction.
      clock_.advance(profile_.clflush_ns);
    }
  }
}

void NvmDevice::sfence() {
  ++stats_.sfence;
  clock_.advance(profile_.sfence_ns);
}

void NvmDevice::atomic_store8(std::uint64_t off, std::uint64_t value) {
  TINCA_EXPECT(off % 8 == 0, "atomic_store8 requires 8-byte alignment");
  TINCA_EXPECT(off + 8 <= span_, "atomic_store8 out of range");
  const std::uint64_t abs = base_ + off;
  std::memcpy(root_->volatile_.data() + abs, &value, 8);
  mark_dirty(abs / kLineSize);
  ++stats_.atomic8;
  stats_.bytes_stored += 8;
  clock_.advance(profile_.base_line_ns);
}

void NvmDevice::atomic_store16(std::uint64_t off,
                               std::span<const std::byte, 16> value) {
  TINCA_EXPECT(off % 16 == 0, "atomic_store16 requires 16-byte alignment");
  TINCA_EXPECT(off + 16 <= span_, "atomic_store16 out of range");
  const std::uint64_t abs = base_ + off;
  std::memcpy(root_->volatile_.data() + abs, value.data(), 16);
  mark_dirty(abs / kLineSize);
  ++stats_.atomic16;
  stats_.bytes_stored += 16;
  // LOCK cmpxchg16b is pricier than a plain store.
  clock_.advance(profile_.base_line_ns + 20);
}

std::uint64_t NvmDevice::load8(std::uint64_t off) const {
  TINCA_EXPECT(off % 8 == 0, "load8 requires 8-byte alignment");
  TINCA_EXPECT(off + 8 <= span_, "load8 out of range");
  std::uint64_t value = 0;
  std::memcpy(&value, root_->volatile_.data() + base_ + off, 8);
  auto& self = const_cast<NvmDevice&>(*this);
  ++self.stats_.lines_loaded;
  self.clock_.advance(profile_.line_read_cost());
  return value;
}

void NvmDevice::crash(Rng& rng, double survive_prob) {
  TINCA_EXPECT(!is_view(), "power failure is a root-device event");
  ++stats_.crashes;
  for (std::size_t line = 0; line < dirty_.size(); ++line) {
    if (!dirty_[line]) continue;
    if (rng.chance(survive_prob)) {
      // This line happened to be written back before power was lost.
      std::memcpy(persistent_.data() + line * kLineSize,
                  volatile_.data() + line * kLineSize, kLineSize);
      ++line_writes_[line];
    }
    dirty_[line] = 0;
  }
  dirty_count_.store(0, std::memory_order_relaxed);
  volatile_ = persistent_;
}

NvmDevice::WearReport NvmDevice::wear() const {
  WearReport report;
  for (const std::uint32_t w : root_->line_writes_) {
    report.total_line_writes += w;
    if (w > report.max_line_writes) report.max_line_writes = w;
    if (w > 0) ++report.lines_touched;
  }
  report.mean_line_writes =
      root_->line_writes_.empty()
          ? 0.0
          : static_cast<double>(report.total_line_writes) /
                static_cast<double>(root_->line_writes_.size());
  return report;
}

NvmDevice::WearReport NvmDevice::wear(std::uint64_t off,
                                      std::size_t len) const {
  TINCA_EXPECT(off % kLineSize == 0 && len % kLineSize == 0,
               "wear range must be line-aligned");
  TINCA_EXPECT(off + len <= span_, "wear range out of bounds");
  WearReport report;
  const std::size_t first = (base_ + off) / kLineSize;
  const std::size_t count = len / kLineSize;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t w = root_->line_writes_[first + i];
    report.total_line_writes += w;
    if (w > report.max_line_writes) report.max_line_writes = w;
    if (w > 0) ++report.lines_touched;
  }
  report.mean_line_writes =
      count == 0 ? 0.0
                 : static_cast<double>(report.total_line_writes) /
                       static_cast<double>(count);
  return report;
}

void NvmDevice::crash_discard_all() {
  TINCA_EXPECT(!is_view(), "power failure is a root-device event");
  ++stats_.crashes;
  std::fill(dirty_.begin(), dirty_.end(), 0);
  dirty_count_.store(0, std::memory_order_relaxed);
  volatile_ = persistent_;
}

}  // namespace tinca::nvm
