#include "nvm/nvm_device.h"

#include <cstring>

#include "common/expect.h"

namespace tinca::nvm {

NvmDevice::NvmDevice(std::size_t size, NvmProfile profile, sim::SimClock& clock)
    : profile_(std::move(profile)),
      clock_(clock),
      volatile_(size),
      persistent_(size),
      dirty_(size / kLineSize, 0),
      line_writes_(size / kLineSize, 0) {
  TINCA_EXPECT(size > 0 && size % kLineSize == 0,
               "NVM size must be a positive multiple of the line size");
}

void NvmDevice::mark_dirty(std::size_t line) {
  if (!dirty_[line]) {
    dirty_[line] = 1;
    ++dirty_count_;
  }
}

void NvmDevice::store(std::uint64_t off, std::span<const std::byte> src) {
  TINCA_EXPECT(off + src.size() <= volatile_.size(), "store out of range");
  std::memcpy(volatile_.data() + off, src.data(), src.size());
  const std::size_t first = off / kLineSize;
  const std::size_t last = (off + src.size() - 1) / kLineSize;
  for (std::size_t line = first; line <= last; ++line) mark_dirty(line);
  ++stats_.stores;
  stats_.bytes_stored += src.size();
  // Store into the CPU cache: charged at DRAM-bus cost per line touched.
  clock_.advance((last - first + 1) * profile_.base_line_ns);
}

void NvmDevice::load(std::uint64_t off, std::span<std::byte> dst) const {
  TINCA_EXPECT(off + dst.size() <= volatile_.size(), "load out of range");
  std::memcpy(dst.data(), volatile_.data() + off, dst.size());
  const std::size_t lines = (dst.size() + kLineSize - 1) / kLineSize;
  auto& self = const_cast<NvmDevice&>(*this);
  self.stats_.lines_loaded += lines;
  self.clock_.advance(lines * profile_.line_read_cost());
}

void NvmDevice::load_nocharge(std::uint64_t off, std::span<std::byte> dst) const {
  TINCA_EXPECT(off + dst.size() <= volatile_.size(), "load out of range");
  std::memcpy(dst.data(), volatile_.data() + off, dst.size());
}

void NvmDevice::clflush(std::uint64_t off, std::size_t len) {
  TINCA_EXPECT(len > 0 && off + len <= volatile_.size(), "clflush out of range");
  const std::size_t first = off / kLineSize;
  const std::size_t last = (off + len - 1) / kLineSize;
  for (std::size_t line = first; line <= last; ++line) {
    ++stats_.clflush;
    if (dirty_[line]) {
      std::memcpy(persistent_.data() + line * kLineSize,
                  volatile_.data() + line * kLineSize, kLineSize);
      dirty_[line] = 0;
      --dirty_count_;
      ++line_writes_[line];
      clock_.advance(profile_.line_flush_cost());
    } else {
      // clflush of a clean line still costs the instruction.
      clock_.advance(profile_.clflush_ns);
    }
  }
}

void NvmDevice::sfence() {
  ++stats_.sfence;
  clock_.advance(profile_.sfence_ns);
}

void NvmDevice::atomic_store8(std::uint64_t off, std::uint64_t value) {
  TINCA_EXPECT(off % 8 == 0, "atomic_store8 requires 8-byte alignment");
  TINCA_EXPECT(off + 8 <= volatile_.size(), "atomic_store8 out of range");
  std::memcpy(volatile_.data() + off, &value, 8);
  mark_dirty(off / kLineSize);
  ++stats_.atomic8;
  stats_.bytes_stored += 8;
  clock_.advance(profile_.base_line_ns);
}

void NvmDevice::atomic_store16(std::uint64_t off,
                               std::span<const std::byte, 16> value) {
  TINCA_EXPECT(off % 16 == 0, "atomic_store16 requires 16-byte alignment");
  TINCA_EXPECT(off + 16 <= volatile_.size(), "atomic_store16 out of range");
  std::memcpy(volatile_.data() + off, value.data(), 16);
  mark_dirty(off / kLineSize);
  ++stats_.atomic16;
  stats_.bytes_stored += 16;
  // LOCK cmpxchg16b is pricier than a plain store.
  clock_.advance(profile_.base_line_ns + 20);
}

std::uint64_t NvmDevice::load8(std::uint64_t off) const {
  TINCA_EXPECT(off % 8 == 0, "load8 requires 8-byte alignment");
  TINCA_EXPECT(off + 8 <= volatile_.size(), "load8 out of range");
  std::uint64_t value = 0;
  std::memcpy(&value, volatile_.data() + off, 8);
  auto& self = const_cast<NvmDevice&>(*this);
  ++self.stats_.lines_loaded;
  self.clock_.advance(profile_.line_read_cost());
  return value;
}

void NvmDevice::crash(Rng& rng, double survive_prob) {
  ++stats_.crashes;
  for (std::size_t line = 0; line < dirty_.size(); ++line) {
    if (!dirty_[line]) continue;
    if (rng.chance(survive_prob)) {
      // This line happened to be written back before power was lost.
      std::memcpy(persistent_.data() + line * kLineSize,
                  volatile_.data() + line * kLineSize, kLineSize);
      ++line_writes_[line];
    }
    dirty_[line] = 0;
  }
  dirty_count_ = 0;
  volatile_ = persistent_;
}

NvmDevice::WearReport NvmDevice::wear() const {
  WearReport report;
  for (const std::uint32_t w : line_writes_) {
    report.total_line_writes += w;
    if (w > report.max_line_writes) report.max_line_writes = w;
    if (w > 0) ++report.lines_touched;
  }
  report.mean_line_writes =
      line_writes_.empty()
          ? 0.0
          : static_cast<double>(report.total_line_writes) /
                static_cast<double>(line_writes_.size());
  return report;
}

void NvmDevice::crash_discard_all() {
  ++stats_.crashes;
  std::fill(dirty_.begin(), dirty_.end(), 0);
  dirty_count_ = 0;
  volatile_ = persistent_;
}

}  // namespace tinca::nvm
