// Crash-injection hooks for persistence-ordering tests.
//
// The paper validates recoverability by "unexpectedly plugging out the power
// cable" and "suddenly killing Tinca's process" (§5.1).  In user space we get
// a strictly stronger tool: the commit path is instrumented with numbered
// crash points, and the test harness sweeps a simulated power failure across
// *every* point (and every subset of surviving unflushed cache lines), then
// runs recovery and checks the consistency invariants.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

namespace tinca::nvm {

/// Thrown to simulate an instantaneous power failure.  Deliberately not
/// derived from std::runtime_error: nothing in the storage stack is allowed
/// to catch-and-continue past it except the test harness.
class CrashException : public std::exception {
 public:
  const char* what() const noexcept override {
    return "simulated power failure";
  }
};

/// Counts instrumented crash points and fires at an armed step.
///
/// Usage: production code calls `point()` at each persistence-ordering
/// boundary.  A disarmed injector only counts (negligible cost).  Tests first
/// run a workload disarmed to learn the step count, then re-run once per step
/// with `arm(step)` to crash exactly there.
///
/// Every field is atomic (relaxed) so that NVM views driven from multiple
/// threads (the sharded front-end) can share one disarmed injector without a
/// data race — point() reads armed_/fire_at_ on every call, concurrently
/// with arm()/disarm() from the harness thread.  Arming is only meaningful
/// for single-threaded sweeps, where step numbering is deterministic;
/// relaxed ordering is enough because no other data is published through
/// these flags.
class CrashInjector {
 public:
  /// Arm the injector: the `step`-th future call to point() (1-based) throws.
  void arm(std::uint64_t step) {
    fire_at_.store(step, std::memory_order_relaxed);
    seen_.store(0, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }

  /// Disarm; point() only counts.
  void disarm() {
    armed_.store(false, std::memory_order_relaxed);
    seen_.store(0, std::memory_order_relaxed);
  }

  /// Crash-point marker.  Throws CrashException when the armed step is hit.
  void point() {
    const std::uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (armed_.load(std::memory_order_relaxed) &&
        n == fire_at_.load(std::memory_order_relaxed))
      throw CrashException();
  }

  /// Number of points passed since the last arm()/disarm().
  [[nodiscard]] std::uint64_t steps_seen() const {
    return seen_.load(std::memory_order_relaxed);
  }

  /// Whether armed.
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> armed_ = false;
  std::atomic<std::uint64_t> fire_at_ = 0;
  std::atomic<std::uint64_t> seen_ = 0;
};

}  // namespace tinca::nvm
