// Crash-injection hooks for persistence-ordering tests.
//
// The paper validates recoverability by "unexpectedly plugging out the power
// cable" and "suddenly killing Tinca's process" (§5.1).  In user space we get
// a strictly stronger tool: the commit path is instrumented with numbered
// crash points, and the test harness sweeps a simulated power failure across
// *every* point (and every subset of surviving unflushed cache lines), then
// runs recovery and checks the consistency invariants.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

namespace tinca::nvm {

/// Thrown to simulate an instantaneous power failure.  Deliberately not
/// derived from std::runtime_error: nothing in the storage stack is allowed
/// to catch-and-continue past it except the test harness.
class CrashException : public std::exception {
 public:
  const char* what() const noexcept override {
    return "simulated power failure";
  }
};

/// Counts instrumented crash points and fires at an armed step.
///
/// Usage: production code calls `point()` at each persistence-ordering
/// boundary.  A disarmed injector only counts (negligible cost).  Tests first
/// run a workload disarmed to learn the step count, then re-run once per step
/// with `arm(step)` to crash exactly there.
///
/// Every field is atomic (relaxed) so that NVM views driven from multiple
/// threads (the sharded front-end) can share one disarmed injector without a
/// data race — point() reads armed_/fire_at_ on every call, concurrently
/// with arm()/disarm() from the harness thread.  Arming is only meaningful
/// for single-threaded sweeps, where step numbering is deterministic;
/// relaxed ordering is enough because no other data is published through
/// these flags.
class CrashInjector {
 public:
  /// Arm the injector: the `step`-th future call to point() (1-based) throws.
  void arm(std::uint64_t step) {
    fire_at_.store(step, std::memory_order_relaxed);
    seen_.store(0, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }

  /// Disarm; point() only counts.
  void disarm() {
    armed_.store(false, std::memory_order_relaxed);
    seen_.store(0, std::memory_order_relaxed);
  }

  /// Crash-point marker.  Throws CrashException when the armed step is hit.
  void point() {
    const std::uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (armed_.load(std::memory_order_relaxed) &&
        n == fire_at_.load(std::memory_order_relaxed))
      throw CrashException();
  }

  /// Number of points passed since the last arm()/disarm().
  [[nodiscard]] std::uint64_t steps_seen() const {
    return seen_.load(std::memory_order_relaxed);
  }

  /// Whether armed.
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  // --- Torn-write points ----------------------------------------------------
  //
  // A power cut can also land *inside* a write, leaving the target half-old /
  // half-new.  Torn points count on an independent counter so arming them
  // never perturbs the step numbering of the ordinary point() sweeps (the
  // existing crash suites learn step counts disarmed and replay them).
  // Unlike point(), point_torn() does not throw: it returns true when the
  // armed step fires and the *caller* applies the partial write it models —
  // a prefix of an NvmDevice store, a half-and-half 4 KB disk block — before
  // raising CrashException itself.

  /// Arm the torn counter: the `step`-th future point_torn() (1-based) fires.
  void arm_torn(std::uint64_t step) {
    torn_fire_at_.store(step, std::memory_order_relaxed);
    torn_seen_.store(0, std::memory_order_relaxed);
    torn_armed_.store(true, std::memory_order_relaxed);
  }

  /// Disarm the torn counter; point_torn() only counts.
  void disarm_torn() {
    torn_armed_.store(false, std::memory_order_relaxed);
    torn_seen_.store(0, std::memory_order_relaxed);
  }

  /// Torn-write marker.  Returns true when the armed torn step is hit; the
  /// caller tears its in-flight write and then throws CrashException.
  [[nodiscard]] bool point_torn() {
    const std::uint64_t n =
        torn_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
    return torn_armed_.load(std::memory_order_relaxed) &&
           n == torn_fire_at_.load(std::memory_order_relaxed);
  }

  /// Number of torn points passed since the last arm_torn()/disarm_torn().
  [[nodiscard]] std::uint64_t torn_steps_seen() const {
    return torn_seen_.load(std::memory_order_relaxed);
  }

  /// Whether the torn counter is armed.
  [[nodiscard]] bool torn_armed() const {
    return torn_armed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> armed_ = false;
  std::atomic<std::uint64_t> fire_at_ = 0;
  std::atomic<std::uint64_t> seen_ = 0;
  std::atomic<bool> torn_armed_ = false;
  std::atomic<std::uint64_t> torn_fire_at_ = 0;
  std::atomic<std::uint64_t> torn_seen_ = 0;
};

}  // namespace tinca::nvm
