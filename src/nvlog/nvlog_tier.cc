#include "nvlog/nvlog_tier.h"

#include <algorithm>
#include <array>

#include "blockdev/block_device.h"
#include "common/bytes.h"
#include "common/expect.h"
#include "nvlog/log_meta.h"
#include "obs/metrics.h"

namespace tinca::nvlog {

namespace {

constexpr std::uint64_t kSegMagic = 0x4E564C4F47534547ULL;    // "NVLOGSEG"
constexpr std::uint64_t kRecMagic = 0x4E564C4F47524543ULL;    // "NVLOGREC"

constexpr std::uint64_t kSuperOff = 0;
constexpr std::uint64_t kSegmentsBase = kLogMetaBytes;
constexpr std::uint64_t kSegHeaderBytes = 64;
constexpr std::uint64_t kRecHeaderBytes = 64;
constexpr std::uint64_t kPayloadBytes = blockdev::kBlockSize;
constexpr std::uint64_t kBlockRecordBytes = kRecHeaderBytes + kPayloadBytes;

constexpr std::uint64_t kTypeBlock = 1;
constexpr std::uint64_t kTypeCommit = 2;

// Record header fields (byte offsets within the 64 B line).
constexpr std::size_t kRecMagicAt = 0;
constexpr std::size_t kRecSeqAt = 8;       // containing segment's seq (epoch)
constexpr std::size_t kRecLsnAt = 16;      // global append order
constexpr std::size_t kRecTxnAt = 24;      // lsn of the txn's first record
constexpr std::size_t kRecTypeAt = 32;
constexpr std::size_t kRecBlknoAt = 40;
constexpr std::size_t kRecPayloadFpAt = 48;
constexpr std::size_t kRecCrcAt = 56;      // fingerprint of bytes [0, 56)

// Segment header fields.  (Superblock + watermark ring codecs live in
// log_meta.h, shared with core::verify_nvlog_media.)
constexpr std::size_t kSegMagicAt = 0;
constexpr std::size_t kSegSeqAt = 8;
constexpr std::size_t kSegCrcAt = 16;      // fingerprint of bytes [0, 16)

/// A decoded record header plus its validity against the expected epoch.
struct RecordView {
  std::uint64_t lsn = 0;
  std::uint64_t txn_first = 0;
  std::uint64_t type = 0;
  std::uint64_t blkno = 0;
  std::uint64_t payload_fp = 0;
  bool valid = false;
};

RecordView decode_record(std::span<const std::byte> hdr, std::uint64_t seq) {
  RecordView v;
  if (load_le(hdr.data() + kRecMagicAt, 8) != kRecMagic) return v;
  if (load_le(hdr.data() + kRecCrcAt, 8) !=
      fingerprint(hdr.subspan(0, kRecCrcAt)))
    return v;
  if (load_le(hdr.data() + kRecSeqAt, 8) != seq) return v;
  v.type = load_le(hdr.data() + kRecTypeAt, 8);
  if (v.type != kTypeBlock && v.type != kTypeCommit) return v;
  v.lsn = load_le(hdr.data() + kRecLsnAt, 8);
  v.txn_first = load_le(hdr.data() + kRecTxnAt, 8);
  v.blkno = load_le(hdr.data() + kRecBlknoAt, 8);
  v.payload_fp = load_le(hdr.data() + kRecPayloadFpAt, 8);
  v.valid = true;
  return v;
}

}  // namespace

NvLogTier::NvLogTier(nvm::NvmDevice& nvm, NvLogConfig cfg)
    : nvm_(nvm), cfg_(cfg) {
  TINCA_EXPECT(cfg_.segment_bytes % nvm::NvmDevice::kLineSize == 0,
               "segment size must be line-aligned");
  TINCA_EXPECT(
      cfg_.segment_bytes >= kSegHeaderBytes + kBlockRecordBytes + kRecHeaderBytes,
      "segment too small for one block record plus a commit record");
  TINCA_EXPECT(nvm_.size() >= kSegmentsBase + 2 * cfg_.segment_bytes,
               "log range too small for two segments");
  TINCA_EXPECT(cfg_.watermark_slots >= 1 &&
                   cfg_.watermark_slots <= kMaxWatermarkSlots,
               "watermark ring must fit the metadata region (1..63 slots)");
  num_segments_ = (nvm_.size() - kSegmentsBase) / cfg_.segment_bytes;
  segs_.resize(num_segments_);
}

std::uint64_t NvLogTier::segment_base(std::uint32_t idx) const {
  return kSegmentsBase + static_cast<std::uint64_t>(idx) * cfg_.segment_bytes;
}

std::uint64_t NvLogTier::records_per_segment() const {
  return (cfg_.segment_bytes - kSegHeaderBytes) / kBlockRecordBytes;
}

std::uint64_t NvLogTier::max_txn_blocks() const {
  // A txn may find the active segment full and must then fit in the other
  // num_segments - 1 segments (backpressure drains free them one by one,
  // oldest first); minus one block so the commit record always fits too.
  return (num_segments_ - 1) * records_per_segment() - 1;
}

std::uint64_t NvLogTier::free_segments() const {
  std::uint64_t n = 0;
  for (const SegmentMeta& s : segs_) n += s.state == SegState::kFree ? 1 : 0;
  return n;
}

std::uint64_t NvLogTier::sealed_segments() const {
  std::uint64_t n = 0;
  for (const SegmentMeta& s : segs_) n += s.state == SegState::kSealed ? 1 : 0;
  return n;
}

std::unique_ptr<NvLogTier> NvLogTier::format(nvm::NvmDevice& nvm,
                                             NvLogConfig cfg) {
  auto t = std::unique_ptr<NvLogTier>(new NvLogTier(nvm, cfg));

  // The format nonce bumps across reformats of the same device: it salts
  // every watermark record's checksum, so ring records from a previous life
  // of the log can never win recovery's adjudication (log_meta.h).
  std::uint64_t nonce = 1;
  {
    std::array<std::byte, kLogSuperBytes> old{};
    nvm.load(kSuperOff, old);
    LogSuperblock prev;
    if (decode_superblock(old, &prev)) nonce = prev.format_nonce + 1;
  }
  t->format_nonce_ = nonce;

  std::array<std::byte, kLogSuperBytes> sup{};
  encode_superblock(sup, LogSuperblock{cfg.segment_bytes, t->num_segments_,
                                       cfg.watermark_slots, nonce});
  nvm.store(kSuperOff, sup);
  nvm.persist(kSuperOff, sup.size());
  t->persist_watermark();  // epoch 1: oldest_live 1, drained_upto 0
  // The format-time record is flushed even under the watermark-flush
  // sabotage (which targets the runtime advance path): a mount must always
  // find at least one valid ring record.
  nvm.persist(watermark_slot_off(watermark_slot_of(1, cfg.watermark_slots)),
              kWatermarkSlotBytes);
  // Segments stay unformatted: garbage headers never validate, and the
  // first absorb acquires (and stamps) the least-worn one.
  return t;
}

void NvLogTier::persist_watermark() {
  ++wm_epoch_;
  const std::uint64_t off = watermark_slot_off(
      watermark_slot_of(wm_epoch_, cfg_.watermark_slots));
  std::array<std::byte, kWatermarkSlotBytes> rec{};
  encode_watermark(
      rec, WatermarkRecord{wm_epoch_, oldest_live_seq_, drained_upto_lsn_},
      format_nonce_);
  nvm_.store(off, rec);
  if (!cfg_.sabotage_skip_watermark_flush) nvm_.persist(off, rec.size());
  ++stats_.watermark_records;
}

void NvLogTier::seal_active() {
  TINCA_EXPECT(active_.has_value(), "seal without an active segment");
  SegmentMeta& seg = segs_[*active_];
  seg.state = SegState::kSealed;
  seg.seal_ns = nvm_.clock().now();
  ++stats_.segments_sealed;
  active_.reset();
}

void NvLogTier::acquire_segment(DrainSink& sink) {
  TINCA_EXPECT(!active_.has_value(), "acquire with an active segment");
  const auto pick_free = [this]() -> std::optional<std::uint32_t> {
    // Wear-aware recycling: hand out the least-worn free segment so hot
    // absorb traffic rotates over the media instead of burning one range.
    std::optional<std::uint32_t> best;
    std::uint64_t best_wear = 0;
    for (std::uint32_t i = 0; i < num_segments_; ++i) {
      if (segs_[i].state != SegState::kFree) continue;
      const std::uint64_t w =
          nvm_.wear(segment_base(i), cfg_.segment_bytes).total_line_writes;
      if (!best.has_value() || w < best_wear) {
        best = i;
        best_wear = w;
      }
    }
    return best;
  };

  std::optional<std::uint32_t> idx = pick_free();
  if (!idx.has_value()) {
    // Foreground backpressure: force-drain the oldest drainable sealed
    // segment (always the chain head — newer segments hold the in-flight
    // txn), which the prefix advance then recycles immediately.
    ++stats_.backpressure_drains;
    std::optional<std::uint64_t> oldest;
    for (const SegmentMeta& s : segs_) {
      if (s.state != SegState::kSealed || s.max_lsn > committed_lsn_) continue;
      if (!oldest.has_value() || s.seq < *oldest) oldest = s.seq;
    }
    TINCA_ENSURE(oldest.has_value(),
                 "nvlog wedged: no drainable segment under backpressure "
                 "(transaction exceeds the guaranteed log capacity)");
    const DrainResult r = drain_segment(*oldest, sink);
    TINCA_ENSURE(r == DrainResult::kDrained,
                 "nvlog wedged: backpressure drain made no progress");
    idx = pick_free();
    TINCA_ENSURE(idx.has_value(),
                 "nvlog wedged: backpressure drain recycled nothing");
  }

  SegmentMeta& seg = segs_[*idx];
  seg.state = SegState::kActive;
  seg.seq = next_seq_++;
  seg.write_off = kSegHeaderBytes;
  seg.max_lsn = 0;
  seg.records.clear();
  std::array<std::byte, kSegHeaderBytes> hdr{};
  store_le(hdr.data() + kSegMagicAt, kSegMagic, 8);
  store_le(hdr.data() + kSegSeqAt, seg.seq, 8);
  store_le(hdr.data() + kSegCrcAt,
           fingerprint(std::span<const std::byte>(hdr.data(), kSegCrcAt)), 8);
  nvm_.store(segment_base(*idx), hdr);
  nvm_.persist(segment_base(*idx), hdr.size());
  active_ = idx;
  nvm_.injector.point();  // CP: segment acquired, header persisted
}

void NvLogTier::ensure_room(std::uint64_t bytes, DrainSink& sink) {
  if (active_.has_value() &&
      segs_[*active_].write_off + bytes <= cfg_.segment_bytes)
    return;
  if (active_.has_value()) seal_active();
  acquire_segment(sink);
  TINCA_ENSURE(segs_[*active_].write_off + bytes <= cfg_.segment_bytes,
               "record larger than a segment");
}

NvLogTier::IndexLoc NvLogTier::append_record(bool is_commit,
                                             std::uint64_t txn_first_lsn,
                                             std::uint64_t blkno,
                                             std::span<const std::byte> payload) {
  SegmentMeta& seg = segs_[*active_];
  const std::uint64_t off = seg.write_off;
  const std::uint64_t base = segment_base(*active_) + off;
  const std::uint64_t lsn = next_lsn_++;

  std::array<std::byte, kRecHeaderBytes> hdr{};
  store_le(hdr.data() + kRecMagicAt, kRecMagic, 8);
  store_le(hdr.data() + kRecSeqAt, seg.seq, 8);
  store_le(hdr.data() + kRecLsnAt, lsn, 8);
  store_le(hdr.data() + kRecTxnAt, txn_first_lsn, 8);
  store_le(hdr.data() + kRecTypeAt, is_commit ? kTypeCommit : kTypeBlock, 8);
  store_le(hdr.data() + kRecBlknoAt, blkno, 8);
  store_le(hdr.data() + kRecPayloadFpAt, is_commit ? 0 : fingerprint(payload),
           8);
  store_le(hdr.data() + kRecCrcAt,
           fingerprint(std::span<const std::byte>(hdr.data(), kRecCrcAt)), 8);
  nvm_.store(base, hdr);
  if (!is_commit) nvm_.store(base + kRecHeaderBytes, payload);

  const std::uint64_t size = kRecHeaderBytes + payload.size();
  flush_ranges_.emplace_back(base, size);
  seg.write_off += size;
  // max_lsn is NOT raised here: only the commit success path counts a
  // record, so a failed absorb's orphan records never pin their segment.
  seg.records.push_back(RecordMeta{off, lsn, blkno, is_commit});
  return IndexLoc{*active_, off, lsn};
}

void NvLogTier::absorb_commit(
    const std::vector<std::pair<std::uint64_t, std::span<const std::byte>>>&
        blocks,
    DrainSink& sink) {
  TINCA_EXPECT(!blocks.empty(), "commit of an empty transaction");
  TINCA_EXPECT(blocks.size() <= max_txn_blocks(),
               "transaction exceeds the log's guaranteed capacity");
  for (const auto& [blkno, data] : blocks)
    TINCA_EXPECT(data.size() == kPayloadBytes, "blocks are 4 KB");

  nvm_.injector.point();  // CP: absorb entry, nothing appended

  flush_ranges_.clear();
  const std::uint64_t txn_first_lsn = next_lsn_;
  std::vector<std::pair<std::uint64_t, IndexLoc>> appended;
  appended.reserve(blocks.size());
  std::uint64_t commit_lsn = 0;
  IndexLoc commit_loc{};
  try {
    for (const auto& [blkno, data] : blocks) {
      ensure_room(kBlockRecordBytes, sink);
      appended.emplace_back(blkno,
                            append_record(false, txn_first_lsn, blkno, data));
    }
    ensure_room(kRecHeaderBytes, sink);
    commit_loc = append_record(true, txn_first_lsn, 0, {});
    commit_lsn = commit_loc.lsn;
  } catch (const nvm::CrashException&) {
    // Simulated power cut mid-absorb: nothing to tidy — the machine is
    // gone, and recovery discards any record run without a commit record.
    throw;
  } catch (...) {
    // Disk error inside a backpressure drain.  The half-appended records
    // stay in the log as *orphans* (no commit record will ever close their
    // run — their lsns are never reused, so recovery always discards them)
    // but they must be made durable NOW: a later commit appends after
    // them, and if an orphan line were lost to a crash the recovery prefix
    // scan would stop at the hole and lose that later committed txn.
    for (const auto& [off, len] : flush_ranges_) nvm_.clflush(off, len);
    nvm_.sfence();
    flush_ranges_.clear();
    ++stats_.absorb_rollbacks;
    throw;
  }

  nvm_.injector.point();  // CP: records stored, nothing flushed

  if (!cfg_.sabotage_skip_commit_flush) {
    // The one-flush-one-fence absorb: every appended line in one clflush
    // pass, then a single sfence makes the whole txn durable atomically
    // (recovery accepts it only once the commit record validates).
    for (const auto& [off, len] : flush_ranges_) nvm_.clflush(off, len);
    nvm_.sfence();
  }
  flush_ranges_.clear();

  nvm_.injector.point();  // CP: commit durable, DRAM index not yet updated

  for (const auto& [blkno, loc] : appended) {
    index_[blkno] = loc;
    if (loc.lsn > segs_[loc.seg].max_lsn) segs_[loc.seg].max_lsn = loc.lsn;
  }
  if (commit_lsn > segs_[commit_loc.seg].max_lsn)
    segs_[commit_loc.seg].max_lsn = commit_lsn;
  committed_lsn_ = commit_lsn;
  ++stats_.absorbed_txns;
  stats_.absorbed_records += appended.size();
  stats_.absorbed_bytes += appended.size() * kPayloadBytes;
}

void NvLogTier::absorb_commit_group(
    const std::vector<
        std::vector<std::pair<std::uint64_t, std::span<const std::byte>>>>&
        txns,
    DrainSink& sink) {
  TINCA_EXPECT(!txns.empty(), "group absorb of an empty batch");
  // Last-writer-wins merge in member order: first appearance fixes the
  // append position, later members overwrite the image in place.  The
  // merged union then rides the ordinary one-flush-one-fence absorb path —
  // one commit record seals the whole batch, so recovery replays all
  // members or none.
  std::vector<std::pair<std::uint64_t, std::span<const std::byte>>> merged;
  std::unordered_map<std::uint64_t, std::size_t> at;
  for (const auto& blocks : txns) {
    for (const auto& [blkno, data] : blocks) {
      const auto [it, inserted] = at.try_emplace(blkno, merged.size());
      if (inserted) {
        merged.emplace_back(blkno, data);
      } else {
        merged[it->second].second = data;
        ++stats_.group_merged_records;
      }
    }
  }
  if (!merged.empty()) absorb_commit(merged, sink);
  ++stats_.group_absorbs;
  stats_.group_absorbed_txns += txns.size();
}

bool NvLogTier::lookup(std::uint64_t blkno, std::span<std::byte> dst) {
  TINCA_EXPECT(dst.size() == kPayloadBytes, "blocks are 4 KB");
  const auto it = index_.find(blkno);
  if (it == index_.end()) return false;
  nvm_.load(segment_base(it->second.seg) + it->second.off + kRecHeaderBytes,
            dst);
  ++stats_.log_hits;
  return true;
}

void NvLogTier::collect_drainable(std::uint32_t max,
                                  std::vector<std::uint64_t>& out) const {
  std::vector<std::uint64_t> seqs;
  for (const SegmentMeta& s : segs_) {
    if (s.state == SegState::kSealed && s.max_lsn <= committed_lsn_)
      seqs.push_back(s.seq);
  }
  std::sort(seqs.begin(), seqs.end());
  for (const std::uint64_t s : seqs) {
    if (max == 0) break;
    out.push_back(s);
    --max;
  }
}

std::optional<std::uint32_t> NvLogTier::find_seq(std::uint64_t seq) const {
  for (std::uint32_t i = 0; i < num_segments_; ++i) {
    if (segs_[i].state != SegState::kFree && segs_[i].seq == seq) return i;
  }
  return std::nullopt;
}

NvLogTier::DrainResult NvLogTier::drain_segment(std::uint64_t seq,
                                                DrainSink& sink) {
  const std::optional<std::uint32_t> found = find_seq(seq);
  if (!found.has_value() || segs_[*found].state != SegState::kSealed)
    return DrainResult::kStale;
  SegmentMeta& seg = segs_[*found];
  if (seg.max_lsn > committed_lsn_) return DrainResult::kPinned;

  nvm_.injector.point();  // CP: drain entry, nothing applied

  // Coalesce: a record survives only if the index still points at it —
  // every overwritten version (same segment or older) is skipped, so one
  // hot block costs one backing-store write per drained epoch.
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> batch;
  std::uint64_t superseded = 0;
  for (const RecordMeta& r : seg.records) {
    if (r.is_commit) continue;
    const auto it = index_.find(r.blkno);
    if (it == index_.end() || it->second.seg != *found ||
        it->second.off != r.off) {
      ++superseded;
      continue;
    }
    batch.emplace_back(r.blkno, std::vector<std::byte>(kPayloadBytes));
    nvm_.load(segment_base(*found) + r.off + kRecHeaderBytes,
              batch.back().second);
  }
  // Ascending runs hit the disk's sequential fast path.
  std::sort(batch.begin(), batch.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const std::uint32_t shards = sink.drain_shard_count();
  const std::uint64_t apply_t0 = nvm_.clock().now();
  std::uint64_t modeled_apply_ns = 0;
  if (!batch.empty() && !cfg_.sabotage_skip_drain_apply) {
    if (shards <= 1) {
      sink.drain_apply(batch);
    } else {
      // Shard-affine partition (DESIGN.md §16): split the coalesced run by
      // the inner's placement so the sink can drain the batches
      // concurrently.  A stable split of a sorted run keeps every per-shard
      // batch ascending.  The watermark advance below happens strictly
      // after drain_apply_shards returns — the all-shards-durable barrier.
      std::vector<DrainSink::DrainBatch> parts(shards);
      for (auto& rec : batch) {
        const std::uint32_t s = sink.drain_shard_of(rec.first);
        TINCA_EXPECT(s < shards, "drain_shard_of out of range");
        parts[s].push_back(std::move(rec));
      }
      ++stats_.partitioned_drains;
      for (const DrainSink::DrainBatch& p : parts)
        stats_.shard_batches += p.empty() ? 0 : 1;
      modeled_apply_ns = sink.drain_apply_shards(parts);
    }
  }
  stats_.drain_apply.record(modeled_apply_ns != 0
                                ? modeled_apply_ns
                                : nvm_.clock().now() - apply_t0);

  nvm_.injector.point();  // CP: batch durable, prefix not yet advanced

  for (const RecordMeta& r : seg.records) {
    if (r.is_commit) continue;
    const auto it = index_.find(r.blkno);
    if (it != index_.end() && it->second.seg == *found &&
        it->second.off == r.off)
      index_.erase(it);
  }
  seg.state = SegState::kDrained;
  ++stats_.drain_batches;
  stats_.drained_records += batch.size();
  stats_.coalesced_records += superseded;
  stats_.drain_lag.record(nvm_.clock().now() - seg.seal_ns);
  advance_drained_prefix();
  return DrainResult::kDrained;
}

void NvLogTier::advance_drained_prefix() {
  bool advanced = false;
  while (true) {
    const std::optional<std::uint32_t> idx = find_seq(oldest_live_seq_);
    if (!idx.has_value() || segs_[*idx].state != SegState::kDrained) break;
    SegmentMeta& seg = segs_[*idx];
    seg.state = SegState::kFree;
    seg.seq = 0;
    seg.write_off = 0;
    if (seg.max_lsn > drained_upto_lsn_) drained_upto_lsn_ = seg.max_lsn;
    seg.max_lsn = 0;
    seg.records.clear();
    ++stats_.segments_recycled;
    ++oldest_live_seq_;
    advanced = true;
  }
  if (advanced) {
    nvm_.injector.point();  // CP: prefix advanced in DRAM, not yet persisted
    // One fresh 64 B ring record carries both fields (DESIGN.md §16): the
    // persisted pair advances atomically — a torn record fails its checksum
    // and recovery falls back to the previous record, which merely
    // re-drains segments already applied.
    persist_watermark();
    nvm_.injector.point();  // CP: watermark record cut — ring slot persisted
  }
}

void NvLogTier::drain_all(DrainSink& sink) {
  if (active_.has_value() && !segs_[*active_].records.empty()) seal_active();
  for (;;) {
    std::vector<std::uint64_t> seqs;
    collect_drainable(static_cast<std::uint32_t>(num_segments_), seqs);
    if (seqs.empty()) break;
    for (const std::uint64_t s : seqs) {
      const DrainResult r = drain_segment(s, sink);
      TINCA_ENSURE(r != DrainResult::kPinned,
                   "drain_all found a pinned segment outside a transaction");
    }
  }
  TINCA_ENSURE(index_.empty(), "drain_all left live records behind");
}

std::optional<std::pair<std::uint64_t, std::uint64_t>> NvLogTier::record_range(
    std::uint64_t blkno) const {
  const auto it = index_.find(blkno);
  if (it == index_.end()) return std::nullopt;
  return std::make_pair(segment_base(it->second.seg) + it->second.off,
                        kBlockRecordBytes);
}

std::unique_ptr<NvLogTier> NvLogTier::recover(nvm::NvmDevice& nvm,
                                              NvLogConfig cfg) {
  auto t = std::unique_ptr<NvLogTier>(new NvLogTier(nvm, cfg));

  std::array<std::byte, kLogSuperBytes> sup{};
  nvm.load(kSuperOff, sup);
  LogSuperblock sb;
  TINCA_EXPECT(decode_superblock(sup, &sb),
               "nvlog superblock invalid — not a formatted log");
  TINCA_EXPECT(sb.segment_bytes == cfg.segment_bytes &&
                   sb.num_segments == t->num_segments_ &&
                   sb.watermark_slots == cfg.watermark_slots,
               "nvlog geometry mismatch — wrong config for this device");
  t->format_nonce_ = sb.format_nonce;

  // Watermark adjudication (DESIGN.md §16): scan every ring slot and mount
  // the record with the highest valid epoch.  A record torn by the crash
  // fails its checksum, so the previous advance's record wins — strictly
  // older watermarks are always safe to mount (the tier re-drains segments
  // it had already applied; drains are idempotent).
  std::optional<WatermarkRecord> winner;
  for (std::uint32_t s = 0; s < cfg.watermark_slots; ++s) {
    std::array<std::byte, kWatermarkSlotBytes> slot{};
    nvm.load(watermark_slot_off(s), slot);
    WatermarkRecord rec;
    if (!decode_watermark(slot, sb.format_nonce, &rec)) continue;
    if (!winner.has_value() || rec.epoch > winner->epoch) winner = rec;
  }
  TINCA_EXPECT(winner.has_value(),
               "nvlog watermark ring holds no valid record");
  t->wm_epoch_ = winner->epoch;
  t->oldest_live_seq_ = winner->oldest_live_seq;
  t->drained_upto_lsn_ = winner->drained_upto_lsn;

  // Valid segment headers at or past the drained prefix, then the
  // contiguous seq chain from oldest_live (a gap ends the chain; seqs are
  // claimed in order, so a gap only follows a torn header of the newest).
  std::map<std::uint64_t, std::uint32_t> by_seq;
  for (std::uint32_t i = 0; i < t->num_segments_; ++i) {
    std::array<std::byte, kSegHeaderBytes> hdr{};
    nvm.load(t->segment_base(i), hdr);
    if (load_le(hdr.data() + kSegMagicAt, 8) != kSegMagic) continue;
    if (load_le(hdr.data() + kSegCrcAt, 8) !=
        fingerprint(std::span<const std::byte>(hdr.data(), kSegCrcAt)))
      continue;
    const std::uint64_t seq = load_le(hdr.data() + kSegSeqAt, 8);
    if (seq < t->oldest_live_seq_) continue;
    TINCA_ENSURE(!by_seq.contains(seq), "duplicate nvlog segment seq");
    by_seq[seq] = i;
  }
  std::vector<std::uint32_t> chain;
  for (std::uint64_t s = t->oldest_live_seq_; by_seq.contains(s); ++s)
    chain.push_back(by_seq[s]);

  // Replay the valid record prefix.  Acceptance rules (see file comment of
  // nvlog_tier.h): checksums + epoch match, monotonically increasing lsn
  // (stale remnants always carry a *lower* lsn than the record written
  // after them, since lsns are never reused across recoveries), and a txn
  // counts only when its commit record closes the exact contiguous lsn run
  // [txn_first, commit) — anything less is a torn in-flight txn.
  struct Pending {
    std::uint32_t seg;
    RecordMeta meta;
  };
  std::vector<Pending> pending;
  std::uint64_t expected_lsn = t->drained_upto_lsn_ + 1;
  std::uint64_t max_lsn_seen = t->drained_upto_lsn_;
  bool stop_all = false;
  std::optional<std::pair<std::uint32_t, std::uint64_t>> resume;  // idx, off
  std::vector<std::byte> payload(kPayloadBytes);

  // Every chain segment gets its identity up front — even segments the
  // scan below never reaches (global stop on a torn txn) must keep the seq
  // their persistent header carries, or records appended after recovery
  // would be stamped with a mismatched epoch and rejected next mount.
  for (std::size_t ci = 0; ci < chain.size(); ++ci) {
    SegmentMeta& seg = t->segs_[chain[ci]];
    seg.state = SegState::kSealed;
    seg.seq = t->oldest_live_seq_ + ci;
    seg.write_off = kSegHeaderBytes;
    seg.seal_ns = nvm.clock().now();
  }

  for (std::size_t ci = 0; ci < chain.size() && !stop_all; ++ci) {
    const std::uint32_t idx = chain[ci];
    SegmentMeta& seg = t->segs_[idx];

    std::uint64_t off = kSegHeaderBytes;
    while (off + kRecHeaderBytes <= cfg.segment_bytes) {
      std::array<std::byte, kRecHeaderBytes> hdr{};
      nvm.load(t->segment_base(idx) + off, hdr);
      const RecordView v = decode_record(hdr, seg.seq);
      if (!v.valid || v.lsn < expected_lsn) break;
      if (v.type == kTypeBlock) {
        if (off + kBlockRecordBytes > cfg.segment_bytes) break;
        nvm.load(t->segment_base(idx) + off + kRecHeaderBytes, payload);
        if (fingerprint(payload) != v.payload_fp) break;
        pending.push_back(
            Pending{idx, RecordMeta{off, v.lsn, v.blkno, false}});
        expected_lsn = v.lsn + 1;
        max_lsn_seen = v.lsn;
        off += kBlockRecordBytes;
        continue;
      }
      // Commit record: fence off stale remnants (lsn < txn_first), then
      // require the exact contiguous record run of this txn.  Records at or
      // below the persisted drained_upto watermark are legitimately gone —
      // the txn spanned segments and its older ones were already drained
      // and recycled; any *other* gap means the power cut lost a record of
      // this (necessarily in-flight) txn before the commit flush finished.
      expected_lsn = v.lsn + 1;
      max_lsn_seen = v.lsn;
      const std::uint64_t run_first =
          std::max(v.txn_first, t->drained_upto_lsn_ + 1);
      std::vector<Pending> txn_records;
      for (const Pending& p : pending) {
        if (p.meta.lsn >= v.txn_first)
          txn_records.push_back(p);
        else
          ++t->stats_.recovery_discarded;
      }
      bool complete = run_first <= v.lsn &&
                      txn_records.size() == v.lsn - run_first;
      for (std::size_t k = 0; complete && k < txn_records.size(); ++k)
        complete = txn_records[k].meta.lsn == run_first + k;
      if (!complete) {
        // Some record of this txn was lost to the power cut before the
        // commit flush finished — this was the in-flight txn, the log ends.
        t->stats_.recovery_discarded += txn_records.size();
        pending.clear();
        stop_all = true;
        break;
      }
      for (const Pending& p : txn_records) {
        t->index_[p.meta.blkno] =
            IndexLoc{p.seg, p.meta.off, p.meta.lsn};
        t->segs_[p.seg].records.push_back(p.meta);
        if (p.meta.lsn > t->segs_[p.seg].max_lsn)
          t->segs_[p.seg].max_lsn = p.meta.lsn;
        ++t->stats_.recovery_replayed;
      }
      t->segs_[idx].records.push_back(RecordMeta{off, v.lsn, 0, true});
      if (v.lsn > t->segs_[idx].max_lsn) t->segs_[idx].max_lsn = v.lsn;
      t->committed_lsn_ = v.lsn;
      pending.clear();
      resume = std::make_pair(idx, off + kRecHeaderBytes);
      off += kRecHeaderBytes;
      nvm.injector.point();  // CP: one committed txn replayed
    }
    seg.write_off = off;
  }
  t->stats_.recovery_discarded += pending.size();

  if (chain.empty()) {
    t->next_seq_ = t->oldest_live_seq_;
    t->next_lsn_ = t->drained_upto_lsn_ + 1;
  } else {
    t->next_seq_ = t->oldest_live_seq_ + chain.size();
    t->next_lsn_ = std::max<std::uint64_t>(max_lsn_seen, expected_lsn - 1) + 1;
    // The newest chain segment resumes as the active one.  Appends restart
    // just past the last commit record when it lives here, else from the
    // segment's start — either way the in-flight txn's remnants get
    // overwritten, never re-accepted (their lsns are below every future one).
    const std::uint32_t last = chain.back();
    t->segs_[last].state = SegState::kActive;
    t->active_ = last;
    t->segs_[last].write_off =
        (resume.has_value() && resume->first == last) ? resume->second
                                                      : kSegHeaderBytes;
  }
  return t;
}

void NvLogTier::register_metrics(obs::MetricsRegistry& reg,
                                 const std::string& prefix) const {
  reg.add_counter(prefix + "absorbed_txns", &stats_.absorbed_txns);
  reg.add_counter(prefix + "absorbed_records", &stats_.absorbed_records);
  reg.add_counter(prefix + "absorbed_bytes", &stats_.absorbed_bytes);
  reg.add_counter(prefix + "drained_records", &stats_.drained_records);
  reg.add_counter(prefix + "coalesced_records", &stats_.coalesced_records);
  reg.add_counter(prefix + "drain_batches", &stats_.drain_batches);
  reg.add_counter(prefix + "segments_sealed", &stats_.segments_sealed);
  reg.add_counter(prefix + "segments_recycled", &stats_.segments_recycled);
  reg.add_counter(prefix + "backpressure_drains",
                  &stats_.backpressure_drains);
  reg.add_counter(prefix + "absorb_rollbacks", &stats_.absorb_rollbacks);
  reg.add_counter(prefix + "recovery_replayed", &stats_.recovery_replayed);
  reg.add_counter(prefix + "recovery_discarded", &stats_.recovery_discarded);
  reg.add_counter(prefix + "log_hits", &stats_.log_hits);
  reg.add_counter(prefix + "group_absorbs", &stats_.group_absorbs);
  reg.add_counter(prefix + "group_absorbed_txns",
                  &stats_.group_absorbed_txns);
  reg.add_counter(prefix + "group_merged_records",
                  &stats_.group_merged_records);
  reg.add_counter(prefix + "watermark_records", &stats_.watermark_records);
  reg.add_counter(prefix + "partitioned_drains", &stats_.partitioned_drains);
  reg.add_counter(prefix + "shard_batches", &stats_.shard_batches);
  reg.add_histogram(prefix + "drain_lag", &stats_.drain_lag);
  reg.add_histogram(prefix + "drain_apply", &stats_.drain_apply);
  reg.add_gauge(prefix + "live_records", [this] { return live_records(); });
  reg.add_gauge(prefix + "free_segments", [this] { return free_segments(); });
  reg.add_gauge(prefix + "sealed_segments",
                [this] { return sealed_segments(); });
  reg.add_gauge(prefix + "oldest_live_seq",
                [this] { return oldest_live_seq_; });
  // Hottest line in the log's metadata region (superblock + watermark
  // ring): the wear the ring rotation is meant to flatten (DESIGN.md §16).
  reg.add_gauge(prefix + "meta_line_wear", [this] {
    return nvm_.wear(0, kLogMetaBytes).max_line_writes;
  });
}

}  // namespace tinca::nvlog
