// On-media codec for the NvLog tier's metadata region (DESIGN.md §16).
//
// The first 4 KB of a formatted log hold its identity and durable drain
// state:
//
//   [0, 64)              superblock — geometry + format nonce, checksummed
//   [64, 64 + slots·64)  watermark record ring — one 64 B record per slot
//   [ring end, 4096)     unused (segments start at kLogMetaBytes)
//
// Before PR 10 the drain watermarks (`oldest_live_seq`, `drained_upto_lsn`)
// lived on ONE fixed line at offset 64, rewritten on every drained-prefix
// advance — after the data-area wear fix that line was the hottest NVM line
// left, and a serialization point on every drain.  The ring retires it:
// each advance writes a fresh 64 B record into slot `epoch % slots`, so the
// write load spreads over the whole ring and recovery *adjudicates* instead
// of trusting one line — it scans every slot and mounts the record with the
// highest valid epoch.
//
// Two corruption defenses make the adjudication sound:
//   - Each record carries a checksum over all its fields (epoch included),
//     so a torn record fails closed and an *older* record wins.  Mounting a
//     stale watermark is always safe: the tier merely re-drains segments it
//     had already applied (drains are idempotent — last-writer-wins blocks).
//   - The checksum is salted with the superblock's `format_nonce`, which
//     increments on every reformat of the same device.  Records from a
//     previous life of the log therefore never validate, even when the
//     geometry (and thus the slot positions) is identical.
//
// This header is shared by the tier itself (nvlog_tier.cc) and by the
// fsck-style `core::verify_nvlog_media` walk (src/tinca/verify.cc); it is
// header-only on purpose so the core verifier needs no link dependency on
// the nvlog library.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace tinca::nvlog {

constexpr std::uint64_t kLogSuperMagic = 0x4E564C4F47535550ULL;  // "NVLOGSUP"
constexpr std::uint64_t kLogWmMagic = 0x4E564C4F47574D4BULL;     // "NVLOGWMK"
constexpr std::uint64_t kLogVersion = 2;  // v2: watermark record ring

/// Segments start here; everything below is the metadata region.
constexpr std::uint64_t kLogMetaBytes = 4096;

constexpr std::uint64_t kLogSuperBytes = 64;
constexpr std::uint64_t kWatermarkBase = 64;
constexpr std::uint64_t kWatermarkSlotBytes = 64;
/// The ring must fit between the superblock and the first segment.
constexpr std::uint32_t kMaxWatermarkSlots =
    static_cast<std::uint32_t>((kLogMetaBytes - kWatermarkBase) /
                               kWatermarkSlotBytes);  // 63

// Superblock fields (byte offsets within the 64 B line).
constexpr std::size_t kSupMagicAt = 0;
constexpr std::size_t kSupVersionAt = 8;
constexpr std::size_t kSupSegBytesAt = 16;
constexpr std::size_t kSupNumSegsAt = 24;
constexpr std::size_t kSupWmSlotsAt = 32;
constexpr std::size_t kSupNonceAt = 40;   // format generation (salts the ring)
constexpr std::size_t kSupCrcAt = 48;     // fingerprint of bytes [0, 48)

// Watermark record fields (byte offsets within the 64 B record).
constexpr std::size_t kWmMagicAt = 0;
constexpr std::size_t kWmEpochAt = 8;     // monotone advance counter
constexpr std::size_t kWmOldestAt = 16;   // oldest_live_seq
constexpr std::size_t kWmDrainedAt = 24;  // drained_upto_lsn
constexpr std::size_t kWmSaltAt = 32;     // copy of the superblock nonce
constexpr std::size_t kWmCrcAt = 40;      // fingerprint of bytes [0, 40)

struct LogSuperblock {
  std::uint64_t segment_bytes = 0;
  std::uint64_t num_segments = 0;
  std::uint64_t watermark_slots = 0;
  std::uint64_t format_nonce = 0;
};

inline void encode_superblock(std::span<std::byte> dst,
                              const LogSuperblock& sb) {
  store_le(dst.data() + kSupMagicAt, kLogSuperMagic, 8);
  store_le(dst.data() + kSupVersionAt, kLogVersion, 8);
  store_le(dst.data() + kSupSegBytesAt, sb.segment_bytes, 8);
  store_le(dst.data() + kSupNumSegsAt, sb.num_segments, 8);
  store_le(dst.data() + kSupWmSlotsAt, sb.watermark_slots, 8);
  store_le(dst.data() + kSupNonceAt, sb.format_nonce, 8);
  store_le(dst.data() + kSupCrcAt,
           fingerprint(std::span<const std::byte>(dst.data(), kSupCrcAt)), 8);
}

[[nodiscard]] inline bool decode_superblock(std::span<const std::byte> src,
                                            LogSuperblock* out) {
  if (load_le(src.data() + kSupMagicAt, 8) != kLogSuperMagic) return false;
  if (load_le(src.data() + kSupCrcAt, 8) !=
      fingerprint(src.subspan(0, kSupCrcAt)))
    return false;
  if (load_le(src.data() + kSupVersionAt, 8) != kLogVersion) return false;
  out->segment_bytes = load_le(src.data() + kSupSegBytesAt, 8);
  out->num_segments = load_le(src.data() + kSupNumSegsAt, 8);
  out->watermark_slots = load_le(src.data() + kSupWmSlotsAt, 8);
  out->format_nonce = load_le(src.data() + kSupNonceAt, 8);
  return out->watermark_slots >= 1 &&
         out->watermark_slots <= kMaxWatermarkSlots;
}

struct WatermarkRecord {
  std::uint64_t epoch = 0;
  std::uint64_t oldest_live_seq = 0;
  std::uint64_t drained_upto_lsn = 0;
};

/// The slot an epoch's record lands in — successive advances rotate.
[[nodiscard]] inline std::uint64_t watermark_slot_of(std::uint64_t epoch,
                                                     std::uint64_t slots) {
  return epoch % slots;
}

[[nodiscard]] inline std::uint64_t watermark_slot_off(std::uint64_t slot) {
  return kWatermarkBase + slot * kWatermarkSlotBytes;
}

inline void encode_watermark(std::span<std::byte> dst,
                             const WatermarkRecord& rec, std::uint64_t salt) {
  store_le(dst.data() + kWmMagicAt, kLogWmMagic, 8);
  store_le(dst.data() + kWmEpochAt, rec.epoch, 8);
  store_le(dst.data() + kWmOldestAt, rec.oldest_live_seq, 8);
  store_le(dst.data() + kWmDrainedAt, rec.drained_upto_lsn, 8);
  store_le(dst.data() + kWmSaltAt, salt, 8);
  store_le(dst.data() + kWmCrcAt,
           fingerprint(std::span<const std::byte>(dst.data(), kWmCrcAt)), 8);
}

[[nodiscard]] inline bool decode_watermark(std::span<const std::byte> src,
                                           std::uint64_t salt,
                                           WatermarkRecord* out) {
  if (load_le(src.data() + kWmMagicAt, 8) != kLogWmMagic) return false;
  if (load_le(src.data() + kWmCrcAt, 8) !=
      fingerprint(src.subspan(0, kWmCrcAt)))
    return false;
  if (load_le(src.data() + kWmSaltAt, 8) != salt) return false;
  out->epoch = load_le(src.data() + kWmEpochAt, 8);
  out->oldest_live_seq = load_le(src.data() + kWmOldestAt, 8);
  out->drained_upto_lsn = load_le(src.data() + kWmDrainedAt, 8);
  return true;
}

}  // namespace tinca::nvlog
