// Transparent NVM write-ahead tier: log-structured staging for any
// BlockDevice-backed store (DESIGN.md §13).
//
// The Tinca cache (src/tinca/) is crash-consistent but owns its entry-table
// layout; NvLogTier is the general-purpose alternative in the NVLog/NVCache
// mold (PAPERS.md): a segment-structured, append-only write-ahead log carved
// out of an NvmDevice range that absorbs fsync-heavy small writes with one
// flush + fence per commit and drains them to the backing store as
// coalesced, ascending batches on a background cadence.
//
// Persistent layout of the log range (all offsets line-aligned):
//
//   [0, 64)        superblock line: magic, version, segment_bytes,
//                  num_segments, watermark_slots, format nonce, checksum —
//                  written once at format (src/nvlog/log_meta.h)
//   [64, 64+S·64)  watermark record ring (DESIGN.md §16): S = watermark_slots
//                  epoch-salted, checksummed 64 B records; each drained-
//                  prefix advance writes (oldest_live_seq, drained_upto_lsn)
//                  into slot epoch % S, and recovery mounts the record with
//                  the highest valid epoch — a torn record fails its
//                  checksum and the previous record wins (safe: the tier
//                  merely re-drains already-applied segments)
//   [4096, ...)    num_segments segments of segment_bytes each
//
// Each segment opens with a 64 B header (magic, seq, checksum) written when
// the segment is acquired; `seq` increases monotonically over the log's
// lifetime, so a recycled segment's stale records — whose headers carry the
// *previous* generation's seq — can never validate against the new header.
// Records follow from offset 64:
//
//   block record   64 B header + 4096 B payload (one disk block image)
//   commit record  64 B header, no payload — seals the txn's record run
//
// A record header stamps magic, the segment seq (epoch), its lsn (global
// append order), the lsn of the txn's first record, type, disk blkno, a
// payload fingerprint and a header checksum.  A record is valid iff the
// checksums pass AND its seq equals the containing segment header's seq AND
// its lsn is monotonically increasing over the scan — lsns are never
// reused, so stale remnants (which always carry lower lsns than the stream
// that overwrote them) can never splice into the valid prefix, and a txn
// counts only when a commit record closes its exact lsn run (see
// recover()).
//
// Crash argument (same shape as DESIGN.md §4): commit() stores the txn's
// block records plus one commit record, then issues a single clflush pass
// over the appended range and one sfence.  Until that fence the media may
// hold any subset of the appended lines; recovery replays only complete
// txns (record run closed by a valid commit record), so a torn commit is
// all-or-nothing.  Draining applies a segment's still-live records to the
// backing store as one durable batch *before* the persisted oldest_live_seq
// advances past it, so a crash mid-drain merely replays the segment —
// idempotent, nothing lost, something possibly written twice.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "nvm/nvm_device.h"

namespace tinca::obs {
class MetricsRegistry;
}

namespace tinca::nvlog {

/// Tier tunables (embedded in the NvLog backend's config).
struct NvLogConfig {
  /// Bytes per log segment (line-aligned, at least header + one block
  /// record).  Smaller segments drain sooner; larger ones coalesce more.
  std::uint64_t segment_bytes = 256 * 1024;
  /// Watermark record ring slots (DESIGN.md §16).  Each drained-prefix
  /// advance writes one 64 B record into slot epoch % watermark_slots, so
  /// the metadata write load spreads over `watermark_slots` lines instead
  /// of hammering one.  1 reproduces the legacy single-hot-line behaviour;
  /// the ring must fit the 4 KB metadata region (max 63).
  std::uint32_t watermark_slots = 32;
  /// Oracle self-test only (fuzz harness): commit() returns WITHOUT its
  /// clflush + sfence.  The recovery oracle must catch the lost txns.
  bool sabotage_skip_commit_flush = false;
  /// Oracle self-test only: drain marks segments clean WITHOUT applying
  /// their records to the backing store (the log-tier analogue of the
  /// cleaner's sabotage_skip_write).  Stale backing-store data then leaks
  /// into reads and the oracle must flag it.
  bool sabotage_skip_drain_apply = false;
  /// Oracle self-test only: watermark records are stored but never
  /// flushed.  A crash then mounts a stale watermark whose oldest_live_seq
  /// may name a segment that was recycled AND re-acquired — the chain scan
  /// finds a seq gap right at its head and every younger committed txn is
  /// lost.  The recovery oracle must catch that.
  bool sabotage_skip_watermark_flush = false;
};

/// Tier counters (registered under "nvlog.").
struct NvLogStats {
  std::uint64_t absorbed_txns = 0;      ///< commits absorbed by the log
  std::uint64_t absorbed_records = 0;   ///< block records appended
  std::uint64_t absorbed_bytes = 0;     ///< payload bytes appended
  std::uint64_t drained_records = 0;    ///< records applied to the store
  std::uint64_t coalesced_records = 0;  ///< records superseded before drain
  std::uint64_t drain_batches = 0;      ///< segment drains performed
  std::uint64_t segments_sealed = 0;
  std::uint64_t segments_recycled = 0;
  std::uint64_t backpressure_drains = 0;  ///< foreground forced drains
  std::uint64_t absorb_rollbacks = 0;     ///< failed commits left as orphans
  std::uint64_t recovery_replayed = 0;    ///< records re-indexed at mount
  std::uint64_t recovery_discarded = 0;   ///< torn/incomplete tail records
  std::uint64_t log_hits = 0;             ///< reads served from the log
  // Group commit (DESIGN.md §14).
  std::uint64_t group_absorbs = 0;        ///< absorb_commit_group calls
  std::uint64_t group_absorbed_txns = 0;  ///< member txns absorbed in groups
  std::uint64_t group_merged_records = 0; ///< writes absorbed by LWW merging
  // Stacked sinks + parallel drains (DESIGN.md §16).
  std::uint64_t watermark_records = 0;     ///< ring records written
  std::uint64_t partitioned_drains = 0;    ///< drains split by inner shard
  std::uint64_t shard_batches = 0;         ///< per-shard batches handed out
  /// Seal-to-drain latency per segment (virtual ns): how far the drain
  /// runs behind the foreground.
  Histogram drain_lag;
  /// Duration of the drain *apply* phase per segment (virtual ns).  When
  /// the sink drains shard batches concurrently it reports the modeled
  /// barrier time (max over shards); sequential sinks report the sum.
  Histogram drain_apply;
};

/// The append-only staging log.  Single-threaded like every per-cache
/// structure in this repository; the owner serializes absorb/drain/reads.
class NvLogTier {
 public:
  /// Where drained batches go.  The backend implements this over its inner
  /// transactional store; `drain_apply` must return only once the batch is
  /// durable (that ordering is the whole crash-safety contract of draining).
  class DrainSink {
   public:
    /// One coalesced record run, ascending by blkno, whole 4 KB payloads.
    using DrainBatch =
        std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>;

    virtual ~DrainSink() = default;

    /// Apply `blocks` — ascending by blkno, whole 4 KB payloads — durably.
    virtual void drain_apply(const DrainBatch& blocks) = 0;

    // Shard-affine parallel drains (DESIGN.md §16).  A sink over a sharded
    // inner exposes its partition so the tier can split a segment's
    // coalesced run into per-shard batches and the sink can drain them
    // concurrently.  The tier advances the persisted watermark only after
    // drain_apply_shards returns, i.e. strictly after the barrier where
    // EVERY shard's batch is durable — a crash anywhere inside the apply
    // re-drains the whole segment (idempotent, last-writer-wins blocks).

    /// Number of inner shards (1 = unsharded; partitioning disabled).
    [[nodiscard]] virtual std::uint32_t drain_shard_count() const { return 1; }

    /// Home shard of a block (must match the inner's placement).
    [[nodiscard]] virtual std::uint32_t drain_shard_of(
        std::uint64_t blkno) const {
      (void)blkno;
      return 0;
    }

    /// Apply one batch per shard (indexed by shard, empty batches allowed);
    /// each batch stays ascending.  Returns only once every batch is
    /// durable.  The return value is the modeled apply duration in virtual
    /// ns (max over shards when the sink drains them concurrently, sum when
    /// sequential) recorded in NvLogStats::drain_apply; 0 means "no model —
    /// use the clock delta the apply actually charged".
    virtual std::uint64_t drain_apply_shards(
        const std::vector<DrainBatch>& shard_batches) {
      for (const DrainBatch& b : shard_batches)
        if (!b.empty()) drain_apply(b);
      return 0;
    }
  };

  /// Outcome of one drain attempt (mirrors cleaner::CleanOutcome).
  enum class DrainResult : std::uint8_t {
    kDrained = 0,  ///< segment applied durably and marked drained
    kStale = 1,    ///< segment already drained or recycled
    kPinned = 2,   ///< contains uncommitted records — retry later
  };

  /// Format the log range from scratch (writes only the superblock lines).
  static std::unique_ptr<NvLogTier> format(nvm::NvmDevice& nvm,
                                           NvLogConfig cfg = {});

  /// Mount after restart/crash: validate the superblock, walk the segment
  /// chain from oldest_live_seq, replay the valid record prefix (complete
  /// txns only) into the DRAM index.  Writes nothing to NVM, so recovery is
  /// idempotent under re-crash.
  static std::unique_ptr<NvLogTier> recover(nvm::NvmDevice& nvm,
                                            NvLogConfig cfg = {});

  NvLogTier(const NvLogTier&) = delete;
  NvLogTier& operator=(const NvLogTier&) = delete;

  /// Durably absorb one committed transaction: append a block record per
  /// entry plus one commit record, then one clflush pass + one sfence.
  /// Runs foreground backpressure drains through `sink` when the log is
  /// full.  On failure (disk error inside a backpressure drain) the
  /// half-appended records are flushed and left behind as orphans — no
  /// commit record ever closes their run, so recovery discards them; the
  /// caller may keep committing into the same log.
  void absorb_commit(
      const std::vector<std::pair<std::uint64_t, std::span<const std::byte>>>&
          blocks,
      DrainSink& sink);

  /// Durably absorb a *batch* of committed transactions (DESIGN.md §14):
  /// the members' writes are merged last-writer-wins in member order, then
  /// appended as ONE record run sealed by ONE commit record — one clflush
  /// pass and one sfence for the whole batch.  A block written by several
  /// members costs a single record.  All-or-nothing per batch: recovery
  /// surfaces either every member transaction or none of them.
  void absorb_commit_group(
      const std::vector<std::vector<
          std::pair<std::uint64_t, std::span<const std::byte>>>>& txns,
      DrainSink& sink);

  /// Read the newest absorbed-but-undrained image of `blkno`; false when
  /// the log holds none (caller falls through to the backing store).
  bool lookup(std::uint64_t blkno, std::span<std::byte> dst);

  /// Whether the log holds a live image of `blkno` (no read charged).
  [[nodiscard]] bool contains(std::uint64_t blkno) const {
    return index_.contains(blkno);
  }

  /// Append up to `max` drainable segment seqs, oldest first — the cleaner
  /// pull hook (sealed segments whose records are all committed).
  void collect_drainable(std::uint32_t max,
                         std::vector<std::uint64_t>& out) const;

  /// Drain the segment with this seq: coalesce (skip superseded records),
  /// sort ascending, apply through `sink`, then advance the persisted
  /// drained prefix over every leading drained segment.
  DrainResult drain_segment(std::uint64_t seq, DrainSink& sink);

  /// Seal the active segment and drain everything (unmount path).
  void drain_all(DrainSink& sink);

  /// Largest transaction absorb_commit() accepts: (num_segments - 1) full
  /// segments of block records, minus one so the commit record always fits.
  [[nodiscard]] std::uint64_t max_txn_blocks() const;

  /// Live (absorbed, undrained) block records in the index.
  [[nodiscard]] std::uint64_t live_records() const { return index_.size(); }

  /// Total block-record capacity of the log.
  [[nodiscard]] std::uint64_t record_capacity() const {
    return num_segments_ * records_per_segment();
  }

  [[nodiscard]] std::uint64_t num_segments() const { return num_segments_; }
  [[nodiscard]] std::uint64_t free_segments() const;
  [[nodiscard]] std::uint64_t sealed_segments() const;
  [[nodiscard]] std::uint64_t oldest_live_seq() const {
    return oldest_live_seq_;
  }

  /// Epoch of the newest watermark record written (ring slot rotation
  /// counter; recovery resumes from the highest valid epoch it mounted).
  [[nodiscard]] std::uint64_t watermark_epoch() const { return wm_epoch_; }

  [[nodiscard]] const NvLogStats& stats() const { return stats_; }
  [[nodiscard]] const NvLogConfig& config() const { return cfg_; }

  /// Register every counter, the drain-lag histogram and the occupancy
  /// gauges under `prefix` (e.g. "nvlog.").
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const;

  /// Test hook: NVM byte range of the newest live record for `blkno` —
  /// (header offset, total record bytes) within the log range.  Lets the
  /// torn-tail tests corrupt a precise record without knowing the layout.
  [[nodiscard]] std::optional<std::pair<std::uint64_t, std::uint64_t>>
  record_range(std::uint64_t blkno) const;

 private:
  /// One record's DRAM bookkeeping (rebuilt by recover()).
  struct RecordMeta {
    std::uint64_t off;    ///< header offset within the segment
    std::uint64_t lsn;
    std::uint64_t blkno;  ///< block records only
    bool is_commit;
  };

  enum class SegState : std::uint8_t { kFree, kActive, kSealed, kDrained };

  struct SegmentMeta {
    SegState state = SegState::kFree;
    std::uint64_t seq = 0;
    std::uint64_t write_off = 0;  ///< next append offset within the segment
    std::uint64_t max_lsn = 0;    ///< highest record lsn present
    std::uint64_t seal_ns = 0;    ///< virtual time of sealing (drain lag)
    std::vector<RecordMeta> records;
  };

  /// Where the newest live image of a block lives.
  struct IndexLoc {
    std::uint32_t seg;       ///< segment index
    std::uint64_t off;       ///< record header offset within the segment
    std::uint64_t lsn;
  };

  NvLogTier(nvm::NvmDevice& nvm, NvLogConfig cfg);

  [[nodiscard]] std::uint64_t segment_base(std::uint32_t idx) const;
  [[nodiscard]] std::uint64_t records_per_segment() const;

  /// Make the active segment able to take `bytes` more record bytes,
  /// sealing / acquiring / force-draining as needed.
  void ensure_room(std::uint64_t bytes, DrainSink& sink);

  /// Claim the least-worn free segment, write + persist its header with the
  /// next seq, make it active.
  void acquire_segment(DrainSink& sink);

  void seal_active();

  /// Advance oldest_live_seq_ over the leading drained segments, recycle
  /// them, and persist the new value.
  void advance_drained_prefix();

  /// Write + persist the next watermark record into its ring slot
  /// (DESIGN.md §16): epoch++, slot = epoch % watermark_slots.
  void persist_watermark();

  /// Append one record into the active segment (room guaranteed); collects
  /// the stored range into `flush_ranges_`.  `txn_first_lsn` stamps the
  /// record's txn field (the lsn of the txn's first record), which recovery
  /// uses to fence a commit record off stale remnants with matching offsets.
  /// Returns the index location of the appended record.
  IndexLoc append_record(bool is_commit, std::uint64_t txn_first_lsn,
                         std::uint64_t blkno,
                         std::span<const std::byte> payload);

  /// Segment index holding `seq`, or nullopt.
  [[nodiscard]] std::optional<std::uint32_t> find_seq(std::uint64_t seq) const;

  nvm::NvmDevice& nvm_;
  NvLogConfig cfg_;
  std::uint64_t num_segments_ = 0;

  std::vector<SegmentMeta> segs_;
  std::optional<std::uint32_t> active_;       ///< index into segs_
  std::unordered_map<std::uint64_t, IndexLoc> index_;  ///< blkno → newest
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t committed_lsn_ = 0;  ///< lsn of the last durable commit rec
  std::uint64_t oldest_live_seq_ = 1;
  /// Highest lsn inside the recycled prefix (persisted with
  /// oldest_live_seq_).  Recovery treats lsns at or below this as
  /// legitimately gone — a committed txn may span segments, and its older
  /// segments can be drained and recycled while newer ones still hold the
  /// txn's tail; anything missing *above* this watermark is a torn txn.
  std::uint64_t drained_upto_lsn_ = 0;
  /// Epoch of the newest watermark record (see log_meta.h); slot rotation
  /// counter.  Recovery resumes it from the mounted record.
  std::uint64_t wm_epoch_ = 0;
  /// The superblock's format generation, salting every watermark record's
  /// checksum so records from a previous life of the device never validate.
  std::uint64_t format_nonce_ = 0;

  /// Ranges stored by the in-flight absorb, flushed in one pass at commit.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flush_ranges_;

  NvLogStats stats_;
};

}  // namespace tinca::nvlog
