// JBD2-style redo journal (the "Classic" baseline's top layer).
//
// Reproduces the on-disk journal structure of §2.3 / Fig 2(b): a journal
// superblock, then transactions made of descriptor blocks (tagging the home
// addresses of the following log blocks), the log blocks themselves, and a
// commit block that seals the transaction.  Committed transactions are later
// *checkpointed* — every logged block is written a second time to its home
// location — when journal space runs low.  Those are exactly the double
// writes Tinca eliminates.
//
// The journal lives in a reserved block range of the disk address space and
// performs all its I/O through the cache layer below (FlashCache), so
// journal traffic both amplifies NVM writes and competes for cache capacity,
// as the paper observes (§3.1, §5.4.2).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "classic/flashcache.h"
#include "obs/trace.h"

namespace tinca::classic {

/// Journal geometry and policy.
struct JournalConfig {
  /// First disk block of the journal area.
  std::uint64_t base_blkno = 0;
  /// Length of the journal area in blocks (superblock + ring).
  std::uint64_t length_blocks = 8192;
  /// Checkpoint when the free fraction of the ring drops below this.
  double checkpoint_low_water = 0.25;
};

/// Counters for one journal instance.
struct JournalStats {
  std::uint64_t txns_committed = 0;
  std::uint64_t log_blocks_written = 0;
  std::uint64_t descriptor_blocks_written = 0;
  std::uint64_t commit_blocks_written = 0;
  std::uint64_t checkpoint_writes = 0;  ///< second (home-location) writes
  std::uint64_t superblock_writes = 0;
  std::uint64_t txns_replayed = 0;      ///< recovered by replay
  /// Cache operations that reported a disk fault (non-kOk status from the
  /// FlashCache below).  The journal's own data is safe in NVM either way;
  /// this counts how often the backing disk degraded under journal traffic.
  std::uint64_t io_errors_observed = 0;
};

/// Redo journal over a FlashCache-managed device.
class Journal {
 public:
  /// Initialize a fresh journal in its reserved area.
  static std::unique_ptr<Journal> format(FlashCache& cache, JournalConfig cfg);

  /// Mount an existing journal, replaying committed transactions
  /// (JBD2-style recovery: replay == checkpoint-all).
  static std::unique_ptr<Journal> recover(FlashCache& cache, JournalConfig cfg);

  /// Commit one transaction: descriptor block(s) + log blocks + commit
  /// block, all through the cache.  `blocks` pairs home block numbers with
  /// their 4 KB contents.
  void commit(const std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>& blocks);

  /// If `blkno` is committed but not yet checkpointed, return its latest
  /// logged contents (models the page cache holding dirty buffers); nullptr
  /// otherwise.
  [[nodiscard]] const std::vector<std::byte>* pending(std::uint64_t blkno) const;

  /// Checkpoint every outstanding transaction (unmount path).
  void checkpoint_all();

  /// Number of free ring blocks.
  [[nodiscard]] std::uint64_t free_ring_blocks() const;

  /// Largest number of data blocks one transaction may log.
  [[nodiscard]] std::uint64_t max_txn_blocks() const;

  [[nodiscard]] const JournalStats& stats() const { return stats_; }
  [[nodiscard]] const JournalConfig& config() const { return cfg_; }

  /// Trace spans: classic.journal_commit / classic.checkpoint /
  /// classic.replay (virtual-time; disabled by default).
  [[nodiscard]] obs::Tracer& tracer() { return trace_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return trace_; }

  /// Register the journal counters and span histograms under `prefix`.
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const;

 private:
  Journal(FlashCache& cache, JournalConfig cfg);

  struct TxnRecord {
    std::uint64_t seq;
    std::uint64_t ring_blocks;  ///< descriptor + log + commit blocks used
    std::vector<std::uint64_t> home_blknos;
  };

  void format_media();
  void run_recovery();
  void write_superblock();
  void checkpoint_one();
  void make_room(std::uint64_t needed_blocks);
  /// Fold a cache-returned status into io_errors_observed.
  void observe(blockdev::IoStatus st);

  [[nodiscard]] std::uint64_t ring_len() const { return cfg_.length_blocks - 1; }
  [[nodiscard]] std::uint64_t ring_blkno(std::uint64_t off) const {
    return cfg_.base_blkno + 1 + (off % ring_len());
  }

  FlashCache& cache_;
  JournalConfig cfg_;

  std::uint64_t head_off_ = 0;  ///< monotonic ring offset of next write
  std::uint64_t tail_off_ = 0;  ///< monotonic ring offset of oldest txn
  std::uint64_t next_seq_ = 1;
  std::uint64_t tail_seq_ = 1;

  std::deque<TxnRecord> unchkpt_;
  /// Latest committed-but-unchckpointed contents per home block, with a
  /// reference count of how many outstanding transactions logged the block.
  struct Pending {
    std::vector<std::byte> data;
    std::uint32_t refs = 0;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;

  JournalStats stats_;

  obs::Tracer trace_;  ///< virtual-time tracer (the cache's NVM clock)
  obs::Tracer::Site* ts_commit_;
  obs::Tracer::Site* ts_checkpoint_;
  obs::Tracer::Site* ts_replay_;
};

}  // namespace tinca::classic
