#include "classic/journal.h"

#include <cstring>

#include "common/bytes.h"
#include "common/expect.h"
#include "obs/metrics.h"

namespace tinca::classic {

namespace {
constexpr std::uint64_t kBlockSize = blockdev::kBlockSize;
constexpr std::uint64_t kSuperMagic = 0x4A4F55524E414C53ULL;  // "JOURNALS"
constexpr std::uint64_t kDescMagic = 0x4445534352495054ULL;   // "DESCRIPT"
constexpr std::uint64_t kCommitMagic = 0x434F4D4D49542121ULL; // "COMMIT!!"
/// Home-address tags per descriptor block: (4096 - 24 B header) / 8 B.
constexpr std::uint64_t kTagsPerDescriptor = (kBlockSize - 24) / 8;
}  // namespace

Journal::Journal(FlashCache& cache, JournalConfig cfg)
    : cache_(cache),
      cfg_(cfg),
      trace_(cache.nvm().clock(), /*tid=*/0, "classic."),
      ts_commit_(trace_.site("journal_commit")),
      ts_checkpoint_(trace_.site("checkpoint")),
      ts_replay_(trace_.site("replay")) {
  TINCA_EXPECT(cfg_.length_blocks >= 8, "journal area too small");
}

std::unique_ptr<Journal> Journal::format(FlashCache& cache, JournalConfig cfg) {
  auto j = std::unique_ptr<Journal>(new Journal(cache, cfg));
  j->format_media();
  return j;
}

std::unique_ptr<Journal> Journal::recover(FlashCache& cache, JournalConfig cfg) {
  auto j = std::unique_ptr<Journal>(new Journal(cache, cfg));
  j->run_recovery();
  return j;
}

std::uint64_t Journal::free_ring_blocks() const {
  return ring_len() - (head_off_ - tail_off_);
}

std::uint64_t Journal::max_txn_blocks() const {
  // commit() requires ndesc + n + 1 <= ring_len/2; bound n conservatively.
  const std::uint64_t budget = ring_len() / 2;
  return budget > 4 ? (budget - 2) * kTagsPerDescriptor / (kTagsPerDescriptor + 1)
                    : 1;
}

void Journal::observe(blockdev::IoStatus st) {
  if (st != blockdev::IoStatus::kOk) ++stats_.io_errors_observed;
}

void Journal::write_superblock() {
  std::vector<std::byte> sb(kBlockSize, std::byte{0});
  store_le(sb.data(), kSuperMagic, 8);
  store_le(sb.data() + 8, tail_seq_, 8);
  store_le(sb.data() + 16, tail_off_, 8);
  observe(cache_.write_block(cfg_.base_blkno, sb));
  ++stats_.superblock_writes;
}

void Journal::format_media() {
  head_off_ = 0;
  tail_off_ = 0;
  next_seq_ = 1;
  tail_seq_ = 1;
  write_superblock();
}

void Journal::commit(
    const std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>& blocks) {
  TINCA_TRACE_SPAN(trace_, ts_commit_);
  const std::uint64_t n = blocks.size();
  if (n == 0) {
    ++stats_.txns_committed;
    return;
  }
  const std::uint64_t ndesc = (n + kTagsPerDescriptor - 1) / kTagsPerDescriptor;
  const std::uint64_t needed = ndesc + n + 1;
  TINCA_EXPECT(needed <= ring_len() / 2,
               "transaction too large for the journal ring");
  make_room(needed);

  TxnRecord rec;
  rec.seq = next_seq_++;
  rec.ring_blocks = needed;

  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t tags = std::min<std::uint64_t>(kTagsPerDescriptor, n - i);
    // Descriptor block: header + home-address tags (Fig 2(b)).
    std::vector<std::byte> desc(kBlockSize, std::byte{0});
    store_le(desc.data(), kDescMagic, 8);
    store_le(desc.data() + 8, rec.seq, 8);
    store_le(desc.data() + 16, tags, 8);
    for (std::uint64_t t = 0; t < tags; ++t)
      store_le(desc.data() + 24 + t * 8, blocks[i + t].first, 8);
    observe(cache_.write_block(ring_blkno(head_off_++), desc));
    ++stats_.descriptor_blocks_written;

    // The log blocks this descriptor covers.
    for (std::uint64_t t = 0; t < tags; ++t) {
      const auto& [home, data] = blocks[i + t];
      TINCA_EXPECT(data.size() == kBlockSize, "journal logs whole 4 KB blocks");
      observe(cache_.write_block(ring_blkno(head_off_++), data));
      ++stats_.log_blocks_written;
      rec.home_blknos.push_back(home);
      Pending& p = pending_[home];
      p.data = data;
      ++p.refs;
    }
    i += tags;
  }

  // Commit block seals the transaction.
  std::vector<std::byte> commit_blk(kBlockSize, std::byte{0});
  store_le(commit_blk.data(), kCommitMagic, 8);
  store_le(commit_blk.data() + 8, rec.seq, 8);
  observe(cache_.write_block(ring_blkno(head_off_++), commit_blk));
  ++stats_.commit_blocks_written;

  unchkpt_.push_back(std::move(rec));
  ++stats_.txns_committed;
}

const std::vector<std::byte>* Journal::pending(std::uint64_t blkno) const {
  auto it = pending_.find(blkno);
  return it == pending_.end() ? nullptr : &it->second.data;
}

void Journal::checkpoint_one() {
  TINCA_TRACE_SPAN(trace_, ts_checkpoint_);
  TINCA_EXPECT(!unchkpt_.empty(), "checkpoint with no outstanding transaction");
  TxnRecord rec = std::move(unchkpt_.front());
  unchkpt_.pop_front();
  for (std::uint64_t home : rec.home_blknos) {
    auto it = pending_.find(home);
    TINCA_ENSURE(it != pending_.end(), "pending entry missing at checkpoint");
    if (--it->second.refs == 0) {
      // Last transaction holding this buffer: write it home — the second
      // write of the double write.  (A block re-logged by a newer
      // transaction is skipped here, as JBD2 skips buffers that have moved
      // to a newer transaction; the newer one will checkpoint it.)
      observe(cache_.write_block(home, it->second.data));
      ++stats_.checkpoint_writes;
      pending_.erase(it);
    }
  }
  tail_off_ += rec.ring_blocks;
  tail_seq_ = rec.seq + 1;
}

void Journal::make_room(std::uint64_t needed_blocks) {
  const auto low_water = static_cast<std::uint64_t>(
      cfg_.checkpoint_low_water * static_cast<double>(ring_len()));
  bool advanced = false;
  while (!unchkpt_.empty() &&
         (free_ring_blocks() < needed_blocks || free_ring_blocks() < low_water)) {
    checkpoint_one();
    advanced = true;
  }
  if (advanced) write_superblock();
  TINCA_ENSURE(free_ring_blocks() >= needed_blocks, "journal ring wedged");
}

void Journal::checkpoint_all() {
  if (unchkpt_.empty()) return;
  while (!unchkpt_.empty()) checkpoint_one();
  write_superblock();
}

void Journal::run_recovery() {
  TINCA_TRACE_SPAN(trace_, ts_replay_);
  std::vector<std::byte> sb(kBlockSize);
  observe(cache_.read_block(cfg_.base_blkno, sb));
  TINCA_EXPECT(load_le(sb.data(), 8) == kSuperMagic,
               "no journal superblock found");
  tail_seq_ = load_le(sb.data() + 8, 8);
  tail_off_ = load_le(sb.data() + 16, 8);

  // Replay committed transactions in sequence order until the chain breaks.
  std::uint64_t off = tail_off_;
  std::uint64_t seq = tail_seq_;
  std::vector<std::byte> blk(kBlockSize);
  while (true) {
    cache_.read_block(ring_blkno(off), blk);
    if (load_le(blk.data(), 8) != kDescMagic || load_le(blk.data() + 8, 8) != seq)
      break;

    // Gather this transaction's (descriptor, logs)* chain.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> tags_and_offs;
    std::uint64_t scan = off;
    bool sealed = false;
    while (true) {
      cache_.read_block(ring_blkno(scan), blk);
      const std::uint64_t magic = load_le(blk.data(), 8);
      if (magic == kCommitMagic && load_le(blk.data() + 8, 8) == seq) {
        ++scan;
        sealed = true;
        break;
      }
      if (magic != kDescMagic || load_le(blk.data() + 8, 8) != seq) break;
      const std::uint64_t tags = load_le(blk.data() + 16, 8);
      if (tags == 0 || tags > kTagsPerDescriptor) break;
      ++scan;
      for (std::uint64_t t = 0; t < tags; ++t)
        tags_and_offs.emplace_back(load_le(blk.data() + 24 + t * 8, 8), scan + t);
      scan += tags;
      if (scan - tail_off_ > ring_len()) break;  // wrapped past ourselves
    }
    if (!sealed) break;  // uncommitted transaction: discard (redo journaling)

    // Replay: copy every log block to its home location.
    for (const auto& [home, log_off] : tags_and_offs) {
      observe(cache_.read_block(ring_blkno(log_off), blk));
      observe(cache_.write_block(home, blk));
    }
    ++stats_.txns_replayed;
    off = scan;
    ++seq;
  }

  // Replay doubles as checkpoint-all: the journal restarts empty.
  head_off_ = off;
  tail_off_ = off;
  tail_seq_ = seq;
  next_seq_ = seq;
  write_superblock();
}

void Journal::register_metrics(obs::MetricsRegistry& reg,
                               const std::string& prefix) const {
  reg.add_counter(prefix + "txns_committed", &stats_.txns_committed);
  reg.add_counter(prefix + "log_blocks_written", &stats_.log_blocks_written);
  reg.add_counter(prefix + "descriptor_blocks_written",
                  &stats_.descriptor_blocks_written);
  reg.add_counter(prefix + "commit_blocks_written",
                  &stats_.commit_blocks_written);
  reg.add_counter(prefix + "checkpoint_writes", &stats_.checkpoint_writes);
  reg.add_counter(prefix + "superblock_writes", &stats_.superblock_writes);
  reg.add_counter(prefix + "txns_replayed", &stats_.txns_replayed);
  reg.add_counter(prefix + "io_errors_observed", &stats_.io_errors_observed);
  reg.add_gauge(prefix + "free_ring_blocks",
                [this] { return free_ring_blocks(); });
  trace_.register_into(reg, prefix + "lat.");
}

}  // namespace tinca::classic
