// The assembled "Classic" competitor (paper §5.1).
//
// Three layers, matching the paper's baseline exactly:
//   top:    Ext4-style journaling (Journal, JBD2 semantics, data-journal
//           mode so both metadata and data achieve data consistency);
//   middle: FlashCache as the cache manager over NVM (block-format
//           metadata, synchronous updates);
//   bottom: the NVM device itself plus the backing disk.
//
// ClassicStack also provides the §3 ablation modes: journaling can be turned
// off ("Ext4 without journaling") and the cache's consistency costs can be
// relaxed via FlashCacheConfig, which the Fig 3 / Fig 4 benches sweep.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "classic/flashcache.h"
#include "classic/journal.h"

namespace tinca::classic {

/// Configuration of the full Classic stack.
struct ClassicConfig {
  /// Run the journaling layer (Ext4 journal mode).  Off = the "without
  /// journaling" ablation: transactional writes go straight to the cache.
  bool journaling = true;
  /// Blocks reserved for the journal at the top of the disk address space.
  std::uint64_t journal_blocks = 8192;
  /// Checkpoint low-water fraction.
  double checkpoint_low_water = 0.25;
  /// Cache-layer tunables.
  FlashCacheConfig cache;
};

/// A transaction staged in DRAM for the Classic stack.
class ClassicTxn {
 public:
  /// Stage a 4 KB block update; staging a block twice keeps the latest.
  void add(std::uint64_t disk_blkno, std::span<const std::byte> data);

  [[nodiscard]] std::size_t block_count() const { return order_.size(); }
  [[nodiscard]] bool open() const { return open_; }

 private:
  friend class ClassicStack;
  bool open_ = true;
  std::vector<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> blocks_;
};

/// Journal + FlashCache + disk, exposing the same transactional surface as
/// TincaCache so workloads can drive either stack.
class ClassicStack {
 public:
  /// Format cache and journal from scratch.
  static std::unique_ptr<ClassicStack> format(nvm::NvmDevice& nvm,
                                              blockdev::BlockDevice& disk,
                                              ClassicConfig cfg = {});

  /// Mount after restart/crash: Flashcache metadata scan + journal replay.
  static std::unique_ptr<ClassicStack> recover(nvm::NvmDevice& nvm,
                                               blockdev::BlockDevice& disk,
                                               ClassicConfig cfg = {});

  /// Begin a transaction.
  ClassicTxn begin_txn();

  /// Commit: with journaling, descriptor/log/commit blocks into the journal
  /// (checkpointed later); without, direct cache writes.
  void commit(ClassicTxn& txn);

  /// Abort a running transaction (nothing has been written).
  void abort(ClassicTxn& txn);

  /// Read a block: committed-but-unchckpointed data is served from the
  /// journal's pending buffers (the page cache), then the cache, then disk.
  void read_block(std::uint64_t disk_blkno, std::span<std::byte> dst);

  /// Checkpoint everything and write all dirty cache blocks to disk.
  void flush_all();

  /// Highest disk block usable for data (below the journal area).
  [[nodiscard]] std::uint64_t data_block_limit() const {
    return journal_base_;
  }

  [[nodiscard]] FlashCache& cache() { return *cache_; }
  [[nodiscard]] Journal* journal() { return journal_.get(); }
  [[nodiscard]] bool journaling() const { return cfg_.journaling; }

 private:
  ClassicStack(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
               ClassicConfig cfg);

  ClassicConfig cfg_;
  std::uint64_t journal_base_ = 0;
  std::unique_ptr<FlashCache> cache_;
  std::unique_ptr<Journal> journal_;
};

}  // namespace tinca::classic
