#include "classic/classic_stack.h"

#include "common/expect.h"

namespace tinca::classic {

void ClassicTxn::add(std::uint64_t disk_blkno, std::span<const std::byte> data) {
  TINCA_EXPECT(open_, "add to a closed transaction");
  TINCA_EXPECT(data.size() == blockdev::kBlockSize, "blocks are 4 KB");
  auto [it, inserted] = blocks_.try_emplace(disk_blkno);
  if (inserted) order_.push_back(disk_blkno);
  it->second.assign(data.begin(), data.end());
}

ClassicStack::ClassicStack(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
                           ClassicConfig cfg)
    : cfg_(cfg) {
  TINCA_EXPECT(disk.block_count() > cfg_.journal_blocks + 16,
               "disk too small for the journal area");
  journal_base_ = disk.block_count() - cfg_.journal_blocks;
  (void)nvm;  // bound via cache_ in format/recover
}

std::unique_ptr<ClassicStack> ClassicStack::format(nvm::NvmDevice& nvm,
                                                   blockdev::BlockDevice& disk,
                                                   ClassicConfig cfg) {
  auto s = std::unique_ptr<ClassicStack>(new ClassicStack(nvm, disk, cfg));
  FlashCacheConfig cache_cfg = cfg.cache;
  if (cfg.journaling) cache_cfg.hit_stats_boundary = s->journal_base_;
  s->cache_ = FlashCache::format(nvm, disk, cache_cfg);
  if (cfg.journaling) {
    JournalConfig jc;
    jc.base_blkno = s->journal_base_;
    jc.length_blocks = cfg.journal_blocks;
    jc.checkpoint_low_water = cfg.checkpoint_low_water;
    s->journal_ = Journal::format(*s->cache_, jc);
  }
  return s;
}

std::unique_ptr<ClassicStack> ClassicStack::recover(nvm::NvmDevice& nvm,
                                                    blockdev::BlockDevice& disk,
                                                    ClassicConfig cfg) {
  auto s = std::unique_ptr<ClassicStack>(new ClassicStack(nvm, disk, cfg));
  FlashCacheConfig cache_cfg = cfg.cache;
  if (cfg.journaling) cache_cfg.hit_stats_boundary = s->journal_base_;
  s->cache_ = FlashCache::recover(nvm, disk, cache_cfg);
  if (cfg.journaling) {
    JournalConfig jc;
    jc.base_blkno = s->journal_base_;
    jc.length_blocks = cfg.journal_blocks;
    jc.checkpoint_low_water = cfg.checkpoint_low_water;
    s->journal_ = Journal::recover(*s->cache_, jc);
  }
  return s;
}

ClassicTxn ClassicStack::begin_txn() { return ClassicTxn{}; }

void ClassicStack::commit(ClassicTxn& txn) {
  TINCA_EXPECT(txn.open_, "commit of a closed transaction");
  txn.open_ = false;
  if (txn.order_.empty()) return;

  if (cfg_.journaling) {
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> blocks;
    blocks.reserve(txn.order_.size());
    for (std::uint64_t blkno : txn.order_) {
      TINCA_EXPECT(blkno < journal_base_, "data write inside the journal area");
      blocks.emplace_back(blkno, std::move(txn.blocks_[blkno]));
    }
    journal_->commit(blocks);
  } else {
    // No-journal ablation: single direct write per block, no consistency.
    for (std::uint64_t blkno : txn.order_)
      cache_->write_block(blkno, txn.blocks_[blkno]);
  }
  txn.order_.clear();
  txn.blocks_.clear();
}

void ClassicStack::abort(ClassicTxn& txn) {
  TINCA_EXPECT(txn.open_, "abort of a closed transaction");
  txn.open_ = false;
  txn.order_.clear();
  txn.blocks_.clear();
}

void ClassicStack::read_block(std::uint64_t disk_blkno,
                              std::span<std::byte> dst) {
  if (journal_) {
    if (const auto* data = journal_->pending(disk_blkno)) {
      std::copy(data->begin(), data->end(), dst.begin());
      return;
    }
  }
  cache_->read_block(disk_blkno, dst);
}

void ClassicStack::flush_all() {
  if (journal_) journal_->checkpoint_all();
  cache_->flush_dirty();
}

}  // namespace tinca::classic
