#include "classic/flashcache.h"

#include <cstring>

#include "common/bytes.h"
#include "common/expect.h"
#include "obs/metrics.h"

namespace tinca::classic {

namespace {
constexpr std::uint64_t kMagic = 0x464C4153'48243234ULL;  // "FLASH$24"
constexpr std::uint64_t kBlockSize = blockdev::kBlockSize;
constexpr std::uint64_t kSuperBytes = kBlockSize;

// Per-slot persistent record: 8 B disk block number | 8 B flags.
constexpr std::uint64_t kSlotRecordBytes = 16;
constexpr std::uint64_t kFlagValid = 0x1;
constexpr std::uint64_t kFlagDirty = 0x2;
}  // namespace

FlashCache::FlashCache(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
                       FlashCacheConfig cfg)
    : nvm_(nvm), disk_(disk), cfg_(cfg) {
  // Geometry: one 4 KB metadata block + 256 data blocks per set.
  const std::uint64_t per_set_bytes =
      kBlockSize + FlashCacheConfig::kAssoc * kBlockSize;
  const std::uint64_t usable = nvm_.size() - kSuperBytes;
  num_sets_ = static_cast<std::uint32_t>(usable / per_set_bytes);
  TINCA_EXPECT(num_sets_ >= 1, "NVM too small for one Flashcache set");
  num_slots_ = static_cast<std::uint64_t>(num_sets_) * FlashCacheConfig::kAssoc;
  data_region_off_ = kSuperBytes + static_cast<std::uint64_t>(num_sets_) * kBlockSize;
  slots_.resize(num_slots_);
  set_dirty_.assign(num_sets_, 0);
}

std::unique_ptr<FlashCache> FlashCache::format(nvm::NvmDevice& nvm,
                                               blockdev::BlockDevice& disk,
                                               FlashCacheConfig cfg) {
  auto cache = std::unique_ptr<FlashCache>(new FlashCache(nvm, disk, cfg));
  cache->format_media();
  return cache;
}

std::unique_ptr<FlashCache> FlashCache::recover(nvm::NvmDevice& nvm,
                                                blockdev::BlockDevice& disk,
                                                FlashCacheConfig cfg) {
  auto cache = std::unique_ptr<FlashCache>(new FlashCache(nvm, disk, cfg));
  cache->run_recovery();
  return cache;
}

std::uint64_t FlashCache::metadata_off(std::uint32_t set) const {
  return kSuperBytes + static_cast<std::uint64_t>(set) * kBlockSize;
}

std::uint64_t FlashCache::data_off(std::uint32_t slot) const {
  return data_region_off_ + static_cast<std::uint64_t>(slot) * kBlockSize;
}

std::uint32_t FlashCache::set_of(std::uint64_t disk_blkno) const {
  // Flashcache hashes the dbn; a multiplicative hash spreads sequential
  // block numbers across sets.
  const std::uint64_t h = disk_blkno * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::uint32_t>(h % num_sets_);
}

void FlashCache::format_media() {
  nvm_.atomic_store8(0, kMagic);
  nvm_.atomic_store8(8, num_sets_);
  nvm_.persist(0, 16);
  const std::vector<std::byte> zeros(kBlockSize, std::byte{0});
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    nvm_.store(metadata_off(set), zeros);
    nvm_.clflush(metadata_off(set), kBlockSize);
  }
  nvm_.sfence();
}

void FlashCache::run_recovery() {
  TINCA_EXPECT(nvm_.load8(0) == kMagic, "NVM device is not a Flashcache");
  TINCA_EXPECT(nvm_.load8(8) == num_sets_, "Flashcache geometry changed");
  std::vector<std::byte> meta(kBlockSize);
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    nvm_.load(metadata_off(set), meta);
    for (std::uint32_t i = 0; i < FlashCacheConfig::kAssoc; ++i) {
      const std::byte* rec = meta.data() + i * kSlotRecordBytes;
      const std::uint64_t flags = load_le(rec + 8, 8);
      if (!(flags & kFlagValid)) continue;
      const std::uint32_t slot = set * FlashCacheConfig::kAssoc + i;
      Slot& s = slots_[slot];
      s.disk_blkno = load_le(rec, 8);
      s.valid = true;
      s.dirty = (flags & kFlagDirty) != 0;
      s.lru_tick = 0;
      if (s.dirty) ++set_dirty_[set];
      index_.emplace(s.disk_blkno, slot);
    }
  }
}

void FlashCache::persist_set_metadata(std::uint32_t set) {
  if (!cfg_.sync_metadata) return;
  // Rebuild the whole 4 KB metadata block from DRAM state and rewrite it —
  // the block-format synchronous update the paper measures (§3.2).
  std::vector<std::byte> meta(kBlockSize, std::byte{0});
  for (std::uint32_t i = 0; i < FlashCacheConfig::kAssoc; ++i) {
    const Slot& s = slots_[set * FlashCacheConfig::kAssoc + i];
    std::byte* rec = meta.data() + i * kSlotRecordBytes;
    store_le(rec, s.disk_blkno, 8);
    std::uint64_t flags = 0;
    if (s.valid) flags |= kFlagValid;
    if (s.dirty) flags |= kFlagDirty;
    store_le(rec + 8, flags, 8);
  }
  nvm_.store(metadata_off(set), meta);
  if (cfg_.use_flush) nvm_.persist(metadata_off(set), kBlockSize);
  ++stats_.metadata_block_writes;
}

void FlashCache::persist_data(std::uint32_t slot,
                              std::span<const std::byte> data) {
  nvm_.store(data_off(slot), data);
  if (cfg_.use_flush) nvm_.persist(data_off(slot), kBlockSize);
}

blockdev::IoStatus FlashCache::disk_write(std::uint64_t blkno,
                                          std::span<const std::byte> buf) {
  blockdev::IoStatus st = disk_.write(blkno, buf);
  std::uint64_t wait = cfg_.io.backoff_ns;
  for (std::uint32_t attempt = 0;
       st == blockdev::IoStatus::kTransient && attempt < cfg_.io.max_retries;
       ++attempt) {
    nvm_.clock().advance(wait);
    wait *= cfg_.io.backoff_mult == 0 ? 1 : cfg_.io.backoff_mult;
    ++stats_.io_retries;
    st = disk_.write(blkno, buf);
  }
  op_st_ = blockdev::worse(op_st_, st);
  return st;
}

blockdev::IoStatus FlashCache::disk_read(std::uint64_t blkno,
                                         std::span<std::byte> buf) {
  blockdev::IoStatus st = disk_.read(blkno, buf);
  std::uint64_t wait = cfg_.io.backoff_ns;
  for (std::uint32_t attempt = 0;
       st == blockdev::IoStatus::kTransient && attempt < cfg_.io.max_retries;
       ++attempt) {
    nvm_.clock().advance(wait);
    wait *= cfg_.io.backoff_mult == 0 ? 1 : cfg_.io.backoff_mult;
    ++stats_.io_retries;
    st = disk_.read(blkno, buf);
  }
  op_st_ = blockdev::worse(op_st_, st);
  return st;
}

void FlashCache::note_bad_block(std::uint64_t disk_blkno) {
  if (quarantine_.insert(disk_blkno).second) ++stats_.io_quarantined;
  degraded_ = true;
}

bool FlashCache::writeback_slot(std::uint32_t slot) {
  const Slot& s = slots_[slot];
  if (quarantine_.contains(s.disk_blkno)) return false;
  std::vector<std::byte> buf(kBlockSize);
  nvm_.load(data_off(slot), buf);
  const blockdev::IoStatus st = disk_write(s.disk_blkno, buf);
  if (st == blockdev::IoStatus::kOk) return true;
  if (st == blockdev::IoStatus::kBadSector) note_bad_block(s.disk_blkno);
  return false;
}

std::uint32_t FlashCache::provision_slot(std::uint32_t set,
                                         std::uint64_t disk_blkno) {
  const std::uint32_t base = set * FlashCacheConfig::kAssoc;
  // LRU victim selection, re-run when a dirty victim's writeback fails:
  // such a slot cannot be evicted (its data exists nowhere else), so it is
  // excluded and the next-oldest slot tried instead.
  std::vector<bool> excluded(FlashCacheConfig::kAssoc, false);
  std::uint32_t victim = UINT32_MAX;
  for (;;) {
    victim = UINT32_MAX;
    std::uint64_t victim_tick = UINT64_MAX;
    for (std::uint32_t i = 0; i < FlashCacheConfig::kAssoc; ++i) {
      Slot& s = slots_[base + i];
      if (excluded[i]) continue;
      if (!s.valid) {
        victim = base + i;
        victim_tick = 0;
        break;
      }
      if (s.lru_tick < victim_tick) {
        victim_tick = s.lru_tick;
        victim = base + i;
      }
    }
    TINCA_ENSURE(victim != UINT32_MAX,
                 "Flashcache set wedged: every slot is dirty behind a failing "
                 "disk");
    Slot& s = slots_[victim];
    if (!s.valid || !s.dirty) break;
    if (writeback_slot(victim)) {
      ++stats_.dirty_writebacks;
      s.dirty = false;
      --set_dirty_[set];
      break;
    }
    excluded[victim - base] = true;
  }
  Slot& v = slots_[victim];
  if (v.valid) {
    index_.erase(v.disk_blkno);
    ++stats_.evictions;
    // Persist the invalidation *before* the slot's data block is reused:
    // otherwise a crash between the new data write and the metadata update
    // would leave the old mapping pointing at the new block's contents.
    v.valid = false;
    v.dirty = false;
    persist_set_metadata(set);
    nvm_.injector.point();  // CP: victim invalidated, slot not yet reused
  }
  v.disk_blkno = disk_blkno;
  v.valid = true;
  v.dirty = false;
  v.lru_tick = ++lru_clock_;
  index_.emplace(disk_blkno, victim);
  return victim;
}

blockdev::IoStatus FlashCache::write_block(std::uint64_t disk_blkno,
                                           std::span<const std::byte> data) {
  TINCA_EXPECT(data.size() == kBlockSize, "writes are whole 4 KB blocks");
  nvm_.clock().advance(cfg_.cpu_op_ns);
  op_st_ = blockdev::IoStatus::kOk;
  const std::uint32_t set = set_of(disk_blkno);
  auto it = index_.find(disk_blkno);
  std::uint32_t slot;
  if (it != index_.end()) {
    ++stats_.write_hits;
    if (disk_blkno < cfg_.hit_stats_boundary) ++stats_.data_write_hits;
    slot = it->second;
  } else {
    ++stats_.write_misses;
    if (disk_blkno < cfg_.hit_stats_boundary) ++stats_.data_write_misses;
    slot = provision_slot(set, disk_blkno);
  }
  Slot& s = slots_[slot];
  // Data first, metadata second: metadata only acknowledges durable data.
  nvm_.injector.point();  // CP: before the data write
  persist_data(slot, data);
  nvm_.injector.point();  // CP: data durable, metadata stale
  if (!s.dirty) ++set_dirty_[set];
  s.dirty = true;
  s.lru_tick = ++lru_clock_;
  // Degraded mode (bad sector seen): force the block straight to disk so
  // disk health surfaces per write instead of at eviction time.  Failure —
  // including a quarantined target — just leaves the block dirty in NVM.
  if (degraded_ && writeback_slot(slot)) {
    ++stats_.io_degraded_writes;
    s.dirty = false;
    --set_dirty_[set];
  }
  clean_set_to_threshold(set);
  persist_set_metadata(set);
  nvm_.injector.point();  // CP: write acknowledged
  return op_st_;
}

void FlashCache::clean_set_to_threshold(std::uint32_t set) {
  if (cfg_.dirty_thresh_pct >= 100) return;
  const std::uint32_t limit =
      FlashCacheConfig::kAssoc * cfg_.dirty_thresh_pct / 100;
  if (set_dirty_[set] <= limit) return;
  // Oldest-first cleaning, as Flashcache's background cleaner does.  Slots
  // whose writeback fails are excluded for this pass — otherwise a
  // perma-failing slot would keep the minimum lru_tick and spin the loop
  // forever — and the pass ends early once only failing slots remain dirty.
  const std::uint32_t base = set * FlashCacheConfig::kAssoc;
  std::vector<bool> excluded(FlashCacheConfig::kAssoc, false);
  while (set_dirty_[set] > limit) {
    std::uint32_t victim = UINT32_MAX;
    std::uint64_t victim_tick = UINT64_MAX;
    for (std::uint32_t i = 0; i < FlashCacheConfig::kAssoc; ++i) {
      const Slot& s = slots_[base + i];
      if (!excluded[i] && s.valid && s.dirty && s.lru_tick < victim_tick) {
        victim_tick = s.lru_tick;
        victim = base + i;
      }
    }
    if (victim == UINT32_MAX) break;  // nothing cleanable left
    if (!writeback_slot(victim)) {
      excluded[victim - base] = true;
      continue;
    }
    slots_[victim].dirty = false;
    --set_dirty_[set];
    ++stats_.dirty_writebacks;
    ++stats_.threshold_cleanings;
  }
}

blockdev::IoStatus FlashCache::read_block(std::uint64_t disk_blkno,
                                          std::span<std::byte> dst) {
  TINCA_EXPECT(dst.size() == kBlockSize, "reads are whole 4 KB blocks");
  nvm_.clock().advance(cfg_.cpu_op_ns);
  op_st_ = blockdev::IoStatus::kOk;
  auto it = index_.find(disk_blkno);
  if (it != index_.end()) {
    ++stats_.read_hits;
    nvm_.load(data_off(it->second), dst);
    slots_[it->second].lru_tick = ++lru_clock_;
    return blockdev::IoStatus::kOk;
  }
  ++stats_.read_misses;
  if (disk_read(disk_blkno, dst) != blockdev::IoStatus::kOk) return op_st_;
  if (!cfg_.cache_reads) return op_st_;
  const std::uint32_t set = set_of(disk_blkno);
  const std::uint32_t slot = provision_slot(set, disk_blkno);
  persist_data(slot, dst);
  persist_set_metadata(set);
  return op_st_;
}

void FlashCache::flush_dirty() {
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    bool touched = false;
    for (std::uint32_t i = 0; i < FlashCacheConfig::kAssoc; ++i) {
      const std::uint32_t slot = set * FlashCacheConfig::kAssoc + i;
      Slot& s = slots_[slot];
      if (!s.valid || !s.dirty) continue;
      if (!writeback_slot(slot)) continue;  // stays dirty for the next flush
      s.dirty = false;
      --set_dirty_[set];
      touched = true;
      ++stats_.dirty_writebacks;
    }
    if (touched) persist_set_metadata(set);
  }
}

bool FlashCache::dirty(std::uint64_t disk_blkno) const {
  auto it = index_.find(disk_blkno);
  return it != index_.end() && slots_[it->second].dirty;
}

void FlashCache::register_metrics(obs::MetricsRegistry& reg,
                                  const std::string& prefix) const {
  reg.add_counter(prefix + "write_hits", &stats_.write_hits);
  reg.add_counter(prefix + "write_misses", &stats_.write_misses);
  reg.add_counter(prefix + "data_write_hits", &stats_.data_write_hits);
  reg.add_counter(prefix + "data_write_misses", &stats_.data_write_misses);
  reg.add_counter(prefix + "read_hits", &stats_.read_hits);
  reg.add_counter(prefix + "read_misses", &stats_.read_misses);
  reg.add_counter(prefix + "evictions", &stats_.evictions);
  reg.add_counter(prefix + "dirty_writebacks", &stats_.dirty_writebacks);
  reg.add_counter(prefix + "threshold_cleanings", &stats_.threshold_cleanings);
  reg.add_counter(prefix + "metadata_block_writes",
                  &stats_.metadata_block_writes);
  reg.add_counter(prefix + "io.retries", &stats_.io_retries);
  reg.add_counter(prefix + "io.quarantined", &stats_.io_quarantined);
  reg.add_counter(prefix + "io.degraded_writes", &stats_.io_degraded_writes);
  reg.add_gauge(prefix + "capacity_blocks", [this] { return capacity_blocks(); });
  reg.add_gauge(prefix + "cached_blocks", [this] { return cached_blocks(); });
}

}  // namespace tinca::classic
