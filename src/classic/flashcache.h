// Flashcache-style NVM block cache (the "Classic" baseline's middle layer).
//
// Facebook's Flashcache — the cache manager the paper uses for its Classic
// competitor (§5.1) — is a set-associative write-back cache that keeps its
// cache metadata in *block* format on the cache device and updates it
// *synchronously*: every time the file system writes a block, the containing
// metadata block is rewritten too (§3.2).  That is the second source of the
// write amplification Tinca removes, so this model is faithful on exactly
// those axes:
//
//   * one 4 KB metadata block per set of 256 slots (16 B per slot record);
//   * every state-changing cache operation persists the whole metadata
//     block of the affected set (64 cache-line flushes);
//   * data blocks are persisted before metadata acknowledges them, giving
//     the cache its own crash consistency;
//   * replacement is per-set LRU.
//
// The `sync_metadata` and `use_flush` switches implement the paper's §3
// motivation ablations (Fig 3(b), Fig 4): disabling them removes the
// corresponding consistency cost without changing the data path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blockdev/block_device.h"
#include "nvm/nvm_device.h"

namespace tinca::obs {
class MetricsRegistry;
}  // namespace tinca::obs

namespace tinca::classic {

/// Tunables for the Flashcache model.
struct FlashCacheConfig {
  /// Slots per set == slot records per metadata block (4096 / 16).
  static constexpr std::uint32_t kAssoc = 256;
  /// Synchronously persist the set's metadata block on every write
  /// (Flashcache's behaviour).  Off = the Fig 4 "no metadata updating"
  /// ablation.
  bool sync_metadata = true;
  /// Issue clflush/sfence when persisting (off = the Fig 3(b) "without
  /// clflush" ablation; data still reaches NVM but unordered/undurable).
  bool use_flush = true;
  /// Cache read misses (Flashcache does).
  bool cache_reads = true;
  /// Block numbers below this boundary are counted in the data_* hit/miss
  /// statistics (the stack above sets it to the journal base so workload
  /// data and journal traffic can be told apart).  Default: everything.
  std::uint64_t hit_stats_boundary = UINT64_MAX;
  /// Background-writeback dirty threshold per set, in percent (Flashcache's
  /// `dirty_thresh_pct`, default 20): when a set's dirty fraction exceeds
  /// this, dirty blocks are written back oldest-first until it is met.
  /// 100 disables threshold cleaning (pure replacement-driven write-back).
  std::uint32_t dirty_thresh_pct = 20;
  /// Modelled software overhead per cache operation.
  std::uint64_t cpu_op_ns = 150;
  /// Retry/backoff policy for disk I/O (DESIGN.md §9).
  blockdev::RetryPolicy io{};
};

/// Counters for one FlashCache instance.
struct FlashCacheStats {
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t data_write_hits = 0;    ///< hits below hit_stats_boundary
  std::uint64_t data_write_misses = 0;  ///< misses below hit_stats_boundary
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;
  std::uint64_t threshold_cleanings = 0;  ///< dirty-threshold writebacks
  std::uint64_t metadata_block_writes = 0;
  std::uint64_t io_retries = 0;          ///< disk retries after kTransient
  std::uint64_t io_quarantined = 0;      ///< blocks quarantined (bad sector)
  std::uint64_t io_degraded_writes = 0;  ///< forced write-through writes
};

/// Set-associative write-back NVM cache with block-format metadata.
class FlashCache {
 public:
  /// Format a fresh cache over `nvm` (like `flashcache_create`).
  static std::unique_ptr<FlashCache> format(nvm::NvmDevice& nvm,
                                            blockdev::BlockDevice& disk,
                                            FlashCacheConfig cfg = {});

  /// Mount an existing cache, reconstructing state from the metadata blocks
  /// (Flashcache's "slow full boot").
  static std::unique_ptr<FlashCache> recover(nvm::NvmDevice& nvm,
                                             blockdev::BlockDevice& disk,
                                             FlashCacheConfig cfg = {});

  /// Write one 4 KB block through the cache (write-back).  Returns the
  /// worst disk-I/O status encountered while servicing the call (internal
  /// writebacks, degraded write-through); the cached copy itself is always
  /// updated, so a non-kOk result means reduced durability, not data loss.
  blockdev::IoStatus write_block(std::uint64_t disk_blkno,
                                 std::span<const std::byte> data);

  /// Read one 4 KB block through the cache.  On a miss whose disk read
  /// fails even after retries, returns the failure status and leaves `dst`
  /// unspecified (the block is not cached).
  blockdev::IoStatus read_block(std::uint64_t disk_blkno,
                                std::span<std::byte> dst);

  /// Write every dirty block back to disk (blocks stay cached clean).
  void flush_dirty();

  /// Whether a block is cached.
  [[nodiscard]] bool cached(std::uint64_t disk_blkno) const {
    return index_.contains(disk_blkno);
  }

  /// Whether a block is cached dirty.
  [[nodiscard]] bool dirty(std::uint64_t disk_blkno) const;

  /// Total data-slot capacity.
  [[nodiscard]] std::uint64_t capacity_blocks() const { return num_slots_; }

  /// Currently valid slots.
  [[nodiscard]] std::uint64_t cached_blocks() const { return index_.size(); }

  [[nodiscard]] const FlashCacheStats& stats() const { return stats_; }
  [[nodiscard]] nvm::NvmDevice& nvm() { return nvm_; }

  /// Blocks quarantined after hitting a permanent bad sector (DRAM-only:
  /// they stay dirty in NVM, so a restart re-discovers them on the next
  /// writeback attempt).
  [[nodiscard]] std::size_t quarantined_blocks() const {
    return quarantine_.size();
  }

  /// Whether a permanent disk fault has forced write-through degradation.
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Register the cache counters and occupancy gauges under `prefix`.
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const;

 private:
  FlashCache(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
             FlashCacheConfig cfg);

  struct Slot {
    std::uint64_t disk_blkno = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru_tick = 0;  ///< DRAM-only recency stamp
  };

  void format_media();
  void run_recovery();

  [[nodiscard]] std::uint32_t set_of(std::uint64_t disk_blkno) const;
  /// Find a slot in `set` for `disk_blkno`, evicting the set-LRU victim if
  /// the set is full.  Returns the global slot id.
  std::uint32_t provision_slot(std::uint32_t set, std::uint64_t disk_blkno);
  /// Enforce the dirty threshold on `set`: write back oldest dirty blocks.
  void clean_set_to_threshold(std::uint32_t set);
  void persist_set_metadata(std::uint32_t set);
  void persist_data(std::uint32_t slot, std::span<const std::byte> data);

  /// Disk I/O with the configured retry policy; folds the final status into
  /// the running per-operation aggregate (`op_st_`).
  blockdev::IoStatus disk_write(std::uint64_t blkno,
                                std::span<const std::byte> buf);
  blockdev::IoStatus disk_read(std::uint64_t blkno, std::span<std::byte> buf);
  /// Quarantine `disk_blkno` after a kBadSector write and degrade the cache
  /// to forced write-through.
  void note_bad_block(std::uint64_t disk_blkno);
  /// Write slot `slot` back to disk; false when it could not be written
  /// (quarantined or failing) and must stay dirty.
  bool writeback_slot(std::uint32_t slot);

  [[nodiscard]] std::uint64_t metadata_off(std::uint32_t set) const;
  [[nodiscard]] std::uint64_t data_off(std::uint32_t slot) const;

  nvm::NvmDevice& nvm_;
  blockdev::BlockDevice& disk_;
  FlashCacheConfig cfg_;
  std::uint32_t num_sets_ = 0;
  std::uint64_t num_slots_ = 0;
  std::uint64_t data_region_off_ = 0;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> set_dirty_;  ///< dirty count per set
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  std::uint64_t lru_clock_ = 0;
  FlashCacheStats stats_;
  /// Disk blocks that hit a permanent bad sector (DRAM-only; see
  /// quarantined_blocks()).
  std::unordered_set<std::uint64_t> quarantine_;
  bool degraded_ = false;
  /// Worst disk status seen while servicing the current public operation.
  blockdev::IoStatus op_st_ = blockdev::IoStatus::kOk;
};

}  // namespace tinca::classic
