#include "cleaner/cleaner.h"

#include <algorithm>
#include <chrono>

#include "common/expect.h"
#include "obs/metrics.h"

namespace tinca::cleaner {

Cleaner::Cleaner(CleanerConfig cfg, CleanerClient& client,
                 const sim::SimClock& clock)
    : cfg_(cfg),
      client_(client),
      clock_(clock),
      trace_(clock, cfg.trace_tid, "cleaner."),
      ts_step_(trace_.site("step")),
      ts_drain_(trace_.site("drain")),
      ts_retire_(trace_.site("retire")) {
  TINCA_EXPECT(cfg_.mode != CleanerMode::kDisabled,
               "a disabled cleaner must not be constructed");
  TINCA_EXPECT(cfg_.queue_cap > 0, "cleaner queue capacity must be positive");
  TINCA_EXPECT(cfg_.low_water_pct <= cfg_.high_water_pct &&
                   cfg_.high_water_pct <= 100,
               "cleaner watermarks must satisfy low <= high <= 100");
}

Cleaner::~Cleaner() { stop_thread(); }

bool Cleaner::try_enqueue(std::uint64_t key) {
  if (queued_.contains(key)) {
    ++stats_.dup_skips;
    return true;
  }
  if (queue_.size() + retry_.size() >= cfg_.queue_cap) {
    ++stats_.queue_rejects;
    return false;
  }
  queue_.push_back(Item{key, clock_.now(), 0});
  queued_.insert(key);
  ++stats_.enqueued;
  return true;
}

CleanOutcome Cleaner::clean_one(const Item& item) {
  TINCA_TRACE_SPAN(trace_, ts_retire_);
  const CleanOutcome out = client_.cleaner_clean(item.key, &stats_.io_retries);
  switch (out) {
    case CleanOutcome::kRetired:
      ++stats_.retired;
      stats_.drain_lag.record(clock_.now() - item.enq_ns);
      queued_.erase(item.key);
      break;
    case CleanOutcome::kStale:
      ++stats_.stale_drops;
      queued_.erase(item.key);
      break;
    case CleanOutcome::kPinned:
      // Mid-commit (log role): try again next drain; stays in queued_.
      ++stats_.pinned_requeues;
      queue_.push_back(Item{item.key, item.enq_ns, 0});
      break;
    case CleanOutcome::kFailed:
      // The disk refused past the retry budget.  Back off in cleaner steps
      // (not foreground time) and keep the original enqueue stamp so the
      // eventual success still reports its true drain lag.
      ++stats_.failures;
      retry_.push_back(
          Item{item.key, item.enq_ns, step_no_ + cfg_.retry_backoff_steps});
      break;
  }
  return out;
}

std::uint64_t Cleaner::drain_upto(std::uint32_t budget, bool use_pacer) {
  if (budget == 0 || queue_.empty()) return 0;

  // Take one batch off the queue and sort it by key: contiguous disk blocks
  // become ascending runs, which the latency model (and real disks) service
  // with one seek — the cleaner's batching win.  Pinned/failed items re-queue
  // behind the batch, so this cannot loop.
  std::vector<Item> batch;
  batch.reserve(std::min<std::size_t>(budget, queue_.size()));
  while (batch.size() < budget && !queue_.empty()) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  std::sort(batch.begin(), batch.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });

  // Run accounting: a "batch" is one maximal ascending run of contiguous
  // keys; runs of two or more are the coalesced writes.
  std::uint32_t run = 1;
  for (std::size_t i = 1; i < batch.size(); ++i) {
    if (batch[i].key == batch[i - 1].key + 1) {
      ++run;
    } else {
      ++stats_.batches;
      if (run >= 2) stats_.coalesced_blocks += run;
      run = 1;
    }
  }
  ++stats_.batches;
  if (run >= 2) stats_.coalesced_blocks += run;

  std::uint64_t retired = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (use_pacer && cfg_.pacer != nullptr && !cfg_.pacer->try_take()) {
      // Shared budget exhausted: push the unprocessed tail back to the
      // queue front in order, to be drained on a later step.
      for (std::size_t j = batch.size(); j-- > i;)
        queue_.push_front(batch[j]);
      break;
    }
    if (clean_one(batch[i]) == CleanOutcome::kRetired) ++retired;
  }
  return retired;
}

void Cleaner::pull_from_client(std::uint32_t want) {
  if (queue_.size() >= want) return;
  ++stats_.pulls;
  std::vector<std::uint64_t> keys;
  client_.cleaner_collect(static_cast<std::uint32_t>(want - queue_.size()),
                          keys);
  for (std::uint64_t key : keys) {
    if (!try_enqueue(key)) break;  // queue full — stop pulling
  }
}

std::uint64_t Cleaner::step() {
  TINCA_TRACE_SPAN(trace_, ts_step_);
  ++step_no_;
  ++stats_.steps;
  if (cfg_.pacer != nullptr) cfg_.pacer->grant(cfg_.pacer_grant_per_step);

  std::uint64_t retired = 0;

  // At most one backed-off failure re-attempt per step: a dead disk costs
  // the cleaner one probe per quantum, never a storm.
  if (!retry_.empty() && retry_.front().due_step <= step_no_) {
    const Item item = retry_.front();
    retry_.pop_front();
    ++stats_.retries;
    if (clean_one(item) == CleanOutcome::kRetired) ++retired;
  }

  // Watermark policy: above high, drain hard toward low (pulling dirty keys
  // from the client as needed); below it, trickle only what was explicitly
  // enqueued by evictions / degraded commits.
  const std::uint64_t dirty = client_.cleaner_dirty_blocks();
  const std::uint64_t cap =
      std::max<std::uint64_t>(1, client_.cleaner_capacity_blocks());
  std::uint32_t budget = 0;
  if (dirty * 100 >= cap * cfg_.high_water_pct) {
    const std::uint64_t target = cap * cfg_.low_water_pct / 100;
    const std::uint64_t excess = dirty > target ? dirty - target : 0;
    budget = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(excess, cfg_.max_batch_blocks));
    pull_from_client(budget);
  } else if (!queue_.empty()) {
    budget = cfg_.trickle_per_step;
  }
  retired += drain_upto(budget, /*use_pacer=*/true);
  return retired;
}

std::uint64_t Cleaner::drain_blocking() {
  TINCA_TRACE_SPAN(trace_, ts_drain_);
  ++stats_.backpressure_drains;
  if (queue_.empty()) pull_from_client(cfg_.max_batch_blocks);

  // Attempt everything queued, unpaced — the foreground is already blocked.
  std::uint64_t retired =
      drain_upto(static_cast<std::uint32_t>(queue_.size()), /*use_pacer=*/false);

  if (retired == 0 && !retry_.empty()) {
    // Last resort before the caller wedges: re-probe the failed keys now,
    // ignoring their backoff.  Bounded: each is attempted exactly once (a
    // fresh failure re-enters retry_ behind the scan window).
    const std::size_t n = retry_.size();
    for (std::size_t i = 0; i < n && !retry_.empty(); ++i) {
      const Item item = retry_.front();
      retry_.pop_front();
      ++stats_.retries;
      if (clean_one(item) == CleanOutcome::kRetired) ++retired;
    }
  }
  return retired;
}

void Cleaner::start_thread(std::mutex* client_mu) {
  TINCA_EXPECT(cfg_.mode == CleanerMode::kThread,
               "start_thread requires CleanerMode::kThread");
  if (thread_.joinable()) return;
  client_mu_ = client_mu;
  thread_stop_ = false;
  thread_ = std::thread([this] { thread_main(); });
}

void Cleaner::thread_main() {
  std::unique_lock<std::mutex> lk(thread_mu_);
  while (!thread_stop_) {
    thread_cv_.wait_for(lk, std::chrono::microseconds(cfg_.thread_poll_us));
    if (thread_stop_) break;
    lk.unlock();
    if (client_mu_ != nullptr) {
      std::lock_guard<std::mutex> guard(*client_mu_);
      step();
    } else {
      step();
    }
    lk.lock();
  }
}

void Cleaner::stop_thread() {
  {
    std::lock_guard<std::mutex> guard(thread_mu_);
    thread_stop_ = true;
  }
  thread_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Cleaner::register_metrics(obs::MetricsRegistry& reg,
                               const std::string& prefix) const {
  reg.add_counter(prefix + "enqueued", &stats_.enqueued);
  reg.add_counter(prefix + "dup_skips", &stats_.dup_skips);
  reg.add_counter(prefix + "queue_rejects", &stats_.queue_rejects);
  reg.add_counter(prefix + "retired", &stats_.retired);
  reg.add_counter(prefix + "stale_drops", &stats_.stale_drops);
  reg.add_counter(prefix + "pinned_requeues", &stats_.pinned_requeues);
  reg.add_counter(prefix + "failures", &stats_.failures);
  reg.add_counter(prefix + "retries", &stats_.retries);
  reg.add_counter(prefix + "io_retries", &stats_.io_retries);
  reg.add_counter(prefix + "batches", &stats_.batches);
  reg.add_counter(prefix + "coalesced_blocks", &stats_.coalesced_blocks);
  reg.add_counter(prefix + "backpressure_drains", &stats_.backpressure_drains);
  reg.add_counter(prefix + "pulls", &stats_.pulls);
  reg.add_counter(prefix + "steps", &stats_.steps);
  reg.add_gauge(prefix + "queue_depth", [this] { return queue_depth(); });
  reg.add_histogram(prefix + "drain_lag", &stats_.drain_lag);
  trace_.register_into(reg, prefix + "lat.");
}

}  // namespace tinca::cleaner
