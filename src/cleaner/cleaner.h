// Deterministic background cleaner: retires dirty blocks off the commit path.
//
// Every write-back cache in this repository eventually pays a disk write for
// each dirty block; the question the cleaner answers is *when and on whose
// clock*.  Without it, the write is charged to the foreground commit that
// happens to trigger eviction, threshold cleaning or degraded write-through.
// With it, commits only enqueue (a DRAM push) and a drain pass — driven
// between commits — performs the disk writes, so the foreground path touches
// nothing slower than NVM until the cache genuinely runs out of space
// (DESIGN.md §11).
//
// The cleaner is deliberately *mechanism without policy knowledge*: it owns
// a bounded queue of opaque keys (Tinca: disk block numbers; UBJ: txn
// sequence numbers) and calls back into its CleanerClient to clean one key.
// The client does the cache-specific work — load the NVM copy, write it to
// disk durably, only then mark the entry clean — and classifies the outcome:
//
//   kRetired  the key's data is durable on disk; the dirty set shrank
//   kStale    the key no longer needs cleaning (evicted, re-frozen, clean)
//   kPinned   temporarily uncleanable (log-role block mid-commit): requeue
//   kFailed   the disk refused (bad sector / retries exhausted): back off
//             and retry later on the cleaner's budget, not the foreground's
//
// Crash safety is entirely the client's obligation and is the same argument
// as synchronous write-back: a block leaves the dirty set only *after* its
// disk write is durable, so a power cut mid-drain merely re-cleans on
// recovery (nothing is lost, something may be written twice).
//
// Two execution modes share this one code path:
//   * kStepped — step() is called explicitly from the harness event loop, so
//     fault-fuzz and crash sweeps stay bit-for-bit deterministic;
//   * kThread  — a real std::thread calls step() under the owner's mutex
//     (bench_shard_scale), for wall-clock concurrency measurements.
//
// Pacing: step() cleans nothing below the low watermark unless blocks are
// already queued (a trickle drains explicit requests), ramps up to
// max_batch_blocks per step above the high watermark, and — when several
// cleaners share one Pacer (the sharded front-end) — competes for a global
// token budget so N shards don't multiply the background write rate by N.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/histogram.h"
#include "common/sim_clock.h"
#include "obs/trace.h"

namespace tinca::cleaner {

/// How the cleaner is driven (one shared code path — see file comment).
enum class CleanerMode : std::uint8_t {
  kDisabled = 0,  ///< no cleaner; caches write back inline (PR 4 behaviour)
  kStepped = 1,   ///< step() called from the harness loop (deterministic)
  kThread = 2,    ///< a std::thread calls step() (bench_shard_scale)
};

/// Client's verdict on one clean attempt.
enum class CleanOutcome : std::uint8_t {
  kRetired = 0,  ///< durable on disk, dirty set shrank
  kStale = 1,    ///< no longer dirty / no longer exists — drop silently
  kPinned = 2,   ///< uncleanable right now (mid-commit) — requeue
  kFailed = 3,   ///< disk refused — retry later with backoff
};

/// The cache-side half of the cleaner: cleans one key and exposes the dirty
/// ratio the watermarks act on.  All calls arrive on the cleaner's driving
/// context (the step() caller), which the owner serializes with its own
/// mutations — same single-writer discipline as the rest of the cache.
class CleanerClient {
 public:
  virtual ~CleanerClient() = default;

  /// Make `key` durable on disk and remove it from the dirty set (in that
  /// order — the crash-safety contract).  Transient-retry backoff spent here
  /// must be charged to `*io_retries`, NOT the client's foreground counter:
  /// that is what moves retry storms off the commit path's books.
  virtual CleanOutcome cleaner_clean(std::uint64_t key,
                                     std::uint64_t* io_retries) = 0;

  /// Current dirty-unit count and total capacity (same unit as keys' data).
  [[nodiscard]] virtual std::uint64_t cleaner_dirty_blocks() const = 0;
  [[nodiscard]] virtual std::uint64_t cleaner_capacity_blocks() const = 0;

  /// Append up to `max` dirty keys worth cleaning, oldest first, skipping
  /// keys already pending in the cleaner.  Must iterate a deterministic
  /// order (LRU list, checkpoint queue) — never an unordered container.
  virtual void cleaner_collect(std::uint32_t max,
                               std::vector<std::uint64_t>& out) = 0;
};

/// Token bucket shared by several cleaners (one per shard): each step grants
/// a slice, each clean attempt takes one token, so the aggregate background
/// write rate stays bounded no matter how many shards are hot.  Thread-safe
/// (thread-mode cleaners pull from it concurrently).
class Pacer {
 public:
  /// `capacity` caps banked tokens (burst size).
  explicit Pacer(std::int64_t capacity) : capacity_(capacity) {}

  /// Deposit `n` tokens, clamped at capacity.
  void grant(std::int64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    tokens_ = std::min(capacity_, tokens_ + n);
  }

  /// Take one token; false when the bucket is empty.
  bool try_take() {
    std::lock_guard<std::mutex> lock(mu_);
    if (tokens_ <= 0) return false;
    --tokens_;
    return true;
  }

  [[nodiscard]] std::int64_t tokens() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tokens_;
  }

 private:
  mutable std::mutex mu_;
  std::int64_t capacity_;
  std::int64_t tokens_ = 0;
};

/// Cleaner tunables (embedded in TincaConfig / UbjConfig).
struct CleanerConfig {
  CleanerMode mode = CleanerMode::kDisabled;
  /// Bounded queue capacity.  try_enqueue on a full queue returns false —
  /// the block simply stays dirty and the watermark pull finds it later.
  std::uint32_t queue_cap = 256;
  /// Dirty-ratio watermarks in percent of capacity.  Above high: drain hard
  /// (up to max_batch_blocks per step, pulling from the client as needed)
  /// until dirty drops toward low.  Below high: only trickle explicit
  /// enqueues.
  std::uint32_t low_water_pct = 20;
  std::uint32_t high_water_pct = 50;
  /// Blocks drained per step below the high watermark (explicit enqueues).
  std::uint32_t trickle_per_step = 4;
  /// Max blocks drained per step above the high watermark.  Also the batch
  /// window for coalescing contiguous disk blocks (the drain sorts each
  /// batch, so ascending runs hit the disk's sequential fast path).
  std::uint32_t max_batch_blocks = 16;
  /// A kFailed key waits this many steps before its next attempt.
  std::uint32_t retry_backoff_steps = 8;
  /// Thread-mode poll period (wall microseconds).
  std::uint32_t thread_poll_us = 200;
  /// Tokens granted into the shared pacer per step (shard's fair slice).
  std::uint32_t pacer_grant_per_step = 1;
  /// Chrome-trace thread-track id (the sharded front-end sets it per shard).
  int trace_tid = 0;
  /// Oracle self-test only (fuzz harness): the client marks blocks clean
  /// WITHOUT writing them to disk.  The recovery oracle must catch this.
  bool sabotage_skip_write = false;
  /// Shared pacing budget; null = unpaced (single-cache deployments).
  std::shared_ptr<Pacer> pacer;
};

/// Cleaner counters (registered under "<layer>.cleaner.").
struct CleanerStats {
  std::uint64_t enqueued = 0;            ///< keys accepted by try_enqueue
  std::uint64_t dup_skips = 0;           ///< try_enqueue hits on pending keys
  std::uint64_t queue_rejects = 0;       ///< try_enqueue on a full queue
  std::uint64_t retired = 0;             ///< keys made durable + clean
  std::uint64_t stale_drops = 0;         ///< keys stale by clean time
  std::uint64_t pinned_requeues = 0;     ///< mid-commit keys requeued
  std::uint64_t failures = 0;            ///< kFailed outcomes
  std::uint64_t retries = 0;             ///< backed-off re-attempts issued
  std::uint64_t io_retries = 0;          ///< transient disk retries (client)
  std::uint64_t batches = 0;             ///< contiguous runs written
  std::uint64_t coalesced_blocks = 0;    ///< blocks inside runs of >= 2
  std::uint64_t backpressure_drains = 0; ///< foreground drain_blocking calls
  std::uint64_t pulls = 0;               ///< watermark pulls from the client
  std::uint64_t steps = 0;               ///< step() invocations
  /// Queue-to-retired latency per key (virtual ns): how far behind the
  /// foreground the cleaner runs.
  Histogram drain_lag;
};

/// The background cleaner.  Not thread-safe by itself: the owner serializes
/// step()/try_enqueue()/drain_blocking() with its own mutations (in thread
/// mode via the mutex passed to start_thread).
class Cleaner {
 public:
  /// `client` and `clock` must outlive the cleaner.
  Cleaner(CleanerConfig cfg, CleanerClient& client, const sim::SimClock& clock);
  ~Cleaner();  // stops the thread-mode thread if running

  Cleaner(const Cleaner&) = delete;
  Cleaner& operator=(const Cleaner&) = delete;

  /// Hand a dirty key to the cleaner.  Never blocks and never performs I/O.
  /// Returns false only when the queue is full (the key stays dirty in the
  /// cache and will be found again); duplicates return true and are counted.
  bool try_enqueue(std::uint64_t key);

  /// Whether `key` is queued or awaiting a failure retry.
  [[nodiscard]] bool pending(std::uint64_t key) const {
    return queued_.contains(key);
  }

  /// One pacing quantum: grant pacer tokens, issue one due failure retry,
  /// then drain by the watermark policy.  Returns keys retired.  Virtual
  /// device time spent here is charged to the owner's clock as usual — in
  /// stepped mode that time lands *between* commits, which is precisely the
  /// off-the-commit-path effect the subsystem exists for.
  std::uint64_t step();

  /// Foreground backpressure path: the cache is out of free blocks and
  /// found no clean victim.  Drains queued keys (ignoring pacing) and, if
  /// nothing retired, forces failure retries ignoring backoff.  Returns keys
  /// retired; 0 means no forward progress is possible (caller wedges).
  std::uint64_t drain_blocking();

  /// Thread mode: spawn the drain thread.  Each wakeup locks `*client_mu`
  /// (when non-null) around step(), serializing against the owner's
  /// foreground operations.
  void start_thread(std::mutex* client_mu);

  /// Stop and join the drain thread (idempotent; safe when never started).
  void stop_thread();

  [[nodiscard]] std::size_t queue_depth() const {
    return queue_.size() + retry_.size();
  }
  [[nodiscard]] const CleanerConfig& config() const { return cfg_; }
  [[nodiscard]] const CleanerStats& stats() const { return stats_; }

  /// Spans: cleaner.step / cleaner.drain / cleaner.retire (virtual time).
  [[nodiscard]] obs::Tracer& tracer() { return trace_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return trace_; }

  /// Register queue_depth gauge, all counters, the drain-lag histogram and
  /// the span histograms under `prefix` (e.g. "tinca.cleaner.").
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const;

 private:
  struct Item {
    std::uint64_t key;
    std::uint64_t enq_ns;    ///< virtual enqueue time (drain-lag source)
    std::uint64_t due_step;  ///< retry items: earliest step to re-attempt
  };

  /// Clean one item and route it by outcome.  Returns the outcome.
  CleanOutcome clean_one(const Item& item);

  /// Drain up to `budget` queued keys as one sorted batch.  `use_pacer`
  /// false bypasses the shared budget (backpressure must make progress).
  std::uint64_t drain_upto(std::uint32_t budget, bool use_pacer);

  /// Watermark pull: ask the client for more dirty keys when the queue has
  /// fewer than `want`.
  void pull_from_client(std::uint32_t want);

  void thread_main();

  CleanerConfig cfg_;
  CleanerClient& client_;
  const sim::SimClock& clock_;

  std::deque<Item> queue_;             ///< FIFO of keys to clean
  std::deque<Item> retry_;             ///< failed keys, due_step ascending
  std::unordered_set<std::uint64_t> queued_;  ///< keys in queue_ or retry_
  std::uint64_t step_no_ = 0;
  CleanerStats stats_;

  // Thread mode.
  std::thread thread_;
  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  bool thread_stop_ = false;
  std::mutex* client_mu_ = nullptr;

  obs::Tracer trace_;
  obs::Tracer::Site* ts_step_;
  obs::Tracer::Site* ts_drain_;
  obs::Tracer::Site* ts_retire_;
};

}  // namespace tinca::cleaner
