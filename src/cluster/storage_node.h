// One data node of the simulated storage cluster (paper Fig 9).
//
// Each node is a complete local stack — NVM cache + disk + Tinca or Classic
// backend, optionally with a mounted MiniFs — plus the discrete-event
// resources other cluster components queue on: an ingress network link and
// the serialized local storage path.  Service times for the storage resource
// are *measured* by running the real stack under the node's virtual clock,
// so cluster results inherit the full fidelity of the local model.
#pragma once

#include <memory>
#include <utility>

#include "backend/stack_builder.h"
#include "common/event_queue.h"
#include "fs/minifs.h"

namespace tinca::cluster {

/// Node assembly parameters.
struct NodeConfig {
  backend::StackConfig stack;
  /// Mount a MiniFs on the node (Filebench experiments).
  bool with_fs = false;
  fs::MiniFsConfig fs;
};

/// A data node: local stack + DES resources.
class StorageNode {
 public:
  explicit StorageNode(const NodeConfig& cfg) : stack_(cfg.stack) {
    if (cfg.with_fs) fsys_ = fs::MiniFs::mkfs(stack_.backend(), cfg.fs);
  }

  /// Run `fn` against the local stack and return its storage service time
  /// (virtual nanoseconds charged by the node's devices).
  template <typename F>
  sim::Ns measure(F&& fn) {
    const sim::CostProbe probe(stack_.clock());
    std::forward<F>(fn)();
    return probe.elapsed();
  }

  [[nodiscard]] backend::Stack& stack() { return stack_; }
  [[nodiscard]] fs::MiniFs& fsys() {
    TINCA_EXPECT(fsys_ != nullptr, "node has no file system mounted");
    return *fsys_;
  }

  /// FIFO resource modelling the node's serialized storage path.
  [[nodiscard]] sim::Resource& storage() { return storage_; }

  /// FIFO resource modelling the node's ingress network link.
  [[nodiscard]] sim::Resource& ingress() { return ingress_; }

 private:
  backend::Stack stack_;
  std::unique_ptr<fs::MiniFs> fsys_;
  sim::Resource storage_;
  sim::Resource ingress_;
};

}  // namespace tinca::cluster
