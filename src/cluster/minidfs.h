// MiniDfs: the simulated 4-node storage cluster of §5.3 (Fig 9).
//
// Two distributed personalities, matching the paper's experiments:
//
//  * `run_teragen` — HDFS-style write pipeline (Fig 10): the client streams
//    chunks; each chunk is forwarded node-to-node along its replica chain
//    (store-and-forward at chunk granularity) and written by every replica's
//    *real* local stack.  Completion time of the whole dataset is returned.
//
//  * `run_filebench` — GlusterFS-style client-side replication (Fig 11):
//    every namespace/write operation is applied to all `replicas` of the
//    file (AFR), reads are served by one replica.  A configurable number of
//    client streams keeps ops in flight.
//
// All timing comes from a discrete-event model in which each node's storage
// path and ingress link are FIFO resources; storage service times are
// measured by actually executing the operation on the node's stack.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/storage_node.h"
#include "common/latency.h"
#include "workloads/filebench.h"
#include "workloads/teragen.h"

namespace tinca::cluster {

/// Cluster assembly parameters.
struct DfsConfig {
  /// Number of data nodes (paper: 4).
  std::uint32_t nodes = 4;
  /// Replication factor (paper sweeps 1–3; GlusterFS tests use 2).
  std::uint32_t replicas = 3;
  /// Interconnect model (paper: 10 GbE).
  NetProfile net = tengig_profile();
  /// Per-node stack assembly.
  NodeConfig node;
  /// Chunk granularity of the TeraGen pipeline DES.
  std::uint64_t chunk_bytes = 1ull << 20;
  /// Outstanding chunks the client keeps in flight.
  std::uint32_t pipeline_window = 4;
  /// Client-side generation rate for TeraGen row synthesis (bytes/sec) —
  /// the mapper's row synthesis plus HDFS-client checksumming/packetizing.
  double client_gen_bytes_per_sec = 2.3e8;
  /// Per-operation client-side overhead for the Filebench personality:
  /// GlusterFS serves through FUSE and runs AFR's transaction (lock,
  /// pre-op xattr, op, post-op xattr, unlock) per write — millisecond-scale
  /// regardless of the storage stack underneath.
  sim::Ns client_op_overhead_ns = 4400 * sim::kUsec;
};

/// Aggregate result of a cluster Filebench run.
struct ClusterFilebenchResult {
  std::uint64_t ops = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  sim::Ns makespan_ns = 0;

  [[nodiscard]] double ops_per_sec() const {
    return makespan_ns == 0
               ? 0.0
               : static_cast<double>(ops) /
                     (static_cast<double>(makespan_ns) / 1e9);
  }
};

/// The cluster.
class MiniDfs {
 public:
  explicit MiniDfs(const DfsConfig& cfg);

  /// HDFS/TeraGen pipeline write of `total_bytes`; returns the virtual
  /// completion time of the whole job (Fig 10's "execution time").
  sim::Ns run_teragen(std::uint64_t total_bytes);

  /// GlusterFS-style Filebench: `total_ops` operations of personality
  /// `wl.kind` across `client_streams` concurrent client streams.
  ClusterFilebenchResult run_filebench(const workloads::FilebenchConfig& wl,
                                       std::uint64_t total_ops,
                                       std::uint32_t client_streams);

  /// Sum of cache-line flushes across all nodes.
  [[nodiscard]] std::uint64_t total_clflush() const;

  /// Sum of disk blocks written across all nodes.
  [[nodiscard]] std::uint64_t total_disk_writes() const;

  [[nodiscard]] StorageNode& node(std::uint32_t i) { return *nodes_[i]; }
  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

 private:
  /// Nodes holding replica `j` of item (file/chunk-group) `h`.
  [[nodiscard]] std::uint32_t replica_node(std::uint64_t h, std::uint32_t j) const {
    return static_cast<std::uint32_t>((h + j) % nodes_.size());
  }

  DfsConfig cfg_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
};

}  // namespace tinca::cluster
