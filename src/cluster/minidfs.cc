#include "cluster/minidfs.h"

#include <algorithm>
#include <deque>
#include <string>

#include "common/bytes.h"
#include "common/expect.h"

namespace tinca::cluster {

using sim::Ns;

MiniDfs::MiniDfs(const DfsConfig& cfg) : cfg_(cfg) {
  TINCA_EXPECT(cfg.nodes >= 1, "cluster needs at least one node");
  TINCA_EXPECT(cfg.replicas >= 1 && cfg.replicas <= cfg.nodes,
               "replication factor exceeds node count");
  nodes_.reserve(cfg.nodes);
  for (std::uint32_t i = 0; i < cfg.nodes; ++i)
    nodes_.push_back(std::make_unique<StorageNode>(cfg.node));
}

std::uint64_t MiniDfs::total_clflush() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_)
    sum += const_cast<StorageNode&>(*n).stack().clflush_count();
  return sum;
}

std::uint64_t MiniDfs::total_disk_writes() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_)
    sum += const_cast<StorageNode&>(*n).stack().disk_blocks_written();
  return sum;
}

// ---------------------------------------------------------------------------
// TeraGen / HDFS pipeline (Fig 10)
// ---------------------------------------------------------------------------

Ns MiniDfs::run_teragen(std::uint64_t total_bytes) {
  // One sequential sink per node, sized to the node's data area.
  std::vector<std::unique_ptr<workloads::TeraGenSink>> sinks;
  sinks.reserve(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    auto& be = nodes_[i]->stack().backend();
    const std::uint64_t limit = be.data_block_limit() - 16;
    workloads::TeraGenConfig tg;
    tg.seed = 1000 + i;
    sinks.push_back(
        std::make_unique<workloads::TeraGenSink>(be, 0, limit, tg));
  }

  const std::uint64_t nchunks =
      (total_bytes + cfg_.chunk_bytes - 1) / cfg_.chunk_bytes;
  const Ns xfer = cfg_.net.transfer_ns(cfg_.chunk_bytes);
  const auto gen_cost = static_cast<Ns>(
      static_cast<double>(cfg_.chunk_bytes) / cfg_.client_gen_bytes_per_sec * 1e9);

  std::vector<Ns> acks;
  acks.reserve(nchunks);
  Ns gen_ready = 0;
  Ns completion = 0;

  for (std::uint64_t c = 0; c < nchunks; ++c) {
    // Client generates the chunk, throttled by the pipeline window.
    Ns start = gen_ready;
    if (c >= cfg_.pipeline_window)
      start = std::max(start, acks[c - cfg_.pipeline_window]);
    gen_ready = start + gen_cost;

    // Store-and-forward along the replica chain; every replica's write is
    // executed for real on its local stack.
    Ns data_at_upstream = gen_ready;
    Ns chunk_ack = 0;
    for (std::uint32_t j = 0; j < cfg_.replicas; ++j) {
      StorageNode& node = *nodes_[replica_node(c, j)];
      workloads::TeraGenSink& sink = *sinks[replica_node(c, j)];
      const Ns arrive =
          node.ingress().acquire(data_at_upstream, xfer) + cfg_.net.rtt_ns;
      const Ns service =
          node.measure([&] { sink.generate(cfg_.chunk_bytes); });
      const Ns done = node.storage().acquire(arrive, service);
      chunk_ack = std::max(chunk_ack, done);
      data_at_upstream = arrive;  // forward after full receipt
    }
    acks.push_back(chunk_ack);
    completion = std::max(completion, chunk_ack);
  }
  return completion;
}

// ---------------------------------------------------------------------------
// Filebench / GlusterFS client-side replication (Fig 11)
// ---------------------------------------------------------------------------

namespace {

/// Central driver state: the authoritative view of every file, applied
/// identically to each replica so the per-node MiniFs instances stay in
/// sync without cross-node coordination.
class ClusterFilebenchDriver {
 public:
  ClusterFilebenchDriver(std::vector<StorageNode*> nodes,
                         const workloads::FilebenchConfig& cfg,
                         std::uint32_t replicas, const NetProfile& net)
      : nodes_(std::move(nodes)),
        cfg_(cfg),
        replicas_(replicas),
        net_(net),
        rng_(cfg.seed),
        zipf_(cfg.nfiles, cfg.zipf_theta),
        alive_(cfg.nfiles, 0),
        size_(cfg.nfiles, 0),
        iobuf_(cfg.request_bytes) {}

  /// Which nodes hold file `id`.
  [[nodiscard]] std::uint32_t replica_of(std::uint64_t id, std::uint32_t j) const {
    return static_cast<std::uint32_t>((id + j) % nodes_.size());
  }

  [[nodiscard]] std::string path_of(std::uint64_t id) const {
    return "/d" + std::to_string(id / cfg_.files_per_dir) + "/f" +
           std::to_string(id);
  }

  /// Create directories and initial files on their replica sets (untimed).
  void populate() {
    const std::uint64_t ndirs =
        (cfg_.nfiles + cfg_.files_per_dir - 1) / cfg_.files_per_dir;
    for (auto* node : nodes_)
      for (std::uint64_t d = 0; d < ndirs; ++d)
        node->fsys().mkdir("/d" + std::to_string(d));
    for (std::uint64_t f = 0; f < cfg_.nfiles; ++f)
      apply_write_everywhere(f, [&](fs::MiniFs& fsys) { do_create(fsys, f); });
    for (auto* node : nodes_) node->fsys().fsync();
  }

  /// Execute one operation starting at `op_start`; returns completion time.
  Ns run_op(Ns op_start, bool* was_read) {
    const std::uint64_t id = zipf_.draw(rng_);
    const std::uint64_t pick = rng_.below(100);
    bool read = false;
    Ns done = op_start;
    switch (cfg_.kind) {
      case workloads::FilebenchKind::kFileserver:
        if (pick < 33) {
          read = true;
          done = timed_read(op_start, id);
        } else if (pick < 66) {
          done = timed_write(op_start, id,
                             [&](fs::MiniFs& f) { do_append(f, id, false); });
        } else {
          done = timed_write(op_start, id,
                             [&](fs::MiniFs& f) { do_recreate(f, id, false); });
        }
        break;
      case workloads::FilebenchKind::kWebproxy:
        if (pick < 80) {
          read = true;
          done = timed_read(op_start, id);
        } else {
          done = timed_write(op_start, id,
                             [&](fs::MiniFs& f) { do_append(f, id, false); });
        }
        break;
      case workloads::FilebenchKind::kVarmail:
        if (pick < 50) {
          read = true;
          done = timed_read(op_start, id);
        } else if (pick < 75) {
          done = timed_write(op_start, id,
                             [&](fs::MiniFs& f) { do_append(f, id, true); });
        } else {
          done = timed_write(op_start, id,
                             [&](fs::MiniFs& f) { do_recreate(f, id, true); });
        }
        break;
    }
    if (was_read) *was_read = read;
    return done;
  }

 private:
  // --- file-op bodies, applied to one replica's fs -------------------------

  void do_create(fs::MiniFs& fsys, std::uint64_t id) {
    const std::string path = path_of(id);
    fsys.create(path);
    if (size_[id] == 0)
      size_[id] = cfg_.mean_file_bytes / 4 +
                  rng_size_for(id) % (cfg_.mean_file_bytes * 3 / 2 + 1);
    std::uint64_t off = 0;
    while (off < size_[id]) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(cfg_.request_bytes, size_[id] - off);
      fill_pattern(std::span(iobuf_).subspan(0, chunk), id * 131 + off);
      fsys.write(path, off, std::span(iobuf_).subspan(0, chunk));
      off += chunk;
    }
    alive_[id] = 1;
  }

  void do_recreate(fs::MiniFs& fsys, std::uint64_t id, bool sync) {
    if (alive_[id]) fsys.remove(path_of(id));
    size_[id] = 0;
    do_create(fsys, id);
    if (sync) fsys.fsync();
  }

  void do_append(fs::MiniFs& fsys, std::uint64_t id, bool sync) {
    if (!alive_[id]) {
      do_create(fsys, id);
      return;
    }
    const std::string path = path_of(id);
    if (size_[id] + cfg_.request_bytes > fsys.max_file_bytes()) {
      do_recreate(fsys, id, sync);
      return;
    }
    fill_pattern(iobuf_, id * 977 + size_[id]);
    fsys.write(path, size_[id], iobuf_);
    if (sync) fsys.fsync();
  }

  void do_read(fs::MiniFs& fsys, std::uint64_t id) {
    if (!alive_[id]) return;
    const std::string path = path_of(id);
    std::uint64_t off = 0;
    while (off < size_[id]) {
      const std::size_t got = fsys.read(path, off, iobuf_);
      if (got == 0) break;
      off += got;
    }
  }

  /// Deterministic per-id size draw that does not consume the op RNG stream.
  [[nodiscard]] std::uint64_t rng_size_for(std::uint64_t id) const {
    std::uint64_t x = id * 0x9E3779B97F4A7C15ULL + cfg_.seed;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return x;
  }

  // --- replication & timing -------------------------------------------------

  template <typename F>
  void apply_write_everywhere(std::uint64_t id, F&& fn) {
    // Central metadata must evolve identically per replica: snapshot before
    // each application so every replica sees the same starting state.
    const std::uint64_t size_before = size_[id];
    const std::uint8_t alive_before = alive_[id];
    for (std::uint32_t j = 0; j < replicas_; ++j) {
      size_[id] = size_before;
      alive_[id] = alive_before;
      fn(nodes_[replica_of(id, j)]->fsys());
    }
  }

  template <typename F>
  Ns timed_write(Ns op_start, std::uint64_t id, F&& fn) {
    const Ns xfer = net_.transfer_ns(cfg_.request_bytes);
    const std::uint64_t size_before = size_[id];
    const std::uint8_t alive_before = alive_[id];
    Ns done = op_start;
    for (std::uint32_t j = 0; j < replicas_; ++j) {
      size_[id] = size_before;
      alive_[id] = alive_before;
      StorageNode& node = *nodes_[replica_of(id, j)];
      const Ns arrive = node.ingress().acquire(op_start, xfer) + net_.rtt_ns;
      const Ns service = node.measure([&] { fn(node.fsys()); });
      done = std::max(done, node.storage().acquire(arrive, service));
    }
    return done;
  }

  Ns timed_read(Ns op_start, std::uint64_t id) {
    // GlusterFS serves reads from one replica; rotate for load spread.
    StorageNode& node = *nodes_[replica_of(id, read_rotor_++ % replicas_)];
    const Ns arrive =
        node.ingress().acquire(op_start, net_.transfer_ns(256)) + net_.rtt_ns;
    const Ns service = node.measure([&] { do_read(node.fsys(), id); });
    // Response bytes ride the wire back to the client.
    return node.storage().acquire(arrive, service) +
           net_.transfer_ns(size_[id]) + net_.rtt_ns;
  }

  std::vector<StorageNode*> nodes_;
  workloads::FilebenchConfig cfg_;
  std::uint32_t replicas_;
  NetProfile net_;
  Rng rng_;
  Zipf zipf_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint64_t> size_;
  std::vector<std::byte> iobuf_;
  std::uint32_t read_rotor_ = 0;
};

}  // namespace

ClusterFilebenchResult MiniDfs::run_filebench(
    const workloads::FilebenchConfig& wl, std::uint64_t total_ops,
    std::uint32_t client_streams) {
  TINCA_EXPECT(client_streams >= 1, "need at least one client stream");
  std::vector<StorageNode*> raw;
  raw.reserve(nodes_.size());
  for (auto& n : nodes_) raw.push_back(n.get());
  ClusterFilebenchDriver driver(std::move(raw), wl, cfg_.replicas, cfg_.net);
  driver.populate();

  ClusterFilebenchResult result;
  std::vector<Ns> stream_ready(client_streams, 0);
  Ns makespan = 0;
  for (std::uint64_t i = 0; i < total_ops; ++i) {
    const std::uint32_t s = static_cast<std::uint32_t>(i % client_streams);
    bool was_read = false;
    const Ns done = driver.run_op(stream_ready[s], &was_read);
    stream_ready[s] = done + cfg_.client_op_overhead_ns;
    makespan = std::max(makespan, done);
    ++result.ops;
    if (was_read)
      ++result.read_ops;
    else
      ++result.write_ops;
  }
  result.makespan_ns = makespan;
  return result;
}

}  // namespace tinca::cluster
