#include "tinca/ring_buffer.h"

#include "common/expect.h"

namespace tinca::core {

namespace {

constexpr std::uint64_t kKindBlock = 1;
constexpr std::uint64_t kKindCommit = 2;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t RingBuffer::checksum(std::uint64_t w0, std::uint64_t w1,
                                   std::uint64_t w2, std::uint64_t idx,
                                   std::uint64_t format_epoch,
                                   std::uint32_t stream) {
  // Mixing the monotonic index covers the wrap lap (idx = lap * capacity +
  // slot), the format epoch covers earlier lives of the device, and the
  // stream id covers a slot re-carved into a different stream by a
  // num_streams change: a stale record re-validated at the same physical
  // slot always disagrees on at least one of the three.
  return mix64(w0 ^
               mix64(w1 ^ mix64(w2 ^ mix64(idx ^ mix64(format_epoch ^
                                                       mix64(stream))))));
}

void RingBuffer::format() {
  head_ = 0;
  tail_ = 0;
  durable_hint_.store(0, std::memory_order_relaxed);
  staged_hint_ = 0;
  epoch_ = nvm_.load8(Layout::kFormatEpochOff);
  nvm_.atomic_store8(hint_off(), 0);
  nvm_.persist(hint_off(), 8);
}

void RingBuffer::load() {
  const std::uint64_t hint = nvm_.load8(hint_off());
  durable_hint_.store(hint, std::memory_order_relaxed);
  staged_hint_ = hint;
  head_ = hint;
  tail_ = hint;
  epoch_ = nvm_.load8(Layout::kFormatEpochOff);
}

void RingBuffer::stage_record(std::uint64_t w0, std::uint64_t w1,
                              std::uint64_t w2) {
  std::array<std::byte, Layout::kRingSlotBytes> raw{};
  store_le(raw.data(), w0, 8);
  store_le(raw.data() + 8, w1, 8);
  store_le(raw.data() + 16, w2, 8);
  store_le(raw.data() + 24, checksum(w0, w1, w2, head_, epoch_, stream_), 8);
  nvm_.store(layout_.ring_slot_off(stream_, head_), raw);
  ++head_;
}

std::pair<std::uint64_t, std::uint64_t> RingBuffer::stage_block(
    std::uint64_t disk_blkno, std::uint32_t curr_nvm, std::uint64_t data_fp) {
  TINCA_EXPECT(has_room(1), "ring buffer full (hint sync required)");
  const std::uint64_t off = layout_.ring_slot_off(stream_, head_);
  stage_record(kKindBlock | (disk_blkno << 2), curr_nvm, data_fp);
  return {off, Layout::kRingSlotBytes};
}

std::pair<std::uint64_t, std::uint64_t> RingBuffer::stage_commit(
    std::uint64_t batch_start, std::uint64_t txn_count,
    std::uint64_t commit_tag) {
  TINCA_EXPECT(has_room(1), "ring buffer full (hint sync required)");
  const std::uint64_t off = layout_.ring_slot_off(stream_, head_);
  stage_record(kKindCommit | (txn_count << 2), commit_tag, batch_start);
  return {off, Layout::kRingSlotBytes};
}

std::pair<std::uint64_t, std::uint64_t> RingBuffer::publish(
    std::uint64_t batch_start) {
  tail_ = head_;
  staged_hint_ = batch_start;
  // 8 B atomic so a crash can only keep or lose the whole value — a torn
  // hint would send recovery scanning from a garbage index.
  nvm_.atomic_store8(hint_off(), batch_start);
  return {hint_off(), 8};
}

void RingBuffer::note_staged_hint_durable() {
  if (staged_hint_ > durable_hint()) {
    durable_hint_.store(staged_hint_, std::memory_order_relaxed);
  }
}

void RingBuffer::persist_hint() {
  staged_hint_ = tail_;
  nvm_.atomic_store8(hint_off(), tail_);
  nvm_.persist(hint_off(), 8);
  durable_hint_.store(tail_, std::memory_order_relaxed);
}

std::optional<RingRecord> RingBuffer::scan(std::uint64_t idx,
                                           std::uint64_t format_epoch) const {
  const std::uint64_t off = layout_.ring_slot_off(stream_, idx);
  std::array<std::byte, Layout::kRingSlotBytes> raw{};
  nvm_.load(off, raw);
  const std::uint64_t w0 = load_le(raw.data(), 8);
  const std::uint64_t w1 = load_le(raw.data() + 8, 8);
  const std::uint64_t w2 = load_le(raw.data() + 16, 8);
  const std::uint64_t ck = load_le(raw.data() + 24, 8);
  if (ck != checksum(w0, w1, w2, idx, format_epoch, stream_)) {
    return std::nullopt;
  }
  const std::uint64_t kind = w0 & 0x3;
  RingRecord rec;
  if (kind == kKindBlock) {
    rec.kind = RingRecord::Kind::kBlock;
    rec.disk_blkno = w0 >> 2;
    rec.curr_nvm = static_cast<std::uint32_t>(w1);
    rec.payload_fp = w2;
  } else if (kind == kKindCommit) {
    rec.kind = RingRecord::Kind::kCommit;
    rec.txn_count = w0 >> 2;
    rec.commit_tag = w1;
    rec.payload_fp = w2;  // batch_start
  } else {
    return std::nullopt;
  }
  return rec;
}

}  // namespace tinca::core
