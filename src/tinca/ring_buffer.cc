#include "tinca/ring_buffer.h"

#include "common/expect.h"

namespace tinca::core {

void RingBuffer::persist_field(std::uint64_t off, std::uint64_t value) {
  nvm_.atomic_store8(off, value);
  nvm_.persist(off, 8);
}

void RingBuffer::format() {
  head_ = 0;
  tail_ = 0;
  persist_field(Layout::kHeadOff, 0);
  persist_field(Layout::kTailOff, 0);
}

void RingBuffer::load() {
  head_ = nvm_.load8(Layout::kHeadOff);
  tail_ = nvm_.load8(Layout::kTailOff);
  TINCA_ENSURE(head_ >= tail_, "ring Head behind Tail on media");
  TINCA_ENSURE(head_ - tail_ <= capacity(), "ring in-flight exceeds capacity");
}

void RingBuffer::record(std::uint64_t disk_blkno) {
  TINCA_EXPECT(in_flight() < capacity(), "ring buffer full");
  const std::uint64_t off = layout_.ring_slot_off(head_);
  nvm_.atomic_store8(off, disk_blkno);
  nvm_.persist(off, 8);
}

void RingBuffer::advance_head() {
  ++head_;
  persist_field(Layout::kHeadOff, head_);
}

void RingBuffer::publish_tail() {
  tail_ = head_;
  persist_field(Layout::kTailOff, tail_);
}

void RingBuffer::reset_head_to_tail() {
  head_ = tail_;
  persist_field(Layout::kHeadOff, head_);
}

std::uint64_t RingBuffer::slot(std::uint64_t idx) const {
  return nvm_.load8(layout_.ring_slot_off(idx));
}

}  // namespace tinca::core
