#include "tinca/verify.h"

#include <array>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "nvlog/log_meta.h"
#include "tinca/cache_entry.h"
#include "tinca/commit_directory.h"
#include "tinca/ring_buffer.h"

namespace tinca::core {

MediaReport verify_media(const nvm::NvmDevice& nvm, const Layout& layout) {
  MediaReport report;
  auto complain = [&](std::string msg) {
    report.ok = false;
    report.problems.push_back(std::move(msg));
  };

  // Superblock identity.
  if (nvm.load8(Layout::kMagicOff) != Layout::kMagic) {
    complain("superblock magic mismatch (not a Tinca device)");
    return report;  // nothing else is meaningful
  }
  if (nvm.load8(Layout::kVersionOff) != Layout::kVersion)
    complain("format version mismatch");
  if (nvm.load8(Layout::kNumBlocksOff) != layout.num_blocks)
    complain("superblock block count disagrees with layout");
  if (nvm.load8(Layout::kRingCapacityOff) != layout.ring_capacity)
    complain("superblock ring capacity disagrees with layout");
  if (nvm.load8(Layout::kNumStreamsOff) != layout.num_streams)
    complain("superblock stream count disagrees with layout");

  // Validated per-stream ring scans, each from its own durable commit hint
  // (the same walks recovery performs): count sealed batches and trailing
  // in-flight runs, and flag incoherent seals.  A checksum failure is not
  // corruption — it is simply the end of that stream's log — so only
  // structural incoherence complains.
  const std::uint64_t epoch = nvm.load8(Layout::kFormatEpochOff);
  for (std::uint32_t stream = 0; stream < layout.num_streams; ++stream) {
    const std::uint64_t hint = nvm.load8(Layout::stream_hint_off(stream));
    std::uint64_t idx = hint;
    const std::uint64_t scan_end = hint + layout.stream_capacity;
    std::uint64_t run_start = hint;
    std::uint64_t run_len = 0;
    while (idx < scan_end) {
      std::array<std::byte, Layout::kRingSlotBytes> raw{};
      nvm.load(layout.ring_slot_off(stream, idx), raw);
      const std::uint64_t w0 = load_le(raw.data(), 8);
      const std::uint64_t w1 = load_le(raw.data() + 8, 8);
      const std::uint64_t w2 = load_le(raw.data() + 16, 8);
      const std::uint64_t ck = load_le(raw.data() + 24, 8);
      if (ck != RingBuffer::checksum(w0, w1, w2, idx, epoch, stream)) break;
      const std::uint64_t kind = w0 & 0x3;
      if (kind == 1) {  // block record
        if (static_cast<std::uint32_t>(w1) >= layout.num_blocks)
          complain("stream " + std::to_string(stream) + " ring record " +
                   std::to_string(idx) + ": NVM block out of range");
        ++run_len;
      } else if (kind == 2) {  // batch commit record
        if (w2 != run_start) {
          // A seal that does not close the run before it can only be a stale
          // slot from an earlier lap that happens to checksum-validate at
          // this index — astronomically unlikely, hence a complaint.
          complain("stream " + std::to_string(stream) + " ring record " +
                   std::to_string(idx) + ": commit record seals batch start " +
                   std::to_string(w2) + " but the current run starts at " +
                   std::to_string(run_start));
          break;
        }
        ++report.committed_batches;
        run_start = idx + 1;
        run_len = 0;
      } else {
        break;  // validated checksum over an unknown kind cannot happen
      }
      ++idx;
    }
    report.in_flight += run_len;
  }

  // Cross-stream commit directory: count records that validate under the
  // current format epoch (stale-epoch slots are dead by construction).
  for (std::uint64_t slot = 0; slot < Layout::kDirSlots; ++slot)
    if (CommitDirectory::read_slot(nvm, slot, epoch).commit_id != 0)
      ++report.dir_records;

  // Entry table.
  std::unordered_map<std::uint64_t, std::uint32_t> by_disk;
  std::unordered_set<std::uint32_t> owned_blocks;
  for (std::uint32_t slot = 0; slot < layout.num_blocks; ++slot) {
    std::array<std::byte, 16> raw{};
    nvm.load(layout.entry_off(slot), raw);
    const CacheEntry e = CacheEntry::decode(raw);
    if (!e.valid) continue;
    ++report.valid_entries;
    if (e.role == Role::kLog) ++report.log_entries;
    if (e.revoke_marker()) ++report.revoke_markers;

    if (e.curr_nvm >= layout.num_blocks)
      complain("slot " + std::to_string(slot) + ": current NVM block out of range");
    if (e.prev_nvm != CacheEntry::kFresh && e.prev_nvm >= layout.num_blocks)
      complain("slot " + std::to_string(slot) + ": previous NVM block out of range");

    auto [it, fresh] = by_disk.emplace(e.disk_blkno, slot);
    if (!fresh)
      complain("disk block " + std::to_string(e.disk_blkno) +
               " mapped by slots " + std::to_string(it->second) + " and " +
               std::to_string(slot));
    if (e.curr_nvm < layout.num_blocks && !owned_blocks.insert(e.curr_nvm).second)
      complain("NVM block " + std::to_string(e.curr_nvm) +
               " owned by two entries");
  }

  return report;
}

MediaReport verify_nvlog_media(const nvm::NvmDevice& nvm) {
  MediaReport report;
  auto complain = [&](std::string msg) {
    report.ok = false;
    report.problems.push_back(std::move(msg));
  };

  // Superblock: self-describing — geometry, ring size and the format nonce
  // that salts every watermark record all come off the media.
  std::array<std::byte, nvlog::kLogSuperBytes> sup{};
  nvm.load(0, sup);
  nvlog::LogSuperblock sb;
  if (!decode_superblock(sup, &sb)) {
    complain("nvlog superblock invalid (not a formatted log)");
    return report;  // ring offsets are meaningless without it
  }
  if (sb.num_segments < 2) complain("nvlog superblock: fewer than 2 segments");

  // Walk the watermark record ring (DESIGN.md §16): every slot, counting
  // records that validate under the current format nonce.  The highest
  // valid epoch is exactly the record recovery adjudication mounts; every
  // other valid record is a stale leftover from an earlier advance.
  std::optional<nvlog::WatermarkRecord> winner;
  std::uint64_t winner_slot = 0;
  std::uint64_t valid_records = 0;
  for (std::uint64_t s = 0; s < sb.watermark_slots; ++s) {
    std::array<std::byte, nvlog::kWatermarkSlotBytes> slot{};
    nvm.load(nvlog::watermark_slot_off(s), slot);
    nvlog::WatermarkRecord rec;
    if (!decode_watermark(slot, sb.format_nonce, &rec)) continue;
    ++valid_records;
    if (winner.has_value() && rec.epoch == winner->epoch)
      complain("duplicate watermark epoch " + std::to_string(rec.epoch) +
               " in slots " + std::to_string(winner_slot) + " and " +
               std::to_string(s));
    if (!winner.has_value() || rec.epoch > winner->epoch) {
      winner = rec;
      winner_slot = s;
    }
  }
  if (!winner.has_value()) {
    complain("watermark ring holds no valid record — log cannot mount");
    return report;
  }
  report.wm_winning_epoch = winner->epoch;
  report.wm_winning_slot = winner_slot;
  report.wm_oldest_live_seq = winner->oldest_live_seq;
  report.wm_drained_upto_lsn = winner->drained_upto_lsn;
  report.wm_stale_records = valid_records - 1;
  if (winner->oldest_live_seq == 0)
    complain("winning watermark names oldest_live_seq 0 (seqs start at 1)");
  if (nvlog::watermark_slot_of(winner->epoch, sb.watermark_slots) !=
      winner_slot)
    complain("winning watermark epoch " + std::to_string(winner->epoch) +
             " found in slot " + std::to_string(winner_slot) +
             " but rotation maps it to slot " +
             std::to_string(nvlog::watermark_slot_of(winner->epoch,
                                                     sb.watermark_slots)));
  return report;
}

}  // namespace tinca::core
