#include "tinca/verify.h"

#include <unordered_map>
#include <unordered_set>

#include "tinca/cache_entry.h"

namespace tinca::core {

MediaReport verify_media(const nvm::NvmDevice& nvm, const Layout& layout) {
  MediaReport report;
  auto complain = [&](std::string msg) {
    report.ok = false;
    report.problems.push_back(std::move(msg));
  };

  // Superblock identity.
  if (nvm.load8(Layout::kMagicOff) != Layout::kMagic) {
    complain("superblock magic mismatch (not a Tinca device)");
    return report;  // nothing else is meaningful
  }
  if (nvm.load8(Layout::kVersionOff) != Layout::kVersion)
    complain("format version mismatch");
  if (nvm.load8(Layout::kNumBlocksOff) != layout.num_blocks)
    complain("superblock block count disagrees with layout");
  if (nvm.load8(Layout::kRingCapacityOff) != layout.ring_capacity)
    complain("superblock ring capacity disagrees with layout");

  // Ring pointers.
  const std::uint64_t head = nvm.load8(Layout::kHeadOff);
  const std::uint64_t tail = nvm.load8(Layout::kTailOff);
  if (head < tail) complain("ring Head behind Tail");
  if (head - tail > layout.ring_capacity)
    complain("ring in-flight region exceeds capacity");
  report.in_flight = head >= tail ? head - tail : 0;

  // Entry table.
  std::unordered_map<std::uint64_t, std::uint32_t> by_disk;
  std::unordered_set<std::uint32_t> owned_blocks;
  for (std::uint32_t slot = 0; slot < layout.num_blocks; ++slot) {
    std::array<std::byte, 16> raw{};
    nvm.load(layout.entry_off(slot), raw);
    const CacheEntry e = CacheEntry::decode(raw);
    if (!e.valid) continue;
    ++report.valid_entries;
    if (e.role == Role::kLog) ++report.log_entries;
    if (e.revoke_marker()) ++report.revoke_markers;

    if (e.curr_nvm >= layout.num_blocks)
      complain("slot " + std::to_string(slot) + ": current NVM block out of range");
    if (e.prev_nvm != CacheEntry::kFresh && e.prev_nvm >= layout.num_blocks)
      complain("slot " + std::to_string(slot) + ": previous NVM block out of range");

    auto [it, fresh] = by_disk.emplace(e.disk_blkno, slot);
    if (!fresh)
      complain("disk block " + std::to_string(e.disk_blkno) +
               " mapped by slots " + std::to_string(it->second) + " and " +
               std::to_string(slot));
    if (e.curr_nvm < layout.num_blocks && !owned_blocks.insert(e.curr_nvm).second)
      complain("NVM block " + std::to_string(e.curr_nvm) +
               " owned by two entries");
  }

  // Log-role entries are only legitimate while a commit is in flight.  The
  // record-before-Head-move window allows log entries to exceed the ring's
  // in-flight count by at most one.
  if (head == tail && report.log_entries > 1)
    complain("multiple log-role entries with a closed ring (only the "
             "record-before-Head-move window of one block is legal)");
  if (head != tail && report.log_entries > report.in_flight + 1)
    complain("log-role entries exceed the in-flight ring region");

  return report;
}

}  // namespace tinca::core
