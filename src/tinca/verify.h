// Offline structural verifier for Tinca's persistent media — the cache-level
// analogue of fsck.  Used by tests to assert that no operation or crash can
// leave the entry table or ring structurally corrupt, and usable by operators
// before mounting a suspect device.
#pragma once

#include <string>
#include <vector>

#include "nvm/nvm_device.h"
#include "tinca/layout.h"

namespace tinca::core {

/// Result of a media check.
struct MediaReport {
  bool ok = true;
  std::vector<std::string> problems;
  std::uint64_t valid_entries = 0;
  std::uint64_t log_entries = 0;     ///< entries still in log role
  std::uint64_t revoke_markers = 0;  ///< rolled-back entries (prev == curr)
  std::uint64_t committed_batches = 0;  ///< sealed batches across all streams
  std::uint64_t in_flight = 0;  ///< trailing unsealed (in-flight) ring records
  std::uint64_t dir_records = 0;  ///< valid cross-stream commit records
  // NvLog watermark record ring (DESIGN.md §16) — filled only by
  // verify_nvlog_media; verify_media leaves them zero.
  std::uint64_t wm_winning_epoch = 0;  ///< epoch of the record recovery mounts
  std::uint64_t wm_winning_slot = 0;   ///< ring slot holding that record
  std::uint64_t wm_oldest_live_seq = 0;
  std::uint64_t wm_drained_upto_lsn = 0;
  std::uint64_t wm_stale_records = 0;  ///< valid but outdated ring records
};

/// Check the structural invariants of a Tinca v3 device:
///   - superblock magic/version/geometry/stream count match `layout`;
///   - every stream's validated ring scan from its own durable commit hint is
///     coherent (every batch commit record seals exactly the run before it;
///     each scan window fits its stream's capacity) — the scans' batch and
///     in-flight counts are reported, summed across streams;
///   - commit-directory records that validate under the current format epoch
///     are counted;
///   - every valid entry's current (and non-FRESH previous) NVM block is in
///     range;
///   - no two valid entries map the same disk block;
///   - no two valid entries own the same current NVM block.
/// Log-role entries are counted but not flagged: before recovery an open
/// batch legitimately leaves up to a whole batch of staged log-role entries
/// whose (unfenced) ring records were lost with the crash; after recovery
/// callers assert log_entries == 0 themselves.
/// Read-only; never mutates the device.  Charges read latency like a real
/// scan would.
MediaReport verify_media(const nvm::NvmDevice& nvm, const Layout& layout);

/// Check the metadata region of an NvLog tier device/view (the log range an
/// NvLogTier was formatted over — see src/nvlog/log_meta.h):
///   - the superblock decodes (magic/version/checksum) and carries a sane
///     watermark ring size;
///   - at least one watermark ring record validates under the superblock's
///     format nonce (recovery would otherwise refuse to mount);
///   - the winning record (highest valid epoch — exactly the one recovery
///     adjudication mounts) plus the count of valid-but-stale records are
///     reported in the wm_* fields.
/// Self-describing: geometry and ring size come from the superblock itself.
/// Read-only; charges read latency like a real scan would.
MediaReport verify_nvlog_media(const nvm::NvmDevice& nvm);

}  // namespace tinca::core
