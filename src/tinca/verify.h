// Offline structural verifier for Tinca's persistent media — the cache-level
// analogue of fsck.  Used by tests to assert that no operation or crash can
// leave the entry table or ring pointers structurally corrupt, and usable by
// operators before mounting a suspect device.
#pragma once

#include <string>
#include <vector>

#include "nvm/nvm_device.h"
#include "tinca/layout.h"

namespace tinca::core {

/// Result of a media check.
struct MediaReport {
  bool ok = true;
  std::vector<std::string> problems;
  std::uint64_t valid_entries = 0;
  std::uint64_t log_entries = 0;     ///< entries still in log role
  std::uint64_t revoke_markers = 0;  ///< rolled-back entries (prev == curr)
  std::uint64_t in_flight = 0;       ///< ring records between Tail and Head
};

/// Check the structural invariants of a Tinca device:
///   - superblock magic/version/geometry match `layout`;
///   - Head >= Tail and Head - Tail <= ring capacity;
///   - every valid entry's current (and non-FRESH previous) NVM block is in
///     range;
///   - no two valid entries map the same disk block;
///   - no two valid entries own the same current NVM block;
///   - log-role entries exist only if a transaction is in flight (Head !=
///     Tail) or could be the record-before-Head-move window (at most the
///     blocks of one transaction).
/// Read-only; never mutates the device.  Charges read latency like a real
/// scan would.
MediaReport verify_media(const nvm::NvmDevice& nvm, const Layout& layout);

}  // namespace tinca::core
