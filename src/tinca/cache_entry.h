// The 16-byte Tinca cache entry (paper Fig 5).
//
// Layout, least-significant byte first:
//
//   byte 0      flags: bit0 VALID, bit1 ROLE (1 = log block, 0 = buffer
//               block), bit2 MODIFIED (dirty), bit3 PREV_CLEAN (the previous
//               version was clean — its NVM copy was never flushed, but disk
//               holds the same bytes, so rollback must invalidate rather
//               than revert to possibly-torn NVM data)
//   bytes 1–7   on-disk block number (56 bits)
//   bytes 8–11  previous NVM block number (32 bits); kFresh if the block was
//               not cached before this transaction (write miss)
//   bytes 12–15 current NVM block number (32 bits)
//
// An entry is exactly 16 bytes and 16-byte aligned in the entry table, so it
// can be installed with a single LOCK cmpxchg16b (modelled by
// NvmDevice::atomic_store16) and can never tear across cache lines.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "common/expect.h"

namespace tinca::core {

/// Role of a cached block in the commit protocol (§4.3).
enum class Role : std::uint8_t {
  kBuffer = 0,  ///< stationary; eligible for replacement
  kLog = 1,     ///< part of the in-flight committing transaction; pinned
};

/// Decoded form of the 16 B persistent cache entry.
struct CacheEntry {
  /// Sentinel "previous NVM block" for write misses (paper's FRESH tag).
  static constexpr std::uint32_t kFresh = 0xFFFF'FFFFu;
  /// Largest representable on-disk block number (7 bytes).
  static constexpr std::uint64_t kMaxDiskBlock = (1ULL << 56) - 1;

  bool valid = false;
  Role role = Role::kBuffer;
  bool modified = false;
  /// The previous version's NVM copy was clean when this COW replaced it
  /// (read fill or cleaned block): disk already holds those bytes and the
  /// NVM copy was never flushed, so a rollback invalidates the entry (the
  /// block is re-fetchable) instead of reverting to unflushed NVM data.
  bool prev_clean = false;
  std::uint64_t disk_blkno = 0;
  std::uint32_t prev_nvm = kFresh;
  std::uint32_t curr_nvm = 0;

  /// Serialize to the persistent 16 B format.
  [[nodiscard]] std::array<std::byte, 16> encode() const {
    TINCA_EXPECT(disk_blkno <= kMaxDiskBlock, "disk block number exceeds 56 bits");
    std::array<std::byte, 16> raw{};
    std::uint8_t flags = 0;
    if (valid) flags |= 0x01;
    if (role == Role::kLog) flags |= 0x02;
    if (modified) flags |= 0x04;
    if (prev_clean) flags |= 0x08;
    raw[0] = static_cast<std::byte>(flags);
    store_le(raw.data() + 1, disk_blkno, 7);
    store_le(raw.data() + 8, prev_nvm, 4);
    store_le(raw.data() + 12, curr_nvm, 4);
    return raw;
  }

  /// Parse the persistent 16 B format.
  static CacheEntry decode(std::span<const std::byte, 16> raw) {
    CacheEntry e;
    const auto flags = static_cast<std::uint8_t>(raw[0]);
    e.valid = (flags & 0x01) != 0;
    e.role = (flags & 0x02) != 0 ? Role::kLog : Role::kBuffer;
    e.modified = (flags & 0x04) != 0;
    e.prev_clean = (flags & 0x08) != 0;
    e.disk_blkno = load_le(raw.data() + 1, 7);
    e.prev_nvm = static_cast<std::uint32_t>(load_le(raw.data() + 8, 4));
    e.curr_nvm = static_cast<std::uint32_t>(load_le(raw.data() + 12, 4));
    return e;
  }

  /// True if this entry carries the revoke marker (prev == curr), written by
  /// crash recovery to make repeated revocation idempotent (DESIGN.md §5).
  [[nodiscard]] bool revoke_marker() const {
    return valid && prev_nvm != kFresh && prev_nvm == curr_nvm;
  }

  bool operator==(const CacheEntry&) const = default;
};

}  // namespace tinca::core
