#include "tinca/tinca_cache.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "common/expect.h"
#include "obs/metrics.h"
#include "tinca/commit_directory.h"

namespace tinca::core {

// ---------------------------------------------------------------------------
// Transaction (running, DRAM-resident)
// ---------------------------------------------------------------------------

void Transaction::add(std::uint64_t disk_blkno, std::span<const std::byte> data) {
  TINCA_EXPECT(open_, "add to a closed transaction");
  TINCA_EXPECT(data.size() == kBlockSize, "transaction blocks are 4 KB");
  TINCA_EXPECT(disk_blkno <= CacheEntry::kMaxDiskBlock, "disk block number too large");
  auto [it, inserted] = blocks_.try_emplace(disk_blkno);
  if (inserted) order_.push_back(disk_blkno);
  it->second.assign(data.begin(), data.end());
}

// ---------------------------------------------------------------------------
// Construction / format / recovery
// ---------------------------------------------------------------------------

TincaCache::TincaCache(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
                       TincaConfig cfg)
    : nvm_(nvm),
      disk_(disk),
      cfg_(cfg),
      layout_(Layout::compute(nvm.size(), cfg.ring_bytes, cfg.num_streams)),
      mirror_(layout_.num_blocks),
      lru_(static_cast<std::uint32_t>(layout_.num_blocks)),
      free_entries_(static_cast<std::uint32_t>(layout_.num_blocks)),
      free_blocks_(static_cast<std::uint32_t>(layout_.num_blocks),
                   cfg.wear_level),
      mvcc_(layout_.num_blocks),
      trace_(nvm.clock(), cfg.trace_tid, "tinca."),
      ts_commit_(trace_.site("commit")),
      ts_abort_(trace_.site("abort")),
      ts_cow_(trace_.site("cow_write")),
      ts_ring_(trace_.site("ring_append")),
      ts_role_switch_(trace_.site("role_switch")),
      ts_evict_(trace_.site("evict")),
      ts_writeback_(trace_.site("writeback")),
      ts_recovery_(trace_.site("recovery")),
      ts_read_(trace_.site("read")),
      ts_io_retry_(trace_.site("io_retry")),
      ts_batch_append_(trace_.site("batch_append")),
      ts_batch_flush_(trace_.site("batch_flush")),
      ts_batch_publish_(trace_.site("batch_publish")) {
  rings_.reserve(layout_.num_streams);
  for (std::uint32_t s = 0; s < layout_.num_streams; ++s)
    rings_.emplace_back(nvm_, layout_, s);
  if (cfg_.cleaner.mode != cleaner::CleanerMode::kDisabled) {
    cleaner::CleanerConfig cc = cfg_.cleaner;
    cc.trace_tid = cfg_.trace_tid;
    cleaner_ = std::make_unique<cleaner::Cleaner>(
        cc, static_cast<cleaner::CleanerClient&>(*this), nvm_.clock());
  }
}

std::unique_ptr<TincaCache> TincaCache::format(nvm::NvmDevice& nvm,
                                               blockdev::BlockDevice& disk,
                                               TincaConfig cfg) {
  auto cache = std::unique_ptr<TincaCache>(new TincaCache(nvm, disk, cfg));
  cache->format_media();
  cache->order_free_blocks_by_wear();
  return cache;
}

std::unique_ptr<TincaCache> TincaCache::recover(nvm::NvmDevice& nvm,
                                                blockdev::BlockDevice& disk,
                                                TincaConfig cfg) {
  auto cache = mount_for_recovery(nvm, disk, cfg);
  const RecoveryScan scan = cache->recovery_scan();
  // Standalone adjudication: an anchored batch survives iff its commit
  // record exists in THIS cache's directory and the batch itself survived
  // whole.  (The sharded front-end instead coordinates all caches against
  // shard 0's directory — see ShardedTinca::recover.)
  std::unordered_set<std::uint32_t> effective;
  if (!scan.anchored.empty()) {
    for (const CommitRecord& rec :
         CommitDirectory::scan(nvm, cache->format_epoch_)) {
      for (const AnchoredBatch& ab : scan.anchored)
        if (ab.commit_id == rec.commit_id && ab.placed)
          effective.insert(ab.commit_id);
    }
  }
  cache->recovery_apply(effective);
  return cache;
}

std::unique_ptr<TincaCache> TincaCache::mount_for_recovery(
    nvm::NvmDevice& nvm, blockdev::BlockDevice& disk, TincaConfig cfg) {
  auto cache = std::unique_ptr<TincaCache>(new TincaCache(nvm, disk, cfg));
  cache->load_for_recovery();
  return cache;
}

void TincaCache::order_free_blocks_by_wear() {
  if (!cfg_.wear_level) return;
  free_blocks_.order_by_wear([this](std::uint32_t nb) {
    return nvm_.wear(layout_.data_block_off(nb), kBlockSize)
        .total_line_writes;
  });
}

void TincaCache::format_media() {
  // Superblock identity.
  nvm_.atomic_store8(Layout::kMagicOff, Layout::kMagic);
  nvm_.atomic_store8(Layout::kVersionOff, Layout::kVersion);
  nvm_.atomic_store8(Layout::kNumBlocksOff, layout_.num_blocks);
  nvm_.atomic_store8(Layout::kRingCapacityOff, layout_.ring_capacity);
  // Bump (never reset) the format epoch: it feeds every ring-record checksum,
  // so records staged by an earlier life of this device can never validate
  // again even when they land at the same slot and index.
  format_epoch_ = nvm_.load8(Layout::kFormatEpochOff) + 1;
  nvm_.atomic_store8(Layout::kFormatEpochOff, format_epoch_);
  nvm_.atomic_store8(Layout::kNumStreamsOff, layout_.num_streams);
  nvm_.persist(0, 48);
  for (RingBuffer& ring : rings_) ring.format();
  // Zero the commit directory (stale records are already dead under the new
  // epoch; zeroing keeps verify_media's slot accounting clean).
  CommitDirectory::format(nvm_);
  nvm_.clflush(Layout::kDirOff, Layout::kDirSlots * Layout::kDirSlotBytes);
  // Invalidate the whole entry table (flag byte 0 == invalid).
  const std::vector<std::byte> zeros(kBlockSize, std::byte{0});
  for (std::uint64_t off = layout_.entry_table_off; off < layout_.data_off;
       off += kBlockSize) {
    nvm_.store(off, zeros);
    nvm_.clflush(off, kBlockSize);
  }
  nvm_.sfence();
}

void TincaCache::load_for_recovery() {
  // 1. Validate the format identity.
  TINCA_EXPECT(nvm_.load8(Layout::kMagicOff) == Layout::kMagic,
               "NVM device is not a Tinca cache");
  TINCA_EXPECT(nvm_.load8(Layout::kVersionOff) == Layout::kVersion,
               "Tinca format version mismatch");
  TINCA_EXPECT(nvm_.load8(Layout::kNumBlocksOff) == layout_.num_blocks,
               "cache geometry changed since format");
  TINCA_EXPECT(nvm_.load8(Layout::kRingCapacityOff) == layout_.ring_capacity,
               "ring geometry changed since format");
  TINCA_EXPECT(nvm_.load8(Layout::kNumStreamsOff) == layout_.num_streams,
               "stream count changed since format");
  format_epoch_ = nvm_.load8(Layout::kFormatEpochOff);

  // 2. Load every stream's durable commit hint and the whole entry table.
  for (RingBuffer& ring : rings_) ring.load();
  dirty_count_ = 0;
  for (std::uint32_t slot = 0; slot < layout_.num_blocks; ++slot) {
    mirror_[slot] = read_entry_from_nvm(slot);
    if (mirror_[slot].valid && mirror_[slot].modified) ++dirty_count_;
  }

  // Temporary disk-block index over the raw table (DRAM index is rebuilt
  // from scratch in recovery_apply).
  index_.clear();
  for (std::uint32_t slot = 0; slot < layout_.num_blocks; ++slot)
    if (mirror_[slot].valid) index_.emplace(mirror_[slot].disk_blkno, slot);
}

std::uint64_t TincaCache::block_fp(std::uint32_t nvm_block) const {
  std::vector<std::byte> buf(kBlockSize);
  nvm_.load(layout_.data_block_off(nvm_block), buf);
  return fingerprint(buf);
}

// Whether a committed record's block can still be surfaced whole: the entry
// still points at it (or a LATER in-flight COW moved the entry onward —
// log-role with prev == the record's block) and the data matches the sealed
// fingerprint.
bool TincaCache::record_placed(const RingRecord& r) const {
  if (r.curr_nvm >= layout_.num_blocks) return false;
  const auto it = index_.find(r.disk_blkno);
  if (it == index_.end()) return false;
  const CacheEntry& e = mirror_[it->second];
  const bool entry_ok = e.curr_nvm == r.curr_nvm ||
                        (e.role == Role::kLog && e.prev_nvm == r.curr_nvm);
  return entry_ok && block_fp(r.curr_nvm) == r.payload_fp;
}

TincaCache::RecoveryScan TincaCache::recovery_scan() {
  TINCA_TRACE_SPAN(trace_, ts_recovery_);
  // 3. Scan each stream's validated ring records upward from its durable
  //    hint (DESIGN.md §14/§15).  Everything below a hint is fully durable
  //    AND role-switched; above it live at most the newest committed batches
  //    (whose role switches may not have been swept out yet) and the batch
  //    that was open at the crash.  A batch commit record whose batch_start
  //    matches the current run's first index closes a committed batch; the
  //    first invalid record (or an incoherent seal) ends that stream's scan,
  //    leaving a trailing run of in-flight block records.
  recovery_ = std::make_unique<RecoveryState>();
  recovery_->runs.resize(layout_.num_streams);
  for (std::uint32_t s = 0; s < layout_.num_streams; ++s) {
    const RingBuffer& ring = rings_[s];
    std::vector<RingRecord>& run = recovery_->runs[s];
    std::uint64_t idx = ring.durable_hint();
    const std::uint64_t scan_end = idx + layout_.stream_capacity;
    std::uint64_t run_start = idx;
    while (idx < scan_end) {
      const auto rec = ring.scan(idx, format_epoch_);
      if (!rec) break;
      if (rec->kind == RingRecord::Kind::kBlock) {
        run.push_back(*rec);
      } else {
        if (rec->batch_start() != run_start) break;  // stale seal from an
                                                     // earlier lap's batch
        recovery_->batches.push_back(
            {std::move(run), rec->commit_seq(), rec->commit_id(), s});
        run.clear();
        run_start = idx + 1;
      }
      ++idx;
    }
  }

  // Identify THE newest batch across all streams by its sealed sequence
  // number.  Per cache at most ONE batch can be un-fenced at a crash (the
  // owner mutex serializes commits, and a batch's fence completes before its
  // successor stages), so only the max-seq batch needs the all-or-nothing
  // placement check; every older sealed batch provably completed its fence —
  // a later seal exists — and commits unconditionally.
  for (std::size_t i = 0; i < recovery_->batches.size(); ++i) {
    if (recovery_->last < 0 ||
        recovery_->batches[i].seq >
            recovery_->batches[static_cast<std::size_t>(recovery_->last)].seq)
      recovery_->last = static_cast<int>(i);
  }
  if (recovery_->last >= 0) {
    const RecoveredBatch& newest =
        recovery_->batches[static_cast<std::size_t>(recovery_->last)];
    recovery_->last_placed = true;
    for (const RingRecord& r : newest.records)
      recovery_->last_placed = recovery_->last_placed && record_placed(r);
  }

  // Report the anchored batches for the coordinator's adjudication.
  RecoveryScan out;
  for (std::size_t i = 0; i < recovery_->batches.size(); ++i) {
    const RecoveredBatch& b = recovery_->batches[i];
    if (b.commit_id == 0) continue;
    const bool is_last = static_cast<int>(i) == recovery_->last;
    out.anchored.push_back(
        {b.commit_id, is_last, is_last ? recovery_->last_placed : true});
  }
  return out;
}

void TincaCache::recovery_apply(
    const std::unordered_set<std::uint32_t>& effective_commits) {
  TINCA_TRACE_SPAN(trace_, ts_recovery_);
  TINCA_EXPECT(recovery_ != nullptr, "recovery_apply without a scan");
  const std::unique_ptr<RecoveryState> st = std::move(recovery_);

  // 4. All-or-nothing adjudication of the NEWEST batch.  A plain batch
  //    (commit_id == 0) survives iff every record is placed — its fence ran
  //    (the seal validated), but an eviction hint-sync cut short by the
  //    crash can leave a block unplaceable, demoting the whole batch.  An
  //    anchored batch survives iff the coordinator adjudicated its commit id
  //    effective (directory record present AND every participant cache's
  //    part survived) — all-or-nothing ACROSS caches.  A demoted batch joins
  //    its stream's in-flight run and is revoked below.
  if (st->last >= 0) {
    RecoveredBatch& newest = st->batches[static_cast<std::size_t>(st->last)];
    const bool keep = newest.commit_id != 0
                          ? effective_commits.contains(newest.commit_id)
                          : st->last_placed;
    if (newest.commit_id != 0 && keep)
      TINCA_ENSURE(st->last_placed,
                   "effective cross-stream commit not placed whole");
    if (!keep) {
      std::vector<RingRecord> demoted = std::move(newest.records);
      std::vector<RingRecord>& run = st->runs[newest.stream];
      demoted.insert(demoted.end(), run.begin(), run.end());
      run = std::move(demoted);
      newest.records.clear();
    }
  }

  // 5. Roll committed batches forward: a log-role entry still holding a
  //    committed record's block is a role switch the crash beat to the
  //    media — flip it to buffer.  The stored-fingerprint check screens out
  //    the one confusable state: the entry's slot recycled by an in-flight
  //    install into a reused NVM block (whose staged data cannot match the
  //    committed record's fingerprint, as committed data was fenced and its
  //    block never rewritten while referenced).  Cross-stream order is
  //    irrelevant: only the newest install of a block matches the entry.
  for (const RecoveredBatch& b : st->batches) {
    for (const RingRecord& r : b.records) {
      if (r.curr_nvm >= layout_.num_blocks) continue;
      const auto it = index_.find(r.disk_blkno);
      if (it == index_.end()) continue;
      const std::uint32_t slot = it->second;
      CacheEntry e = mirror_[slot];
      if (!e.valid || e.role != Role::kLog || e.curr_nvm != r.curr_nvm)
        continue;
      if (block_fp(r.curr_nvm) != r.payload_fp) continue;
      e.role = Role::kBuffer;
      e.prev_clean = false;
      write_entry(slot, e);
      ++stats_.role_switches;
    }
  }

  // 6. Revoke every stream's in-flight run: every block an open or demoted
  //    batch recorded whose staged entry reached the media is rolled back
  //    (marker rollback to prev, or invalidation for write misses and
  //    clean-prev COWs).
  for (const std::vector<RingRecord>& run : st->runs) {
    for (const RingRecord& r : run) {
      if (r.kind != RingRecord::Kind::kBlock) continue;
      const auto it = index_.find(r.disk_blkno);
      if (it == index_.end()) continue;
      const CacheEntry& e = mirror_[it->second];
      if (e.valid && e.role == Role::kLog && e.curr_nvm == r.curr_nvm)
        revoke_slot(it->second);
    }
  }

  // 7. Full entry scan: catches staged installs whose entry line survived
  //    but whose ring record did not (record and entry are both unfenced
  //    until the batch flush, so either can reach the media alone); also
  //    sheds clean entries, whose data was never explicitly flushed
  //    (DESIGN.md §5).
  for (std::uint32_t slot = 0; slot < layout_.num_blocks; ++slot) {
    CacheEntry& e = mirror_[slot];
    if (!e.valid) continue;
    if (e.role == Role::kLog) revoke_slot(slot);
    if (e.valid && !e.modified) {
      index_.erase(e.disk_blkno);
      invalidate_entry(slot);
      ++stats_.dropped_clean_entries;
    }
  }

  // 8. Durably pin the adjudicated entry table.  A *clean* remount arrives
  //    with the previous life's staged publish metadata still unflushed: the
  //    accepted (volatile) side of such an entry line is a role switch whose
  //    durable side is still the log-role install.  The epoch bump below
  //    retires the ring records that explain that log side, so if a later
  //    power cut reverted the line, the sweep would roll the entry back to a
  //    previous version whose NVM block may long since have been recycled.
  //    One flush pass over the table closes the hole.
  nvm_.clflush(layout_.entry_table_off,
               layout_.data_off - layout_.entry_table_off);
  nvm_.sfence();

  //    Epilogue.  Bump the format epoch FIRST (a crash before the bump
  //    rescans with the old epoch and redoes the idempotent rewrites above;
  //    a crash after it finds only invalid records), then reset every
  //    stream's ring — with the new epoch no stale ring record OR commit
  //    directory record can validate, so indices and hints restart from
  //    zero and directory slots are free for reuse.
  ++format_epoch_;
  nvm_.atomic_store8(Layout::kFormatEpochOff, format_epoch_);
  nvm_.persist(Layout::kFormatEpochOff, 8);
  for (RingBuffer& ring : rings_) ring.format();

  // 9. Rebuild DRAM structures from the surviving entries.
  index_.clear();
  free_entries_.clear();
  free_blocks_.clear();
  std::vector<bool> block_used(layout_.num_blocks, false);
  for (std::uint32_t slot = 0; slot < layout_.num_blocks; ++slot) {
    const CacheEntry& e = mirror_[slot];
    if (!e.valid) continue;
    TINCA_ENSURE(e.role == Role::kBuffer, "log-role entry survived recovery");
    TINCA_ENSURE(e.curr_nvm < layout_.num_blocks, "entry points beyond data area");
    TINCA_ENSURE(!block_used[e.curr_nvm], "two entries share an NVM block");
    block_used[e.curr_nvm] = true;
    const bool fresh = index_.emplace(e.disk_blkno, slot).second;
    TINCA_ENSURE(fresh, "duplicate disk block in entry table");
    lru_.push_mru(slot);
    ++stats_.recovered_entries;
  }
  for (std::uint32_t i = layout_.num_blocks; i-- > 0;) {
    if (!mirror_[i].valid) free_entries_.give(i);
    if (!block_used[i]) free_blocks_.give(i);
  }

  // 10. Seed the (DRAM-only) version chains: every survivor is dirty, i.e.
  //    its NVM copy is ahead of disk, so snapshot readers must find it in a
  //    chain — a disk fallback would hand them stale bytes the moment the
  //    cleaner starts advancing disk again (DESIGN.md §12).
  for (std::uint32_t slot = 0; slot < layout_.num_blocks; ++slot) {
    const CacheEntry& e = mirror_[slot];
    if (!e.valid) continue;
    mvcc_.publish_baseline(e.disk_blkno, e.curr_nvm);
    mvcc_.stats.recovery_seeded.fetch_add(1, std::memory_order_relaxed);
  }

  order_free_blocks_by_wear();
}

// ---------------------------------------------------------------------------
// Entry plumbing
// ---------------------------------------------------------------------------

CacheEntry TincaCache::read_entry_from_nvm(std::uint32_t slot) const {
  std::array<std::byte, 16> raw{};
  nvm_.load(layout_.entry_off(slot), raw);
  return CacheEntry::decode(raw);
}

void TincaCache::write_entry(std::uint32_t slot, const CacheEntry& e) {
  // Every persistent dirty-bit transition funnels through here (or through
  // invalidate_entry), which is what keeps the incremental dirty counter
  // exact without the old per-commit full-index scan.
  const bool was_dirty = mirror_[slot].valid && mirror_[slot].modified;
  const bool now_dirty = e.valid && e.modified;
  if (was_dirty && !now_dirty) --dirty_count_;
  if (!was_dirty && now_dirty) ++dirty_count_;
  mirror_[slot] = e;
  const auto raw = e.encode();
  const std::uint64_t off = layout_.entry_off(slot);
  nvm_.atomic_store16(off, raw);
  nvm_.persist(off, 16);
}

void TincaCache::invalidate_entry(std::uint32_t slot) {
  if (mirror_[slot].valid && mirror_[slot].modified) --dirty_count_;
  mirror_[slot] = CacheEntry{};
  const std::array<std::byte, 16> zeros{};
  const std::uint64_t off = layout_.entry_off(slot);
  nvm_.atomic_store16(off, zeros);
  nvm_.persist(off, 16);
}

void TincaCache::write_data_block(std::uint32_t nvm_block,
                                  std::span<const std::byte> data) {
  const std::uint64_t off = layout_.data_block_off(nvm_block);
  nvm_.store(off, data);
  nvm_.persist(off, kBlockSize);
}

// Staged variants (DESIGN.md §14): same stores and DRAM bookkeeping, but no
// clflush/sfence — the dirtied range is queued for the batch flush pass, so a
// whole batch pays one fence instead of one per store.

void TincaCache::write_entry_staged(
    std::uint32_t slot, const CacheEntry& e,
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& ranges) {
  const bool was_dirty = mirror_[slot].valid && mirror_[slot].modified;
  const bool now_dirty = e.valid && e.modified;
  if (was_dirty && !now_dirty) --dirty_count_;
  if (!was_dirty && now_dirty) ++dirty_count_;
  mirror_[slot] = e;
  const auto raw = e.encode();
  const std::uint64_t off = layout_.entry_off(slot);
  nvm_.atomic_store16(off, raw);
  ranges.emplace_back(off, 16);
}

void TincaCache::write_data_block_staged(std::uint32_t nvm_block,
                                         std::span<const std::byte> data) {
  const std::uint64_t off = layout_.data_block_off(nvm_block);
  nvm_.store(off, data);
  flush_ranges_.emplace_back(off, kBlockSize);
}

// ---------------------------------------------------------------------------
// Replacement (§4.6)
// ---------------------------------------------------------------------------

// Disk write with the configured retry policy: transient errors are retried
// with exponential backoff (each retry is a traced span covering its wait);
// a bad sector comes back to the caller unhealed.  Retries are charged to
// `*retry_counter` so cleaner-driven writes book their storms under
// cleaner.io_retries, not the foreground's io.retries.
blockdev::IoStatus TincaCache::disk_write(std::uint64_t blkno,
                                          std::span<const std::byte> buf,
                                          std::uint64_t* retry_counter) {
  blockdev::IoStatus st = disk_.write(blkno, buf);
  std::uint64_t wait = cfg_.io.backoff_ns;
  for (std::uint32_t attempt = 0;
       st == blockdev::IoStatus::kTransient && attempt < cfg_.io.max_retries;
       ++attempt) {
    TINCA_TRACE_SPAN(trace_, ts_io_retry_);
    nvm_.clock().advance(wait);
    wait *= cfg_.io.backoff_mult == 0 ? 1 : cfg_.io.backoff_mult;
    ++*retry_counter;
    st = disk_.write(blkno, buf);
  }
  return st;
}

blockdev::IoStatus TincaCache::disk_write(std::uint64_t blkno,
                                          std::span<const std::byte> buf) {
  return disk_write(blkno, buf, &stats_.io_retries);
}

blockdev::IoStatus TincaCache::disk_read(std::uint64_t blkno,
                                         std::span<std::byte> buf) {
  blockdev::IoStatus st = disk_.read(blkno, buf);
  std::uint64_t wait = cfg_.io.backoff_ns;
  for (std::uint32_t attempt = 0;
       st == blockdev::IoStatus::kTransient && attempt < cfg_.io.max_retries;
       ++attempt) {
    TINCA_TRACE_SPAN(trace_, ts_io_retry_);
    nvm_.clock().advance(wait);
    wait *= cfg_.io.backoff_mult == 0 ? 1 : cfg_.io.backoff_mult;
    ++stats_.io_retries;
    st = disk_.read(blkno, buf);
  }
  return st;
}

// A write hit a permanent bad sector: quarantine the block (it stays dirty
// in NVM, never evicted) and degrade to forced write-through so future
// commits surface disk health instead of accumulating unsyncable state.
// The quarantine set is DRAM-only on purpose — a quarantined block is by
// definition dirty, recovery keeps dirty entries, and the next writeback
// attempt after a restart re-discovers the bad sector, so nothing is lost
// across a crash.
void TincaCache::note_bad_block(std::uint64_t disk_blkno) {
  if (quarantine_.insert(disk_blkno).second) ++stats_.io_quarantined;
  degraded_ = true;
}

// Pushes the block to disk without touching the entry.  Callers account the
// write: replacement paths bump `dirty_writebacks`, the write-through commit
// path bumps `writethrough_writes` — conflating the two skewed the Fig 12
// media accounting.  Returns false when the block could not be written
// (quarantined, bad sector, or retries exhausted); the caller must then
// leave the entry dirty.
bool TincaCache::writeback(std::uint32_t slot) {
  TINCA_TRACE_SPAN(trace_, ts_writeback_);
  const CacheEntry& e = mirror_[slot];
  if (quarantine_.contains(e.disk_blkno)) return false;
  if (mvcc_defer_disk_write(e.disk_blkno)) return false;
  std::vector<std::byte> buf(kBlockSize);
  nvm_.load(layout_.data_block_off(e.curr_nvm), buf);
  const blockdev::IoStatus st = disk_write(e.disk_blkno, buf);
  if (st == blockdev::IoStatus::kOk) return true;
  if (st == blockdev::IoStatus::kBadSector) note_bad_block(e.disk_blkno);
  return false;
}

std::uint32_t TincaCache::evict_one(std::uint32_t scan_from) {
  TINCA_TRACE_SPAN(trace_, ts_evict_);
  // LRU with the §4.6 pinning rule: log-role blocks (the committing
  // transaction, including implicitly their previous versions) are skipped.
  // Dirty victims whose writeback fails are skipped too — evicting them
  // would drop the only durable copy of committed data.
  //
  // The scan resumes from `scan_from` (the caller threads the cursor through
  // an ensure_free pass) so a run of quarantined / unwritable victims at the
  // LRU end is skipped once per pass, not once per eviction: the old
  // restart-from-the-tail loop made ensure_free O(n²) against a failing disk.
  //
  // With a cleaner configured, dirty victims are *enqueued* rather than
  // written back inline; the scan keeps looking for a clean victim and only
  // falls back to a blocking cleaner drain when none exists.
  for (;;) {
    std::uint32_t victim =
        (scan_from != SlotLru::kNil && lru_.contains(scan_from))
            ? scan_from
            : lru_.lru();
    bool wrote_back = false;
    while (victim != SlotLru::kNil) {
      if (mirror_[victim].role == Role::kLog) {
        victim = lru_.newer(victim);
        continue;
      }
      if (!mirror_[victim].modified) break;
      if (cleaner_) {
        // Off the commit path: hand the dirty victim to the cleaner and keep
        // scanning for a clean one.  (A full queue is fine — the watermark
        // pull will find the block later.)
        cleaner_->try_enqueue(mirror_[victim].disk_blkno);
        victim = lru_.newer(victim);
        continue;
      }
      if (writeback(victim)) {
        wrote_back = true;
        break;
      }
      victim = lru_.newer(victim);
    }
    if (victim == SlotLru::kNil && scan_from != SlotLru::kNil) {
      // Cursor staleness: slots the cursor already skipped may have become
      // evictable since they were visited — e.g. a quarantined victim the
      // cleaner has drained and de-quarantined mid-pass.  One full rescan
      // from the LRU end before concluding the cache is really stuck.
      scan_from = SlotLru::kNil;
      continue;
    }
    if (victim == SlotLru::kNil && cleaner_ && cleaner_->drain_blocking() > 0) {
      // Backpressure: the cleaner retired at least one block, so a clean
      // victim now exists.  Restart from the LRU end (slots may have moved).
      scan_from = SlotLru::kNil;
      continue;
    }
    TINCA_ENSURE(victim != SlotLru::kNil,
                 "cache wedged: every cached block is pinned by the committing "
                 "transaction or stuck dirty behind a failing disk");
    const std::uint32_t next = lru_.newer(victim);
    const CacheEntry e = mirror_[victim];
    if (wrote_back) ++stats_.dirty_writebacks;
    // Evicting a block of the newest published batch while the durable hint
    // still points below that batch would let recovery find one of its
    // records unplaced and demote the whole (acked!) batch.  Push the hint
    // past the batch first — slow path, but eviction is already a disk write.
    if (last_batch_blocks_.contains(e.disk_blkno)) hint_sync();
    invalidate_entry(victim);
    index_.erase(e.disk_blkno);
    lru_.remove(victim);
    // The evicted block's version chain (when it has one) keeps serving
    // pinned snapshot readers, so it retains the NVM block; reclamation
    // returns it to the pool once no pin can reach the chain.
    if (mvcc_.owns(e.disk_blkno, e.curr_nvm)) {
      mvcc_.retire(e.disk_blkno);
    } else {
      free_blocks_.give(e.curr_nvm);
    }
    free_entries_.give(victim);
    ++stats_.evictions;
    return next;
  }
}

void TincaCache::ensure_free(std::uint32_t entries, std::uint32_t blocks) {
  std::uint32_t cursor = SlotLru::kNil;
  while (free_entries_.count() < entries || free_blocks_.count() < blocks) {
    // Old versions parked in chains are the cheapest space to win back —
    // reclaim before evicting live blocks (eviction itself parks more
    // blocks in retired chains while readers hold pins).
    mvcc_reclaim();
    if (free_entries_.count() >= entries && free_blocks_.count() >= blocks)
      break;
    cursor = evict_one(cursor);
  }
}

void TincaCache::clean_to_threshold() {
  if (cleaner_) {
    // Cleaner configured: this path only *nominates* blocks; the actual disk
    // writes happen on cleaner steps.  Above the high watermark, feed the
    // queue oldest-first so the next steps have something batched to drain.
    const std::uint64_t high =
        layout_.num_blocks * cleaner_->config().high_water_pct / 100;
    if (dirty_count_ <= high) return;
    std::uint64_t excess = dirty_count_ - high;
    std::uint32_t slot = lru_.lru();
    while (slot != SlotLru::kNil && excess > 0) {
      const CacheEntry& e = mirror_[slot];
      if (e.valid && e.modified && e.role == Role::kBuffer &&
          !quarantine_.contains(e.disk_blkno) &&
          !cleaner_->pending(e.disk_blkno)) {
        if (!cleaner_->try_enqueue(e.disk_blkno)) break;  // queue full
        --excess;
      }
      slot = lru_.newer(slot);
    }
    return;
  }
  if (cfg_.clean_thresh_pct >= 100) return;
  const std::uint64_t limit =
      layout_.num_blocks * cfg_.clean_thresh_pct / 100;
  // The incremental counter replaces the old O(capacity) index rescan that
  // this path used to perform on every single commit.
  if (dirty_count_ <= limit) return;
  // Oldest-first: walk from the LRU end, skipping pinned (log-role) blocks.
  std::uint32_t slot = lru_.lru();
  while (slot != SlotLru::kNil && dirty_count_ > limit) {
    const std::uint32_t next = lru_.newer(slot);
    CacheEntry e = mirror_[slot];
    if (e.valid && e.modified && e.role == Role::kBuffer && writeback(slot)) {
      e.modified = false;
      write_entry(slot, e);  // decrements dirty_count_
      ++stats_.dirty_writebacks;
      ++stats_.background_cleanings;
    }
    slot = next;
  }
}

// ---------------------------------------------------------------------------
// CleanerClient (DESIGN.md §11)
// ---------------------------------------------------------------------------

// Clean one disk block: write its newest NVM copy to disk durably, *then*
// clear the modified bit.  That ordering is the whole crash-safety argument —
// a power cut anywhere in here leaves the entry dirty, recovery keeps dirty
// entries, and the block is simply cleaned again (write-back is idempotent).
cleaner::CleanOutcome TincaCache::cleaner_clean(std::uint64_t key,
                                                std::uint64_t* io_retries) {
  auto it = index_.find(key);
  if (it == index_.end()) return cleaner::CleanOutcome::kStale;
  const std::uint32_t slot = it->second;
  CacheEntry e = mirror_[slot];
  if (!e.valid || !e.modified) return cleaner::CleanOutcome::kStale;
  if (e.role == Role::kLog) return cleaner::CleanOutcome::kPinned;
  // A pinned snapshot reader may still depend on the block's CURRENT disk
  // content (no chain version <= its pin): advancing disk now would hand it
  // torn history.  Requeue; pins are short-lived (DESIGN.md §12).
  if (mvcc_defer_disk_write(key)) return cleaner::CleanOutcome::kPinned;

  if (!cfg_.cleaner.sabotage_skip_write) {
    std::vector<std::byte> buf(kBlockSize);
    nvm_.load(layout_.data_block_off(e.curr_nvm), buf);
    nvm_.injector.point();  // CP: cut mid-drain, before the disk write
    const blockdev::IoStatus st = disk_write(key, buf, io_retries);
    if (st != blockdev::IoStatus::kOk) {
      // Unlike the foreground path, a bad sector does NOT give up for good:
      // the cleaner keeps the block on its backoff queue, so quarantine is a
      // state the cache can *leave* if the sector recovers.
      if (st == blockdev::IoStatus::kBadSector) note_bad_block(key);
      return cleaner::CleanOutcome::kFailed;
    }
    quarantine_.erase(key);
    ++stats_.dirty_writebacks;
    ++stats_.background_cleanings;
    nvm_.injector.point();  // CP: durable on disk, entry still dirty
  }
  // Sabotage mode (oracle self-test) falls through to here without writing:
  // the entry goes clean while disk holds stale data — the recovery oracle
  // must flag the resulting state as matching no acceptable history.

  e.modified = false;
  write_entry(slot, e);
  return cleaner::CleanOutcome::kRetired;
}

std::uint64_t TincaCache::cleaner_dirty_blocks() const { return dirty_count_; }

std::uint64_t TincaCache::cleaner_capacity_blocks() const {
  return layout_.num_blocks;
}

void TincaCache::cleaner_collect(std::uint32_t max,
                                 std::vector<std::uint64_t>& out) {
  // Oldest-first along the LRU list — deterministic, and the blocks most
  // likely to be eviction victims soon.  Quarantined blocks are not pulled
  // (they ride the cleaner's failure-retry queue instead), and keys already
  // pending would only bounce off the dup filter.
  std::uint32_t slot = lru_.lru();
  while (slot != SlotLru::kNil && out.size() < max) {
    const CacheEntry& e = mirror_[slot];
    if (e.valid && e.modified && e.role == Role::kBuffer &&
        !quarantine_.contains(e.disk_blkno) && !cleaner_->pending(e.disk_blkno))
      out.push_back(e.disk_blkno);
    slot = lru_.newer(slot);
  }
}

void TincaCache::assert_dirty_count() const {
#ifndef NDEBUG
  std::uint64_t scan = 0;
  for (auto [blkno, slot] : index_)
    if (mirror_[slot].modified) ++scan;
  TINCA_ENSURE(scan == dirty_count_,
               "incremental dirty counter diverged from the entry table");
#endif
}

std::uint64_t TincaCache::max_txn_blocks() const {
  // Worst case every block is a write hit needing both versions resident,
  // and nothing else may be evictable; keep a margin of 2 blocks.  One
  // stream's ring must fit the whole batch plus its commit record after a
  // hint sync (batches never span streams).
  const std::uint64_t cap = layout_.num_blocks / 2;
  const std::uint64_t by_ring = layout_.stream_capacity - 1;
  return std::min(cap > 2 ? cap - 2 : 1, by_ring);
}

// ---------------------------------------------------------------------------
// Transactional primitives (§4.1, §4.4)
// ---------------------------------------------------------------------------

Transaction TincaCache::tinca_init_txn() { return Transaction(next_txn_id_++); }

void TincaCache::tinca_abort(Transaction& txn) {
  TINCA_TRACE_SPAN(trace_, ts_abort_);
  TINCA_EXPECT(txn.open_, "abort of a closed transaction");
  txn.open_ = false;
  txn.blocks_.clear();
  txn.order_.clear();
  ++stats_.txns_aborted;
}

// Stage one merged block's install (pipeline stage A, DESIGN.md §14): the
// COW/miss install of v1's commit_block, but every store staged (unflushed)
// with its byte range queued for the batch flush pass, plus a self-validating
// ring block record carrying the data's fingerprint.
void TincaCache::stage_block_install(std::uint64_t disk_blkno,
                                     std::span<const std::byte> data) {
  nvm_.injector.point();  // CP: before this block touches NVM
  nvm_.clock().advance(cfg_.cpu_op_ns);

  // Reserve exactly what each path consumes.  A COW hit takes one free NVM
  // block but *no* entry slot; a miss takes one of each.  Making the target
  // MRU first steers eviction elsewhere; should it still get evicted
  // (everything else pinned by the committing batch), it cleanly degrades to
  // a write miss — its last committed contents are on disk, so rollback
  // stays correct.
  auto it = index_.find(disk_blkno);
  if (it != index_.end()) {
    lru_.touch(it->second);
    ensure_free(0, 1);
    it = index_.find(disk_blkno);
  }
  if (it == index_.end()) ensure_free(1, 1);

  std::uint32_t nb = 0;
  {
    TINCA_TRACE_SPAN(trace_, ts_cow_);
    if (it != index_.end()) {
      // Write hit: COW block write (§4.3), staged.
      const std::uint32_t slot = it->second;
      ++stats_.write_hits;
      ++stats_.cow_writes;
      // First COW over a chainless entry (a clean read fill): publish its
      // current bytes as the epoch-1 baseline version so pinned readers keep
      // resolving in NVM instead of depending on the disk copy (which the
      // cleaner may advance).  The chain takes ownership of the block.
      if (!mvcc_.owns(disk_blkno, mirror_[slot].curr_nvm))
        mvcc_baseline(disk_blkno, mirror_[slot].curr_nvm);
      nb = free_blocks_.take();
      write_data_block_staged(nb, data);
      nvm_.injector.point();  // CP: new version staged, entry still old

      CacheEntry e = mirror_[slot];
      // A clean previous version was never flushed (read fill / cleaned
      // block) — its NVM copy may be torn after a crash, but disk holds the
      // same bytes, so rollback must invalidate instead of reverting.
      e.prev_clean = !e.modified;
      e.prev_nvm = e.curr_nvm;  // keep the old version reachable for rollback
      e.curr_nvm = nb;
      e.role = Role::kLog;
      e.modified = true;
      write_entry_staged(slot, e, flush_ranges_);
      nvm_.injector.point();  // CP: entry staged to the new version
    } else {
      // Write miss: create a new entry whose previous version is FRESH.
      ++stats_.write_misses;
      const std::uint32_t slot = free_entries_.take();
      nb = free_blocks_.take();
      write_data_block_staged(nb, data);
      nvm_.injector.point();  // CP: data staged, entry absent

      CacheEntry e;
      e.valid = true;
      e.role = Role::kLog;
      e.modified = true;
      e.disk_blkno = disk_blkno;
      e.prev_nvm = CacheEntry::kFresh;
      e.curr_nvm = nb;
      write_entry_staged(slot, e, flush_ranges_);
      index_.emplace(disk_blkno, slot);
      lru_.push_mru(slot);  // listed, but pinned by the log role
      nvm_.injector.point();  // CP: entry created (staged)
    }
  }

  TINCA_TRACE_SPAN(trace_, ts_ring_);
  flush_ranges_.push_back(
      rings_[batch_.stream].stage_block(disk_blkno, nb, fingerprint(data)));
  nvm_.injector.point();  // CP: block record staged
}

// Pipeline stage D (publish): stage every role switch — the dirtied entry
// lines go to pending_ranges_, swept out by the NEXT batch's flush pass or by
// hint_sync(), never by this batch.
void TincaCache::publish_switches(const std::vector<std::uint64_t>& blocks) {
  TINCA_TRACE_SPAN(trace_, ts_role_switch_);
  for (std::uint64_t blkno : blocks) {
    auto it = index_.find(blkno);
    TINCA_ENSURE(it != index_.end(), "committed block vanished before switch");
    const std::uint32_t slot = it->second;
    CacheEntry e = mirror_[slot];
    TINCA_ENSURE(e.role == Role::kLog, "role switch on a buffer block");
    e.role = Role::kBuffer;
    e.prev_clean = false;
    // NOTE: prev_nvm is deliberately *kept*: recovery can still identify the
    // entry whichever side of the switch reached the media (DESIGN.md §14).
    write_entry_staged(slot, e, pending_ranges_);
    nvm_.injector.point();  // CP: this switch staged

    // The previous version usually lives on as the head of the block's
    // version chain (the COW path guarantees a chain for every write hit);
    // then the chain owns the NVM block and reclamation frees it once no
    // pinned reader can resolve to it.  Only a chainless prev (impossible
    // today, but cheap to keep correct) goes straight back to the pool.
    if (e.prev_nvm != CacheEntry::kFresh && !mvcc_.owns(blkno, e.prev_nvm))
      free_blocks_.give(e.prev_nvm);
    lru_.touch(slot);  // §4.6(2b): committed blocks become MRU
    ++stats_.role_switches;
  }
}

// Durably advance every dirty stream's commit hint past its newest published
// batch: flush the staged role switches, then persist hint := tail per dirty
// stream (each persist's fence also covers the preceding flushes).  After
// this, recovery's scan windows are all empty — nothing gets re-validated.
// In the common case exactly one stream is dirty, so this costs one fence.
void TincaCache::hint_sync() {
  for (const auto& [off, len] : pending_ranges_) nvm_.clflush(off, len);
  pending_ranges_.clear();
  for (RingBuffer& ring : rings_)
    if (ring.hint_dirty()) ring.persist_hint();
  last_batch_blocks_.clear();
  ++stats_.hint_syncs;
}

void TincaCache::tinca_commit(Transaction& txn) {
  Transaction* const one[] = {&txn};
  commit_group(one);
}

void TincaCache::close_committed(Transaction& t) {
  stats_.blocks_per_txn.record(t.order_.size());
  ++stats_.txns_committed;
  t.open_ = false;
  t.blocks_.clear();
  t.order_.clear();
}

void TincaCache::commit_group(std::span<Transaction* const> txns) {
  TINCA_TRACE_SPAN(trace_, ts_commit_);
  if (!batch_stage(txns, 0)) return;
  batch_flush();
  // The single sfence is the batch's commit point.
  nvm_.sfence();
  ++stats_.commit_fences;
  batch_publish();
}

// Phase 1 (stages A+B of DESIGN.md §14): merge, install and seal on the next
// round-robin stream.  Nothing flushed yet.
bool TincaCache::batch_stage(std::span<Transaction* const> txns,
                             std::uint32_t commit_id) {
  TINCA_ENSURE(!batch_.active, "a batch is already staged");
  for (Transaction* t : txns)
    TINCA_EXPECT(t != nullptr && t->open_, "commit of a closed transaction");

  // Merge the batch last-writer-wins, in span order: one install, one ring
  // record and one flushed data block per distinct disk block, however many
  // transactions staged it.  (Required for correctness, not just speed: two
  // COWs of the same block in one batch would leave the middle version
  // unreachable for rollback.)
  std::vector<std::uint64_t> order;
  std::unordered_map<std::uint64_t, std::span<const std::byte>> merged;
  for (Transaction* t : txns) {
    for (std::uint64_t blkno : t->order_) {
      const auto [mit, fresh] = merged.insert_or_assign(
          blkno, std::span<const std::byte>(t->blocks_[blkno]));
      if (fresh)
        order.push_back(blkno);
      else
        ++stats_.group_merged_writes;
    }
  }

  const std::size_t n = order.size();
  if (n == 0) {
    for (Transaction* t : txns) close_committed(*t);
    if (!txns.empty()) {
      ++stats_.commit_batches;
      stats_.commit_batch_size.record(txns.size());
    }
    return false;
  }
  TINCA_EXPECT(n <= max_txn_blocks(),
               "batch exceeds the cache's committable size");

  // Stream assignment: plain round-robin — batches never span streams, and
  // the owner mutex serializes commits, so rotation alone spreads the ring
  // and hint-line traffic evenly with no cross-stream coordination.
  batch_.stream = next_stream_;
  next_stream_ = (next_stream_ + 1) % layout_.num_streams;
  RingBuffer& ring = rings_[batch_.stream];
  TINCA_ENSURE(ring.in_flight() == 0, "a previous commit left the ring open");
  // Ring backpressure: this stream's scan window [durable hint, head) must
  // keep the whole batch plus its commit record.  Syncing the hints empties
  // every stream's window; the other streams are untouched otherwise.
  if (!ring.has_room(n + 1)) hint_sync();
  TINCA_ENSURE(ring.has_room(n + 1), "batch exceeds the ring capacity");

  batch_.start = ring.head();
  batch_.commit_id = commit_id;

  // Stages A+B — append + seal: staged installs and ring records for every
  // merged block, then the batch commit record tagged with the cache-wide
  // batch sequence and the (possibly zero) cross-stream commit id.
  {
    TINCA_TRACE_SPAN(trace_, ts_batch_append_);
    for (std::uint64_t blkno : order) stage_block_install(blkno, merged[blkno]);
    const std::uint64_t tag =
        static_cast<std::uint64_t>(batch_seq_++) |
        (static_cast<std::uint64_t>(commit_id) << 32);
    flush_ranges_.push_back(ring.stage_commit(batch_.start, txns.size(), tag));
  }
  batch_.end = ring.head();
  nvm_.injector.point();  // CP: batch staged and sealed, nothing fenced

  batch_.order = std::move(order);
  batch_.txns.assign(txns.begin(), txns.end());
  batch_.active = true;
  return true;
}

// Phase 2 (stage C minus the fence): ONE clflush pass for the whole batch;
// the PREVIOUS batch's staged role switches and hint lines ride the same
// pass (the pipeline overlap), so they are durable before this batch's hint
// value could ever supersede them.  The caller issues the single sfence —
// the batch's commit point — after this returns (a cross-cache coordinator
// flushes every participant plus the commit record first).
void TincaCache::batch_flush() {
  TINCA_ENSURE(batch_.active, "flush without a staged batch");
  TINCA_TRACE_SPAN(trace_, ts_batch_flush_);
  for (const auto& [off, len] : pending_ranges_) nvm_.clflush(off, len);
  for (const auto& [off, len] : flush_ranges_) {
    nvm_.injector.point();  // CP: mid-flush — this range not yet durable
    nvm_.clflush(off, len);
  }
  pending_ranges_.clear();
  flush_ranges_.clear();
}

// Phase 3 (stages D+E): after the commit fence.  Publishes role switches,
// the stream's commit hint and the MVCC versions, then closes the batch.
void TincaCache::batch_publish() {
  TINCA_ENSURE(batch_.active, "publish without a staged batch");
  // The fence just ran and the flush pass covered every staged hint line
  // (publish appends them to pending_ranges_, which only a full flush
  // clears) — so every stream's staged hint is now the durable one.
  for (RingBuffer& ring : rings_) ring.note_staged_hint_durable();
  nvm_.injector.point();  // CP: batch durable (fence passed), not published

  const std::vector<std::uint64_t>& order = batch_.order;
  RingBuffer& ring = rings_[batch_.stream];

  // Stage D — publish: stage the role switches and the stream's new commit
  // hint (start of this batch); both ride the NEXT batch's flush pass.
  {
    TINCA_TRACE_SPAN(trace_, ts_batch_publish_);
    publish_switches(order);
    pending_ranges_.push_back(ring.publish(batch_.start));
    last_batch_blocks_.clear();
    last_batch_blocks_.insert(order.begin(), order.end());
  }
  nvm_.injector.point();  // CP: published (switches + hint staged, unfenced)

  // MVCC publication (DESIGN.md §12): append each block's new version to its
  // chain at epoch E+1, then bump the commit epoch ONCE for the batch —
  // strictly after the fence so a visible epoch never exposes a transaction
  // that is not yet durable.
  for (std::uint64_t blkno : order)
    mvcc_publish(blkno, mirror_[index_.at(blkno)].curr_nvm);
  mvcc_.bump();

  // Stage E — durable-ack and post-commit work.
  //
  // Write-through mode: propagate to disk now and mark clean.  Crash-safe
  // at any point — until the entry is rewritten clean, the block simply
  // stays dirty in NVM and recovery keeps it.  A degraded cache (bad sector
  // seen) forces write-through even when configured write-back, so disk
  // health surfaces per commit instead of at eviction time.  A failed
  // writeback just leaves the block dirty.
  if (cfg_.write_through || degraded_) {
    if (degraded_ && !cfg_.write_through && cleaner_) {
      // Forced (degradation-driven) write-through with a cleaner: the commit
      // only *enqueues*; retries and backoff against the sick disk run on
      // the cleaner's budget, not this commit's latency.
      for (std::uint64_t blkno : order) cleaner_->try_enqueue(blkno);
    } else {
      for (std::uint64_t blkno : order) {
        const std::uint32_t slot = index_.at(blkno);
        if (!writeback(slot)) continue;
        ++stats_.writethrough_writes;
        if (degraded_ && !cfg_.write_through) ++stats_.io_degraded_writes;
        CacheEntry e = mirror_[slot];
        e.modified = false;
        write_entry(slot, e);
      }
    }
  }

  stats_.blocks_committed += order.size();
  ++stats_.commit_batches;
  stats_.commit_batch_size.record(batch_.txns.size());
  if (batch_.commit_id != 0) ++stats_.xstream_commits;
  for (Transaction* t : batch_.txns) close_committed(*t);

  batch_.active = false;
  batch_.order.clear();
  batch_.txns.clear();

  clean_to_threshold();
  mvcc_reclaim();  // amortized: trims versions this batch superseded
  assert_dirty_count();
}

// ---------------------------------------------------------------------------
// Cached block I/O
// ---------------------------------------------------------------------------

void TincaCache::read_block(std::uint64_t disk_blkno, std::span<std::byte> dst) {
  TINCA_TRACE_SPAN(trace_, ts_read_);
  TINCA_EXPECT(dst.size() == kBlockSize, "reads are whole 4 KB blocks");
  nvm_.clock().advance(cfg_.cpu_op_ns);
  auto it = index_.find(disk_blkno);
  if (it != index_.end()) {
    const std::uint32_t slot = it->second;
    nvm_.load(layout_.data_block_off(mirror_[slot].curr_nvm), dst);
    lru_.touch(slot);
    ++stats_.read_hits;
    return;
  }
  ++stats_.read_misses;
  const blockdev::IoStatus st = disk_read(disk_blkno, dst);
  if (st != blockdev::IoStatus::kOk)
    throw blockdev::IoError("tinca: unrecoverable disk read", disk_blkno, st);
  if (!cfg_.cache_reads) return;

  // Clean fill: stored but *not* flushed — recovery drops clean entries, so
  // durability is not required and the fill costs no clflush.
  ensure_free(1, 1);
  const std::uint32_t slot = free_entries_.take();
  const std::uint32_t nb = free_blocks_.take();
  nvm_.store(layout_.data_block_off(nb), dst);
  CacheEntry e;
  e.valid = true;
  e.role = Role::kBuffer;
  e.modified = false;
  e.disk_blkno = disk_blkno;
  e.prev_nvm = CacheEntry::kFresh;
  e.curr_nvm = nb;
  mirror_[slot] = e;
  nvm_.atomic_store16(layout_.entry_off(slot), e.encode());
  index_.emplace(disk_blkno, slot);
  lru_.push_mru(slot);
}

void TincaCache::write_block(std::uint64_t disk_blkno,
                             std::span<const std::byte> data) {
  Transaction txn = tinca_init_txn();
  txn.add(disk_blkno, data);
  tinca_commit(txn);
}

void TincaCache::flush_dirty() {
  // Write back in ascending disk order: sequential on HDD, harmless on SSD.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> dirty;
  for (auto [blkno, slot] : index_)
    if (mirror_[slot].modified) dirty.emplace_back(blkno, slot);
  std::sort(dirty.begin(), dirty.end());
  for (auto [blkno, slot] : dirty) {
    if (!writeback(slot)) continue;  // stays dirty; retried on the next flush
    ++stats_.dirty_writebacks;
    CacheEntry e = mirror_[slot];
    e.modified = false;
    write_entry(slot, e);
  }
  assert_dirty_count();
}

// ---------------------------------------------------------------------------
// Recovery / revocation
// ---------------------------------------------------------------------------

void TincaCache::revoke_slot(std::uint32_t slot) {
  nvm_.injector.point();  // CP: crash-during-recovery sweeps land here
  CacheEntry& e = mirror_[slot];
  if (!e.valid) return;           // already deleted by an earlier pass
  if (e.revoke_marker()) return;  // already rolled back (idempotence)

  if (e.prev_nvm == CacheEntry::kFresh || e.prev_clean) {
    // Write-miss block, or a COW over a CLEAN previous version: revert to
    // "not cached".  Both have disk as the authoritative copy — a miss was
    // never cached before, and a clean prev's NVM copy was installed without
    // a flush (read fill) or matches disk by definition (cleaned block), so
    // reverting the entry to a possibly-torn unflushed NVM block would be
    // wrong where invalidation is provably safe.
    //
    // Deliberate asymmetry with the marker below: revoke_marker() requires
    // prev != kFresh, so a FRESH entry can never carry it — and never needs
    // to.  Its rollback is a single atomic 16 B invalidation: a crash mid-
    // revocation leaves either the old entry (re-revoked, taking this same
    // branch) or an invalid entry (skipped by the !valid guard above).
    // There is no intermediate state a marker would have to make idempotent.
    // The assertion pins the encoding half of that argument: nothing writes
    // prev == curr while prev is kFresh, because curr is always a real
    // (allocated) NVM block number, and kFresh is no such number.
    TINCA_ENSURE(e.curr_nvm != CacheEntry::kFresh,
                 "a FRESH entry's curr must be a real NVM block");
    index_.erase(e.disk_blkno);
    invalidate_entry(slot);
  } else {
    // Write-hit block: roll back to the previous version.  prev := curr
    // (the revoke marker) makes a second revocation a no-op even if we
    // crash during recovery itself.
    CacheEntry rolled = e;
    rolled.curr_nvm = e.prev_nvm;
    rolled.prev_nvm = e.prev_nvm;
    rolled.role = Role::kBuffer;
    rolled.modified = true;  // conservatively dirty; costs one extra flush
    write_entry(slot, rolled);
  }
  ++stats_.revoked_blocks;
}

// ---------------------------------------------------------------------------
// Snapshot reads (MVCC, DESIGN.md §12)
// ---------------------------------------------------------------------------

void TincaCache::mvcc_publish(std::uint64_t disk_blkno,
                              std::uint32_t nvm_block) {
  mvcc_.publish(disk_blkno, nvm_block);
}

void TincaCache::mvcc_baseline(std::uint64_t disk_blkno,
                               std::uint32_t nvm_block) {
  mvcc_.publish_baseline(disk_blkno, nvm_block);
}

bool TincaCache::mvcc_defer_disk_write(std::uint64_t disk_blkno) const {
  // Safe to advance disk unless some pinned reader sits below the chain's
  // oldest version — only then is the current disk content that reader's
  // single remaining copy.  Chains anchored by an epoch-1 baseline cover
  // every possible pin, so they never defer.
  const std::uint64_t oldest = mvcc_.oldest_live_epoch(disk_blkno);
  return oldest > 1 && mvcc_.min_pin() < oldest;
}

void TincaCache::mvcc_reclaim() {
  mvcc_freed_.clear();
  mvcc_.reclaim(mvcc_freed_);
  for (std::uint32_t nb : mvcc_freed_) free_blocks_.give(nb);
  mvcc_freed_.clear();
}

bool TincaCache::snapshot_try_read(const SnapshotPin& pin,
                                   std::uint64_t disk_blkno,
                                   std::span<std::byte> dst) const {
  TINCA_EXPECT(dst.size() == kBlockSize, "reads are whole 4 KB blocks");
  TINCA_EXPECT(pin.valid(), "snapshot read requires a valid pin");
  const VersionRec* rec = mvcc_.resolve(disk_blkno, pin.epoch);
  if (rec == nullptr) return false;
  // The data block is immutable while its chain rec is reachable (COW
  // never rewrites, reclamation waits out the pins), so an uncharged raw
  // copy is race-free.  No LRU / stats / clock traffic on this path.
  nvm_.load_nocharge(layout_.data_block_off(rec->nvm_block), dst);
  mvcc_.stats.snapshot_reads.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TincaCache::snapshot_read(const SnapshotPin& pin,
                               std::uint64_t disk_blkno,
                               std::span<std::byte> dst) const {
  if (snapshot_try_read(pin, disk_blkno, dst)) return;
  // No version <= pin: the block was not committed at pin time, so its disk
  // content — which the defer rule keeps from advancing past the pin — IS
  // the snapshot version.  Bounded clock-free retries: this path must not
  // touch the (thread-unsafe) simulated clock.
  mvcc_.stats.disk_fallbacks.fetch_add(1, std::memory_order_relaxed);
  blockdev::IoStatus st = disk_.read(disk_blkno, dst);
  for (std::uint32_t attempt = 0;
       st == blockdev::IoStatus::kTransient && attempt < cfg_.io.max_retries;
       ++attempt)
    st = disk_.read(disk_blkno, dst);
  if (st != blockdev::IoStatus::kOk)
    throw blockdev::IoError("tinca: unrecoverable snapshot disk read",
                            disk_blkno, st);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

bool TincaCache::cached(std::uint64_t disk_blkno) const {
  return index_.contains(disk_blkno);
}

bool TincaCache::dirty(std::uint64_t disk_blkno) const {
  auto it = index_.find(disk_blkno);
  return it != index_.end() && mirror_[it->second].modified;
}

CacheEntry TincaCache::entry_for(std::uint64_t disk_blkno) const {
  auto it = index_.find(disk_blkno);
  TINCA_EXPECT(it != index_.end(), "entry_for on an uncached block");
  return mirror_[it->second];
}

void TincaCache::register_metrics(obs::MetricsRegistry& reg,
                                  const std::string& prefix) const {
  reg.add_counter(prefix + "txns_committed", &stats_.txns_committed);
  reg.add_counter(prefix + "txns_aborted", &stats_.txns_aborted);
  reg.add_counter(prefix + "blocks_committed", &stats_.blocks_committed);
  reg.add_counter(prefix + "write_hits", &stats_.write_hits);
  reg.add_counter(prefix + "write_misses", &stats_.write_misses);
  reg.add_counter(prefix + "read_hits", &stats_.read_hits);
  reg.add_counter(prefix + "read_misses", &stats_.read_misses);
  reg.add_counter(prefix + "evictions", &stats_.evictions);
  reg.add_counter(prefix + "dirty_writebacks", &stats_.dirty_writebacks);
  reg.add_counter(prefix + "writethrough_writes", &stats_.writethrough_writes);
  reg.add_counter(prefix + "role_switches", &stats_.role_switches);
  reg.add_counter(prefix + "cow_writes", &stats_.cow_writes);
  reg.add_counter(prefix + "background_cleanings",
                  &stats_.background_cleanings);
  reg.add_counter(prefix + "revoked_blocks", &stats_.revoked_blocks);
  reg.add_counter(prefix + "dropped_clean_entries",
                  &stats_.dropped_clean_entries);
  reg.add_counter(prefix + "recovered_entries", &stats_.recovered_entries);
  reg.add_counter(prefix + "io.retries", &stats_.io_retries);
  reg.add_counter(prefix + "io.quarantined", &stats_.io_quarantined);
  reg.add_counter(prefix + "io.degraded_writes", &stats_.io_degraded_writes);
  reg.add_counter(prefix + "commit.fences", &stats_.commit_fences);
  reg.add_counter(prefix + "commit.batches", &stats_.commit_batches);
  reg.add_counter(prefix + "commit.hint_syncs", &stats_.hint_syncs);
  reg.add_counter(prefix + "commit.merged_writes", &stats_.group_merged_writes);
  reg.add_counter(prefix + "commit.xstream", &stats_.xstream_commits);
  reg.add_histogram(prefix + "blocks_per_txn", &stats_.blocks_per_txn);
  reg.add_histogram(prefix + "commit.batch_size", &stats_.commit_batch_size);
  reg.add_gauge(prefix + "capacity_blocks",
                [this] { return capacity_blocks(); });
  reg.add_gauge(prefix + "cached_blocks", [this] { return cached_blocks(); });
  reg.add_gauge(prefix + "dirty_blocks", [this] { return dirty_blocks(); });
  reg.add_gauge(prefix + "free_blocks", [this] { return free_blocks(); });
  // MVCC counters are atomics (readers bump them without the owner's mutex),
  // so they register as gauges over relaxed loads rather than plain counters.
  const auto mv = [](const std::atomic<std::uint64_t>& a) {
    return [&a] { return a.load(std::memory_order_relaxed); };
  };
  reg.add_gauge(prefix + "mvcc.epoch", [this] { return mvcc_.epoch(); });
  reg.add_gauge(prefix + "mvcc.snapshot_reads", mv(mvcc_.stats.snapshot_reads));
  reg.add_gauge(prefix + "mvcc.disk_fallbacks", mv(mvcc_.stats.disk_fallbacks));
  reg.add_gauge(prefix + "mvcc.lock_fallbacks", mv(mvcc_.stats.lock_fallbacks));
  reg.add_gauge(prefix + "mvcc.pin_retries", mv(mvcc_.stats.pin_retries));
  reg.add_gauge(prefix + "mvcc.versions_published",
                mv(mvcc_.stats.versions_published));
  reg.add_gauge(prefix + "mvcc.versions_trimmed",
                mv(mvcc_.stats.versions_trimmed));
  reg.add_gauge(prefix + "mvcc.nodes_retired", mv(mvcc_.stats.nodes_retired));
  reg.add_gauge(prefix + "mvcc.nodes_freed", mv(mvcc_.stats.nodes_freed));
  reg.add_gauge(prefix + "mvcc.recovery_seeded",
                mv(mvcc_.stats.recovery_seeded));
  reg.add_gauge(prefix + "mvcc.live_versions",
                [this] { return mvcc_.live_versions(); });
  reg.add_gauge(prefix + "mvcc.retired_nodes",
                [this] { return mvcc_.retired_nodes(); });
  if (cleaner_) cleaner_->register_metrics(reg, prefix + "cleaner.");
  trace_.register_into(reg, prefix + "lat.");
}

}  // namespace tinca::core
