// Cross-stream commit directory (DESIGN.md §15).
//
// A multi-cache transaction stages one batch per participating cache (each
// on one of that cache's commit streams), flushes them all, then makes the
// whole set durable with ONE atomic **commit record**: a single 64 B NVM
// line in the superblock's directory region naming the participating
// streams, flushed in the same pass and covered by the same single sfence as
// the batch payloads.  Recovery treats an anchored batch (commit_id != 0 in
// its ring seal) as committed only when the directory record exists AND
// every named participant's batch survived — all-or-nothing across caches,
// replacing the ascending-shard-prefix contract.
//
// Record format (one cache line, so a crash keeps the whole record or none):
//
//   w0  commit_id      (nonzero; DRAM-monotonic per mount)
//   w1  participant mask (bit b = global stream shard*streams_per_shard+s)
//   w2  transactions in the cross-stream commit
//   w3  checksum over (w0, w1, w2, slot, format_epoch)
//
// Records validate against the owning superblock's format epoch; recovery
// bumps that epoch, so every record from an earlier life is dead on arrival
// and slots never need explicit scrubbing.  Slot reuse is gated by the
// caller: a slot may be overwritten only once every participant stream's
// durable hint has passed the anchored batch (recovery then never scans the
// batch, so the record is unreachable).
//
// This class is pure media access — slot allocation, retirement deps, and
// locking live in the owner (ShardedTinca).
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/expect.h"
#include "nvm/nvm_device.h"
#include "tinca/layout.h"

namespace tinca::core {

/// A decoded, validated cross-stream commit record.
struct CommitRecord {
  std::uint64_t commit_id = 0;
  std::uint64_t stream_mask = 0;
  std::uint64_t txn_count = 0;
};

class CommitDirectory {
 public:
  /// The record checksum (exposed for verify_media and tests).
  static std::uint64_t checksum(std::uint64_t w0, std::uint64_t w1,
                                std::uint64_t w2, std::uint64_t slot,
                                std::uint64_t format_epoch) {
    return mix(w0 ^ mix(w1 ^ mix(w2 ^ mix(slot ^ mix(format_epoch ^
                                                     0x6469722D736C6F74ULL)))));
  }

  /// Store `rec` into directory slot `slot` with plain stores (no flush).
  /// Returns the byte range for the caller's flush pass.  The whole record
  /// sits in one cache line, so the simulated NVM never tears it.
  static std::pair<std::uint64_t, std::uint64_t> stage(
      nvm::NvmDevice& nvm, std::uint64_t slot, const CommitRecord& rec,
      std::uint64_t format_epoch) {
    TINCA_EXPECT(slot < Layout::kDirSlots, "directory slot out of range");
    TINCA_EXPECT(rec.commit_id != 0 && rec.stream_mask != 0,
                 "commit record needs a nonzero id and mask");
    std::array<std::byte, Layout::kDirSlotBytes> raw{};
    store_le(raw.data(), rec.commit_id, 8);
    store_le(raw.data() + 8, rec.stream_mask, 8);
    store_le(raw.data() + 16, rec.txn_count, 8);
    store_le(raw.data() + 24,
             checksum(rec.commit_id, rec.stream_mask, rec.txn_count, slot,
                      format_epoch),
             8);
    nvm.store(Layout::dir_slot_off(slot), raw);
    return {Layout::dir_slot_off(slot), Layout::kDirSlotBytes};
  }

  /// Decode and validate slot `slot`; returns commit_id == 0 when the slot
  /// holds no valid record for this epoch.
  static CommitRecord read_slot(const nvm::NvmDevice& nvm, std::uint64_t slot,
                                std::uint64_t format_epoch) {
    std::array<std::byte, Layout::kDirSlotBytes> raw{};
    nvm.load(Layout::dir_slot_off(slot), raw);
    const std::uint64_t w0 = load_le(raw.data(), 8);
    const std::uint64_t w1 = load_le(raw.data() + 8, 8);
    const std::uint64_t w2 = load_le(raw.data() + 16, 8);
    const std::uint64_t ck = load_le(raw.data() + 24, 8);
    CommitRecord rec;
    if (w0 != 0 && w1 != 0 && ck == checksum(w0, w1, w2, slot, format_epoch)) {
      rec.commit_id = w0;
      rec.stream_mask = w1;
      rec.txn_count = w2;
    }
    return rec;
  }

  /// All valid records on media for this epoch (recovery / verify_media).
  static std::vector<CommitRecord> scan(const nvm::NvmDevice& nvm,
                                        std::uint64_t format_epoch) {
    std::vector<CommitRecord> out;
    for (std::uint64_t s = 0; s < Layout::kDirSlots; ++s) {
      const CommitRecord rec = read_slot(nvm, s, format_epoch);
      if (rec.commit_id != 0) out.push_back(rec);
    }
    return out;
  }

  /// Format path: zero the whole directory region (plain stores; the
  /// caller's format flush covers it).
  static void format(nvm::NvmDevice& nvm) {
    const std::array<std::byte, Layout::kDirSlotBytes> zero{};
    for (std::uint64_t s = 0; s < Layout::kDirSlots; ++s) {
      nvm.store(Layout::dir_slot_off(s), zero);
    }
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }
};

}  // namespace tinca::core
